package wfe

// tree node layout: words 0 and 1 are the child edges (carrying the
// deletion flag as the Ref mark bit and the sibling-freezing tag as the
// Ref flag bit), word 2 the routing/leaf key, word 3 the leaf marker.
const (
	treeLeft   = 0
	treeRight  = 1
	treeKey    = 2
	treeIsLeaf = 3 // 1 for leaves, 0 for internal nodes
)

// Sentinel keys: every real key must be at most TreeKeyMax.
const (
	treeInf2 = ^uint64(0)
	treeInf1 = ^uint64(1)

	// TreeKeyMax is the largest key a Tree accepts; the two values above it
	// are the Natarajan–Mittal ∞1/∞2 sentinels.
	TreeKeyMax = treeInf1 - 1
)

// treeFrozen reports whether an edge carries the deletion flag or the
// sibling tag — either way the child may be mid-unlink and the edge must
// not be crossed.
func treeFrozen[T any](edge Ref[T]) bool { return edge.Marked() || edge.Flagged() }

// Tree is the Natarajan–Mittal lock-free external binary search tree of
// uint64 keys in [0, TreeKeyMax] to T values (PPoPP 2014), the paper's most
// complex lock-free workload (Figures 8 and 11), on the typed Domain
// façade. Internal nodes route (key < node key goes left); every key lives
// in a leaf. Deletion is two-phase: the injection CAS flags the parent→leaf
// edge (the linearization point, the Ref mark bit here), then cleanup tags
// the parent's sibling edge (the Ref flag bit) — freezing the parent — and
// swings the grandparent edge from the parent to the sibling, unlinking
// parent and leaf. It needs 4 protection slots per guard.
//
// Reclamation discipline: traversals never cross a frozen edge — a clean
// edge value read under protection proves the child had not been unlinked
// at the read, so its retirement, if any, postdates the reservation. On
// meeting a frozen edge the traversal helps complete the pending deletion
// and restarts from the root. Every cleanup therefore unlinks exactly one
// internal node and one leaf, and the thread whose grandparent CAS
// succeeds retires both, exactly once.
//
// The plain methods (Insert, Delete, Get, Put, Len) are guardless: each
// leases a guard from the Domain's guard runtime for the duration of the
// operation, so any number of goroutines may call them. The Guarded
// variants take an explicit or pinned Guard and skip the lease — use them
// in hot loops. Keys above TreeKeyMax collide with the sentinel skeleton
// and panic at the call.
type Tree[T any] struct {
	d *Domain[T]
	// root ("R") and its left child ("S") are sentinels that are never
	// flagged, tagged or removed; all real keys live under S's left edge.
	root Ref[T]
	s    Ref[T]
}

// NewTree creates an empty tree on the Domain. It leases a guard to
// allocate the five blocks of the sentinel skeleton, parking briefly if
// all guards are busy.
func NewTree[T any](d *Domain[T]) *Tree[T] {
	g := d.Pin()
	defer d.Unpin(g)
	var zero T
	mk := func(key uint64, leaf bool) Ref[T] {
		n := g.Alloc(zero)
		g.StoreMeta(n, treeKey, key)
		if leaf {
			g.StoreMeta(n, treeIsLeaf, 1)
		}
		return n
	}
	t := &Tree[T]{d: d}
	t.root = mk(treeInf2, false)
	t.s = mk(treeInf1, false)
	g.Store(t.s, treeLeft, mk(treeInf1, true))
	g.Store(t.s, treeRight, mk(treeInf2, true))
	g.Store(t.root, treeLeft, t.s)
	g.Store(t.root, treeRight, mk(treeInf2, true))
	return t
}

func (t *Tree[T]) isLeaf(g *Guard[T], n Ref[T]) bool {
	return g.LoadMeta(n, treeIsLeaf) == 1
}

// dir returns the child word to follow for key at an internal node.
func (t *Tree[T]) dir(g *Guard[T], node Ref[T], key uint64) int {
	if key < g.LoadMeta(node, treeKey) {
		return treeLeft
	}
	return treeRight
}

// treeSeek is the traversal result: the leaf terminating the search path,
// its parent, the parent's parent (the cleanup ancestor), plus the clean
// edge value and direction from parent to leaf.
type treeSeek[T any] struct {
	anc, par, leaf Ref[T]
	leafEdge       Ref[T] // clean link value of the parent→leaf edge
	leafDir        int    // which child word of par holds the leaf
}

// seek walks from the root to the leaf on key's search path. It maintains
// protections for the (grandparent, parent, current) window across four
// rotating protection slots and never crosses a frozen edge: on meeting
// one it helps the pending deletion and restarts.
func (t *Tree[T]) seek(g *Guard[T], key uint64, sr *treeSeek[T]) {
retry:
	for {
		gp, par := t.root, t.s
		dir := t.dir(g, par, key)
		igp, ipar, icur, inext := 0, 1, 2, 3
		curEdge := g.ProtectWord(par, dir, icur)
		for {
			cur := curEdge.Clean()
			if t.isLeaf(g, cur) {
				sr.anc, sr.par, sr.leaf = gp, par, cur
				sr.leafEdge = curEdge
				sr.leafDir = dir
				return
			}
			ndir := t.dir(g, cur, key)
			nextEdge := g.ProtectWord(cur, ndir, inext)
			if treeFrozen(nextEdge) {
				// cur is a parent under deletion; finish that deletion and
				// restart so the path window stays on live nodes.
				t.cleanup(g, par, cur)
				continue retry
			}
			gp, par = par, cur
			dir = ndir
			curEdge = nextEdge
			igp, ipar, icur, inext = ipar, icur, inext, igp
		}
	}
}

// cleanup completes a pending deletion at parent par whose grandparent is
// anc: it tags the sibling edge (freezing par), swings anc's edge from par
// to the sibling, and — on winning the swing CAS — retires par and the
// flagged leaf. It reports whether this call performed the unlink.
func (t *Tree[T]) cleanup(g *Guard[T], anc, par Ref[T]) bool {
	leftV := g.Load(par, treeLeft)
	rightV := g.Load(par, treeRight)
	var victimDir, sibDir int
	switch {
	case leftV.Marked():
		victimDir, sibDir = treeLeft, treeRight
	case rightV.Marked():
		victimDir, sibDir = treeRight, treeLeft
	default:
		return false // nothing pending (already helped)
	}

	// Freeze the sibling edge. Bounded retries: the edge can change at most
	// until the tag lands; competitors set the same bit.
	sv := g.Load(par, sibDir)
	for !sv.Flagged() {
		g.CompareAndSwap(par, sibDir, sv, sv.WithFlag())
		sv = g.Load(par, sibDir)
	}

	// Move the sibling up, preserving a pending deletion flag on it but
	// not the tag.
	newEdge := sv.Unflagged()

	// Find which edge of anc holds par; it must be clean to swing.
	var ancDir int
	switch {
	case g.Load(anc, treeLeft).Clean() == par:
		ancDir = treeLeft
	case g.Load(anc, treeRight).Clean() == par:
		ancDir = treeRight
	default:
		return false // anc no longer points at par; someone else unlinked
	}
	if !g.CompareAndSwap(anc, ancDir, par, newEdge) {
		return false
	}
	// We unlinked {par, victim leaf}: retire both, exactly once.
	victim := g.Load(par, victimDir).Clean()
	g.Retire(victim)
	g.Retire(par)
	return true
}

// Insert adds key→val, reporting false if the key is already present.
func (t *Tree[T]) Insert(key uint64, val T) bool {
	g := t.d.Pin()
	defer t.d.unpin(g)
	return t.InsertGuarded(g, key, val)
}

// Delete removes key, reporting whether it was present. The flag CAS on
// the parent→leaf edge is the linearization point; the unlink may be
// completed by any helper.
func (t *Tree[T]) Delete(key uint64) bool {
	g := t.d.Pin()
	defer t.d.unpin(g)
	return t.DeleteGuarded(g, key)
}

// Get returns the value stored under key.
func (t *Tree[T]) Get(key uint64) (v T, ok bool) {
	g := t.d.Pin()
	defer t.d.unpin(g)
	return t.GetGuarded(g, key)
}

// Put inserts key→val, or replaces an existing key's leaf with a fresh one
// and retires the old leaf — the paper benchmark's put semantics, keeping
// read-mostly workloads on the reclamation path.
func (t *Tree[T]) Put(key uint64, val T) {
	g := t.d.Pin()
	defer t.d.unpin(g)
	t.PutGuarded(g, key, val)
}

// Len counts real-key leaves; meaningful only quiescently.
func (t *Tree[T]) Len() int {
	g := t.d.Pin()
	defer t.d.unpin(g)
	return t.LenGuarded(g)
}

// checkKey rejects sentinel-range keys. Letting one through would be
// catastrophic, not just wrong: seek terminates on the ∞1/∞2 sentinel
// leaves for such keys, so a Delete would unlink the S sentinel skeleton
// itself and a Get would report a phantom key present.
func (t *Tree[T]) checkKey(key uint64) {
	if key > TreeKeyMax {
		panic("wfe: Tree key exceeds TreeKeyMax")
	}
}

// TryInsert is Insert with backpressure: when the key is absent and the
// arena stays exhausted after the Domain's emergency-reclamation
// pipeline, it returns ErrArenaExhausted instead of panicking. ok
// reports the insert outcome (false with a nil error means the key was
// already present).
func (t *Tree[T]) TryInsert(key uint64, val T) (ok bool, err error) {
	g := t.d.Pin()
	defer t.d.unpin(g)
	return t.TryInsertGuarded(g, key, val)
}

// InsertGuarded is Insert on a caller-held guard.
func (t *Tree[T]) InsertGuarded(g *Guard[T], key uint64, val T) bool {
	ok, err := t.TryInsertGuarded(g, key, val)
	if err != nil {
		panic(exhaustedPanic(t.d.arena.Capacity()))
	}
	return ok
}

// TryInsertGuarded is TryInsert on a caller-held guard.
func (t *Tree[T]) TryInsertGuarded(g *Guard[T], key uint64, val T) (ok bool, err error) {
	t.checkKey(key)
	g.Begin()
	defer g.End()
	var sr treeSeek[T]
	var newLeaf, newInt Ref[T]
	var zero T
	for {
		t.seek(g, key, &sr)
		leafKey := g.LoadMeta(sr.leaf, treeKey)
		if leafKey == key {
			if !newLeaf.IsNil() {
				g.Dealloc(newLeaf) // never published
				g.Dealloc(newInt)
			}
			return false, nil
		}
		if newLeaf.IsNil() {
			// An insert needs two blocks (routing node + leaf), allocated
			// lazily so a duplicate-key insert pays nothing. The site sits
			// inside the protected section, so exhaustion drops the
			// protection, runs the emergency pipeline unprotected, and
			// restarts the seek with the blocks in hand; the first block is
			// undone when the second cannot be had, so a failed insert
			// leaks nothing.
			var fast bool
			if newLeaf, fast = g.tryAllocFast(val); !fast {
				g.End()
				newLeaf, err = g.TryAlloc(val)
				if err == nil {
					g.StoreMeta(newLeaf, treeKey, key)
					g.StoreMeta(newLeaf, treeIsLeaf, 1)
					newInt, err = g.TryAlloc(zero)
					if err != nil {
						g.Dealloc(newLeaf)
					}
				}
				g.Begin()
				if err != nil {
					return false, err
				}
				continue // the seek window went stale while unprotected
			}
			g.StoreMeta(newLeaf, treeKey, key)
			g.StoreMeta(newLeaf, treeIsLeaf, 1)
			if newInt, fast = g.tryAllocFast(zero); !fast {
				g.End()
				newInt, err = g.TryAlloc(zero)
				g.Begin()
				if err != nil {
					g.Dealloc(newLeaf)
					return false, err
				}
				continue
			}
		}
		if t.linkLeaf(g, key, leafKey, &sr, newLeaf, newInt) {
			return true, nil
		}
	}
}

// linkLeaf wires the routing node newInt between newLeaf and the leaf the
// seek terminated on, then attempts the parent-edge swing. On a lost CAS
// it helps any deletion that froze the edge and reports false so the
// caller re-seeks.
func (t *Tree[T]) linkLeaf(g *Guard[T], key, leafKey uint64, sr *treeSeek[T], newLeaf, newInt Ref[T]) bool {
	// The new internal node routes between the new leaf and the old one.
	if key < leafKey {
		g.StoreMeta(newInt, treeKey, leafKey)
		g.Store(newInt, treeLeft, newLeaf)
		g.Store(newInt, treeRight, sr.leaf)
	} else {
		g.StoreMeta(newInt, treeKey, key)
		g.Store(newInt, treeLeft, sr.leaf)
		g.Store(newInt, treeRight, newLeaf)
	}
	if g.CompareAndSwap(sr.par, sr.leafDir, sr.leafEdge, newInt) {
		return true
	}
	// Edge changed; if a deletion froze it, help before retrying.
	if treeFrozen(g.Load(sr.par, sr.leafDir)) {
		t.cleanup(g, sr.anc, sr.par)
	}
	return false
}

// insertNodes is the insert loop over pre-allocated blocks (newLeaf with
// its key and leaf marker already stamped, newInt zeroed): no allocation
// can happen inside it, which is what lets the batch entry points run it
// under an open protection span. On a duplicate key it reports false
// with both blocks unconsumed; the caller deallocates them.
func (t *Tree[T]) insertNodes(g *Guard[T], key uint64, newLeaf, newInt Ref[T]) bool {
	var sr treeSeek[T]
	for {
		t.seek(g, key, &sr)
		leafKey := g.LoadMeta(sr.leaf, treeKey)
		if leafKey == key {
			return false
		}
		if t.linkLeaf(g, key, leafKey, &sr, newLeaf, newInt) {
			return true
		}
	}
}

// DeleteGuarded is Delete on a caller-held guard.
func (t *Tree[T]) DeleteGuarded(g *Guard[T], key uint64) bool {
	t.checkKey(key)
	g.Begin()
	defer g.End()
	var sr treeSeek[T]
	// Injection phase.
	for {
		t.seek(g, key, &sr)
		if g.LoadMeta(sr.leaf, treeKey) != key {
			return false
		}
		if g.CompareAndSwap(sr.par, sr.leafDir, sr.leafEdge, sr.leafEdge.WithMark()) {
			break
		}
		// Someone is deleting here (maybe the same leaf); help and retry.
		if treeFrozen(g.Load(sr.par, sr.leafDir)) {
			t.cleanup(g, sr.anc, sr.par)
		}
	}
	// Cleanup phase. The flag CAS made the unlink every traversal's
	// obligation: seek never crosses a frozen edge, so if our own cleanup
	// loses, one completed re-seek — which helps every pending deletion on
	// the way, ours included — proves the flagged victim is off the tree.
	// Comparing the returned leaf against the victim's handle would be
	// wrong, not just redundant: the handle can be recycled into a fresh
	// leaf of the same key, and handle equality would then spin forever on
	// a quiescent tree.
	if !t.cleanup(g, sr.anc, sr.par) {
		t.seek(g, key, &sr)
	}
	return true
}

// GetGuarded is Get on a caller-held guard.
func (t *Tree[T]) GetGuarded(g *Guard[T], key uint64) (v T, ok bool) {
	t.checkKey(key)
	g.Begin()
	defer g.End()
	var sr treeSeek[T]
	t.seek(g, key, &sr)
	if g.LoadMeta(sr.leaf, treeKey) != key {
		return v, false
	}
	return g.Value(sr.leaf), true
}

// TryPut is Put with backpressure: when the arena stays exhausted after
// the Domain's emergency-reclamation pipeline it returns
// ErrArenaExhausted (leaving the tree unchanged) instead of panicking.
func (t *Tree[T]) TryPut(key uint64, val T) error {
	g := t.d.Pin()
	defer t.d.unpin(g)
	return t.TryPutGuarded(g, key, val)
}

// PutGuarded is Put on a caller-held guard.
func (t *Tree[T]) PutGuarded(g *Guard[T], key uint64, val T) {
	if err := t.TryPutGuarded(g, key, val); err != nil {
		panic(exhaustedPanic(t.d.arena.Capacity()))
	}
}

// TryPutGuarded is TryPut on a caller-held guard.
func (t *Tree[T]) TryPutGuarded(g *Guard[T], key uint64, val T) error {
	t.checkKey(key)
	for {
		done, found, err := t.tryReplace(g, key, val)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		if !found {
			ok, err := t.TryInsertGuarded(g, key, val)
			if err != nil {
				return err
			}
			if ok {
				return nil
			}
		}
	}
}

// tryReplace swaps the key's leaf for a fresh one, retrying its CAS for
// as long as the key stays on the search path. The replacement leaf is
// allocated once and reused across attempts (as InsertGuarded does), so a
// contended Put pays one alloc, not one per CAS retry. found reports
// whether the key was present (false directs Put to the insert path);
// done reports whether the replacement landed.
func (t *Tree[T]) tryReplace(g *Guard[T], key uint64, val T) (done, found bool, err error) {
	g.Begin()
	defer g.End()
	var sr treeSeek[T]
	var newLeaf Ref[T]
	for {
		t.seek(g, key, &sr)
		if g.LoadMeta(sr.leaf, treeKey) != key {
			if !newLeaf.IsNil() {
				g.Dealloc(newLeaf) // never published
			}
			return false, false, nil
		}
		if newLeaf.IsNil() {
			var fast bool
			if newLeaf, fast = g.tryAllocFast(val); !fast {
				// Exhausted mid-seek: drop the protection before blocking
				// in the emergency pipeline, then restart the seek.
				g.End()
				newLeaf, err = g.TryAlloc(val)
				g.Begin()
				if err != nil {
					return false, false, err
				}
				g.StoreMeta(newLeaf, treeKey, key)
				g.StoreMeta(newLeaf, treeIsLeaf, 1)
				continue
			}
			g.StoreMeta(newLeaf, treeKey, key)
			g.StoreMeta(newLeaf, treeIsLeaf, 1)
		}
		if g.CompareAndSwap(sr.par, sr.leafDir, sr.leafEdge, newLeaf) {
			g.Retire(sr.leaf)
			return true, true, nil
		}
		// Edge changed; if a deletion froze it, help before retrying.
		if treeFrozen(g.Load(sr.par, sr.leafDir)) {
			t.cleanup(g, sr.anc, sr.par)
		}
	}
}

// MultiInsert inserts every key→val pair in one batch: one guard lease,
// one protection span where the scheme allows it, and both blocks of
// every insert allocated up front (see batch.go). inserted[i] reports
// whether keys[i] was absent and went in. Like Insert it panics when the
// arena stays exhausted after the emergency-reclamation pipeline; pairs
// already inserted stay inserted (use TryMultiInsert to observe partial
// progress).
func (t *Tree[T]) MultiInsert(keys []uint64, vals []T) (inserted []bool) {
	g := t.d.pinBatch()
	defer t.d.unpin(g)
	return t.MultiInsertGuarded(g, keys, vals)
}

// MultiInsertGuarded is MultiInsert on a caller-held guard.
func (t *Tree[T]) MultiInsertGuarded(g *Guard[T], keys []uint64, vals []T) (inserted []bool) {
	inserted, _, err := t.TryMultiInsertGuarded(g, keys, vals)
	if err != nil {
		panic(exhaustedPanic(t.d.arena.Capacity()))
	}
	return inserted
}

// TryMultiInsert is MultiInsert with backpressure: the whole run — a
// leaf and a routing node per key — is allocated before any protection
// is announced (the per-op lazy-allocation optimization cannot be used
// under an open batch span, since an exhaustion stall must never run
// with reservations held). When the arena runs out mid-run the pairs
// whose blocks were obtained are still attempted; attempted reports that
// prefix length alongside ErrArenaExhausted, and inserted[i] is false
// for every unattempted i — callers resume from keys[attempted:].
func (t *Tree[T]) TryMultiInsert(keys []uint64, vals []T) (inserted []bool, attempted int, err error) {
	g := t.d.pinBatch()
	defer t.d.unpin(g)
	return t.TryMultiInsertGuarded(g, keys, vals)
}

// TryMultiInsertGuarded is TryMultiInsert on a caller-held guard.
func (t *Tree[T]) TryMultiInsertGuarded(g *Guard[T], keys []uint64, vals []T) (inserted []bool, attempted int, err error) {
	if len(keys) != len(vals) {
		panic("wfe: MultiInsert keys/vals length mismatch")
	}
	// Validate every key before allocating: a sentinel-range key must
	// panic with no blocks in flight.
	for _, key := range keys {
		t.checkKey(key)
	}
	var zero T
	leaves := g.scratchNodes(0, len(keys))
	ints := g.scratchNodes(1, len(keys))
	for i := range keys {
		leaf, aerr := g.TryAlloc(vals[i])
		if aerr != nil {
			err = aerr
			break
		}
		g.StoreMeta(leaf, treeKey, keys[i])
		g.StoreMeta(leaf, treeIsLeaf, 1)
		ri, aerr := g.TryAlloc(zero)
		if aerr != nil {
			g.Dealloc(leaf)
			err = aerr
			break
		}
		leaves = append(leaves, leaf)
		ints = append(ints, ri)
	}
	inserted = make([]bool, len(keys))
	attempted = g.runBatch(len(leaves), func(i int) bool {
		if t.insertNodes(g, keys[i], leaves[i], ints[i]) {
			inserted[i] = true
		} else {
			// Duplicate key: the pre-allocated pair was never published, so
			// no reader can hold it — return it to the arena directly.
			g.Dealloc(leaves[i])
			g.Dealloc(ints[i])
		}
		return true
	})
	return inserted, attempted, err
}

// MultiDelete removes every key in one batch; oks[i] reports whether
// keys[i] was present. Each unlink's internal-node/leaf pair is retired
// as one burst at the end of the batch, so the cleanup cadence ticks
// once instead of once per key.
func (t *Tree[T]) MultiDelete(keys []uint64) (oks []bool) {
	g := t.d.pinBatch()
	defer t.d.unpin(g)
	return t.MultiDeleteGuarded(g, keys)
}

// MultiDeleteGuarded is MultiDelete on a caller-held guard.
func (t *Tree[T]) MultiDeleteGuarded(g *Guard[T], keys []uint64) (oks []bool) {
	for _, key := range keys {
		t.checkKey(key)
	}
	oks = make([]bool, len(keys))
	g.runBatch(len(keys), func(i int) bool {
		oks[i] = t.DeleteGuarded(g, keys[i])
		return true
	})
	return oks
}

// LenGuarded is Len on a caller-held guard.
func (t *Tree[T]) LenGuarded(g *Guard[T]) int {
	return t.countLeaves(g, t.root)
}

func (t *Tree[T]) countLeaves(g *Guard[T], n Ref[T]) int {
	if t.isLeaf(g, n) {
		if g.LoadMeta(n, treeKey) <= TreeKeyMax {
			return 1
		}
		return 0
	}
	c := 0
	if l := g.Load(n, treeLeft).Clean(); !l.IsNil() {
		c += t.countLeaves(g, l)
	}
	if r := g.Load(n, treeRight).Clean(); !r.IsNil() {
		c += t.countLeaves(g, r)
	}
	return c
}
