// Tracing-overhead benchmarks and the CI guard asserting the acceptance
// bar: enabling event tracing costs at most 5% on the guardless HashMap
// workload versus a domain built without a tracer. The benchmarks run in
// any `go test -bench` sweep; the guard test is env-gated
// (WFE_OVERHEAD_GUARD=1) because it needs a quiet machine to be a fair
// judge, and CI runs it on a dedicated step.
package wfe_test

import (
	"os"
	"testing"

	"wfe"
)

// traceHashMapChurn is the measured workload: a 50% insert / 50% delete
// mix over 512 keys through the guardless HashMap API — every operation
// takes a lease, protects traversals, and retires unlinked nodes, so with
// tracing on each op crosses several Emit call sites.
func traceHashMapChurn(b *testing.B, traced bool) {
	b.Helper()
	d, err := wfe.NewDomain[uint64](wfe.Options{
		Scheme:   wfe.WFE,
		Capacity: 1 << 16,
		Trace:    traced,
	})
	if err != nil {
		b.Fatal(err)
	}
	m := wfe.NewHashMap[uint64](d, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i) & 511
		if i&1 == 0 {
			m.Insert(k, uint64(i))
		} else {
			m.Delete(k)
		}
	}
}

func BenchmarkTracingOff(b *testing.B) { traceHashMapChurn(b, false) }
func BenchmarkTracingOn(b *testing.B)  { traceHashMapChurn(b, true) }

// TestTracingOverheadGuard is the CI-asserted bar: tracing enabled must
// cost <= 5% versus disabled on the guardless HashMap benchmark. Timing
// ratios on shared runners are noisy, so the guard takes the best (lowest
// ns/op) of several attempts for each side before comparing — a genuine
// hot-path regression slows every attempt; noise does not speed one up.
func TestTracingOverheadGuard(t *testing.T) {
	if os.Getenv("WFE_OVERHEAD_GUARD") != "1" {
		t.Skip("set WFE_OVERHEAD_GUARD=1 to run the tracing overhead guard")
	}
	const attempts = 4
	best := func(traced bool) float64 {
		bestNs := 0.0
		for i := 0; i < attempts; i++ {
			r := testing.Benchmark(func(b *testing.B) { traceHashMapChurn(b, traced) })
			ns := float64(r.NsPerOp())
			if bestNs == 0 || ns < bestNs {
				bestNs = ns
			}
		}
		return bestNs
	}
	off := best(false)
	on := best(true)
	ratio := on / off
	t.Logf("tracing off %.1f ns/op, on %.1f ns/op, ratio %.3f", off, on, ratio)
	if ratio > 1.05 {
		t.Fatalf("tracing overhead %.1f%% exceeds the 5%% bar (off %.1f ns/op, on %.1f ns/op)",
			(ratio-1)*100, off, on)
	}
}
