package wfe

// stack node layout: word 0 = next link.
const stackNext = 0

// Stack is a Treiber lock-free stack of T — the paper's usage example for
// the reclamation API (Figure 2), here on the typed Domain façade. It
// needs 1 protection slot per guard.
type Stack[T any] struct {
	d   *Domain[T]
	top Atomic[T]
}

// NewStack creates an empty stack on the Domain.
func NewStack[T any](d *Domain[T]) *Stack[T] {
	return &Stack[T]{d: d}
}

// Push adds v to the top of the stack.
func (s *Stack[T]) Push(g *Guard[T], v T) {
	g.Begin()
	defer g.End()
	n := g.Alloc(v)
	for {
		old := s.top.Load()
		g.Store(n, stackNext, old)
		if s.top.CompareAndSwap(old, n) {
			return
		}
	}
}

// Pop removes and returns the top value; ok is false on an empty stack.
func (s *Stack[T]) Pop(g *Guard[T]) (v T, ok bool) {
	g.Begin()
	defer g.End()
	for {
		top := g.Protect(&s.top, 0)
		if top.IsNil() {
			return v, false
		}
		next := g.Load(top, stackNext)
		if s.top.CompareAndSwap(top, next) {
			v = g.Value(top)
			g.Retire(top)
			return v, true
		}
	}
}

// Len counts the nodes; it is only meaningful quiescently.
func (s *Stack[T]) Len(g *Guard[T]) int {
	n := 0
	for r := s.top.Load(); !r.IsNil(); r = g.Load(r, stackNext) {
		n++
	}
	return n
}
