package wfe

// stack node layout: word 0 = next link.
const stackNext = 0

// Stack is a Treiber lock-free stack of T — the paper's usage example for
// the reclamation API (Figure 2), here on the typed Domain façade. It
// needs 1 protection slot per guard.
//
// The plain methods (Push, Pop, Len) are guardless: each leases a guard
// from the Domain's guard runtime for the duration of the operation, so
// any number of goroutines may call them. The Guarded variants take an
// explicit or pinned Guard and skip the lease — use them in hot loops.
type Stack[T any] struct {
	d   *Domain[T]
	top Atomic[T]
}

// NewStack creates an empty stack on the Domain.
func NewStack[T any](d *Domain[T]) *Stack[T] {
	return &Stack[T]{d: d}
}

// Push adds v to the top of the stack.
func (s *Stack[T]) Push(v T) {
	g := s.d.Pin()
	defer s.d.unpin(g)
	s.PushGuarded(g, v)
}

// Pop removes and returns the top value; ok is false on an empty stack.
func (s *Stack[T]) Pop() (v T, ok bool) {
	g := s.d.Pin()
	defer s.d.unpin(g)
	return s.PopGuarded(g)
}

// Len counts the nodes; it is only meaningful quiescently.
func (s *Stack[T]) Len() int {
	g := s.d.Pin()
	defer s.d.unpin(g)
	return s.LenGuarded(g)
}

// TryPush is Push with backpressure: when the arena stays exhausted
// after the Domain's emergency-reclamation pipeline it returns
// ErrArenaExhausted instead of panicking.
func (s *Stack[T]) TryPush(v T) error {
	g := s.d.Pin()
	defer s.d.unpin(g)
	return s.TryPushGuarded(g, v)
}

// PushGuarded is Push on a caller-held guard.
func (s *Stack[T]) PushGuarded(g *Guard[T], v T) {
	if err := s.TryPushGuarded(g, v); err != nil {
		panic(exhaustedPanic(s.d.arena.Capacity()))
	}
}

// TryPushGuarded is TryPush on a caller-held guard.
func (s *Stack[T]) TryPushGuarded(g *Guard[T], v T) error {
	// Allocate before entering the protected section: if the arena is
	// exhausted, the emergency pipeline then stalls with no protection
	// announced, so it cannot pin the epoch or any era against the
	// concurrent scans it is waiting on.
	n, err := g.TryAlloc(v)
	if err != nil {
		return err
	}
	g.Begin()
	defer g.End()
	for {
		old := s.top.Load()
		g.Store(n, stackNext, old)
		if s.top.CompareAndSwap(old, n) {
			return nil
		}
	}
}

// PopGuarded is Pop on a caller-held guard.
func (s *Stack[T]) PopGuarded(g *Guard[T]) (v T, ok bool) {
	g.Begin()
	defer g.End()
	for {
		top := g.Protect(&s.top, 0)
		if top.IsNil() {
			return v, false
		}
		next := g.Load(top, stackNext)
		if s.top.CompareAndSwap(top, next) {
			v = g.Value(top)
			g.Retire(top)
			return v, true
		}
	}
}

// LenGuarded is Len on a caller-held guard.
func (s *Stack[T]) LenGuarded(g *Guard[T]) int {
	n := 0
	for r := s.top.Load(); !r.IsNil(); r = g.Load(r, stackNext) {
		n++
	}
	return n
}
