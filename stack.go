package wfe

// stack node layout: word 0 = next link.
const stackNext = 0

// Stack is a Treiber lock-free stack of T — the paper's usage example for
// the reclamation API (Figure 2), here on the typed Domain façade. It
// needs 1 protection slot per guard.
//
// The plain methods (Push, Pop, Len) are guardless: each leases a guard
// from the Domain's guard runtime for the duration of the operation, so
// any number of goroutines may call them. The Guarded variants take an
// explicit or pinned Guard and skip the lease — use them in hot loops.
type Stack[T any] struct {
	d   *Domain[T]
	top Atomic[T]
}

// NewStack creates an empty stack on the Domain.
func NewStack[T any](d *Domain[T]) *Stack[T] {
	return &Stack[T]{d: d}
}

// Push adds v to the top of the stack.
func (s *Stack[T]) Push(v T) {
	g := s.d.Pin()
	defer s.d.unpin(g)
	s.PushGuarded(g, v)
}

// Pop removes and returns the top value; ok is false on an empty stack.
func (s *Stack[T]) Pop() (v T, ok bool) {
	g := s.d.Pin()
	defer s.d.unpin(g)
	return s.PopGuarded(g)
}

// Len counts the nodes; it is only meaningful quiescently.
func (s *Stack[T]) Len() int {
	g := s.d.Pin()
	defer s.d.unpin(g)
	return s.LenGuarded(g)
}

// TryPush is Push with backpressure: when the arena stays exhausted
// after the Domain's emergency-reclamation pipeline it returns
// ErrArenaExhausted instead of panicking.
func (s *Stack[T]) TryPush(v T) error {
	g := s.d.Pin()
	defer s.d.unpin(g)
	return s.TryPushGuarded(g, v)
}

// PushGuarded is Push on a caller-held guard.
func (s *Stack[T]) PushGuarded(g *Guard[T], v T) {
	if err := s.TryPushGuarded(g, v); err != nil {
		panic(exhaustedPanic(s.d.arena.Capacity()))
	}
}

// TryPushGuarded is TryPush on a caller-held guard.
func (s *Stack[T]) TryPushGuarded(g *Guard[T], v T) error {
	// Allocate before entering the protected section: if the arena is
	// exhausted, the emergency pipeline then stalls with no protection
	// announced, so it cannot pin the epoch or any era against the
	// concurrent scans it is waiting on.
	n, err := g.TryAlloc(v)
	if err != nil {
		return err
	}
	g.Begin()
	defer g.End()
	s.pushNode(g, n)
	return nil
}

// pushNode links the pre-allocated node n as the new top. The caller
// owns the protected section.
func (s *Stack[T]) pushNode(g *Guard[T], n Ref[T]) {
	for {
		old := s.top.Load()
		g.Store(n, stackNext, old)
		if s.top.CompareAndSwap(old, n) {
			return
		}
	}
}

// PopGuarded is Pop on a caller-held guard.
func (s *Stack[T]) PopGuarded(g *Guard[T]) (v T, ok bool) {
	g.Begin()
	defer g.End()
	for {
		top := g.Protect(&s.top, 0)
		if top.IsNil() {
			return v, false
		}
		next := g.Load(top, stackNext)
		if s.top.CompareAndSwap(top, next) {
			v = g.Value(top)
			g.Retire(top)
			return v, true
		}
	}
}

// PushAll pushes every value in one batch: one guard lease, one
// protection span where the scheme allows it, nodes allocated up front
// (see batch.go). Values land on the stack in slice order, so vs[len-1]
// ends up on top. Like Push it panics when the arena stays exhausted
// after the emergency-reclamation pipeline; values already pushed stay
// pushed (use TryPushAll to observe partial progress).
func (s *Stack[T]) PushAll(vs []T) {
	g := s.d.pinBatch()
	defer s.d.unpin(g)
	s.PushAllGuarded(g, vs)
}

// PushAllGuarded is PushAll on a caller-held guard.
func (s *Stack[T]) PushAllGuarded(g *Guard[T], vs []T) {
	if _, err := s.TryPushAllGuarded(g, vs); err != nil {
		panic(exhaustedPanic(s.d.arena.Capacity()))
	}
}

// TryPushAll is PushAll with backpressure: the whole run is allocated
// before any protection is announced; on exhaustion mid-run the values
// whose nodes were obtained are still pushed and TryPushAll reports that
// prefix length alongside ErrArenaExhausted — callers resume from
// vs[pushed:].
func (s *Stack[T]) TryPushAll(vs []T) (pushed int, err error) {
	g := s.d.pinBatch()
	defer s.d.unpin(g)
	return s.TryPushAllGuarded(g, vs)
}

// TryPushAllGuarded is TryPushAll on a caller-held guard.
func (s *Stack[T]) TryPushAllGuarded(g *Guard[T], vs []T) (pushed int, err error) {
	nodes := g.scratchNodes(0, len(vs))
	for i := range vs {
		n, aerr := g.TryAlloc(vs[i])
		if aerr != nil {
			err = aerr
			break
		}
		nodes = append(nodes, n)
	}
	pushed = g.runBatch(len(nodes), func(i int) bool {
		s.pushNode(g, nodes[i])
		return true
	})
	return pushed, err
}

// PopN pops up to n values in one batch, stopping early when the stack
// empties. The popped nodes are retired as one burst at the end of the
// batch, so the cleanup cadence ticks once instead of once per pop.
// Values come back in pop order (top first).
func (s *Stack[T]) PopN(n int) []T {
	g := s.d.pinBatch()
	defer s.d.unpin(g)
	return s.PopNGuarded(g, n)
}

// PopNGuarded is PopN on a caller-held guard.
func (s *Stack[T]) PopNGuarded(g *Guard[T], n int) []T {
	out := make([]T, 0, n)
	g.runBatch(n, func(int) bool {
		v, ok := s.PopGuarded(g)
		if ok {
			out = append(out, v)
		}
		return ok
	})
	return out
}

// LenGuarded is Len on a caller-held guard.
func (s *Stack[T]) LenGuarded(g *Guard[T]) int {
	n := 0
	for r := s.top.Load(); !r.IsNil(); r = g.Load(r, stackNext) {
		n++
	}
	return n
}
