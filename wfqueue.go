package wfe

import (
	"errors"

	"wfe/internal/ds/kpqueue"
)

// WFQueue is the Kogan–Petrank wait-free MPMC FIFO queue of T (PPoPP 2011)
// on the typed Domain façade — the paper's headline workload: combined with
// the WFE scheme every operation, reclamation included, completes in a
// bounded number of steps (Figures 5a/5b). It needs 3 protection slots per
// guard.
//
// The queue's phase-based helping protocol hands dequeued values across
// threads through a fixed-width handoff word, so the generic payload cannot
// travel inside the queue node itself. Each Enqueue instead boxes its value
// in a private block (holding the T in the Domain's value slab) and
// enqueues the box's handle; the winning dequeuer — the only goroutine that
// ever receives that handle — unboxes the value and returns the block to
// the arena. Boxes are never shared, so they need no reclamation-scheme
// round trip.
//
// The plain methods (Enqueue, Dequeue, Len) are guardless: each leases a
// guard from the Domain's guard runtime for the duration of the operation,
// so any number of goroutines may call them. The Guarded variants take an
// explicit or pinned Guard and skip the lease — use them in hot loops.
type WFQueue[T any] struct {
	d *Domain[T]
	q *kpqueue.Queue
}

// NewWFQueue creates an empty wait-free queue on the Domain. It leases a
// guard to allocate the sentinel node, parking briefly if all guards are
// busy. The queue registers the Domain's MaxGuards tids with the helping
// protocol, so guards from any acquisition path can drive it.
func NewWFQueue[T any](d *Domain[T]) *WFQueue[T] {
	g := d.Pin()
	defer d.Unpin(g)
	return &WFQueue[T]{d: d, q: kpqueue.NewTid(liveScheme[T]{d}, d.guards.Cap(), g.tid)}
}

// Enqueue appends v.
func (q *WFQueue[T]) Enqueue(v T) {
	g := q.d.Pin()
	defer q.d.unpin(g)
	q.EnqueueGuarded(g, v)
}

// Dequeue removes and returns the oldest value; ok is false when empty.
func (q *WFQueue[T]) Dequeue() (v T, ok bool) {
	g := q.d.Pin()
	defer q.d.unpin(g)
	return q.DequeueGuarded(g)
}

// Len counts queued values; meaningful only quiescently.
func (q *WFQueue[T]) Len() int {
	g := q.d.Pin()
	defer q.d.unpin(g)
	return q.LenGuarded(g)
}

// TryEnqueue is Enqueue with backpressure: when the arena stays
// exhausted after the Domain's emergency-reclamation pipeline it returns
// ErrArenaExhausted instead of panicking.
func (q *WFQueue[T]) TryEnqueue(v T) error {
	g := q.d.Pin()
	defer q.d.unpin(g)
	return q.TryEnqueueGuarded(g, v)
}

// EnqueueGuarded is Enqueue on a caller-held guard.
func (q *WFQueue[T]) EnqueueGuarded(g *Guard[T], v T) {
	box := g.Alloc(v)
	q.q.Enqueue(g.tid, box.handle())
}

// TryEnqueueGuarded is TryEnqueue on a caller-held guard. The helping
// protocol allocates queue nodes internally; an exhaustion hit inside
// that machinery is caught here, the value box is reclaimed, and the
// queue is left unchanged.
func (q *WFQueue[T]) TryEnqueueGuarded(g *Guard[T], v T) (err error) {
	box, err := g.TryAlloc(v)
	if err != nil {
		return err
	}
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok && errors.Is(e, ErrArenaExhausted) {
				g.Dealloc(box)
				err = ErrArenaExhausted
				return
			}
			panic(r)
		}
	}()
	q.q.Enqueue(g.tid, box.handle())
	return nil
}

// DequeueGuarded is Dequeue on a caller-held guard.
func (q *WFQueue[T]) DequeueGuarded(g *Guard[T]) (v T, ok bool) {
	h, ok := q.q.Dequeue(g.tid)
	if !ok {
		return v, false
	}
	// h is the value box's handle, delivered to exactly one dequeuer. The
	// box was never published as a traversable node, so no other goroutine
	// can hold it: unbox and free it directly, without a retire round trip.
	box := Ref[T]{h}
	v = g.Value(box)
	g.Dealloc(box)
	return v, true
}

// EnqueueAll appends every value in slice order under one guard lease.
// The helping protocol manages protection per operation internally, so
// this batch amortizes the lease (and the per-op value-box allocation
// stays as is); it panics when the arena stays exhausted after the
// emergency-reclamation pipeline, with values already enqueued staying
// enqueued (use TryEnqueueAll to observe partial progress).
func (q *WFQueue[T]) EnqueueAll(vs []T) {
	g := q.d.pinBatch()
	defer q.d.unpin(g)
	q.EnqueueAllGuarded(g, vs)
}

// EnqueueAllGuarded is EnqueueAll on a caller-held guard.
func (q *WFQueue[T]) EnqueueAllGuarded(g *Guard[T], vs []T) {
	if _, err := q.TryEnqueueAllGuarded(g, vs); err != nil {
		panic(exhaustedPanic(q.d.arena.Capacity()))
	}
}

// TryEnqueueAll is EnqueueAll with backpressure: on exhaustion mid-run
// it stops, reporting the enqueued prefix length alongside
// ErrArenaExhausted — callers resume from vs[enqueued:].
func (q *WFQueue[T]) TryEnqueueAll(vs []T) (enqueued int, err error) {
	g := q.d.pinBatch()
	defer q.d.unpin(g)
	return q.TryEnqueueAllGuarded(g, vs)
}

// TryEnqueueAllGuarded is TryEnqueueAll on a caller-held guard.
func (q *WFQueue[T]) TryEnqueueAllGuarded(g *Guard[T], vs []T) (enqueued int, err error) {
	enqueued = g.runLeaseBatch(len(vs), func(i int) bool {
		err = q.TryEnqueueGuarded(g, vs[i])
		return err == nil
	})
	return enqueued, err
}

// DequeueN removes up to n values under one guard lease, stopping early
// when the queue empties. Values come back in FIFO order.
func (q *WFQueue[T]) DequeueN(n int) []T {
	g := q.d.pinBatch()
	defer q.d.unpin(g)
	return q.DequeueNGuarded(g, n)
}

// DequeueNGuarded is DequeueN on a caller-held guard.
func (q *WFQueue[T]) DequeueNGuarded(g *Guard[T], n int) []T {
	out := make([]T, 0, n)
	g.runLeaseBatch(n, func(int) bool {
		v, ok := q.DequeueGuarded(g)
		if ok {
			out = append(out, v)
		}
		return ok
	})
	return out
}

// LenGuarded is Len on a caller-held guard.
func (q *WFQueue[T]) LenGuarded(g *Guard[T]) int { return q.q.Len() }
