package wfe

import "math/bits"

// map node layout: word 0 = next link (mark bit = logically deleted),
// word 1 = key (immutable after publication).
const (
	mapNext = 0
	mapKey  = 1
)

// Three map protection slots rotate across the prev/cur/next roles of the
// traversal window, exactly as in the paper's list benchmark (see find).

// HashMap is Michael's lock-free hash map of uint64 keys to T values on
// the typed Domain façade (the structure behind the paper's Figures 7 and
// 10): a fixed array of buckets, each a Harris–Michael sorted linked list.
// It needs 3 protection slots per guard (Options.MaxSlots >= 3, which the
// default satisfies).
//
// The plain methods (Insert, Delete, Get, Put, Len) are guardless: each
// leases a guard from the Domain's guard runtime for the duration of the
// operation, so any number of goroutines may call them. The Guarded
// variants take an explicit or pinned Guard and skip the lease — use them
// in hot loops.
type HashMap[T any] struct {
	d       *Domain[T]
	buckets []Atomic[T]
	mask    uint64
}

// NewHashMap creates a map with at least minBuckets buckets (rounded up to
// a power of two) on the Domain. Size buckets near the expected key count
// to keep chains short.
func NewHashMap[T any](d *Domain[T], minBuckets int) *HashMap[T] {
	if minBuckets < 1 {
		minBuckets = 1
	}
	n := 1 << bits.Len(uint(minBuckets-1))
	return &HashMap[T]{d: d, buckets: make([]Atomic[T], n), mask: uint64(n - 1)}
}

// bucket picks the chain via a Fibonacci multiplicative hash.
func (m *HashMap[T]) bucket(key uint64) *Atomic[T] {
	return &m.buckets[(key*0x9E3779B97F4A7C15)>>32&m.mask]
}

// window is the result of a traversal: the node owning the link to cur
// (nil Ref = the bucket head), and the clean link values of cur and its
// successor.
type window[T any] struct {
	prev Ref[T]
	cur  Ref[T] // nil means end of chain
	next Ref[T] // clean successor link of cur (valid when cur != nil)
}

// loadPrev re-reads the link out of which cur was found, mark bit
// included, so the caller can detect the window moving under it.
func (m *HashMap[T]) loadPrev(g *Guard[T], head *Atomic[T], prev Ref[T]) Ref[T] {
	if prev.IsNil() {
		return head.Load()
	}
	return g.Load(prev, mapNext)
}

// casPrev swings the link out of which cur was found.
func (m *HashMap[T]) casPrev(g *Guard[T], head *Atomic[T], prev, old, new Ref[T]) bool {
	if prev.IsNil() {
		return head.CompareAndSwap(old, new)
	}
	return g.CompareAndSwap(prev, mapNext, old, new)
}

// find positions the window at the first node with key >= key, unlinking
// marked nodes it passes (Michael's find). The three protection slots
// rotate across the prev/cur/next roles, so at most three protections
// cover the whole traversal — what lets bounded schemes (HP, HE, WFE)
// manage an unbounded chain.
func (m *HashMap[T]) find(g *Guard[T], head *Atomic[T], key uint64) (bool, window[T]) {
retry:
	for {
		var prev Ref[T]
		iCur, iNext := 1, 2
		iPrev := 0
		cur := g.Protect(head, iCur)
		for {
			if cur.IsNil() {
				return false, window[T]{prev: prev, cur: cur}
			}
			next := g.ProtectWord(cur, mapNext, iNext)
			if m.loadPrev(g, head, prev) != cur {
				continue retry // window moved under us
			}
			if next.Marked() {
				// cur is logically deleted: unlink it here.
				clean := next.Unmarked()
				if !m.casPrev(g, head, prev, cur, clean) {
					continue retry
				}
				g.Retire(cur)
				cur = clean
				iCur, iNext = iNext, iCur
				continue
			}
			ckey := g.LoadMeta(cur, mapKey)
			if ckey >= key {
				return ckey == key, window[T]{prev: prev, cur: cur, next: next}
			}
			prev = cur
			iPrev, iCur, iNext = iCur, iNext, iPrev
			cur = next
		}
	}
}

// Insert adds key→val; it reports false (leaving the map unchanged) when
// the key is already present.
func (m *HashMap[T]) Insert(key uint64, val T) bool {
	g := m.d.Pin()
	defer m.d.unpin(g)
	return m.InsertGuarded(g, key, val)
}

// Delete removes key, reporting whether it was present. The victim is
// marked first (the linearization point) and unlinked here or by a later
// traversal.
func (m *HashMap[T]) Delete(key uint64) bool {
	g := m.d.Pin()
	defer m.d.unpin(g)
	return m.DeleteGuarded(g, key)
}

// Get returns the value stored under key.
func (m *HashMap[T]) Get(key uint64) (v T, ok bool) {
	g := m.d.Pin()
	defer m.d.unpin(g)
	return m.GetGuarded(g, key)
}

// Put inserts key→val, or replaces an existing key's node with a freshly
// allocated one (mark, swing, retire). Replacement rather than in-place
// mutation is what keeps values safely immutable for concurrent readers —
// and why read-mostly workloads still exercise reclamation (paper §5).
func (m *HashMap[T]) Put(key uint64, val T) {
	g := m.d.Pin()
	defer m.d.unpin(g)
	m.PutGuarded(g, key, val)
}

// Len counts reachable, unmarked nodes; meaningful only quiescently.
func (m *HashMap[T]) Len() int {
	g := m.d.Pin()
	defer m.d.unpin(g)
	return m.LenGuarded(g)
}

// TryInsert is Insert with backpressure: when the key is absent and the
// arena stays exhausted after the Domain's emergency-reclamation
// pipeline, it returns ErrArenaExhausted instead of panicking. ok
// reports the insert outcome (false with a nil error means the key was
// already present).
func (m *HashMap[T]) TryInsert(key uint64, val T) (ok bool, err error) {
	g := m.d.Pin()
	defer m.d.unpin(g)
	return m.TryInsertGuarded(g, key, val)
}

// InsertGuarded is Insert on a caller-held guard.
func (m *HashMap[T]) InsertGuarded(g *Guard[T], key uint64, val T) bool {
	ok, err := m.TryInsertGuarded(g, key, val)
	if err != nil {
		panic(exhaustedPanic(m.d.arena.Capacity()))
	}
	return ok
}

// TryInsertGuarded is TryInsert on a caller-held guard.
func (m *HashMap[T]) TryInsertGuarded(g *Guard[T], key uint64, val T) (ok bool, err error) {
	g.Begin()
	defer g.End()
	head := m.bucket(key)
	var n Ref[T]
	for {
		found, w := m.find(g, head, key)
		if found {
			if !n.IsNil() {
				g.Dealloc(n) // never published: no reader can hold it
			}
			return false, nil
		}
		if n.IsNil() {
			// Allocate only once the key is known absent, so a lookup-heavy
			// workload never pays allocation (or pressure) for misses that
			// turn out to be hits. The lazy site sits inside the protected
			// section, so an exhausted arena is handled by dropping the
			// protection, running the emergency pipeline unprotected, and
			// restarting the traversal with the node in hand.
			var ok bool
			if n, ok = g.tryAllocFast(val); !ok {
				g.End()
				n, err = g.TryAlloc(val)
				g.Begin()
				if err != nil {
					return false, err
				}
				g.StoreMeta(n, mapKey, key)
				continue // the window went stale while unprotected
			}
			g.StoreMeta(n, mapKey, key)
		}
		g.Store(n, mapNext, w.cur)
		if m.casPrev(g, head, w.prev, w.cur, n) {
			return true, nil
		}
	}
}

// DeleteGuarded is Delete on a caller-held guard.
func (m *HashMap[T]) DeleteGuarded(g *Guard[T], key uint64) bool {
	g.Begin()
	defer g.End()
	head := m.bucket(key)
	for {
		found, w := m.find(g, head, key)
		if !found {
			return false
		}
		if !g.CompareAndSwap(w.cur, mapNext, w.next, w.next.WithMark()) {
			continue // successor changed or someone else marked it
		}
		if m.casPrev(g, head, w.prev, w.cur, w.next) {
			g.Retire(w.cur)
		}
		return true
	}
}

// GetGuarded is Get on a caller-held guard.
func (m *HashMap[T]) GetGuarded(g *Guard[T], key uint64) (v T, ok bool) {
	g.Begin()
	defer g.End()
	found, w := m.find(g, m.bucket(key), key)
	if !found {
		return v, false
	}
	return g.Value(w.cur), true
}

// TryPut is Put with backpressure: when the arena stays exhausted after
// the Domain's emergency-reclamation pipeline it returns
// ErrArenaExhausted (leaving the map unchanged) instead of panicking.
func (m *HashMap[T]) TryPut(key uint64, val T) error {
	g := m.d.Pin()
	defer m.d.unpin(g)
	return m.TryPutGuarded(g, key, val)
}

// PutGuarded is Put on a caller-held guard.
func (m *HashMap[T]) PutGuarded(g *Guard[T], key uint64, val T) {
	if err := m.TryPutGuarded(g, key, val); err != nil {
		panic(exhaustedPanic(m.d.arena.Capacity()))
	}
}

// TryPutGuarded is TryPut on a caller-held guard.
func (m *HashMap[T]) TryPutGuarded(g *Guard[T], key uint64, val T) error {
	// Put always consumes a node (insert and replace both link a fresh
	// one), so allocate before entering the protected section: an
	// exhausted-arena stall then runs the emergency pipeline with no
	// reservations held and no epoch announced, leaving every block
	// reclaimable by the concurrent scans the pipeline waits on.
	n, err := g.TryAlloc(val)
	if err != nil {
		return err
	}
	g.StoreMeta(n, mapKey, key)
	g.Begin()
	defer g.End()
	m.putNode(g, key, n)
	return nil
}

// putNode links the pre-allocated node n (key metadata already stamped)
// under key, replacing any existing node (mark, swing, retire). The
// caller owns the protected section; n is consumed unconditionally.
func (m *HashMap[T]) putNode(g *Guard[T], key uint64, n Ref[T]) {
	head := m.bucket(key)
	for {
		found, w := m.find(g, head, key)
		if found {
			// Logically delete the old node, then swing prev to the
			// replacement in its place.
			if !g.CompareAndSwap(w.cur, mapNext, w.next, w.next.WithMark()) {
				continue
			}
			g.Store(n, mapNext, w.next)
			if m.casPrev(g, head, w.prev, w.cur, n) {
				g.Retire(w.cur)
				return
			}
			// A traversal unlinked (and retired) the marked node first;
			// retry — the next find will take the insert path.
			continue
		}
		g.Store(n, mapNext, w.cur)
		if m.casPrev(g, head, w.prev, w.cur, n) {
			return
		}
	}
}

// MultiGet looks up every key in one batch: one guard lease and — on
// era, epoch and interval schemes — one protection span cover the whole
// burst (see batch.go for the amortization model). Results are
// positional: vals[i], oks[i] answer keys[i].
func (m *HashMap[T]) MultiGet(keys []uint64) (vals []T, oks []bool) {
	g := m.d.pinBatch()
	defer m.d.unpin(g)
	return m.MultiGetGuarded(g, keys)
}

// MultiGetGuarded is MultiGet on a caller-held guard.
func (m *HashMap[T]) MultiGetGuarded(g *Guard[T], keys []uint64) (vals []T, oks []bool) {
	vals = make([]T, len(keys))
	oks = make([]bool, len(keys))
	g.runBatch(len(keys), func(i int) bool {
		vals[i], oks[i] = m.GetGuarded(g, keys[i])
		return true
	})
	return vals, oks
}

// MultiDelete removes every key in one batch; oks[i] reports whether
// keys[i] was present. The unlinked nodes are retired as one burst at
// the end of the batch, so the cleanup cadence ticks once instead of
// once per key.
func (m *HashMap[T]) MultiDelete(keys []uint64) (oks []bool) {
	g := m.d.pinBatch()
	defer m.d.unpin(g)
	return m.MultiDeleteGuarded(g, keys)
}

// MultiDeleteGuarded is MultiDelete on a caller-held guard.
func (m *HashMap[T]) MultiDeleteGuarded(g *Guard[T], keys []uint64) (oks []bool) {
	oks = make([]bool, len(keys))
	g.runBatch(len(keys), func(i int) bool {
		oks[i] = m.DeleteGuarded(g, keys[i])
		return true
	})
	return oks
}

// MultiPut stores every key→val pair in one batch. Like Put it panics
// when the arena stays exhausted after the emergency-reclamation
// pipeline; pairs already applied stay applied (use TryMultiPut to
// observe partial progress instead).
func (m *HashMap[T]) MultiPut(keys []uint64, vals []T) {
	g := m.d.pinBatch()
	defer m.d.unpin(g)
	m.MultiPutGuarded(g, keys, vals)
}

// MultiPutGuarded is MultiPut on a caller-held guard.
func (m *HashMap[T]) MultiPutGuarded(g *Guard[T], keys []uint64, vals []T) {
	if _, err := m.TryMultiPutGuarded(g, keys, vals); err != nil {
		panic(exhaustedPanic(m.d.arena.Capacity()))
	}
}

// TryMultiPut is MultiPut with backpressure: every node the batch needs
// is allocated up front, before any protection is announced (the PR 9
// discipline, batch-wide). When the arena runs out mid-run the pairs
// whose nodes were obtained are still applied, and TryMultiPut reports
// that prefix length alongside ErrArenaExhausted — callers resume from
// keys[applied:].
func (m *HashMap[T]) TryMultiPut(keys []uint64, vals []T) (applied int, err error) {
	g := m.d.pinBatch()
	defer m.d.unpin(g)
	return m.TryMultiPutGuarded(g, keys, vals)
}

// TryMultiPutGuarded is TryMultiPut on a caller-held guard.
func (m *HashMap[T]) TryMultiPutGuarded(g *Guard[T], keys []uint64, vals []T) (applied int, err error) {
	if len(keys) != len(vals) {
		panic("wfe: MultiPut keys/vals length mismatch")
	}
	// Allocate the whole run before the batch opens its protection span:
	// an exhausted-arena stall then runs the emergency pipeline with no
	// reservations held, exactly as in the per-op TryPutGuarded.
	nodes := g.scratchNodes(0, len(keys))
	for i := range keys {
		n, aerr := g.TryAlloc(vals[i])
		if aerr != nil {
			err = aerr
			break
		}
		g.StoreMeta(n, mapKey, keys[i])
		nodes = append(nodes, n)
	}
	applied = g.runBatch(len(nodes), func(i int) bool {
		m.putNode(g, keys[i], nodes[i])
		return true
	})
	return applied, err
}

// LenGuarded is Len on a caller-held guard.
func (m *HashMap[T]) LenGuarded(g *Guard[T]) int {
	n := 0
	for i := range m.buckets {
		for r := m.buckets[i].Load(); !r.IsNil(); {
			next := g.Load(r, mapNext)
			if !next.Marked() {
				n++
			}
			r = next.Unmarked()
		}
	}
	return n
}
