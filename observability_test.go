// Hostile tests for the observability runtime: the tick sampler's
// allocation-free guarantee, the background Sampler's lifecycle
// (idempotent start, double stop, no leaked goroutine), and trace
// snapshots taken while 8x-oversubscribed guardless churn is writing
// events — run these under -race; the trace reader validates every
// snapshot against the seqlock publication protocol.
package wfe_test

import (
	"bytes"
	"encoding/json"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wfe"
	"wfe/internal/quiesce"
)

// sampleSink defeats dead-store elimination in TestSampleAllocFree.
var sampleSink wfe.TelemetrySample

// TestSampleAllocFree pins down the contract Sample's doc comment makes:
// one row of the telemetry time series costs zero heap allocations, so a
// recorder (or the background Sampler) can call it every scheduler tick
// without disturbing the workload it is observing.
func TestSampleAllocFree(t *testing.T) {
	for _, kind := range wfe.AllSchemes() {
		t.Run(kind.String(), func(t *testing.T) {
			d, err := wfe.NewDomain[uint64](wfe.Options{Scheme: kind, Capacity: 1 << 12})
			if err != nil {
				t.Fatal(err)
			}
			// Dirty the counters first so Sample walks real state, not zeros.
			s := wfe.NewStack[uint64](d)
			for i := uint64(0); i < 256; i++ {
				s.Push(i)
			}
			for i := 0; i < 256; i++ {
				s.Pop()
			}
			allocs := testing.AllocsPerRun(200, func() {
				sampleSink = d.Sample()
			})
			if allocs != 0 {
				t.Fatalf("Domain.Sample allocated %.1f times per call; want 0", allocs)
			}
		})
	}
}

// TestSamplerStartStopIdempotent exercises the Sampler lifecycle the way
// a sloppy embedder would: double starts must hand back the same running
// sampler, double stops must be safe, a restart after stop must build a
// fresh one, and no goroutine may outlive its Stop.
func TestSamplerStartStopIdempotent(t *testing.T) {
	baseline := runtime.NumGoroutine()

	d, err := wfe.NewDomain[uint64](wfe.Options{Capacity: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	if d.Sampler() != nil {
		t.Fatal("Sampler() non-nil before StartSampler")
	}

	s1 := d.StartSampler(wfe.SamplerConfig{Interval: time.Millisecond})
	if s1 == nil || !s1.Running() {
		t.Fatal("StartSampler did not return a running sampler")
	}
	if s2 := d.StartSampler(wfe.SamplerConfig{Interval: 5 * time.Millisecond}); s2 != s1 {
		t.Fatal("second StartSampler while running returned a different sampler")
	}
	if d.Sampler() != s1 {
		t.Fatal("Sampler() accessor disagrees with StartSampler")
	}

	// Let it tick at least once so Stop exercises a sampler with history.
	deadline := time.Now().Add(2 * time.Second)
	for s1.Ticks() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sampler never ticked")
		}
		time.Sleep(time.Millisecond)
	}

	s1.Stop()
	s1.Stop() // double stop must be a no-op
	if s1.Running() {
		t.Fatal("sampler still Running after Stop")
	}

	s3 := d.StartSampler(wfe.SamplerConfig{Interval: time.Millisecond})
	if s3 == s1 {
		t.Fatal("StartSampler after Stop returned the stopped sampler")
	}
	if !s3.Running() {
		t.Fatal("restarted sampler not running")
	}
	s3.Stop()

	// The run goroutines must be gone. NumGoroutine is global and noisy,
	// so poll until it settles back to (at most) the baseline.
	deadline = time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTraceSnapshotDuringChurn is the tracing tentpole's hostile case:
// 8x more goroutines than guards hammer the guardless API — with the
// debug arena armed — while a reader thread concurrently snapshots the
// rings and serialises Chrome traces. The seqlock protocol must keep
// every snapshot internally consistent (no torn events), snapshots must
// never stop the writers, and after a quiescent drain the trace must
// still decode as a wfe-trace/v1 artifact. Run with -race.
func TestTraceSnapshotDuringChurn(t *testing.T) {
	const maxGuards = 4
	d, err := wfe.NewDomain[uint64](wfe.Options{
		Scheme:    wfe.WFE,
		Capacity:  1 << 14,
		MaxGuards: maxGuards,
		Debug:     true,
		Trace:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d.TraceEnabled() {
		t.Fatal("Options.Trace did not enable tracing")
	}
	s := wfe.NewStack[uint64](d)
	m := wfe.NewHashMap[uint64](d, 32)

	var stop atomic.Bool
	var wg sync.WaitGroup
	workers := 8 * maxGuards
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for i := uint64(0); !stop.Load(); i++ {
				s.Push(id<<32 | i)
				s.Pop()
				m.Insert(id<<8|i%97, i)
				m.Delete(id<<8 | i%97)
			}
		}(uint64(w))
	}

	// Reader: snapshot and serialise concurrently with the writers, and
	// flip tracing off/on mid-churn to stress the enabled fast path.
	readerDone := make(chan int)
	go func() {
		snapshots := 0
		for !stop.Load() {
			events := d.TraceEvents()
			for _, ev := range events {
				if ev.Kind == "" {
					panic("torn trace event: empty kind in snapshot")
				}
			}
			if err := d.WriteTrace(io.Discard); err != nil {
				panic(err)
			}
			if snapshots%8 == 3 {
				d.SetTraceEnabled(false)
				d.SetTraceEnabled(true)
			}
			snapshots++
		}
		readerDone <- snapshots
	}()

	time.Sleep(300 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	snapshots := <-readerDone
	if snapshots == 0 {
		t.Fatal("reader never completed a snapshot")
	}

	quiesce.Settle(d)
	if err := quiesce.Check(d, true); err != nil {
		t.Fatalf("quiesce after traced churn: %v", err)
	}

	// The final trace must decode as a Chrome trace-event artifact.
	var buf bytes.Buffer
	if err := d.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema      string `json:"schema"`
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			TS   any    `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.Schema != "wfe-trace/v1" {
		t.Fatalf("trace schema = %q, want wfe-trace/v1", doc.Schema)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events after churn")
	}
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" || ev.Ph == "" {
			t.Fatalf("trace event %d missing name/ph: %+v", i, ev)
		}
	}
	if len(d.TraceEvents()) == 0 {
		t.Fatal("TraceEvents empty after churn")
	}
}
