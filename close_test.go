package wfe_test

// Domain.Close lifecycle: the auto-started sampler goroutine must die
// with the Domain instead of leaking, and Close must be idempotent and
// safe on Domains that never started one.

import (
	"runtime"
	"testing"
	"time"

	"wfe"
)

// waitGoroutines polls until the goroutine count drops back to at most
// want, failing after a generous deadline — goroutine exits are
// asynchronous, so a single instantaneous count would flake.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // nudge finalizer/timer goroutines to settle
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d running, want <= %d\n%s",
				runtime.NumGoroutine(), want, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestDomainCloseStopsSamplerGoroutine(t *testing.T) {
	before := runtime.NumGoroutine()
	d, err := wfe.NewDomain[int](wfe.Options{Capacity: 1 << 12, SampleEvery: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	s := d.Sampler()
	if s == nil || !s.Running() {
		t.Fatal("SampleEvery did not auto-start a running sampler")
	}
	// Let it actually sample before teardown.
	deadline := time.Now().Add(2 * time.Second)
	for s.Ticks() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if s.Running() {
		t.Fatal("sampler still running after Close")
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// History and rates stay readable after Close.
	if s.Ticks() == 0 {
		t.Error("sampler collected no ticks before Close")
	}
	waitGoroutines(t, before)
}

func TestDomainCloseWithoutSampler(t *testing.T) {
	d, err := wfe.NewDomain[int](wfe.Options{Capacity: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close on a sampler-less Domain: %v", err)
	}
}

func TestAutoSwitchRequiresSampleEvery(t *testing.T) {
	if _, err := wfe.NewDomain[int](wfe.Options{Capacity: 1 << 12, AutoSwitch: true}); err == nil {
		t.Fatal("AutoSwitch without SampleEvery must be a configuration error")
	}
}
