// Fuzz targets for the promoted kv workloads: random operation sequences
// run against a plain Go map oracle, with the debug arena's use-after-free
// detection armed and the reclamation scheme itself fuzzed (the first
// input byte selects the SchemeKind and, for the wait-free schemes, the
// forced-slow-path stress mode). CI runs a short `go test -fuzz` smoke for
// each target; the seed corpus covers every operation and the
// collision-heavy small-key regime.
package wfe_test

import (
	"testing"

	"wfe"
)

// Each input byte past the selector is one operation: the top two bits
// select the op, the low six the key — small key ranges maximise chain and
// subtree collisions, which is where reclamation bugs live. fuzzMaxOps
// bounds the decoded sequence so a huge input cannot exhaust the arena.
const fuzzMaxOps = 2048

// fuzzDomain builds the Debug-mode domain a fuzz run mutates. The selector
// byte picks the scheme (low bits) and the forced-slow-path mode (top bit).
// blocksPerOp is the structure's worst-case allocations per operation; it
// sizes the arena so even the never-recycling Leak baseline cannot exhaust
// it within fuzzMaxOps operations.
func fuzzDomain(t *testing.T, sel byte, blocksPerOp int) *wfe.Domain[uint64] {
	schemes := wfe.AllSchemes()
	kind := schemes[int(sel&0x7F)%len(schemes)]
	capacity := blocksPerOp*fuzzMaxOps + 64
	d, err := wfe.NewDomain[uint64](wfe.Options{
		Scheme:        kind,
		Capacity:      capacity,
		MaxGuards:     2,
		EraFreq:       16,
		CleanupFreq:   4,
		ForceSlowPath: sel&0x80 != 0,
		Debug:         true,
	})
	if err != nil {
		t.Fatal(err) // inside the fuzz target only t, never f, may report
	}
	return d
}

// fuzzSeeds is the shared seed corpus: every op class, duplicate inserts,
// delete-then-get, put-replace churn, and a long mixed sequence.
func fuzzSeeds(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{0, 0x01, 0x41, 0x81, 0xC1})                                  // insert/delete/get/put on one key
	f.Add([]byte{1, 0x05, 0x05, 0x45, 0x85, 0xC5, 0x45})                      // duplicate insert, delete twice
	f.Add([]byte{3, 0xC2, 0xC2, 0xC2, 0x42, 0x82})                            // put-replace churn then delete
	f.Add([]byte{0x84, 0x01, 0x02, 0x03, 0x41, 0x42, 0x43, 0x81, 0x82, 0x83}) // slow path
	long := []byte{2}
	for i := 0; i < 64; i++ {
		long = append(long, byte(i*37))
	}
	f.Add(long)
}

// runKVFuzz drives one decoded op sequence against the structure and a
// map oracle, checking every result, then audits Len and every surviving
// key's value.
func runKVFuzz(t *testing.T, d *wfe.Domain[uint64], api conformAPI, data []byte) {
	model := make(map[uint64]uint64)
	g := d.Pin()
	defer d.Unpin(g)
	ops := data
	if len(ops) > fuzzMaxOps {
		ops = ops[:fuzzMaxOps]
	}
	for i, b := range ops {
		oracleStep(t, api, g, model, i, int(b>>6), uint64(b&0x3F))
	}
	if n := api.length(g); n != len(model) {
		t.Fatalf("Len = %d, model has %d keys", n, len(model))
	}
	for key, wantV := range model {
		gotV, ok := api.get(g, key)
		if !ok || gotV != wantV {
			t.Fatalf("final get(%d) = %d,%v, model says %d,true", key, gotV, ok, wantV)
		}
	}
}

func FuzzHashMap(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		d := fuzzDomain(t, data[0], 1)
		m := wfe.NewHashMap[uint64](d, 8) // few buckets: long chains
		runKVFuzz(t, d, hashMapAPI{m}, data[1:])
	})
}

func FuzzTree(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		d := fuzzDomain(t, data[0], 2) // insert allocates a leaf and a router
		tr := wfe.NewTree[uint64](d)
		runKVFuzz(t, d, treeAPI{tr}, data[1:])
	})
}
