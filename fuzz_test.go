// Fuzz targets for the promoted kv workloads: random operation sequences
// run against a plain Go map oracle, with the debug arena's use-after-free
// detection armed and the reclamation scheme itself fuzzed (the first
// input byte selects the SchemeKind and, for the wait-free schemes, the
// forced-slow-path stress mode). CI runs a short `go test -fuzz` smoke for
// each target; the seed corpus covers every operation and the
// collision-heavy small-key regime.
package wfe_test

import (
	"testing"

	"wfe"
)

// Each input byte past the selector is one operation: the top two bits
// select the op, the low six the key — small key ranges maximise chain and
// subtree collisions, which is where reclamation bugs live. fuzzMaxOps
// bounds the decoded sequence so a huge input cannot exhaust the arena.
const fuzzMaxOps = 2048

// fuzzDomain builds the Debug-mode domain a fuzz run mutates. The selector
// byte picks the scheme (low bits) and the forced-slow-path mode (top bit).
// blocksPerOp is the structure's worst-case allocations per operation; it
// sizes the arena so even the never-recycling Leak baseline cannot exhaust
// it within fuzzMaxOps operations.
func fuzzDomain(t *testing.T, sel byte, blocksPerOp int) *wfe.Domain[uint64] {
	schemes := wfe.AllSchemes()
	kind := schemes[int(sel&0x7F)%len(schemes)]
	capacity := blocksPerOp*fuzzMaxOps + 64
	d, err := wfe.NewDomain[uint64](wfe.Options{
		Scheme:        kind,
		Capacity:      capacity,
		MaxGuards:     2,
		EraFreq:       16,
		CleanupFreq:   4,
		ForceSlowPath: sel&0x80 != 0,
		Debug:         true,
	})
	if err != nil {
		t.Fatal(err) // inside the fuzz target only t, never f, may report
	}
	return d
}

// fuzzSeeds is the shared seed corpus: every op class, duplicate inserts,
// delete-then-get, put-replace churn, and a long mixed sequence.
func fuzzSeeds(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{0, 0x01, 0x41, 0x81, 0xC1})                                  // insert/delete/get/put on one key
	f.Add([]byte{1, 0x05, 0x05, 0x45, 0x85, 0xC5, 0x45})                      // duplicate insert, delete twice
	f.Add([]byte{3, 0xC2, 0xC2, 0xC2, 0x42, 0x82})                            // put-replace churn then delete
	f.Add([]byte{0x84, 0x01, 0x02, 0x03, 0x41, 0x42, 0x43, 0x81, 0x82, 0x83}) // slow path
	long := []byte{2}
	for i := 0; i < 64; i++ {
		long = append(long, byte(i*37))
	}
	f.Add(long)
}

// runKVFuzz drives one decoded op sequence against the structure and a
// map oracle, checking every result, then audits Len and every surviving
// key's value.
func runKVFuzz(t *testing.T, d *wfe.Domain[uint64], api conformAPI, data []byte) {
	model := make(map[uint64]uint64)
	g := d.Pin()
	defer d.Unpin(g)
	ops := data
	if len(ops) > fuzzMaxOps {
		ops = ops[:fuzzMaxOps]
	}
	for i, b := range ops {
		oracleStep(t, api, g, model, i, int(b>>6), uint64(b&0x3F))
	}
	if n := api.length(g); n != len(model) {
		t.Fatalf("Len = %d, model has %d keys", n, len(model))
	}
	for key, wantV := range model {
		gotV, ok := api.get(g, key)
		if !ok || gotV != wantV {
			t.Fatalf("final get(%d) = %d,%v, model says %d,true", key, gotV, ok, wantV)
		}
	}
}

// runKVBatchFuzz is runKVFuzz for the HashMap's batch entry points:
// consecutive ops of the same class are coalesced into runs of at most
// width and flushed through MultiDelete/MultiGet/MultiPut, validating
// every positional result against the oracle. The batch items run
// sequentially on one guard, so per-item expectations are exactly the
// per-op ones — duplicates within a run included. Inserts have no batch
// twin and go through the per-op path, which also exercises mixing
// per-op and batch calls on one pinned guard.
func runKVBatchFuzz(t *testing.T, d *wfe.Domain[uint64], m *wfe.HashMap[uint64], width int, data []byte) {
	model := make(map[uint64]uint64)
	api := hashMapAPI{m}
	g := d.Pin()
	defer d.Unpin(g)
	ops := data
	if len(ops) > fuzzMaxOps {
		ops = ops[:fuzzMaxOps]
	}
	run := -1 // op class of the pending run, or -1
	var ks, vs []uint64
	flush := func() {
		switch run {
		case 1: // delete run
			oks := m.MultiDeleteGuarded(g, ks)
			for j, k := range ks {
				_, want := model[k]
				if oks[j] != want {
					t.Fatalf("MultiDelete[%d](%d) = %v, model says %v", j, k, oks[j], want)
				}
				delete(model, k)
			}
		case 2: // get run
			vals, oks := m.MultiGetGuarded(g, ks)
			for j, k := range ks {
				wantV, want := model[k]
				if oks[j] != want || (want && vals[j] != wantV) {
					t.Fatalf("MultiGet[%d](%d) = %d,%v, model says %d,%v",
						j, k, vals[j], oks[j], wantV, want)
				}
			}
		case 3: // put run
			m.MultiPutGuarded(g, ks, vs)
			for j, k := range ks { // sequential application: last value wins
				model[k] = vs[j]
			}
		}
		run = -1
		ks, vs = ks[:0], vs[:0]
	}
	for i, b := range ops {
		op, key := int(b>>6), uint64(b&0x3F)
		if op != run || len(ks) == width {
			flush()
		}
		if op == 0 { // insert: per-op only
			oracleStep(t, api, g, model, i, op, key)
			continue
		}
		run = op
		ks = append(ks, key)
		vs = append(vs, uint64(i)+1) // what oracleStep's put would store
	}
	flush()
	if n := api.length(g); n != len(model) {
		t.Fatalf("Len = %d, model has %d keys", n, len(model))
	}
	for key, wantV := range model {
		gotV, ok := api.get(g, key)
		if !ok || gotV != wantV {
			t.Fatalf("final get(%d) = %d,%v, model says %d,true", key, gotV, ok, wantV)
		}
	}
}

func FuzzHashMap(f *testing.F) {
	fuzzSeeds(f)
	// Batch-mode seeds: byte 1 with the top bit set routes op runs
	// through the Multi* entry points (low nibble picks the width).
	f.Add([]byte{0, 0x81, 0xC1, 0xC2, 0xC3, 0x41, 0x42, 0x81, 0x82, 0x83})
	f.Add([]byte{1, 0x8E, 0x01, 0x01, 0xC1, 0xC1, 0x41, 0x41, 0x81, 0x81})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		d := fuzzDomain(t, data[0], 1)
		m := wfe.NewHashMap[uint64](d, 8) // few buckets: long chains
		// The second byte is the batch selector: top bit on sends op runs
		// through MultiPut/MultiDelete/MultiGet instead of the per-op
		// methods, with the low nibble sizing the coalescing window.
		if len(data) > 1 && data[1]&0x80 != 0 {
			runKVBatchFuzz(t, d, m, int(data[1]&0x0F)+2, data[2:])
			return
		}
		runKVFuzz(t, d, hashMapAPI{m}, data[1:])
	})
}

func FuzzTree(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		d := fuzzDomain(t, data[0], 2) // insert allocates a leaf and a router
		tr := wfe.NewTree[uint64](d)
		runKVFuzz(t, d, treeAPI{tr}, data[1:])
	})
}
