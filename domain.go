package wfe

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"wfe/internal/failpoint"
	"wfe/internal/guardpool"
	"wfe/internal/mem"
	"wfe/internal/pack"
	"wfe/internal/reclaim"
	"wfe/internal/schemes"
	"wfe/internal/trace"
)

// fpSwitchDrain fires at each iteration of the live scheme switch's
// drain wait: an injected sleep holds the switch inside the gated window
// (the chaos harness's alloc-fail-during-switch schedule), an injected
// error aborts the switch with ErrSwitchBusy.
var fpSwitchDrain = failpoint.New("switch-drain")

// SchemeKind selects a safe-memory-reclamation scheme for a Domain. The
// zero value is WFE, the paper's contribution; the others are the baselines
// of its evaluation plus the §2.4 wait-free 2GEIBR extension.
type SchemeKind int

const (
	// WFE is Wait-Free Eras (paper Figure 4): every reclamation operation
	// completes in a bounded number of steps.
	WFE SchemeKind = iota
	// HE is Hazard Eras (paper Figure 1), the lock-free scheme WFE extends.
	HE
	// HP is classical Hazard Pointers (Michael, TPDS 2004).
	HP
	// EBR is epoch-based reclamation: the fastest reads, but one stalled
	// guard stops all reclamation.
	EBR
	// TwoGEIBR is 2GEIBR interval-based reclamation (Wen et al., PPoPP 2018).
	TwoGEIBR
	// Leak never reclaims; it bounds the cost every real scheme pays. Size
	// Capacity for the whole workload's allocations.
	Leak
	// WFEIBR applies the WFE construction to 2GEIBR (paper §2.4), making the
	// interval scheme's protected reads wait-free too.
	WFEIBR
)

// String returns the scheme's benchmark-legend name.
func (k SchemeKind) String() string {
	switch k {
	case WFE:
		return "WFE"
	case HE:
		return "HE"
	case HP:
		return "HP"
	case EBR:
		return "EBR"
	case TwoGEIBR:
		return "2GEIBR"
	case Leak:
		return "Leak"
	case WFEIBR:
		return "WFE-IBR"
	}
	return fmt.Sprintf("SchemeKind(%d)", int(k))
}

// AllSchemes lists every SchemeKind in the paper's legend order, with the
// WFE-IBR extension last.
func AllSchemes() []SchemeKind {
	return []SchemeKind{WFE, HE, HP, EBR, TwoGEIBR, Leak, WFEIBR}
}

// ParseScheme maps a scheme's legend name ("WFE", "HE", "HP", "EBR",
// "2GEIBR", "Leak", "WFE-IBR") back to its SchemeKind — the inverse of
// String, for command-line flags.
func ParseScheme(name string) (SchemeKind, error) {
	for _, k := range AllSchemes() {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("wfe: unknown scheme %q", name)
}

// NumWords is the number of 64-bit link/metadata words every allocated
// block carries, in addition to its typed value. Word indices passed to
// Guard.Load, Guard.Store, Guard.LoadMeta etc. must be < NumWords; whether
// a given word holds a Ref link or raw metadata is the data structure's
// convention.
const NumWords = mem.NumWords

// Options configures a Domain. The zero value is usable: WFE over a
// 2^20-block arena sized for GOMAXPROCS guards with the paper's §5 tuning
// defaults.
type Options struct {
	// Scheme selects the reclamation scheme (default WFE).
	Scheme SchemeKind
	// Capacity is the number of blocks in the arena (default 2^20, maximum
	// 2^24-2). The arena is fixed-size, but exhaustion is no longer
	// instantly fatal: an allocation that finds it full triggers emergency
	// reclamation scans and retries under backoff (see AllocRetries), and
	// only a pipeline that stays dry panics — or, through the structures'
	// Try* variants, returns ErrArenaExhausted. Still size it for the
	// workload, generously for Leak, which never recycles.
	Capacity int
	// MaxGuards bounds the number of concurrently held Guards (default
	// runtime.GOMAXPROCS(0)).
	MaxGuards int
	// MaxSlots is the number of protection slots per guard (paper: max_hes;
	// default 8). Of the built-in structures, Stack needs 1, Queue and
	// TurnQueue 2, Map/HashMap and WFQueue 3, and Tree 4; the default
	// covers them all.
	MaxSlots int
	// EraFreq is ν, the allocations per guard between era-clock increments
	// (default 150, the paper's §5 value). Lower values reclaim faster at
	// the cost of more era-clock traffic on every protected read.
	EraFreq int
	// CleanupFreq is the retirements between retire-list scans (default 30,
	// the paper's §5 value). Each scan gathers the reservation snapshot
	// once, sorts it, and binary-searches it per retired block, so raising
	// CleanupFreq amortises the gather+sort over more retirements (larger
	// retired backlog, fewer snapshots) and lowering it bounds the backlog
	// tighter. Tune it here instead of forking the internal scheme config.
	CleanupFreq int
	// SpillSize is the number of blocks the arena moves between a guard's
	// free cache and the global free list in one batched segment transfer
	// (default 2048). A cache spills once it exceeds 2×SpillSize, so the
	// contended global list head is touched once per SpillSize frees on
	// producer/consumer workloads; Telemetry's ArenaSegPushes/ArenaSegPops
	// show the traffic. Smaller values return memory to other guards
	// sooner, larger values cut contention further.
	SpillSize int
	// MaxAttempts bounds WFE's fast path before it requests helping
	// (default 16).
	MaxAttempts int
	// SortCutoff is the gathered-reservation count below which a cleanup
	// scan keeps the linear per-block sweep instead of sorting the
	// snapshot and binary-searching it. The default (0) measures the
	// crossover once per process on the host itself (a sub-millisecond
	// calibration), so deployments pick the cutoff for their hardware;
	// set it explicitly for bit-deterministic tuning. Purely a cost
	// choice — the two scan implementations decide identically.
	SortCutoff int
	// ForceSlowPath makes WFE and WFEIBR take the helping slow path on
	// every protected read — the paper's §5 stress validation mode.
	ForceSlowPath bool
	// Debug arms the arena's use-after-free and double-free detection and
	// poisons freed blocks. Recommended in tests; costs ~2x.
	Debug bool
	// Trace allocates the Domain's lock-free event tracer (per-guard ring
	// buffers recording guard, retire, scan, era and arena-segment events)
	// and enables it from birth. Without it the trace façade reports
	// disabled and SetTraceEnabled(true) returns false — the rings are
	// only paid for when asked (about 40KiB per guard at DefaultDepth).
	Trace bool
	// TraceDepth is the per-ring record capacity, rounded up to a power of
	// two (default trace.DefaultDepth = 1024). Older records are
	// overwritten in place; writers never block or allocate.
	TraceDepth int
	// SampleEvery, when positive, auto-starts the Domain's background
	// Sampler at that tick (see StartSampler). Stop it with Domain.Close
	// (or Domain.Sampler().Stop()) before teardown.
	SampleEvery time.Duration
	// AutoSwitch arms the adaptive runtime: the auto-started Sampler calls
	// Domain.SwitchWithin whenever the live advisor recommendation has
	// named the same non-current scheme for AutoSwitchAfter consecutive
	// ticks. It requires SampleEvery (the sampler is the trigger source).
	// The switch runs on the sampler goroutine and briefly gates guard
	// acquisition with a bounded drain wait: explicit Guards held across
	// sampler ticks make the attempt abort (and retry on a later streak)
	// instead of stalling the Domain. See Switch for the drain-and-swap
	// semantics.
	AutoSwitch bool
	// AutoSwitchAfter is the hysteresis depth: consecutive identical
	// verdicts required before AutoSwitch acts (default 3). A flapping
	// advisor — alternating recommendations tick over tick — never
	// accumulates a streak, so it can never thrash the Domain.
	AutoSwitchAfter int
	// AllocRetries is how many backoff-then-rescan rounds an allocation
	// that found the arena exhausted runs before giving up (default 16).
	// Every round ticks the scheme's era clock, scans the allocating
	// guard's own retire ring out of the CleanupFreq cadence, and retries;
	// only after the last round does the allocation surface
	// ErrArenaExhausted (Try* variants) or panic (plain variants). The
	// retry budget bounds the worst-case stall, so a Domain under pressure
	// degrades to bounded latency, never to an unbounded wait.
	AllocRetries int
	// AllocBackoff is the initial sleep between emergency-reclamation
	// rounds (default 50µs). It doubles per round, capped at 100× the
	// initial value, giving concurrent guards time to retire and scan
	// their own backlogs before the stalled allocation rescans.
	AllocBackoff time.Duration
}

// A Domain[T] owns an arena of T-valued blocks and the reclamation scheme
// that decides when retired blocks may be recycled. All blocks, Refs and
// Guards belong to exactly one Domain; mixing Domains is a programming
// error (caught in Debug mode when handles go out of range).
//
// A Domain is the public face of the paper's reclamation API. The built-in
// structures (Stack, Queue, WFQueue, TurnQueue, HashMap/Map, Tree) lease
// guards from the Domain internally, so simple use never touches a Guard:
//
//	d, _ := wfe.NewDomain[string](wfe.Options{Scheme: wfe.WFE})
//	s := wfe.NewStack[string](d)
//	s.Push("hello")
//
// Hot loops skip the per-operation lease by pinning a guard (Pin/Unpin) or
// holding an explicit one (Guard/AcquireGuard + Release) and calling the
// structures' Guarded method variants. See the "guard runtime" overview on
// Guard for how the acquisition paths relate.
type Domain[T any] struct {
	// smr is the live scheme, boxed with its kind behind one atomic
	// pointer so Switch can swap both together while samplers and
	// telemetry readers load them concurrently. Guard operations load the
	// box per call; they can never observe a stale scheme mid-operation
	// because Switch only swaps after every guard is released.
	smr   atomic.Pointer[schemeBox]
	arena *mem.Arena
	// cfg is the reclaim configuration NewDomain resolved, kept so Switch
	// can rebuild a scheme over the same arena. InitialEra is stamped per
	// swap from eraFloor.
	cfg reclaim.Config
	// vals is the typed value slab, indexed by block handle minus one. A
	// block's value is written once by Alloc before the block is published
	// and never mutated while the block is live, so protected readers need
	// no atomics; the arena's free hook zeroes the entry when the block
	// dies, so dead values do not linger as GC roots.
	vals []T

	// guards hands out the MaxGuards tids lock-free. The lease cache above
	// it holds acquired-but-idle Guards so guardless operations amortize
	// pool traffic to nearly nothing. Ownership of a cached guard is
	// authoritative in cache (a fixed registry of MaxGuards padded slots,
	// claimed by CAS on the guard's state word); leases is only a per-P
	// locality hint pointing at the same guards — sync.Pool may drop or
	// strand entries at will without a tid ever becoming unreachable.
	guards      *guardpool.Pool
	leases      sync.Pool
	cache       []cacheSlot[T]
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64

	// Batched-operation counters (see batch.go): completed batches, the
	// items they carried, and the lease-cache hit/miss split of the
	// guardless batch entry points — the batch paths' one-lease-per-burst
	// amortization, observable separately from the per-op lease traffic.
	batchOps         atomic.Uint64
	batchItems       atomic.Uint64
	batchCacheHits   atomic.Uint64
	batchCacheMisses atomic.Uint64

	// tracer is nil unless Options.Trace asked for the rings; sampler
	// holds the Domain's background Sampler, swapped by StartSampler.
	tracer  *trace.Tracer
	sampler atomic.Pointer[Sampler]

	// switchMu serializes Switch calls; eraFloor (guarded by it) is the
	// monotone maximum over every era/epoch clock a scheme of this Domain
	// has ever reached — the InitialEra each freshly built scheme must
	// start at so era stamps that survived earlier schemes stay below the
	// new clock (see reclaim.Config.InitialEra). schemeSwitches counts
	// completed swaps for Telemetry.
	switchMu       sync.Mutex
	eraFloor       uint64
	schemeSwitches atomic.Uint64

	// Allocation-backpressure state: the resolved retry knobs and the
	// pressure gauges Pressure() reports. allocStalls counts allocations
	// that found the arena exhausted, emergencyScans the out-of-cadence
	// scans they triggered, lastResolve the nanoseconds the most recent
	// resolved stall spent inside the pipeline.
	allocRetries   int
	allocBackoff   time.Duration
	allocStalls    atomic.Uint64
	emergencyScans atomic.Uint64
	lastResolve    atomic.Int64
}

// schemeBox pairs a scheme with its kind so both swap atomically.
type schemeBox struct {
	s    reclaim.Scheme
	kind SchemeKind
}

// scheme returns the live scheme box.
func (d *Domain[T]) scheme() *schemeBox { return d.smr.Load() }

// liveScheme is the Domain's swap-following reclaim.Scheme view, for the
// internal structures (kpqueue, crturn) that capture a scheme at
// construction and hold it for life. Every method resolves the current
// box, so a structure built before a Switch keeps working after it; each
// call happens under a held guard, and Switch swaps only with every guard
// released, so no single operation ever straddles two schemes.
type liveScheme[T any] struct{ d *Domain[T] }

func (l liveScheme[T]) Name() string                 { return l.d.scheme().s.Name() }
func (l liveScheme[T]) Begin(tid int)                { l.d.scheme().s.Begin(tid) }
func (l liveScheme[T]) Clear(tid int)                { l.d.scheme().s.Clear(tid) }
func (l liveScheme[T]) Unreclaimed() int             { return l.d.scheme().s.Unreclaimed() }
func (l liveScheme[T]) Arena() *mem.Arena            { return l.d.arena }
func (l liveScheme[T]) Retirer() *reclaim.Retirer    { return l.d.scheme().s.Retirer() }
func (l liveScheme[T]) Retire(tid int, h mem.Handle) { l.d.scheme().s.Retire(tid, h) }
func (l liveScheme[T]) BeginBatch(tid int) bool      { return l.d.scheme().s.BeginBatch(tid) }
func (l liveScheme[T]) EndBatch(tid int)             { l.d.scheme().s.EndBatch(tid) }
func (l liveScheme[T]) RetireBatch(tid int, blks []mem.Handle) {
	l.d.scheme().s.RetireBatch(tid, blks)
}

// Alloc routes the internal structures' node allocations through the
// Domain's backpressure pipeline, so a WFQueue or TurnQueue segment
// allocation under pressure gets the same emergency scans and retries a
// Guard.Alloc does before the exhaustion panic fires.
func (l liveScheme[T]) Alloc(tid int) mem.Handle {
	h, err := l.d.allocHandle(tid)
	if err != nil {
		panic(exhaustedPanic(l.d.arena.Capacity()))
	}
	return h
}

func (l liveScheme[T]) TryAlloc(tid int) (mem.Handle, bool) {
	h, err := l.d.allocHandle(tid)
	return h, err == nil
}
func (l liveScheme[T]) GetProtected(tid int, src *atomic.Uint64, index int, parent mem.Handle) uint64 {
	return l.d.scheme().s.GetProtected(tid, src, index, parent)
}

// cacheSlot is one registry cell of the lease cache, padded so concurrent
// Unpin/steal traffic on neighbouring slots does not false-share.
type cacheSlot[T any] struct {
	g atomic.Pointer[Guard[T]]
	_ [56]byte
}

// Guard lease states (Guard.state): a guard is either in use by some
// goroutine or parked in the lease cache. The cached→inuse CAS is what
// decides which single claimant gets a cached guard, however many stale
// pointers to it the sync.Pool holds.
const (
	guardInUse uint32 = iota
	guardCached
)

// NewDomain creates a Domain with blocks carrying a value of type T.
func NewDomain[T any](opts Options) (*Domain[T], error) {
	if opts.Capacity == 0 {
		opts.Capacity = 1 << 20
	}
	if opts.Capacity < 1 || uint64(opts.Capacity) > pack.HandleMask-1 {
		return nil, fmt.Errorf("wfe: Capacity %d out of range [1, %d]", opts.Capacity, pack.HandleMask-1)
	}
	if opts.MaxGuards == 0 {
		opts.MaxGuards = runtime.GOMAXPROCS(0)
	}
	if opts.MaxGuards < 0 {
		return nil, fmt.Errorf("wfe: MaxGuards %d must be positive", opts.MaxGuards)
	}
	for _, tune := range []struct {
		name string
		v    int
	}{
		{"MaxSlots", opts.MaxSlots},
		{"EraFreq", opts.EraFreq},
		{"CleanupFreq", opts.CleanupFreq},
		{"MaxAttempts", opts.MaxAttempts},
		{"SpillSize", opts.SpillSize},
		{"SortCutoff", opts.SortCutoff},
		{"TraceDepth", opts.TraceDepth},
		{"AutoSwitchAfter", opts.AutoSwitchAfter},
		{"AllocRetries", opts.AllocRetries},
	} {
		if tune.v < 0 {
			return nil, fmt.Errorf("wfe: %s %d must be non-negative (0 selects the default)", tune.name, tune.v)
		}
	}
	if opts.SampleEvery < 0 {
		return nil, fmt.Errorf("wfe: SampleEvery %v must be non-negative (0 disables the auto-started sampler)", opts.SampleEvery)
	}
	if opts.AllocBackoff < 0 {
		return nil, fmt.Errorf("wfe: AllocBackoff %v must be non-negative (0 selects the default)", opts.AllocBackoff)
	}
	if opts.AllocRetries == 0 {
		opts.AllocRetries = 16
	}
	if opts.AllocBackoff == 0 {
		opts.AllocBackoff = 50 * time.Microsecond
	}
	if opts.AutoSwitch && opts.SampleEvery == 0 {
		return nil, fmt.Errorf("wfe: AutoSwitch requires SampleEvery (the background sampler is its trigger source)")
	}
	// The rings cost real memory (~40KiB per guard at the default depth),
	// so they exist only on request — benchmark sweeps construct hundreds
	// of Domains and must not pay for tracing they never enable.
	var tracer *trace.Tracer
	if opts.Trace {
		tracer = trace.New(opts.MaxGuards, opts.TraceDepth)
		tracer.SetEnabled(true)
	}
	arena := mem.New(mem.Config{
		Capacity:   opts.Capacity,
		MaxThreads: opts.MaxGuards,
		SpillSize:  opts.SpillSize,
		Debug:      opts.Debug,
		Tracer:     tracer,
	})
	cfg := reclaim.Config{
		MaxThreads:    opts.MaxGuards,
		MaxHEs:        opts.MaxSlots,
		EraFreq:       opts.EraFreq,
		CleanupFreq:   opts.CleanupFreq,
		MaxAttempts:   opts.MaxAttempts,
		ForceSlowPath: opts.ForceSlowPath,
		SortCutoff:    opts.SortCutoff,
		Tracer:        tracer,
	}
	smr, err := schemes.New(opts.Scheme.String(), arena, cfg)
	if err != nil {
		return nil, fmt.Errorf("wfe: %v", err)
	}
	d := &Domain[T]{
		arena:        arena,
		cfg:          cfg,
		vals:         make([]T, opts.Capacity),
		guards:       guardpool.New(opts.MaxGuards),
		cache:        make([]cacheSlot[T], opts.MaxGuards),
		tracer:       tracer,
		allocRetries: opts.AllocRetries,
		allocBackoff: opts.AllocBackoff,
	}
	d.smr.Store(&schemeBox{s: smr, kind: opts.Scheme})
	d.guards.SetTracer(tracer)
	if opts.SampleEvery > 0 {
		d.StartSampler(SamplerConfig{
			Interval:        opts.SampleEvery,
			AutoSwitch:      opts.AutoSwitch,
			AutoSwitchAfter: opts.AutoSwitchAfter,
		})
	}
	// Drop a block's value the moment it is recycled: no reader can hold a
	// freed block (that is the reclamation invariant), and without this a
	// drained structure would pin up to Capacity dead payloads for the GC.
	arena.SetFreeHook(func(h mem.Handle) {
		var zero T
		d.vals[h-1] = zero
	})
	return d, nil
}

// Scheme returns the Domain's current reclamation scheme kind. Under live
// switching it is a moving target; each call reads the scheme atomically.
func (d *Domain[T]) Scheme() SchemeKind { return d.scheme().kind }

// Guard acquires one of the Domain's MaxGuards guard handles. It panics
// when all are held and none is cached: a panic here means a sizing bug —
// more long-lived explicit guards than MaxGuards — not a runtime condition.
// Use AcquireGuard to block until one frees, or TryGuard to poll.
//
// While a live scheme switch has acquisition gated, Guard blocks until the
// switch completes instead of panicking — the guards are all free then,
// just briefly withheld, which is the opposite of a sizing bug. The panic
// fires only when the pool was provably unpaused for the whole failed
// attempt: the pause sequence number is read before and after, and any
// switch whose gate could have caused the failure changes it.
func (d *Domain[T]) Guard() *Guard[T] {
	for {
		seq := d.guards.PauseSeq()
		if seq&1 == 1 {
			// A switch is in flight; park until it resumes, then rejudge
			// from scratch — never commit to an unbounded blocking acquire
			// here, or a genuine sizing bug that raced a switch would hang
			// silently instead of panicking with the diagnostic.
			d.guards.AwaitResume()
			continue
		}
		if g, ok := d.TryGuard(); ok {
			return g
		}
		if d.guards.PauseSeq() == seq {
			// No pause epoch began or ended across the failed try, so the
			// gate cannot be what failed it: all guards really are held.
			panic("wfe: all guards in use; raise Options.MaxGuards, Release an idle guard, or block with AcquireGuard")
		}
		// A switch overlapped the try; the failure may have been its gate,
		// not exhaustion. Loop and rejudge.
	}
}

// TryGuard acquires a guard without blocking, reporting false when all are
// held. The fast path is one lock-free CAS on the Domain's guard pool; an
// idle guard parked in the lease cache counts as free and is claimed.
func (d *Domain[T]) TryGuard() (*Guard[T], bool) {
	if tid, ok := d.guards.TryAcquire(); ok {
		return &Guard[T]{d: d, tid: tid, slot: -1}, true
	}
	if g, ok := d.fromCache(); ok {
		d.cacheHits.Add(1)
		return g, true
	}
	return nil, false
}

// AcquireGuard acquires a guard, parking the calling goroutine until one is
// released (or leased back) when all MaxGuards are held. It returns an
// error only when ctx is done first. This is the acquisition path for
// workloads where goroutines outnumber guards and churn — the panicking
// Guard is for fixed worker sets sized at configuration time.
func (d *Domain[T]) AcquireGuard(ctx context.Context) (*Guard[T], error) {
	if g, ok := d.TryGuard(); ok {
		return g, nil
	}
	tid, err := d.guards.Acquire(ctx, d.spareTid)
	if err != nil {
		return nil, err
	}
	return &Guard[T]{d: d, tid: tid, slot: -1}, nil
}

// spareTid lets a parked pool waiter claim an idle cached guard: without
// it, guards stranded in the lease cache could starve a waiter forever.
// The claimed guard object is retired (slot vacated, domain cleared) and
// only its tid handed over; the waiter wraps it in a fresh Guard.
func (d *Domain[T]) spareTid() (int, bool) {
	g, ok := d.fromCache()
	if !ok {
		return 0, false
	}
	tid := g.tid
	if g.slot >= 0 {
		d.cache[g.slot].g.CompareAndSwap(g, nil)
		g.slot = -1
	}
	g.d = nil
	return tid, true
}

// fromCache claims an idle guard out of the lease cache. The sync.Pool is
// consulted first for P-locality, but a pooled pointer is only a hint — the
// claim itself is the cached→inuse CAS, and a hint that lost that race to
// a registry steal is simply discarded. On a pool miss the registry is
// scanned directly, so a guard cached by any P (or dropped by the pool
// entirely) is always claimable.
func (d *Domain[T]) fromCache() (*Guard[T], bool) {
	if d.guards.Paused() {
		// A live scheme switch is waiting for every guard to come home;
		// claiming one out of the cache would hand a new operation a stale
		// scheme. Callers fall through to the pool, whose gate parks them
		// until the switch completes.
		return nil, false
	}
	for {
		v := d.leases.Get()
		if v == nil {
			break
		}
		if g := v.(*Guard[T]); g.claim() {
			return g, true
		}
		// Stale hint (already claimed and possibly re-cached elsewhere);
		// drop it and try the next.
	}
	for i := range d.cache {
		g := d.cache[i].g.Load()
		if g != nil && g.claim() {
			return g, true
		}
	}
	return nil, false
}

// claim attempts the cached→inuse transition — the single CAS that
// arbitrates ownership of a cached guard. The guard's registry slot keeps
// pointing at it while it is in use (slots are sticky for the guard's
// lifetime; Release vacates them), so claiming writes nothing but the
// state word.
func (g *Guard[T]) claim() bool {
	return g.state.CompareAndSwap(guardCached, guardInUse)
}

// Pin leases a guard to the calling goroutine until Unpin: the cheap way
// to hold a guard across a batch of operations. It is what every guardless
// structure method uses per operation; pinning hoists that lease out of a
// hot loop. The fast path is a per-P cache hit (no shared-memory
// contention at all); a miss acquires from the pool, parking like
// AcquireGuard if the Domain is exhausted.
//
// A pinned guard is a plain *Guard: use it with the Guarded method
// variants, then return it with Unpin (not Release, which would bypass the
// cache). Pin never fails — callers that need a timeout use AcquireGuard.
func (d *Domain[T]) Pin() *Guard[T] {
	if g, ok := d.fromCache(); ok {
		d.cacheHits.Add(1)
		return g
	}
	d.cacheMisses.Add(1)
	// Try the pool directly before AcquireGuard: its TryGuard prelude
	// would rescan the lease cache that just missed.
	if tid, ok := d.guards.TryAcquire(); ok {
		return &Guard[T]{d: d, tid: tid, slot: -1}
	}
	g, _ := d.AcquireGuard(context.Background()) // never errs: ctx has no deadline
	return g
}

// pinBatch is Pin for the guardless batch entry points (MultiGet,
// PushAll, ...): the same lease, with the hit/miss split also recorded on
// the batch-path counters so Telemetry can report the batch lease-cache
// hit rate on its own.
func (d *Domain[T]) pinBatch() *Guard[T] {
	// Only the batch-path counter is bumped here (one atomic per burst);
	// Telemetry folds it into the overall hit/miss totals on read.
	if g, ok := d.fromCache(); ok {
		d.batchCacheHits.Add(1)
		return g
	}
	d.batchCacheMisses.Add(1)
	if tid, ok := d.guards.TryAcquireBatch(); ok {
		return &Guard[T]{d: d, tid: tid, slot: -1}
	}
	g, _ := d.AcquireGuard(context.Background()) // never errs: ctx has no deadline
	return g
}

// Unpin returns a pinned guard to the Domain's lease cache, dropping any
// protections it still holds (an implicit End) so an idle cached guard can
// never block reclamation. The guard must not be used after Unpin.
//
// If acquirers are parked on an exhausted pool, Unpin releases the guard
// to them instead of caching it — caching would strand the guard on this
// P while they sleep.
func (d *Domain[T]) Unpin(g *Guard[T]) {
	g.End()
	d.unpin(g)
}

// unpin is Unpin without the protection drop — the internal path for the
// guardless wrappers, whose Guarded operation just ended with End.
func (d *Domain[T]) unpin(g *Guard[T]) {
	if d.guards.Waiters() > 0 {
		g.Release()
		return
	}
	if g.slot < 0 && !d.adoptSlot(g) {
		g.Release() // unreachable with a correctly used Domain, but harmless
		return
	}
	g.state.Store(guardCached)
	d.leases.Put(g)
}

// adoptSlot assigns an unslotted guard a registry cell for the rest of
// its life. One is always free when an unslotted guard exists: each of
// the MaxGuards guards holds at most one cell, vacated on Release.
func (d *Domain[T]) adoptSlot(g *Guard[T]) bool {
	for i := range d.cache {
		if d.cache[i].g.CompareAndSwap(nil, g) {
			g.slot = int32(i)
			return true
		}
	}
	return false
}

// FlushGuardCache releases every guard the lease cache holds back to the
// guard pool and returns the number of guards it could not recover —
// always 0 when the Domain is quiescent. Call it with no concurrent
// Pin/Unpin or guardless operations in flight (before asserting all
// guards free in a test, or ahead of domain teardown).
func (d *Domain[T]) FlushGuardCache() int {
	stranded := 0
	for i := range d.cache {
		g := d.cache[i].g.Load()
		if g == nil || g.state.Load() != guardCached {
			// Empty, or a guard some goroutine claimed out of the cache
			// and still holds (slots are sticky while a guard lives): the
			// cache owns nothing here.
			continue
		}
		if g.claim() {
			g.Release()
		} else {
			stranded++ // claimed between our load and CAS: not quiescent
		}
	}
	return stranded
}

// Unreclaimed reports the number of retired-but-not-yet-recycled blocks,
// the paper's reclamation-speed metric. Approximate under concurrency.
func (d *Domain[T]) Unreclaimed() int { return d.scheme().s.Unreclaimed() }

// ErrArenaExhausted is returned by the structures' Try* methods (and
// Guard.TryAlloc) when an allocation found the arena full and the
// emergency-reclamation pipeline — out-of-cadence scans of the
// allocating guard's retire ring, retried under capped exponential
// backoff (Options.AllocRetries / AllocBackoff) — could not free a
// block. The non-Try methods panic with an error wrapping it instead.
// It is a backpressure verdict, not a corruption: the Domain stays fully
// usable, and the same allocation may succeed once concurrent guards
// retire and scan their own backlogs.
var ErrArenaExhausted = errors.New("wfe: arena exhausted after emergency reclamation")

// exhaustedPanic is the panic payload of the non-Try allocation paths
// once the retry pipeline is spent. It wraps ErrArenaExhausted so
// recover-side classifiers can errors.Is it.
func exhaustedPanic(capacity int) error {
	return fmt.Errorf("%w (capacity %d); size the arena for the workload or switch to the Try* variants", ErrArenaExhausted, capacity)
}

// allocHandle is the Domain's allocation front door: the scheme's
// TryAlloc on the fast path, the emergency-reclamation pipeline on a
// miss. Callers must own tid (hold its guard).
func (d *Domain[T]) allocHandle(tid int) (mem.Handle, error) {
	if h, ok := d.scheme().s.TryAlloc(tid); ok {
		return h, nil
	}
	return d.allocSlow(tid)
}

// allocSlow resolves an exhausted-arena allocation by forcing the
// reclamation the cadence has not run yet: each round ticks the scheme's
// era clock (so a fresh scan judges against a clock ahead of every
// stamped retirement), scans tid's own retire ring out of the
// CleanupFreq cadence, and retries the allocation, sleeping a doubling
// backoff between rounds. Only tid's ring is scanned directly — retire
// rings are single-writer, and reaching into another guard's ring would
// race its owner — so rescue from the other rings is arranged
// indirectly: registering as an arena waiter makes every concurrent
// retire run its own out-of-cadence scan and makes frees spill eagerly
// past the private caches to the global list, where this tid's retry
// can claim them. A guard whose own ring is empty (it just started, or
// has only read) is therefore still rescued, as long as some guard
// somewhere is retiring.
func (d *Domain[T]) allocSlow(tid int) (mem.Handle, error) {
	d.allocStalls.Add(1)
	st := d.arena.Stats()
	d.tracer.Emit(tid, trace.KindAllocStall, st.InUse, uint64(d.arena.Capacity()))
	box := d.scheme()
	rt := box.s.Retirer()
	if !rt.Judged() {
		// The leak baseline has no judge: a scan can never free anything,
		// so retrying would only delay the inevitable verdict.
		return 0, ErrArenaExhausted
	}
	d.arena.AddWaiter(1)
	defer d.arena.AddWaiter(-1)
	start := time.Now()
	backoff := d.allocBackoff
	ceil := 100 * d.allocBackoff
	for round := 0; ; round++ {
		if c, ok := box.s.(reclaim.ClockAdvancer); ok {
			c.AdvanceClock(tid)
		}
		rt.Scan(tid)
		d.emergencyScans.Add(1)
		if h, ok := box.s.TryAlloc(tid); ok {
			d.lastResolve.Store(int64(time.Since(start)))
			return h, nil
		}
		if round >= d.allocRetries {
			return 0, ErrArenaExhausted
		}
		time.Sleep(backoff)
		if backoff < ceil {
			backoff *= 2
			if backoff > ceil {
				backoff = ceil
			}
		}
	}
}

// Pressure is the Domain's allocation-backpressure gauge: how full the
// arena is and what the emergency-reclamation pipeline has had to do
// about it. Live/Capacity is the instantaneous occupancy (Ratio derives
// the fraction); AllocStalls counts allocations that found the arena
// exhausted, EmergencyScans the out-of-cadence scans they forced, and
// LastResolve how long the most recent resolved stall spent inside the
// pipeline. A Domain that never sees pressure reports zeros everywhere
// but Live/Capacity.
type Pressure struct {
	Live           int           // blocks currently allocated (live or retired)
	Capacity       int           // arena size in blocks
	AllocStalls    uint64        // allocations that entered the emergency pipeline
	EmergencyScans uint64        // out-of-cadence scans the pipeline ran
	LastResolve    time.Duration // pipeline latency of the last resolved stall
}

// Ratio returns Live/Capacity, the occupancy fraction the advisor's
// exhaustion-pressure signature watches (0 when Capacity is 0).
func (p Pressure) Ratio() float64 {
	if p.Capacity == 0 {
		return 0
	}
	return float64(p.Live) / float64(p.Capacity)
}

// Pressure samples the allocation-backpressure gauge. Approximate under
// concurrency, like Telemetry.
func (d *Domain[T]) Pressure() Pressure {
	st := d.arena.Stats()
	return Pressure{
		Live:           int(st.InUse),
		Capacity:       d.arena.Capacity(),
		AllocStalls:    d.allocStalls.Load(),
		EmergencyScans: d.emergencyScans.Load(),
		LastResolve:    time.Duration(d.lastResolve.Load()),
	}
}

// Scavenge runs one judged cleanup scan over every tid's retire ring,
// out of cadence, after ticking the scheme's era clock past any retired
// block's lifespan — the strongest reclamation pass available without
// violating the schemes' safety rules. It returns the number of blocks
// recycled.
//
// Call it only on a quiescent Domain (no operations in flight, no
// protections outstanding): retire rings are single-writer structures,
// and Scavenge walks all of them from the calling goroutine. It is how a
// drained Domain releases the backlog a lazy CleanupFreq would otherwise
// hold until each tid retires again; the allocation pipeline's emergency
// scans are the concurrent-safe sibling, limited to the stalled tid's own
// ring. The Leak baseline has no judge to scan with, so Scavenge reports
// zero there.
func (d *Domain[T]) Scavenge() int {
	box := d.scheme()
	rt := box.s.Retirer()
	if !rt.Judged() {
		return 0
	}
	if c, ok := box.s.(reclaim.ClockAdvancer); ok {
		// EBR-class grace periods span two clock ticks; three advances
		// put every quiescently-retired block beyond any of them. The
		// reservation-interval schemes need no help — with no guards
		// active nothing is pinned.
		for i := 0; i < 3; i++ {
			c.AdvanceClock(0)
		}
	}
	before := d.arena.Stats().Frees
	for tid := 0; tid < d.guards.Cap(); tid++ {
		rt.Scan(tid)
	}
	return int(d.arena.Stats().Frees - before)
}

// Telemetry is a point-in-time census of a Domain's reclamation machinery
// and its guard runtime.
type Telemetry struct {
	Scheme      string // scheme legend name
	Era         uint64 // global era/epoch clock (0 for clock-less schemes)
	SlowPaths   uint64 // protected reads that requested helping (WFE/WFEIBR)
	MaxSteps    uint64 // worst protect-loop iteration count seen by any guard
	P99Steps    uint64 // p99 protect-loop iteration count (every protecting scheme; sample quiescently)
	Unreclaimed int    // retired blocks not yet recycled
	Allocs      uint64 // total block allocations
	Frees       uint64 // total blocks recycled
	InUse       uint64 // Allocs - Frees
	Capacity    int    // arena size in blocks

	// Cleanup-scan telemetry, uniform across every scheme via the shared
	// retire-side runtime: how many retire-list scans ran, how many
	// retired blocks they examined, and the nanoseconds they spent.
	// Sample quiescently for exact values. The Leak baseline never scans,
	// so its three counters stay zero.
	ScanScans  uint64
	ScanBlocks uint64
	ScanNanos  uint64

	// Arena fast-path counters. SegPushes/SegPops count whole-segment
	// transfers on the global free list (each moving Options.SpillSize
	// blocks in one CAS); BumpHighwater is how many distinct blocks the
	// bump allocator has ever handed out — the workload's true footprint,
	// where InUse only shows the instantaneous one.
	ArenaSegPushes     uint64
	ArenaSegPops       uint64
	ArenaBumpHighwater uint64

	// Guard-runtime counters. A healthy guardless workload shows
	// GuardCacheHits ≫ GuardCacheMisses and GuardParks near zero; parks
	// climbing means MaxGuards is undersized for the goroutine count.
	MaxGuards        int    // configured guard count
	GuardsFree       int    // tids available to the pool (quiescently exact)
	GuardAcquires    uint64 // guards handed out by the pool, however satisfied
	GuardParks       uint64 // times an acquirer parked waiting for a free guard
	GuardCacheHits   uint64 // guards claimed out of the lease cache
	GuardCacheMisses uint64 // Pin/guardless ops that had to hit the pool

	// Batched-operation counters (MultiGet, PushAll, DequeueN, ...):
	// BatchOps counts completed batches, BatchedItems the operations they
	// carried (BatchedItems/BatchOps is the realized mean batch size).
	// BatchGuardCacheHits/Misses split out the lease-cache traffic of the
	// guardless batch entry points — with one lease per burst, hits should
	// track BatchOps, not BatchedItems.
	BatchOps              uint64
	BatchedItems          uint64
	BatchGuardCacheHits   uint64
	BatchGuardCacheMisses uint64

	// SchemeSwitches counts live scheme swaps completed by Domain.Switch
	// over the Domain's lifetime.
	SchemeSwitches uint64

	// Allocation-backpressure counters (see Domain.Pressure): allocations
	// that found the arena exhausted, and the out-of-cadence emergency
	// scans they forced. Zero on a Domain that never ran out of blocks.
	AllocStalls    uint64
	EmergencyScans uint64
}

// Telemetry samples the Domain's counters. The snapshot is approximate
// under concurrency, which is fine for its monitoring purpose. The
// retire-side counters (steps, scans, backlog) read through the scheme's
// shared runtime, one path for all seven schemes.
func (d *Domain[T]) Telemetry() Telemetry {
	st := d.arena.Stats()
	gp := d.guards.Stats()
	box := d.scheme()
	probe := box.s.Retirer().Probe()
	// Batch totals: the Domain counters hold what released guards folded
	// in; live guards (cached or leased) still carry theirs locally, so
	// sum them through the lease-cache registry.
	bops, bitems := d.batchOps.Load(), d.batchItems.Load()
	for i := range d.cache {
		if g := d.cache[i].g.Load(); g != nil {
			bops += g.statBatchOps.Load()
			bitems += g.statBatchItems.Load()
		}
	}
	t := Telemetry{
		Scheme:      box.kind.String(),
		MaxSteps:    probe.MaxSteps,
		P99Steps:    probe.P99Steps,
		Unreclaimed: probe.Unreclaimed,
		Allocs:      st.Allocs,
		Frees:       st.Frees,
		InUse:       st.InUse,
		Capacity:    d.arena.Capacity(),

		ScanScans:  probe.Scans.Scans,
		ScanBlocks: probe.Scans.Blocks,
		ScanNanos:  probe.Scans.Nanos,

		ArenaSegPushes:     st.SegPushes,
		ArenaSegPops:       st.SegPops,
		ArenaBumpHighwater: st.Bumped,

		MaxGuards:        d.guards.Cap(),
		GuardsFree:       d.guards.Free(),
		GuardAcquires:    gp.Acquires,
		GuardParks:       gp.Parks,
		GuardCacheHits:   d.cacheHits.Load() + d.batchCacheHits.Load(),
		GuardCacheMisses: d.cacheMisses.Load() + d.batchCacheMisses.Load(),

		BatchOps:              bops,
		BatchedItems:          bitems,
		BatchGuardCacheHits:   d.batchCacheHits.Load(),
		BatchGuardCacheMisses: d.batchCacheMisses.Load(),

		SchemeSwitches: d.schemeSwitches.Load(),

		AllocStalls:    d.allocStalls.Load(),
		EmergencyScans: d.emergencyScans.Load(),
	}
	if e, ok := box.s.(interface{ Era() uint64 }); ok {
		t.Era = e.Era()
	}
	if s, ok := box.s.(interface{ SlowPaths() uint64 }); ok {
		t.SlowPaths = s.SlowPaths()
	}
	return t
}

// A TelemetrySample is the compact per-tick subset of Telemetry a
// trajectory recorder collects at high frequency: the reclamation backlog,
// the cumulative scan and step telemetry, the allocation counters and the
// guard-park count — exactly the signals the advisor package's decision
// kernel consumes. Where Telemetry is a wide point-in-time census for
// humans, a TelemetrySample is one row of a time series: sample it every
// tick, feed the rows to advisor.Advise (via the internal/chaos harness or
// your own recorder), and the stall/backlog profile of the schedule falls
// out of the deltas between rows.
type TelemetrySample struct {
	Unreclaimed int    `json:"unreclaimed"` // retired blocks not yet recycled
	ScanScans   uint64 `json:"scan_scans"`  // cumulative cleanup scans
	ScanBlocks  uint64 `json:"scan_blocks"` // cumulative retired blocks examined
	MaxSteps    uint64 `json:"max_steps"`   // worst GetProtected step count so far
	P99Steps    uint64 `json:"p99_steps"`   // p99 GetProtected step count so far
	Allocs      uint64 `json:"allocs"`      // cumulative block allocations
	Frees       uint64 `json:"frees"`       // cumulative blocks recycled
	InUse       uint64 `json:"in_use"`      // Allocs - Frees
	GuardParks  uint64 `json:"guard_parks"` // cumulative parked guard acquisitions

	// Backpressure columns (omitted from JSON when zero, so trajectories
	// recorded before the emergency pipeline existed stay byte-identical).
	Capacity       int    `json:"capacity,omitempty"`        // arena size in blocks
	EmergencyScans uint64 `json:"emergency_scans,omitempty"` // cumulative out-of-cadence scans

	// Batch columns (omitted when zero for the same reason: pre-batch
	// trajectories stay byte-identical).
	BatchOps     uint64 `json:"batch_ops,omitempty"`     // cumulative completed batches
	BatchedItems uint64 `json:"batched_items,omitempty"` // cumulative items those batches carried
}

// Sample collects one TelemetrySample in a single pass over the retire
// runtime's per-thread state (reclaim.Retirer.Probe, the tick-sampling
// hook) plus the arena and guard-pool counters. Approximate under
// concurrency like Telemetry; cheap enough to call every scheduler tick.
func (d *Domain[T]) Sample() TelemetrySample {
	probe := d.scheme().s.Retirer().Probe()
	st := d.arena.Stats()
	return TelemetrySample{
		Unreclaimed: probe.Unreclaimed,
		ScanScans:   probe.Scans.Scans,
		ScanBlocks:  probe.Scans.Blocks,
		MaxSteps:    probe.MaxSteps,
		P99Steps:    probe.P99Steps,
		Allocs:      st.Allocs,
		Frees:       st.Frees,
		InUse:       st.InUse,
		GuardParks:  d.guards.Stats().Parks,

		Capacity:       d.arena.Capacity(),
		EmergencyScans: d.emergencyScans.Load(),

		BatchOps:     d.batchOps.Load(),
		BatchedItems: d.batchItems.Load(),
	}
}

// ArenaCensus is a quiescent-only accounting snapshot of the Domain's
// block arena: every block is in exactly one of the four places, so
// Cached+Global+Live+BumpFree always equals Capacity on a quiescent
// Domain. quiesce.Check and the arena invariant tests assert this; a
// violation means the segmented free list lost or duplicated a block.
type ArenaCensus struct {
	Cached   int // blocks in per-guard free caches
	Global   int // blocks in global spill segments
	Segments int // segments on the global list
	Live     int // allocated blocks (live or retired)
	BumpFree int // blocks the bump allocator has never handed out
	Capacity int
}

// ArenaCensus walks the arena's free lists and block states. Call it only
// with no operations in flight (after a drain, before teardown): the
// walks take no locks.
func (d *Domain[T]) ArenaCensus() ArenaCensus {
	c := d.arena.Census()
	return ArenaCensus{
		Cached:   c.Cached,
		Global:   c.Global,
		Segments: c.Segments,
		Live:     c.Live,
		BumpFree: c.BumpFree,
		Capacity: c.Capacity,
	}
}

// A TraceEvent is one decoded record from the Domain's event tracer: what
// happened (Kind), on which guard slot (Guard, -1 for events with no owner
// such as parks), when (TS, nanoseconds since the Domain was created), and
// two kind-specific payload words. For scan-begin A is the retired backlog;
// for scan-end A is blocks examined and B blocks freed; for era-advance A
// is the new era; for segment spill/refill A is the batch size; for retire
// A is the block handle; for guard-acquire A distinguishes freelist (0)
// from direct handoff (1).
type TraceEvent struct {
	TS    int64  `json:"ts_ns"`
	Guard int    `json:"guard"`
	Kind  string `json:"kind"`
	A     uint64 `json:"a"`
	B     uint64 `json:"b"`
}

// TraceEnabled reports whether the Domain's event tracer exists and is
// currently recording.
func (d *Domain[T]) TraceEnabled() bool { return d.tracer.Enabled() }

// SetTraceEnabled pauses or resumes event recording, reporting whether the
// Domain has a tracer at all. It returns false — and does nothing — when
// the Domain was built without Options.Trace: the rings are allocated at
// construction or never.
func (d *Domain[T]) SetTraceEnabled(on bool) bool {
	if d.tracer == nil {
		return false
	}
	d.tracer.SetEnabled(on)
	return true
}

// TraceEvents snapshots the tracer's ring buffers without stopping
// writers, returning the retained events in timestamp order (nil without
// Options.Trace). Each ring keeps the most recent TraceDepth records per
// guard; older events have been overwritten.
func (d *Domain[T]) TraceEvents() []TraceEvent {
	if d.tracer == nil {
		return nil
	}
	recs := d.tracer.Snapshot()
	out := make([]TraceEvent, len(recs))
	for i, r := range recs {
		out[i] = TraceEvent{TS: r.TS, Guard: r.Tid, Kind: r.Kind.String(), A: r.A, B: r.B}
	}
	return out
}

// WriteTrace snapshots the tracer and writes the events as Chrome
// trace-event JSON (schema "wfe-trace/v1") — load the file at
// chrome://tracing or https://ui.perfetto.dev. Without Options.Trace it
// writes an empty trace.
func (d *Domain[T]) WriteTrace(w io.Writer) error {
	var recs []trace.Record
	if d.tracer != nil {
		recs = d.tracer.Snapshot()
	}
	return trace.WriteChrome(w, recs)
}

// StartSampler starts the Domain's background Sampler, the streaming tier
// of its observability: a goroutine collecting Sample rows at cfg.Interval
// into a bounded history, deriving rate EWMAs, and keeping a live
// advisor recommendation current (see Sampler). At most one sampler runs
// per Domain: while one is running, StartSampler returns it untouched
// (idempotent); after Stop, a new call starts a fresh one. Stop the
// sampler before letting the Domain go out of scope or its goroutine —
// and the Domain it samples — stay live forever.
func (d *Domain[T]) StartSampler(cfg SamplerConfig) *Sampler {
	for {
		if cur := d.sampler.Load(); cur != nil && cur.Running() {
			return cur
		} else {
			s := newSampler(d.Sample, cfg)
			if cfg.AutoSwitch {
				// Wired here, not in newSampler: the sampler is generic
				// over its sample source, and only the Domain knows how to
				// switch schemes. Installed before run, so the goroutine
				// never observes them half-set.
				s.switchTo = func(name string) error {
					kind, err := ParseScheme(name)
					if err != nil {
						return err
					}
					// Bounded drain: a sampler-triggered switch must never
					// gate the Domain indefinitely. Programs that hold
					// explicit guards across sampler ticks (a legitimate
					// fixed-worker pattern) would otherwise wedge every
					// acquirer — and Close, which waits for the sampler
					// goroutine stuck inside Switch.
					return d.SwitchWithin(kind, autoSwitchDrainBound)
				}
				s.current = func() string { return d.Scheme().String() }
			}
			if d.sampler.CompareAndSwap(cur, s) {
				s.run()
				return s
			}
			// Lost the race; the winner's sampler (or a newly observed
			// running one) is picked up on the next iteration. Ours never
			// started: nothing to stop.
		}
	}
}

// Sampler returns the Domain's most recently started Sampler, or nil if
// StartSampler (or Options.SampleEvery) never ran. The returned sampler
// may already be stopped; check Running.
func (d *Domain[T]) Sampler() *Sampler { return d.sampler.Load() }

// Close stops the Domain's background machinery — today that is the
// Sampler, whether auto-started by Options.SampleEvery or explicitly by
// StartSampler. It is idempotent and safe to defer at construction:
//
//	d, _ := wfe.NewDomain[int](wfe.Options{SampleEvery: time.Millisecond})
//	defer d.Close()
//
// Close does not wait for outstanding Guards; releasing those is still the
// caller's job. A closed Domain remains usable for data-structure
// operations (only the sampler is gone), but callers should treat Close as
// teardown.
func (d *Domain[T]) Close() error {
	if s := d.sampler.Load(); s != nil {
		s.Stop()
	}
	return nil
}

// Switch replaces the Domain's reclamation scheme with a freshly
// constructed scheme of the given kind, over the same arena, while the
// Domain stays live. This is the drain-and-swap design: Switch briefly
// gates new guard acquisition (Guard/Pin/AcquireGuard callers park, they
// do not fail), waits for every in-flight guard to come home, drains the
// outgoing scheme's retire backlog to zero, then swaps schemes and lifts
// the gate. In-flight operations are never interrupted — the gate only
// delays the start of new ones — so the pause is bounded by the longest
// operation in flight plus the drain.
//
// Safety across the swap rests on two invariants. First, no block is
// retired-but-unreclaimed when the new scheme starts: the old backlog was
// drained under quiescence (every guard released means no reservation can
// protect anything), so the new scheme never judges a block whose
// retirement it did not observe. Second, era stamps that survive the swap
// (allocation eras on live blocks) stay below the new scheme's clock: the
// Domain tracks the maximum era/epoch any of its schemes ever reached and
// seeds each new scheme at that floor (reclaim.Config.InitialEra), so a
// stale stamp can only widen a lifespan estimate, never invert one.
//
// Cumulative telemetry (scan counts, step histograms) carries across the
// swap, so Sampler histories and Monitor trajectories stay monotone.
// Telemetry.SchemeSwitches counts completed swaps, and the tracer (when
// armed) records a scheme-switch event with the outgoing and incoming
// kinds.
//
// Switch serializes with itself; concurrent calls queue. Switching to the
// current kind is a no-op. It returns an error only for an unknown kind —
// a swap that starts always completes. That also means Switch waits as
// long as it takes for held guards to come home: a program holding an
// explicit Guard for a worker's lifetime must release it (or use
// SwitchWithin) or Switch blocks, gate down, until it does.
func (d *Domain[T]) Switch(kind SchemeKind) error { return d.switchWithin(kind, 0) }

// ErrSwitchBusy is returned by SwitchWithin when in-flight guards did not
// drain within the wait bound. The switch is aborted cleanly: the gate is
// lifted, the scheme unchanged, and the Domain fully usable.
var ErrSwitchBusy = errors.New("wfe: scheme switch aborted: held guards did not drain within the wait bound")

// SwitchWithin is Switch with a bounded drain wait: if some guard is still
// held drainWait after the gate drops — a long-lived explicit Guard, or an
// operation wedged on something external — the switch aborts with
// ErrSwitchBusy instead of gating the Domain indefinitely. A drainWait of
// zero or less waits forever (plain Switch). This is the variant
// AutoSwitch uses: a sampler must never wedge the Domain (and Close) on a
// switch that cannot complete because the program legitimately holds
// guards across ticks.
func (d *Domain[T]) SwitchWithin(kind SchemeKind, drainWait time.Duration) error {
	return d.switchWithin(kind, drainWait)
}

func (d *Domain[T]) switchWithin(kind SchemeKind, drainWait time.Duration) error {
	// Resolve the factory before gating anything: an unknown kind must not
	// cost the Domain a pause.
	factory, ok := schemes.Lookup(kind.String())
	if !ok {
		return fmt.Errorf("wfe: unknown scheme %q", kind.String())
	}
	d.switchMu.Lock()
	defer d.switchMu.Unlock()
	old := d.scheme()
	if old.kind == kind {
		return nil
	}

	// Gate new acquisitions and wait for the in-flight set to drain. The
	// lease cache is flushed inside the loop: an operation that was mid
	// Unpin when the gate dropped may park its guard in the cache after our
	// previous flush, and only a flush releases it back to the pool.
	// Quiescence is Held()==0 — the pool's checked-out count, whose
	// increment/re-check protocol guarantees that once it reads zero with
	// the gate down, no released guard's reservation is live and no
	// acquirer can establish a new one before Resume (a racing pop is
	// forced to back out by its own gate re-check). Never Free's racy
	// freelist walk: that can count a concurrently popped id as free and
	// let the drain below run while a live operation still protects a
	// block.
	var deadline time.Time
	if drainWait > 0 {
		deadline = time.Now().Add(drainWait)
	}
	d.guards.Pause()
	defer d.guards.Resume()
	for spins := 0; ; spins++ {
		if err := fpSwitchDrain.Eval(0); err != nil {
			return ErrSwitchBusy
		}
		d.FlushGuardCache()
		if d.guards.Held() == 0 {
			break
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return ErrSwitchBusy
		}
		if spins < 128 {
			runtime.Gosched()
		} else {
			time.Sleep(50 * time.Microsecond)
		}
	}

	// Quiescent now: no guard is held, so no reservation protects anything
	// and every retired block is reclaimable by definition. Drain the old
	// scheme's per-tid retire rings unconditionally, then sweep the arena
	// for retired blocks the old scheme never tracked (the Leak baseline
	// discards its retire ring contents once published).
	oldRet := old.s.Retirer()
	for tid := 0; tid < d.guards.Cap(); tid++ {
		oldRet.DrainAll(tid)
	}
	d.arena.FreeRetired(0)

	// Advance the era floor past every clock the outgoing scheme ran, then
	// build the incoming scheme with its clock seeded at the floor.
	if e, ok := old.s.(interface{ Era() uint64 }); ok && e.Era() > d.eraFloor {
		d.eraFloor = e.Era()
	}
	if e, ok := old.s.(interface{ Epoch() uint64 }); ok && e.Epoch() > d.eraFloor {
		d.eraFloor = e.Epoch()
	}
	cfg := d.cfg
	cfg.InitialEra = d.eraFloor
	next := factory(d.arena, cfg)
	next.Retirer().CarryFrom(oldRet)

	d.smr.Store(&schemeBox{s: next, kind: kind})
	d.schemeSwitches.Add(1)
	d.tracer.Emit(trace.SharedTid, trace.KindSchemeSwitch, uint64(old.kind), uint64(kind))
	return nil
}

// A Ref[T] is a typed reference to a block of its Domain, possibly carrying
// a mark bit (see WithMark). The zero Ref is nil. Refs are plain values:
// comparable with ==, freely copyable, and only dereferenceable through a
// Guard while the block is protected, owned, or quiescent.
type Ref[T any] struct{ link uint64 }

// IsNil reports whether the Ref references no block (mark bit ignored).
func (r Ref[T]) IsNil() bool { return r.link&pack.HandleMask == 0 }

// Marked reports whether the Ref carries the logical-deletion mark bit.
func (r Ref[T]) Marked() bool { return r.link&pack.MarkBit != 0 }

// WithMark returns the Ref with the Harris–Michael logical-deletion mark
// bit set. A marked link stored in a node's word means the node is deleted;
// the mark travels with the link, not the block.
func (r Ref[T]) WithMark() Ref[T] { return Ref[T]{r.link | pack.MarkBit} }

// Unmarked returns the Ref with the mark bit cleared.
func (r Ref[T]) Unmarked() Ref[T] { return Ref[T]{r.link &^ pack.MarkBit} }

// Flagged reports whether the Ref carries the second spare link bit. The
// Natarajan–Mittal tree uses it as the tag that freezes a sibling edge
// while a deletion moves the sibling up; any custom structure may use it as
// a second per-link state bit alongside the mark.
func (r Ref[T]) Flagged() bool { return r.link&pack.FlagBit != 0 }

// WithFlag returns the Ref with the second spare link bit set. Like the
// mark, the flag travels with the link, not the block.
func (r Ref[T]) WithFlag() Ref[T] { return Ref[T]{r.link | pack.FlagBit} }

// Unflagged returns the Ref with the second spare link bit cleared.
func (r Ref[T]) Unflagged() Ref[T] { return Ref[T]{r.link &^ pack.FlagBit} }

// Clean returns the Ref with both spare link bits (mark and flag) cleared:
// the bare block reference a traversal follows.
func (r Ref[T]) Clean() Ref[T] { return Ref[T]{r.link &^ (pack.MarkBit | pack.FlagBit)} }

func (r Ref[T]) handle() mem.Handle { return r.link & pack.HandleMask }

// An Atomic[T] is an atomic link cell holding a Ref[T] — the root pointer
// of a concurrent structure (a stack top, a queue head, a bucket head).
// The zero value holds the nil Ref. Reading a non-root link that another
// goroutine may retire requires Guard.Protect, not Load.
type Atomic[T any] struct{ v atomic.Uint64 }

// Load returns the current Ref.
func (a *Atomic[T]) Load() Ref[T] { return Ref[T]{a.v.Load()} }

// Store sets the Ref. The referenced block must already be fully
// initialised: Store publishes it.
func (a *Atomic[T]) Store(r Ref[T]) { a.v.Store(r.link) }

// CompareAndSwap swaps old for new atomically, reporting success.
func (a *Atomic[T]) CompareAndSwap(old, new Ref[T]) bool {
	return a.v.CompareAndSwap(old.link, new.link)
}

// A Guard is one goroutine's handle on a Domain: it owns one of the
// scheme's thread slots (the paper's tid) and with it the right to
// allocate, protect and retire blocks. A Guard must be used by one
// goroutine at a time.
//
// The guard runtime offers three acquisition paths, cheapest first:
//
//   - Guardless: call the structures' plain methods (Stack.Push, Map.Get,
//     ...). Each operation leases a guard from the Domain's per-P cache
//     and returns it — no Guard in sight, goroutines may outnumber
//     MaxGuards arbitrarily, and exhaustion parks instead of failing.
//   - Pinned: Domain.Pin / Domain.Unpin bracket a batch of Guarded-variant
//     calls with one lease — the guardless path's cost, paid once per
//     batch instead of once per operation.
//   - Explicit: Domain.Guard (panics when exhausted — a sizing bug),
//     Domain.TryGuard (polls), or Domain.AcquireGuard (parks, honours a
//     context) paired with Release. For fixed worker sets and hot loops.
//
// A custom data structure built on Guards follows the paper's operation
// shape: Begin, any number of Protect/Load/Store/CompareAndSwap/Retire
// calls, then End. The built-in structures do this internally — their
// callers at most lease the Guard.
type Guard[T any] struct {
	d   *Domain[T]
	tid int

	// Lease-cache bookkeeping: state arbitrates who owns the guard while
	// it idles in the cache, slot is its registry cell for that cycle.
	state atomic.Uint32
	slot  int32

	// Batch-context state (see batch.go). While batching, Retire diverts
	// into batchRetires for one RetireBatch submission at endBatch;
	// batchSpan records BeginBatch's verdict — whether one reservation
	// span covers the whole batch, or the runner must Clear between items
	// (HP). Owner-goroutine only, reset by endBatch.
	batching     bool
	batchSpan    bool
	batchRetires []mem.Handle
	// batchNodes are reusable backing arrays for the up-front allocation
	// runs of the batch write APIs (scratchNodes), so a guard running
	// bursts in a hot loop allocates its node lists once, not per burst.
	batchNodes [2][]Ref[T]

	// Per-guard batch accounting. Only the owner writes (plain
	// load-then-store, no read-modify-write), so a burst costs two MOVs
	// instead of two LOCK ADDs on a shared Domain counter; the fields are
	// atomics solely so Telemetry can read them concurrently through the
	// lease-cache registry. Release folds them into the Domain totals.
	statBatchOps   atomic.Uint64
	statBatchItems atomic.Uint64
}

// noteBatch accounts one completed batch of items operations on the
// guard's local counters (owner-only, see the field comment).
func (g *Guard[T]) noteBatch(items int) {
	g.statBatchOps.Store(g.statBatchOps.Load() + 1)
	g.statBatchItems.Store(g.statBatchItems.Load() + uint64(items))
}

// scratchNodes returns an empty slice with capacity at least n backed by
// the guard's reusable batch scratch (which of 0 or 1 — the tree's batch
// insert needs two runs live at once). Valid only until the next
// scratchNodes call with the same index; never returned to callers.
func (g *Guard[T]) scratchNodes(which, n int) []Ref[T] {
	if cap(g.batchNodes[which]) < n {
		g.batchNodes[which] = make([]Ref[T], 0, n)
	}
	return g.batchNodes[which][:0]
}

// Domain returns the Domain this guard belongs to.
func (g *Guard[T]) Domain() *Domain[T] { return g.d }

// Release returns the guard to its Domain's pool, waking a parked
// AcquireGuard if one is waiting. The guard must not be used afterwards.
// Release drops any protections the guard still holds (an implicit End),
// so a guard abandoned mid-operation — a panic between Begin and End, say
// — cannot block reclamation for the rest of the Domain's life.
func (g *Guard[T]) Release() {
	d := g.d
	if g.slot >= 0 {
		// Vacate the guard's sticky lease-cache slot. Only the owner gets
		// here (a cached guard must be claimed before Release), so the
		// slot still points at g and no claimant can race the clear.
		d.cache[g.slot].g.CompareAndSwap(g, nil)
		g.slot = -1
	}
	d.scheme().s.Clear(g.tid)
	// Fold the guard's batch accounting into the Domain totals: the
	// registry cell is already vacated, so Telemetry cannot see these
	// counts twice. Guards idling in the lease cache keep theirs local;
	// Telemetry sums them through the registry.
	if n := g.statBatchOps.Load(); n != 0 {
		d.batchOps.Add(n)
		d.batchItems.Add(g.statBatchItems.Load())
		g.statBatchOps.Store(0)
		g.statBatchItems.Store(0)
	}
	g.d = nil // fail fast on use-after-Release
	d.guards.Release(g.tid)
}

// Begin marks the start of a data-structure operation. Epoch- and
// interval-based schemes announce activity here; WFE, HE and HP no-op.
// Inside a batch context the announcement made at beginBatch already
// covers the item (and for HP, Begin is a no-op regardless), so Begin
// does nothing — which lets the batch APIs reuse the per-op Guarded
// method bodies unchanged (see batch.go).
func (g *Guard[T]) Begin() {
	if g.batching {
		return
	}
	g.d.scheme().s.Begin(g.tid)
}

// End marks the end of an operation, dropping every protection the guard
// holds (the paper's clear()). Refs obtained from Protect must not be
// dereferenced after End. Inside a batch context End degrades to
// batchStep: a no-op under a batch-wide reservation span, a per-item
// hazard clear under HP — so each batched item keeps exactly the per-op
// HP protection discipline.
func (g *Guard[T]) End() {
	if g.batching {
		g.batchStep()
		return
	}
	g.d.scheme().s.Clear(g.tid)
}

// Alloc allocates a block holding v and returns an owned (not yet
// published) Ref to it. All NumWords link/metadata words are zeroed (the
// arena recycles blocks without clearing them). Stamp metadata with
// StoreMeta and links with Store before publishing the block by CAS-ing
// its Ref into the structure.
//
// When the arena is exhausted Alloc runs the Domain's emergency
// reclamation pipeline (out-of-cadence scans with backoff, see
// Options.AllocRetries) and panics with an error wrapping
// ErrArenaExhausted only once that pipeline is spent. Callers that want
// the error instead use TryAlloc.
func (g *Guard[T]) Alloc(v T) Ref[T] {
	r, err := g.TryAlloc(v)
	if err != nil {
		panic(exhaustedPanic(g.d.arena.Capacity()))
	}
	return r
}

// TryAlloc is Alloc with backpressure: when the arena stays exhausted
// after the Domain's emergency-reclamation pipeline it returns
// ErrArenaExhausted instead of panicking. The structures' Try* methods
// are built on it.
func (g *Guard[T]) TryAlloc(v T) (Ref[T], error) {
	h, err := g.d.allocHandle(g.tid)
	if err != nil {
		return Ref[T]{}, err
	}
	for i := 0; i < NumWords; i++ {
		g.d.arena.StoreWord(h, i, 0)
	}
	g.d.vals[h-1] = v
	return Ref[T]{h}, nil
}

// tryAllocFast is a single allocation attempt that fails fast instead of
// entering the emergency pipeline. Structures whose allocation sites sit
// inside a protected section use it so they can drop their protection
// (End) before blocking: a stalled allocator still holding traversal
// reservations pins every contemporaneous block against every scan, and
// a herd of such stalls would deadlock the very reclamation each is
// waiting for. On false, the caller Ends, runs TryAlloc unprotected,
// Begins again and restarts its traversal.
func (g *Guard[T]) tryAllocFast(v T) (Ref[T], bool) {
	h, ok := g.d.scheme().s.TryAlloc(g.tid)
	if !ok {
		return Ref[T]{}, false
	}
	for i := 0; i < NumWords; i++ {
		g.d.arena.StoreWord(h, i, 0)
	}
	g.d.vals[h-1] = v
	return Ref[T]{h}, true
}

// Dealloc returns a never-published block to the arena immediately — the
// undo of Alloc for the insert-lost-the-race case. It must not be used on
// a block any other goroutine could have seen; published blocks go through
// Retire instead.
func (g *Guard[T]) Dealloc(r Ref[T]) { g.d.arena.Free(g.tid, r.handle()) }

// Retire hands a block that has been unlinked from its structure to the
// reclamation scheme, which recycles it once no protected reader can still
// hold it. Retire does not release the caller's own protection — the
// caller may keep using the block until End.
//
// Retirement is per-tid, not per-goroutine: a block retired through a
// leased guard (the guardless structure methods, or Pin/Unpin batches)
// joins the same per-tid retire list an explicit Guard would use, and its
// cleanup scan may run later under whichever goroutine next leases that
// tid. All three acquisition paths therefore share one retire discipline;
// none can strand a retired block.
func (g *Guard[T]) Retire(r Ref[T]) {
	if g.batching {
		// Inside a batch context the retire is deferred: endBatch submits
		// the whole burst through RetireBatch, so the scan-gating counter
		// advances once per batch. Deferral only delays reclamation —
		// always safe.
		g.batchRetires = append(g.batchRetires, r.handle())
		return
	}
	g.d.scheme().s.Retire(g.tid, r.handle())
}

// Protect reads a structure-root link and protects the referenced block
// until End (or until slot is reused by a later Protect). slot selects one
// of the guard's MaxSlots protections. The returned Ref preserves the mark
// bit stored in the link.
func (g *Guard[T]) Protect(src *Atomic[T], slot int) Ref[T] {
	return Ref[T]{g.d.scheme().s.GetProtected(g.tid, &src.v, slot, 0) & pack.PtrMask}
}

// ProtectWord reads link word `word` of the protected-or-owned block
// `parent` and protects the referenced block, like Protect. Passing the
// parent lets WFE's helpers keep it alive while they complete the read on
// the guard's behalf (paper §3.4).
func (g *Guard[T]) ProtectWord(parent Ref[T], word, slot int) Ref[T] {
	ph := parent.handle()
	src := g.d.arena.WordAddr(ph, word)
	return Ref[T]{g.d.scheme().s.GetProtected(g.tid, src, slot, ph) & pack.PtrMask}
}

// Value returns the block's value. The block must be protected, owned, or
// quiescent; in Debug mode a freed block panics.
func (g *Guard[T]) Value(r Ref[T]) T {
	h := r.handle()
	g.d.arena.CheckLive(h, "Value")
	return g.d.vals[h-1]
}

// Load atomically reads link word `word` of block r, mark bit included.
// Use Protect/ProtectWord instead when the referenced block must stay
// alive across the read.
func (g *Guard[T]) Load(r Ref[T], word int) Ref[T] {
	return Ref[T]{g.d.arena.LoadWord(r.handle(), word) & pack.PtrMask}
}

// Store atomically writes link word `word` of block r.
func (g *Guard[T]) Store(r Ref[T], word int, l Ref[T]) {
	g.d.arena.StoreWord(r.handle(), word, l.link)
}

// CompareAndSwap atomically swaps link word `word` of block r from old to
// new, reporting success. Mark bits participate in the comparison: a CAS
// expecting an unmarked link fails once a deleter marks it.
func (g *Guard[T]) CompareAndSwap(r Ref[T], word int, old, new Ref[T]) bool {
	return g.d.arena.CASWord(r.handle(), word, old.link, new.link)
}

// LoadMeta atomically reads word `word` of block r as raw metadata (a key,
// a version, a length — anything that is not a link).
func (g *Guard[T]) LoadMeta(r Ref[T], word int) uint64 {
	return g.d.arena.LoadWord(r.handle(), word)
}

// StoreMeta atomically writes raw metadata word `word` of block r.
func (g *Guard[T]) StoreMeta(r Ref[T], word int, v uint64) {
	g.d.arena.StoreWord(r.handle(), word, v)
}
