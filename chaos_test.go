package wfe_test

// The chaos robustness matrix: the paper's Table 1 distinction, asserted
// from recorded trajectories instead of argued from construction. Every
// canned hostile schedule runs over every scheme; the bounded schemes
// must respect their scenario ceilings, the exempt schemes (Leak always,
// EBR under a stalled reader) must visibly blow past them, and the
// advisor shown the incumbent EBR trajectory must recommend the
// known-correct escalation.

import (
	"testing"

	"wfe"
	"wfe/advisor"
	"wfe/internal/chaos"
)

// TestChaosRobustnessMatrix runs the full canned matrix. The sequential
// scenarios are deterministic, so the ceilings are exact regression
// pins, not statistical hopes.
func TestChaosRobustnessMatrix(t *testing.T) {
	for _, c := range chaos.Catalog() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			if testing.Short() && c.Name != "stalled-reader" {
				t.Skip("short mode runs only the scenario the schemes disagree on")
			}
			for _, kind := range wfe.AllSchemes() {
				tr, err := chaos.Run(kind, c.Scenario)
				if err != nil {
					t.Fatalf("%s: %v", kind, err)
				}
				if tr.Summary.Quiesce != "" {
					t.Errorf("%s: domain did not settle clean after the schedule: %s", kind, tr.Summary.Quiesce)
				}
				ceiling := c.Ceiling(kind)
				switch {
				case ceiling > 0:
					if tr.Summary.UnreclaimedMax > ceiling {
						t.Errorf("%s: backlog highwater %d (tick %d) exceeds the bounded ceiling %d",
							kind, tr.Summary.UnreclaimedMax, tr.Summary.UnreclaimedMaxTick, ceiling)
					}
				case kind == wfe.EBR || (kind == wfe.Leak && tr.Summary.Deterministic):
					// The exempt schemes must actually exhibit the growth
					// the exemption predicts, or the scenario is too gentle
					// to prove anything.
					if tr.Summary.UnreclaimedMax <= c.UnboundedFloor {
						t.Errorf("%s: expected unbounded growth past %d, saw highwater %d — scenario too gentle",
							kind, c.UnboundedFloor, tr.Summary.UnreclaimedMax)
					}
				}
				if kind == wfe.EBR && c.WantAdvice != "" {
					rec := advisor.Advise(tr.Samples())
					if rec.Scheme != c.WantAdvice {
						t.Errorf("advisor on the EBR trajectory recommended %q, want %q (profile %+v)",
							rec.Scheme, c.WantAdvice, rec.Profile)
					}
				}
				if c.WantPressure {
					if kind == wfe.Leak {
						// The pipeline cannot help the judge-less baseline:
						// exhaustion must surface as errors, not panics.
						if tr.Summary.AllocFailures == 0 {
							t.Errorf("%s: expected surfaced alloc failures on the undersized arena, saw none", kind)
						}
					} else {
						if tr.Summary.EmergencyScans == 0 {
							t.Errorf("%s: scenario never entered the emergency pipeline — arena not undersized enough", kind)
						}
						if tr.Summary.AllocFailures != 0 {
							t.Errorf("%s: %d allocation(s) surfaced ErrArenaExhausted despite emergency reclamation",
								kind, tr.Summary.AllocFailures)
						}
					}
				}
			}
		})
	}
}

// TestChaosMonitorMatchesOfflineAdvise streams each pinned scenario's EBR
// trajectory through an unbounded advisor.Monitor — the live path the
// Domain's background Sampler drives — and asserts it lands on the same
// recommendation the offline Advise pins. This is the acceptance bar for
// the streaming advisor: live monitoring must reproduce the batch
// decision, not approximate it.
func TestChaosMonitorMatchesOfflineAdvise(t *testing.T) {
	for _, c := range chaos.Catalog() {
		c := c
		if c.WantAdvice == "" {
			continue
		}
		t.Run(c.Name, func(t *testing.T) {
			tr, err := chaos.Run(wfe.EBR, c.Scenario)
			if err != nil {
				t.Fatal(err)
			}
			samples := tr.Samples()
			offline := advisor.Advise(samples)
			if offline.Scheme != c.WantAdvice {
				t.Fatalf("offline Advise recommended %q, want pinned %q", offline.Scheme, c.WantAdvice)
			}
			m := advisor.NewMonitor(0)
			changes := 0
			for _, s := range samples {
				if _, changed := m.Push(s); changed {
					changes++
				}
			}
			live, ok := m.Current()
			if !ok {
				t.Fatal("monitor has no recommendation after the full trajectory")
			}
			if live.Scheme != offline.Scheme {
				t.Errorf("streamed Monitor recommended %q, offline Advise %q (profile %+v)",
					live.Scheme, offline.Scheme, live.Profile)
			}
			if changes == 0 {
				t.Error("monitor never reported a change, not even the first push")
			}
			if changes > len(samples)/2 {
				t.Errorf("monitor change signal flapped: %d changes over %d ticks", changes, len(samples))
			}
		})
	}
}

// TestChaosStalledReaderDrains asserts the recovery half of the EBR
// story: the backlog that accumulated behind the stalled reservation
// drains within the trajectory once the stall lifts — unbounded growth
// under a stall is a liveness property of the stall, not a leak.
func TestChaosStalledReaderDrains(t *testing.T) {
	c := chaos.StalledReader()
	tr, err := chaos.Run(wfe.EBR, c.Scenario)
	if err != nil {
		t.Fatal(err)
	}
	last := tr.Ticks[len(tr.Ticks)-1]
	if stallEnd := c.Stalls[0].To; last.Tick < stallEnd+5 {
		t.Fatalf("scenario leaves no post-stall ticks to observe the drain (last tick %d, stall ends %d)",
			last.Tick, stallEnd)
	}
	if last.Unreclaimed >= tr.Summary.UnreclaimedMax/2 {
		t.Errorf("EBR backlog did not drain after the stall lifted: final tick %d vs highwater %d",
			last.Unreclaimed, tr.Summary.UnreclaimedMax)
	}
	if tr.Summary.UnreclaimedFinal > 256 {
		t.Errorf("settled backlog %d did not collapse", tr.Summary.UnreclaimedFinal)
	}
}

// TestChaosHPStrictlyTighter pins HP's qualitatively tighter bound: under
// the stalled reader it holds the backlog an order of magnitude below the
// era-class schemes, because it pins individual handles rather than
// everything live at the stall era.
func TestChaosHPStrictlyTighter(t *testing.T) {
	c := chaos.StalledReader()
	hp, err := chaos.Run(wfe.HP, c.Scenario)
	if err != nil {
		t.Fatal(err)
	}
	he, err := chaos.Run(wfe.HE, c.Scenario)
	if err != nil {
		t.Fatal(err)
	}
	if hp.Summary.UnreclaimedMax*2 > he.Summary.UnreclaimedMax {
		t.Errorf("HP highwater %d not clearly below HE's %d under the stalled reader",
			hp.Summary.UnreclaimedMax, he.Summary.UnreclaimedMax)
	}
}
