// Guard-runtime benchmarks: the lock-free pool against the mutex freelist
// it replaced, and the guardless API against pinned and per-op-acquired
// guards. The acceptance bars: uncontended acquire/release beats the mutex
// baseline, and guardless structure ops stay within 1.5x of pinned ones.
package wfe_test

import (
	"runtime"
	"sync"
	"testing"

	"wfe"
	"wfe/internal/guardpool"
)

// mutexPool replicates the freelist the Domain used before the guard
// runtime: a slice of free tids behind a sync.Mutex. It exists only as
// the benchmark baseline.
type mutexPool struct {
	mu   sync.Mutex
	free []int
}

func newMutexPool(n int) *mutexPool {
	p := &mutexPool{free: make([]int, n)}
	for i := range p.free {
		p.free[i] = n - 1 - i
	}
	return p
}

func (p *mutexPool) TryAcquire() (int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.free)
	if n == 0 {
		return 0, false
	}
	tid := p.free[n-1]
	p.free = p.free[:n-1]
	return tid, true
}

func (p *mutexPool) Release(tid int) {
	p.mu.Lock()
	p.free = append(p.free, tid)
	p.mu.Unlock()
}

// BenchmarkGuardAcquireRelease measures one acquire/release round trip on
// the lock-free pool versus the mutex baseline, uncontended (one
// goroutine) and contended (GOMAXPROCS goroutines over GOMAXPROCS ids).
func BenchmarkGuardAcquireRelease(b *testing.B) {
	n := runtime.GOMAXPROCS(0)
	b.Run("lockfree-uncontended", func(b *testing.B) {
		p := guardpool.New(n)
		for i := 0; i < b.N; i++ {
			tid, _ := p.TryAcquire()
			p.Release(tid)
		}
	})
	b.Run("mutex-uncontended", func(b *testing.B) {
		p := newMutexPool(n)
		for i := 0; i < b.N; i++ {
			tid, _ := p.TryAcquire()
			p.Release(tid)
		}
	})
	b.Run("lockfree-contended", func(b *testing.B) {
		p := guardpool.New(n)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if tid, ok := p.TryAcquire(); ok {
					p.Release(tid)
				}
			}
		})
	})
	b.Run("mutex-contended", func(b *testing.B) {
		p := newMutexPool(n)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if tid, ok := p.TryAcquire(); ok {
					p.Release(tid)
				}
			}
		})
	})
}

// BenchmarkGuardedOps compares the three acquisition paths on the same
// stack push/pop workload at GOMAXPROCS goroutines: pinned (one lease for
// the whole run — the floor), guardless (one lease per operation — must
// stay within 1.5x of pinned), and acquire-per-op (pool round trip every
// operation — what guardless would cost without the lease cache).
func BenchmarkGuardedOps(b *testing.B) {
	newStack := func(b *testing.B) (*wfe.Domain[uint64], *wfe.Stack[uint64]) {
		b.Helper()
		d, err := wfe.NewDomain[uint64](wfe.Options{Capacity: 1 << 20})
		if err != nil {
			b.Fatal(err)
		}
		return d, wfe.NewStack[uint64](d)
	}
	b.Run("pinned", func(b *testing.B) {
		d, s := newStack(b)
		b.RunParallel(func(pb *testing.PB) {
			g := d.Pin()
			defer d.Unpin(g)
			for pb.Next() {
				s.PushGuarded(g, 1)
				s.PopGuarded(g)
			}
		})
	})
	b.Run("guardless", func(b *testing.B) {
		_, s := newStack(b)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				s.Push(1)
				s.Pop()
			}
		})
	})
	b.Run("acquire-per-op", func(b *testing.B) {
		d, s := newStack(b)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				g, ok := d.TryGuard()
				if !ok {
					continue
				}
				s.PushGuarded(g, 1)
				s.PopGuarded(g)
				g.Release()
			}
		})
	})
}
