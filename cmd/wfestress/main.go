// Command wfestress is the correctness workhorse: it runs any data
// structure × scheme combination with the arena's use-after-free detection
// armed, optionally forcing WFE's slow path on every protected read (the
// paper's §5 stress validation) and optionally stalling reader threads to
// exercise robustness. Any reclamation bug panics with a use-after-free or
// double-free diagnostic; a clean exit prints the op and arena census.
//
// The -churn mode stresses the guard runtime instead of one data
// structure: it drives the public guardless API from 8x more goroutines
// than the Domain has guards, with the debug arena armed, and asserts the
// guard pool refills completely after the storm — a leaked lease or a
// double-handed tid fails the run.
//
// The -workloads mode storms the four promoted public structures (WFQueue,
// TurnQueue, HashMap, Tree) through the guardless API, again from 8x more
// goroutines than guards with the debug arena armed; after each storm the
// structure is drained and the run asserts the guard pool refills and (for
// every reclaiming scheme) the retired backlog collapses.
//
// The -chaos mode runs internal/chaos's canned hostile-schedule matrix
// (stalled readers, preempted writers, bursty churn, oversubscription)
// across the schemes, asserts each scheme's robustness bound and the
// advisor's expected recommendation, and with -chaosdir writes every
// per-(scenario, scheme) trajectory as wfe-chaos/v1 JSON for artifact
// upload and cmd/wfeadvise.
//
// The -switch mode is the live-switching storm: one Domain under
// guardless churn from 8x more goroutines than guards has Domain.Switch
// cycle it through every scheme in rotation for the whole run, with the
// debug arena armed and a sampler recording the trajectory. Any ordering
// bug between the guard gate, the backlog drain and the scheme swap
// panics or fails the final census; -switchout writes the per-hop log
// and sampler rows as wfe-switch/v1 JSON for artifact upload.
//
// The -batch mode is the batched-operations correctness twin of the
// bench ablation: 8x more goroutines than guards drive the batch entry
// points (MultiPut/MultiDelete/MultiGet, PushAll/PopN and their Try*
// twins, guardless and pinned) at mixed widths while Domain.Switch
// rotates through every scheme and the arena-alloc failpoint injects
// probabilistic allocation faults — an exhaustion storm that forces the
// Try* partial-progress paths mid-burst. The debug arena is armed; the
// run ends with a clean quiesce census and asserts the batch telemetry
// actually counted the bursts.
//
// Every mode can serve live OpenMetrics with -metrics; -churn can record
// a Chrome trace-event artifact (wfe-trace/v1) of the guard runtime's
// internal events with -trace.
//
//	wfestress -ds hashmap -scheme WFE -forceslow -threads 8 -duration 5s
//	wfestress -ds all -scheme all -duration 2s
//	wfestress -churn -scheme all -duration 2s
//	wfestress -workloads -scheme all -duration 1s
//	wfestress -chaos -scheme all -chaosdir chaos-out
//	wfestress -switch -duration 5s -switchout switch-trajectory.json
//	wfestress -batch -duration 5s
//	wfestress -churn -scheme WFE -trace churn-trace.json -metrics 127.0.0.1:9100
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"wfe"
	"wfe/advisor"
	"wfe/internal/bench"
	"wfe/internal/chaos"
	"wfe/internal/ds"
	"wfe/internal/ds/bst"
	"wfe/internal/ds/crturn"
	"wfe/internal/ds/hashmap"
	"wfe/internal/ds/kpqueue"
	"wfe/internal/ds/list"
	"wfe/internal/failpoint"
	"wfe/internal/mem"
	"wfe/internal/quiesce"
	"wfe/internal/reclaim"
	"wfe/internal/schemes"
	"wfe/metrics"
)

var allDS = []string{"list", "hashmap", "bst", "kpqueue", "crturn"}

// metricsReg, when -metrics is serving, receives every stressed domain's
// live telemetry; traceFile, when -trace is set, is where the churn run
// writes its Chrome trace artifact.
var (
	metricsReg *metrics.Registry
	traceFile  string
)

// observe registers a live telemetry source when -metrics is serving.
func observe(name string, tel func() wfe.Telemetry) {
	if metricsReg != nil {
		metricsReg.Register(name, tel)
	}
}

func main() {
	var (
		dsName    = flag.String("ds", "hashmap", "data structure (list, hashmap, bst, kpqueue, crturn, all)")
		scheme    = flag.String("scheme", "WFE", "reclamation scheme (or 'all')")
		threads   = flag.Int("threads", 8, "worker goroutines")
		duration  = flag.Duration("duration", 3*time.Second, "stress duration per combination")
		keyRange  = flag.Uint64("keyrange", 512, "key range (small ranges maximise conflicts)")
		forceSlow = flag.Bool("forceslow", false, "force WFE's slow path on every GetProtected")
		stall     = flag.Int("stall", 0, "number of reader threads to stall mid-operation")
		eraFreq   = flag.Int("erafreq", 8, "era increment frequency (low values stress helping)")
		churn     = flag.Bool("churn", false, "guard-runtime churn: 8x more goroutines than guards over the public guardless API")
		workloads = flag.Bool("workloads", false, "storm the promoted public structures (WFQueue, TurnQueue, HashMap, Tree) through the guardless API")
		chaosRun  = flag.Bool("chaos", false, "run the canned chaos-schedule matrix (stalled readers, preempted writers, bursty churn, oversubscription) and assert the per-scheme robustness bounds")
		chaosDir  = flag.String("chaosdir", "", "with -chaos: directory to write per-(scenario,scheme) trajectory JSONs into")
		chaosName = flag.String("scenario", "", "with -chaos: run only the named scenario (default: the whole catalog)")
		switchRun = flag.Bool("switch", false, "live-switching storm: cycle Domain.Switch through every scheme under guardless churn")
		batchRun  = flag.Bool("batch", false, "batched-operations storm: batch bursts at mixed widths racing Domain.Switch and injected allocation faults")
		switchOut = flag.String("switchout", "", "with -switch: write the storm's hop log and sampler trajectory as wfe-switch/v1 JSON to this file")
		maddr     = flag.String("metrics", "", "serve OpenMetrics/pprof on this address while stressing (e.g. 127.0.0.1:9100)")
		traceOut  = flag.String("trace", "", "with -churn: record the domain's event trace and write it as Chrome trace-event JSON (wfe-trace/v1) to this file")
	)
	flag.Parse()

	if *maddr != "" {
		metricsReg = metrics.NewRegistry()
		addr, err := metrics.Serve(*maddr, metricsReg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wfestress: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "wfestress: serving metrics on http://%s/metrics\n", addr)
	}
	traceFile = *traceOut

	dss := []string{*dsName}
	if *dsName == "all" {
		dss = allDS
	}
	scs := []string{*scheme}
	if *scheme == "all" {
		scs = []string{"WFE", "WFE-slow", "HE", "HP", "EBR", "2GEIBR", "Leak"}
	}

	failed := false
	if *batchRun {
		if err := batchStorm(*threads, *duration, *keyRange, *eraFreq); err != nil {
			fmt.Fprintf(os.Stderr, "FAIL batch: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *switchRun {
		if err := switchStorm(*threads, *duration, *keyRange, *eraFreq, *switchOut); err != nil {
			fmt.Fprintf(os.Stderr, "FAIL switch: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *chaosRun {
		if err := chaosMatrix(*scheme, *chaosName, *chaosDir); err != nil {
			fmt.Fprintf(os.Stderr, "FAIL chaos: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *workloads {
		for _, ds := range []string{"wfqueue", "turnqueue", "hashmap", "tree"} {
			for _, s := range scs {
				if err := workloadStress(ds, s, *threads, *duration, *keyRange, *forceSlow, *eraFreq); err != nil {
					fmt.Fprintf(os.Stderr, "FAIL workload %-10s %-8s: %v\n", ds, s, err)
					failed = true
				}
			}
		}
		if failed {
			os.Exit(1)
		}
		return
	}
	if *churn {
		for _, s := range scs {
			if err := churnStress(s, *threads, *duration, *keyRange, *forceSlow, *eraFreq); err != nil {
				fmt.Fprintf(os.Stderr, "FAIL churn    %-8s: %v\n", s, err)
				failed = true
			}
		}
		if failed {
			os.Exit(1)
		}
		return
	}
	for _, d := range dss {
		for _, s := range scs {
			if err := stress(d, s, *threads, *duration, *keyRange, *forceSlow, *stall, *eraFreq); err != nil {
				fmt.Fprintf(os.Stderr, "FAIL %-8s %-8s: %v\n", d, s, err)
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

// chaosMatrix runs the canned chaos scenarios over the selected schemes
// (every scheme for "all"), asserting the same robustness matrix as the
// chaos tests: bounded schemes under their ceilings, the exempt schemes
// (Leak; EBR under a stalled reader) visibly past the floor, a clean
// post-run quiesce everywhere, and the advisor's expected recommendation
// on each scenario's EBR trajectory. With dir set, each trajectory is
// written to <dir>/<scenario>-<scheme>.json for artifact upload. A
// non-empty scenario restricts the matrix to that one catalog entry.
func chaosMatrix(scheme, scenario, dir string) error {
	kinds := wfe.AllSchemes()
	if scheme != "all" {
		name := scheme
		if name == "WFE-slow" {
			name = "WFE"
		}
		kind, err := wfe.ParseScheme(name)
		if err != nil {
			return err
		}
		kinds = []wfe.SchemeKind{kind}
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	catalog := chaos.Catalog()
	if scenario != "" {
		kept := catalog[:0]
		for _, c := range catalog {
			if c.Name == scenario {
				kept = append(kept, c)
			}
		}
		if len(kept) == 0 {
			return fmt.Errorf("unknown chaos scenario %q", scenario)
		}
		catalog = kept
	}
	failed := false
	for _, c := range catalog {
		for _, kind := range kinds {
			tr, err := chaos.Run(kind, c.Scenario)
			if err != nil {
				return err
			}
			verdict := "ok"
			complain := func(format string, args ...any) {
				verdict = fmt.Sprintf(format, args...)
				failed = true
			}
			ceiling := c.Ceiling(kind)
			switch {
			case tr.Summary.Quiesce != "":
				complain("quiesce: %s", tr.Summary.Quiesce)
			case ceiling > 0 && tr.Summary.UnreclaimedMax > ceiling:
				complain("highwater %d exceeds ceiling %d", tr.Summary.UnreclaimedMax, ceiling)
			case ceiling == 0 && (kind == wfe.EBR || (kind == wfe.Leak && tr.Summary.Deterministic)) &&
				tr.Summary.UnreclaimedMax <= c.UnboundedFloor:
				complain("expected growth past %d, saw %d", c.UnboundedFloor, tr.Summary.UnreclaimedMax)
			}
			advice := ""
			if kind == wfe.EBR && c.WantAdvice != "" {
				rec := advisor.Advise(tr.Samples())
				advice = fmt.Sprintf("  advise=%s", rec.Scheme)
				if rec.Scheme != c.WantAdvice {
					complain("advisor said %s, want %s", rec.Scheme, c.WantAdvice)
				}
			}
			fmt.Printf("chaos %-17s %-8s highwater=%6d final=%5d parks=%6d %s%s\n",
				c.Name, kind, tr.Summary.UnreclaimedMax, tr.Summary.UnreclaimedFinal,
				tr.Summary.Parks, verdict, advice)
			if dir != "" {
				blob, err := json.MarshalIndent(tr, "", " ")
				if err != nil {
					return err
				}
				path := filepath.Join(dir, fmt.Sprintf("%s-%s.json", c.Name, kind))
				if err := os.WriteFile(path, blob, 0o644); err != nil {
					return err
				}
			}
		}
	}
	if failed {
		return fmt.Errorf("robustness matrix violated (see lines above)")
	}
	return nil
}

// switchHop is one Domain.Switch in the storm's log: when it completed
// (ms since storm start), the ordered pair it moved between, and the
// retired backlog the drain left behind.
type switchHop struct {
	AtMS        int64  `json:"at_ms"`
	From        string `json:"from"`
	To          string `json:"to"`
	Unreclaimed int    `json:"unreclaimed"`
}

// switchTrajectory is the wfe-switch/v1 artifact: the hop log plus the
// sampler's telemetry rows across the whole storm, enough for offline
// tools to plot backlog and scan behaviour around every swap.
type switchTrajectory struct {
	Format   string                `json:"format"`
	Threads  int                   `json:"threads"`
	Duration string                `json:"duration"`
	Hops     []switchHop           `json:"hops"`
	Samples  []wfe.TelemetrySample `json:"samples"`
	Final    wfe.Telemetry         `json:"final"`
}

// switchStorm cycles one Domain through every scheme via Domain.Switch
// while 8x more goroutines than guards churn the guardless API with the
// debug arena armed. Each hop must drain cleanly mid-storm; afterwards
// the structures are drained and the census must collapse like any
// single-scheme run. The Leak dwell is survivable because the next hop's
// drain hands the leaked backlog to a reclaiming scheme.
func switchStorm(threads int, duration time.Duration, keyRange uint64,
	eraFreq int, out string) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()

	const interval = 5 * time.Millisecond
	d, err := wfe.NewDomain[uint64](wfe.Options{
		Scheme:      wfe.WFE,
		Capacity:    1 << 22, // headroom for the Leak dwells' unreclaimed spikes
		MaxGuards:   threads,
		EraFreq:     eraFreq,
		CleanupFreq: 4,
		Debug:       true,
	})
	if err != nil {
		return err
	}
	defer d.Close()
	observe("switch", d.Telemetry)
	s := d.StartSampler(wfe.SamplerConfig{
		Interval: interval,
		History:  int(duration/interval) + 64,
	})
	st := wfe.NewStack[uint64](d)
	m := wfe.NewMap[uint64](d, 64)

	goroutines := 8 * threads
	var (
		stop atomic.Bool
		ops  atomic.Uint64
		wg   sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*9901 + 7))
			for !stop.Load() {
				key := uint64(rng.Int63n(int64(keyRange)))
				switch rng.Intn(6) {
				case 0:
					st.Push(key)
				case 1:
					st.Pop()
				case 2:
					m.Put(key, key)
				case 3:
					m.Delete(key)
				case 4:
					m.Get(key)
				default: // pinned batch: a guard held across the gate's path
					g := d.Pin()
					m.InsertGuarded(g, key, key)
					m.DeleteGuarded(g, key)
					d.Unpin(g)
				}
				ops.Add(1)
			}
		}(w)
	}

	// The switcher: rotate through every scheme, dwelling briefly on each,
	// until the clock runs out; always end on a reclaiming scheme so the
	// final census has someone to collapse the backlog.
	const dwell = 20 * time.Millisecond
	rotation := wfe.AllSchemes()
	var hops []switchHop
	for i := 0; time.Since(start) < duration; i++ {
		time.Sleep(dwell)
		from := d.Scheme()
		to := rotation[i%len(rotation)]
		if to == from {
			continue
		}
		if serr := d.Switch(to); serr != nil {
			stop.Store(true)
			wg.Wait()
			return fmt.Errorf("hop %d (%v -> %v): %v", i, from, to, serr)
		}
		hops = append(hops, switchHop{
			AtMS:        time.Since(start).Milliseconds(),
			From:        from.String(),
			To:          to.String(),
			Unreclaimed: d.Telemetry().Unreclaimed,
		})
	}
	if d.Scheme() == wfe.Leak {
		if serr := d.Switch(wfe.WFE); serr != nil {
			stop.Store(true)
			wg.Wait()
			return fmt.Errorf("final hop off Leak: %v", serr)
		}
		hops = append(hops, switchHop{
			AtMS: time.Since(start).Milliseconds(),
			From: wfe.Leak.String(), To: wfe.WFE.String(),
			Unreclaimed: d.Telemetry().Unreclaimed,
		})
	}
	stop.Store(true)
	wg.Wait()
	for {
		if _, ok := st.Pop(); !ok {
			break
		}
	}
	for k := uint64(0); k < keyRange; k++ {
		m.Delete(k)
	}
	quiesce.Settle(d)
	if err := quiesce.Check(d, true); err != nil {
		return err
	}
	s.Stop()
	tel := d.Telemetry()
	if got, want := tel.SchemeSwitches, uint64(len(hops)); got != want {
		return fmt.Errorf("SchemeSwitches = %d, want %d (one per logged hop)", got, want)
	}
	if out != "" {
		blob, jerr := json.MarshalIndent(switchTrajectory{
			Format:   "wfe-switch/v1",
			Threads:  threads,
			Duration: duration.String(),
			Hops:     hops,
			Samples:  s.History(),
			Final:    tel,
		}, "", " ")
		if jerr != nil {
			return jerr
		}
		if werr := os.WriteFile(out, blob, 0o644); werr != nil {
			return werr
		}
		fmt.Printf("trajectory: wrote %d hops, %d sampler rows to %s\n", len(hops), len(s.History()), out)
	}
	fmt.Printf("PASS switch           : %d ops, %d switches over %d schemes, %d goroutines over %d guards, %d unreclaimed in %v\n",
		ops.Load(), len(hops), len(rotation), goroutines, threads,
		tel.Unreclaimed, time.Since(start).Round(time.Millisecond))
	return nil
}

// batchStorm is the batched-operations correctness twin of the bench
// ablation: 8x more goroutines than guards drive the batch entry points
// on a HashMap and a Stack at mixed widths — guardless Try*/Multi*
// bursts plus pinned Guarded bursts — while a switcher cycles
// Domain.Switch through every scheme and the arena-alloc failpoint
// makes roughly one allocation in 500 fail, forcing the Try* paths to
// surface partial progress mid-burst and the plain paths through the
// emergency-reclamation pipeline. The retirer-scan failpoint skips an
// occasional scan so the backlog breathes between bursts. The debug
// arena is armed throughout; after the storm the failpoints are
// disarmed, the structures drained, and the run must pass a full
// quiesce census and show the batch telemetry counted the bursts.
func batchStorm(threads int, duration time.Duration, keyRange uint64,
	eraFreq int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	defer failpoint.DisarmAll()
	if site, ok := failpoint.Lookup("arena-alloc"); ok {
		site.Arm(failpoint.Trigger{Prob: 0.002, Seed: 17,
			Err: errors.New("injected alloc fault")})
	}
	if site, ok := failpoint.Lookup("retirer-scan"); ok {
		site.Arm(failpoint.Trigger{Prob: 0.01, Seed: 29,
			Err: errors.New("injected scan skip")})
	}

	d, err := wfe.NewDomain[uint64](wfe.Options{
		Scheme:      wfe.WFE,
		Capacity:    1 << 22, // headroom for the Leak dwells' unreclaimed spikes
		MaxGuards:   threads,
		EraFreq:     eraFreq,
		CleanupFreq: 4,
		Debug:       true,
	})
	if err != nil {
		return err
	}
	defer d.Close()
	observe("batch", d.Telemetry)
	m := wfe.NewHashMap[uint64](d, 64)
	st := wfe.NewStack[uint64](d)

	goroutines := 8 * threads
	widths := []int{2, 8, 32}
	var (
		stop        atomic.Bool
		bursts      atomic.Uint64
		items       atomic.Uint64
		exhausts    atomic.Uint64
		workerPanic atomic.Pointer[string]
		wg          sync.WaitGroup
	)
	// benign reports nil for the one error the exhaustion storm is meant
	// to provoke (counting it), and the error itself for anything else —
	// any other failure escaping a batch entry point is a bug.
	benign := func(terr error) error {
		if terr == nil {
			return nil
		}
		if errors.Is(terr, wfe.ErrArenaExhausted) {
			exhausts.Add(1)
			return nil
		}
		return terr
	}
	start := time.Now()
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					msg := fmt.Sprint(r)
					workerPanic.CompareAndSwap(nil, &msg)
					stop.Store(true)
				}
			}()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 3))
			ks := make([]uint64, 0, 32)
			vs := make([]uint64, 0, 32)
			for !stop.Load() {
				n := widths[rng.Intn(len(widths))]
				ks, vs = ks[:0], vs[:0]
				for i := 0; i < n; i++ {
					k := uint64(rng.Int63n(int64(keyRange)))
					ks = append(ks, k)
					vs = append(vs, k)
				}
				done := 0
				switch rng.Intn(6) {
				case 0:
					applied, terr := m.TryMultiPut(ks, vs)
					if terr = benign(terr); terr != nil {
						panic(terr)
					}
					done = applied
				case 1:
					m.MultiDelete(ks)
					done = n
				case 2:
					m.MultiGet(ks)
					done = n
				case 3:
					pushed, terr := st.TryPushAll(vs)
					if terr = benign(terr); terr != nil {
						panic(terr)
					}
					done = pushed
				case 4:
					done = len(st.PopN(n))
				default: // pinned guard: two bursts amortize one lease
					g := d.Pin()
					applied, terr := m.TryMultiPutGuarded(g, ks, vs)
					if terr = benign(terr); terr != nil {
						d.Unpin(g)
						panic(terr)
					}
					done = applied
					if applied == n {
						m.MultiDeleteGuarded(g, ks)
						done += n
					}
					d.Unpin(g)
				}
				bursts.Add(1)
				items.Add(uint64(done))
			}
		}(w)
	}

	// The switcher: same rotation as the -switch storm, so every scheme's
	// BeginBatch/RetireBatch path runs under the storm, and the switch
	// gate has to drain guards that are mid-burst.
	const dwell = 20 * time.Millisecond
	rotation := wfe.AllSchemes()
	switches := 0
	for i := 0; time.Since(start) < duration && !stop.Load(); i++ {
		time.Sleep(dwell)
		to := rotation[i%len(rotation)]
		if to == d.Scheme() {
			continue
		}
		if serr := d.Switch(to); serr != nil {
			stop.Store(true)
			wg.Wait()
			return fmt.Errorf("switch %d to %v: %v", i, to, serr)
		}
		switches++
	}
	if d.Scheme() == wfe.Leak {
		if serr := d.Switch(wfe.WFE); serr != nil {
			stop.Store(true)
			wg.Wait()
			return fmt.Errorf("final hop off Leak: %v", serr)
		}
		switches++
	}
	stop.Store(true)
	wg.Wait()
	if msg := workerPanic.Load(); msg != nil {
		return fmt.Errorf("worker panic: %s", *msg)
	}

	// Quiesce with the faults disarmed: the census needs real scans and
	// real allocations, and the drain itself runs through the batch
	// paths one last time.
	failpoint.DisarmAll()
	for len(st.PopN(64)) > 0 {
	}
	drain := make([]uint64, 0, 64)
	for lo := uint64(0); lo < keyRange; lo += 64 {
		drain = drain[:0]
		for k := lo; k < lo+64 && k < keyRange; k++ {
			drain = append(drain, k)
		}
		m.MultiDelete(drain)
	}
	quiesce.Settle(d)
	if err := quiesce.Check(d, true); err != nil {
		return err
	}
	tel := d.Telemetry()
	if got, want := tel.SchemeSwitches, uint64(switches); got != want {
		return fmt.Errorf("SchemeSwitches = %d, want %d", got, want)
	}
	if tel.BatchOps == 0 || tel.BatchedItems == 0 {
		return fmt.Errorf("batch telemetry empty: BatchOps=%d BatchedItems=%d",
			tel.BatchOps, tel.BatchedItems)
	}
	if tel.BatchOps < bursts.Load() {
		return fmt.Errorf("BatchOps = %d, storm ran %d bursts", tel.BatchOps, bursts.Load())
	}
	fmt.Printf("PASS batch            : %d bursts (%d items), %d switches, %d injected exhaustions, %d goroutines over %d guards, %d unreclaimed in %v\n",
		bursts.Load(), items.Load(), switches, exhausts.Load(),
		goroutines, threads, tel.Unreclaimed, time.Since(start).Round(time.Millisecond))
	return nil
}

// churnStress hammers the guard runtime: guards = threads, goroutines =
// 8x that, every operation leasing a guard through the public guardless
// API with the debug arena armed. After quiescing, the lease cache is
// flushed and the pool must hold every tid again.
func churnStress(schemeName string, threads int, duration time.Duration,
	keyRange uint64, forceSlow bool, eraFreq int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()

	name := schemeName
	if name == "WFE-slow" {
		name, forceSlow = "WFE", true
	}
	kind, err := wfe.ParseScheme(name)
	if err != nil {
		return err
	}
	capacity := 1 << 20
	if kind == wfe.Leak {
		capacity = 1 << 23
	}
	d, err := wfe.NewDomain[uint64](wfe.Options{
		Scheme:        kind,
		Capacity:      capacity,
		MaxGuards:     threads,
		EraFreq:       eraFreq,
		CleanupFreq:   4,
		ForceSlowPath: forceSlow,
		Debug:         true,
		Trace:         traceFile != "",
	})
	if err != nil {
		return err
	}
	observe("churn/"+schemeName, d.Telemetry)
	st := wfe.NewStack[uint64](d)
	m := wfe.NewMap[uint64](d, 64)

	goroutines := 8 * threads
	var (
		stop atomic.Bool
		ops  atomic.Uint64
		wg   sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*7717 + 3))
			for !stop.Load() {
				key := uint64(rng.Int63n(int64(keyRange)))
				switch rng.Intn(6) {
				case 0:
					st.Push(key)
				case 1:
					st.Pop()
				case 2:
					m.Put(key, key)
				case 3:
					m.Delete(key)
				case 4:
					m.Get(key)
				default: // a short pinned batch mixed into the churn
					g := d.Pin()
					m.InsertGuarded(g, key, key)
					m.DeleteGuarded(g, key)
					d.Unpin(g)
				}
				ops.Add(1)
			}
		}(w)
	}
	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()

	if err := quiesce.Check(d, false); err != nil {
		return err
	}
	if traceFile != "" {
		f, ferr := os.Create(traceFile)
		if ferr != nil {
			return ferr
		}
		if werr := d.WriteTrace(f); werr != nil {
			f.Close()
			return werr
		}
		if cerr := f.Close(); cerr != nil {
			return cerr
		}
		fmt.Printf("trace: wrote %d events to %s\n", len(d.TraceEvents()), traceFile)
	}
	tel := d.Telemetry()
	fmt.Printf("PASS churn    %-8s: %d ops, %d goroutines over %d guards, %d acquires, %d cache hits, %d parks, %d live blocks in %v\n",
		schemeName, ops.Load(), goroutines, threads,
		tel.GuardAcquires, tel.GuardCacheHits, tel.GuardParks, tel.InUse,
		time.Since(start).Round(time.Millisecond))
	return nil
}

// workloadStress storms one promoted public structure through the
// guardless API from 8x more goroutines than guards, with the debug arena
// armed. After the storm the structure is drained and the run asserts the
// lease cache flushes clean, every tid is back in the pool, and — for
// every scheme but the leak baseline — the retired backlog collapses.
func workloadStress(dsName, schemeName string, threads int, duration time.Duration,
	keyRange uint64, forceSlow bool, eraFreq int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()

	name := schemeName
	if name == "WFE-slow" {
		name, forceSlow = "WFE", true
	}
	kind, err := wfe.ParseScheme(name)
	if err != nil {
		return err
	}
	if dsName == "turnqueue" && threads > bench.MaxTurnGuards {
		threads = bench.MaxTurnGuards // the CRTurn claim word's tid capacity
	}
	capacity := 1 << 20
	if kind == wfe.Leak {
		capacity = 1 << 23
	}
	d, err := wfe.NewDomain[uint64](wfe.Options{
		Scheme:        kind,
		Capacity:      capacity,
		MaxGuards:     threads,
		EraFreq:       eraFreq,
		CleanupFreq:   4,
		ForceSlowPath: forceSlow,
		Debug:         true,
	})
	if err != nil {
		return err
	}
	observe(dsName+"/"+schemeName, d.Telemetry)
	p := bench.BuildPublicKV(dsName, d, keyRange)
	isQueue := bench.IsPublicQueue(dsName)

	goroutines := 8 * threads
	var (
		stop        atomic.Bool
		ops         atomic.Uint64
		wg          sync.WaitGroup
		workerPanic atomic.Pointer[string]
		exhausted   atomic.Bool
	)
	start := time.Now()
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				// A worker panic (a debug-arena use-after-free, a guard
				// leak — the failures the storm exists to surface) must
				// become this cell's FAIL, not kill the whole matrix. The
				// one expected panic is the leak baseline filling its
				// fixed arena on a long run: that ends the cell early but
				// passes it.
				if r := recover(); r != nil {
					if bench.LeakExhausted(r, kind) {
						exhausted.Store(true)
					} else {
						msg := fmt.Sprintf("worker panic: %v", r)
						workerPanic.CompareAndSwap(nil, &msg)
					}
					stop.Store(true)
				}
			}()
			rng := rand.New(rand.NewSource(int64(w)*6271 + 5))
			for !stop.Load() {
				key := uint64(rng.Int63n(int64(keyRange)))
				switch {
				case isQueue:
					if rng.Intn(2) == 0 {
						p.Insert(key)
					} else {
						p.Remove(key)
					}
				default:
					switch rng.Intn(4) {
					case 0:
						p.Insert(key)
					case 1:
						p.Remove(key)
					case 2:
						p.Get(key)
					default:
						p.Put(key)
					}
				}
				ops.Add(1)
			}
		}(w)
	}
	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	if msg := workerPanic.Load(); msg != nil {
		return fmt.Errorf("%s", *msg)
	}
	if exhausted.Load() {
		// Nothing left to assert: the drain/settle churn below would only
		// panic again on the full arena.
		fmt.Printf("PASS workload %-10s %-8s: %d ops, arena exhausted (expected for Leak) in %v\n",
			dsName, schemeName, ops.Load(), time.Since(start).Round(time.Millisecond))
		return nil
	}

	// Quiescent drain, then settle every tid's retire list so the final
	// census reflects a completed cleanup scan.
	if isQueue {
		for p.Remove(0) {
		}
	} else {
		for k := uint64(0); k < keyRange; k++ {
			p.Remove(k)
		}
	}
	if n := p.Len(); n != 0 {
		return fmt.Errorf("structure not empty after drain: Len = %d", n)
	}
	quiesce.Settle(d)
	if err := quiesce.Check(d, kind != wfe.Leak); err != nil {
		return err
	}
	tel := d.Telemetry()
	fmt.Printf("PASS workload %-10s %-8s: %d ops, %d goroutines over %d guards, %d acquires, %d parks, %d unreclaimed in %v\n",
		dsName, schemeName, ops.Load(), goroutines, threads,
		tel.GuardAcquires, tel.GuardParks, tel.Unreclaimed,
		time.Since(start).Round(time.Millisecond))
	return nil
}

func stress(dsName, schemeName string, threads int, duration time.Duration,
	keyRange uint64, forceSlow bool, stall, eraFreq int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()

	capacity := 1 << 20
	if schemeName == "Leak" {
		capacity = 1 << 23
	}
	a := mem.New(mem.Config{Capacity: capacity, MaxThreads: threads, Debug: true})
	smr, err := schemes.New(schemeName, a, reclaim.Config{
		MaxThreads:    threads,
		EraFreq:       eraFreq,
		CleanupFreq:   4,
		ForceSlowPath: forceSlow,
	})
	if err != nil {
		return err
	}
	observe(dsName+"/"+schemeName, func() wfe.Telemetry {
		return bench.InternalTelemetry(schemeName, smr, a)
	})

	var kv ds.KV
	switch dsName {
	case "list":
		kv = list.New(smr).KV()
	case "hashmap":
		kv = hashmap.New(smr, 64).KV()
	case "bst":
		kv = bst.New(smr).KV()
	case "kpqueue":
		kv = kpqueue.New(smr, threads).KV()
	case "crturn":
		kv = crturn.New(smr, threads).KV()
	default:
		return fmt.Errorf("unknown data structure %q", dsName)
	}
	isQueue := bench.IsQueue(dsName)

	var (
		stop atomic.Bool
		ops  atomic.Uint64
		wg   sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			if tid < stall && !isQueue {
				// Stalled reader: sit inside one operation the whole run.
				smr.Begin(tid)
				for !stop.Load() {
					time.Sleep(time.Millisecond)
				}
				smr.Clear(tid)
				return
			}
			rng := rand.New(rand.NewSource(int64(tid)*31337 + 1))
			for !stop.Load() {
				key := uint64(rng.Int63n(int64(keyRange)))
				op := rng.Intn(100)
				switch {
				case isQueue: // queues support only insert/delete, kept balanced
					if op < 50 {
						kv.Insert(tid, key)
					} else {
						kv.Delete(tid, key)
					}
				case op < 40:
					kv.Insert(tid, key)
				case op < 80:
					kv.Delete(tid, key)
				case op < 90:
					kv.Get(tid, key)
				default:
					kv.Put(tid, key)
				}
				ops.Add(1)
			}
		}(w)
	}
	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()

	st := a.Stats()
	fmt.Printf("PASS %-8s %-8s: %d ops in %v, %d live blocks, %d unreclaimed, allocs=%d frees=%d\n",
		dsName, schemeName, ops.Load(), time.Since(start).Round(time.Millisecond),
		st.InUse, smr.Unreclaimed(), st.Allocs, st.Frees)
	return nil
}
