// Command wfebench regenerates the paper's evaluation: every figure's
// throughput and unreclaimed-object series (Figures 5–11) plus the
// ablations in DESIGN.md.
//
// Quick sweep of one figure:
//
//	wfebench -figure 7
//
// Everything, with the paper's full parameters (10s × 5 per point):
//
//	wfebench -figure all -paper
//
// Ablations:
//
//	wfebench -ablation attempts|slowpath|erafreq|stall
//
// Guard-runtime overhead (the guardless API's lease cost per acquisition
// path, with the guard-pool telemetry that explains it):
//
//	wfebench -ablation guards
//
// Public-API workloads (the paper's four remaining evaluation structures —
// KP queue, CRTurn queue, hash map, BST — driven guardlessly through the
// generic Domain API across every scheme):
//
//	wfebench -ablation workloads
//
// Sorted-snapshot vs linear cleanup (the PR 4 fast-path overhaul):
//
//	wfebench -ablation scan
//
// Batched operations (MultiPut/MultiDelete widths 1..128 against the
// per-op baseline, per scheme):
//
//	wfebench -ablation batch
//
// Machine-readable trajectory artifact (all figures + the scan ablation;
// -short shrinks every parameter to CI scale):
//
//	wfebench -json -short -out BENCH_4.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"wfe"
	"wfe/internal/bench"
	"wfe/metrics"
)

func main() {
	var (
		figure   = flag.String("figure", "", "figure id (5a,5c,6,7,8,9,10,11 or 'all')")
		ablation = flag.String("ablation", "", "ablation (attempts, slowpath, erafreq, stall, wfeibr, guards, workloads, scan, batch)")
		threads  = flag.String("threads", "", "comma-separated thread counts (default: powers of two up to GOMAXPROCS)")
		duration = flag.Duration("duration", 500*time.Millisecond, "measurement duration per point")
		repeat   = flag.Int("repeat", 1, "repetitions per point (best reported)")
		prefill  = flag.Int("prefill", 50000, "initial elements")
		keyrange = flag.Uint64("keyrange", 100000, "key range")
		erafreq  = flag.Int("erafreq", 150, "era increment frequency ν")
		cleanupf = flag.Int("cleanupfreq", 30, "retire-list scan frequency")
		attempts = flag.Int("attempts", 16, "WFE fast-path attempts")
		paper    = flag.Bool("paper", false, "paper parameters: 10s duration, 5 repetitions")
		short    = flag.Bool("short", false, "CI parameters: ~100ms points, small prefill, two thread counts")
		jsonMode = flag.Bool("json", false, "write the machine-readable trajectory artifact (all figures + scan ablation)")
		out      = flag.String("out", "BENCH_4.json", "output path for -json")
		csv      = flag.Bool("csv", false, "CSV output instead of tables")
		pin      = flag.Bool("pin", false, "pin workers to OS threads (paper methodology)")
		maddr    = flag.String("metrics", "", "serve OpenMetrics/pprof on this address while sweeping (e.g. 127.0.0.1:9100)")
	)
	flag.Parse()

	opt := bench.Options{
		Duration:    *duration,
		Repeat:      *repeat,
		Prefill:     *prefill,
		KeyRange:    *keyrange,
		EraFreq:     *erafreq,
		CleanupFreq: *cleanupf,
		MaxAttempts: *attempts,
		Pin:         *pin,
	}
	if *paper {
		opt.Duration = 10 * time.Second
		opt.Repeat = 5
	}
	if *threads != "" {
		for _, part := range strings.Split(*threads, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fatalf("bad -threads value %q", part)
			}
			opt.Threads = append(opt.Threads, n)
		}
	}
	if *short {
		// Shrink the sweep-scale parameters to CI scale, except where the
		// user passed the flag explicitly.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["duration"] {
			opt.Duration = 0
		}
		if !set["prefill"] {
			opt.Prefill = 0
		}
		if !set["keyrange"] {
			opt.KeyRange = 0
		}
		if !set["repeat"] {
			opt.Repeat = 0
		}
		opt = bench.ShortOptions(opt)
	}

	if *maddr != "" {
		// Each measured run registers its live telemetry under
		// figure/scheme/tN; a scraper polling /metrics (or wfemon -url
		// polling /vars) watches the sweep advance point by point, and
		// /debug/pprof profiles carry the workers' scheme/structure/phase
		// labels.
		reg := metrics.NewRegistry()
		addr, err := metrics.Serve(*maddr, reg)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "wfebench: serving metrics on http://%s/metrics\n", addr)
		opt.Observe = func(label string, tel func() wfe.Telemetry) {
			reg.Register(label, tel)
		}
	}

	if *ablation == "scan" && *threads == "" {
		// Let the scan ablation pick its ≥16-thread end-to-end point even
		// under -short, matching what the -json artifact records.
		opt.Threads = nil
	}

	switch {
	case *jsonMode:
		writeJSONReport(opt, *out)
	case *ablation != "":
		runAblation(*ablation, opt, *csv)
	case *figure != "":
		runFigures(*figure, opt, *csv)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// writeJSONReport measures the full trajectory artifact and writes it to
// path, printing a one-line summary per section so CI logs show progress.
func writeJSONReport(opt bench.Options, path string) {
	rep := bench.BuildReport(opt)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("encoding report: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatalf("writing %s: %v", path, err)
	}
	fmt.Printf("wrote %s: %d figure points, %d scan-ablation points, %d batch-ablation points (%s, %d CPUs)\n",
		path, len(rep.Figures), len(rep.ScanAblation), len(rep.BatchAblation), rep.GoVersion, rep.NumCPU)
	for _, line := range bench.ScanSummary(rep.ScanAblation) {
		fmt.Println("  " + line)
	}
}

func runFigures(figure string, opt bench.Options, csv bool) {
	var exps []bench.Experiment
	if figure == "all" {
		exps = bench.Experiments
	} else {
		exp, err := bench.FindExperiment(figure)
		if err != nil {
			fatalf("%v", err)
		}
		exps = []bench.Experiment{exp}
	}
	if csv {
		fmt.Println("figure,ds,workload,scheme,threads,mops,unreclaimed,slowpaths,exhausted")
	}
	for _, exp := range exps {
		results := bench.Run(exp, opt)
		if csv {
			for _, r := range results {
				fmt.Printf("%s,%s,%s,%s,%d,%.4f,%.1f,%d,%v\n",
					r.Figure, r.DS, r.Workload, r.Scheme, r.Threads,
					r.Mops, r.Unreclaimed, r.SlowPaths, r.Exhausted)
			}
			continue
		}
		printFigure(exp, results)
	}
}

// printFigure renders both panels of one paper figure: throughput and
// unreclaimed objects, rows by thread count and columns by scheme.
func printFigure(exp bench.Experiment, results []bench.Result) {
	fmt.Printf("\n=== Figure %s: %s ===\n", exp.ID, exp.Title)

	threadSet := map[int]bool{}
	for _, r := range results {
		threadSet[r.Threads] = true
	}
	var threads []int
	for t := range threadSet {
		threads = append(threads, t)
	}
	sort.Ints(threads)

	byKey := map[string]bench.Result{}
	for _, r := range results {
		byKey[fmt.Sprintf("%s/%d", r.Scheme, r.Threads)] = r
	}

	printPanel := func(title string, value func(bench.Result) string, schemes []string) {
		fmt.Printf("\n%s\n", title)
		fmt.Printf("%8s", "threads")
		for _, s := range schemes {
			fmt.Printf("%12s", s)
		}
		fmt.Println()
		for _, t := range threads {
			fmt.Printf("%8d", t)
			for _, s := range schemes {
				r, ok := byKey[fmt.Sprintf("%s/%d", s, t)]
				if !ok {
					fmt.Printf("%12s", "-")
					continue
				}
				fmt.Printf("%12s", value(r))
			}
			fmt.Println()
		}
	}

	printPanel("Throughput (Mops/s)", func(r bench.Result) string {
		s := fmt.Sprintf("%.3f", r.Mops)
		if r.Exhausted {
			s += "*"
		}
		return s
	}, exp.Schemes)

	// The paper excludes the leak baseline from unreclaimed plots.
	var noLeak []string
	for _, s := range exp.Schemes {
		if s != "Leak" {
			noLeak = append(noLeak, s)
		}
	}
	printPanel("Unreclaimed objects (mean)", func(r bench.Result) string {
		return fmt.Sprintf("%.0f", r.Unreclaimed)
	}, noLeak)
}

func runAblation(name string, opt bench.Options, csv bool) {
	if name == "guards" {
		runGuardOverhead(opt, csv)
		return
	}
	if name == "workloads" {
		runWorkloads(opt, csv)
		return
	}
	if name == "scan" {
		runScan(opt, csv)
		return
	}
	if name == "batch" {
		runBatch(opt, csv)
		return
	}
	var results []bench.AblationResult
	switch name {
	case "attempts":
		results = bench.AblationAttempts(opt)
	case "slowpath":
		results = bench.AblationSlowPath(opt)
	case "erafreq":
		results = bench.AblationEraFreq(opt)
	case "stall":
		results = bench.AblationStall(opt)
	case "wfeibr":
		results = bench.AblationWaitFreeIBR(opt)
	default:
		fatalf("unknown ablation %q (want attempts, slowpath, erafreq, stall, wfeibr, guards, workloads, scan, batch)", name)
	}
	if csv {
		fmt.Println("ablation,param,scheme,ds,threads,mops,slow_per_mop,unreclaimed")
		for _, r := range results {
			fmt.Printf("%s,%s,%s,%s,%d,%.4f,%.2f,%.1f\n",
				r.Ablation, r.Param, r.Scheme, r.DS, r.Threads,
				r.Mops, r.SlowPerMop, r.Unreclaimed)
		}
		return
	}
	fmt.Printf("\n=== Ablation: %s ===\n", name)
	fmt.Printf("%-18s%-10s%-10s%8s%12s%16s%14s\n",
		"param", "scheme", "ds", "threads", "Mops/s", "slow/Mop", "unreclaimed")
	for _, r := range results {
		fmt.Printf("%-18s%-10s%-10s%8d%12.3f%16.2f%14.1f\n",
			r.Param, r.Scheme, r.DS, r.Threads, r.Mops, r.SlowPerMop, r.Unreclaimed)
	}
}

// runScan renders the sorted-vs-linear cleanup ablation: one row per
// figure × scheme × mode with the cleanup cost per retired block, then
// the paired comparison summary.
func runScan(opt bench.Options, csv bool) {
	results := bench.AblationScan(opt)
	if csv {
		fmt.Println("figure,ds,workload,scheme,mode,adaptive_linear,threads,mops,scan_scans,scan_blocks,scan_ns_per_block,unreclaimed")
		for _, r := range results {
			fmt.Printf("%s,%s,%s,%s,%s,%v,%d,%.4f,%d,%d,%.2f,%.1f\n",
				r.Figure, r.DS, r.Workload, r.Scheme, r.Mode, r.AdaptiveLinear, r.Threads,
				r.Mops, r.Scans, r.ScanBlocks, r.NsPerBlock, r.Unreclaimed)
		}
		return
	}
	fmt.Printf("\n=== Ablation: scan (sorted-snapshot cleanup vs linear reference) ===\n")
	fmt.Printf("%-8s%-10s%-10s%-10s%8s%12s%10s%12s%14s%14s\n",
		"figure", "workload", "scheme", "mode", "threads", "Mops/s", "scans", "blocks", "ns/block", "unreclaimed")
	for _, r := range results {
		mode := r.Mode
		if r.AdaptiveLinear {
			mode += "*"
		}
		fmt.Printf("%-8s%-10s%-10s%-10s%8d%12.3f%10d%12d%14.1f%14.1f\n",
			r.Figure, r.Workload, r.Scheme, mode, r.Threads,
			r.Mops, r.Scans, r.ScanBlocks, r.NsPerBlock, r.Unreclaimed)
	}
	fmt.Println()
	for _, line := range bench.ScanSummary(results) {
		fmt.Println(line)
	}
	fmt.Println("\nns/block is cleanup time per examined retired block: the linear mode")
	fmt.Println("re-sweeps all G gathered reservations per block (O(R×G)); the sorted")
	fmt.Println("mode binary-searches a once-sorted snapshot (O((R+G)·log G)).")
	fmt.Println("sorted* = gathered set below the runtime's calibrated sort cutoff")
	fmt.Println("(reclaim.Calibrate), so the sorted arm adaptively ran the linear")
	fmt.Println("sweep (the pair compares nothing).")
}

// runBatch renders the batched-operations ablation: per-op baseline vs
// MultiPut/MultiDelete at each batch width, per scheme and goroutine
// count, with the speedup factor and the batch lease-cache hit rate.
func runBatch(opt bench.Options, csv bool) {
	results := bench.AblationBatch(opt)
	if csv {
		fmt.Println("scheme,goroutines,batch_size,mops,speedup,batch_lease_hit_rate,exhausted")
		for _, r := range results {
			fmt.Printf("%s,%d,%d,%.4f,%.3f,%.3f,%v\n",
				r.Scheme, r.Goroutines, r.BatchSize, r.Mops, r.Speedup,
				r.BatchLeaseHitRate, r.Exhausted)
		}
		return
	}
	fmt.Printf("\n=== Ablation: batch (hash map, 50%% put / 50%% delete, guardless) ===\n")
	fmt.Printf("%-10s%12s%8s%12s%10s%12s\n",
		"scheme", "goroutines", "batch", "Mops/s", "speedup", "lease-hit")
	for _, r := range results {
		batch := "per-op"
		if r.BatchSize > 0 {
			batch = strconv.Itoa(r.BatchSize)
		}
		mops := fmt.Sprintf("%.3f", r.Mops)
		if r.Exhausted {
			mops += "*"
		}
		fmt.Printf("%-10s%12d%8s%12s%9.2fx%12.2f\n",
			r.Scheme, r.Goroutines, batch, mops, r.Speedup, r.BatchLeaseHitRate)
	}
	fmt.Println("\nspeedup is against the per-op row of the same scheme/goroutines:")
	fmt.Println("one lease, one protection span (era/epoch/interval schemes; HP still")
	fmt.Println("rotates hazards per item) and one retire burst per batch. batch=1")
	fmt.Println("measures the batch path's fixed overhead and should sit near 1.0x.")
}

// runGuardOverhead renders the guard-runtime experiment: throughput per
// acquisition path plus the guard-pool counters (acquisitions, lease-cache
// hits/misses, park events) from the Domain's Telemetry.
func runGuardOverhead(opt bench.Options, csv bool) {
	results := bench.GuardOverhead(opt)
	if csv {
		fmt.Println("mode,goroutines,guards,mops,acquires,cache_hits,cache_misses,parks")
		for _, r := range results {
			t := r.Telemetry
			fmt.Printf("%s,%d,%d,%.4f,%d,%d,%d,%d\n",
				r.Mode, r.Goroutines, r.Guards, r.Mops,
				t.GuardAcquires, t.GuardCacheHits, t.GuardCacheMisses, t.GuardParks)
		}
		return
	}
	fmt.Printf("\n=== Guard runtime overhead (WFE, stack push/pop) ===\n")
	fmt.Printf("%-16s%12s%8s%12s%12s%12s%12s%8s\n",
		"mode", "goroutines", "guards", "Mops/s", "acquires", "hits", "misses", "parks")
	for _, r := range results {
		t := r.Telemetry
		fmt.Printf("%-16s%12d%8d%12.3f%12d%12d%12d%8d\n",
			r.Mode, r.Goroutines, r.Guards, r.Mops,
			t.GuardAcquires, t.GuardCacheHits, t.GuardCacheMisses, t.GuardParks)
	}
	fmt.Println("\npinned leases once per worker; guardless leases per operation (cache")
	fmt.Println("hits); guardless-8x oversubscribes goroutines 8:1 over guards (parks);")
	fmt.Println("acquire-per-op bypasses the lease cache — the cost caching removes.")
}

// runWorkloads renders the public-API workloads experiment: the paper's
// four remaining evaluation structures (KP queue, CRTurn queue, hash map,
// BST) driven guardlessly through Domain[T] across every scheme —
// Figures 5 and 8 end to end on the public API, with the guard-runtime
// telemetry that the internal-harness figures cannot show.
func runWorkloads(opt bench.Options, csv bool) {
	results := bench.Workloads(opt)
	if csv {
		fmt.Println("figure,ds,scheme,goroutines,mops,unreclaimed,exhausted,acquires,cache_hits,parks")
		for _, r := range results {
			t := r.Telemetry
			fmt.Printf("%s,%s,%s,%d,%.4f,%.1f,%v,%d,%d,%d\n",
				r.Figure, r.DS, r.Scheme, r.Goroutines, r.Mops, r.Unreclaimed,
				r.Exhausted, t.GuardAcquires, t.GuardCacheHits, t.GuardParks)
		}
		return
	}
	fmt.Printf("\n=== Public-API workloads (guardless; write-heavy mix) ===\n")
	fmt.Printf("%-12s%-10s%-10s%8s%12s%14s\n",
		"figure", "ds", "scheme", "gor", "Mops/s", "unreclaimed")
	for _, r := range results {
		fmt.Println(r.WorkloadString())
	}
	fmt.Println("\n* = arena exhausted mid-run (expected for Leak on long runs).")
	fmt.Println("The unreclaimed column excludes nothing: the Leak rows show the")
	fmt.Println("baseline's unbounded growth the reclaiming schemes avoid.")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wfebench: "+format+"\n", args...)
	os.Exit(1)
}
