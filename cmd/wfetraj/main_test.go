package main

import (
	"strings"
	"testing"

	"wfe/internal/bench"
)

func point(fig, scheme string, threads int, mops float64) bench.Result {
	return bench.Result{Figure: fig, Scheme: scheme, Threads: threads, Mops: mops}
}

func TestCompareClassifiesDeltas(t *testing.T) {
	base := bench.Report{Figures: []bench.Result{
		point("7", "WFE", 2, 1.0),
		point("7", "HE", 2, 1.0),
		point("7", "EBR", 2, 1.0),
		point("7", "HP", 4, 1.0), // only in base
	}}
	cur := bench.Report{Figures: []bench.Result{
		point("7", "WFE", 2, 0.80),  // -20%: regression
		point("7", "HE", 2, 1.25),   // +25%: improvement
		point("7", "EBR", 2, 1.05),  // +5%: inside the band
		point("10", "WFE", 2, 2.00), // only in new
	}}
	cmp := compare(base, cur, 10)
	if cmp.compared != 3 {
		t.Fatalf("compared = %d, want 3", cmp.compared)
	}
	if cmp.regressions != 1 || cmp.improvements != 1 {
		t.Fatalf("regressions/improvements = %d/%d, want 1/1", cmp.regressions, cmp.improvements)
	}
	if cmp.onlyBase != 1 || cmp.onlyNew != 1 {
		t.Fatalf("onlyBase/onlyNew = %d/%d, want 1/1", cmp.onlyBase, cmp.onlyNew)
	}
	var regLine string
	for _, l := range cmp.lines {
		if strings.Contains(l.text, "REGRESSION") {
			regLine = l.text
		}
	}
	if !strings.Contains(regLine, "WFE") || !strings.Contains(regLine, "-20.0%") {
		t.Fatalf("regression line wrong: %q", regLine)
	}
	// Coverage changes must survive the -flagged filter: a point that
	// appeared or vanished is never noise.
	for _, l := range cmp.lines {
		if strings.Contains(l.text, "only in") && !l.outside {
			t.Fatalf("only-in row not marked outside the band: %q", l.text)
		}
	}
}

func TestCompareNoiseBandBoundary(t *testing.T) {
	base := bench.Report{Figures: []bench.Result{point("6", "HP", 1, 1.0)}}
	cur := bench.Report{Figures: []bench.Result{point("6", "HP", 1, 0.905)}}
	cmp := compare(base, cur, 10) // -9.5% sits inside ±10%
	if cmp.regressions != 0 {
		t.Fatalf("inside-band delta flagged as regression")
	}
	cmp = compare(base, cur, 5) // and outside ±5%
	if cmp.regressions != 1 {
		t.Fatalf("outside-band delta not flagged")
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	// A zero-Mops baseline point (an exhausted Leak run, say) must not
	// divide by zero or flag anything.
	base := bench.Report{Figures: []bench.Result{point("5a", "Leak", 2, 0)}}
	cur := bench.Report{Figures: []bench.Result{point("5a", "Leak", 2, 3)}}
	cmp := compare(base, cur, 10)
	if cmp.compared != 1 || cmp.regressions != 0 || cmp.improvements != 0 {
		t.Fatalf("zero baseline mishandled: %+v", cmp)
	}
}
