// Command wfetraj compares two BENCH_*.json trajectory artifacts (schema
// wfe-bench/v1, written by cmd/wfebench -json) point by point: results are
// joined on the (figure, scheme, threads) key and throughput deltas beyond
// a configurable noise band are flagged as regressions or improvements.
//
// Usage:
//
//	wfetraj -base BENCH_BASELINE.json -new BENCH_10.json [-noise 10] [-flagged] [-strict]
//
// The default run is informational: every compared point is printed with
// its delta and the exit status is 0 regardless of what moved (CI runs it
// this way on every push, diffing the fresh artifact against the committed
// baseline). With -strict the exit status is 1 when any regression exceeds
// the noise band — the gate for release branches and for refreshing the
// baseline deliberately. Points present in only one artifact (a different
// thread sweep, a new figure) are reported but never fail the run.
//
// Absolute numbers from different hosts are not comparable; the artifact's
// host metadata is printed so a cross-host diff is at least visibly one.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"wfe/internal/bench"
)

func main() {
	var (
		basePath = flag.String("base", "", "baseline BENCH_*.json artifact (required)")
		newPath  = flag.String("new", "", "candidate BENCH_*.json artifact (required)")
		noise    = flag.Float64("noise", 10, "noise band in percent: |delta| within it is neither regression nor improvement")
		flagged  = flag.Bool("flagged", false, "print only points outside the noise band (coverage changes always print)")
		strict   = flag.Bool("strict", false, "exit 1 when any regression exceeds the noise band")
	)
	flag.Parse()
	if *basePath == "" || *newPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	base, err := loadReport(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wfetraj: %v\n", err)
		os.Exit(2)
	}
	cur, err := loadReport(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wfetraj: %v\n", err)
		os.Exit(2)
	}

	fmt.Printf("base %s  (%s)\nnew  %s  (%s)\n\n", *basePath, hostLine(base), *newPath, hostLine(cur))
	cmp := compare(base, cur, *noise)
	for _, l := range cmp.lines {
		if *flagged && !l.outside {
			continue
		}
		fmt.Println(l.text)
	}
	fmt.Printf("\n%d compared: %d regressions, %d improvements, %d within ±%.0f%% noise; %d only in base, %d only in new\n",
		cmp.compared, cmp.regressions, cmp.improvements, cmp.compared-cmp.regressions-cmp.improvements,
		*noise, cmp.onlyBase, cmp.onlyNew)
	if *strict && cmp.regressions > 0 {
		os.Exit(1)
	}
}

func loadReport(path string) (bench.Report, error) {
	var rep bench.Report
	raw, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		return rep, fmt.Errorf("%s: %v", path, err)
	}
	if rep.Schema != bench.ReportSchema {
		return rep, fmt.Errorf("%s: schema %q, this tool understands %q", path, rep.Schema, bench.ReportSchema)
	}
	return rep, nil
}

func hostLine(r bench.Report) string {
	return fmt.Sprintf("%s %s/%s %dcpu, %dms x%d, prefill %d",
		r.GoVersion, r.GOOS, r.GOARCH, r.NumCPU, r.DurationMS, r.Repeat, r.Prefill)
}

// key joins results across artifacts: one measured point per figure,
// scheme and thread count.
type key struct {
	figure, scheme string
	threads        int
}

type line struct {
	text    string
	outside bool
}

type comparison struct {
	compared, regressions, improvements int
	onlyBase, onlyNew                   int
	lines                               []line
}

// compare joins the two artifacts' figure sweeps and classifies every
// shared point's throughput delta against the noise band (in percent).
// Unreclaimed-backlog movement is printed alongside but never classified:
// it is workload-dependent and the conformance suite guards its bounds.
func compare(base, cur bench.Report, noise float64) comparison {
	baseByKey := map[key]bench.Result{}
	for _, r := range base.Figures {
		baseByKey[key{r.Figure, r.Scheme, r.Threads}] = r
	}
	var out comparison
	seen := map[key]bool{}
	for _, r := range cur.Figures {
		k := key{r.Figure, r.Scheme, r.Threads}
		seen[k] = true
		b, ok := baseByKey[k]
		if !ok {
			out.onlyNew++
			out.lines = append(out.lines, line{
				text:    fmt.Sprintf("fig %-3s %-8s %3dt  %24s -> %7.3f Mops/s   (only in new)", k.figure, k.scheme, k.threads, "", r.Mops),
				outside: true, // coverage changes always surface, even under -flagged
			})
			continue
		}
		out.compared++
		delta := 0.0
		if b.Mops > 0 {
			delta = (r.Mops/b.Mops - 1) * 100
		}
		verdict := "ok"
		outside := false
		switch {
		case delta < -noise:
			verdict = "REGRESSION"
			outside = true
			out.regressions++
		case delta > noise:
			verdict = "improvement"
			outside = true
			out.improvements++
		}
		out.lines = append(out.lines, line{
			text: fmt.Sprintf("fig %-3s %-8s %3dt  %7.3f -> %7.3f Mops/s  %+6.1f%%  %-11s  unreclaimed %.0f -> %.0f",
				k.figure, k.scheme, k.threads, b.Mops, r.Mops, delta, verdict, b.Unreclaimed, r.Unreclaimed),
			outside: outside,
		})
	}
	for k := range baseByKey {
		if !seen[k] {
			out.onlyBase++
			out.lines = append(out.lines, line{
				text:    fmt.Sprintf("fig %-3s %-8s %3dt  %7.3f Mops/s ->                  (only in base)", k.figure, k.scheme, k.threads, baseByKey[k].Mops),
				outside: true, // a point that vanished from the sweep is never noise
			})
		}
	}
	compareBatch(base, cur, noise, &out)
	sort.Slice(out.lines, func(i, j int) bool { return out.lines[i].text < out.lines[j].text })
	return out
}

// compareBatch joins the optional batch-ablation sections on the
// (scheme, goroutines, batch size) key. Artifacts predating the batch
// APIs simply have no rows, so nothing is compared or reported missing
// for them.
func compareBatch(base, cur bench.Report, noise float64, out *comparison) {
	type bkey struct {
		scheme          string
		threads, bwidth int
	}
	baseByKey := map[bkey]bench.BatchResult{}
	for _, r := range base.BatchAblation {
		baseByKey[bkey{r.Scheme, r.Goroutines, r.BatchSize}] = r
	}
	seen := map[bkey]bool{}
	for _, r := range cur.BatchAblation {
		k := bkey{r.Scheme, r.Goroutines, r.BatchSize}
		seen[k] = true
		b, ok := baseByKey[k]
		if !ok {
			if len(base.BatchAblation) > 0 {
				out.onlyNew++
				out.lines = append(out.lines, line{
					text:    fmt.Sprintf("batch b%-4d %-8s %3dt  %24s -> %7.3f Mops/s   (only in new)", k.bwidth, k.scheme, k.threads, "", r.Mops),
					outside: true,
				})
			}
			continue
		}
		out.compared++
		delta := 0.0
		if b.Mops > 0 {
			delta = (r.Mops/b.Mops - 1) * 100
		}
		verdict := "ok"
		outside := false
		switch {
		case delta < -noise:
			verdict = "REGRESSION"
			outside = true
			out.regressions++
		case delta > noise:
			verdict = "improvement"
			outside = true
			out.improvements++
		}
		out.lines = append(out.lines, line{
			text: fmt.Sprintf("batch b%-4d %-8s %3dt  %7.3f -> %7.3f Mops/s  %+6.1f%%  %-11s  speedup %.2fx -> %.2fx",
				k.bwidth, k.scheme, k.threads, b.Mops, r.Mops, delta, verdict, b.Speedup, r.Speedup),
			outside: outside,
		})
	}
	for k, b := range baseByKey {
		if !seen[k] {
			out.onlyBase++
			out.lines = append(out.lines, line{
				text:    fmt.Sprintf("batch b%-4d %-8s %3dt  %7.3f Mops/s ->                  (only in base)", k.bwidth, k.scheme, k.threads, b.Mops),
				outside: true,
			})
		}
	}
}
