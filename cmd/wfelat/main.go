// Command wfelat measures per-operation latency distributions — the metric
// the paper's introduction motivates wait-freedom with ("latency-sensitive
// applications where execution time of all operations must be bounded").
//
// It runs the lock-free Michael–Scott queue against the two wait-free
// queues (Kogan–Petrank, CRTurn) under a chosen reclamation scheme and
// prints the latency percentiles of enqueue+dequeue pairs. The lock-free
// queue typically wins on median; the wait-free queues and WFE exist for
// the tail columns.
//
//	wfelat -scheme WFE -workers 8 -duration 3s
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wfe/internal/ds/crturn"
	"wfe/internal/ds/kpqueue"
	"wfe/internal/ds/msqueue"
	"wfe/internal/mem"
	"wfe/internal/reclaim"
	"wfe/internal/schemes"
)

type queue interface {
	Enqueue(tid int, v uint64)
	Dequeue(tid int) (uint64, bool)
}

func main() {
	var (
		schemeName = flag.String("scheme", "WFE", "reclamation scheme")
		workers    = flag.Int("workers", 8, "worker goroutines")
		duration   = flag.Duration("duration", 2*time.Second, "measurement time per queue")
	)
	flag.Parse()

	fmt.Printf("%-10s %-9s %10s %10s %10s %10s %12s %12s\n",
		"queue", "progress", "p50", "p99", "p99.9", "p99.99", "max", "pairs/s")
	for _, q := range []struct {
		name     string
		progress string
		build    func(smr reclaim.Scheme, threads int) queue
	}{
		{"MS", "lock-free", func(smr reclaim.Scheme, threads int) queue { return msqueue.New(smr) }},
		{"KP", "wait-free", func(smr reclaim.Scheme, threads int) queue { return kpqueue.New(smr, threads) }},
		{"CRTurn", "wait-free", func(smr reclaim.Scheme, threads int) queue { return crturn.New(smr, threads) }},
	} {
		lat, rate := measure(*schemeName, *workers, *duration, q.build)
		fmt.Printf("%-10s %-9s %10s %10s %10s %10s %12s %12.0f\n",
			q.name, q.progress,
			pct(lat, 50), pct(lat, 99), pct(lat, 99.9), pct(lat, 99.99),
			lat[len(lat)-1], rate)
	}
}

func measure(schemeName string, workers int, duration time.Duration,
	build func(reclaim.Scheme, int) queue) ([]time.Duration, float64) {
	arena := mem.New(mem.Config{Capacity: 1 << 20, MaxThreads: workers, Debug: false})
	smr, err := schemes.New(schemeName, arena, reclaim.Config{MaxThreads: workers})
	if err != nil {
		fmt.Fprintln(os.Stderr, "wfelat:", err)
		os.Exit(1)
	}
	q := build(smr, workers)
	for i := uint64(0); i < 1024; i++ { // small standing population
		q.Enqueue(0, i)
	}

	var stop atomic.Bool
	perWorker := make([][]time.Duration, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			lats := make([]time.Duration, 0, 1<<20)
			for !stop.Load() {
				t0 := time.Now()
				q.Enqueue(tid, uint64(tid))
				q.Dequeue(tid)
				lats = append(lats, time.Since(t0))
				if len(lats)&255 == 0 && time.Since(start) > duration {
					stop.Store(true)
				}
			}
			perWorker[tid] = lats
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range perWorker {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all, float64(len(all)) / elapsed.Seconds()
}

func pct(sorted []time.Duration, p float64) time.Duration {
	idx := int(float64(len(sorted)-1) * p / 100)
	return sorted[idx]
}
