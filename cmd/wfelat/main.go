// Command wfelat measures per-operation latency distributions — the metric
// the paper's introduction motivates wait-freedom with ("latency-sensitive
// applications where execution time of all operations must be bounded").
//
// It runs the lock-free Michael–Scott queue against the two wait-free
// queues (Kogan–Petrank, CRTurn) under a chosen reclamation scheme —
// through the public Domain/Guard API, the same path applications take —
// and prints the latency percentiles of enqueue+dequeue pairs. The
// lock-free queue typically wins on median; the wait-free queues and WFE
// exist for the tail columns.
//
//	wfelat -scheme WFE -workers 8 -duration 3s
//	wfelat -scheme WFE -json > lat.json       # wfe-lat/v1 artifact
//	wfelat -metrics 127.0.0.1:9100            # live OpenMetrics while it runs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wfe"
	"wfe/metrics"
)

// Schema identifies a wfelat JSON artifact.
const Schema = "wfe-lat/v1"

// Report is the top-level wfe-lat/v1 artifact: one Point per queue.
type Report struct {
	Schema    string  `json:"schema"`
	GoVersion string  `json:"go_version"`
	GOOS      string  `json:"goos"`
	GOARCH    string  `json:"goarch"`
	NumCPU    int     `json:"num_cpu"`
	Scheme    string  `json:"scheme"`
	Workers   int     `json:"workers"`
	Duration  string  `json:"duration"`
	Points    []Point `json:"points"`
}

// Point is one queue's measured latency distribution.
type Point struct {
	Queue    string  `json:"queue"`    // MS | KP | CRTurn
	Progress string  `json:"progress"` // lock-free | wait-free
	Scheme   string  `json:"scheme"`
	Workers  int     `json:"workers"`
	Pairs    int     `json:"pairs"`       // enqueue+dequeue pairs measured
	PairsSec float64 `json:"pairs_per_s"` // throughput
	P50NS    int64   `json:"p50_ns"`
	P90NS    int64   `json:"p90_ns"`
	P99NS    int64   `json:"p99_ns"`
	P999NS   int64   `json:"p999_ns"`
	P9999NS  int64   `json:"p9999_ns"`
	MaxNS    int64   `json:"max_ns"`
}

// pairQueue is the common surface of the three public queues under test,
// bound to a pre-acquired guard so the measured pair excludes lease cost.
type pairQueue interface {
	enqueue(g *wfe.Guard[uint64], v uint64)
	dequeue(g *wfe.Guard[uint64]) (uint64, bool)
}

type msQ struct{ q *wfe.Queue[uint64] }

func (m msQ) enqueue(g *wfe.Guard[uint64], v uint64)      { m.q.EnqueueGuarded(g, v) }
func (m msQ) dequeue(g *wfe.Guard[uint64]) (uint64, bool) { return m.q.DequeueGuarded(g) }

type kpQ struct{ q *wfe.WFQueue[uint64] }

func (k kpQ) enqueue(g *wfe.Guard[uint64], v uint64)      { k.q.EnqueueGuarded(g, v) }
func (k kpQ) dequeue(g *wfe.Guard[uint64]) (uint64, bool) { return k.q.DequeueGuarded(g) }

type turnQ struct{ q *wfe.TurnQueue[uint64] }

func (t turnQ) enqueue(g *wfe.Guard[uint64], v uint64)      { t.q.EnqueueGuarded(g, v) }
func (t turnQ) dequeue(g *wfe.Guard[uint64]) (uint64, bool) { return t.q.DequeueGuarded(g) }

func main() {
	var (
		schemeName  = flag.String("scheme", "WFE", "reclamation scheme")
		workers     = flag.Int("workers", 8, "worker goroutines")
		duration    = flag.Duration("duration", 2*time.Second, "measurement time per queue")
		jsonOut     = flag.Bool("json", false, "emit a "+Schema+" JSON report on stdout instead of the table")
		metricsAddr = flag.String("metrics", "", "serve OpenMetrics/pprof on this address while measuring (e.g. 127.0.0.1:9100)")
	)
	flag.Parse()
	kind, err := wfe.ParseScheme(*schemeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wfelat:", err)
		os.Exit(2)
	}

	reg := metrics.NewRegistry()
	if *metricsAddr != "" {
		addr, err := metrics.Serve(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wfelat:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "wfelat: serving metrics on http://%s/metrics\n", addr)
	}

	rep := Report{
		Schema:    Schema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Scheme:    kind.String(),
		Workers:   *workers,
		Duration:  duration.String(),
	}

	if !*jsonOut {
		fmt.Printf("%-10s %-9s %10s %10s %10s %10s %12s %12s\n",
			"queue", "progress", "p50", "p99", "p99.9", "p99.99", "max", "pairs/s")
	}
	for _, q := range []struct {
		name     string
		progress string
		build    func(d *wfe.Domain[uint64]) pairQueue
	}{
		{"MS", "lock-free", func(d *wfe.Domain[uint64]) pairQueue { return msQ{wfe.NewQueue[uint64](d)} }},
		{"KP", "wait-free", func(d *wfe.Domain[uint64]) pairQueue { return kpQ{wfe.NewWFQueue[uint64](d)} }},
		{"CRTurn", "wait-free", func(d *wfe.Domain[uint64]) pairQueue { return turnQ{wfe.NewTurnQueue[uint64](d)} }},
	} {
		pt, err := measure(kind, q.name, q.progress, *workers, *duration, q.build, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wfelat:", err)
			os.Exit(1)
		}
		rep.Points = append(rep.Points, pt)
		if !*jsonOut {
			fmt.Printf("%-10s %-9s %10s %10s %10s %10s %12s %12.0f\n",
				pt.Queue, pt.Progress,
				time.Duration(pt.P50NS), time.Duration(pt.P99NS),
				time.Duration(pt.P999NS), time.Duration(pt.P9999NS),
				time.Duration(pt.MaxNS), pt.PairsSec)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "wfelat:", err)
			os.Exit(1)
		}
	}
}

func measure(kind wfe.SchemeKind, name, progress string, workers int, duration time.Duration,
	build func(*wfe.Domain[uint64]) pairQueue, reg *metrics.Registry) (Point, error) {
	d, err := wfe.NewDomain[uint64](wfe.Options{
		Scheme:    kind,
		Capacity:  1 << 20,
		MaxGuards: workers,
	})
	if err != nil {
		return Point{}, err
	}
	reg.Register(name, d.Telemetry)
	defer reg.Unregister(name)
	q := build(d)

	// A small standing population so dequeues rarely hit empty.
	seedG := d.Guard()
	for i := uint64(0); i < 1024; i++ {
		q.enqueue(seedG, i)
	}
	seedG.Release()

	var stop atomic.Bool
	perWorker := make([][]time.Duration, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			g := d.Guard()
			defer g.Release()
			lats := make([]time.Duration, 0, 1<<20)
			for !stop.Load() {
				t0 := time.Now()
				q.enqueue(g, uint64(id))
				q.dequeue(g)
				lats = append(lats, time.Since(t0))
				if len(lats)&255 == 0 && time.Since(start) > duration {
					stop.Store(true)
				}
			}
			perWorker[id] = lats
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range perWorker {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) int64 {
		return int64(all[int(float64(len(all)-1)*p/100)])
	}
	return Point{
		Queue:    name,
		Progress: progress,
		Scheme:   kind.String(),
		Workers:  workers,
		Pairs:    len(all),
		PairsSec: float64(len(all)) / elapsed.Seconds(),
		P50NS:    pct(50),
		P90NS:    pct(90),
		P99NS:    pct(99),
		P999NS:   pct(99.9),
		P9999NS:  pct(99.99),
		MaxNS:    int64(all[len(all)-1]),
	}, nil
}
