// Command wfeadvise reads a recorded telemetry artifact and prints the
// reclamation scheme the advisor kernel recommends for the schedule it
// shows, with the evidence. It understands both artifact schemas this
// repository produces:
//
//   - wfe-chaos/v1 (cmd/wfestress -chaos -chaosdir): one scheme's
//     trajectory under an injected schedule — advised via the stall/spike/
//     park signature analysis (advisor.Advise);
//   - wfe-bench/v1 (cmd/wfebench -json): a measured cross-scheme sweep —
//     advised by picking the fastest scheme whose backlog stayed bounded
//     per figure×threads group (advisor.AdviseSweep).
//
// Usage:
//
//	wfeadvise trajectory.json
//	wfeadvise BENCH_BASELINE.json
//	wfeadvise -json chaos-out/stalled-reader-EBR.json
//
// Exit status: 0 on a recommendation, 2 on a usage, IO or schema error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"wfe/advisor"
	"wfe/internal/bench"
	"wfe/internal/chaos"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit the full Recommendation as JSON instead of prose")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: wfeadvise [-json] <artifact.json>\n")
		fmt.Fprintf(os.Stderr, "artifact schemas: %s, %s\n", chaos.Schema, bench.ReportSchema)
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	rec, source, err := advise(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "wfeadvise: %v\n", err)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rec); err != nil {
			fmt.Fprintf(os.Stderr, "wfeadvise: %v\n", err)
			os.Exit(2)
		}
		return
	}
	fmt.Printf("recommendation: %s  (%s)\n", rec.Scheme, source)
	for _, r := range rec.Reasons {
		fmt.Printf("  - %s\n", r)
	}
}

// advise loads the artifact, dispatches on its schema field, and returns
// the recommendation plus a one-line description of what was analyzed.
func advise(path string) (advisor.Recommendation, string, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return advisor.Recommendation{}, "", err
	}
	var head struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(blob, &head); err != nil {
		return advisor.Recommendation{}, "", fmt.Errorf("%s: %w", path, err)
	}
	switch head.Schema {
	case chaos.Schema:
		var tr chaos.Trajectory
		if err := json.Unmarshal(blob, &tr); err != nil {
			return advisor.Recommendation{}, "", fmt.Errorf("%s: %w", path, err)
		}
		source := fmt.Sprintf("from %d-tick %s trajectory of scenario %q", len(tr.Ticks), tr.Scheme, tr.Scenario)
		return advisor.Advise(tr.Samples()), source, nil
	case bench.ReportSchema:
		var rep bench.Report
		if err := json.Unmarshal(blob, &rep); err != nil {
			return advisor.Recommendation{}, "", fmt.Errorf("%s: %w", path, err)
		}
		points := make([]advisor.SweepPoint, len(rep.Figures))
		for i, r := range rep.Figures {
			points[i] = advisor.SweepPoint{
				Figure:         r.Figure,
				Scheme:         r.Scheme,
				Threads:        r.Threads,
				Mops:           r.Mops,
				UnreclaimedMax: r.UnreclaimedMax,
			}
		}
		source := fmt.Sprintf("from measured sweep of %d points", len(points))
		return advisor.AdviseSweep(points), source, nil
	case "":
		return advisor.Recommendation{}, "", fmt.Errorf("%s: no schema field; not a wfe artifact", path)
	default:
		return advisor.Recommendation{}, "", fmt.Errorf("%s: unsupported schema %q (want %s or %s)",
			path, head.Schema, chaos.Schema, bench.ReportSchema)
	}
}
