// Command wfemon is the live monitor of wfe's observability runtime: it
// watches a running process's metrics endpoint — or replays a recorded
// artifact — and renders a rate table plus the advisor's current scheme
// recommendation.
//
// Live mode polls the /vars endpoint a -metrics flag (wfebench, wfelat,
// wfestress) or metrics.Serve exposes:
//
//	wfemon -url http://127.0.0.1:9100 -interval 1s
//	wfemon -url http://127.0.0.1:9100 -once
//	wfemon -url http://127.0.0.1:9100 -validate   # scrape /metrics, check OpenMetrics shape
//
// Artifact mode reads a recorded file, dispatching on its schema field
// like cmd/wfeadvise but rendering the trajectory as the live table
// would have shown it:
//
//	wfemon chaos-out/stalled-reader-EBR.json   # wfe-chaos/v1
//	wfemon BENCH_BASELINE.json                 # wfe-bench/v1
//
// Exit status: 0 on success, 1 when -validate finds a malformed
// exposition, 2 on a usage, IO or schema error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"wfe/advisor"
	"wfe/internal/bench"
	"wfe/internal/chaos"
	"wfe/metrics"
)

func main() {
	var (
		url      = flag.String("url", "", "base URL of a live metrics endpoint (e.g. http://127.0.0.1:9100)")
		interval = flag.Duration("interval", time.Second, "poll interval in live mode")
		once     = flag.Bool("once", false, "poll a single time and exit")
		validate = flag.Bool("validate", false, "scrape /metrics once and validate the OpenMetrics exposition")
		count    = flag.Int("count", 0, "stop after this many polls (0 = forever)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: wfemon -url http://host:port [-interval 1s] [-once] [-validate]\n")
		fmt.Fprintf(os.Stderr, "       wfemon <artifact.json>   (schemas: %s, %s)\n", chaos.Schema, bench.ReportSchema)
		flag.PrintDefaults()
	}
	flag.Parse()

	switch {
	case *url != "" && *validate:
		if err := validateEndpoint(*url); err != nil {
			fmt.Fprintf(os.Stderr, "wfemon: exposition invalid: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("OpenMetrics exposition OK")
	case *url != "":
		if err := live(*url, *interval, *once, *count); err != nil {
			fmt.Fprintf(os.Stderr, "wfemon: %v\n", err)
			os.Exit(2)
		}
	case flag.NArg() == 1:
		if err := replay(flag.Arg(0)); err != nil {
			fmt.Fprintf(os.Stderr, "wfemon: %v\n", err)
			os.Exit(2)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// validateEndpoint scrapes /metrics and checks the exposition's shape —
// what the CI observability job runs against a live benchmark.
func validateEndpoint(base string) error {
	resp, err := http.Get(strings.TrimRight(base, "/") + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	return metrics.Validate(resp.Body)
}

// live polls /vars and renders the table until interrupted (or count
// polls have run). Errors on individual polls are transient — a tool
// serving -metrics may not have registered its domain yet — so they
// print and the loop continues; only a setup error aborts.
func live(base string, interval time.Duration, once bool, count int) error {
	base = strings.TrimRight(base, "/")
	polls := 0
	for {
		vars, err := fetchVars(base)
		if err != nil {
			if once {
				return err
			}
			fmt.Fprintf(os.Stderr, "wfemon: poll: %v\n", err)
		} else {
			render(os.Stdout, vars)
		}
		polls++
		if once || (count > 0 && polls >= count) {
			return nil
		}
		time.Sleep(interval)
	}
}

func fetchVars(base string) ([]metrics.Vars, error) {
	resp, err := http.Get(base + "/vars")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("GET /vars: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var vars []metrics.Vars
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		return nil, fmt.Errorf("GET /vars: %w", err)
	}
	return vars, nil
}

// render prints one poll's table: a row per registered domain.
func render(w io.Writer, vars []metrics.Vars) {
	fmt.Fprintf(w, "%s\n", time.Now().Format("15:04:05"))
	fmt.Fprintf(w, "  %-12s %-8s %10s %10s %12s %12s %10s %8s  %s\n",
		"domain", "scheme", "backlog", "in-use", "allocs/s", "retires/s", "scans/s", "parks/t", "advice")
	for _, v := range vars {
		allocRate, retireRate, scanRate, parks := "-", "-", "-", "-"
		if v.Rates != nil {
			allocRate = fmt.Sprintf("%.0f", v.Rates.AllocsPerSec)
			retireRate = fmt.Sprintf("%.0f", v.Rates.RetiresPerSec)
			scanRate = fmt.Sprintf("%.1f", v.Rates.ScansPerSec)
			parks = fmt.Sprintf("%.2f", v.Rates.ParksPerTick)
		}
		advice := v.Recommendation
		if advice == "" {
			advice = "-"
		}
		fmt.Fprintf(w, "  %-12s %-8s %10d %10d %12s %12s %10s %8s  %s\n",
			v.Domain, v.Telemetry.Scheme, v.Telemetry.Unreclaimed, v.Telemetry.InUse,
			allocRate, retireRate, scanRate, parks, advice)
	}
}

// replay loads a recorded artifact and renders it: the per-tick rate
// table a live monitor would have shown, then the advisor's verdict.
func replay(path string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var head struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(blob, &head); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	switch head.Schema {
	case chaos.Schema:
		var tr chaos.Trajectory
		if err := json.Unmarshal(blob, &tr); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		return replayChaos(&tr)
	case bench.ReportSchema:
		var rep bench.Report
		if err := json.Unmarshal(blob, &rep); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		return replayBench(&rep)
	case "":
		return fmt.Errorf("%s: no schema field; not a wfe artifact", path)
	default:
		return fmt.Errorf("%s: unsupported schema %q (want %s or %s)",
			path, head.Schema, chaos.Schema, bench.ReportSchema)
	}
}

// replayChaos streams the trajectory through a Monitor tick by tick,
// printing the table rows a live session would have produced (decimated
// to at most 24 rows) and every recommendation change as it happens.
func replayChaos(tr *chaos.Trajectory) error {
	samples := tr.Samples()
	if len(samples) == 0 {
		return fmt.Errorf("trajectory has no ticks")
	}
	fmt.Printf("scenario %q, scheme %s, %d ticks (seed %d)\n",
		tr.Scenario, tr.Scheme, len(tr.Ticks), tr.Seed)
	fmt.Printf("  %6s %10s %10s %10s %8s %8s  %s\n",
		"tick", "backlog", "scans", "p99steps", "parks", "stalled", "advice")
	m := advisor.NewMonitor(0)
	step := (len(samples) + 23) / 24
	advice := ""
	for i, s := range samples {
		rec, changed := m.Push(s)
		if changed {
			advice = rec.Scheme
		}
		if i%step == 0 || changed || i == len(samples)-1 {
			stalled := ""
			if tr.Ticks[i].Stalled {
				stalled = "yes"
			}
			marker := ""
			if changed {
				marker = "  <- advice now " + rec.Scheme
			}
			fmt.Printf("  %6d %10d %10d %10d %8d %8s  %s%s\n",
				s.Tick, s.Unreclaimed, s.ScanScans, s.P99Steps, s.GuardParks, stalled, advice, marker)
		}
	}
	final, _ := m.Current()
	fmt.Printf("\nfinal recommendation: %s\n", final.Scheme)
	for _, r := range final.Reasons {
		fmt.Printf("  - %s\n", r)
	}
	fmt.Printf("summary: highwater %d (tick %d), final backlog %d, %d scans, %d parks\n",
		tr.Summary.UnreclaimedMax, tr.Summary.UnreclaimedMaxTick,
		tr.Summary.UnreclaimedFinal, tr.Summary.Scans, tr.Summary.Parks)
	return nil
}

// replayBench renders a measured sweep and the sweep-advisor verdict.
func replayBench(rep *bench.Report) error {
	if len(rep.Figures) == 0 {
		return fmt.Errorf("report has no figure results")
	}
	fmt.Printf("bench sweep: %d points, %s/%s, %d CPUs\n",
		len(rep.Figures), rep.GOOS, rep.GOARCH, rep.NumCPU)
	fmt.Printf("  %-12s %-8s %8s %10s %12s\n", "figure", "scheme", "threads", "Mops", "backlog-max")
	points := make([]advisor.SweepPoint, len(rep.Figures))
	for i, r := range rep.Figures {
		points[i] = advisor.SweepPoint{
			Figure:         r.Figure,
			Scheme:         r.Scheme,
			Threads:        r.Threads,
			Mops:           r.Mops,
			UnreclaimedMax: r.UnreclaimedMax,
		}
		fmt.Printf("  %-12s %-8s %8d %10.2f %12d\n", r.Figure, r.Scheme, r.Threads, r.Mops, r.UnreclaimedMax)
	}
	rec := advisor.AdviseSweep(points)
	fmt.Printf("\nrecommendation: %s\n", rec.Scheme)
	for _, r := range rec.Reasons {
		fmt.Printf("  - %s\n", r)
	}
	return nil
}
