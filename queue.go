package wfe

// queue node layout: word 0 = next link.
const queueNext = 0

// queue protection slots: dequeue protects head then next; enqueue reuses
// slot 0 for the tail.
const (
	queueSlotFirst = 0
	queueSlotNext  = 1
	queueSlotLast  = 0
)

// Queue is a Michael–Scott lock-free MPMC FIFO queue of T on the typed
// Domain façade. It needs 2 protection slots per guard.
//
// The plain methods (Enqueue, Dequeue, Len) are guardless: each leases a
// guard from the Domain's guard runtime for the duration of the
// operation, so any number of goroutines may call them. The Guarded
// variants take an explicit or pinned Guard and skip the lease — use them
// in hot loops.
type Queue[T any] struct {
	d    *Domain[T]
	head Atomic[T]
	tail Atomic[T]
}

// NewQueue creates an empty queue on the Domain. It leases a guard to
// allocate the sentinel node, parking briefly if all guards are busy.
func NewQueue[T any](d *Domain[T]) *Queue[T] {
	q := &Queue[T]{d: d}
	g := d.Pin()
	defer d.Unpin(g)
	var zero T
	s := g.Alloc(zero)
	q.head.Store(s)
	q.tail.Store(s)
	return q
}

// Enqueue appends v.
func (q *Queue[T]) Enqueue(v T) {
	g := q.d.Pin()
	defer q.d.unpin(g)
	q.EnqueueGuarded(g, v)
}

// Dequeue removes and returns the oldest value; ok is false when empty.
func (q *Queue[T]) Dequeue() (v T, ok bool) {
	g := q.d.Pin()
	defer q.d.unpin(g)
	return q.DequeueGuarded(g)
}

// Len counts queued values; meaningful only quiescently.
func (q *Queue[T]) Len() int {
	g := q.d.Pin()
	defer q.d.unpin(g)
	return q.LenGuarded(g)
}

// TryEnqueue is Enqueue with backpressure: when the arena stays
// exhausted after the Domain's emergency-reclamation pipeline it returns
// ErrArenaExhausted instead of panicking.
func (q *Queue[T]) TryEnqueue(v T) error {
	g := q.d.Pin()
	defer q.d.unpin(g)
	return q.TryEnqueueGuarded(g, v)
}

// EnqueueGuarded is Enqueue on a caller-held guard.
func (q *Queue[T]) EnqueueGuarded(g *Guard[T], v T) {
	if err := q.TryEnqueueGuarded(g, v); err != nil {
		panic(exhaustedPanic(q.d.arena.Capacity()))
	}
}

// TryEnqueueGuarded is TryEnqueue on a caller-held guard.
func (q *Queue[T]) TryEnqueueGuarded(g *Guard[T], v T) error {
	// Allocate before entering the protected section (see Stack.TryPushGuarded).
	node, err := g.TryAlloc(v)
	if err != nil {
		return err
	}
	g.Begin()
	defer g.End()
	q.enqueueNode(g, node)
	return nil
}

// enqueueNode links the pre-allocated node after the current tail,
// helping a lagging tail along. The caller owns the protected section.
func (q *Queue[T]) enqueueNode(g *Guard[T], node Ref[T]) {
	for {
		last := g.Protect(&q.tail, queueSlotLast)
		next := g.Load(last, queueNext)
		if q.tail.Load() != last {
			continue
		}
		if !next.IsNil() { // tail lagging: help advance
			q.tail.CompareAndSwap(last, next)
			continue
		}
		if g.CompareAndSwap(last, queueNext, Ref[T]{}, node) {
			q.tail.CompareAndSwap(last, node)
			return
		}
	}
}

// DequeueGuarded is Dequeue on a caller-held guard.
func (q *Queue[T]) DequeueGuarded(g *Guard[T]) (v T, ok bool) {
	g.Begin()
	defer g.End()
	for {
		first := g.Protect(&q.head, queueSlotFirst)
		last := q.tail.Load()
		next := g.ProtectWord(first, queueNext, queueSlotNext)
		if q.head.Load() != first {
			continue
		}
		if first == last {
			if next.IsNil() {
				return v, false
			}
			q.tail.CompareAndSwap(last, next) // tail lagging
			continue
		}
		if next.IsNil() {
			continue // stale snapshot
		}
		// Read the value before unlinking: next is still reachable from
		// head, so it is not retired and our protection covers it.
		v = g.Value(next)
		if q.head.CompareAndSwap(first, next) {
			g.Retire(first)
			return v, true
		}
	}
}

// EnqueueAll appends every value in slice order in one batch: one guard
// lease, one protection span where the scheme allows it, nodes allocated
// up front (see batch.go). Like Enqueue it panics when the arena stays
// exhausted after the emergency-reclamation pipeline; values already
// enqueued stay enqueued (use TryEnqueueAll to observe partial
// progress).
func (q *Queue[T]) EnqueueAll(vs []T) {
	g := q.d.pinBatch()
	defer q.d.unpin(g)
	q.EnqueueAllGuarded(g, vs)
}

// EnqueueAllGuarded is EnqueueAll on a caller-held guard.
func (q *Queue[T]) EnqueueAllGuarded(g *Guard[T], vs []T) {
	if _, err := q.TryEnqueueAllGuarded(g, vs); err != nil {
		panic(exhaustedPanic(q.d.arena.Capacity()))
	}
}

// TryEnqueueAll is EnqueueAll with backpressure: the whole run is
// allocated before any protection is announced; on exhaustion mid-run
// the values whose nodes were obtained are still enqueued and
// TryEnqueueAll reports that prefix length alongside ErrArenaExhausted —
// callers resume from vs[enqueued:].
func (q *Queue[T]) TryEnqueueAll(vs []T) (enqueued int, err error) {
	g := q.d.pinBatch()
	defer q.d.unpin(g)
	return q.TryEnqueueAllGuarded(g, vs)
}

// TryEnqueueAllGuarded is TryEnqueueAll on a caller-held guard.
func (q *Queue[T]) TryEnqueueAllGuarded(g *Guard[T], vs []T) (enqueued int, err error) {
	nodes := g.scratchNodes(0, len(vs))
	for i := range vs {
		n, aerr := g.TryAlloc(vs[i])
		if aerr != nil {
			err = aerr
			break
		}
		nodes = append(nodes, n)
	}
	enqueued = g.runBatch(len(nodes), func(i int) bool {
		q.enqueueNode(g, nodes[i])
		return true
	})
	return enqueued, err
}

// DequeueN removes up to n values in one batch, stopping early when the
// queue empties. The unlinked nodes are retired as one burst at the end
// of the batch, so the cleanup cadence ticks once instead of once per
// dequeue. Values come back in FIFO order.
func (q *Queue[T]) DequeueN(n int) []T {
	g := q.d.pinBatch()
	defer q.d.unpin(g)
	return q.DequeueNGuarded(g, n)
}

// DequeueNGuarded is DequeueN on a caller-held guard.
func (q *Queue[T]) DequeueNGuarded(g *Guard[T], n int) []T {
	out := make([]T, 0, n)
	g.runBatch(n, func(int) bool {
		v, ok := q.DequeueGuarded(g)
		if ok {
			out = append(out, v)
		}
		return ok
	})
	return out
}

// LenGuarded is Len on a caller-held guard.
func (q *Queue[T]) LenGuarded(g *Guard[T]) int {
	n := 0
	for r := q.head.Load(); !r.IsNil(); r = g.Load(r, queueNext) {
		if !g.Load(r, queueNext).IsNil() {
			n++
		}
	}
	return n
}
