package wfe

// queue node layout: word 0 = next link.
const queueNext = 0

// queue protection slots: dequeue protects head then next; enqueue reuses
// slot 0 for the tail.
const (
	queueSlotFirst = 0
	queueSlotNext  = 1
	queueSlotLast  = 0
)

// Queue is a Michael–Scott lock-free MPMC FIFO queue of T on the typed
// Domain façade. It needs 2 protection slots per guard.
//
// The plain methods (Enqueue, Dequeue, Len) are guardless: each leases a
// guard from the Domain's guard runtime for the duration of the
// operation, so any number of goroutines may call them. The Guarded
// variants take an explicit or pinned Guard and skip the lease — use them
// in hot loops.
type Queue[T any] struct {
	d    *Domain[T]
	head Atomic[T]
	tail Atomic[T]
}

// NewQueue creates an empty queue on the Domain. It leases a guard to
// allocate the sentinel node, parking briefly if all guards are busy.
func NewQueue[T any](d *Domain[T]) *Queue[T] {
	q := &Queue[T]{d: d}
	g := d.Pin()
	defer d.Unpin(g)
	var zero T
	s := g.Alloc(zero)
	q.head.Store(s)
	q.tail.Store(s)
	return q
}

// Enqueue appends v.
func (q *Queue[T]) Enqueue(v T) {
	g := q.d.Pin()
	defer q.d.unpin(g)
	q.EnqueueGuarded(g, v)
}

// Dequeue removes and returns the oldest value; ok is false when empty.
func (q *Queue[T]) Dequeue() (v T, ok bool) {
	g := q.d.Pin()
	defer q.d.unpin(g)
	return q.DequeueGuarded(g)
}

// Len counts queued values; meaningful only quiescently.
func (q *Queue[T]) Len() int {
	g := q.d.Pin()
	defer q.d.unpin(g)
	return q.LenGuarded(g)
}

// TryEnqueue is Enqueue with backpressure: when the arena stays
// exhausted after the Domain's emergency-reclamation pipeline it returns
// ErrArenaExhausted instead of panicking.
func (q *Queue[T]) TryEnqueue(v T) error {
	g := q.d.Pin()
	defer q.d.unpin(g)
	return q.TryEnqueueGuarded(g, v)
}

// EnqueueGuarded is Enqueue on a caller-held guard.
func (q *Queue[T]) EnqueueGuarded(g *Guard[T], v T) {
	if err := q.TryEnqueueGuarded(g, v); err != nil {
		panic(exhaustedPanic(q.d.arena.Capacity()))
	}
}

// TryEnqueueGuarded is TryEnqueue on a caller-held guard.
func (q *Queue[T]) TryEnqueueGuarded(g *Guard[T], v T) error {
	// Allocate before entering the protected section (see Stack.TryPushGuarded).
	node, err := g.TryAlloc(v)
	if err != nil {
		return err
	}
	g.Begin()
	defer g.End()
	for {
		last := g.Protect(&q.tail, queueSlotLast)
		next := g.Load(last, queueNext)
		if q.tail.Load() != last {
			continue
		}
		if !next.IsNil() { // tail lagging: help advance
			q.tail.CompareAndSwap(last, next)
			continue
		}
		if g.CompareAndSwap(last, queueNext, Ref[T]{}, node) {
			q.tail.CompareAndSwap(last, node)
			return nil
		}
	}
}

// DequeueGuarded is Dequeue on a caller-held guard.
func (q *Queue[T]) DequeueGuarded(g *Guard[T]) (v T, ok bool) {
	g.Begin()
	defer g.End()
	for {
		first := g.Protect(&q.head, queueSlotFirst)
		last := q.tail.Load()
		next := g.ProtectWord(first, queueNext, queueSlotNext)
		if q.head.Load() != first {
			continue
		}
		if first == last {
			if next.IsNil() {
				return v, false
			}
			q.tail.CompareAndSwap(last, next) // tail lagging
			continue
		}
		if next.IsNil() {
			continue // stale snapshot
		}
		// Read the value before unlinking: next is still reachable from
		// head, so it is not retired and our protection covers it.
		v = g.Value(next)
		if q.head.CompareAndSwap(first, next) {
			g.Retire(first)
			return v, true
		}
	}
}

// LenGuarded is Len on a caller-held guard.
func (q *Queue[T]) LenGuarded(g *Guard[T]) int {
	n := 0
	for r := q.head.Load(); !r.IsNil(); r = g.Load(r, queueNext) {
		if !g.Load(r, queueNext).IsNil() {
			n++
		}
	}
	return n
}
