package wfe

// queue node layout: word 0 = next link.
const queueNext = 0

// queue protection slots: dequeue protects head then next; enqueue reuses
// slot 0 for the tail.
const (
	queueSlotFirst = 0
	queueSlotNext  = 1
	queueSlotLast  = 0
)

// Queue is a Michael–Scott lock-free MPMC FIFO queue of T on the typed
// Domain façade. It needs 2 protection slots per guard.
type Queue[T any] struct {
	d    *Domain[T]
	head Atomic[T]
	tail Atomic[T]
}

// NewQueue creates an empty queue on the Domain. It acquires (and
// releases) a temporary guard to allocate the sentinel node, so one guard
// must be free.
func NewQueue[T any](d *Domain[T]) *Queue[T] {
	q := &Queue[T]{d: d}
	g := d.Guard()
	defer g.Release()
	var zero T
	s := g.Alloc(zero)
	q.head.Store(s)
	q.tail.Store(s)
	return q
}

// Enqueue appends v.
func (q *Queue[T]) Enqueue(g *Guard[T], v T) {
	g.Begin()
	defer g.End()
	node := g.Alloc(v)
	for {
		last := g.Protect(&q.tail, queueSlotLast)
		next := g.Load(last, queueNext)
		if q.tail.Load() != last {
			continue
		}
		if !next.IsNil() { // tail lagging: help advance
			q.tail.CompareAndSwap(last, next)
			continue
		}
		if g.CompareAndSwap(last, queueNext, Ref[T]{}, node) {
			q.tail.CompareAndSwap(last, node)
			return
		}
	}
}

// Dequeue removes and returns the oldest value; ok is false when empty.
func (q *Queue[T]) Dequeue(g *Guard[T]) (v T, ok bool) {
	g.Begin()
	defer g.End()
	for {
		first := g.Protect(&q.head, queueSlotFirst)
		last := q.tail.Load()
		next := g.ProtectWord(first, queueNext, queueSlotNext)
		if q.head.Load() != first {
			continue
		}
		if first == last {
			if next.IsNil() {
				return v, false
			}
			q.tail.CompareAndSwap(last, next) // tail lagging
			continue
		}
		if next.IsNil() {
			continue // stale snapshot
		}
		// Read the value before unlinking: next is still reachable from
		// head, so it is not retired and our protection covers it.
		v = g.Value(next)
		if q.head.CompareAndSwap(first, next) {
			g.Retire(first)
			return v, true
		}
	}
}

// Len counts queued values; meaningful only quiescently.
func (q *Queue[T]) Len(g *Guard[T]) int {
	n := 0
	for r := q.head.Load(); !r.IsNil(); r = g.Load(r, queueNext) {
		if !g.Load(r, queueNext).IsNil() {
			n++
		}
	}
	return n
}
