package wfe_test

// Allocation backpressure acceptance tests: the emergency-reclamation
// pipeline must keep a workload alive on an arena sized at roughly half
// its working set under every judged scheme, the Try* API must surface
// ErrArenaExhausted instead of panicking when the pipeline genuinely
// cannot help, and the pressure gauge must be visible end to end through
// Telemetry and the OpenMetrics exposition.

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wfe"
	"wfe/internal/bench"
	"wfe/internal/quiesce"
	"wfe/metrics"
)

// nonLeakSchemes is every scheme with a judge — the ones the emergency
// pipeline can actually help.
func nonLeakSchemes() []wfe.SchemeKind {
	var out []wfe.SchemeKind
	for _, kind := range wfe.AllSchemes() {
		if kind != wfe.Leak {
			out = append(out, kind)
		}
	}
	return out
}

// TestExhaustionStormAllSchemes is the headline acceptance bar: eight
// goroutines hammer a guardless HashMap whose working set — the live map
// plus the retire backlog a cadence this lazy accumulates — is about
// twice the arena. Every allocation past the ceiling rides the emergency
// pipeline; the run must finish with zero surfaced errors, must actually
// have entered the pipeline, and must quiesce to a clean census.
func TestExhaustionStormAllSchemes(t *testing.T) {
	for _, kind := range nonLeakSchemes() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			const (
				goroutines = 8
				opsPerG    = 4000
				keyRange   = 400
				capacity   = 1 << 10
			)
			d, err := wfe.NewDomain[uint64](wfe.Options{
				Scheme:    kind,
				Capacity:  capacity,
				MaxGuards: goroutines,
				// No cadence scans: the run's retire volume never reaches
				// the threshold, so reclamation happens only when an
				// allocation stalls and forces it.
				CleanupFreq: 1 << 20,
				// Fast era clock so a stalled allocator's own reservation
				// pins only a handful of freshly-retired blocks.
				EraFreq: 2,
				// Small spill batches so one goroutine's emergency frees
				// reach the global pool — and everyone else — quickly. This
				// is load-bearing arithmetic, not tuning: caches spill past
				// 2×SpillSize, so 8 tids can strand 8×2×SpillSize frees in
				// private caches; that figure must stay well under the
				// circulating pool (capacity minus the live set) or a tid
				// whose own retire ring is empty can starve while every
				// free block hides in someone else's cache.
				SpillSize: 16,
				Debug:     true,
			})
			if err != nil {
				t.Fatal(err)
			}
			m := wfe.NewHashMap[uint64](d, 64)
			var surfaced atomic.Uint64
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := uint64(g)*0x9e3779b97f4a7c15 + 1
					for i := 0; i < opsPerG; i++ {
						rng ^= rng << 13
						rng ^= rng >> 7
						rng ^= rng << 17
						key := rng % keyRange
						if rng%8 == 0 {
							m.Get(key)
							continue
						}
						if err := m.TryPut(key, rng); err != nil {
							surfaced.Add(1)
						}
					}
				}(g)
			}
			wg.Wait()
			if n := surfaced.Load(); n != 0 {
				t.Errorf("%d operation(s) surfaced ErrArenaExhausted despite emergency reclamation", n)
			}
			pr := d.Pressure()
			if pr.EmergencyScans == 0 {
				t.Error("storm never entered the emergency pipeline — arena not undersized for the workload")
			}
			for key := uint64(0); key < keyRange; key++ {
				m.Delete(key)
			}
			quiesce.Settle(d)
			if err := quiesce.Check(d, true); err != nil {
				t.Errorf("post-storm quiesce: %v", err)
			}
		})
	}
}

// smallDomain builds a Domain whose arena genuinely cannot satisfy more
// than its capacity in live blocks, with the retry ladder shortened so
// each surfaced error costs microseconds, not the default backoff budget.
func smallDomain(t *testing.T, kind wfe.SchemeKind, capacity int) *wfe.Domain[uint64] {
	t.Helper()
	d, err := wfe.NewDomain[uint64](wfe.Options{
		Scheme:       kind,
		Capacity:     capacity,
		MaxGuards:    4,
		AllocRetries: 2,
		AllocBackoff: time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestTryVariantsSurfaceExhaustion fills each structure with live nodes —
// which no scheme can reclaim — until its Try* insert surfaces an error,
// and asserts the error is ErrArenaExhausted by errors.Is. WFE (judged:
// the pipeline runs and still fails honestly) and Leak (judge-less: the
// pipeline short-circuits) both land on the same sentinel.
func TestTryVariantsSurfaceExhaustion(t *testing.T) {
	fillUntil := func(t *testing.T, op func() error) error {
		t.Helper()
		for i := 0; i < 1<<12; i++ {
			if err := op(); err != nil {
				return err
			}
		}
		t.Fatal("arena never exhausted: structure is leaking capacity assumptions")
		return nil
	}
	for _, kind := range []wfe.SchemeKind{wfe.WFE, wfe.Leak} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Run("stack", func(t *testing.T) {
				s := wfe.NewStack[uint64](smallDomain(t, kind, 64))
				err := fillUntil(t, func() error { return s.TryPush(7) })
				if !errors.Is(err, wfe.ErrArenaExhausted) {
					t.Fatalf("TryPush error = %v, want ErrArenaExhausted", err)
				}
			})
			t.Run("queue", func(t *testing.T) {
				q := wfe.NewQueue[uint64](smallDomain(t, kind, 64))
				err := fillUntil(t, func() error { return q.TryEnqueue(7) })
				if !errors.Is(err, wfe.ErrArenaExhausted) {
					t.Fatalf("TryEnqueue error = %v, want ErrArenaExhausted", err)
				}
			})
			t.Run("wfqueue", func(t *testing.T) {
				q := wfe.NewWFQueue[uint64](smallDomain(t, kind, 128))
				err := fillUntil(t, func() error { return q.TryEnqueue(7) })
				if !errors.Is(err, wfe.ErrArenaExhausted) {
					t.Fatalf("TryEnqueue error = %v, want ErrArenaExhausted", err)
				}
			})
			t.Run("turnqueue", func(t *testing.T) {
				q := wfe.NewTurnQueue[uint64](smallDomain(t, kind, 128))
				err := fillUntil(t, func() error { return q.TryEnqueue(7) })
				if !errors.Is(err, wfe.ErrArenaExhausted) {
					t.Fatalf("TryEnqueue error = %v, want ErrArenaExhausted", err)
				}
			})
			t.Run("hashmap", func(t *testing.T) {
				m := wfe.NewHashMap[uint64](smallDomain(t, kind, 64), 8)
				key := uint64(0)
				err := fillUntil(t, func() error {
					key++
					return m.TryPut(key, key)
				})
				if !errors.Is(err, wfe.ErrArenaExhausted) {
					t.Fatalf("TryPut error = %v, want ErrArenaExhausted", err)
				}
				if _, err := m.TryInsert(key+1, 7); !errors.Is(err, wfe.ErrArenaExhausted) {
					t.Fatalf("TryInsert on the exhausted map = %v, want ErrArenaExhausted", err)
				}
			})
			t.Run("tree", func(t *testing.T) {
				tr := wfe.NewTree[uint64](smallDomain(t, kind, 64))
				key := uint64(0)
				err := fillUntil(t, func() error {
					key++
					_, err := tr.TryInsert(key, key)
					return err
				})
				if !errors.Is(err, wfe.ErrArenaExhausted) {
					t.Fatalf("TryInsert error = %v, want ErrArenaExhausted", err)
				}
				if err := tr.TryPut(key+1, 7); !errors.Is(err, wfe.ErrArenaExhausted) {
					t.Fatalf("TryPut on the exhausted tree = %v, want ErrArenaExhausted", err)
				}
			})
		})
	}
}

// TestPanicVariantsWrapSentinel pins the duality: the panicking methods
// throw a value that errors.Is-matches ErrArenaExhausted and that the
// bench harness's LeakExhausted classifier recognizes on both its paths
// (the error-typed value here, the arena's raw string from the pre-Domain
// path).
func TestPanicVariantsWrapSentinel(t *testing.T) {
	s := wfe.NewStack[uint64](smallDomain(t, wfe.Leak, 16))
	for {
		if err := s.TryPush(1); err != nil {
			break
		}
	}
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		s.Push(2)
	}()
	if recovered == nil {
		t.Fatal("Push on an exhausted Leak arena did not panic")
	}
	err, ok := recovered.(error)
	if !ok || !errors.Is(err, wfe.ErrArenaExhausted) {
		t.Fatalf("panic value %v is not an error wrapping ErrArenaExhausted", recovered)
	}
	if !strings.Contains(err.Error(), "arena exhausted") {
		t.Fatalf("panic message %q lost the %q substring older tooling matches on", err, "arena exhausted")
	}
	if !bench.LeakExhausted(recovered, wfe.Leak) {
		t.Error("bench.LeakExhausted does not recognize the error-typed exhaustion panic")
	}
	if bench.LeakExhausted(recovered, wfe.WFE) {
		t.Error("bench.LeakExhausted must only excuse the Leak baseline")
	}
	if !bench.LeakExhausted("mem: arena exhausted (capacity 16)", wfe.Leak) {
		t.Error("bench.LeakExhausted lost the raw-string arena panic path")
	}
}

// TestPressureGaugeAndMetrics drives a Domain into sustained pressure and
// follows the gauge end to end: Pressure(), Telemetry, and the
// OpenMetrics exposition with its two new families.
func TestPressureGaugeAndMetrics(t *testing.T) {
	d := smallDomain(t, wfe.WFE, 256)
	s := wfe.NewStack[uint64](d)
	for {
		if err := s.TryPush(1); err != nil {
			break
		}
	}
	// Free a little and refill: the pipeline now has retired blocks to
	// recycle, so at least one stall resolves inside it.
	for i := 0; i < 64; i++ {
		s.Pop()
	}
	for i := 0; i < 32; i++ {
		if err := s.TryPush(1); err != nil {
			break
		}
	}
	pr := d.Pressure()
	if pr.AllocStalls == 0 || pr.EmergencyScans == 0 {
		t.Fatalf("pressure gauge empty after an exhausted fill: %+v", pr)
	}
	if pr.Ratio() < 0.5 {
		t.Fatalf("occupancy ratio %.2f implausibly low for a filled arena", pr.Ratio())
	}
	tel := d.Telemetry()
	if tel.AllocStalls != pr.AllocStalls || tel.EmergencyScans == 0 {
		t.Fatalf("Telemetry backpressure counters diverge from Pressure: %+v vs %+v", tel, pr)
	}

	reg := metrics.NewRegistry()
	reg.Register("press", d.Telemetry)
	var buf bytes.Buffer
	if err := reg.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if err := metrics.Validate(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("exposition with pressure families is malformed: %v", err)
	}
	for _, want := range []string{"wfe_arena_pressure", "wfe_alloc_stalls_total", "wfe_emergency_scans_total"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition is missing %s", want)
		}
	}
}

// TestScavengeCollapsesLazyBacklog pins the quiescent sibling of the
// emergency scan: a drained Domain whose CleanupFreq never fired keeps
// its whole backlog in per-tid rings until Scavenge sweeps them.
func TestScavengeCollapsesLazyBacklog(t *testing.T) {
	d, err := wfe.NewDomain[uint64](wfe.Options{
		Scheme:      wfe.WFE,
		Capacity:    1 << 12,
		MaxGuards:   2,
		CleanupFreq: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := wfe.NewStack[uint64](d)
	for i := 0; i < 512; i++ {
		s.Push(uint64(i))
	}
	for i := 0; i < 512; i++ {
		s.Pop()
	}
	if got := d.Unreclaimed(); got < 256 {
		t.Fatalf("lazy cadence should have stranded the backlog in rings, Unreclaimed = %d", got)
	}
	freed := d.Scavenge()
	if freed == 0 {
		t.Fatal("Scavenge freed nothing from a fully-retired backlog")
	}
	if got := d.Unreclaimed(); got > 16 {
		t.Errorf("backlog %d survived Scavenge", got)
	}
}
