// Tests for the guard runtime: lock-free acquisition, parking, the lease
// cache behind the guardless API, and leak-freedom under goroutine churn.
// CI runs this file under -race.
package wfe_test

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"wfe"
)

// TestGoroutineChurn runs 8x more goroutines than MaxGuards through the
// guardless API across every scheme: goroutines outnumbering and
// outliving guards is exactly the scenario the guard runtime exists for.
// After quiescing, the guard pool must hold all MaxGuards tids again — a
// missing one means an operation leaked its lease.
func TestGoroutineChurn(t *testing.T) {
	forEachScheme(t, func(t *testing.T, kind wfe.SchemeKind, forceSlow bool) {
		const guards, goroutines, iters = 4, 32, 300
		capacity := 1 << 16
		if kind == wfe.Leak {
			capacity = 1 << 18
		}
		d := testDomain(t, kind, guards, capacity, forceSlow)
		s := wfe.NewStack[uint64](d)
		m := wfe.NewMap[uint64](d, 64)

		var wg sync.WaitGroup
		for w := 0; w < goroutines; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w)*271 + 1))
				for i := 0; i < iters; i++ {
					key := uint64(rng.Intn(128))
					switch rng.Intn(5) {
					case 0:
						s.Push(key)
					case 1:
						s.Pop()
					case 2:
						m.Put(key, key)
					case 3:
						m.Delete(key)
					default:
						m.Get(key)
					}
				}
			}(w)
		}
		wg.Wait()

		if stranded := d.FlushGuardCache(); stranded != 0 {
			t.Fatalf("%d guards stranded in the lease cache after flush", stranded)
		}
		tel := d.Telemetry()
		if tel.GuardsFree != guards {
			t.Fatalf("guard leak: %d/%d tids back on the freelist", tel.GuardsFree, guards)
		}
		if tel.GuardAcquires == 0 {
			t.Fatal("churn drove no pool acquisitions")
		}
		if tel.GuardCacheHits == 0 {
			t.Fatal("lease cache never hit under churn; caching is not working")
		}
		// The pool really refills: MaxGuards explicit acquisitions succeed.
		held := make([]*wfe.Guard[uint64], guards)
		for i := range held {
			g, ok := d.TryGuard()
			if !ok {
				t.Fatalf("TryGuard %d/%d failed after quiesce", i+1, guards)
			}
			held[i] = g
		}
		if _, ok := d.TryGuard(); ok {
			t.Fatal("TryGuard handed out more than MaxGuards")
		}
		for _, g := range held {
			g.Release()
		}
	})
}

// TestAcquireGuardParks: an AcquireGuard on an exhausted domain must park
// and be handed the guard a Release frees.
func TestAcquireGuardParks(t *testing.T) {
	d, err := wfe.NewDomain[int](wfe.Options{Capacity: 64, MaxGuards: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := d.Guard()
	got := make(chan *wfe.Guard[int])
	go func() {
		g2, err := d.AcquireGuard(context.Background())
		if err != nil {
			t.Errorf("AcquireGuard: %v", err)
		}
		got <- g2
	}()
	time.Sleep(10 * time.Millisecond) // let the acquirer park
	g.Release()
	select {
	case g2 := <-got:
		g2.Release()
	case <-time.After(2 * time.Second):
		t.Fatal("parked AcquireGuard never woke after Release")
	}
	if tel := d.Telemetry(); tel.GuardParks == 0 {
		t.Fatalf("Telemetry.GuardParks = 0 after a parked acquire: %+v", tel)
	}
}

// TestAcquireGuardContext: a done context unblocks a parked AcquireGuard
// with its error.
func TestAcquireGuardContext(t *testing.T) {
	d, err := wfe.NewDomain[int](wfe.Options{Capacity: 64, MaxGuards: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := d.Guard()
	defer g.Release()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := d.AcquireGuard(ctx); err != context.DeadlineExceeded {
		t.Fatalf("AcquireGuard = %v, want DeadlineExceeded", err)
	}
}

// TestAcquireGuardClaimsCachedLease: a guard idling in the lease cache
// counts as free for explicit acquisition — cached leases must never make
// the domain look exhausted.
func TestAcquireGuardClaimsCachedLease(t *testing.T) {
	d, err := wfe.NewDomain[int](wfe.Options{Capacity: 64, MaxGuards: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := wfe.NewStack[int](d)
	s.Push(1) // leaves the only guard in the lease cache
	g, ok := d.TryGuard()
	if !ok {
		t.Fatal("TryGuard failed while the only guard sat idle in the cache")
	}
	g.Release()
}

// TestUnpinHandsOffToWaiter: Unpin must feed a parked acquirer instead of
// caching the guard on its own P while the waiter sleeps.
func TestUnpinHandsOffToWaiter(t *testing.T) {
	d, err := wfe.NewDomain[int](wfe.Options{Capacity: 64, MaxGuards: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := d.Pin()
	got := make(chan error)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		g2, err := d.AcquireGuard(ctx)
		if err == nil {
			g2.Release()
		}
		got <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the acquirer park
	d.Unpin(g)
	if err := <-got; err != nil {
		t.Fatalf("parked acquirer starved across Unpin: %v", err)
	}
}

// TestPinReusesLease: consecutive Pin/Unpin cycles on one goroutine must
// hit the per-P cache, not the pool.
func TestPinReusesLease(t *testing.T) {
	d, err := wfe.NewDomain[int](wfe.Options{Capacity: 64, MaxGuards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		g := d.Pin()
		d.Unpin(g)
	}
	tel := d.Telemetry()
	if tel.GuardCacheHits < 90 {
		t.Fatalf("GuardCacheHits = %d after 100 Pin/Unpin cycles (misses %d)",
			tel.GuardCacheHits, tel.GuardCacheMisses)
	}
	if stranded := d.FlushGuardCache(); stranded != 0 {
		t.Fatalf("%d guards stranded after flush", stranded)
	}
	if free := d.Telemetry().GuardsFree; free != 2 {
		t.Fatalf("GuardsFree = %d after flush, want 2", free)
	}
}

// TestFlushGuardCacheIdempotent: flushing an empty cache is a no-op and
// repeated flushes stay clean.
func TestFlushGuardCacheIdempotent(t *testing.T) {
	d, err := wfe.NewDomain[int](wfe.Options{Capacity: 64, MaxGuards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if stranded := d.FlushGuardCache(); stranded != 0 {
			t.Fatalf("flush %d stranded %d guards", i, stranded)
		}
	}
}

// TestFlushIgnoresHeldGuards: a guard claimed out of the lease cache and
// still explicitly held occupies its sticky registry slot, but it belongs
// to its holder, not the cache — FlushGuardCache must not count it as
// stranded nor disturb it.
func TestFlushIgnoresHeldGuards(t *testing.T) {
	d, err := wfe.NewDomain[int](wfe.Options{Capacity: 64, MaxGuards: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := wfe.NewStack[int](d)
	s.Push(1) // parks the only guard in the cache with a sticky slot
	g, ok := d.TryGuard()
	if !ok {
		t.Fatal("TryGuard failed to claim the cached guard")
	}
	if stranded := d.FlushGuardCache(); stranded != 0 {
		t.Fatalf("flush counted the explicitly held guard as stranded (%d)", stranded)
	}
	if v, ok := s.PopGuarded(g); !ok || v != 1 {
		t.Fatalf("held guard unusable after flush: Pop = %d,%v", v, ok)
	}
	g.Release()
	if free := d.Telemetry().GuardsFree; free != 1 {
		t.Fatalf("GuardsFree = %d after release, want 1", free)
	}
}
