package wfe_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"wfe"
)

// ExampleDomain shows the simplest use of the public API: build a Domain
// over a reclamation scheme and call the structures' guardless methods —
// the guard runtime leases reclamation slots per operation, so no Guard
// appears at all. Swapping wfe.WFE for any other SchemeKind changes the
// reclamation algorithm, not a line of data-structure code — the
// "universal" in universal memory reclamation.
func ExampleDomain() {
	d, err := wfe.NewDomain[string](wfe.Options{
		Scheme:   wfe.WFE, // or HE, HP, EBR, TwoGEIBR, Leak, WFEIBR
		Capacity: 1024,    // blocks in the arena
	})
	if err != nil {
		panic(err)
	}

	s := wfe.NewStack[string](d)
	s.Push("world")
	s.Push("hello")
	for {
		v, ok := s.Pop()
		if !ok {
			break
		}
		fmt.Println(v)
	}

	m := wfe.NewMap[string](d, 16)
	m.Put(42, "answer")
	if v, ok := m.Get(42); ok {
		fmt.Println(v)
	}

	fmt.Println("unreclaimed:", d.Unreclaimed() <= 2)
	// Output:
	// hello
	// world
	// answer
	// unreclaimed: true
}

// ExampleDomain_StartSampler runs the background observability sampler:
// one goroutine collecting the allocation-free Domain.Sample row every
// Interval, deriving EWMA rates and streaming the rows through the live
// scheme advisor. Production code would set SamplerConfig.OnRecommendation
// (or poll Rates) instead of sleeping.
func ExampleDomain_StartSampler() {
	d, err := wfe.NewDomain[uint64](wfe.Options{Capacity: 1 << 12})
	if err != nil {
		panic(err)
	}
	s := d.StartSampler(wfe.SamplerConfig{Interval: time.Millisecond})

	// Churn concurrently so the sampler's ticks see allocation deltas.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		st := wfe.NewStack[uint64](d)
		for i := uint64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
				st.Push(i)
				st.Pop()
			}
		}
	}()
	for s.Ticks() < 5 { // let a few rows accumulate
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done

	rates := s.Rates()
	rec, ok := s.Recommendation()
	fmt.Println("sampled rows:", s.Ticks() >= 5)
	fmt.Println("alloc rate seen:", rates.AllocsPerSec > 0)
	fmt.Println("advice:", ok, rec.Scheme != "")
	s.Stop()
	fmt.Println("running after Stop:", s.Running())
	// Output:
	// sampled rows: true
	// alloc rate seen: true
	// advice: true true
	// running after Stop: false
}

// ExampleDomain_Switch swaps a live Domain's reclamation scheme without
// touching the structures built on it: Switch gates new guard
// acquisitions, waits for in-flight guards, drains the outgoing scheme's
// retired backlog, and installs the new scheme over the same arena.
// Values stored before the switch survive it — only the reclamation
// algorithm changed. Options.AutoSwitch wires the streaming advisor to
// this call for hands-off operation.
func ExampleDomain_Switch() {
	d, err := wfe.NewDomain[string](wfe.Options{
		Scheme:   wfe.EBR, // cheap while readers never stall
		Capacity: 1024,
	})
	if err != nil {
		panic(err)
	}
	defer d.Close()

	s := wfe.NewStack[string](d)
	s.Push("survives the swap")

	// The workload turned hostile for EBR (say the advisor reported a
	// stalled-reader signature): move to the wait-free scheme, live.
	if err := d.Switch(wfe.WFE); err != nil {
		panic(err)
	}
	fmt.Println("scheme:", d.Scheme())
	fmt.Println("switches:", d.Telemetry().SchemeSwitches)
	if v, ok := s.Pop(); ok {
		fmt.Println(v)
	}
	// Output:
	// scheme: WFE
	// switches: 1
	// survives the swap
}

// ExampleStack: the guardless stack methods are safe from any number of
// goroutines — far more than MaxGuards — because each operation leases a
// guard from the Domain's pool and parks when all are busy.
func ExampleStack() {
	d, _ := wfe.NewDomain[int](wfe.Options{Capacity: 1 << 12, MaxGuards: 2})
	s := wfe.NewStack[int](d)

	var wg sync.WaitGroup
	for w := 0; w < 16; w++ { // 8x more goroutines than guards
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s.Push(w)
			s.Pop()
		}(w)
	}
	wg.Wait()

	fmt.Println(s.Len())
	// Output:
	// 0
}

// ExampleQueue: guardless FIFO use.
func ExampleQueue() {
	d, _ := wfe.NewDomain[string](wfe.Options{Capacity: 1 << 10})
	q := wfe.NewQueue[string](d)

	q.Enqueue("first")
	q.Enqueue("second")
	for {
		v, ok := q.Dequeue()
		if !ok {
			break
		}
		fmt.Println(v)
	}
	// Output:
	// first
	// second
}

// ExampleMap: guardless hash-map use.
func ExampleMap() {
	d, _ := wfe.NewDomain[string](wfe.Options{Capacity: 1 << 10})
	m := wfe.NewMap[string](d, 16)

	m.Put(1, "one")
	m.Insert(2, "two")
	if v, ok := m.Get(1); ok {
		fmt.Println(v)
	}
	m.Delete(1)
	_, ok := m.Get(1)
	fmt.Println("deleted:", !ok)
	// Output:
	// one
	// deleted: true
}

// ExampleWFQueue: the Kogan–Petrank wait-free queue — with the WFE scheme
// every operation, memory reclamation included, completes in a bounded
// number of steps. Values of any type travel through the queue's
// fixed-width helping protocol in private boxed blocks.
func ExampleWFQueue() {
	d, _ := wfe.NewDomain[string](wfe.Options{Capacity: 1 << 10})
	q := wfe.NewWFQueue[string](d)

	q.Enqueue("first")
	q.Enqueue("second")
	for {
		v, ok := q.Dequeue()
		if !ok {
			break
		}
		fmt.Println(v)
	}
	// Output:
	// first
	// second
}

// ExampleTurnQueue: the CRTurn wait-free queue. Enqueuers and dequeuers
// announce their operations and helpers complete them in turn order, so
// every call finishes within one full turn regardless of scheduling.
func ExampleTurnQueue() {
	// The turn protocol registers every guard tid, and its claim word
	// holds at most 254 of them — size MaxGuards explicitly rather than
	// inheriting GOMAXPROCS on a huge machine.
	d, _ := wfe.NewDomain[string](wfe.Options{Capacity: 1 << 10, MaxGuards: 4})
	q := wfe.NewTurnQueue[string](d)

	q.Enqueue("first")
	q.Enqueue("second")
	for {
		v, ok := q.Dequeue()
		if !ok {
			break
		}
		fmt.Println(v)
	}
	// Output:
	// first
	// second
}

// ExampleHashMap: Michael's lock-free hash map under its canonical name
// (Map is an alias). Guardless use from any number of goroutines.
func ExampleHashMap() {
	d, _ := wfe.NewDomain[string](wfe.Options{Capacity: 1 << 10})
	m := wfe.NewHashMap[string](d, 16)

	m.Put(1, "one")
	m.Insert(2, "two")
	if v, ok := m.Get(1); ok {
		fmt.Println(v)
	}
	m.Delete(1)
	_, ok := m.Get(1)
	fmt.Println("deleted:", !ok)
	// Output:
	// one
	// deleted: true
}

// ExampleHashMap_TryPut: the Try* variants convert arena exhaustion into
// an error instead of a panic. The arena here is sized far below the key
// range, so once every block backs a live node the emergency-reclamation
// pipeline has nothing to free and TryPut surfaces ErrArenaExhausted —
// the caller's backpressure signal to shed load or free something.
func ExampleHashMap_TryPut() {
	d, _ := wfe.NewDomain[uint64](wfe.Options{
		Scheme:       wfe.WFE,
		Capacity:     64,
		AllocRetries: 2, // trim the stall pipeline: this exhaustion is permanent
		AllocBackoff: time.Microsecond,
	})
	m := wfe.NewHashMap[uint64](d, 16)

	var filled uint64
	for k := uint64(0); ; k++ {
		if err := m.TryPut(k, k); err != nil {
			fmt.Println("exhausted:", errors.Is(err, wfe.ErrArenaExhausted))
			break
		}
		filled++
	}
	fmt.Println("filled to capacity:", filled > 0 && filled <= 64)
	// Output:
	// exhausted: true
	// filled to capacity: true
}

// ExampleHashMap_MultiGet: the batch entry points run a whole burst
// under one guard lease and — on the era, epoch and interval schemes —
// one protection span, with every unlink in the burst retired as a
// single batch. Results are positional: vals[i]/oks[i] answer keys[i],
// so duplicate keys in one burst are fine. Batches amortize overhead,
// not semantics — each item is the same linearizable operation the
// per-op method runs.
func ExampleHashMap_MultiGet() {
	d, _ := wfe.NewDomain[string](wfe.Options{Scheme: wfe.WFE, Capacity: 1 << 10})
	m := wfe.NewHashMap[string](d, 16)

	m.MultiPut([]uint64{1, 2, 3}, []string{"one", "two", "three"})
	vals, oks := m.MultiGet([]uint64{2, 7, 1})
	for i, v := range vals {
		fmt.Println(v, oks[i])
	}
	oks = m.MultiDelete([]uint64{1, 2, 3, 4})
	fmt.Println("deleted:", oks)
	// Output:
	// two true
	//  false
	// one true
	// deleted: [true true true false]
}

// ExampleTree: the Natarajan–Mittal external binary search tree. Keys are
// ordered uint64s up to TreeKeyMax; values any T.
func ExampleTree() {
	d, _ := wfe.NewDomain[string](wfe.Options{Capacity: 1 << 10})
	t := wfe.NewTree[string](d)

	t.Insert(2, "two")
	t.Insert(1, "one")
	t.Insert(3, "three")
	if v, ok := t.Get(2); ok {
		fmt.Println(v)
	}
	t.Delete(2)
	_, ok := t.Get(2)
	fmt.Println("deleted:", !ok)
	fmt.Println("len:", t.Len())
	// Output:
	// two
	// deleted: true
	// len: 2
}

// ExampleDomain_Pin hoists the guardless path's per-operation lease out of
// a loop: Pin once, run the batch through the Guarded variants, Unpin. The
// guard returns to the lease cache, not the pool, so the next Pin on this
// P is nearly free.
func ExampleDomain_Pin() {
	d, _ := wfe.NewDomain[int](wfe.Options{Capacity: 1 << 12})
	s := wfe.NewStack[int](d)

	g := d.Pin()
	for i := 0; i < 1000; i++ {
		s.PushGuarded(g, i)
		s.PopGuarded(g)
	}
	d.Unpin(g)

	t := d.Telemetry()
	fmt.Println("ops amortized one lease:", t.GuardCacheMisses <= 1)
	// Output:
	// ops amortized one lease: true
}

// ExampleDomain_AcquireGuard blocks until a guard frees instead of
// panicking (Guard) or failing (TryGuard) — the right acquisition path
// when goroutines outnumber MaxGuards and hold guards for long stretches.
func ExampleDomain_AcquireGuard() {
	d, _ := wfe.NewDomain[int](wfe.Options{Capacity: 256, MaxGuards: 1})
	s := wfe.NewStack[int](d)

	g, err := d.AcquireGuard(context.Background())
	if err != nil {
		panic(err) // only a done context errs
	}

	done := make(chan int)
	go func() {
		// Parks until the first goroutine releases its guard.
		g2, _ := d.AcquireGuard(context.Background())
		defer g2.Release()
		v, _ := s.PopGuarded(g2)
		done <- v
	}()

	s.PushGuarded(g, 7)
	g.Release() // hands off to the parked acquirer
	fmt.Println(<-done)
	// Output:
	// 7
}

// ExampleGuard builds a minimal custom structure — a single protected
// cell with copy-on-write updates — directly on Guard primitives,
// following the paper's operation shape: Begin, Protect, Retire, End.
func ExampleGuard() {
	d, _ := wfe.NewDomain[int](wfe.Options{Capacity: 64, MaxGuards: 1})
	g := d.Guard()
	defer g.Release()

	var cell wfe.Atomic[int] // structure root holding a Ref[int]

	// Publish an initial value.
	g.Begin()
	cell.Store(g.Alloc(1))
	g.End()

	// Copy-on-write increment: protect, read, swap, retire.
	for {
		g.Begin()
		old := g.Protect(&cell, 0)
		next := g.Alloc(g.Value(old) + 41)
		if cell.CompareAndSwap(old, next) {
			g.Retire(old)
			g.End()
			break
		}
		g.Dealloc(next) // lost the race; next was never published
		g.End()
	}

	g.Begin()
	fmt.Println(g.Value(g.Protect(&cell, 0)))
	g.End()
	// Output:
	// 42
}
