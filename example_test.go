package wfe_test

import (
	"fmt"

	"wfe"
)

// ExampleDomain shows the whole public API in one sitting: build a Domain
// over a reclamation scheme, acquire a Guard per goroutine, and run typed
// structures on it. Swapping wfe.WFE for any other SchemeKind changes the
// reclamation algorithm, not a line of data-structure code — the
// "universal" in universal memory reclamation.
func ExampleDomain() {
	d, err := wfe.NewDomain[string](wfe.Options{
		Scheme:    wfe.WFE, // or HE, HP, EBR, TwoGEIBR, Leak, WFEIBR
		Capacity:  1024,    // blocks in the arena
		MaxGuards: 2,
	})
	if err != nil {
		panic(err)
	}

	g := d.Guard() // one per goroutine
	defer g.Release()

	s := wfe.NewStack[string](d)
	s.Push(g, "world")
	s.Push(g, "hello")
	for {
		v, ok := s.Pop(g)
		if !ok {
			break
		}
		fmt.Println(v)
	}

	m := wfe.NewMap[string](d, 16)
	m.Put(g, 42, "answer")
	if v, ok := m.Get(g, 42); ok {
		fmt.Println(v)
	}

	fmt.Println("unreclaimed:", d.Unreclaimed() <= 2)
	// Output:
	// hello
	// world
	// answer
	// unreclaimed: true
}

// ExampleGuard builds a minimal custom structure — a single protected
// cell with copy-on-write updates — directly on Guard primitives,
// following the paper's operation shape: Begin, Protect, Retire, End.
func ExampleGuard() {
	d, _ := wfe.NewDomain[int](wfe.Options{Capacity: 64, MaxGuards: 1})
	g := d.Guard()
	defer g.Release()

	var cell wfe.Atomic[int] // structure root holding a Ref[int]

	// Publish an initial value.
	g.Begin()
	cell.Store(g.Alloc(1))
	g.End()

	// Copy-on-write increment: protect, read, swap, retire.
	for {
		g.Begin()
		old := g.Protect(&cell, 0)
		next := g.Alloc(g.Value(old) + 41)
		if cell.CompareAndSwap(old, next) {
			g.Retire(old)
			g.End()
			break
		}
		g.Dealloc(next) // lost the race; next was never published
		g.End()
	}

	g.Begin()
	fmt.Println(g.Value(g.Protect(&cell, 0)))
	g.End()
	// Output:
	// 42
}
