// Failpoint-overhead benchmarks and the CI guard asserting the acceptance
// bar: a disarmed failpoint site costs at most 5% on the guardless HashMap
// workload — the hot path pays one atomic pointer load per site and
// nothing more. The armed benchmark measures the evalSlow path with a
// trigger that never fires (AfterN far beyond reach), the worst case a
// production binary could see with injection compiled in but dormant.
// The benchmarks run in any `go test -bench` sweep; the guard test is
// env-gated (WFE_OVERHEAD_GUARD=1) because it needs a quiet machine to be
// a fair judge, and CI runs it on a dedicated step.
package wfe_test

import (
	"os"
	"testing"

	"wfe"
	"wfe/internal/failpoint"
)

// failpointHashMapChurn is the measured workload: the same 50% insert /
// 50% delete mix over 512 keys as the tracing guard — every insert
// crosses the arena-alloc site, every delete's reclamation crosses
// retirer-scan, so the per-site Eval cost is on the hot path throughout.
func failpointHashMapChurn(b *testing.B, armed bool) {
	b.Helper()
	if armed {
		site, ok := failpoint.Lookup("arena-alloc")
		if !ok {
			b.Fatal("arena-alloc site not registered")
		}
		// AfterN beyond any reachable hit count: the armed evaluation path
		// runs on every alloc but the trigger never fires.
		site.Arm(failpoint.Trigger{AfterN: 1 << 62})
		b.Cleanup(failpoint.DisarmAll)
	}
	d, err := wfe.NewDomain[uint64](wfe.Options{
		Scheme:   wfe.WFE,
		Capacity: 1 << 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	m := wfe.NewHashMap[uint64](d, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i) & 511
		if i&1 == 0 {
			m.Insert(k, uint64(i))
		} else {
			m.Delete(k)
		}
	}
}

func BenchmarkFailpointsDisarmed(b *testing.B) { failpointHashMapChurn(b, false) }
func BenchmarkFailpointsArmed(b *testing.B)    { failpointHashMapChurn(b, true) }

// TestFailpointOverheadGuard is the CI-asserted bar: arming a
// never-firing trigger on the alloc site must not slow the workload past
// 1.05x the disarmed run — the sites stay cheap enough to ship. As with
// the tracing guard, each side takes the best of several attempts so a
// noisy neighbour cannot fail the build; only a real regression slows
// every attempt.
func TestFailpointOverheadGuard(t *testing.T) {
	if os.Getenv("WFE_OVERHEAD_GUARD") != "1" {
		t.Skip("set WFE_OVERHEAD_GUARD=1 to run the failpoint overhead guard")
	}
	const attempts = 4
	best := func(armed bool) float64 {
		bestNs := 0.0
		for i := 0; i < attempts; i++ {
			r := testing.Benchmark(func(b *testing.B) { failpointHashMapChurn(b, armed) })
			ns := float64(r.NsPerOp())
			if bestNs == 0 || ns < bestNs {
				bestNs = ns
			}
		}
		return bestNs
	}
	disarmed := best(false)
	armed := best(true)
	ratio := armed / disarmed
	t.Logf("failpoints disarmed %.1f ns/op, armed %.1f ns/op, ratio %.3f", disarmed, armed, ratio)
	if ratio > 1.05 {
		t.Fatalf("failpoint overhead %.1f%% exceeds the 5%% bar (disarmed %.1f ns/op, armed %.1f ns/op)",
			(ratio-1)*100, disarmed, armed)
	}
}
