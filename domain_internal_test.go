package wfe

import "testing"

// TestFreedValuesDropped checks the value-slab lifecycle: the arena free
// hook must zero a block's value when the block is recycled, so the number
// of live values in the slab never exceeds the number of live blocks —
// without it, a drained structure pins up to Capacity dead payloads as GC
// roots.
func TestFreedValuesDropped(t *testing.T) {
	d, err := NewDomain[string](Options{
		Capacity:    1 << 12,
		MaxGuards:   1,
		EraFreq:     8,
		CleanupFreq: 4,
		Debug:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := d.Guard()
	defer g.Release()
	s := NewStack[string](d)
	for i := 0; i < 2000; i++ {
		s.PushGuarded(g, "payload")
		s.PopGuarded(g)
	}

	tel := d.Telemetry()
	if tel.Frees == 0 {
		t.Fatal("churn produced no frees; the test exercised nothing")
	}
	nonzero := uint64(0)
	for _, v := range d.vals {
		if v != "" {
			nonzero++
		}
	}
	// Live blocks (including retired-but-not-yet-freed) may hold values;
	// freed blocks must not.
	if nonzero > tel.InUse {
		t.Fatalf("%d values alive in the slab but only %d blocks in use (%d freed blocks kept their payloads)",
			nonzero, tel.InUse, nonzero-tel.InUse)
	}
}
