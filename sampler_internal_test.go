package wfe

// White-box tests for the Sampler's circular history, EWMA seeding and
// auto-switch hysteresis — the pieces with deterministic synthetic
// drivers. The black-box sampler behaviour (real Domain, real goroutine)
// lives in observability_test.go.

import (
	"testing"
	"time"

	"wfe/advisor"
)

// syntheticRows returns a sample source yielding rows with Allocs
// counting up by step per call — enough signal to tell rows apart and to
// derive an exact constant rate.
func syntheticRows(step uint64) func() TelemetrySample {
	var n uint64
	return func() TelemetrySample {
		n += step
		return TelemetrySample{Allocs: n, Frees: n, InUse: 0}
	}
}

// TestSamplerHistoryWrapsOldestFirst pins the circular buffer's public
// contract: once more ticks than History have run, History() returns
// exactly the last History rows, oldest first, with no seam at the wrap
// point.
func TestSamplerHistoryWrapsOldestFirst(t *testing.T) {
	const hist, ticks = 4, 11
	s := newSampler(syntheticRows(1), SamplerConfig{History: hist})
	base := time.Unix(0, 0)
	for i := 0; i < ticks; i++ {
		s.tick(base.Add(time.Duration(i) * time.Second))
	}
	got := s.History()
	if len(got) != hist {
		t.Fatalf("History() length %d, want %d", len(got), hist)
	}
	for i, row := range got {
		want := uint64(ticks - hist + i + 1) // rows are 1-based in Allocs
		if row.Allocs != want {
			t.Fatalf("History()[%d].Allocs = %d, want %d (wraparound misordered: %+v)", i, row.Allocs, want, got)
		}
	}
	if s.Ticks() != ticks {
		t.Fatalf("Ticks() = %d, want %d", s.Ticks(), ticks)
	}
}

// TestSamplerEWMASeedsFromFirstRate pins the seeding fix: with a
// perfectly constant synthetic rate, every tick's EWMA must equal that
// rate exactly. Before the fix the first blend mixed the measured rate
// with the zero initial value, reporting alpha x rate until enough ticks
// washed the zero out.
func TestSamplerEWMASeedsFromFirstRate(t *testing.T) {
	const step = 1000 // allocs per second at 1s tick spacing
	s := newSampler(syntheticRows(step), SamplerConfig{})
	base := time.Unix(0, 0)
	s.tick(base)
	for i := 1; i <= 6; i++ {
		s.tick(base.Add(time.Duration(i) * time.Second))
		r := s.Rates()
		if r.AllocsPerSec != step {
			t.Fatalf("tick %d: AllocsPerSec = %g, want exactly %d (EWMA blended from zero)", i, r.AllocsPerSec, step)
		}
		if r.FreesPerSec != step {
			t.Fatalf("tick %d: FreesPerSec = %g, want exactly %d", i, r.FreesPerSec, step)
		}
	}
}

// rec builds a minimal recommendation naming a scheme.
func rec(scheme string) advisor.Recommendation {
	return advisor.Recommendation{Scheme: scheme}
}

// autoSampler builds a stopped sampler with the hysteresis armed and the
// switch hooks stubbed, recording every fired switch.
func autoSampler(after int, current string) (*Sampler, *[]string) {
	fired := &[]string{}
	s := newSampler(func() TelemetrySample { return TelemetrySample{} },
		SamplerConfig{AutoSwitch: true, AutoSwitchAfter: after})
	cur := current
	s.current = func() string { return cur }
	s.switchTo = func(name string) error {
		*fired = append(*fired, name)
		cur = name // a real Switch changes the current scheme
		return nil
	}
	return s, fired
}

// TestAutoSwitchHysteresisFiresAfterStreak pins the basic trigger: the
// same non-current verdict AutoSwitchAfter ticks in a row fires exactly
// one switch, and the streak resets afterwards.
func TestAutoSwitchHysteresisFiresAfterStreak(t *testing.T) {
	s, fired := autoSampler(3, "EBR")
	for i := 0; i < 2; i++ {
		s.maybeSwitch(rec("WFE"))
	}
	if len(*fired) != 0 {
		t.Fatalf("switch fired after only 2/3 verdicts: %v", *fired)
	}
	s.maybeSwitch(rec("WFE"))
	if len(*fired) != 1 || (*fired)[0] != "WFE" {
		t.Fatalf("fired = %v, want exactly [WFE]", *fired)
	}
	// The recommendation now matches the (switched) current scheme: no
	// further fires however long it persists.
	for i := 0; i < 10; i++ {
		s.maybeSwitch(rec("WFE"))
	}
	if len(*fired) != 1 {
		t.Fatalf("re-fired on a now-current recommendation: %v", *fired)
	}
}

// TestAutoSwitchHysteresisNeverFiresOnFlap is the satellite's flap test:
// a synthetic trajectory alternating verdicts tick over tick must never
// accumulate a streak, however long it runs.
func TestAutoSwitchHysteresisNeverFiresOnFlap(t *testing.T) {
	s, fired := autoSampler(3, "EBR")
	for i := 0; i < 100; i++ {
		if i%2 == 0 {
			s.maybeSwitch(rec("WFE"))
		} else {
			s.maybeSwitch(rec("HE"))
		}
	}
	if len(*fired) != 0 {
		t.Fatalf("flapping advisor fired %d switches: %v", len(*fired), *fired)
	}
}

// TestAutoSwitchHysteresisResetOnCurrent pins the reset rule: a verdict
// for the current scheme clears a partial streak, so W,W,current,W,W,W
// fires only at the end of the fresh three-streak.
func TestAutoSwitchHysteresisResetOnCurrent(t *testing.T) {
	s, fired := autoSampler(3, "EBR")
	s.maybeSwitch(rec("WFE"))
	s.maybeSwitch(rec("WFE"))
	s.maybeSwitch(rec("EBR")) // back to current: streak must reset
	s.maybeSwitch(rec("WFE"))
	s.maybeSwitch(rec("WFE"))
	if len(*fired) != 0 {
		t.Fatalf("fired across a reset streak: %v", *fired)
	}
	s.maybeSwitch(rec("WFE"))
	if len(*fired) != 1 {
		t.Fatalf("fired = %v, want one switch after the fresh streak", *fired)
	}
}

// TestAutoSwitchDisabledWithoutHooks pins the safety default: a sampler
// without the Domain's switch hooks (or without AutoSwitch) never acts,
// whatever the advisor says.
func TestAutoSwitchDisabledWithoutHooks(t *testing.T) {
	s := newSampler(func() TelemetrySample { return TelemetrySample{} }, SamplerConfig{})
	for i := 0; i < 10; i++ {
		s.maybeSwitch(rec("WFE")) // must not panic on nil hooks
	}
	if s.autoAfter != 0 {
		t.Fatalf("autoAfter = %d without AutoSwitch, want 0", s.autoAfter)
	}
}

// TestAutoSwitchWiringDrivesDomainSwitch pins the StartSampler wiring
// end to end: a Domain built with AutoSwitch hands its sampler hooks
// that really switch the scheme. The sampler goroutine is stopped first
// so the hysteresis can be driven deterministically by hand.
func TestAutoSwitchWiringDrivesDomainSwitch(t *testing.T) {
	d, err := NewDomain[int](Options{
		Capacity:        1 << 12,
		SampleEvery:     time.Hour, // auto-started but effectively inert
		AutoSwitch:      true,
		AutoSwitchAfter: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	s := d.Sampler()
	if s == nil {
		t.Fatal("SampleEvery did not auto-start a sampler")
	}
	s.Stop()
	if s.switchTo == nil || s.current == nil {
		t.Fatal("AutoSwitch did not wire the sampler's switch hooks")
	}
	if got := s.current(); got != "WFE" {
		t.Fatalf("current() = %q, want WFE", got)
	}
	s.maybeSwitch(rec("EBR"))
	if d.Scheme() != WFE {
		t.Fatal("switched after 1/2 verdicts")
	}
	s.maybeSwitch(rec("EBR"))
	if d.Scheme() != EBR {
		t.Fatalf("Scheme() = %v after the streak completed, want EBR", d.Scheme())
	}
	if n := d.Telemetry().SchemeSwitches; n != 1 {
		t.Fatalf("SchemeSwitches = %d, want 1", n)
	}
}

// BenchmarkSamplerTick measures the steady-state tick with a full
// history ring — the path the circular buffer converted from an
// O(History) memmove per tick to O(1) bookkeeping (the advisor window
// re-derivation dominates what remains).
func BenchmarkSamplerTick(b *testing.B) {
	s := newSampler(syntheticRows(100), SamplerConfig{History: 600})
	base := time.Unix(0, 0)
	for i := 0; i < 600; i++ { // fill the ring so every tick wraps
		s.tick(base.Add(time.Duration(i) * time.Millisecond))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.tick(base.Add(time.Duration(600+i) * time.Millisecond))
	}
}
