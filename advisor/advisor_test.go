package advisor

import (
	"strings"
	"testing"
)

// traj builds a trajectory from a backlog series, with scans advancing
// every tick and optional per-tick park increments.
func traj(backlogs []int, parksPerTick uint64) []Sample {
	samples := make([]Sample, len(backlogs))
	var scanBlocks, parks uint64
	for i, b := range backlogs {
		scanBlocks += uint64(b)
		parks += parksPerTick
		samples[i] = Sample{
			Tick:        i,
			Unreclaimed: b,
			ScanScans:   uint64(i + 1),
			ScanBlocks:  scanBlocks,
			P99Steps:    1,
			GuardParks:  parks,
		}
	}
	return samples
}

// ramp appends n ticks growing from start by step each tick.
func ramp(dst []int, start, step, n int) []int {
	for i := 0; i < n; i++ {
		dst = append(dst, start+step*(i+1))
	}
	return dst
}

func flat(dst []int, level, n int) []int {
	for i := 0; i < n; i++ {
		dst = append(dst, level)
	}
	return dst
}

func TestAnalyzeFeatures(t *testing.T) {
	// 10 flat ticks at 100, then a 10-tick ramp +64/tick, then flat again.
	backlogs := flat(nil, 100, 10)
	backlogs = ramp(backlogs, 100, 64, 10)
	backlogs = flat(backlogs, 100, 10)
	p := Analyze(traj(backlogs, 0))
	if p.Ticks != 30 {
		t.Fatalf("Ticks = %d, want 30", p.Ticks)
	}
	if p.Highwater != 100+64*10 {
		t.Errorf("Highwater = %d, want %d", p.Highwater, 100+64*10)
	}
	if p.Final != 100 {
		t.Errorf("Final = %d, want 100", p.Final)
	}
	if p.Median != 100 {
		t.Errorf("Median = %d, want 100", p.Median)
	}
	// The ramp is 10 strictly-growing steps; the streak counter measures
	// run length in steps from the last non-growing tick.
	if p.GrowthStreak < 9 {
		t.Errorf("GrowthStreak = %d, want >= 9", p.GrowthStreak)
	}
	if p.GrowthAmount < 64*9 {
		t.Errorf("GrowthAmount = %d, want >= %d", p.GrowthAmount, 64*9)
	}
	if !p.RetireActivity {
		t.Error("RetireActivity = false, want true")
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	p := Analyze(nil)
	if p.Ticks != 0 || p.Highwater != 0 || p.RetireActivity {
		t.Fatalf("Analyze(nil) = %+v, want zero profile", p)
	}
}

func TestAdviseTable(t *testing.T) {
	// Cooperative: small oscillating backlog, scans running, no parks.
	cooperative := func() []Sample {
		var backlogs []int
		for i := 0; i < 60; i++ {
			backlogs = append(backlogs, 80+(i%4)*10)
		}
		return traj(backlogs, 0)
	}
	// Stalled reader: quiet, then a long sustained ramp, then drain.
	stalled := func() []Sample {
		backlogs := flat(nil, 64, 10)
		backlogs = ramp(backlogs, 64, 96, 30)
		backlogs = flat(backlogs, 64, 10)
		return traj(backlogs, 0)
	}
	// Bursty: low median with four short spikes that drain each time. Each
	// spike ramps only 4 ticks (< StallStreakTicks) so it can't read as a
	// sustained stall.
	bursty := func() []Sample {
		var backlogs []int
		for spike := 0; spike < 4; spike++ {
			backlogs = flat(backlogs, 40, 8)
			backlogs = ramp(backlogs, 40, 150, 4) // peaks at 640 >> max(3*median, floor)
			backlogs = append(backlogs, 40)
		}
		backlogs = flat(backlogs, 40, 8)
		return traj(backlogs, 0)
	}
	// Oversubscribed: cooperative backlog shape but heavy park pressure.
	oversubscribed := func() []Sample {
		var backlogs []int
		for i := 0; i < 60; i++ {
			backlogs = append(backlogs, 80+(i%4)*10)
		}
		return traj(backlogs, 2)
	}
	// Idle: no retires ever happened.
	idle := func() []Sample {
		samples := make([]Sample, 20)
		for i := range samples {
			samples[i] = Sample{Tick: i}
		}
		return samples
	}

	cases := []struct {
		name    string
		samples []Sample
		want    string
		reason  string // substring expected in the cited reasons
	}{
		{"cooperative", cooperative(), "EBR", "cooperative schedule"},
		{"stalled_reader", stalled(), "WFE", "stalled-reader signature"},
		{"bursty", bursty(), "HE", "intermittent stalls"},
		{"oversubscribed", oversubscribed(), "HE", "oversubscription"},
		{"idle", idle(), "EBR", "no retire activity"},
		{"empty", nil, "EBR", "no retire activity"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := Advise(tc.samples)
			if rec.Scheme != tc.want {
				t.Fatalf("Advise = %q (profile %+v), want %q", rec.Scheme, rec.Profile, tc.want)
			}
			if len(rec.Reasons) == 0 || !strings.Contains(strings.Join(rec.Reasons, " "), tc.reason) {
				t.Errorf("Reasons %q do not mention %q", rec.Reasons, tc.reason)
			}
		})
	}
}

func TestAdviseIsDeterministic(t *testing.T) {
	backlogs := flat(nil, 64, 10)
	backlogs = ramp(backlogs, 64, 96, 30)
	samples := traj(backlogs, 1)
	a := Advise(samples)
	for i := 0; i < 5; i++ {
		b := Advise(samples)
		if a.Scheme != b.Scheme || a.Profile != b.Profile {
			t.Fatalf("Advise not deterministic: %+v vs %+v", a, b)
		}
	}
}

func TestAdviseSweep(t *testing.T) {
	// Two groups. In both, Leak is fastest but excluded; EBR is fast but
	// its highwater blows the 8x-of-best bound; WFE is the fastest
	// admissible scheme.
	points := []SweepPoint{
		{"fig3", "Leak", 16, 90.0, 500000},
		{"fig3", "EBR", 16, 80.0, 200000},
		{"fig3", "WFE", 16, 60.0, 2000},
		{"fig3", "HE", 16, 55.0, 1500},
		{"fig4", "Leak", 16, 70.0, 400000},
		{"fig4", "EBR", 16, 65.0, 300000},
		{"fig4", "WFE", 16, 50.0, 2500},
		{"fig4", "HE", 16, 45.0, 1800},
	}
	rec := AdviseSweep(points)
	if rec.Scheme != "WFE" {
		t.Fatalf("AdviseSweep = %q, want WFE (reasons %q)", rec.Scheme, rec.Reasons)
	}

	// When every scheme is bounded, the fastest wins outright.
	points = []SweepPoint{
		{"fig3", "EBR", 8, 100.0, 900},
		{"fig3", "WFE", 8, 70.0, 800},
		{"fig3", "HE", 8, 60.0, 700},
	}
	rec = AdviseSweep(points)
	if rec.Scheme != "EBR" {
		t.Fatalf("AdviseSweep = %q, want EBR (all bounded, EBR fastest)", rec.Scheme)
	}

	// Empty input defaults to WFE.
	if rec := AdviseSweep(nil); rec.Scheme != "WFE" {
		t.Fatalf("AdviseSweep(nil) = %q, want WFE", rec.Scheme)
	}
}

func TestAdviseSweepNeverRecommendsLeak(t *testing.T) {
	points := []SweepPoint{
		{"fig3", "Leak", 16, 90.0, 100},
		{"fig3", "WFE", 16, 10.0, 2000},
	}
	if rec := AdviseSweep(points); rec.Scheme == "Leak" {
		t.Fatalf("AdviseSweep recommended the Leak baseline")
	}
}
