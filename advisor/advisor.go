// Package advisor is the telemetry-driven scheme advisor: a pure decision
// kernel that reads a recorded telemetry trajectory and recommends the
// reclamation scheme whose robustness/throughput trade-off fits the
// observed schedule. It is the first half of the roadmap's adaptive
// runtime — the detector that live scheme switching would consume; today
// its recommendation is applied by configuring the next Domain.
//
// The paper's Table 1 frames the choice this kernel automates: EBR has the
// cheapest reads but one stalled reader stops all reclamation; HP/HE-class
// schemes bound memory under any schedule at some read cost; WFE keeps the
// era-class read cost and makes every reclamation operation wait-free. The
// advisor reads the schedule's hostility off the trajectory — sustained
// backlog growth while cleanup scans run is a stalled reader, repeated
// transient spikes are intermittent stalls, guard parks are
// oversubscription — and escalates accordingly:
//
//   - a cooperative schedule (no stall signature, no park pressure) keeps
//     EBR's speed;
//   - intermittent hostility (bursty stall spikes, oversubscription churn
//     that preempts operations mid-flight) moves to HE: bounded memory,
//     era-class reads;
//   - a sustained stall signature moves to WFE: bounded memory and a
//     wait-free bound on every reclamation step, so the stalled schedule
//     cannot starve reclamation however long it lasts.
//
// The kernel is pure — plain data in, a Recommendation out, no clocks, no
// goroutines — so it is equally usable on a live Domain's samples, on an
// internal/chaos trajectory, or on a deserialized artifact (cmd/wfeadvise
// reads both wfe-chaos/v1 and wfe-bench/v1 files).
package advisor

import (
	"fmt"
	"sort"
)

// A Sample is one tick of a recorded trajectory: the Domain's cumulative
// telemetry counters at that tick (wfe.Domain.Sample, or the matching
// fields of a wfe-chaos/v1 tick). Cumulative fields must be monotone
// across the slice; the kernel works on their deltas.
type Sample struct {
	Tick        int    `json:"tick"`
	Unreclaimed int    `json:"unreclaimed"` // retired-but-not-recycled backlog at this tick
	ScanScans   uint64 `json:"scan_scans"`  // cumulative cleanup scans
	ScanBlocks  uint64 `json:"scan_blocks"` // cumulative retired blocks examined by scans
	P99Steps    uint64 `json:"p99_steps"`   // p99 GetProtected step count so far
	GuardParks  uint64 `json:"guard_parks"` // cumulative parked guard acquisitions

	// Backpressure columns (zero on trajectories recorded before the
	// emergency-reclamation pipeline existed, which disables the
	// exhaustion-pressure signature on them).
	Pressure       float64 `json:"pressure,omitempty"`        // InUse/Capacity arena occupancy fraction
	EmergencyScans uint64  `json:"emergency_scans,omitempty"` // cumulative out-of-cadence scans forced by alloc stalls
}

// Decision thresholds. They are exported constants rather than knobs: the
// canned chaos scenarios pin the classifier's behaviour in tests, and a
// deployment that disagrees with a threshold should record a longer
// trajectory, not tune the classifier until it agrees.
const (
	// StallStreakTicks is the sustained-growth length that reads as a
	// stalled reader: this many consecutive ticks of strictly growing
	// backlog, with cleanup scans running throughout (scans that run but
	// free nothing mean reclamation is blocked, not merely lazy).
	StallStreakTicks = 8
	// StallMinGrowth is the net backlog growth (in blocks) the streak must
	// accumulate before it counts — a floor against classifying slow drift
	// on a tiny workload as a stall.
	StallMinGrowth = 256
	// SpikeEpisodes is how many distinct transient backlog excursions read
	// as intermittent stalling (bursty preemption) rather than noise.
	SpikeEpisodes = 3
	// SpikeFactor scales the median backlog into the excursion threshold:
	// a tick above SpikeFactor×median (with a SpikeFloor absolute floor)
	// is inside a spike; the spike ends when the backlog returns below.
	SpikeFactor = 3
	// SpikeFloor is the absolute excursion floor in blocks, so a
	// near-idle trajectory's wobble never reads as spikes.
	SpikeFloor = 192
	// ParkPressure is the parks-per-tick rate that reads as guard
	// oversubscription: goroutines outnumbering guards enough to park
	// regularly will also be preempted mid-operation regularly, which is
	// exactly the schedule EBR's epoch cannot tolerate.
	ParkPressure = 0.5
	// PressureThreshold is the arena-occupancy fraction above which a
	// tick counts toward the exhaustion-pressure signature: the workload
	// is living at the edge of the arena and every retired block the
	// scheme withholds is a future allocation stall.
	PressureThreshold = 0.9
	// PressureStreakTicks is how many consecutive above-threshold ticks
	// (with emergency scans actually firing) read as sustained exhaustion
	// pressure rather than a transient spike the pipeline absorbed.
	PressureStreakTicks = 4
)

// A Profile is the feature vector Analyze computes from a trajectory —
// the evidence a Recommendation cites.
type Profile struct {
	Ticks          int     `json:"ticks"`
	Highwater      int     `json:"highwater"`       // max backlog over the trajectory
	HighwaterTick  int     `json:"highwater_tick"`  // tick index of the max
	Final          int     `json:"final"`           // backlog at the last tick
	Median         int     `json:"median"`          // median per-tick backlog
	GrowthStreak   int     `json:"growth_streak"`   // longest strictly-growing backlog run with scans active
	GrowthAmount   int     `json:"growth_amount"`   // net backlog added by that run
	Spikes         int     `json:"spikes"`          // transient excursions above the spike threshold
	ParksPerTick   float64 `json:"parks_per_tick"`  // guard-park rate across the trajectory
	P99Steps       uint64  `json:"p99_steps"`       // final p99 protect-loop step count
	ScansRan       uint64  `json:"scans_ran"`       // cleanup scans over the trajectory
	RetireActivity bool    `json:"retire_activity"` // any retire-side work at all
	PressureStreak int     `json:"pressure_streak"` // longest run of ticks above PressureThreshold occupancy
	PressurePeak   float64 `json:"pressure_peak"`   // max arena occupancy fraction over the trajectory
	EmergencyScans uint64  `json:"emergency_scans"` // out-of-cadence scans forced over the trajectory
}

// A Recommendation names the scheme (by its wfe legend name) the observed
// trajectory calls for, with the evidence that led there.
type Recommendation struct {
	Scheme  string   `json:"scheme"`
	Reasons []string `json:"reasons"`
	Profile Profile  `json:"profile"`
}

// Analyze computes the trajectory's feature profile: backlog order
// statistics, the longest scans-active growth streak, transient spike
// episodes and the guard-park rate. It is deterministic in the samples.
func Analyze(samples []Sample) Profile {
	p := Profile{Ticks: len(samples)}
	if len(samples) == 0 {
		return p
	}
	first, last := samples[0], samples[len(samples)-1]
	p.Final = last.Unreclaimed
	p.P99Steps = last.P99Steps
	p.ScansRan = last.ScanScans - first.ScanScans
	if n := len(samples); n > 1 {
		p.ParksPerTick = float64(last.GuardParks-first.GuardParks) / float64(n-1)
	}
	p.RetireActivity = last.ScanBlocks > first.ScanBlocks || p.Final > 0
	p.EmergencyScans = last.EmergencyScans - first.EmergencyScans

	// Longest run of consecutive ticks at or above the exhaustion
	// threshold: the workload living against the arena ceiling.
	streak := 0
	for _, s := range samples {
		if s.Pressure > p.PressurePeak {
			p.PressurePeak = s.Pressure
		}
		if s.Pressure >= PressureThreshold {
			streak++
			if streak > p.PressureStreak {
				p.PressureStreak = streak
			}
		} else {
			streak = 0
		}
	}

	backlogs := make([]int, len(samples))
	for i, s := range samples {
		backlogs[i] = s.Unreclaimed
		if s.Unreclaimed > p.Highwater {
			p.Highwater, p.HighwaterTick = s.Unreclaimed, s.Tick
		}
		if s.Unreclaimed > 0 {
			p.RetireActivity = true
		}
	}
	sorted := append([]int(nil), backlogs...)
	sort.Ints(sorted)
	p.Median = sorted[len(sorted)/2]

	// Longest strictly-growing backlog run during which cleanup scans
	// kept running: scans that run without shrinking the backlog are the
	// signature of blocked (not lazy) reclamation.
	streakStart := 0
	for i := 1; i < len(samples); i++ {
		if samples[i].Unreclaimed <= samples[i-1].Unreclaimed {
			streakStart = i
			continue
		}
		length := i - streakStart
		growth := samples[i].Unreclaimed - samples[streakStart].Unreclaimed
		scansActive := samples[i].ScanScans > samples[streakStart].ScanScans
		if scansActive && length > p.GrowthStreak {
			p.GrowthStreak, p.GrowthAmount = length, growth
		}
	}

	// Transient excursions: maximal runs above the spike threshold that
	// return below it (an excursion still open at the last tick counts —
	// the trajectory may simply end mid-spike).
	threshold := SpikeFactor * p.Median
	if threshold < SpikeFloor {
		threshold = SpikeFloor
	}
	inSpike := false
	for _, b := range backlogs {
		if b > threshold && !inSpike {
			p.Spikes++
			inSpike = true
		} else if b <= threshold {
			inSpike = false
		}
	}
	return p
}

// Advise analyzes the trajectory and recommends a scheme per the observed
// stall/backlog profile. The escalation ladder (cheapest scheme the
// schedule tolerates): EBR when readers never stall, HE under intermittent
// hostility, WFE under a sustained stall signature.
func Advise(samples []Sample) Recommendation {
	p := Analyze(samples)
	rec := Recommendation{Profile: p}
	switch {
	case p.PressureStreak >= PressureStreakTicks && p.EmergencyScans > 0:
		rec.Scheme = "HP"
		rec.Reasons = append(rec.Reasons,
			fmt.Sprintf("exhaustion pressure: arena occupancy held above %.0f%% for %d consecutive ticks (peak %.0f%%) while %d emergency scans fired — the workload lives against the arena ceiling and every withheld retired block is a future allocation stall",
				PressureThreshold*100, p.PressureStreak, p.PressurePeak*100, p.EmergencyScans),
			"HP keeps the tightest retire backlog of any scheme (per-block identity scans, no era granularity), returning retired blocks soonest when every block counts")
	case !p.RetireActivity:
		rec.Scheme = "EBR"
		rec.Reasons = append(rec.Reasons,
			"no retire activity recorded: reclamation never ran, any scheme is safe; EBR has the cheapest reads")
	case p.GrowthStreak >= StallStreakTicks && p.GrowthAmount >= StallMinGrowth:
		rec.Scheme = "WFE"
		rec.Reasons = append(rec.Reasons,
			fmt.Sprintf("stalled-reader signature: backlog grew for %d consecutive ticks (+%d blocks, highwater %d) while cleanup scans ran — reclamation is blocked by a reservation, and only a bounded scheme caps memory under it",
				p.GrowthStreak, p.GrowthAmount, p.Highwater),
			"WFE keeps era-class read cost and bounds every reclamation step, so however long the stall lasts neither memory nor any thread's progress is hostage to it")
	case p.Spikes >= SpikeEpisodes:
		rec.Scheme = "HE"
		rec.Reasons = append(rec.Reasons,
			fmt.Sprintf("intermittent stalls: %d transient backlog spikes above %d×median (median %d, highwater %d) that drained once each stall lifted",
				p.Spikes, SpikeFactor, p.Median, p.Highwater),
			"HE bounds the backlog during each spike at era-class read cost; the spikes drain, so wait-free helping is not needed")
	case p.ParksPerTick >= ParkPressure:
		rec.Scheme = "HE"
		rec.Reasons = append(rec.Reasons,
			fmt.Sprintf("guard oversubscription: %.1f parks/tick means goroutines regularly outnumber guards and get preempted mid-operation — the schedule EBR's epoch cannot tolerate",
				p.ParksPerTick),
			"HE bounds memory under arbitrary preemption at era-class read cost")
	default:
		rec.Scheme = "EBR"
		rec.Reasons = append(rec.Reasons,
			fmt.Sprintf("cooperative schedule: no sustained backlog growth (longest scans-active streak %d ticks), no spike episodes, %.1f parks/tick — readers never stall, so the epoch always advances",
				p.GrowthStreak, p.ParksPerTick))
	}
	return rec
}

// A SweepPoint is one measured point of a cross-scheme benchmark sweep
// (one wfe-bench/v1 figure result): the same workload measured under a
// named scheme. Where Advise infers the right scheme from one scheme's
// time series, AdviseSweep compares schemes that were actually measured.
type SweepPoint struct {
	Figure         string  `json:"figure"`
	Scheme         string  `json:"scheme"`
	Threads        int     `json:"threads"`
	Mops           float64 `json:"mops"`
	UnreclaimedMax int     `json:"unreclaimed_max"`
}

// Sweep-advisor thresholds.
const (
	// BoundFactor scales the best (smallest) measured backlog highwater
	// into the admissible ceiling: schemes above it bought their
	// throughput with unbounded memory and are disqualified.
	BoundFactor = 8
	// BoundFloor is the absolute ceiling floor in blocks, so measurement
	// jitter between small highwaters never disqualifies anyone.
	BoundFloor = 1024
)

// AdviseSweep recommends a scheme from a measured cross-scheme sweep: per
// (figure, threads) group it admits every non-Leak scheme whose backlog
// highwater stayed within BoundFactor of the group's best, picks the
// fastest admissible scheme, and returns the scheme winning the most
// groups (total throughput breaking ties). The Leak baseline is never
// recommended — it exists to bound what the real schemes pay.
func AdviseSweep(points []SweepPoint) Recommendation {
	type groupKey struct {
		figure  string
		threads int
	}
	groups := map[groupKey][]SweepPoint{}
	for _, pt := range points {
		if pt.Scheme == "Leak" {
			continue
		}
		k := groupKey{pt.Figure, pt.Threads}
		groups[k] = append(groups[k], pt)
	}
	rec := Recommendation{}
	if len(groups) == 0 {
		rec.Scheme = "WFE"
		rec.Reasons = append(rec.Reasons, "no measured points: defaulting to WFE, the bounded scheme with era-class reads")
		return rec
	}
	wins := map[string]int{}
	mops := map[string]float64{}
	for _, pts := range groups {
		bound := pts[0].UnreclaimedMax
		for _, pt := range pts {
			if pt.UnreclaimedMax < bound {
				bound = pt.UnreclaimedMax
			}
		}
		ceiling := bound * BoundFactor
		if ceiling < BoundFloor {
			ceiling = BoundFloor
		}
		best := SweepPoint{Mops: -1}
		for _, pt := range pts {
			if pt.UnreclaimedMax <= ceiling && pt.Mops > best.Mops {
				best = pt
			}
		}
		if best.Mops < 0 {
			continue
		}
		wins[best.Scheme]++
		mops[best.Scheme] += best.Mops
	}
	for scheme := range wins {
		if rec.Scheme == "" || wins[scheme] > wins[rec.Scheme] ||
			(wins[scheme] == wins[rec.Scheme] && mops[scheme] > mops[rec.Scheme]) {
			rec.Scheme = scheme
		}
	}
	if rec.Scheme == "" {
		rec.Scheme = "WFE"
		rec.Reasons = append(rec.Reasons, "no admissible points in any group: defaulting to WFE")
		return rec
	}
	rec.Reasons = append(rec.Reasons,
		fmt.Sprintf("fastest scheme with a bounded backlog (within %d× of the best highwater, floor %d) in %d of %d measured groups",
			BoundFactor, BoundFloor, wins[rec.Scheme], len(groups)))
	return rec
}
