package advisor

// A Monitor streams trajectory samples through the pure Advise kernel and
// reports when the recommendation changes — the live half of the advisor.
// Where Advise judges a complete recorded trajectory, a Monitor is fed one
// Sample per tick (by wfe's background Sampler, or any recorder) and
// re-derives the recommendation over its window after each push; the
// change signal it returns is the trigger ROADMAP names for live scheme
// switching.
//
// A Monitor is not safe for concurrent use; callers that sample from one
// goroutine and read from another (the Sampler) serialize around it.
type Monitor struct {
	window int
	// samples grows by append until it reaches window, then becomes a
	// circular buffer: head marks the oldest entry and each push
	// overwrites in place instead of memmoving the whole window.
	samples []Sample
	head    int
	// scratch is the reusable oldest-first view handed to Advise once the
	// buffer has wrapped (the kernel's streak and spike features depend on
	// sample adjacency, so it must see the window in order).
	scratch []Sample
	rec     Recommendation
	has     bool
}

// NewMonitor creates a Monitor judging the most recent window samples.
// window <= 0 keeps the full stream (exact equivalence with offline
// Advise over the whole trajectory — what the chaos acceptance tests
// pin); a bounded window makes a long-lived Monitor react to the recent
// regime instead of the whole history.
func NewMonitor(window int) *Monitor {
	if window < 0 {
		window = 0
	}
	return &Monitor{window: window}
}

// Window returns the configured window (0 = unbounded).
func (m *Monitor) Window() int { return m.window }

// Len returns the number of samples currently held.
func (m *Monitor) Len() int { return len(m.samples) }

// Push appends one sample, re-runs Advise over the window, and reports
// the updated recommendation plus whether the recommended scheme changed
// — true on the first push and whenever Advise names a different scheme
// than the previous push. The scheme alone is the change signature:
// reason strings and profile numbers embed per-tick measurements and
// would fire on every sample, and a change signal that always fires is
// no signal.
func (m *Monitor) Push(s Sample) (Recommendation, bool) {
	var view []Sample
	if m.window > 0 && len(m.samples) == m.window {
		// Ring overwrite: O(1) bookkeeping where a slide would memmove
		// the window every push for the rest of the monitor's life.
		m.samples[m.head] = s
		if m.head++; m.head == m.window {
			m.head = 0
		}
		if m.scratch == nil {
			m.scratch = make([]Sample, m.window)
		}
		n := copy(m.scratch, m.samples[m.head:])
		copy(m.scratch[n:], m.samples[:m.head])
		view = m.scratch
	} else {
		m.samples = append(m.samples, s)
		view = m.samples
	}
	rec := Advise(view)
	changed := !m.has || m.rec.Scheme != rec.Scheme
	m.rec, m.has = rec, true
	return rec, changed
}

// Current returns the latest recommendation, false before the first Push.
func (m *Monitor) Current() (Recommendation, bool) { return m.rec, m.has }
