package advisor

import (
	"testing"
)

// steadySample fabricates a quiet tick: backlog flat, no parks.
func steadySample(tick int) Sample {
	return Sample{
		Tick:        tick,
		Unreclaimed: 100,
		ScanScans:   uint64(tick),
		ScanBlocks:  uint64(tick) * 30,
		P99Steps:    2,
	}
}

// stalledSample fabricates a tick inside a reclamation stall: the backlog
// grows past StallMinGrowth every tick while cleanup scans keep running
// (scans active but freeing nothing is the blocked-reclamation signature
// Analyze keys on).
func stalledSample(tick, base int) Sample {
	return Sample{
		Tick:        tick,
		Unreclaimed: base + tick*2*StallMinGrowth,
		ScanScans:   uint64(tick),
		ScanBlocks:  uint64(tick) * 30,
		P99Steps:    2,
	}
}

func TestMonitorMatchesOfflineAdviseUnbounded(t *testing.T) {
	var stream []Sample
	for i := 0; i < 40; i++ {
		stream = append(stream, steadySample(i))
	}
	for i := 40; i < 80; i++ {
		stream = append(stream, stalledSample(i, 100))
	}

	m := NewMonitor(0)
	var last Recommendation
	for _, s := range stream {
		last, _ = m.Push(s)
	}
	want := Advise(stream)
	if last.Scheme != want.Scheme {
		t.Fatalf("streamed recommendation %q != offline Advise %q", last.Scheme, want.Scheme)
	}
	if len(last.Reasons) != len(want.Reasons) {
		t.Fatalf("streamed reasons %v != offline %v", last.Reasons, want.Reasons)
	}
	for i := range last.Reasons {
		if last.Reasons[i] != want.Reasons[i] {
			t.Fatalf("streamed reasons %v != offline %v", last.Reasons, want.Reasons)
		}
	}
	if cur, ok := m.Current(); !ok || cur.Scheme != want.Scheme {
		t.Fatalf("Current() = %v, %v; want %q, true", cur, ok, want.Scheme)
	}
}

func TestMonitorChangeSignalFiresOnceOnRegimeShift(t *testing.T) {
	m := NewMonitor(0)

	_, changed := m.Push(steadySample(0))
	if !changed {
		t.Fatal("first push must report a change")
	}
	changes := 0
	for i := 1; i < 40; i++ {
		if _, ch := m.Push(steadySample(i)); ch {
			changes++
		}
	}
	if changes != 0 {
		t.Fatalf("steady stream flapped the recommendation %d times", changes)
	}

	// Drive into a stall and count transitions: the signature must change
	// at least once (the stall is detected) but not on every tick.
	changes = 0
	var rec Recommendation
	for i := 40; i < 120; i++ {
		var ch bool
		rec, ch = m.Push(stalledSample(i, 100))
		if ch {
			changes++
		}
	}
	if changes == 0 {
		t.Fatal("stall regime never changed the recommendation signature")
	}
	if changes > 6 {
		t.Fatalf("recommendation flapped %d times across one regime shift", changes)
	}
	if rec.Scheme == "EBR" {
		t.Fatalf("stalled stream still recommends EBR: %+v", rec)
	}
}

func TestMonitorBoundedWindowSlides(t *testing.T) {
	const w = 16
	m := NewMonitor(w)
	for i := 0; i < 100; i++ {
		m.Push(stalledSample(i, 0))
	}
	if m.Len() != w {
		t.Fatalf("window length %d, want %d", m.Len(), w)
	}
	// After the stall regime ends, a bounded monitor forgets it once the
	// window slides past — the recency property the window buys.
	for i := 100; i < 100+2*w; i++ {
		m.Push(steadySample(i))
	}
	rec, ok := m.Current()
	if !ok {
		t.Fatal("no recommendation after 132 pushes")
	}
	want := func() Recommendation {
		var tail []Sample
		for i := 100 + 2*w - w; i < 100+2*w; i++ {
			tail = append(tail, steadySample(i))
		}
		return Advise(tail)
	}()
	if rec.Scheme != want.Scheme {
		t.Fatalf("bounded monitor %q != Advise over its window %q", rec.Scheme, want.Scheme)
	}
}

// TestMonitorWraparoundMatchesOfflineEveryPush is the circular-buffer
// regression pin: after the ring wraps, every Push must still judge
// exactly the last `window` samples in stream order. Advise's streak and
// spike features depend on sample adjacency, so a rotated or misordered
// view diverges from the offline answer — the stream alternates regimes
// every few ticks precisely to make order matter.
func TestMonitorWraparoundMatchesOfflineEveryPush(t *testing.T) {
	const w = 8
	m := NewMonitor(w)
	var stream []Sample
	for i := 0; i < 6*w; i++ {
		var s Sample
		if (i/4)%2 == 0 {
			s = steadySample(i)
		} else {
			s = stalledSample(i, 50)
		}
		stream = append(stream, s)
		rec, _ := m.Push(s)
		lo := len(stream) - w
		if lo < 0 {
			lo = 0
		}
		want := Advise(stream[lo:])
		if rec.Scheme != want.Scheme {
			t.Fatalf("push %d: streamed %q != offline Advise %q over the same window", i, rec.Scheme, want.Scheme)
		}
		if len(rec.Reasons) != len(want.Reasons) {
			t.Fatalf("push %d: streamed reasons %v != offline %v", i, rec.Reasons, want.Reasons)
		}
	}
}

func TestMonitorNegativeWindowIsUnbounded(t *testing.T) {
	m := NewMonitor(-5)
	if m.Window() != 0 {
		t.Fatalf("Window() = %d, want 0", m.Window())
	}
	for i := 0; i < 50; i++ {
		m.Push(steadySample(i))
	}
	if m.Len() != 50 {
		t.Fatalf("unbounded monitor dropped samples: Len %d", m.Len())
	}
}

func TestMonitorCurrentBeforePush(t *testing.T) {
	m := NewMonitor(0)
	if _, ok := m.Current(); ok {
		t.Fatal("Current() reported a recommendation before any Push")
	}
}
