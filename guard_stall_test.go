package wfe_test

// Guard-stall edge cases: a reader stalled mid-operation must neither
// deadlock the guard runtime's maintenance paths nor lose the block it
// protects, and a parked acquirer must stay cancellable. These are the
// single-guard corners of the schedules internal/chaos injects at scale.

import (
	"context"
	"testing"
	"time"

	"wfe"
	"wfe/internal/quiesce"
)

// TestStalledGuardSurvivesFlushAndDrain stalls a reader holding a live
// reservation over a node, retires that node from another guard, churns
// enough retirements through the domain to force many cleanup scans, and
// flushes the guard cache mid-stall. The flush and the churn must both
// complete (no deadlock on the held guard), and the protected block must
// still be alive and intact — the Debug arena turns a premature free
// into a loud failure.
func TestStalledGuardSurvivesFlushAndDrain(t *testing.T) {
	forEachScheme(t, func(t *testing.T, kind wfe.SchemeKind, forceSlow bool) {
		d := testDomain(t, kind, 2, 1<<14, forceSlow)
		holder := d.Guard()
		worker := d.Guard()

		var cell wfe.Atomic[uint64]
		first := worker.Alloc(0xdead)
		cell.Store(first)

		// The stall: holder is mid-operation, protecting the cell's node.
		holder.Begin()
		ref := holder.Protect(&cell, 0)
		if ref.IsNil() {
			t.Fatal("protected ref is nil")
		}

		// Another thread replaces and retires the protected node.
		repl := worker.Alloc(0xbeef)
		if !cell.CompareAndSwap(ref, repl) {
			t.Fatal("hot cell CAS failed with no contention")
		}
		worker.Retire(ref)

		// Drive plenty of cleanup scans past the stalled reservation.
		scratch := wfe.NewStack[uint64](d)
		for i := 0; i < 512; i++ {
			scratch.PushGuarded(worker, uint64(i))
			scratch.PopGuarded(worker)
		}

		// Cache maintenance mid-stall: both explicit guards are held, so
		// the flush has nothing to recover and must simply return.
		if stranded := d.FlushGuardCache(); stranded != 0 {
			t.Fatalf("FlushGuardCache recovered %d guards while all are explicitly held", stranded)
		}
		for i := 0; i < 512; i++ {
			scratch.PushGuarded(worker, uint64(i))
			scratch.PopGuarded(worker)
		}

		// The stalled reader's block must still be alive and untouched.
		if v := holder.Value(ref); v != 0xdead {
			t.Fatalf("protected block corrupted during stall: value %#x, want 0xdead", v)
		}

		// Stall lifts; drain the cell and settle. The once-protected
		// block must now be reclaimable (quiesce asserts the backlog
		// collapses for every scheme but Leak).
		holder.End()
		if cell.CompareAndSwap(repl, wfe.Ref[uint64]{}) {
			worker.Retire(repl)
		}
		holder.Release()
		worker.Release()
		quiesce.Settle(d)
		if err := quiesce.Check(d, kind != wfe.Leak); err != nil {
			t.Fatal(err)
		}
	})
}

// TestAcquireGuardExplicitCancel parks an acquirer on a fully-held pool
// and cancels it explicitly: the park must return context.Canceled
// promptly, and the pool must stay fully usable afterwards — a canceled
// waiter cannot strand a tid or wedge the handoff.
func TestAcquireGuardExplicitCancel(t *testing.T) {
	d, err := wfe.NewDomain[int](wfe.Options{Capacity: 64, MaxGuards: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := d.Guard()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := d.AcquireGuard(ctx)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the acquirer park
	cancel()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Fatalf("parked AcquireGuard returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked AcquireGuard never observed cancellation")
	}
	if tel := d.Telemetry(); tel.GuardParks == 0 {
		t.Fatalf("acquirer never parked; the test exercised nothing: %+v", tel)
	}

	// The pool must be whole: the held guard releases, and both an
	// explicit acquire and a fresh context-acquire succeed.
	g.Release()
	g2, err := d.AcquireGuard(context.Background())
	if err != nil {
		t.Fatalf("AcquireGuard after canceled waiter: %v", err)
	}
	g2.Release()
	if stranded := d.FlushGuardCache(); stranded != 0 {
		t.Fatalf("%d guards stranded after canceled waiter", stranded)
	}
	tel := d.Telemetry()
	if tel.GuardsFree != tel.MaxGuards {
		t.Fatalf("guard leak after canceled waiter: %d/%d free", tel.GuardsFree, tel.MaxGuards)
	}
}
