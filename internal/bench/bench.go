// Package bench is the paper's evaluation harness (§5): it drives the
// abstract key-value interface over every data structure × reclamation
// scheme combination, sweeping thread counts, and reports the two series
// every figure plots — throughput (Mops/s) and the number of unreclaimed
// objects — plus the ablations DESIGN.md calls out.
package bench

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wfe"
	"wfe/internal/core"
	"wfe/internal/ds"
	"wfe/internal/ds/bst"
	"wfe/internal/ds/crturn"
	"wfe/internal/ds/hashmap"
	"wfe/internal/ds/kpqueue"
	"wfe/internal/ds/list"
	"wfe/internal/mem"
	"wfe/internal/reclaim"
	"wfe/internal/schemes"
)

// Workload is an operation mix in percent (summing to 100).
type Workload struct {
	Name                           string
	Insert, Delete, GetPct, PutPct int
}

// The paper's two mixes (§5).
var (
	WriteHeavy = Workload{Name: "50i/50d", Insert: 50, Delete: 50}
	ReadMostly = Workload{Name: "90g/10p", GetPct: 90, PutPct: 10}
)

// Experiment describes one paper figure (one data structure × workload).
type Experiment struct {
	ID       string // "5a", "6", ...
	Title    string
	DS       string // builder name
	Workload Workload
	Schemes  []string
}

var allSchemes = []string{"WFE", "HE", "HP", "EBR", "2GEIBR", "Leak"}

// Experiments indexes every figure in the paper's evaluation. Figures with
// two panels (throughput / unreclaimed) are one experiment here: Run
// reports both metrics.
var Experiments = []Experiment{
	{ID: "5a", Title: "KP queue, 50% insert / 50% delete", DS: "kpqueue", Workload: WriteHeavy, Schemes: allSchemes},
	{ID: "5c", Title: "CRTurn queue, 50% insert / 50% delete", DS: "crturn", Workload: WriteHeavy, Schemes: allSchemes},
	{ID: "6", Title: "Linked list, 50% insert / 50% delete", DS: "list", Workload: WriteHeavy, Schemes: allSchemes},
	{ID: "7", Title: "Hash map, 50% insert / 50% delete", DS: "hashmap", Workload: WriteHeavy, Schemes: allSchemes},
	{ID: "8", Title: "Natarajan BST, 50% insert / 50% delete", DS: "bst", Workload: WriteHeavy, Schemes: allSchemes},
	{ID: "9", Title: "Linked list, 90% get / 10% put", DS: "list", Workload: ReadMostly, Schemes: allSchemes},
	{ID: "10", Title: "Hash map, 90% get / 10% put", DS: "hashmap", Workload: ReadMostly, Schemes: allSchemes},
	{ID: "11", Title: "Natarajan BST, 90% get / 10% put", DS: "bst", Workload: ReadMostly, Schemes: allSchemes},
}

// FindExperiment resolves a figure id ("5a" and "5b" map to the same
// experiment, as do "5c"/"5d" — the letters select the panel).
func FindExperiment(id string) (Experiment, error) {
	switch id {
	case "5b":
		id = "5a"
	case "5d":
		id = "5c"
	}
	for _, e := range Experiments {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown figure %q", id)
}

// Options are the sweep parameters, defaulting to the paper's values with a
// shorter duration (the -paper flag of cmd/wfebench restores 10s × 5).
type Options struct {
	Threads     []int         // thread counts to sweep
	Duration    time.Duration // per measurement
	Repeat      int           // repetitions (best Mops reported, like the paper's max-of-5)
	Prefill     int           // initial elements (paper: 50000)
	KeyRange    uint64        // keys drawn uniformly from [0, KeyRange) (paper: 100000)
	EraFreq     int           // ν (paper: 150)
	CleanupFreq int           // retire scan frequency (paper: 30)
	MaxAttempts int           // WFE fast-path attempts (paper: 16)
	Capacity    int           // arena slots; 0 sizes automatically
	// StallThreads makes the first N workers stall inside an operation
	// (announced/holding one protection) for the whole run — the
	// preempted-reader scenario of ablation A4.
	StallThreads int
	// Pin wires each worker to an OS thread (runtime.LockOSThread),
	// approximating the paper's pinned-thread methodology.
	Pin bool
	// LinearScan pins every scheme's cleanup to the pre-overhaul O(R×G)
	// linear reservation sweep — the reference arm of the scan ablation.
	LinearScan bool
	// Observe, when non-nil, is called at the start of every measured run
	// with a label ("figure/scheme/tN") and a live telemetry closure that
	// stays valid for the run and afterwards (the counters freeze when the
	// run ends). cmd/wfebench's -metrics flag registers each closure with
	// a metrics.Registry so a scraper watches the sweep point by point.
	Observe func(label string, tel func() wfe.Telemetry)
}

// Defaults fills unset fields.
func (o Options) Defaults() Options {
	if len(o.Threads) == 0 {
		for t := 1; t <= runtime.GOMAXPROCS(0); t *= 2 {
			o.Threads = append(o.Threads, t)
		}
	}
	if o.Duration == 0 {
		o.Duration = 500 * time.Millisecond
	}
	if o.Repeat == 0 {
		o.Repeat = 1
	}
	if o.Prefill == 0 {
		o.Prefill = 50000
	}
	if o.KeyRange == 0 {
		o.KeyRange = 100000
	}
	if o.EraFreq == 0 {
		o.EraFreq = 150
	}
	if o.CleanupFreq == 0 {
		o.CleanupFreq = 30
	}
	if o.MaxAttempts == 0 {
		o.MaxAttempts = 16
	}
	return o
}

// Result is one measured point (one scheme at one thread count). The
// json tags name the fields in the BENCH_*.json trajectory artifact.
type Result struct {
	Figure         string  `json:"figure"`
	DS             string  `json:"ds"`
	Workload       string  `json:"workload"`
	Scheme         string  `json:"scheme"`
	Threads        int     `json:"threads"`
	Mops           float64 `json:"mops"`
	Ops            uint64  `json:"ops"`              // total operations completed
	Unreclaimed    float64 `json:"unreclaimed_mean"` // mean sampled retired-not-freed blocks
	UnreclaimedMax int     `json:"unreclaimed_max"`  // highwater of the same samples
	SlowPaths      uint64  `json:"slow_paths"`       // WFE only: slow-path entries during measurement
	MaxSteps       uint64  `json:"max_steps"`        // worst GetProtected step count (every protecting scheme)
	P99Steps       uint64  `json:"p99_steps"`        // p99 GetProtected step count (every protecting scheme)
	ScanScans      uint64  `json:"scan_scans"`       // cleanup scans run (all schemes, via the shared retire runtime)
	ScanBlocks     uint64  `json:"scan_blocks"`      // retired blocks those scans examined
	ScanNanos      uint64  `json:"scan_nanos"`       // total nanoseconds spent in cleanup scans
	Exhausted      bool    `json:"exhausted"`        // arena filled up mid-run (Leak with long durations)
}

// ScanNsPerBlock is the mean cleanup cost per examined retired block, the
// scan ablation's primary metric.
func (r Result) ScanNsPerBlock() float64 {
	if r.ScanBlocks == 0 {
		return 0
	}
	return float64(r.ScanNanos) / float64(r.ScanBlocks)
}

// buildKV instantiates a data structure over a scheme sized for threads.
func buildKV(name string, smr reclaim.Scheme, threads int, keyRange uint64) ds.KV {
	switch name {
	case "list":
		return list.New(smr).KV()
	case "hashmap":
		return hashmap.New(smr, int(keyRange)).KV()
	case "bst":
		return bst.New(smr).KV()
	case "kpqueue":
		return kpqueue.New(smr, threads).KV()
	case "crturn":
		return crturn.New(smr, threads).KV()
	}
	panic("bench: unknown data structure " + name)
}

// IsQueue reports whether the structure only supports insert/delete.
func IsQueue(name string) bool { return name == "kpqueue" || name == "crturn" }

// Run sweeps one experiment and returns a result per scheme × thread count.
func Run(exp Experiment, opt Options) []Result {
	opt = opt.Defaults()
	var results []Result
	for _, threads := range opt.Threads {
		for _, scheme := range exp.Schemes {
			best := Result{}
			for rep := 0; rep < opt.Repeat; rep++ {
				r := runOne(exp, scheme, threads, opt)
				if r.Mops > best.Mops || rep == 0 {
					best = r
				}
			}
			results = append(results, best)
		}
	}
	return results
}

// prefillKeys draws distinct random keys (the paper prefills 50K elements
// from the key range).
func prefillKeys(n int, keyRange uint64, rng *rand.Rand) []uint64 {
	if uint64(n) > keyRange {
		n = int(keyRange)
	}
	seen := make(map[uint64]struct{}, n)
	keys := make([]uint64, 0, n)
	for len(keys) < n {
		k := uint64(rng.Int63n(int64(keyRange)))
		if _, dup := seen[k]; !dup {
			seen[k] = struct{}{}
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func arenaCapacity(exp Experiment, scheme string, opt Options, threads int) int {
	if opt.Capacity != 0 {
		return opt.Capacity
	}
	// Live set + retired backlog headroom. The leak baseline burns one slot
	// per insert for the whole run; give it the largest arena that still
	// fits comfortably in memory and let Exhausted flag truncated runs.
	if scheme == "Leak" {
		return 1 << 22
	}
	// The flat headroom term absorbs the retired-but-not-yet-freed backlog
	// of the epoch- and interval-based schemes, which can spike past 100K
	// blocks when a worker is descheduled mid-epoch on a loaded machine —
	// undersizing here shows up as flaky Exhausted results, not as a
	// measurement.
	capacity := 4*opt.Prefill + threads*4096 + 1<<18
	return capacity
}

// InternalTelemetry adapts an internal-harness (scheme, arena) pair to
// the public wfe.Telemetry census so the export tier can serve harness
// runs the same way it serves Domains. The guard-runtime counters stay
// zero: the internal harness drives schemes by raw tid, with no guard
// pool above them.
func InternalTelemetry(name string, smr reclaim.Scheme, a *mem.Arena) wfe.Telemetry {
	st := a.Stats()
	probe := smr.Retirer().Probe()
	t := wfe.Telemetry{
		Scheme:      name,
		MaxSteps:    probe.MaxSteps,
		P99Steps:    probe.P99Steps,
		Unreclaimed: probe.Unreclaimed,
		Allocs:      st.Allocs,
		Frees:       st.Frees,
		InUse:       st.InUse,
		Capacity:    a.Capacity(),

		ScanScans:  probe.Scans.Scans,
		ScanBlocks: probe.Scans.Blocks,
		ScanNanos:  probe.Scans.Nanos,

		ArenaSegPushes:     st.SegPushes,
		ArenaSegPops:       st.SegPops,
		ArenaBumpHighwater: st.Bumped,
	}
	if e, ok := smr.(interface{ Era() uint64 }); ok {
		t.Era = e.Era()
	}
	if s, ok := smr.(interface{ SlowPaths() uint64 }); ok {
		t.SlowPaths = s.SlowPaths()
	}
	return t
}

func runOne(exp Experiment, schemeName string, threads int, opt Options) Result {
	a := mem.New(mem.Config{
		Capacity:   arenaCapacity(exp, schemeName, opt, threads),
		MaxThreads: threads,
		Debug:      false,
	})
	smr, err := schemes.New(schemeName, a, reclaim.Config{
		MaxThreads:  threads,
		EraFreq:     opt.EraFreq,
		CleanupFreq: opt.CleanupFreq,
		MaxAttempts: opt.MaxAttempts,
		LinearScan:  opt.LinearScan,
	})
	if err != nil {
		panic(err)
	}
	if opt.Observe != nil {
		opt.Observe(fmt.Sprintf("%s/%s/t%d", exp.ID, schemeName, threads),
			func() wfe.Telemetry { return InternalTelemetry(schemeName, smr, a) })
	}
	kv := buildKV(exp.DS, smr, threads, opt.KeyRange)

	// Prefill: queues get 50K enqueues; maps get 50K distinct keys.
	rng := rand.New(rand.NewSource(12345))
	if seeder, ok := kv.(ds.Seeder); ok && !IsQueue(exp.DS) {
		seeder.Seed(0, prefillKeys(opt.Prefill, opt.KeyRange, rng))
	} else if s2, ok2 := kv.(ds.Seeder); ok2 {
		keys := make([]uint64, opt.Prefill)
		for i := range keys {
			keys[i] = uint64(rng.Int63n(int64(opt.KeyRange)))
		}
		s2.Seed(0, keys)
	}

	var (
		stop      atomic.Bool
		exhausted atomic.Bool
		opsByTid  = make([]uint64, threads)
	)
	baseSlow := slowPaths(smr)
	// Prefill runs cleanup scans against a nearly empty reservation set;
	// baseline them away so the scan telemetry describes the measured
	// window only (the step quantiles stay whole-run: a max cannot be
	// baselined and prefill's uncontended reads all take one step).
	baseScan := smr.Retirer().Stats()

	// Unreclaimed sampler (the paper's second panel).
	var samples []int
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for !stop.Load() {
			<-tick.C
			samples = append(samples, smr.Unreclaimed())
		}
	}()

	// A stalled reader pins one protection for the whole run (ablation A4).
	var stallRoot atomic.Uint64
	if opt.StallThreads > 0 {
		h := smr.Alloc(0)
		stallRoot.Store(h)
	}

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			if opt.Pin {
				runtime.LockOSThread()
				defer runtime.UnlockOSThread()
			}
			defer func() {
				if r := recover(); r != nil {
					// Arena exhaustion (leak baseline on long runs).
					exhausted.Store(true)
					stop.Store(true)
				}
			}()
			// pprof labels tag every profile sample a -metrics scrape
			// collects with which sweep point it belongs to.
			phase := "measure"
			if tid < opt.StallThreads {
				phase = "stalled"
			}
			pprof.Do(context.Background(), pprof.Labels(
				"scheme", schemeName, "structure", exp.DS, "phase", phase,
			), func(context.Context) {
				if tid < opt.StallThreads {
					smr.Begin(tid)
					smr.GetProtected(tid, &stallRoot, 0, 0)
					for !stop.Load() {
						time.Sleep(time.Millisecond)
						if time.Since(start) > opt.Duration {
							stop.Store(true)
						}
					}
					smr.Clear(tid)
					return
				}
				ops := uint64(0)
				r := rand.New(rand.NewSource(int64(tid)*7919 + 1))
				w := exp.Workload
				for !stop.Load() {
					key := uint64(r.Int63n(int64(opt.KeyRange)))
					pick := r.Intn(100)
					switch {
					case pick < w.Insert:
						kv.Insert(tid, key)
					case pick < w.Insert+w.Delete:
						kv.Delete(tid, key)
					case pick < w.Insert+w.Delete+w.GetPct:
						kv.Get(tid, key)
					default:
						kv.Put(tid, key)
					}
					ops++
					if ops&63 == 0 && time.Since(start) > opt.Duration {
						stop.Store(true)
					}
				}
				opsByTid[tid] = ops
			})
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	stop.Store(true)
	<-samplerDone

	var totalOps uint64
	for _, n := range opsByTid {
		totalOps += n
	}
	var unreclaimed float64
	unreclaimedMax := 0
	if len(samples) > 0 {
		sum := 0
		for _, s := range samples {
			sum += s
			if s > unreclaimedMax {
				unreclaimedMax = s
			}
		}
		unreclaimed = float64(sum) / float64(len(samples))
	} else {
		unreclaimed = float64(smr.Unreclaimed())
		unreclaimedMax = smr.Unreclaimed()
	}

	r := Result{
		Figure:         exp.ID,
		DS:             exp.DS,
		Workload:       exp.Workload.Name,
		Scheme:         schemeName,
		Threads:        threads,
		Mops:           float64(totalOps) / elapsed.Seconds() / 1e6,
		Ops:            totalOps,
		Unreclaimed:    unreclaimed,
		UnreclaimedMax: unreclaimedMax,
		SlowPaths:      slowPaths(smr) - baseSlow,
		Exhausted:      exhausted.Load(),
	}
	// The workers are joined: the owner-written step histograms and scan
	// counters are safe to sample now — uniformly, through the scheme's
	// shared retire-side runtime.
	rt := smr.Retirer()
	r.MaxSteps = rt.MaxSteps()
	r.P99Steps = rt.StepQuantile(0.99)
	scan := rt.Stats()
	r.ScanScans = scan.Scans - baseScan.Scans
	r.ScanBlocks = scan.Blocks - baseScan.Blocks
	r.ScanNanos = scan.Nanos - baseScan.Nanos
	return r
}

func slowPaths(smr reclaim.Scheme) uint64 {
	if w, ok := smr.(*core.WFE); ok {
		return w.SlowPaths()
	}
	return 0
}
