package bench

import (
	"fmt"
	"sync/atomic"
	"time"

	"wfe/internal/mem"
	"wfe/internal/reclaim"
	"wfe/internal/schemes"
)

// The scan ablation (cmd/wfebench -ablation scan): the sorted-snapshot
// cleanup against the pre-overhaul linear reference, on the hash map in
// both paper mixes — read-mostly (figure 10) for the end-to-end
// throughput claim and write-heavy (figure 7) for dense cleanup traffic.
// It runs at ≥16 threads, where the gathered reservation set
// G = threads×MaxHEs makes the O(R×G) linear sweep visibly more
// expensive than the O((R+G)·log G) sorted scan.

// ScanResult is one measured point of the scan ablation.
type ScanResult struct {
	Figure   string `json:"figure"`
	DS       string `json:"ds"`
	Workload string `json:"workload"`
	Scheme   string `json:"scheme"`
	Mode     string `json:"mode"` // "linear" or "sorted"
	// AdaptiveLinear marks a sorted-mode row whose gathered reservation
	// set sat below the runtime's sort cutoff, so cleanup adaptively ran
	// the linear sweep anyway: the pair compares nothing and reads ~1.0x.
	AdaptiveLinear bool    `json:"adaptive_linear,omitempty"`
	Threads        int     `json:"threads"`
	Mops           float64 `json:"mops"`
	Scans          uint64  `json:"scan_scans"`
	ScanBlocks     uint64  `json:"scan_blocks"`
	NsPerBlock     float64 `json:"scan_ns_per_block"`
	Unreclaimed    float64 `json:"unreclaimed_mean"`
}

// scanSchemes are the four schemes whose cleanup the overhaul rewired;
// HP already ran Michael's sorted scan and EBR/Leak have no reservation
// scan to ablate.
var scanSchemes = []string{"WFE", "HE", "2GEIBR", "WFE-IBR"}

// ScanSummary pairs each figure/scheme/threads point's two modes and
// renders one comparison line: cleanup cost per retired block and
// end-to-end throughput, linear → sorted.
func ScanSummary(results []ScanResult) []string {
	type key struct {
		figure, scheme string
		threads        int
	}
	linear := map[key]ScanResult{}
	var lines []string
	for _, r := range results {
		k := key{r.Figure, r.Scheme, r.Threads}
		if r.Mode == "linear" {
			linear[k] = r
			continue
		}
		lin, ok := linear[k]
		if !ok {
			continue
		}
		speedup := 0.0
		if r.NsPerBlock > 0 {
			speedup = lin.NsPerBlock / r.NsPerBlock
		}
		delta := 0.0
		if lin.Mops > 0 {
			delta = (r.Mops/lin.Mops - 1) * 100
		}
		note := ""
		if r.AdaptiveLinear {
			note = "  [G<cutoff: sorted arm ran the adaptive linear path]"
		}
		lines = append(lines, fmt.Sprintf(
			"fig %s %-8s %2dt: cleanup %7.1f → %6.1f ns/block (%4.1fx), %7.3f → %7.3f Mops/s (%+.1f%%)%s",
			r.Figure, r.Scheme, r.Threads, lin.NsPerBlock, r.NsPerBlock, speedup, lin.Mops, r.Mops, delta, note))
	}
	return lines
}

// microScan times the real cleanup path under a controlled reservation
// population, where end-to-end runs cannot: it publishes a full
// reservation matrix (G = threads×MaxHEs eras for the era schemes,
// threads intervals for the interval schemes — the density a machine
// with `threads` hardware contexts sustains mid-operation), then drives
// a single churner through Alloc/Retire so every CleanupFreq-th retire
// runs a real scan over the accumulated backlog. Deterministic and
// single-threaded, so the linear/sorted comparison is clean even on a
// small CI host.
func microScan(scheme string, threads, rounds int, linear bool) ScanResult {
	const maxHEs = 8
	a := mem.New(mem.Config{Capacity: 1 << 16, MaxThreads: threads + 1})
	smr, err := schemes.New(scheme, a, reclaim.Config{
		MaxThreads: threads + 1,
		MaxHEs:     maxHEs,
		// The clock advances once per CleanupFreq-sized churn window for
		// every scheme, so each scan examines the realistic mix: a bounded
		// protected backlog plus a majority of freeable blocks (the case
		// where the linear sweep cannot early-exit and must visit all G
		// reservations per block).
		EraFreq:     64,
		CleanupFreq: 64,
		MaxAttempts: 16,
		LinearScan:  linear,
	})
	if err != nil {
		panic(err)
	}
	churner := threads // tids 0..threads-1 hold the reservations
	var root atomic.Uint64
	root.Store(smr.Alloc(churner))

	// Warm up past the count-0 era advances of Alloc and Retire so the
	// reservations published next sit at the era the churn blocks are
	// stamped with, keeping a backlog protected across the measured scans.
	for i := 0; i < 65; i++ {
		smr.Retire(churner, smr.Alloc(churner))
	}
	for t := 0; t < threads; t++ {
		smr.Begin(t)
		for j := 0; j < maxHEs; j++ {
			smr.GetProtected(t, &root, j, 0)
		}
	}
	base := smr.Retirer().Stats()

	start := time.Now()
	for i := 0; i < rounds; i++ {
		smr.Retire(churner, smr.Alloc(churner))
	}
	elapsed := time.Since(start)

	st := smr.Retirer().Stats()
	scans := st.Scans - base.Scans
	blocks := st.Blocks - base.Blocks
	nanos := st.Nanos - base.Nanos
	// An interval scheme gathers one reservation per thread, an era scheme
	// maxHEs per thread; below the runtime's sort cutoff the sorted mode
	// runs the adaptive linear path, which AdaptiveLinear flags honestly
	// instead of pretending the pair compares anything.
	gathered := threads
	if scheme == "WFE" || scheme == "HE" {
		gathered = threads * maxHEs
	}
	mode := "sorted"
	if linear {
		mode = "linear"
	}
	r := ScanResult{
		Figure:         "micro",
		DS:             "alloc/retire",
		Workload:       "churn",
		Scheme:         smr.Name(),
		Mode:           mode,
		AdaptiveLinear: !linear && gathered < smr.Retirer().Cutoff(),
		Threads:        threads,
		Mops:           float64(rounds) / elapsed.Seconds() / 1e6,
		Scans:          scans,
		ScanBlocks:     blocks,
		Unreclaimed:    float64(smr.Unreclaimed()),
	}
	if blocks > 0 {
		r.NsPerBlock = float64(nanos) / float64(blocks)
	}
	return r
}

// AblationScan runs the controlled cleanup microbenchmark at 16 and 64
// reservation-holding threads, then sweeps both cleanup implementations
// end to end. End-to-end thread counts honour opt.Threads when set;
// otherwise one point at max(16, GOMAXPROCS) — the acceptance regime of
// the overhaul.
func AblationScan(opt Options) []ScanResult {
	if len(opt.Threads) == 0 {
		threads := fixedThreads()
		if threads < 16 {
			threads = 16
		}
		opt.Threads = []int{threads}
	}
	opt = opt.Defaults()
	var out []ScanResult
	for _, threads := range []int{16, 64} {
		rounds := 96000 / threads
		for _, scheme := range scanSchemes {
			for _, linear := range []bool{true, false} {
				out = append(out, microScan(scheme, threads, rounds, linear))
			}
		}
	}
	for _, figure := range []string{"10", "7"} {
		exp, _ := FindExperiment(figure)
		for _, scheme := range scanSchemes {
			e := exp
			e.Schemes = []string{scheme}
			for _, mode := range []string{"linear", "sorted"} {
				o := opt
				o.LinearScan = mode == "linear"
				for _, r := range Run(e, o) {
					out = append(out, ScanResult{
						Figure:      r.Figure,
						DS:          r.DS,
						Workload:    r.Workload,
						Scheme:      r.Scheme,
						Mode:        mode,
						Threads:     r.Threads,
						Mops:        r.Mops,
						Scans:       r.ScanScans,
						ScanBlocks:  r.ScanBlocks,
						NsPerBlock:  r.ScanNsPerBlock(),
						Unreclaimed: r.Unreclaimed,
					})
				}
			}
		}
	}
	return out
}
