package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"wfe"
)

// BatchSizes is the sweep of batch widths the ablation measures against
// the per-op baseline (batch size 0 in the results).
var BatchSizes = []int{1, 8, 32, 128}

// BatchResult is one point of the batched-operations ablation
// (cmd/wfebench -ablation batch): the write-heavy 50% put / 50% delete
// hash-map mix driven guardlessly either per operation (BatchSize 0) or
// through the MultiPut/MultiDelete batch APIs at one width. Speedup is
// against the per-op baseline at the same scheme and goroutine count —
// the amortization the batch context buys (one lease, one protection
// span on the era/epoch/interval schemes, one retire burst).
type BatchResult struct {
	Scheme     string  `json:"scheme"`
	Goroutines int     `json:"goroutines"`
	BatchSize  int     `json:"batch_size"` // 0 = per-op baseline
	Mops       float64 `json:"mops"`
	Ops        uint64  `json:"ops"`
	Speedup    float64 `json:"speedup"` // vs BatchSize 0, same scheme/goroutines
	// BatchLeaseHitRate is the batch-path lease-cache hit fraction, the
	// telemetry the batch wrappers keep separately from per-op pins.
	BatchLeaseHitRate float64 `json:"batch_lease_hit_rate"`
	Exhausted         bool    `json:"exhausted"`
}

// AblationBatch sweeps batch width × scheme × goroutine count on the
// hash-map mix, pairing every point with its per-op baseline. Batch
// size 1 measures the batch path's fixed overhead (it must stay within
// a few percent of per-op); the wider points measure the amortization.
func AblationBatch(opt Options) []BatchResult {
	opt = opt.Defaults()
	var out []BatchResult
	for _, goroutines := range opt.Threads {
		for _, kind := range wfe.AllSchemes() {
			base := bestBatchPoint(kind, goroutines, 0, opt)
			base.Speedup = 1
			out = append(out, base)
			for _, width := range BatchSizes {
				r := bestBatchPoint(kind, goroutines, width, opt)
				if base.Mops > 0 {
					r.Speedup = r.Mops / base.Mops
				}
				out = append(out, r)
			}
		}
	}
	return out
}

func bestBatchPoint(kind wfe.SchemeKind, goroutines, width int, opt Options) BatchResult {
	best := BatchResult{}
	for rep := 0; rep < opt.Repeat; rep++ {
		r := runBatchPoint(kind, goroutines, width, opt)
		if r.Mops > best.Mops || rep == 0 {
			best = r
		}
	}
	return best
}

func runBatchPoint(kind wfe.SchemeKind, goroutines, width int, opt Options) BatchResult {
	capacity := opt.Capacity
	if capacity == 0 {
		if kind == wfe.Leak {
			capacity = 1 << 22
		} else {
			capacity = 8*opt.Prefill + goroutines*4096 + 1<<18
		}
	}
	d, err := wfe.NewDomain[uint64](wfe.Options{
		Scheme:      kind,
		Capacity:    capacity,
		MaxGuards:   goroutines,
		EraFreq:     opt.EraFreq,
		CleanupFreq: opt.CleanupFreq,
		MaxAttempts: opt.MaxAttempts,
	})
	if err != nil {
		panic(err)
	}
	if opt.Observe != nil {
		opt.Observe(fmt.Sprintf("batch/%s/b%d/t%d", kind, width, goroutines), d.Telemetry)
	}
	m := wfe.NewHashMap[uint64](d, int(opt.KeyRange))

	rng := rand.New(rand.NewSource(12345))
	keys := prefillKeys(opt.Prefill, opt.KeyRange, rng)
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	for _, k := range keys {
		m.Insert(k, k)
	}

	var (
		stop      atomic.Bool
		exhausted atomic.Bool
		opsByW    = make([]uint64, goroutines)
		wg        sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ops := uint64(0)
			defer func() { opsByW[w] = ops }()
			defer func() {
				if r := recover(); r != nil {
					if !LeakExhausted(r, kind) {
						panic(r)
					}
					exhausted.Store(true)
					stop.Store(true)
				}
			}()
			r := rand.New(rand.NewSource(int64(w)*7919 + 1))
			if width == 0 {
				// Per-op baseline: every item its own guardless call.
				for !stop.Load() {
					key := uint64(r.Int63n(int64(opt.KeyRange)))
					if r.Intn(2) == 0 {
						m.Put(key, key)
					} else {
						m.Delete(key)
					}
					ops++
					if ops&63 == 0 && time.Since(start) > opt.Duration {
						stop.Store(true)
					}
				}
				return
			}
			// Batched: same aggregate 50/50 mix, alternating a put burst
			// with a delete burst of the same width. The clock check is
			// gated to every ~64 items like the per-op loop, so narrow
			// widths aren't taxed with a time.Since per burst.
			bkeys := make([]uint64, width)
			bvals := make([]uint64, width)
			insert := r.Intn(2) == 0
			next := uint64(64)
			for !stop.Load() {
				for i := range bkeys {
					bkeys[i] = uint64(r.Int63n(int64(opt.KeyRange)))
					bvals[i] = bkeys[i]
				}
				if insert {
					m.MultiPut(bkeys, bvals)
				} else {
					m.MultiDelete(bkeys)
				}
				insert = !insert
				ops += uint64(width)
				if ops >= next {
					next = ops + 64
					if time.Since(start) > opt.Duration {
						stop.Store(true)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	stop.Store(true)
	d.FlushGuardCache()

	var totalOps uint64
	for _, n := range opsByW {
		totalOps += n
	}
	tel := d.Telemetry()
	hitRate := 0.0
	if n := tel.BatchGuardCacheHits + tel.BatchGuardCacheMisses; n > 0 {
		hitRate = float64(tel.BatchGuardCacheHits) / float64(n)
	}
	return BatchResult{
		Scheme:            kind.String(),
		Goroutines:        goroutines,
		BatchSize:         width,
		Mops:              float64(totalOps) / elapsed.Seconds() / 1e6,
		Ops:               totalOps,
		BatchLeaseHitRate: hitRate,
		Exhausted:         exhausted.Load(),
	}
}
