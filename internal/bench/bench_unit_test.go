package bench

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestExperimentTableCoversThePaper(t *testing.T) {
	// Every evaluation figure must be regenerable: 5a/5c (queues) plus
	// 6–11 (list, hashmap, BST × two workloads).
	wantDS := map[string]string{
		"5a": "kpqueue", "5c": "crturn",
		"6": "list", "7": "hashmap", "8": "bst",
		"9": "list", "10": "hashmap", "11": "bst",
	}
	if len(Experiments) != len(wantDS) {
		t.Fatalf("%d experiments, want %d", len(Experiments), len(wantDS))
	}
	for id, ds := range wantDS {
		exp, err := FindExperiment(id)
		if err != nil {
			t.Fatalf("figure %s missing: %v", id, err)
		}
		if exp.DS != ds {
			t.Errorf("figure %s uses %s, want %s", id, exp.DS, ds)
		}
		if len(exp.Schemes) != 6 {
			t.Errorf("figure %s runs %d schemes, want 6", id, len(exp.Schemes))
		}
	}
}

func TestFigurePanelAliases(t *testing.T) {
	a, err := FindExperiment("5b")
	if err != nil || a.ID != "5a" {
		t.Fatalf("5b should alias 5a, got %v %v", a.ID, err)
	}
	d, err := FindExperiment("5d")
	if err != nil || d.ID != "5c" {
		t.Fatalf("5d should alias 5c, got %v %v", d.ID, err)
	}
	if _, err := FindExperiment("99"); err == nil {
		t.Fatal("unknown figure did not error")
	}
}

func TestWorkloadMixesSumTo100(t *testing.T) {
	for _, w := range []Workload{WriteHeavy, ReadMostly} {
		if w.Insert+w.Delete+w.GetPct+w.PutPct != 100 {
			t.Errorf("workload %s sums to %d", w.Name, w.Insert+w.Delete+w.GetPct+w.PutPct)
		}
	}
}

func TestPrefillKeysDistinctAndSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	keys := prefillKeys(1000, 100000, rng)
	if len(keys) != 1000 {
		t.Fatalf("got %d keys", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatalf("keys not strictly increasing at %d", i)
		}
	}
	// Clamped when the range is smaller than the request.
	small := prefillKeys(50, 10, rng)
	if len(small) != 10 {
		t.Fatalf("clamped prefill = %d keys, want 10", len(small))
	}
}

func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real measurements")
	}
	exp, _ := FindExperiment("7")
	exp.Schemes = []string{"WFE", "EBR"}
	opt := Options{
		Threads:  []int{2},
		Duration: 50 * time.Millisecond,
		Prefill:  500,
		KeyRange: 1000,
	}
	results := Run(exp, opt)
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if r.Mops <= 0 || r.Ops == 0 {
			t.Errorf("%s: no throughput measured: %+v", r.Scheme, r)
		}
		if r.Exhausted {
			t.Errorf("%s: arena exhausted on a smoke run", r.Scheme)
		}
	}
}

func TestRunQueueSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real measurements")
	}
	for _, id := range []string{"5a", "5c"} {
		exp, _ := FindExperiment(id)
		exp.Schemes = []string{"WFE"}
		opt := Options{
			Threads:  []int{2},
			Duration: 50 * time.Millisecond,
			Prefill:  500,
			KeyRange: 1000,
		}
		results := Run(exp, opt)
		if len(results) != 1 || results[0].Mops <= 0 {
			t.Fatalf("figure %s: %+v", id, results)
		}
	}
}

func TestStallOptionKeepsStalledThreadIdle(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real measurements")
	}
	exp, _ := FindExperiment("7")
	exp.Schemes = []string{"EBR"}
	opt := Options{
		Threads:      []int{2},
		Duration:     100 * time.Millisecond,
		Prefill:      500,
		KeyRange:     1000,
		CleanupFreq:  1,
		EraFreq:      1,
		StallThreads: 1,
	}
	r := Run(exp, opt)[0]
	// With one of two threads stalled and EBR pinned, the backlog must be
	// substantial relative to the op count.
	if r.Unreclaimed < 100 {
		t.Fatalf("EBR backlog %f despite stalled reader", r.Unreclaimed)
	}
}

func TestAllFiguresRunnable(t *testing.T) {
	// Integration smoke across every figure: builders, prefill paths and
	// workload dispatch must work for every data structure.
	if testing.Short() {
		t.Skip("runs real measurements")
	}
	opt := Options{
		Threads:  []int{2},
		Duration: 30 * time.Millisecond,
		Prefill:  200,
		KeyRange: 500,
	}
	for _, exp := range Experiments {
		exp := exp
		exp.Schemes = []string{"WFE"}
		t.Run("fig"+exp.ID, func(t *testing.T) {
			results := Run(exp, opt)
			if len(results) != 1 {
				t.Fatalf("got %d results", len(results))
			}
			if results[0].Ops == 0 {
				t.Fatalf("figure %s measured no operations", exp.ID)
			}
		})
	}
}

func TestArenaCapacityAuto(t *testing.T) {
	exp, _ := FindExperiment("7")
	opt := Options{Prefill: 50000}.Defaults()
	if got := arenaCapacity(exp, "WFE", opt, 8); got < 4*opt.Prefill {
		t.Fatalf("auto capacity %d too small for prefill %d", got, opt.Prefill)
	}
	if got := arenaCapacity(exp, "Leak", opt, 8); got < 1<<22 {
		t.Fatalf("leak capacity %d too small", got)
	}
	opt.Capacity = 777
	if got := arenaCapacity(exp, "WFE", opt, 8); got != 777 {
		t.Fatalf("explicit capacity not honoured: %d", got)
	}
}

func TestAblationsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real measurements")
	}
	opt := Options{
		Threads:  []int{2},
		Duration: 25 * time.Millisecond,
		Prefill:  200,
		KeyRange: 500,
	}
	for name, run := range map[string]func(Options) []AblationResult{
		"slowpath": AblationSlowPath,
		"erafreq":  AblationEraFreq,
		"wfeibr":   AblationWaitFreeIBR,
	} {
		results := run(opt)
		if len(results) == 0 {
			t.Errorf("ablation %s produced no results", name)
		}
		for _, r := range results {
			if r.Mops < 0 {
				t.Errorf("ablation %s: negative throughput: %+v", name, r)
			}
		}
	}
}

func TestMicroScanMeasuresRealCleanups(t *testing.T) {
	for _, linear := range []bool{true, false} {
		r := microScan("WFE", 16, 2000, linear)
		if r.Scans == 0 || r.ScanBlocks == 0 || r.NsPerBlock <= 0 {
			t.Fatalf("microScan(linear=%v) measured nothing: %+v", linear, r)
		}
		wantMode := "sorted"
		if linear {
			wantMode = "linear"
		}
		if r.Mode != wantMode || r.Figure != "micro" || r.Threads != 16 {
			t.Fatalf("mislabelled micro row: %+v", r)
		}
	}
}

func TestScanSummaryPairsModes(t *testing.T) {
	rows := []ScanResult{
		{Figure: "micro", Scheme: "WFE", Threads: 16, Mode: "linear", NsPerBlock: 100, Mops: 1},
		{Figure: "micro", Scheme: "WFE", Threads: 16, Mode: "sorted", NsPerBlock: 25, Mops: 2},
	}
	lines := ScanSummary(rows)
	if len(lines) != 1 {
		t.Fatalf("got %d summary lines, want 1", len(lines))
	}
	if !strings.Contains(lines[0], "4.0x") || !strings.Contains(lines[0], "+100.0%") {
		t.Fatalf("summary line missing speedup/delta: %q", lines[0])
	}
}

func TestReportMarshalsWithSchema(t *testing.T) {
	rep := Report{
		Schema:  ReportSchema,
		Figures: []Result{{Figure: "7", Scheme: "WFE", Threads: 2, Mops: 1.5, P99Steps: 1}},
		ScanAblation: []ScanResult{
			{Figure: "micro", Scheme: "WFE", Mode: "sorted", NsPerBlock: 25},
		},
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"schema":"wfe-bench/v1"`, `"p99_steps":1`, `"scan_ns_per_block":25`, `"unreclaimed_max":0`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("marshalled report missing %s: %s", key, data)
		}
	}
}

func TestShortOptionsScale(t *testing.T) {
	o := ShortOptions(Options{})
	if o.Duration > 200*time.Millisecond || o.Prefill > 10000 || len(o.Threads) == 0 {
		t.Fatalf("ShortOptions not CI-scale: %+v", o)
	}
	// Explicit values survive.
	o = ShortOptions(Options{Duration: time.Second, Prefill: 123, Threads: []int{7}})
	if o.Duration != time.Second || o.Prefill != 123 || len(o.Threads) != 1 || o.Threads[0] != 7 {
		t.Fatalf("ShortOptions clobbered explicit values: %+v", o)
	}
}

func TestResultScanMetricsPopulated(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real measurements")
	}
	exp, _ := FindExperiment("7")
	exp.Schemes = []string{"WFE"}
	opt := Options{
		Threads:  []int{2},
		Duration: 60 * time.Millisecond,
		Prefill:  500,
		KeyRange: 1000,
	}
	r := Run(exp, opt)[0]
	if r.ScanScans == 0 || r.ScanBlocks == 0 || r.ScanNanos == 0 {
		t.Fatalf("cleanup telemetry missing from result: %+v", r)
	}
	if r.MaxSteps == 0 || r.P99Steps == 0 || r.P99Steps > r.MaxSteps {
		t.Fatalf("step quantiles inconsistent: p99=%d max=%d", r.P99Steps, r.MaxSteps)
	}
	if r.UnreclaimedMax < int(r.Unreclaimed) {
		t.Fatalf("highwater %d below mean %f", r.UnreclaimedMax, r.Unreclaimed)
	}
}

func TestPinnedRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real measurements")
	}
	exp, _ := FindExperiment("7")
	exp.Schemes = []string{"WFE"}
	opt := Options{
		Threads:  []int{2},
		Duration: 30 * time.Millisecond,
		Prefill:  200,
		KeyRange: 500,
		Pin:      true,
	}
	if r := Run(exp, opt)[0]; r.Ops == 0 {
		t.Fatal("pinned run measured no operations")
	}
}
