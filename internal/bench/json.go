package bench

import (
	"runtime"
	"time"
)

// ReportSchema versions the BENCH_*.json layout so downstream trajectory
// tooling can reject artifacts it does not understand.
const ReportSchema = "wfe-bench/v1"

// Report is the machine-readable benchmark artifact (BENCH_<n>.json):
// every paper figure's sweep plus the scan ablation, with enough host
// metadata to compare artifacts across commits without pretending the
// hosts were identical. CI uploads one per main push; diff successive
// artifacts (benchstat-style, by figure/scheme/threads key) to read the
// performance trajectory.
type Report struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`

	// The sweep parameters the figures ran with.
	DurationMS  int64  `json:"duration_ms"`
	Repeat      int    `json:"repeat"`
	Prefill     int    `json:"prefill"`
	KeyRange    uint64 `json:"key_range"`
	EraFreq     int    `json:"era_freq"`
	CleanupFreq int    `json:"cleanup_freq"`
	Threads     []int  `json:"threads"`

	Figures      []Result     `json:"figures"`
	ScanAblation []ScanResult `json:"scan_ablation"`
	// BatchAblation is the batched-operations sweep (batch width ×
	// scheme on the hash-map mix, with per-op baselines); absent from
	// artifacts predating the batch APIs, so trajectory diffs treat the
	// section as optional.
	BatchAblation []BatchResult `json:"batch_ablation,omitempty"`
}

// BuildReport measures the full trajectory artifact: every figure in
// Experiments across opt.Threads, then the scan ablation. Callers tune
// opt for their time budget (cmd/wfebench -short shrinks it to CI scale).
func BuildReport(opt Options) Report {
	opt = opt.Defaults()
	rep := Report{
		Schema:      ReportSchema,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		DurationMS:  opt.Duration.Milliseconds(),
		Repeat:      opt.Repeat,
		Prefill:     opt.Prefill,
		KeyRange:    opt.KeyRange,
		EraFreq:     opt.EraFreq,
		CleanupFreq: opt.CleanupFreq,
		Threads:     opt.Threads,
	}
	for _, exp := range Experiments {
		rep.Figures = append(rep.Figures, Run(exp, opt)...)
	}
	scanOpt := opt
	scanOpt.Threads = nil // let the ablation pick its ≥16-thread point
	rep.ScanAblation = AblationScan(scanOpt)
	rep.BatchAblation = AblationBatch(opt)
	return rep
}

// ShortOptions shrinks a sweep to CI scale: ~100ms points over two
// thread counts with a small prefill — enough to exercise every path and
// produce a trajectory artifact in well under a minute of measurement,
// not enough to quote absolute numbers from.
func ShortOptions(opt Options) Options {
	if opt.Duration == 0 {
		opt.Duration = 100 * time.Millisecond
	}
	if opt.Repeat == 0 {
		opt.Repeat = 1
	}
	if opt.Prefill == 0 {
		opt.Prefill = 5000
	}
	if opt.KeyRange == 0 {
		opt.KeyRange = 20000
	}
	if len(opt.Threads) == 0 {
		opt.Threads = []int{2}
		if wide := min(runtime.GOMAXPROCS(0), 8); wide > 2 {
			opt.Threads = append(opt.Threads, wide)
		}
	}
	return opt
}
