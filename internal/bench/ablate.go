package bench

import (
	"runtime"
	"strconv"
	"time"
)

// AblationResult is one measured ablation point.
type AblationResult struct {
	Ablation string
	Param    string // swept parameter value
	Scheme   string
	DS       string
	Threads  int
	Mops     float64
	// SlowPerMop is WFE slow-path entries per million operations.
	SlowPerMop  float64
	Unreclaimed float64
}

func toAblation(name, param string, r Result) AblationResult {
	slowPerMop := 0.0
	if r.Ops > 0 {
		slowPerMop = float64(r.SlowPaths) / (float64(r.Ops) / 1e6)
	}
	return AblationResult{
		Ablation: name, Param: param, Scheme: r.Scheme, DS: r.DS,
		Threads: r.Threads, Mops: r.Mops, SlowPerMop: slowPerMop,
		Unreclaimed: r.Unreclaimed,
	}
}

func fixedThreads() int { return runtime.GOMAXPROCS(0) }

// AblationAttempts sweeps WFE's fast-path attempt budget (default 16, §5):
// fewer attempts push more GetProtected calls onto the slow path.
func AblationAttempts(opt Options) []AblationResult {
	opt = opt.Defaults()
	exp, _ := FindExperiment("7") // hash map, write-heavy: allocation-hot
	exp.Schemes = []string{"WFE"}
	var out []AblationResult
	for _, attempts := range []int{1, 2, 4, 8, 16, 64, 256} {
		o := opt
		o.MaxAttempts = attempts
		o.Threads = []int{fixedThreads()}
		for _, r := range Run(exp, o) {
			out = append(out, toAblation("attempts", strconv.Itoa(attempts), r))
		}
	}
	return out
}

// AblationSlowPath compares normal WFE against the forced-slow-path
// configuration the paper uses as a stress validation (§5).
func AblationSlowPath(opt Options) []AblationResult {
	opt = opt.Defaults()
	opt.Threads = []int{fixedThreads()}
	var out []AblationResult
	for _, figure := range []string{"5a", "5c", "6", "7", "8"} {
		exp, _ := FindExperiment(figure)
		exp.Schemes = []string{"WFE", "WFE-slow"}
		for _, r := range Run(exp, opt) {
			out = append(out, toAblation("slowpath", exp.DS, r))
		}
	}
	return out
}

// AblationEraFreq sweeps ν, the era-increment frequency (default 150):
// lower ν advances the clock more often (faster reclamation, more clock
// contention and more fast-path retries).
func AblationEraFreq(opt Options) []AblationResult {
	opt = opt.Defaults()
	exp, _ := FindExperiment("7")
	exp.Schemes = []string{"WFE", "HE"}
	var out []AblationResult
	for _, freq := range []int{10, 50, 150, 500, 2000} {
		o := opt
		o.EraFreq = freq
		o.Threads = []int{fixedThreads()}
		for _, r := range Run(exp, o) {
			out = append(out, toAblation("erafreq", strconv.Itoa(freq), r))
		}
	}
	return out
}

// AblationStall reproduces the paper's robustness argument: one reader
// stalls mid-operation while the rest churn. EBR's unreclaimed count grows
// with the run; the bounded schemes stay flat.
func AblationStall(opt Options) []AblationResult {
	opt = opt.Defaults()
	opt.StallThreads = 1
	if opt.Duration < time.Second {
		opt.Duration = time.Second
	}
	threads := fixedThreads()
	if threads < 2 {
		threads = 2
	}
	opt.Threads = []int{threads}
	exp, _ := FindExperiment("7")
	exp.Schemes = []string{"WFE", "HE", "HP", "EBR", "2GEIBR"}
	var out []AblationResult
	for _, r := range Run(exp, opt) {
		out = append(out, toAblation("stall", "1 stalled reader", r))
	}
	return out
}

// AblationWaitFreeIBR measures the extension the paper sketches (§2.4):
// 2GEIBR made wait-free with the WFE construction, against plain 2GEIBR and
// WFE, on the allocation-hot hash map and the traversal-hot list.
func AblationWaitFreeIBR(opt Options) []AblationResult {
	opt = opt.Defaults()
	opt.Threads = []int{fixedThreads()}
	var out []AblationResult
	for _, figure := range []string{"7", "6"} {
		exp, _ := FindExperiment(figure)
		exp.Schemes = []string{"2GEIBR", "WFE-IBR", "WFE"}
		for _, r := range Run(exp, opt) {
			out = append(out, toAblation("wfeibr", exp.DS, r))
		}
	}
	return out
}
