package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wfe"
)

// WorkloadResult is one point of the public-API workloads experiment
// (cmd/wfebench -ablation workloads): a promoted paper structure driven
// through the guardless public API under one scheme at one goroutine
// count. It mirrors the paper figures' two panels (throughput and
// unreclaimed objects) with the guard-runtime telemetry attached.
type WorkloadResult struct {
	Figure      string // the paper figure this workload reproduces
	DS          string
	Scheme      string
	Goroutines  int
	Mops        float64
	Ops         uint64
	Unreclaimed float64 // mean sampled retired-not-freed blocks
	Exhausted   bool    // arena filled up mid-run (Leak with long durations)
	Telemetry   wfe.Telemetry
}

// workloadDS names the four evaluation structures this experiment runs —
// the paper's wait-free queues (Figure 5) and the two search structures
// (Figures 7/8) — now on the public Domain API rather than the internal
// benchmark substrate.
var workloadDS = []struct {
	name   string
	figure string
}{
	{"wfqueue", "5a/5b"},
	{"turnqueue", "5c/5d"},
	{"hashmap", "7"},
	{"tree", "8"},
}

// PublicKV adapts one promoted public structure to a guardless workload
// driver (every call leases through the guard runtime, so the lease path
// is part of what is measured). Queues ignore the key on Remove and panic
// on Get/Put; keys double as values everywhere. cmd/wfestress shares the
// same adapters for its correctness storms.
type PublicKV interface {
	Insert(k uint64) bool
	Remove(k uint64) bool
	Get(k uint64) bool
	Put(k uint64)
	Len() int
}

type pubWFQueue struct{ q *wfe.WFQueue[uint64] }

func (p pubWFQueue) Insert(k uint64) bool { p.q.Enqueue(k); return true }
func (p pubWFQueue) Remove(k uint64) bool { _, ok := p.q.Dequeue(); return ok }
func (p pubWFQueue) Get(k uint64) bool    { panic("wfqueue: no get") }
func (p pubWFQueue) Put(k uint64)         { panic("wfqueue: no put") }
func (p pubWFQueue) Len() int             { return p.q.Len() }

type pubTurnQueue struct{ q *wfe.TurnQueue[uint64] }

func (p pubTurnQueue) Insert(k uint64) bool { p.q.Enqueue(k); return true }
func (p pubTurnQueue) Remove(k uint64) bool { _, ok := p.q.Dequeue(); return ok }
func (p pubTurnQueue) Get(k uint64) bool    { panic("turnqueue: no get") }
func (p pubTurnQueue) Put(k uint64)         { panic("turnqueue: no put") }
func (p pubTurnQueue) Len() int             { return p.q.Len() }

type pubHashMap struct{ m *wfe.HashMap[uint64] }

func (p pubHashMap) Insert(k uint64) bool { return p.m.Insert(k, k) }
func (p pubHashMap) Remove(k uint64) bool { return p.m.Delete(k) }
func (p pubHashMap) Get(k uint64) bool    { _, ok := p.m.Get(k); return ok }
func (p pubHashMap) Put(k uint64)         { p.m.Put(k, k) }
func (p pubHashMap) Len() int             { return p.m.Len() }

type pubTree struct{ t *wfe.Tree[uint64] }

func (p pubTree) Insert(k uint64) bool { return p.t.Insert(k, k) }
func (p pubTree) Remove(k uint64) bool { return p.t.Delete(k) }
func (p pubTree) Get(k uint64) bool    { _, ok := p.t.Get(k); return ok }
func (p pubTree) Put(k uint64)         { p.t.Put(k, k) }
func (p pubTree) Len() int             { return p.t.Len() }

// BuildPublicKV instantiates one promoted public structure on the Domain.
func BuildPublicKV(name string, d *wfe.Domain[uint64], keyRange uint64) PublicKV {
	switch name {
	case "wfqueue":
		return pubWFQueue{wfe.NewWFQueue[uint64](d)}
	case "turnqueue":
		return pubTurnQueue{wfe.NewTurnQueue[uint64](d)}
	case "hashmap":
		return pubHashMap{wfe.NewHashMap[uint64](d, int(keyRange))}
	case "tree":
		return pubTree{wfe.NewTree[uint64](d)}
	}
	panic("bench: unknown public workload " + name)
}

// IsPublicQueue reports whether the promoted structure only supports
// insert/remove.
func IsPublicQueue(name string) bool { return name == "wfqueue" || name == "turnqueue" }

// LeakExhausted reports whether a recovered worker panic is the leak
// baseline legitimately filling its fixed arena — the one panic the bench
// sweep and cmd/wfestress treat as a benign early end rather than a bug.
// The panic value is either the arena's own string (the raw mem.Arena
// path) or an error wrapping wfe.ErrArenaExhausted (the Domain's
// backpressure path, which skips emergency scans for Leak — there is no
// judge to scan with).
func LeakExhausted(r any, kind wfe.SchemeKind) bool {
	if kind != wfe.Leak {
		return false
	}
	if err, ok := r.(error); ok && errors.Is(err, wfe.ErrArenaExhausted) {
		return true
	}
	return strings.Contains(fmt.Sprint(r), "arena exhausted")
}

// MaxTurnGuards is the CRTurn claim word's tid capacity: TurnQueue domains
// must keep MaxGuards below 255, so sweeps clamp their goroutine counts.
const MaxTurnGuards = 254

// Workloads sweeps the four promoted structures over every scheme and the
// requested goroutine counts, reproducing the paper's Figure 5 and 8
// shapes end to end through the public API (cmd/wfebench -ablation
// workloads). Queue runs split 50/50 between enqueue and dequeue; the
// search structures run the paper's write-heavy 50i/50d mix.
func Workloads(opt Options) []WorkloadResult {
	opt = opt.Defaults()
	var results []WorkloadResult
	for _, ds := range workloadDS {
		clamped := false
		for _, goroutines := range opt.Threads {
			if ds.name == "turnqueue" && goroutines > MaxTurnGuards {
				// The claim word holds at most 254 tids: measure the
				// clamped point once, not once per excessive thread count.
				if clamped {
					continue
				}
				goroutines, clamped = MaxTurnGuards, true
			}
			for _, kind := range wfe.AllSchemes() { // all seven, WFE-IBR included
				best := WorkloadResult{}
				for rep := 0; rep < opt.Repeat; rep++ {
					r := runPublicWorkload(ds.name, ds.figure, kind.String(), goroutines, opt)
					if r.Mops > best.Mops || rep == 0 {
						best = r
					}
				}
				results = append(results, best)
			}
		}
	}
	return results
}

func runPublicWorkload(dsName, figure, schemeName string, goroutines int, opt Options) WorkloadResult {
	kind, err := wfe.ParseScheme(schemeName)
	if err != nil {
		panic(err)
	}
	isQueue := IsPublicQueue(dsName)
	capacity := opt.Capacity
	if capacity == 0 {
		if kind == wfe.Leak {
			capacity = 1 << 22
		} else {
			// Live set + retired backlog headroom, as in arenaCapacity; the
			// wait-free queues box every value in a second block, hence the
			// doubled prefill term.
			capacity = 8*opt.Prefill + goroutines*4096 + 1<<18
		}
	}
	d, err := wfe.NewDomain[uint64](wfe.Options{
		Scheme:      kind,
		Capacity:    capacity,
		MaxGuards:   goroutines,
		EraFreq:     opt.EraFreq,
		CleanupFreq: opt.CleanupFreq,
		MaxAttempts: opt.MaxAttempts,
	})
	if err != nil {
		panic(err)
	}
	if opt.Observe != nil {
		opt.Observe(fmt.Sprintf("%s/%s/t%d", dsName, schemeName, goroutines), d.Telemetry)
	}
	kv := BuildPublicKV(dsName, d, opt.KeyRange)

	// Prefill: queues get opt.Prefill enqueues, search structures
	// opt.Prefill distinct keys — the paper's §5 methodology.
	rng := rand.New(rand.NewSource(12345))
	if isQueue {
		for i := 0; i < opt.Prefill; i++ {
			kv.Insert(uint64(rng.Int63n(int64(opt.KeyRange))))
		}
	} else {
		// prefillKeys returns sorted keys for the internal harness's
		// balanced bulk-load; the public facade inserts them one by one, so
		// shuffle first — sorted insertion would degenerate the external
		// BST into a list and the measurement with it.
		keys := prefillKeys(opt.Prefill, opt.KeyRange, rng)
		rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
		for _, k := range keys {
			kv.Insert(k)
		}
	}

	var (
		stop      atomic.Bool
		exhausted atomic.Bool
		opsByW    = make([]uint64, goroutines)
	)

	// Unreclaimed sampler (the paper's second panel).
	var samples []int
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for !stop.Load() {
			<-tick.C
			samples = append(samples, d.Unreclaimed())
		}
	}()

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ops := uint64(0)
			// Record the count even on the panic path below, so Exhausted
			// rows are not undercounted by the dying worker's share.
			defer func() { opsByW[w] = ops }()
			defer func() {
				if r := recover(); r != nil {
					// Only the leak baseline filling its fixed arena is a
					// benign early end; any other panic is a real bug and
					// must crash the sweep, not be masked as an Exhausted
					// capacity artifact.
					if !LeakExhausted(r, kind) {
						panic(r)
					}
					exhausted.Store(true)
					stop.Store(true)
				}
			}()
			r := rand.New(rand.NewSource(int64(w)*7919 + 1))
			for !stop.Load() {
				// Queues and search structures alike run the paper's
				// write-heavy 50% insert / 50% delete mix.
				key := uint64(r.Int63n(int64(opt.KeyRange)))
				if r.Intn(2) == 0 {
					kv.Insert(key)
				} else {
					kv.Remove(key)
				}
				ops++
				if ops&63 == 0 && time.Since(start) > opt.Duration {
					stop.Store(true)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	stop.Store(true)
	<-samplerDone
	d.FlushGuardCache()

	var totalOps uint64
	for _, n := range opsByW {
		totalOps += n
	}
	unreclaimed := float64(d.Unreclaimed())
	if len(samples) > 0 {
		sum := 0
		for _, s := range samples {
			sum += s
		}
		unreclaimed = float64(sum) / float64(len(samples))
	}

	return WorkloadResult{
		Figure:      figure,
		DS:          dsName,
		Scheme:      schemeName,
		Goroutines:  goroutines,
		Mops:        float64(totalOps) / elapsed.Seconds() / 1e6,
		Ops:         totalOps,
		Unreclaimed: unreclaimed,
		Exhausted:   exhausted.Load(),
		Telemetry:   d.Telemetry(),
	}
}

// WorkloadString renders one result row for the text report.
func (r WorkloadResult) WorkloadString() string {
	mops := fmt.Sprintf("%.3f", r.Mops)
	if r.Exhausted {
		mops += "*"
	}
	return fmt.Sprintf("%-12s%-10s%-10s%8d%12s%14.1f", "fig "+r.Figure, r.DS, r.Scheme,
		r.Goroutines, mops, r.Unreclaimed)
}
