package bench

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"wfe"
)

// GuardOverheadResult is one point of the guard-runtime overhead
// experiment: the same stack push/pop workload driven through one of the
// public API's guard acquisition paths. The guard-pool telemetry explains
// the throughput: pinned pays one pool acquisition per worker, guardless
// turns per-operation leases into cache hits, acquire-per-op shows what
// the lease cache saves, and the oversubscribed run adds parking.
type GuardOverheadResult struct {
	Mode       string // acquisition path
	Goroutines int
	Guards     int
	Mops       float64
	Telemetry  wfe.Telemetry
}

// GuardOverhead measures the guard runtime's overhead per acquisition
// path (cmd/wfebench -ablation guards). All runs use the WFE scheme: the
// experiment isolates the runtime above the scheme, not the scheme.
func GuardOverhead(opt Options) []GuardOverheadResult {
	opt = opt.Defaults()
	guards := fixedThreads()
	return []GuardOverheadResult{
		runGuardMode("pinned", guards, guards, opt),
		runGuardMode("guardless", guards, guards, opt),
		runGuardMode("guardless-8x", 8*guards, guards, opt),
		runGuardMode("acquire-per-op", guards, guards, opt),
	}
}

func runGuardMode(mode string, goroutines, guards int, opt Options) GuardOverheadResult {
	d, err := wfe.NewDomain[uint64](wfe.Options{
		Scheme:      wfe.WFE,
		Capacity:    1 << 20,
		MaxGuards:   guards,
		EraFreq:     opt.EraFreq,
		CleanupFreq: opt.CleanupFreq,
		MaxAttempts: opt.MaxAttempts,
	})
	if err != nil {
		panic(err)
	}
	s := wfe.NewStack[uint64](d)

	var (
		stop  atomic.Bool
		total atomic.Uint64
		wg    sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if opt.Pin {
				runtime.LockOSThread()
				defer runtime.UnlockOSThread()
			}
			ops := uint64(0)
			defer func() { total.Add(ops) }()
			switch mode {
			case "pinned":
				g := d.Pin()
				defer d.Unpin(g)
				for !stop.Load() {
					s.PushGuarded(g, uint64(w))
					s.PopGuarded(g)
					ops += 2
				}
			case "guardless", "guardless-8x":
				for !stop.Load() {
					s.Push(uint64(w))
					s.Pop()
					ops += 2
				}
			case "acquire-per-op":
				for !stop.Load() {
					g, err := d.AcquireGuard(context.Background())
					if err != nil {
						return
					}
					s.PushGuarded(g, uint64(w))
					s.PopGuarded(g)
					g.Release()
					ops += 2
				}
			}
		}(w)
	}
	time.Sleep(opt.Duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	d.FlushGuardCache()

	return GuardOverheadResult{
		Mode:       mode,
		Goroutines: goroutines,
		Guards:     guards,
		Mops:       float64(total.Load()) / elapsed.Seconds() / 1e6,
		Telemetry:  d.Telemetry(),
	}
}
