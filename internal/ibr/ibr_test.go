package ibr

import (
	"math/rand"
	"slices"
	"sync/atomic"
	"testing"

	"wfe/internal/mem"
	"wfe/internal/pack"
	"wfe/internal/reclaim"
)

func newIBR(t *testing.T, threads int) (*IBR, *mem.Arena) {
	t.Helper()
	a := mem.New(mem.Config{Capacity: 1 << 12, MaxThreads: threads, Debug: true})
	return New(a, reclaim.Config{MaxThreads: threads, CleanupFreq: 1, EraFreq: 1}), a
}

func TestIntervalOverlapSemantics(t *testing.T) {
	ib, a := newIBR(t, 1)
	blk := ib.Alloc(0)
	a.SetAllocEra(blk, 10) // lifespan [10, 20]
	a.SetRetireEra(blk, 20)

	cases := []struct {
		lo, hi uint64
		want   bool // canDelete
	}{
		{1, 9, true},    // interval entirely before birth
		{21, 30, true},  // entirely after retirement
		{1, 10, false},  // touches birth
		{20, 25, false}, // touches retirement
		{12, 15, false}, // nested inside
		{5, 30, false},  // covers the lifespan
	}
	for _, c := range cases {
		for _, linear := range []bool{true, false} {
			if got := ib.canDelete(blk, []uint64{c.lo}, []uint64{c.hi}, linear); got != c.want {
				t.Errorf("canDelete(linear=%v) vs interval [%d,%d] = %v, want %v", linear, c.lo, c.hi, got, c.want)
			}
		}
	}
	if !ib.canDelete(blk, nil, nil, false) {
		t.Error("canDelete with no intervals = false")
	}
}

func TestSortedScanMatchesLinearOracle(t *testing.T) {
	// Property: on randomized reservation-interval sets, the
	// sorted-endpoint counting test reaches exactly the free/keep decision
	// of the pre-overhaul paired linear sweep (the retained oracle) —
	// including intervals left half-open at Inf by a racing Clear.
	rng := rand.New(rand.NewSource(20260729))
	for iter := 0; iter < 500; iter++ {
		n := rng.Intn(48)
		los := make([]uint64, n)
		his := make([]uint64, n)
		for i := range los {
			los[i] = uint64(rng.Intn(120)) + 1
			if rng.Intn(16) == 0 {
				his[i] = pack.Inf // gather raced a Begin/Clear hand-over
			} else {
				his[i] = los[i] + uint64(rng.Intn(20))
			}
		}
		sortedLos := slices.Clone(los)
		sortedHis := slices.Clone(his)
		slices.Sort(sortedLos)
		slices.Sort(sortedHis)
		for b := 0; b < 32; b++ {
			birth := uint64(rng.Intn(120)) + 1
			retire := birth + uint64(rng.Intn(16))
			want := intervalReservedLinear(los, his, birth, retire)
			if got := reclaim.IntervalsOverlap(sortedLos, sortedHis, birth, retire); got != want {
				t.Fatalf("lifespan [%d,%d] vs intervals (%v,%v): sorted=%v linear=%v",
					birth, retire, los, his, got, want)
			}
		}
	}
}

func TestBeginResetsInterval(t *testing.T) {
	ib, _ := newIBR(t, 1)
	ib.globalEra.Store(42)
	ib.Begin(0)
	iv := &ib.intervals[0]
	if iv.lower.Load() != 42 || iv.upper.Load() != 42 {
		t.Fatalf("interval = [%d,%d], want [42,42]", iv.lower.Load(), iv.upper.Load())
	}
	ib.Clear(0)
	if iv.lower.Load() != pack.Inf {
		t.Fatal("Clear did not release the interval")
	}
}

func TestGetProtectedStretchesUpper(t *testing.T) {
	ib, _ := newIBR(t, 1)
	ib.Begin(0)
	lo := ib.intervals[0].lower.Load()
	ib.globalEra.Add(7)
	var root atomic.Uint64
	blk := ib.Alloc(0)
	root.Store(blk)
	if got := ib.GetProtected(0, &root, 0, 0); got != blk {
		t.Fatalf("GetProtected = %d", got)
	}
	iv := &ib.intervals[0]
	if iv.lower.Load() != lo {
		t.Fatal("lower bound moved during the operation")
	}
	if iv.upper.Load() != ib.Era() {
		t.Fatalf("upper = %d, want the current era %d", iv.upper.Load(), ib.Era())
	}
}

func TestRetireAdvancesEraWithoutAllocs(t *testing.T) {
	// Retire-only phases must still make reclamation progress (drain
	// scenario): the era advances on retirement too.
	ib, a := newIBR(t, 1)
	blks := make([]mem.Handle, 40)
	for i := range blks {
		blks[i] = ib.Alloc(0)
	}
	for _, b := range blks {
		ib.Retire(0, b)
	}
	freed := 0
	for _, b := range blks {
		if !a.Live(b) {
			freed++
		}
	}
	if freed == 0 {
		t.Fatal("no blocks reclaimed during a retire-only phase")
	}
}
