// Package ibr implements 2GEIBR, the tagged-pointer-free variant of
// interval-based reclamation (Wen et al., PPoPP 2018) the paper benchmarks
// against. Every block carries a birth era and a retire era; every thread
// maintains one reservation interval [lower, upper] spanning its current
// operation. A retired block is freed when its lifespan interval overlaps no
// thread's reservation interval.
//
// Like Hazard Eras, the upper-bound refresh loop in GetProtected is
// lock-free, not wait-free; the paper notes WFE's construction applies to
// 2GEIBR as well.
//
// Paper mapping: §2.4's description of interval-based reclamation and the
// "2GEIBR" series of the evaluation figures (§5); the remark that "our
// approach is applicable to the 2GEIBR version" is implemented in
// internal/wfeibr.
//
// The retire side lives in the shared reclaim.Retirer; this package
// contributes the era clock, the interval matrix, and its interval Judge
// (Gather the open intervals, CanFree every block whose lifespan overlaps
// none). The retire-driven era advance rides the runtime's OnRetire hook.
package ibr

import (
	"sync/atomic"

	"wfe/internal/mem"
	"wfe/internal/pack"
	"wfe/internal/reclaim"
	"wfe/internal/trace"
)

type threadState struct {
	allocCount uint64
	_          [64]byte
}

// interval is one thread's padded reservation [lower, upper].
type interval struct {
	lower atomic.Uint64
	upper atomic.Uint64
	_     [48]byte
}

// IBR is the 2GEIBR scheme.
type IBR struct {
	arena     *mem.Arena
	cfg       reclaim.Config
	rt        *reclaim.Retirer
	globalEra atomic.Uint64
	intervals []interval
	threads   []threadState
}

var _ reclaim.Scheme = (*IBR)(nil)
var _ reclaim.Judge = (*IBR)(nil)
var _ reclaim.RetireObserver = (*IBR)(nil)
var _ reclaim.Kinder = (*IBR)(nil)

// JudgeKind implements reclaim.Kinder: 2GEIBR judges by interval overlap
// (two binary searches per retired block), so its auto-calibrated
// SortCutoff uses the interval crossover.
func (ib *IBR) JudgeKind() reclaim.JudgeKind { return reclaim.IntervalJudge }

// New creates a 2GEIBR scheme over the given arena.
func New(arena *mem.Arena, cfg reclaim.Config) *IBR {
	cfg = cfg.Defaults()
	ib := &IBR{
		arena:     arena,
		cfg:       cfg,
		intervals: make([]interval, cfg.MaxThreads),
		threads:   make([]threadState, cfg.MaxThreads),
	}
	ib.rt = reclaim.NewRetirer(arena, cfg, ib)
	ib.globalEra.Store(max(1, cfg.InitialEra))
	for i := range ib.intervals {
		ib.intervals[i].lower.Store(pack.Inf)
		ib.intervals[i].upper.Store(pack.Inf)
	}
	return ib
}

// Name implements reclaim.Scheme.
func (ib *IBR) Name() string { return "2GEIBR" }

// Arena implements reclaim.Scheme.
func (ib *IBR) Arena() *mem.Arena { return ib.arena }

// Retirer implements reclaim.Scheme.
func (ib *IBR) Retirer() *reclaim.Retirer { return ib.rt }

// Era returns the current global era clock value.
func (ib *IBR) Era() uint64 { return ib.globalEra.Load() }

// Begin starts a fresh reservation interval at the current era.
func (ib *IBR) Begin(tid int) {
	e := ib.globalEra.Load()
	iv := &ib.intervals[tid]
	iv.upper.Store(e)
	iv.lower.Store(e)
}

// GetProtected stretches the thread's upper reservation until the global
// era stabilises across a read of src. Each call's iteration count feeds
// the shared step histogram — the same lock-free unboundedness as Hazard
// Eras', observable.
func (ib *IBR) GetProtected(tid int, src *atomic.Uint64, index int, parent mem.Handle) uint64 {
	iv := &ib.intervals[tid]
	prev := iv.upper.Load()
	for steps := uint64(1); ; steps++ {
		ret := src.Load()
		cur := ib.globalEra.Load()
		if prev == cur {
			ib.rt.RecordSteps(tid, steps)
			return ret
		}
		iv.upper.Store(cur)
		prev = cur
	}
}

// Clear ends the operation's interval.
func (ib *IBR) Clear(tid int) {
	iv := &ib.intervals[tid]
	iv.lower.Store(pack.Inf)
	iv.upper.Store(pack.Inf)
}

// BeginBatch implements reclaim.Scheme: one reservation interval spans the
// whole batch — GetProtected keeps stretching its upper bound as the era
// moves, so the open interval covers every block the batch touches. The
// cost is the same conservatism as one long operation: a wider interval
// for the scans to respect.
func (ib *IBR) BeginBatch(tid int) bool {
	ib.Begin(tid)
	return true
}

// EndBatch implements reclaim.Scheme: close the batch's interval.
func (ib *IBR) EndBatch(tid int) { ib.Clear(tid) }

// RetireBatch implements reclaim.Scheme: stamp every block with the era
// read once at submission (monotone, so ≥ each unlink's era — a
// conservative lifespan) and hand the burst to the runtime's amortized
// retire path; the retire-driven era advance ticks once per burst through
// OnRetire.
func (ib *IBR) RetireBatch(tid int, blks []mem.Handle) {
	era := ib.globalEra.Load()
	for _, blk := range blks {
		ib.arena.SetRetireEra(blk, era)
	}
	ib.rt.RetireBatch(tid, blks)
}

// Alloc stamps the block's birth era and periodically advances the clock.
func (ib *IBR) Alloc(tid int) mem.Handle {
	t := &ib.threads[tid]
	if t.allocCount%uint64(ib.cfg.EraFreq) == 0 {
		ib.advanceEra(tid)
	}
	t.allocCount++
	blk := ib.arena.Alloc(tid)
	ib.arena.SetAllocEra(blk, ib.globalEra.Load())
	return blk
}

// TryAlloc is Alloc with backpressure: the era cadence still ticks, but
// arena exhaustion reports (0, false) instead of panicking.
func (ib *IBR) TryAlloc(tid int) (mem.Handle, bool) {
	t := &ib.threads[tid]
	if t.allocCount%uint64(ib.cfg.EraFreq) == 0 {
		ib.advanceEra(tid)
	}
	t.allocCount++
	blk, ok := ib.arena.TryAlloc(tid)
	if !ok {
		return 0, false
	}
	ib.arena.SetAllocEra(blk, ib.globalEra.Load())
	return blk, true
}

// AdvanceClock ticks the global era out of the allocation cadence
// (reclaim.ClockAdvancer) — the emergency-reclamation hook.
func (ib *IBR) AdvanceClock(tid int) { ib.advanceEra(tid) }

// Retire stamps the retire era and hands the block to the shared
// retire-side runtime.
func (ib *IBR) Retire(tid int, blk mem.Handle) {
	ib.arena.SetRetireEra(blk, ib.globalEra.Load())
	ib.rt.Retire(tid, blk)
}

// OnRetire implements reclaim.RetireObserver: the era also advances on
// retirement (not just allocation) so that retire-heavy phases with no
// allocations still make reclamation progress.
func (ib *IBR) OnRetire(tid int, n uint64, blk mem.Handle) {
	if n%uint64(ib.cfg.EraFreq) == 0 {
		ib.advanceEra(tid)
	}
}

// advanceEra bumps the clock, guarding the 38-bit packing bound.
func (ib *IBR) advanceEra(tid int) {
	era := ib.globalEra.Add(1)
	if era >= pack.MaxEra {
		panic("ibr: era clock exhausted (2^38 increments); see pack's width accounting")
	}
	ib.cfg.Tracer.Emit(tid, trace.KindEraAdvance, era, 0)
}

// Gather implements reclaim.Judge: snapshot the open reservation intervals
// once per scan (conservative in the same way as the per-block re-scan;
// see the HE gather comment).
func (ib *IBR) Gather(tid int, s *reclaim.Snapshot) {
	for i := 0; i < ib.cfg.MaxThreads; i++ {
		iv := &ib.intervals[i]
		lower := iv.lower.Load()
		if lower == pack.Inf {
			continue
		}
		s.AddInterval(lower, iv.upper.Load())
	}
}

// CanFree implements reclaim.Judge via canDelete, which retains the
// pre-overhaul paired linear sweep as the property-tested reference
// oracle.
func (ib *IBR) CanFree(tid int, s *reclaim.Snapshot, blk mem.Handle) bool {
	los, his := s.Intervals()
	return ib.canDelete(blk, los, his, s.Linear())
}

// canDelete reports whether the block's [birth, retire] lifespan overlaps
// none of the gathered reservation intervals; linear selects the paired
// reference sweep (the endpoint slices are sorted independently
// otherwise).
func (ib *IBR) canDelete(blk mem.Handle, los, his []uint64, linear bool) bool {
	birth := ib.arena.AllocEra(blk)
	retire := ib.arena.RetireEra(blk)
	if linear {
		return !intervalReservedLinear(los, his, birth, retire)
	}
	return !reclaim.IntervalsOverlap(los, his, birth, retire)
}

// intervalReservedLinear is the pre-overhaul O(G) per-block overlap sweep
// over paired endpoints, kept as the reference oracle for the sorted
// scan's property test and the -ablation scan comparison.
func intervalReservedLinear(los, his []uint64, birth, retire uint64) bool {
	for i := range los {
		if birth <= his[i] && retire >= los[i] {
			return true
		}
	}
	return false
}

// Unreclaimed implements reclaim.Scheme.
func (ib *IBR) Unreclaimed() int { return ib.rt.Unreclaimed() }
