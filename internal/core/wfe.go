// Package core implements Wait-Free Eras (WFE), the paper's contribution:
// a universal memory reclamation scheme in which every operation —
// GetProtected, Retire, Alloc, Clear and the internal cleanup — completes in
// a bounded number of steps (Nikolaev & Ravindran, PPoPP 2020, Figure 4).
//
// WFE runs Hazard Eras on the fast path. When GetProtected fails to observe
// a stable global era within MaxAttempts iterations, the thread publishes a
// helping request (state[tid][index]) and enters the slow path. Threads that
// would advance the global era from Alloc or Retire first help every pending
// request (increment_era → help_thread), bounding the slow-path loop by the
// number of in-flight era increments (paper Lemma 1).
//
// The paper's two 128-bit WCAS targets — the {era, tag} reservation pair and
// the {pointer, era} result pair — are packed into single 64-bit words by
// the pack package; see pack's documentation for the width argument. Where
// the paper's owner thread writes one half of a pair with a plain store, the
// packed representation must write the whole word; each such site is
// annotated with the interleaving argument for why the combined write is
// safe.
//
// The retire side lives in the shared reclaim.Retirer; this package
// contributes the helping machinery and a two-phase Judge that preserves
// the paper's Figure 4 cleanup discipline: the first snapshot gathers
// normal reservations then the first special reservation, the
// counterStart/counterEnd gate decides whether phase-one survivors must be
// re-judged, and the second snapshot gathers the second special
// reservation then the normals again — the Lemma 4/5 read order, intact.
package core

import (
	"sync/atomic"

	"wfe/internal/mem"
	"wfe/internal/pack"
	"wfe/internal/reclaim"
	"wfe/internal/trace"
)

// slowSlot is the paper's state_s: one helping request per reservation.
type slowSlot struct {
	// result is a packed ResPair. Input (request posted): {InvPtr, tag}.
	// Output: {link value, era}. Cancelled: {0, Inf}.
	result atomic.Uint64
	// era is the parent block's allocation era, protecting the parent while
	// helpers dereference pointer (Inf when the source is a structure root).
	era atomic.Uint64
	// pointer is the hazardous location to read on the requester's behalf.
	pointer atomic.Pointer[atomic.Uint64]
	_       [64 - 3*8]byte
}

// threadState is per-thread, owner-written bookkeeping.
type threadState struct {
	allocCount uint64
	// dirty is one past the highest reservation index used since the last
	// Clear, bounding Clear's work to the indices actually touched.
	dirty int
	_     [64]byte
}

// WFE is the Wait-Free Eras scheme.
type WFE struct {
	arena *mem.Arena
	cfg   reclaim.Config
	rt    *reclaim.Retirer

	globalEra    atomic.Uint64
	counterStart atomic.Uint64 // threads that entered the slow path
	counterEnd   atomic.Uint64 // threads that left the slow path

	// reservations is row-major [MaxThreads][MaxHEs+2] of packed EraTag
	// words, rows padded to a cache-line multiple. Slots MaxHEs and
	// MaxHEs+1 are the two special reservations used only by help_thread.
	reservations []atomic.Uint64
	rowStride    int

	state   []slowSlot // row-major [MaxThreads][MaxHEs]
	threads []threadState

	// slowPaths counts slow-path entries; ablation A1 reads it.
	slowPaths atomic.Uint64
}

var _ reclaim.Scheme = (*WFE)(nil)
var _ reclaim.TwoPhase = (*WFE)(nil)
var _ reclaim.PreScanner = (*WFE)(nil)

// New creates a WFE scheme over the given arena.
func New(arena *mem.Arena, cfg reclaim.Config) *WFE {
	cfg = cfg.Defaults()
	n, h := cfg.MaxThreads, cfg.MaxHEs
	stride := (h + 2 + 7) &^ 7 // round the row up to 8 words (a cache line)
	w := &WFE{
		arena:        arena,
		cfg:          cfg,
		reservations: make([]atomic.Uint64, n*stride),
		rowStride:    stride,
		state:        make([]slowSlot, n*h),
		threads:      make([]threadState, n),
	}
	w.rt = reclaim.NewRetirer(arena, cfg, w)
	w.globalEra.Store(max(1, cfg.InitialEra))
	inf := uint64(pack.MakeEraTag(pack.Inf, 0))
	for i := range w.reservations {
		w.reservations[i].Store(inf)
	}
	for i := range w.state {
		w.state[i].result.Store(uint64(pack.MakeRes(0, pack.Inf)))
		w.state[i].era.Store(pack.Inf)
	}
	return w
}

// Name implements reclaim.Scheme.
func (w *WFE) Name() string { return "WFE" }

// Begin implements reclaim.Scheme; WFE needs no per-operation prologue.
func (w *WFE) Begin(tid int) {}

// Arena implements reclaim.Scheme.
func (w *WFE) Arena() *mem.Arena { return w.arena }

// Retirer implements reclaim.Scheme.
func (w *WFE) Retirer() *reclaim.Retirer { return w.rt }

// Era returns the current global era clock value.
func (w *WFE) Era() uint64 { return w.globalEra.Load() }

// SlowPaths returns how many GetProtected calls entered the slow path.
func (w *WFE) SlowPaths() uint64 { return w.slowPaths.Load() }

// MaxSteps reports the worst combined fast+slow iteration count observed by
// any thread for a single GetProtected call — WFE's whole point is that
// this stays bounded under adversarial era movement.
func (w *WFE) MaxSteps() uint64 { return w.rt.MaxSteps() }

func (w *WFE) resv(tid, j int) *atomic.Uint64 {
	return &w.reservations[tid*w.rowStride+j]
}

func (w *WFE) slot(tid, j int) *slowSlot {
	return &w.state[tid*w.cfg.MaxHEs+j]
}

// GetProtected implements the paper's get_protected (Figure 4, lines 12-55).
func (w *WFE) GetProtected(tid int, src *atomic.Uint64, index int, parent mem.Handle) uint64 {
	if t := &w.threads[tid]; index >= t.dirty {
		t.dirty = index + 1
	}
	r := w.resv(tid, index)
	cur := pack.EraTag(r.Load())
	prevEra, tag := cur.Era(), cur.Tag()

	if !w.cfg.ForceSlowPath {
		for a := 0; a < w.cfg.MaxAttempts; a++ { // fast path
			ret := src.Load()
			newEra := w.globalEra.Load()
			if prevEra == newEra {
				w.rt.RecordSteps(tid, uint64(a)+1)
				return ret
			}
			// Owner-only full-word store. A helper CAS on this word requires
			// a pending request with the current tag; no request is pending
			// on the fast path, so the combined {era, tag} store cannot
			// clobber a helper's update.
			r.Store(uint64(pack.MakeEraTag(newEra, tag)))
			prevEra = newEra
		}
	}
	return w.getProtectedSlow(tid, src, index, parent, prevEra, tag)
}

func (w *WFE) getProtectedSlow(tid int, src *atomic.Uint64, index int, parent mem.Handle, prevEra, tag uint64) uint64 {
	w.slowPaths.Add(1)

	// Fetch the parent's era so helpers can protect the block holding src.
	allocEra := uint64(pack.Inf)
	if parent != 0 {
		allocEra = w.arena.AllocEra(parent)
	}

	// Publish the helping request.
	w.counterStart.Add(1)
	st := w.slot(tid, index)
	st.pointer.Store(src)
	st.era.Store(allocEra)
	pending := uint64(pack.MakeRes(pack.InvPtr, tag))
	st.result.Store(pending)

	r := w.resv(tid, index)
	steps := uint64(w.cfg.MaxAttempts)
	defer func() { w.rt.RecordSteps(tid, steps) }()
	for { // bounded by the number of in-flight era increments (Lemma 1)
		steps++
		ret := src.Load()
		newEra := w.globalEra.Load()
		if prevEra == newEra &&
			st.result.CompareAndSwap(pending, uint64(pack.MakeRes(0, pack.Inf))) {
			// Self-completion: the request was cancelled before any helper
			// produced output, so no helper will CAS this reservation for
			// this tag; the combined store advancing the tag is safe. The
			// era field keeps prevEra, which protects ret.
			r.Store(uint64(pack.MakeEraTag(prevEra, tag+1)))
			w.counterEnd.Add(1)
			return ret
		}
		// Keep the published reservation's era current; failures mean a
		// helper already updated it, which is fine (paper line 44).
		r.CompareAndSwap(uint64(pack.MakeEraTag(prevEra, tag)), uint64(pack.MakeEraTag(newEra, tag)))
		prevEra = newEra

		res := pack.ResPair(st.result.Load())
		if !res.Pending() {
			// A helper produced the output: adopt its era. The helper's own
			// reservation CAS (if it won) wrote the same {era, tag+1} pair,
			// so this combined store writes an identical value at worst.
			w.resv(tid, index).Store(uint64(pack.MakeEraTag(res.Val(), tag+1)))
			w.counterEnd.Add(1)
			return res.Ptr()
		}
	}
}

// incrementEra helps every pending slow-path request before advancing the
// global era (paper lines 87-99); this is what makes the slow path bounded.
func (w *WFE) incrementEra(tid int) {
	ce := w.counterEnd.Load()
	cs := w.counterStart.Load()
	if cs != ce {
		for i := 0; i < w.cfg.MaxThreads; i++ {
			for j := 0; j < w.cfg.MaxHEs; j++ {
				if pack.ResPair(w.slot(i, j).result.Load()).Pending() {
					w.helpThread(i, j, tid)
				}
			}
		}
	}
	era := w.globalEra.Add(1)
	if era >= pack.MaxEra {
		panic("wfe: era clock exhausted (2^38 increments); see pack's width accounting")
	}
	w.cfg.Tracer.Emit(tid, trace.KindEraAdvance, era, 0)
}

// helpThread completes thread i's request at reservation j on its behalf
// (paper lines 101-134).
func (w *WFE) helpThread(i, j, tid int) {
	st := w.slot(i, j)
	res := pack.ResPair(st.result.Load())
	if !res.Pending() {
		return
	}
	era := st.era.Load()
	// Special reservation 1 protects the parent block while we read from it.
	w.resv(tid, w.cfg.MaxHEs).Store(uint64(pack.MakeEraTag(era, 0)))

	ptr := st.pointer.Load()
	tag := pack.EraTag(w.resv(i, j).Load()).Tag()
	if tag == res.Val() && ptr != nil {
		// All state fields were read consistently: the request is still in
		// the slow-path cycle identified by tag.
		prevEra := w.globalEra.Load()
		for { // bounded by in-flight era increments (Lemma 2)
			// Special reservation 2 protects the block the hazardous entry
			// refers to while the reservation is handed over.
			w.resv(tid, w.cfg.MaxHEs+1).Store(uint64(pack.MakeEraTag(prevEra, 0)))
			ret := ptr.Load() & pack.PtrMask
			newEra := w.globalEra.Load()
			if prevEra == newEra {
				if st.result.CompareAndSwap(uint64(res), uint64(pack.MakeRes(ret, newEra))) {
					for { // at most 2 iterations (Lemma 3)
						old := pack.EraTag(w.resv(i, j).Load())
						if old.Tag() != tag {
							break
						}
						if w.resv(i, j).CompareAndSwap(uint64(old), uint64(pack.MakeEraTag(newEra, tag+1))) {
							break
						}
					}
				}
				break
			}
			prevEra = newEra
			if pack.ResPair(st.result.Load()) != res {
				break
			}
		}
		w.resv(tid, w.cfg.MaxHEs+1).Store(uint64(pack.MakeEraTag(pack.Inf, 0)))
	}
	w.resv(tid, w.cfg.MaxHEs).Store(uint64(pack.MakeEraTag(pack.Inf, 0)))
}

// Alloc implements the paper's alloc_block (Figure 4, lines 69-75).
func (w *WFE) Alloc(tid int) mem.Handle {
	t := &w.threads[tid]
	if t.allocCount%uint64(w.cfg.EraFreq) == 0 {
		w.incrementEra(tid)
	}
	t.allocCount++
	h := w.arena.Alloc(tid)
	w.arena.SetAllocEra(h, w.globalEra.Load())
	return h
}

// TryAlloc is Alloc with backpressure: the era cadence still ticks, but
// arena exhaustion reports (0, false) instead of panicking.
func (w *WFE) TryAlloc(tid int) (mem.Handle, bool) {
	t := &w.threads[tid]
	if t.allocCount%uint64(w.cfg.EraFreq) == 0 {
		w.incrementEra(tid)
	}
	t.allocCount++
	h, ok := w.arena.TryAlloc(tid)
	if !ok {
		return 0, false
	}
	w.arena.SetAllocEra(h, w.globalEra.Load())
	return h, true
}

// AdvanceClock ticks the global era out of the allocation cadence
// (reclaim.ClockAdvancer) — the emergency-reclamation hook, routed
// through incrementEra so pending slow-path requests get helped first.
func (w *WFE) AdvanceClock(tid int) { w.incrementEra(tid) }

// Retire implements the paper's retire (Figure 4, lines 77-85): stamp the
// retire era and hand the block to the shared retire-side runtime, whose
// gated scan runs PreScan first.
func (w *WFE) Retire(tid int, h mem.Handle) {
	w.arena.SetRetireEra(h, w.globalEra.Load())
	w.rt.Retire(tid, h)
}

// PreScan implements reclaim.PreScanner — the paper's pre-cleanup era
// advance, taken only if the triggering block's retire era still equals
// the global era, and routed through incrementEra so pending slow-path
// requests get helped first.
func (w *WFE) PreScan(tid int, h mem.Handle) {
	if w.arena.RetireEra(h) == w.globalEra.Load() {
		w.incrementEra(tid)
	}
}

// BeginBatch implements reclaim.Scheme: WFE reservations are {era, tag}
// words that stay published until Clear, so the slots a batch's
// GetProtected calls fill remain valid across items — one span per batch,
// no prologue. The helping machinery is untouched: a slow path inside a
// batch publishes and completes its request exactly as in the per-op
// path.
func (w *WFE) BeginBatch(tid int) bool { return true }

// EndBatch implements reclaim.Scheme: the batch-wide Clear.
func (w *WFE) EndBatch(tid int) { w.Clear(tid) }

// RetireBatch implements reclaim.Scheme: stamp every block with the era
// read once at submission (monotone, so ≥ each unlink's era — the stamped
// lifespan only over-approximates) and hand the burst to the runtime's
// amortized retire path; PreScan's pre-cleanup era advance still runs,
// gated once per burst.
func (w *WFE) RetireBatch(tid int, blks []mem.Handle) {
	era := w.globalEra.Load()
	for _, blk := range blks {
		w.arena.SetRetireEra(blk, era)
	}
	w.rt.RetireBatch(tid, blks)
}

// Clear implements the paper's clear: all reservations back to ∞, tags
// preserved so stale helpers from completed cycles keep failing their CAS.
// Only indices used since the previous Clear need resetting.
func (w *WFE) Clear(tid int) {
	t := &w.threads[tid]
	for j := 0; j < t.dirty; j++ {
		r := w.resv(tid, j)
		cur := pack.EraTag(r.Load())
		if cur.Era() != pack.Inf {
			r.Store(uint64(cur.WithEra(pack.Inf)))
		}
	}
	t.dirty = 0
}

// The cleanup scan follows the paper's two-phase discipline (Figure 4,
// lines 57-67) through the runtime's TwoPhase protocol. Instead of
// re-reading the reservation matrix for every block, each reservation
// class is gathered once per scan, in the order the Lemma 4/5 proofs
// require — normal reservations, then the first special reservation, then
// (for survivors of the first test) the second special reservation
// followed by the normals again. A gathered snapshot can only
// over-approximate the per-block scan (a reservation cleared mid-scan is
// still honoured), the counter gate is taken across the whole scan
// (strictly more conservative than per block), and the tag check in
// help_thread rules out the one helper window the snapshots could miss,
// exactly as in the per-block formulation.

// Gather implements reclaim.Judge: the first phase's snapshot — normal
// reservations first, then special reservation 1 — bracketed by the
// counterEnd/counterStart reads whose disagreement forces the second
// phase (stashed as the snapshot's aux flag for NeedSecond).
func (w *WFE) Gather(tid int, s *reclaim.Snapshot) {
	h := w.cfg.MaxHEs
	ce := w.counterEnd.Load()
	w.gather(s, 0, h)   // normal reservations first,
	w.gather(s, h, h+1) // then special reservation 1
	if w.counterStart.Load() != ce {
		s.SetAux(0, 1) // helping in flight: survivors need phase two
	}
}

// NeedSecond implements reclaim.TwoPhase: a slow path was in flight across
// the first gather, so blocks it cleared are only provisionally free.
func (w *WFE) NeedSecond(tid int, s *reclaim.Snapshot) bool {
	return s.Aux(0) != 0
}

// GatherSecond implements reclaim.TwoPhase: the second phase's snapshot —
// special reservation 2 first, then the normals again.
func (w *WFE) GatherSecond(tid int, s *reclaim.Snapshot) {
	h := w.cfg.MaxHEs
	w.gather(s, h+1, h+2) // special reservation 2 first,
	w.gather(s, 0, h)     // then the normals again
}

// CanFree implements reclaim.Judge for both phases via reserved, which
// retains the pre-overhaul linear sweep as the property-tested reference
// oracle.
func (w *WFE) CanFree(tid int, s *reclaim.Snapshot, blk mem.Handle) bool {
	return !w.reserved(blk, s.Eras(), s.Linear())
}

// reserved reports whether any snapshot era falls within the block's
// lifespan — by the pre-overhaul linear sweep when linear is set, by
// binary search on the phase's sorted snapshot otherwise.
func (w *WFE) reserved(blk mem.Handle, snap []uint64, linear bool) bool {
	lo, hi := w.arena.AllocEra(blk), w.arena.RetireEra(blk)
	if linear {
		return overlapsLinear(snap, lo, hi)
	}
	return reclaim.ReservedInRange(snap, lo, hi)
}

// gather appends the non-∞ eras of reservation indices [js, je) across all
// threads to the snapshot.
func (w *WFE) gather(s *reclaim.Snapshot, js, je int) {
	for i := 0; i < w.cfg.MaxThreads; i++ {
		for j := js; j < je; j++ {
			if era := pack.EraTag(w.resv(i, j).Load()).Era(); era != pack.Inf {
				s.AddEra(era)
			}
		}
	}
}

// overlapsLinear is the pre-overhaul O(G) membership sweep — any gathered
// era within [lo, hi] — kept as the reference oracle for the sorted
// scan's property test and the -ablation scan comparison.
func overlapsLinear(eras []uint64, lo, hi uint64) bool {
	for _, era := range eras {
		if lo <= era && hi >= era {
			return true
		}
	}
	return false
}

// Unreclaimed implements reclaim.Scheme.
func (w *WFE) Unreclaimed() int { return w.rt.Unreclaimed() }
