package core

import (
	"math/rand"
	"slices"
	"sync"
	"sync/atomic"
	"testing"

	"wfe/internal/mem"
	"wfe/internal/pack"
	"wfe/internal/reclaim"
)

func newWFE(t *testing.T, threads int, cfg reclaim.Config) (*WFE, *mem.Arena) {
	t.Helper()
	cfg.MaxThreads = threads
	a := mem.New(mem.Config{Capacity: 1 << 14, MaxThreads: threads, Debug: true})
	return New(a, cfg), a
}

func TestSortedScanMatchesLinearOracle(t *testing.T) {
	// Property: on randomized phase snapshots (normal + special
	// reservations mixed), the sorted-snapshot membership test reaches
	// exactly the decision of the pre-overhaul linear sweep.
	rng := rand.New(rand.NewSource(20260729))
	for iter := 0; iter < 500; iter++ {
		snap := make([]uint64, rng.Intn(65))
		for i := range snap {
			snap[i] = uint64(rng.Intn(120)) + 1
		}
		sorted := slices.Clone(snap)
		slices.Sort(sorted)
		for b := 0; b < 32; b++ {
			lo := uint64(rng.Intn(120)) + 1
			hi := lo + uint64(rng.Intn(16))
			want := overlapsLinear(snap, lo, hi)
			if got := reclaim.ReservedInRange(sorted, lo, hi); got != want {
				t.Fatalf("lifespan [%d,%d] vs snapshot %v: sorted=%v linear=%v",
					lo, hi, snap, got, want)
			}
		}
	}
}

func TestLinearAndSortedCleanupAgreeEndToEnd(t *testing.T) {
	// The same deterministic single-threaded churn — tid 0 allocating and
	// retiring against roots that tid 1 protects and clears on a fixed
	// schedule — must leave identical retire-list backlogs whichever scan
	// implementation cleanup uses.
	run := func(linear bool) int {
		w, _ := newWFE(t, 2, reclaim.Config{EraFreq: 2, CleanupFreq: 3, LinearScan: linear})
		var roots [4]atomic.Uint64
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 400; i++ {
			h := w.Alloc(0)
			roots[i%4].Store(h)
			if i%7 == 0 {
				w.GetProtected(1, &roots[rng.Intn(4)], rng.Intn(4), 0)
			}
			if i%13 == 0 {
				w.Clear(1)
			}
			w.Retire(0, h)
		}
		return w.Unreclaimed()
	}
	if lin, sorted := run(true), run(false); lin != sorted {
		t.Fatalf("backlog diverged: linear scan left %d, sorted scan %d", lin, sorted)
	}
}

func TestFastPathStableEra(t *testing.T) {
	w, a := newWFE(t, 1, reclaim.Config{})
	var root atomic.Uint64
	h := w.Alloc(0)
	a.SetKey(h, 5)
	root.Store(h)

	before := w.SlowPaths()
	for i := 0; i < 100; i++ {
		if got := w.GetProtected(0, &root, 0, 0); got != h {
			t.Fatalf("GetProtected = %d, want %d", got, h)
		}
	}
	if w.SlowPaths() != before {
		t.Fatal("fast path took the slow path with a stable era")
	}
	// The published reservation must cover the current era.
	if era := pack.EraTag(w.resv(0, 0).Load()).Era(); era != pack.Inf && era > w.Era() {
		t.Fatalf("reservation era %d beyond global era %d", era, w.Era())
	}
}

func TestSlowPathSelfCompletion(t *testing.T) {
	// With no concurrent era movement the forced slow path must cancel its
	// own request on the first iteration.
	w, _ := newWFE(t, 1, reclaim.Config{ForceSlowPath: true})
	var root atomic.Uint64
	h := w.Alloc(0)
	root.Store(h)

	tagBefore := pack.EraTag(w.resv(0, 0).Load()).Tag()
	got := w.GetProtected(0, &root, 0, 0)
	if got != h {
		t.Fatalf("slow GetProtected = %d, want %d", got, h)
	}
	if w.SlowPaths() != 1 {
		t.Fatalf("slow paths = %d, want 1", w.SlowPaths())
	}
	if cs, ce := w.counterStart.Load(), w.counterEnd.Load(); cs != 1 || ce != 1 {
		t.Fatalf("counters start=%d end=%d, want 1/1", cs, ce)
	}
	rt := pack.EraTag(w.resv(0, 0).Load())
	if rt.Tag() != tagBefore+1 {
		t.Fatalf("tag = %d, want %d", rt.Tag(), tagBefore+1)
	}
	if rt.Era() == pack.Inf {
		t.Fatal("reservation does not protect the returned block")
	}
	if pack.ResPair(w.slot(0, 0).result.Load()).Pending() {
		t.Fatal("request still pending after completion")
	}
}

func TestTagAdvancesPerCycle(t *testing.T) {
	w, _ := newWFE(t, 1, reclaim.Config{ForceSlowPath: true})
	var root atomic.Uint64
	root.Store(w.Alloc(0))
	for i := uint64(1); i <= 5; i++ {
		w.GetProtected(0, &root, 0, 0)
		if tag := pack.EraTag(w.resv(0, 0).Load()).Tag(); tag != i {
			t.Fatalf("after cycle %d: tag = %d", i, tag)
		}
	}
}

// postRequest publishes a slow-path request exactly as getProtectedSlow
// does (including the dirty-index bump GetProtected performs), letting
// tests exercise helpThread deterministically.
func postRequest(w *WFE, tid, index int, src *atomic.Uint64, parentEra uint64) uint64 {
	if index >= w.threads[tid].dirty {
		w.threads[tid].dirty = index + 1
	}
	w.counterStart.Add(1)
	st := w.slot(tid, index)
	st.pointer.Store(src)
	st.era.Store(parentEra)
	tag := pack.EraTag(w.resv(tid, index).Load()).Tag()
	st.result.Store(uint64(pack.MakeRes(pack.InvPtr, tag)))
	return tag
}

func TestHelpThreadProducesResult(t *testing.T) {
	w, _ := newWFE(t, 2, reclaim.Config{})
	var root atomic.Uint64
	h := w.Alloc(1)
	root.Store(h)

	tag := postRequest(w, 0, 0, &root, pack.Inf)
	w.helpThread(0, 0, 1)

	res := pack.ResPair(w.slot(0, 0).result.Load())
	if res.Pending() {
		t.Fatal("helper did not produce a result")
	}
	if res.Ptr() != h {
		t.Fatalf("helper produced %d, want %d", res.Ptr(), h)
	}
	rt := pack.EraTag(w.resv(0, 0).Load())
	if rt.Tag() != tag+1 {
		t.Fatalf("helper left tag %d, want %d", rt.Tag(), tag+1)
	}
	if rt.Era() != res.Val() {
		t.Fatalf("reservation era %d != result era %d", rt.Era(), res.Val())
	}
	// Special reservations must be released.
	for _, j := range []int{w.cfg.MaxHEs, w.cfg.MaxHEs + 1} {
		if era := pack.EraTag(w.resv(1, j).Load()).Era(); era != pack.Inf {
			t.Fatalf("special reservation %d still holds era %d", j, era)
		}
	}
	w.counterEnd.Add(1) // balance for the posted request
}

func TestHelpThreadStaleTagExits(t *testing.T) {
	w, _ := newWFE(t, 2, reclaim.Config{})
	var root atomic.Uint64
	h := w.Alloc(1)
	root.Store(h)

	postRequest(w, 0, 0, &root, pack.Inf)
	// Simulate the owner having already completed this cycle: bump the tag.
	cur := pack.EraTag(w.resv(0, 0).Load())
	w.resv(0, 0).Store(uint64(pack.MakeEraTag(cur.Era(), cur.Tag()+1)))

	st := w.slot(0, 0)
	before := st.result.Load()
	w.helpThread(0, 0, 1)
	if st.result.Load() != before {
		t.Fatal("helper acted on a stale cycle")
	}
	for _, j := range []int{w.cfg.MaxHEs, w.cfg.MaxHEs + 1} {
		if era := pack.EraTag(w.resv(1, j).Load()).Era(); era != pack.Inf {
			t.Fatalf("special reservation %d leaked era %d", j, era)
		}
	}
	w.counterEnd.Add(1)
}

func TestIncrementEraHelpsPendingRequests(t *testing.T) {
	w, _ := newWFE(t, 2, reclaim.Config{})
	var root atomic.Uint64
	h := w.Alloc(1)
	root.Store(h)

	postRequest(w, 0, 0, &root, pack.Inf)
	eraBefore := w.Era()
	w.incrementEra(1)
	if w.Era() != eraBefore+1 {
		t.Fatalf("era = %d, want %d", w.Era(), eraBefore+1)
	}
	if pack.ResPair(w.slot(0, 0).result.Load()).Pending() {
		t.Fatal("incrementEra advanced the era without helping the pending request")
	}
	w.counterEnd.Add(1)
}

func TestParentProtectedDuringHelp(t *testing.T) {
	// Lemma 4: while a helper dereferences a location inside a parent
	// block, the parent's alloc era sits in the helper's first special
	// reservation, so cleanup refuses to free it.
	w, a := newWFE(t, 2, reclaim.Config{CleanupFreq: 1, EraFreq: 1})

	parent := w.Alloc(1)
	child := w.Alloc(1)
	a.StoreWord(parent, 0, child)
	parentEra := a.AllocEra(parent)

	// Thread 0 requests help reading parent.word0.
	postRequest(w, 0, 0, a.WordAddr(parent, 0), parentEra)

	// Manually occupy thread 1's special reservation as helpThread would
	// mid-flight, and stage the retired parent directly (rt.Add skips the
	// retire cadence, so Retire's own incrementEra cannot help — and
	// thereby complete — the posted request).
	w.resv(1, w.cfg.MaxHEs).Store(uint64(pack.MakeEraTag(parentEra, 0)))
	w.arena.SetRetireEra(parent, w.globalEra.Load())
	w.rt.Add(1, parent)

	w.rt.Scan(1)
	if !a.Live(parent) {
		t.Fatal("parent freed while covered by a special reservation")
	}

	// Release the special reservation and resolve the request as the owner
	// would (result consumed, counters balanced, reservation cleared).
	w.resv(1, w.cfg.MaxHEs).Store(uint64(pack.MakeEraTag(pack.Inf, 0)))
	w.counterEnd.Add(1)
	w.slot(0, 0).result.Store(uint64(pack.MakeRes(0, pack.Inf)))
	w.Clear(0)
	w.rt.Scan(1)
	if a.Live(parent) {
		t.Fatal("parent not freed after special reservation released")
	}
}

func TestCleanupGateWhileSlowPathInFlight(t *testing.T) {
	// With a slow path in flight (counterStart != counterEnd) and a normal
	// reservation covering the block, cleanup must keep the block.
	w, a := newWFE(t, 2, reclaim.Config{CleanupFreq: 1, EraFreq: 1})

	blk := w.Alloc(1)
	blkEra := a.AllocEra(blk)
	var root atomic.Uint64
	root.Store(blk)

	// Thread 0 holds a normal reservation covering blk's lifespan (set as
	// GetProtected would, including the dirty-index bump Clear relies on).
	w.threads[0].dirty = 1
	w.resv(0, 0).Store(uint64(pack.MakeEraTag(blkEra, 0)))

	w.Retire(1, blk)
	w.rt.Scan(1)
	if !a.Live(blk) {
		t.Fatal("reserved block freed")
	}

	w.Clear(0)
	w.rt.Scan(1)
	if a.Live(blk) {
		t.Fatal("block survived cleanup with no reservations")
	}
}

func TestClearPreservesTags(t *testing.T) {
	w, _ := newWFE(t, 1, reclaim.Config{ForceSlowPath: true})
	var root atomic.Uint64
	root.Store(w.Alloc(0))
	w.GetProtected(0, &root, 0, 0)
	tag := pack.EraTag(w.resv(0, 0).Load()).Tag()
	w.Clear(0)
	rt := pack.EraTag(w.resv(0, 0).Load())
	if rt.Era() != pack.Inf {
		t.Fatal("Clear did not reset the era")
	}
	if rt.Tag() != tag {
		t.Fatalf("Clear changed the tag: %d -> %d", tag, rt.Tag())
	}
}

func TestCountersBalanceUnderConcurrency(t *testing.T) {
	const workers = 4
	w, a := newWFE(t, workers, reclaim.Config{EraFreq: 2, CleanupFreq: 2, MaxAttempts: 2})
	var roots [8]atomic.Uint64
	for i := range roots {
		h := w.Alloc(0)
		a.SetKey(h, h)
		roots[i].Store(h)
	}
	var wg sync.WaitGroup
	for tid := 0; tid < workers; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			rng := uint64(tid)*0x9E3779B9 + 1
			for i := 0; i < 5000; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				idx := int(rng % uint64(len(roots)))
				if rng&3 == 0 {
					n := w.Alloc(tid)
					a.SetKey(n, n)
					old := roots[idx].Swap(n)
					if h := pack.Handle(old); h != 0 {
						w.Retire(tid, h)
					}
				} else {
					v := w.GetProtected(tid, &roots[idx], 0, 0)
					if h := pack.Handle(v); h != 0 && a.Key(h) != h {
						panic("corrupted read")
					}
				}
				w.Clear(tid)
			}
		}(tid)
	}
	wg.Wait()
	if cs, ce := w.counterStart.Load(), w.counterEnd.Load(); cs != ce {
		t.Fatalf("slow-path counters unbalanced: start=%d end=%d", cs, ce)
	}
}

func TestForcedSlowPathConcurrent(t *testing.T) {
	// The paper validates WFE by forcing the slow path under stress; do the
	// same with helping in the loop via constant era increments.
	const workers = 4
	w, a := newWFE(t, workers, reclaim.Config{
		ForceSlowPath: true, EraFreq: 1, CleanupFreq: 1,
	})
	var root atomic.Uint64
	h0 := w.Alloc(0)
	a.SetKey(h0, h0)
	root.Store(h0)

	var wg sync.WaitGroup
	for tid := 0; tid < workers; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				if tid%2 == 0 { // readers: always slow path
					v := w.GetProtected(tid, &root, 0, 0)
					if h := pack.Handle(v); h != 0 && a.Key(h) != h {
						panic("corrupted read on slow path")
					}
					w.Clear(tid)
				} else { // writers: every alloc/retire moves the era + helps
					n := w.Alloc(tid)
					a.SetKey(n, n)
					old := root.Swap(n)
					if h := pack.Handle(old); h != 0 {
						w.Retire(tid, h)
					}
				}
			}
		}(tid)
	}
	wg.Wait()
	if cs, ce := w.counterStart.Load(), w.counterEnd.Load(); cs != ce {
		t.Fatalf("counters unbalanced after forced-slow stress: %d/%d", cs, ce)
	}
	if w.SlowPaths() == 0 {
		t.Fatal("forced slow path never engaged")
	}
}

func TestUnreclaimedTracksRetireLists(t *testing.T) {
	w, _ := newWFE(t, 1, reclaim.Config{CleanupFreq: 1 << 30})
	// The very first Retire scans (counter starts at zero); warm it up so
	// the next ten retirements accumulate without a cleanup.
	w.Retire(0, w.Alloc(0))
	base := w.Unreclaimed()
	for i := 0; i < 10; i++ {
		w.Retire(0, w.Alloc(0))
	}
	if got := w.Unreclaimed(); got != base+10 {
		t.Fatalf("unreclaimed = %d, want %d", got, base+10)
	}
}

func TestStaleHelperReservationCASFailsAfterCycleEnds(t *testing.T) {
	// The packed {era, tag} word is the WCAS target that guards against
	// stale helpers: once the owner finishes a slow-path cycle (tag+1), a
	// helper still holding the old cycle's tag must not be able to install
	// a reservation.
	w, _ := newWFE(t, 2, reclaim.Config{ForceSlowPath: true})
	var root atomic.Uint64
	h := w.Alloc(0)
	root.Store(h)

	// Complete one slow-path cycle; reservation now carries tag 1.
	w.GetProtected(0, &root, 0, 0)
	cur := pack.EraTag(w.resv(0, 0).Load())
	if cur.Tag() != 1 {
		t.Fatalf("tag = %d after one cycle", cur.Tag())
	}

	// A stale helper from cycle tag=0 attempts the paper's line-123 CAS.
	staleOld := pack.MakeEraTag(cur.Era(), 0)
	if w.resv(0, 0).CompareAndSwap(uint64(staleOld), uint64(pack.MakeEraTag(99, 1))) {
		t.Fatal("stale helper CAS succeeded against a newer cycle")
	}
	if got := pack.EraTag(w.resv(0, 0).Load()); got != cur {
		t.Fatalf("reservation changed: %v -> %v", cur, got)
	}
}

func TestHelpThreadPointerRedirection(t *testing.T) {
	// The helper must read through the location captured in the request,
	// observing the latest value stored there.
	w, _ := newWFE(t, 2, reclaim.Config{})
	var loc atomic.Uint64
	first := w.Alloc(1)
	second := w.Alloc(1)
	loc.Store(first)

	postRequest(w, 0, 0, &loc, pack.Inf)
	loc.Store(second) // the hazardous location moves before help arrives
	w.helpThread(0, 0, 1)

	res := pack.ResPair(w.slot(0, 0).result.Load())
	if res.Pending() {
		t.Fatal("helper did not produce a result")
	}
	if res.Ptr() != second {
		t.Fatalf("helper produced %d, want the redirected value %d", res.Ptr(), second)
	}
	w.counterEnd.Add(1)
}

func TestSlowPathOnHigherIndex(t *testing.T) {
	// Reservation indices beyond 0 must work identically on the slow path
	// (state is per [thread][index]).
	w, a := newWFE(t, 1, reclaim.Config{ForceSlowPath: true, MaxHEs: 4})
	var roots [4]atomic.Uint64
	for i := range roots {
		h := w.Alloc(0)
		a.SetKey(h, uint64(i))
		roots[i].Store(h)
	}
	for i := range roots {
		got := w.GetProtected(0, &roots[i], i, 0)
		if a.Key(pack.Handle(got)) != uint64(i) {
			t.Fatalf("index %d: wrong block", i)
		}
	}
	if cs, ce := w.counterStart.Load(), w.counterEnd.Load(); cs != ce || cs != 4 {
		t.Fatalf("counters %d/%d, want 4/4", cs, ce)
	}
	w.Clear(0)
	for i := range roots {
		if era := pack.EraTag(w.resv(0, i).Load()).Era(); era != pack.Inf {
			t.Fatalf("index %d not cleared", i)
		}
	}
}

func TestMaxStepsBoundedUnderStorm(t *testing.T) {
	// Quantified wait-freedom: with S concurrent era-advancing threads, no
	// GetProtected call may exceed MaxAttempts + (slow-path iterations
	// bounded by in-flight increments). We allow slack for increments that
	// were in flight at loop entry, but the bound must not scale with the
	// number of reads.
	const stormers = 3
	w, a := newWFE(t, stormers+1, reclaim.Config{EraFreq: 1, CleanupFreq: 4, MaxAttempts: 4})
	var root atomic.Uint64
	h := w.Alloc(stormers)
	a.SetKey(h, 7)
	root.Store(h)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for s := 0; s < stormers; s++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				w.Retire(tid, w.Alloc(tid))
			}
		}(s + 1)
	}
	for i := 0; i < 30000; i++ {
		if got := w.GetProtected(0, &root, 0, 0); got != h {
			t.Fatalf("read %d: got %d", i, got)
		}
		w.Clear(0)
	}
	close(stop)
	wg.Wait()

	// Lemma 1: the slow-path loop is bounded by the number of threads that
	// can be mid-increment; fast path adds MaxAttempts. A generous constant
	// covers increments already in flight when the loop starts.
	bound := uint64(4 + 4*(stormers+1) + 8)
	if got := w.MaxSteps(); got > bound {
		t.Fatalf("worst GetProtected took %d steps; wait-free bound ~%d", got, bound)
	}
}
