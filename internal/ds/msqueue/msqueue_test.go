package msqueue_test

import (
	"testing"

	"wfe/internal/ds/msqueue"
	"wfe/internal/ds/queuetest"
	"wfe/internal/mem"
	"wfe/internal/reclaim"
	"wfe/internal/schemes"
)

func TestMSQueueSuite(t *testing.T) {
	queuetest.RunQueueSuite(t, func(smr reclaim.Scheme, maxThreads int) queuetest.Queue {
		return msqueue.New(smr)
	})
}

func TestMSQueueLenSeedAndKV(t *testing.T) {
	a := mem.New(mem.Config{Capacity: 1 << 10, MaxThreads: 1, Debug: true})
	s, err := schemes.New("WFE", a, reclaim.Config{MaxThreads: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := msqueue.New(s)
	q.Seed(0, []uint64{1, 2, 3})
	if q.Len() != 3 {
		t.Fatalf("Len = %d", q.Len())
	}
	kv := q.KV()
	if !kv.Insert(0, 4) {
		t.Fatal("Insert (enqueue) reported false")
	}
	for want := uint64(1); want <= 4; want++ {
		if !kv.Delete(0, 0) {
			t.Fatalf("Delete (dequeue) failed at %d", want)
		}
	}
	if kv.Delete(0, 0) {
		t.Fatal("dequeue on empty succeeded")
	}
	for _, f := range []func(){
		func() { kv.Get(0, 1) },
		func() { kv.Put(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Get/Put on a queue did not panic")
				}
			}()
			f()
		}()
	}
}
