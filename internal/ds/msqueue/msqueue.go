// Package msqueue implements the Michael–Scott lock-free queue — not one of
// the paper's benchmarked structures, but the natural lock-free baseline
// for its two wait-free queues (Kogan–Petrank is literally the MS queue
// plus phase-based helping). cmd/wfelat uses it to show what wait-freedom
// buys: MS has higher throughput but unbounded per-operation worst cases;
// KP/CRTurn bound every operation.
package msqueue

import (
	"sync/atomic"

	"wfe/internal/ds"
	"wfe/internal/pack"
	"wfe/internal/reclaim"
)

const nextWord = 0

// reservation indices
const (
	hpFirst = 0
	hpNext  = 1
	hpLast  = 0 // enqueue reuses index 0 for the tail
)

// Queue is a lock-free MPMC FIFO queue.
type Queue struct {
	smr  reclaim.Scheme
	head atomic.Uint64
	tail atomic.Uint64
}

// New creates an empty queue; the sentinel is allocated for thread 0.
func New(smr reclaim.Scheme) *Queue {
	q := &Queue{smr: smr}
	s := smr.Alloc(0)
	smr.Arena().StoreWord(s, nextWord, 0)
	q.head.Store(s)
	q.tail.Store(s)
	return q
}

// Enqueue appends v.
func (q *Queue) Enqueue(tid int, v uint64) {
	q.smr.Begin(tid)
	defer q.smr.Clear(tid)
	a := q.smr.Arena()
	node := q.smr.Alloc(tid)
	a.SetVal(node, v)
	a.StoreWord(node, nextWord, 0)
	for {
		last := pack.Handle(q.smr.GetProtected(tid, &q.tail, hpLast, 0))
		next := pack.Handle(a.LoadWord(last, nextWord))
		if last != pack.Handle(q.tail.Load()) {
			continue
		}
		if next != 0 { // tail lagging: help advance
			q.tail.CompareAndSwap(last, next)
			continue
		}
		if a.CASWord(last, nextWord, 0, node) {
			q.tail.CompareAndSwap(last, node)
			return
		}
	}
}

// Dequeue removes and returns the oldest value; ok is false when empty.
func (q *Queue) Dequeue(tid int) (v uint64, ok bool) {
	q.smr.Begin(tid)
	defer q.smr.Clear(tid)
	a := q.smr.Arena()
	for {
		first := pack.Handle(q.smr.GetProtected(tid, &q.head, hpFirst, 0))
		last := pack.Handle(q.tail.Load())
		next := pack.Handle(q.smr.GetProtected(tid, a.WordAddr(first, nextWord), hpNext, first))
		if first != pack.Handle(q.head.Load()) {
			continue
		}
		if first == last {
			if next == 0 {
				return 0, false
			}
			q.tail.CompareAndSwap(last, next) // tail lagging
			continue
		}
		if next == 0 {
			continue // stale snapshot
		}
		// Read the value before unlinking: next is still in the queue
		// (reachable from head), so it is not retired and our reservation
		// covers it.
		v = a.Val(next)
		if q.head.CompareAndSwap(first, next) {
			q.smr.Retire(tid, first)
			return v, true
		}
	}
}

// Len counts queued values; meaningful only quiescently.
func (q *Queue) Len() int {
	a := q.smr.Arena()
	n := 0
	h := pack.Handle(q.head.Load())
	for h != 0 {
		next := pack.Handle(a.LoadWord(h, nextWord))
		if next != 0 {
			n++
		}
		h = next
	}
	return n
}

// Seed pre-populates the queue.
func (q *Queue) Seed(tid int, keys []uint64) {
	for _, k := range keys {
		q.Enqueue(tid, k)
	}
}

// kv adapts the queue to ds.KV: Insert enqueues the key, Delete dequeues.
type kv struct{ q *Queue }

// KV returns the benchmark adapter. Get and Put panic: queue workloads are
// insert/delete only.
func (q *Queue) KV() ds.KV { return kv{q} }

func (k kv) Insert(tid int, key uint64) bool { k.q.Enqueue(tid, key); return true }
func (k kv) Delete(tid int, key uint64) bool { _, ok := k.q.Dequeue(tid); return ok }
func (k kv) Get(tid int, key uint64) bool    { panic("msqueue: Get unsupported on queues") }
func (k kv) Put(tid int, key uint64)         { panic("msqueue: Put unsupported on queues") }
func (k kv) Seed(tid int, keys []uint64)     { k.q.Seed(tid, keys) }
