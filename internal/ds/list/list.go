// Package list implements the sorted lock-free linked list of Harris with
// Michael's hazard-pointer-compatible modification (the paper's "Linked
// List [18] (includes a modification from [27])"): traversal re-validates
// each hop so that at most three outstanding reservations protect the
// window (prev-node, current, next), which is what allows bounded
// reservation schemes to manage it.
//
// Logical deletion sets the mark bit on the victim's next link; physical
// unlinking happens at the deleter's CAS or during any later traversal.
package list

import (
	"sync/atomic"

	"wfe/internal/ds"
	"wfe/internal/mem"
	"wfe/internal/pack"
	"wfe/internal/reclaim"
)

const nextWord = 0 // payload word holding the next link (with mark bit)

// List is a sorted linked list (set / map) of uint64 keys.
type List struct {
	smr  reclaim.Scheme
	head atomic.Uint64
}

// New creates an empty list managed by the given scheme.
func New(smr reclaim.Scheme) *List {
	l := &List{}
	l.Init(smr)
	return l
}

// Init prepares a zero-value List (used by the hash map, which embeds one
// List per bucket).
func (l *List) Init(smr reclaim.Scheme) { l.smr = smr }

// window is the result of a traversal: the location holding the link to
// cur, the node owning that location (0 for the list head), and the clean
// link values of cur and its successor.
type window struct {
	prev  *atomic.Uint64
	prevH mem.Handle
	cur   uint64 // clean link; pack.Handle(cur) == 0 means end of list
	next  uint64 // clean successor link of cur (valid when cur != 0)
}

// find positions the window at the first node with key >= key, unlinking
// marked nodes it passes (Michael's find). Reservation indices 0..2 rotate
// across the prev/cur/next roles.
func (l *List) find(tid int, key uint64) (bool, window) {
	a := l.smr.Arena()
retry:
	for {
		prev := &l.head
		var prevH mem.Handle
		iCur, iNext := 1, 2
		iPrev := 0
		cur := l.smr.GetProtected(tid, prev, iCur, prevH)
		for {
			curH := pack.Handle(cur)
			if curH == 0 {
				return false, window{prev: prev, prevH: prevH, cur: cur}
			}
			next := l.smr.GetProtected(tid, a.WordAddr(curH, nextWord), iNext, curH)
			if prev.Load() != cur {
				continue retry // window moved under us
			}
			if pack.Marked(next) {
				// cur is logically deleted: unlink it here.
				clean := next &^ pack.MarkBit
				if !prev.CompareAndSwap(cur, clean) {
					continue retry
				}
				l.smr.Retire(tid, curH)
				cur = clean
				iCur, iNext = iNext, iCur
				continue
			}
			ckey := a.Key(curH)
			if ckey >= key {
				return ckey == key, window{prev: prev, prevH: prevH, cur: cur, next: next}
			}
			prev = a.WordAddr(curH, nextWord)
			prevH = curH
			iPrev, iCur, iNext = iCur, iNext, iPrev
			cur = next
		}
	}
}

// Insert adds key→val; it reports false (leaving the list unchanged) when
// the key is already present.
func (l *List) Insert(tid int, key, val uint64) bool {
	l.smr.Begin(tid)
	defer l.smr.Clear(tid)
	a := l.smr.Arena()
	var h mem.Handle
	for {
		found, w := l.find(tid, key)
		if found {
			if h != 0 {
				a.Free(tid, h) // never published: no reader can hold it
			}
			return false
		}
		if h == 0 {
			h = l.smr.Alloc(tid)
			a.SetKey(h, key)
			a.SetVal(h, val)
		}
		a.StoreWord(h, nextWord, w.cur)
		if w.prev.CompareAndSwap(w.cur, h) {
			return true
		}
	}
}

// Delete removes key, reporting whether it was present. The victim is
// marked first (the linearization point) and unlinked here or by a later
// traversal.
func (l *List) Delete(tid int, key uint64) bool {
	l.smr.Begin(tid)
	defer l.smr.Clear(tid)
	a := l.smr.Arena()
	for {
		found, w := l.find(tid, key)
		if !found {
			return false
		}
		curH := pack.Handle(w.cur)
		if !a.CASWord(curH, nextWord, w.next, w.next|pack.MarkBit) {
			continue // successor changed or someone else marked it
		}
		if w.prev.CompareAndSwap(w.cur, w.next) {
			l.smr.Retire(tid, curH)
		}
		return true
	}
}

// Get returns the value stored under key.
func (l *List) Get(tid int, key uint64) (uint64, bool) {
	l.smr.Begin(tid)
	defer l.smr.Clear(tid)
	found, w := l.find(tid, key)
	if !found {
		return 0, false
	}
	return l.smr.Arena().Val(pack.Handle(w.cur)), true
}

// Put inserts key→val, or replaces an existing key's node with a fresh one
// (mark, swing, retire) — the paper benchmark's put semantics, which is why
// read-mostly workloads still exercise reclamation.
func (l *List) Put(tid int, key, val uint64) {
	l.smr.Begin(tid)
	defer l.smr.Clear(tid)
	a := l.smr.Arena()
	var h mem.Handle
	for {
		found, w := l.find(tid, key)
		if h == 0 {
			h = l.smr.Alloc(tid)
			a.SetKey(h, key)
			a.SetVal(h, val)
		}
		if found {
			curH := pack.Handle(w.cur)
			// Logically delete the old node, then swing prev to the
			// replacement in its place.
			if !a.CASWord(curH, nextWord, w.next, w.next|pack.MarkBit) {
				continue
			}
			a.StoreWord(h, nextWord, w.next)
			if w.prev.CompareAndSwap(w.cur, h) {
				l.smr.Retire(tid, curH)
				return
			}
			// A traversal unlinked (and retired) the marked node first;
			// retry — the next find will take the insert path.
			continue
		}
		a.StoreWord(h, nextWord, w.cur)
		if w.prev.CompareAndSwap(w.cur, h) {
			return
		}
	}
}

// Len counts reachable, unmarked nodes; meaningful only quiescently.
func (l *List) Len() int {
	a := l.smr.Arena()
	n := 0
	for h := pack.Handle(l.head.Load()); h != 0; {
		next := a.LoadWord(h, nextWord)
		if !pack.Marked(next) {
			n++
		}
		h = pack.Handle(next)
	}
	return n
}

// Seed bulk-loads sorted deduplicated keys in O(n) by chaining nodes
// directly; it must run before any concurrent use. Keys are their own
// values, matching the benchmark adapter.
func (l *List) Seed(tid int, keys []uint64) {
	a := l.smr.Arena()
	var next mem.Handle
	for i := len(keys) - 1; i >= 0; i-- {
		h := l.smr.Alloc(tid)
		a.SetKey(h, keys[i])
		a.SetVal(h, keys[i])
		a.StoreWord(h, nextWord, next)
		next = h
	}
	l.head.Store(next)
}

// kv adapts List to the benchmark's ds.KV interface, with keys as values.
type kv struct{ l *List }

// KV returns the benchmark adapter.
func (l *List) KV() ds.KV { return kv{l} }

func (k kv) Insert(tid int, key uint64) bool { return k.l.Insert(tid, key, key) }
func (k kv) Delete(tid int, key uint64) bool { return k.l.Delete(tid, key) }
func (k kv) Get(tid int, key uint64) bool    { _, ok := k.l.Get(tid, key); return ok }
func (k kv) Put(tid int, key uint64)         { k.l.Put(tid, key, key) }

func (k kv) Seed(tid int, keys []uint64) { k.l.Seed(tid, keys) }
