package list_test

import (
	"testing"

	"wfe/internal/ds"
	"wfe/internal/ds/dstest"
	"wfe/internal/ds/list"
	"wfe/internal/mem"
	"wfe/internal/reclaim"
	"wfe/internal/schemes"
)

func TestListSuite(t *testing.T) {
	dstest.RunMapSuite(t, func(smr reclaim.Scheme) ds.KV {
		return list.New(smr).KV()
	})
}

func newWFEList(t *testing.T) (*list.List, reclaim.Scheme) {
	t.Helper()
	a := mem.New(mem.Config{Capacity: 1 << 12, MaxThreads: 2, Debug: true})
	s, err := schemes.New("WFE", a, reclaim.Config{MaxThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	return list.New(s), s
}

func TestListValues(t *testing.T) {
	l, _ := newWFEList(t)
	if !l.Insert(0, 7, 700) {
		t.Fatal("insert failed")
	}
	if v, ok := l.Get(0, 7); !ok || v != 700 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
	l.Put(0, 7, 701)
	if v, _ := l.Get(0, 7); v != 701 {
		t.Fatalf("Put did not refresh: %d", v)
	}
	l.Put(0, 8, 800)
	if v, _ := l.Get(0, 8); v != 800 {
		t.Fatalf("Put did not insert: %d", v)
	}
}

func TestListSortedTraversal(t *testing.T) {
	l, _ := newWFEList(t)
	for _, k := range []uint64{5, 1, 9, 3, 7} {
		l.Insert(0, k, k)
	}
	if got := l.Len(); got != 5 {
		t.Fatalf("Len = %d", got)
	}
	// Deleting the middle keeps the rest reachable.
	l.Delete(0, 5)
	for _, k := range []uint64{1, 3, 7, 9} {
		if _, ok := l.Get(0, k); !ok {
			t.Fatalf("key %d lost after unrelated delete", k)
		}
	}
	if _, ok := l.Get(0, 5); ok {
		t.Fatal("deleted key reachable")
	}
}

func TestListReclaimsDeletedNodes(t *testing.T) {
	l, s := newWFEList(t)
	// Churn one key; retired nodes must be recycled, keeping InUse bounded.
	for i := 0; i < 2000; i++ {
		l.Insert(0, 1, 1)
		l.Delete(0, 1)
	}
	st := s.Arena().Stats()
	if st.InUse > 200 {
		t.Fatalf("nodes not recycled: in use = %d after churn", st.InUse)
	}
}
