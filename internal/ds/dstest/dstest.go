// Package dstest is the shared conformance suite for the key-value data
// structures: sequential semantics, a randomized model-equivalence property
// test, and a concurrent linearizability-style invariant stress run under
// every reclamation scheme with the arena's use-after-free detection armed.
package dstest

import (
	"math/rand"
	"sync"
	"testing"

	"wfe/internal/ds"
	"wfe/internal/mem"
	"wfe/internal/reclaim"
	"wfe/internal/schemes"
)

// Builder constructs the structure under test over the given scheme.
type Builder func(smr reclaim.Scheme) ds.KV

// schemesUnderTest exercises every reclaiming scheme plus the forced-slow
// WFE configuration; Leak is covered implicitly (no reclamation to break).
var schemesUnderTest = []string{"WFE", "WFE-slow", "HE", "HP", "EBR", "2GEIBR", "WFE-IBR", "WFE-IBR-slow"}

func newScheme(t testing.TB, name string, threads, capacity int) reclaim.Scheme {
	t.Helper()
	a := mem.New(mem.Config{Capacity: capacity, MaxThreads: threads, Debug: true})
	s, err := schemes.New(name, a, reclaim.Config{
		MaxThreads: threads, EraFreq: 32, CleanupFreq: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// RunMapSuite runs the full conformance suite for a map-like structure.
func RunMapSuite(t *testing.T, build Builder) {
	t.Run("Sequential", func(t *testing.T) { runSequential(t, build) })
	t.Run("Model", func(t *testing.T) { runModel(t, build) })
	for _, name := range schemesUnderTest {
		t.Run("Stress/"+name, func(t *testing.T) { runStress(t, build, name) })
	}
}

func runSequential(t *testing.T, build Builder) {
	m := build(newScheme(t, "WFE", 1, 1<<12))

	if m.Get(0, 10) {
		t.Fatal("empty map contains 10")
	}
	if !m.Insert(0, 10) {
		t.Fatal("insert into empty map failed")
	}
	if m.Insert(0, 10) {
		t.Fatal("duplicate insert succeeded")
	}
	if !m.Get(0, 10) {
		t.Fatal("inserted key missing")
	}
	if m.Delete(0, 11) {
		t.Fatal("deleted an absent key")
	}
	if !m.Delete(0, 10) {
		t.Fatal("delete of present key failed")
	}
	if m.Get(0, 10) {
		t.Fatal("deleted key still present")
	}
	// Put must work as both insert and refresh.
	m.Put(0, 20)
	m.Put(0, 20)
	if !m.Get(0, 20) {
		t.Fatal("put key missing")
	}

	// Ordered bulk round-trip.
	for k := uint64(1); k <= 100; k++ {
		if !m.Insert(0, k*3) {
			t.Fatalf("bulk insert %d failed", k*3)
		}
	}
	for k := uint64(1); k <= 100; k++ {
		if !m.Get(0, k*3) {
			t.Fatalf("bulk key %d missing", k*3)
		}
		if m.Get(0, k*3+1) {
			t.Fatalf("phantom key %d present", k*3+1)
		}
	}
	for k := uint64(1); k <= 100; k++ {
		if !m.Delete(0, k*3) {
			t.Fatalf("bulk delete %d failed", k*3)
		}
	}
}

// runModel replays random operation sequences against map[uint64]bool and
// requires identical observable results, including reclamation churn from
// repeated delete/insert of the same keys.
func runModel(t *testing.T, build Builder) {
	for seed := int64(1); seed <= 5; seed++ {
		m := build(newScheme(t, "WFE", 1, 1<<14))
		model := make(map[uint64]bool)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 5000; i++ {
			key := uint64(rng.Intn(64))
			switch rng.Intn(4) {
			case 0:
				want := !model[key]
				if got := m.Insert(0, key); got != want {
					t.Fatalf("seed %d op %d: Insert(%d) = %v, model says %v", seed, i, key, got, want)
				}
				model[key] = true
			case 1:
				want := model[key]
				if got := m.Delete(0, key); got != want {
					t.Fatalf("seed %d op %d: Delete(%d) = %v, model says %v", seed, i, key, got, want)
				}
				delete(model, key)
			case 2:
				want := model[key]
				if got := m.Get(0, key); got != want {
					t.Fatalf("seed %d op %d: Get(%d) = %v, model says %v", seed, i, key, got, want)
				}
			case 3:
				m.Put(0, key)
				model[key] = true
			}
		}
	}
}

// runStress hammers the structure from several goroutines and checks the
// per-key accounting invariant: successful inserts and deletes of one key
// strictly alternate, so netInserts-netDeletes ∈ {0,1} and equals the final
// membership. The debug arena turns any premature reclamation into a panic.
func runStress(t *testing.T, build Builder, schemeName string) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const (
		workers  = 4
		keyRange = 64
		iters    = 15000
	)
	smr := newScheme(t, schemeName, workers, 1<<17)
	m := build(smr)

	type counters struct{ ins, del [keyRange]uint64 }
	perWorker := make([]counters, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(tid) + 42))
			c := &perWorker[tid]
			for i := 0; i < iters; i++ {
				key := uint64(rng.Intn(keyRange))
				switch rng.Intn(3) {
				case 0:
					if m.Insert(tid, key) {
						c.ins[key]++
					}
				case 1:
					if m.Delete(tid, key) {
						c.del[key]++
					}
				case 2:
					m.Get(tid, key)
				}
			}
		}(w)
	}
	wg.Wait()

	for key := uint64(0); key < keyRange; key++ {
		var ins, del uint64
		for w := range perWorker {
			ins += perWorker[w].ins[key]
			del += perWorker[w].del[key]
		}
		net := int64(ins) - int64(del)
		if net != 0 && net != 1 {
			t.Fatalf("%s: key %d net count %d (ins=%d del=%d)", schemeName, key, net, ins, del)
		}
		if got := m.Get(0, key); got != (net == 1) {
			t.Fatalf("%s: key %d present=%v but net=%d", schemeName, key, got, net)
		}
	}
	if smr.Arena().Stats().InUse == 0 {
		t.Fatalf("%s: arena reports nothing in use after stress (bookkeeping broken?)", schemeName)
	}
}
