package stack_test

import (
	"sync"
	"testing"

	"wfe/internal/ds/stack"
	"wfe/internal/mem"
	"wfe/internal/reclaim"
	"wfe/internal/schemes"
)

var allSchemes = []string{"WFE", "WFE-slow", "HE", "HP", "EBR", "2GEIBR", "WFE-IBR", "Leak"}

func newStack(t *testing.T, name string, threads, capacity int) (*stack.Stack, reclaim.Scheme) {
	t.Helper()
	a := mem.New(mem.Config{Capacity: capacity, MaxThreads: threads, Debug: true})
	s, err := schemes.New(name, a, reclaim.Config{MaxThreads: threads, EraFreq: 16, CleanupFreq: 8})
	if err != nil {
		t.Fatal(err)
	}
	return stack.New(s), s
}

func TestLIFO(t *testing.T) {
	for _, name := range allSchemes {
		t.Run(name, func(t *testing.T) {
			st, _ := newStack(t, name, 1, 1<<12)
			if _, ok := st.Pop(0); ok {
				t.Fatal("pop from empty stack succeeded")
			}
			for v := uint64(1); v <= 100; v++ {
				st.Push(0, v)
			}
			if st.Len() != 100 {
				t.Fatalf("Len = %d", st.Len())
			}
			for v := uint64(100); v >= 1; v-- {
				got, ok := st.Pop(0)
				if !ok || got != v {
					t.Fatalf("Pop = %d,%v; want %d", got, ok, v)
				}
			}
			if _, ok := st.Pop(0); ok {
				t.Fatal("drained stack not empty")
			}
		})
	}
}

// TestConservation pushes disjoint value ranges from every worker while
// popping concurrently; afterwards every pushed value must have been popped
// exactly once or remain on the stack.
func TestConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const (
		workers   = 4
		perWorker = 10000
	)
	for _, name := range allSchemes {
		t.Run(name, func(t *testing.T) {
			capacity := 1 << 17
			if name == "Leak" {
				capacity = workers*perWorker + 1024
			}
			st, smr := newStack(t, name, workers, capacity)
			popped := make([][]uint64, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					base := uint64(tid) * perWorker
					for i := 0; i < perWorker; i++ {
						st.Push(tid, base+uint64(i)+1)
						if i%2 == 0 {
							if v, ok := st.Pop(tid); ok {
								popped[tid] = append(popped[tid], v)
							}
						}
					}
				}(w)
			}
			wg.Wait()

			seen := make(map[uint64]int)
			for _, vs := range popped {
				for _, v := range vs {
					seen[v]++
				}
			}
			for {
				v, ok := st.Pop(0)
				if !ok {
					break
				}
				seen[v]++
			}
			if len(seen) != workers*perWorker {
				t.Fatalf("%s: %d distinct values accounted for, want %d", name, len(seen), workers*perWorker)
			}
			for v, n := range seen {
				if n != 1 {
					t.Fatalf("%s: value %d observed %d times", name, v, n)
				}
			}
			if name != "Leak" && smr.Unreclaimed() > 10000 {
				t.Fatalf("%s: unreclaimed backlog %d too large", name, smr.Unreclaimed())
			}
		})
	}
}
