// Package stack implements Treiber's lock-free stack, the paper's usage
// example for the reclamation API (Figure 2): push allocates through the
// scheme so the block's alloc era is stamped; pop protects the top node
// before dereferencing it and retires it after unlinking.
package stack

import (
	"sync/atomic"

	"wfe/internal/pack"
	"wfe/internal/reclaim"
)

const nextWord = 0 // payload word holding the next link

// Stack is a Treiber stack of uint64 values.
type Stack struct {
	smr reclaim.Scheme
	top atomic.Uint64
}

// New creates an empty stack managed by the given scheme.
func New(smr reclaim.Scheme) *Stack {
	return &Stack{smr: smr}
}

// Push adds v to the top of the stack.
func (s *Stack) Push(tid int, v uint64) {
	s.smr.Begin(tid)
	h := s.smr.Alloc(tid)
	a := s.smr.Arena()
	a.SetVal(h, v)
	for {
		old := s.top.Load()
		a.StoreWord(h, nextWord, old)
		if s.top.CompareAndSwap(old, h) {
			break
		}
	}
	s.smr.Clear(tid)
}

// Pop removes and returns the top value; ok is false on an empty stack.
func (s *Stack) Pop(tid int) (v uint64, ok bool) {
	s.smr.Begin(tid)
	defer s.smr.Clear(tid)
	a := s.smr.Arena()
	for {
		link := s.smr.GetProtected(tid, &s.top, 0, 0)
		h := pack.Handle(link)
		if h == 0 {
			return 0, false
		}
		next := a.LoadWord(h, nextWord)
		if s.top.CompareAndSwap(link, next) {
			v = a.Val(h)
			s.smr.Retire(tid, h)
			return v, true
		}
	}
}

// Len counts the nodes; it is only meaningful quiescently.
func (s *Stack) Len() int {
	a := s.smr.Arena()
	n := 0
	for h := pack.Handle(s.top.Load()); h != 0; h = pack.Handle(a.LoadWord(h, nextWord)) {
		n++
	}
	return n
}
