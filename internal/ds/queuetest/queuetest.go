// Package queuetest is the shared conformance suite for the MPMC queues:
// sequential FIFO semantics, empty-queue behaviour, and a concurrent
// conservation + per-producer-order stress run under every reclamation
// scheme with arena poisoning armed.
package queuetest

import (
	"sync"
	"testing"
	"time"

	"wfe/internal/mem"
	"wfe/internal/reclaim"
	"wfe/internal/schemes"
)

// Queue is the operation set under test.
type Queue interface {
	Enqueue(tid int, v uint64)
	Dequeue(tid int) (uint64, bool)
}

// Builder constructs the queue under test for maxThreads threads.
type Builder func(smr reclaim.Scheme, maxThreads int) Queue

var schemesUnderTest = []string{"WFE", "WFE-slow", "HE", "HP", "EBR", "2GEIBR", "WFE-IBR", "WFE-IBR-slow", "Leak"}

func newScheme(t testing.TB, name string, threads, capacity int) reclaim.Scheme {
	t.Helper()
	a := mem.New(mem.Config{Capacity: capacity, MaxThreads: threads, Debug: true})
	s, err := schemes.New(name, a, reclaim.Config{
		MaxThreads: threads, EraFreq: 32, CleanupFreq: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// RunQueueSuite runs the full conformance suite.
func RunQueueSuite(t *testing.T, build Builder) {
	t.Run("SequentialFIFO", func(t *testing.T) { runSequential(t, build) })
	t.Run("EmptyBehaviour", func(t *testing.T) { runEmpty(t, build) })
	t.Run("AlternatingChurn", func(t *testing.T) { runChurn(t, build) })
	for _, name := range schemesUnderTest {
		t.Run("Stress/"+name, func(t *testing.T) { runStress(t, build, name) })
	}
	t.Run("RealTimeOrder", func(t *testing.T) { RunRealTimeOrderCheck(t, build) })
}

func runSequential(t *testing.T, build Builder) {
	q := build(newScheme(t, "WFE", 1, 1<<12), 1)
	for v := uint64(1); v <= 200; v++ {
		q.Enqueue(0, v)
	}
	for v := uint64(1); v <= 200; v++ {
		got, ok := q.Dequeue(0)
		if !ok || got != v {
			t.Fatalf("Dequeue = %d,%v; want %d", got, ok, v)
		}
	}
	if _, ok := q.Dequeue(0); ok {
		t.Fatal("drained queue returned a value")
	}
}

func runEmpty(t *testing.T, build Builder) {
	q := build(newScheme(t, "WFE", 1, 1<<12), 1)
	if _, ok := q.Dequeue(0); ok {
		t.Fatal("empty queue returned a value")
	}
	q.Enqueue(0, 7)
	if v, ok := q.Dequeue(0); !ok || v != 7 {
		t.Fatalf("Dequeue = %d,%v; want 7", v, ok)
	}
	if _, ok := q.Dequeue(0); ok {
		t.Fatal("queue not empty after drain")
	}
	// Refill after emptiness.
	q.Enqueue(0, 8)
	q.Enqueue(0, 9)
	if v, _ := q.Dequeue(0); v != 8 {
		t.Fatal("FIFO broken after refill")
	}
	if v, _ := q.Dequeue(0); v != 9 {
		t.Fatal("FIFO broken after refill")
	}
}

// runChurn exercises node recycling: enqueue/dequeue pairs far beyond the
// arena capacity only fit if reclamation actually recycles nodes.
func runChurn(t *testing.T, build Builder) {
	smr := newScheme(t, "WFE", 1, 512)
	q := build(smr, 1)
	for i := uint64(0); i < 20000; i++ {
		q.Enqueue(0, i)
		v, ok := q.Dequeue(0)
		if !ok || v != i {
			t.Fatalf("churn iteration %d: got %d,%v", i, v, ok)
		}
	}
	if inUse := smr.Arena().Stats().InUse; inUse > 400 {
		t.Fatalf("nodes not recycled: %d in use", inUse)
	}
}

// runStress checks conservation (every enqueued value dequeued at most
// once, none lost) and per-producer FIFO order under concurrency. Values
// encode producer and sequence so consumers can verify order.
func runStress(t *testing.T, build Builder, schemeName string) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const (
		producers = 2
		consumers = 2
		perProd   = 8000
	)
	threads := producers + consumers
	capacity := 1 << 16
	if schemeName == "Leak" {
		capacity = producers*perProd + 2048
	}
	smr := newScheme(t, schemeName, threads, capacity)
	q := build(smr, threads)

	dequeued := make([][]uint64, consumers)
	var wg sync.WaitGroup
	var done sync.WaitGroup
	done.Add(producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			defer done.Done()
			for i := uint64(0); i < perProd; i++ {
				q.Enqueue(tid, uint64(tid)<<32|i)
			}
		}(p)
	}
	stop := make(chan struct{})
	go func() { done.Wait(); close(stop) }()
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			tid := producers + idx
			for {
				v, ok := q.Dequeue(tid)
				if ok {
					dequeued[idx] = append(dequeued[idx], v)
					continue
				}
				select {
				case <-stop:
					// Producers done and queue observed empty: one more
					// confirming pass, then exit.
					if v, ok := q.Dequeue(tid); ok {
						dequeued[idx] = append(dequeued[idx], v)
						continue
					}
					return
				default:
				}
			}
		}(c)
	}
	wg.Wait()

	// Drain any remainder.
	rest := []uint64{}
	for {
		v, ok := q.Dequeue(0)
		if !ok {
			break
		}
		rest = append(rest, v)
	}

	seen := make(map[uint64]int)
	lastSeq := make([]map[int]uint64, consumers+1) // per consumer: producer → last seq
	for i := range lastSeq {
		lastSeq[i] = make(map[int]uint64)
	}
	account := func(consumer int, vs []uint64) {
		for _, v := range vs {
			seen[v]++
			prod := int(v >> 32)
			seq := v & 0xFFFFFFFF
			if last, ok := lastSeq[consumer][prod]; ok && seq <= last {
				t.Fatalf("%s: consumer %d saw producer %d out of order: %d after %d",
					schemeName, consumer, prod, seq, last)
			}
			lastSeq[consumer][prod] = seq
		}
	}
	for c := range dequeued {
		account(c, dequeued[c])
	}
	account(consumers, rest)

	if len(seen) != producers*perProd {
		t.Fatalf("%s: %d values accounted for, want %d", schemeName, len(seen), producers*perProd)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("%s: value %x dequeued %d times", schemeName, v, n)
		}
	}
}

// opStamp records the real-time window of one operation.
type opStamp struct {
	value      uint64
	start, end int64 // ns offsets
}

// RunRealTimeOrderCheck is a linearizability spot-check on real-time order:
// if enqueue(a) completed before enqueue(b) started, then a precedes b in
// the queue, so observing dequeue(b) complete before dequeue(a) starts is a
// linearizability violation. The pairwise check is a sound (necessary)
// condition that catches reordering bugs without full history search.
func RunRealTimeOrderCheck(t *testing.T, build Builder) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const (
		producers = 2
		consumers = 2
		perProd   = 3000
	)
	threads := producers + consumers
	smr := newScheme(t, "WFE", threads, 1<<16)
	q := build(smr, threads)

	var (
		enqs = make([][]opStamp, producers)
		deqs = make([][]opStamp, consumers)
		wg   sync.WaitGroup
		done sync.WaitGroup
	)
	base := time.Now()
	done.Add(producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			defer done.Done()
			for i := uint64(0); i < perProd; i++ {
				v := uint64(tid)<<32 | i
				s := time.Since(base).Nanoseconds()
				q.Enqueue(tid, v)
				enqs[tid] = append(enqs[tid], opStamp{v, s, time.Since(base).Nanoseconds()})
			}
		}(p)
	}
	stop := make(chan struct{})
	go func() { done.Wait(); close(stop) }()
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			tid := producers + idx
			for {
				s := time.Since(base).Nanoseconds()
				v, ok := q.Dequeue(tid)
				if ok {
					deqs[idx] = append(deqs[idx], opStamp{v, s, time.Since(base).Nanoseconds()})
					continue
				}
				select {
				case <-stop:
					if v, ok := q.Dequeue(tid); ok {
						deqs[idx] = append(deqs[idx], opStamp{v, s, time.Since(base).Nanoseconds()})
						continue
					}
					return
				default:
				}
			}
		}(c)
	}
	wg.Wait()

	enqBy := make(map[uint64]opStamp)
	for _, es := range enqs {
		for _, e := range es {
			enqBy[e.value] = e
		}
	}
	deqBy := make(map[uint64]opStamp)
	for _, dss := range deqs {
		for _, d := range dss {
			deqBy[d.value] = d
		}
	}

	var all []opStamp
	for _, es := range enqs {
		all = append(all, es...)
	}
	violations := 0
	for i := range all {
		for j := range all {
			a, b := all[i], all[j]
			if a.end >= b.start {
				continue // enqueues overlap: no order imposed
			}
			da, oka := deqBy[a.value]
			db, okb := deqBy[b.value]
			if !oka || !okb {
				continue
			}
			if db.end < da.start {
				t.Errorf("real-time order violated: enq(%x) < enq(%x) but deq(%x) finished before deq(%x) started",
					a.value, b.value, b.value, a.value)
				violations++
				if violations > 5 {
					t.FailNow()
				}
			}
		}
	}
}
