package crturn_test

import (
	"sync"
	"testing"

	"wfe/internal/ds/crturn"
	"wfe/internal/ds/queuetest"
	"wfe/internal/mem"
	"wfe/internal/reclaim"
	"wfe/internal/schemes"
)

func TestCRTurnSuite(t *testing.T) {
	queuetest.RunQueueSuite(t, func(smr reclaim.Scheme, maxThreads int) queuetest.Queue {
		return crturn.New(smr, maxThreads)
	})
}

func newWFEQueue(t *testing.T, threads int) (*crturn.Queue, reclaim.Scheme) {
	t.Helper()
	a := mem.New(mem.Config{Capacity: 1 << 14, MaxThreads: threads, Debug: true})
	s, err := schemes.New("WFE", a, reclaim.Config{MaxThreads: threads, EraFreq: 16, CleanupFreq: 8})
	if err != nil {
		t.Fatal(err)
	}
	return crturn.New(s, threads), s
}

// TestEmptyRace hammers the give-up path: consumers repeatedly poll an
// almost-always-empty queue while a producer trickles values; the absorb
// logic must deliver every value exactly once.
func TestEmptyRace(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const total = 5000
	q, _ := newWFEQueue(t, 3)

	var got sync.Map
	var wg sync.WaitGroup
	var count sync.WaitGroup
	count.Add(total)
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			misses := 0
			for misses < 1_000_000 {
				if v, ok := q.Dequeue(tid); ok {
					if _, dup := got.LoadOrStore(v, tid); dup {
						panic("duplicate delivery")
					}
					count.Done()
					misses = 0
				} else {
					misses++
				}
			}
		}(c + 1)
	}
	for i := uint64(0); i < total; i++ {
		q.Enqueue(0, i+1)
	}
	count.Wait() // all values delivered exactly once
	wg.Wait()

	n := 0
	got.Range(func(_, _ any) bool { n++; return true })
	if n != total {
		t.Fatalf("delivered %d values, want %d", n, total)
	}
}

func TestMaxThreadsLimit(t *testing.T) {
	a := mem.New(mem.Config{Capacity: 64, MaxThreads: 1, Debug: true})
	s, _ := schemes.New("WFE", a, reclaim.Config{MaxThreads: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("255-thread queue did not panic")
		}
	}()
	crturn.New(s, 255)
}
