// Package crturn implements the CRTurn wait-free queue of Ramalhete and
// Correia (PPoPP 2017 poster, "A Wait-Free Queue with Wait-Free Memory
// Reclamation"), the second wait-free structure in the paper's evaluation
// (Figure 5c/5d).
//
// The published mechanism: enqueuers announce their node in a per-thread
// array and helpers link announcements at the tail in "turn" order (round
// robin starting after the last inserted node's enqueuer), which bounds any
// enqueue by one full turn. Dequeuers announce open requests; helpers claim
// the current head's successor for the longest-waiting open request (turn
// order starting after the requester that received the current sentinel),
// hand the node over, and advance the head. The handed node itself carries
// the value and becomes the new sentinel; its receiver is responsible for
// retiring it later, which is the queue's wait-free reclamation story.
//
// Reconstruction notes (the authors' code is not available offline): this
// implementation keeps the published turn mechanics but makes the hand-off
// protocol explicitly ABA-proof with per-thread request sequence numbers.
// A dequeue request is (thread, seq); the claim CAS stores both in the
// node's claim word, and the hand-off CAS into deqhelp[t] is guarded by the
// sequence number, so arbitrarily stale helpers can neither hand a consumed
// node to a new request nor overwrite a newer hand-off. A request that
// observes an empty queue closes itself (gives up); a hand-off that still
// lands for a closed request is absorbed by the thread's next dequeue,
// which is linearizable because the claimed node was the oldest element and
// no further node can be claimed for that thread while its request is
// closed. Retirement: the receiver of a handed node retires it at its next
// dequeue, after making sure the head has moved past it; the initial
// sentinel, which no thread owns, is retired by whoever wins the head CAS
// that unlinks it.
package crturn

import (
	"fmt"
	"sync/atomic"

	"wfe/internal/ds"
	"wfe/internal/mem"
	"wfe/internal/pack"
	"wfe/internal/reclaim"
)

const (
	nextWord   = 0 // successor link
	claimWord  = 1 // packed {seq:38 | receiver+1:8}; 0 = unclaimed
	enqTidWord = 2 // enqueuer + 1 (set before publication)

	// reservation indices
	hpHead = 0
	hpNext = 1
	hpTail = 0 // enqueue reuses index 0 for the tail
)

// claim word: seq<<8 | tid+1 (tid < 255).
func makeClaim(tid int, seq uint64) uint64 { return seq<<8 | uint64(tid) + 1 }
func claimTid(c uint64) int                { return int(c&0xFF) - 1 }
func claimSeq(c uint64) uint64             { return c >> 8 }

// deqself word: seq<<1 | open.
func makeSelf(seq uint64, open bool) uint64 {
	s := seq << 1
	if open {
		s |= 1
	}
	return s
}
func selfSeq(s uint64) uint64 { return s >> 1 }
func selfOpen(s uint64) bool  { return s&1 != 0 }

// deqhelp word: seq<<26 | handle.
func makeHelp(seq uint64, h mem.Handle) uint64 { return seq<<pack.HandleBits | h }
func helpSeq(v uint64) uint64                  { return v >> pack.HandleBits }
func helpNode(v uint64) mem.Handle             { return v & pack.HandleMask }

type perThread struct {
	deqself atomic.Uint64 // request state; owner stores, helpers read
	deqhelp atomic.Uint64 // hand-off slot; helpers CAS, owner reads
	enq     atomic.Uint64 // announced enqueue node; owner stores, helpers clear
	_       [40]byte
}

// ownerState is owner-thread-local dequeue bookkeeping.
type ownerState struct {
	reqSeq  uint64     // last issued request sequence
	lastSeq uint64     // sequence of the last consumed hand-off
	prev    mem.Handle // last consumed node, to retire at the next dequeue
	_       [40]byte
}

// Queue is a wait-free MPMC FIFO queue.
type Queue struct {
	smr        reclaim.Scheme
	maxThreads int
	head       atomic.Uint64
	tail       atomic.Uint64
	threads    []perThread
	owners     []ownerState
}

// New creates an empty queue for up to maxThreads (< 255) registered
// threads; the initial sentinel is allocated on behalf of thread 0.
func New(smr reclaim.Scheme, maxThreads int) *Queue {
	return NewTid(smr, maxThreads, 0)
}

// NewTid is New with the sentinel allocated on behalf of tid — the export
// hook for the public façade, whose constructor runs under a leased guard
// holding an arbitrary tid while other tids may be allocating concurrently.
func NewTid(smr reclaim.Scheme, maxThreads, tid int) *Queue {
	if maxThreads >= 255 {
		panic("crturn: claim word holds at most 254 thread ids")
	}
	q := &Queue{
		smr:        smr,
		maxThreads: maxThreads,
		threads:    make([]perThread, maxThreads),
		owners:     make([]ownerState, maxThreads),
	}
	a := smr.Arena()
	s := smr.Alloc(tid)
	a.StoreWord(s, nextWord, 0)
	a.StoreWord(s, claimWord, 0)
	a.StoreWord(s, enqTidWord, 0)
	q.head.Store(s)
	q.tail.Store(s)
	return q
}

// debugBound panics in debug arenas when a nominally bounded helping loop
// exceeds its wait-freedom budget; release arenas keep looping.
func (q *Queue) debugBound(round int, op string) {
	if q.smr.Arena().Debug() && round > 16*q.maxThreads+64 {
		panic(fmt.Sprintf("crturn: %s exceeded its wait-free round bound", op))
	}
}

// Enqueue appends v. The announcement/turn protocol guarantees the node is
// linked within one full turn even if this thread does all the work itself.
func (q *Queue) Enqueue(tid int, v uint64) {
	q.smr.Begin(tid)
	defer q.smr.Clear(tid)
	a := q.smr.Arena()

	node := q.smr.Alloc(tid)
	a.SetVal(node, v)
	a.StoreWord(node, nextWord, 0)
	a.StoreWord(node, claimWord, 0)
	a.StoreWord(node, enqTidWord, uint64(tid)+1)
	q.threads[tid].enq.Store(node)

	for round := 0; q.threads[tid].enq.Load() != 0; round++ {
		q.debugBound(round, "enqueue")
		ltail := pack.Handle(q.smr.GetProtected(tid, &q.tail, hpTail, 0))
		// Clear the tail node's announcement before anything may advance
		// the tail past it: helpers scanning announcements after reading
		// the tail then cannot re-link an already inserted node.
		if et := a.LoadWord(ltail, enqTidWord); et != 0 {
			if q.threads[et-1].enq.Load() == ltail {
				q.threads[et-1].enq.CompareAndSwap(ltail, 0)
			}
		}
		lnext := pack.Handle(q.smr.GetProtected(tid, a.WordAddr(ltail, nextWord), hpNext, ltail))
		if ltail != pack.Handle(q.tail.Load()) {
			continue
		}
		if lnext != 0 { // tail lagging: advance and retry
			q.tail.CompareAndSwap(ltail, lnext)
			continue
		}
		// Link the next announcement in turn order, starting after the
		// enqueuer of the current tail node.
		turn := int(a.LoadWord(ltail, enqTidWord)) // et+1 form; 0 when none
		for j := 1; j <= q.maxThreads; j++ {
			t2 := (turn - 1 + j + q.maxThreads) % q.maxThreads
			cand := q.threads[t2].enq.Load()
			if cand != 0 && cand != ltail {
				a.CASWord(ltail, nextWord, 0, cand)
				break
			}
		}
		if nn := pack.Handle(a.LoadWord(ltail, nextWord)); nn != 0 {
			q.tail.CompareAndSwap(ltail, nn)
		}
	}
}

// consume takes a hand-off (seq, node), returns its value, and retires the
// node consumed before it once the head is safely past that older node.
func (q *Queue) consume(tid int, hv uint64) uint64 {
	a := q.smr.Arena()
	node := helpNode(hv)
	v := a.Val(node)
	o := &q.owners[tid]
	if o.prev != 0 {
		q.retireSentinel(tid, o.prev)
	}
	o.prev = node
	o.lastSeq = helpSeq(hv)
	return v
}

// retireSentinel retires a node this thread received earlier. The node left
// the queue when its successor was handed over, but the head pointer itself
// may still lag on it; push the head past it first so no new reader can
// pick a retired block up from the head.
func (q *Queue) retireSentinel(tid int, h mem.Handle) {
	a := q.smr.Arena()
	if pack.Handle(q.head.Load()) == h {
		if nx := pack.Handle(a.LoadWord(h, nextWord)); nx != 0 {
			q.head.CompareAndSwap(h, nx)
		}
	}
	q.smr.Retire(tid, h)
}

// Dequeue removes and returns the oldest value; ok is false when empty.
func (q *Queue) Dequeue(tid int) (v uint64, ok bool) {
	q.smr.Begin(tid)
	defer q.smr.Clear(tid)
	a := q.smr.Arena()
	o := &q.owners[tid]
	me := &q.threads[tid]

	// Absorb a hand-off that landed after a previous dequeue gave up: it
	// holds the then-oldest element and nothing newer can have been claimed
	// for this thread while its request was closed.
	if hv := me.deqhelp.Load(); helpSeq(hv) > o.lastSeq {
		return q.consume(tid, hv), true
	}

	// Open a new request.
	o.reqSeq++
	myseq := o.reqSeq
	me.deqself.Store(makeSelf(myseq, true))

	for round := 0; ; round++ {
		q.debugBound(round, "dequeue")
		if hv := me.deqhelp.Load(); helpSeq(hv) == myseq {
			me.deqself.Store(makeSelf(myseq, false))
			return q.consume(tid, hv), true
		}
		lheadV := q.smr.GetProtected(tid, &q.head, hpHead, 0)
		lhead := pack.Handle(lheadV)
		lnext := pack.Handle(q.smr.GetProtected(tid, a.WordAddr(lhead, nextWord), hpNext, lhead))
		if lhead != pack.Handle(q.head.Load()) {
			continue
		}
		if lnext == 0 { // empty: close the request (give up)
			me.deqself.Store(makeSelf(myseq, false))
			if hv := me.deqhelp.Load(); helpSeq(hv) == myseq {
				// Handed concurrently with the give-up: it is ours.
				return q.consume(tid, hv), true
			}
			// Re-validate emptiness *after* closing. A claim for this
			// request can only live on the current head's successor
			// (claims bind to head.next and the head cannot advance past
			// an unhanded claim), so observing an empty queue now proves
			// no claim for this request exists or can ever land — late
			// claim CASes target a node that has since been claimed by
			// someone else and fail on its non-zero claim word.
			lh2 := pack.Handle(q.smr.GetProtected(tid, &q.head, hpHead, 0))
			ln2 := pack.Handle(q.smr.GetProtected(tid, a.WordAddr(lh2, nextWord), hpNext, lh2))
			if ln2 == 0 && lh2 == pack.Handle(q.head.Load()) {
				if hv := me.deqhelp.Load(); helpSeq(hv) == myseq {
					return q.consume(tid, hv), true
				}
				return 0, false
			}
			// Not empty after all; re-open and keep helping.
			me.deqself.Store(makeSelf(myseq, true))
			continue
		}
		q.helpHand(tid, lhead, lnext)
	}
}

// helpHand performs one helping step on a non-empty queue snapshot: claim
// the head's successor for the open request whose turn it is, hand it over
// (sequence-guarded), and advance the head.
func (q *Queue) helpHand(tid int, lhead, lnext mem.Handle) {
	a := q.smr.Arena()
	cw := a.LoadWord(lnext, claimWord)
	if cw == 0 {
		// Whose turn? Round robin after the receiver of the current
		// sentinel.
		turn := claimTid(a.LoadWord(lhead, claimWord)) // -1 for the initial sentinel
		for j := 1; j <= q.maxThreads; j++ {
			t2 := (turn + j + q.maxThreads) % q.maxThreads
			ds := q.threads[t2].deqself.Load()
			if !selfOpen(ds) {
				continue
			}
			seq := selfSeq(ds)
			if helpSeq(q.threads[t2].deqhelp.Load()) >= seq {
				continue // already satisfied; the owner just hasn't noticed
			}
			a.CASWord(lnext, claimWord, 0, makeClaim(t2, seq))
			break
		}
		cw = a.LoadWord(lnext, claimWord)
	}
	if cw != 0 {
		t2, seq := claimTid(cw), claimSeq(cw)
		hs := &q.threads[t2].deqhelp
		// The hand-off must be complete before the head may advance (the
		// give-up protocol relies on "head cannot pass an unhanded claim").
		// The sequence guard makes stale hand-offs harmless: they can only
		// lose against (never overwrite) a newer hand-off.
		for {
			cur := hs.Load()
			if helpSeq(cur) >= seq || hs.CompareAndSwap(cur, makeHelp(seq, lnext)) {
				break
			}
		}
		if q.head.CompareAndSwap(lhead, lnext) {
			// The initial sentinel has no receiver to retire it.
			if claimTid(a.LoadWord(lhead, claimWord)) == -1 {
				q.smr.Retire(tid, lhead)
			}
		}
	}
}

// Len counts queued values; meaningful only quiescently.
func (q *Queue) Len() int {
	a := q.smr.Arena()
	n := 0
	h := pack.Handle(q.head.Load())
	for h != 0 {
		next := pack.Handle(a.LoadWord(h, nextWord))
		if next != 0 {
			n++
		}
		h = next
	}
	return n
}

// kv adapts the queue to ds.KV: Insert enqueues the key, Delete dequeues.
type kv struct{ q *Queue }

// KV returns the benchmark adapter. Get and Put panic: the paper's queue
// workloads are insert/delete only.
func (q *Queue) KV() ds.KV { return kv{q} }

func (k kv) Insert(tid int, key uint64) bool { k.q.Enqueue(tid, key); return true }
func (k kv) Delete(tid int, key uint64) bool { _, ok := k.q.Dequeue(tid); return ok }
func (k kv) Get(tid int, key uint64) bool    { panic("crturn: Get unsupported on queues") }
func (k kv) Put(tid int, key uint64)         { panic("crturn: Put unsupported on queues") }

// Seed pre-populates the queue; queue enqueues are already O(1) amortised,
// so this simply enqueues in order.
func (q *Queue) Seed(tid int, keys []uint64) {
	for _, k := range keys {
		q.Enqueue(tid, k)
	}
}

func (k kv) Seed(tid int, keys []uint64) { k.q.Seed(tid, keys) }
