package hashmap_test

import (
	"testing"

	"wfe/internal/ds"
	"wfe/internal/ds/dstest"
	"wfe/internal/ds/hashmap"
	"wfe/internal/mem"
	"wfe/internal/reclaim"
	"wfe/internal/schemes"
)

func TestHashMapSuite(t *testing.T) {
	dstest.RunMapSuite(t, func(smr reclaim.Scheme) ds.KV {
		return hashmap.New(smr, 64).KV()
	})
}

func TestSingleBucketDegeneratesToList(t *testing.T) {
	// With one bucket every key collides; the map must still be correct.
	dstest.RunMapSuite(t, func(smr reclaim.Scheme) ds.KV {
		return hashmap.New(smr, 1).KV()
	})
}

func TestBucketRounding(t *testing.T) {
	a := mem.New(mem.Config{Capacity: 1 << 10, MaxThreads: 1, Debug: true})
	s, err := schemes.New("WFE", a, reclaim.Config{MaxThreads: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := hashmap.New(s, 100) // rounds to 128
	for k := uint64(0); k < 500; k++ {
		if !m.Insert(0, k, k) {
			t.Fatalf("insert %d failed", k)
		}
	}
	if m.Len() != 500 {
		t.Fatalf("Len = %d", m.Len())
	}
	for k := uint64(0); k < 500; k++ {
		if v, ok := m.Get(0, k); !ok || v != k {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
}

func TestSeedBulkLoad(t *testing.T) {
	a := mem.New(mem.Config{Capacity: 1 << 12, MaxThreads: 1, Debug: true})
	s, err := schemes.New("WFE", a, reclaim.Config{MaxThreads: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := hashmap.New(s, 16)
	keys := []uint64{3, 14, 15, 92, 65, 358, 979}
	m.Seed(0, keys)
	if m.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", m.Len(), len(keys))
	}
	for _, k := range keys {
		if v, ok := m.Get(0, k); !ok || v != k {
			t.Fatalf("seeded key %d: got %d,%v", k, v, ok)
		}
	}
	// Seeded nodes participate in normal operation afterwards.
	if !m.Delete(0, 92) || m.Len() != len(keys)-1 {
		t.Fatal("delete of seeded key failed")
	}
	if m.Insert(0, 14, 14) {
		t.Fatal("duplicate insert of seeded key succeeded")
	}
	kv := m.KV()
	if !kv.Get(0, 3) {
		t.Fatal("KV adapter lost seeded key")
	}
	if s2, ok := kv.(interface {
		Seed(int, []uint64)
	}); ok {
		s2.Seed(0, nil) // adapter path, empty seed is a no-op
	} else {
		t.Fatal("KV adapter does not expose Seed")
	}
}
