// Package hashmap implements Michael's lock-free hash map: a fixed array of
// buckets, each a Harris–Michael sorted list. With the benchmark's key
// range spread over a comparable number of buckets, chains stay short and
// operations are near-O(1), which is why the paper's hash-map figures run
// two orders of magnitude faster than the linked list.
package hashmap

import (
	"math/bits"
	"sort"

	"wfe/internal/ds"
	"wfe/internal/ds/list"
	"wfe/internal/reclaim"
)

// Map is a lock-free hash map of uint64 keys.
type Map struct {
	buckets []list.List
	mask    uint64
}

// New creates a map with at least minBuckets buckets (rounded up to a power
// of two), managed by the given scheme.
func New(smr reclaim.Scheme, minBuckets int) *Map {
	if minBuckets < 1 {
		minBuckets = 1
	}
	n := 1 << bits.Len(uint(minBuckets-1))
	m := &Map{buckets: make([]list.List, n), mask: uint64(n - 1)}
	for i := range m.buckets {
		m.buckets[i].Init(smr)
	}
	return m
}

// bucketIdx picks the chain via a Fibonacci multiplicative hash.
func (m *Map) bucketIdx(key uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> 32 & m.mask
}

func (m *Map) bucket(key uint64) *list.List {
	return &m.buckets[m.bucketIdx(key)]
}

// Seed bulk-loads deduplicated keys before any concurrent use.
func (m *Map) Seed(tid int, keys []uint64) {
	groups := make([][]uint64, len(m.buckets))
	for _, k := range keys {
		idx := m.bucketIdx(k)
		groups[idx] = append(groups[idx], k)
	}
	for i, g := range groups {
		if len(g) == 0 {
			continue
		}
		sort.Slice(g, func(a, b int) bool { return g[a] < g[b] })
		m.buckets[i].Seed(tid, g)
	}
}

// Insert adds key→val, reporting false if the key already exists.
func (m *Map) Insert(tid int, key, val uint64) bool {
	return m.bucket(key).Insert(tid, key, val)
}

// Delete removes key, reporting whether it was present.
func (m *Map) Delete(tid int, key uint64) bool {
	return m.bucket(key).Delete(tid, key)
}

// Get returns the value stored under key.
func (m *Map) Get(tid int, key uint64) (uint64, bool) {
	return m.bucket(key).Get(tid, key)
}

// Put inserts or refreshes key→val.
func (m *Map) Put(tid int, key, val uint64) {
	m.bucket(key).Put(tid, key, val)
}

// Len sums bucket lengths; meaningful only quiescently.
func (m *Map) Len() int {
	n := 0
	for i := range m.buckets {
		n += m.buckets[i].Len()
	}
	return n
}

// kv adapts Map to ds.KV with keys as values.
type kv struct{ m *Map }

// KV returns the benchmark adapter.
func (m *Map) KV() ds.KV { return kv{m} }

func (k kv) Insert(tid int, key uint64) bool { return k.m.Insert(tid, key, key) }
func (k kv) Delete(tid int, key uint64) bool { return k.m.Delete(tid, key) }
func (k kv) Get(tid int, key uint64) bool    { _, ok := k.m.Get(tid, key); return ok }
func (k kv) Put(tid int, key uint64)         { k.m.Put(tid, key, key) }

func (k kv) Seed(tid int, keys []uint64) { k.m.Seed(tid, keys) }
