package bst_test

import (
	"math/rand"
	"testing"

	"wfe/internal/ds"
	"wfe/internal/ds/bst"
	"wfe/internal/ds/dstest"
	"wfe/internal/mem"
	"wfe/internal/reclaim"
	"wfe/internal/schemes"
)

func TestBSTSuite(t *testing.T) {
	dstest.RunMapSuite(t, func(smr reclaim.Scheme) ds.KV {
		return bst.New(smr).KV()
	})
}

func newWFETree(t *testing.T) (*bst.Tree, reclaim.Scheme) {
	t.Helper()
	a := mem.New(mem.Config{Capacity: 1 << 14, MaxThreads: 2, Debug: true})
	s, err := schemes.New("WFE", a, reclaim.Config{MaxThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	return bst.New(s), s
}

func TestBSTShapes(t *testing.T) {
	tr, _ := newWFETree(t)
	// Ascending, descending and zig-zag insertion orders must all work
	// (external BSTs do not rebalance, but routing must stay correct).
	keys := []uint64{50, 25, 75, 10, 30, 60, 90, 5, 15, 27, 35}
	for _, k := range keys {
		if !tr.Insert(0, k, k*10) {
			t.Fatalf("insert %d failed", k)
		}
	}
	if tr.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(keys))
	}
	for _, k := range keys {
		v, ok := tr.Get(0, k)
		if !ok || v != k*10 {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
	// Delete interior and leaf positions.
	for _, k := range []uint64{25, 5, 90, 50} {
		if !tr.Delete(0, k) {
			t.Fatalf("delete %d failed", k)
		}
		if _, ok := tr.Get(0, k); ok {
			t.Fatalf("key %d reachable after delete", k)
		}
	}
	if tr.Len() != len(keys)-4 {
		t.Fatalf("Len after deletes = %d", tr.Len())
	}
}

func TestBSTDrainToEmpty(t *testing.T) {
	tr, _ := newWFETree(t)
	rng := rand.New(rand.NewSource(7))
	keys := rng.Perm(200)
	for _, k := range keys {
		tr.Insert(0, uint64(k), uint64(k))
	}
	for _, k := range rng.Perm(200) {
		if !tr.Delete(0, uint64(k)) {
			t.Fatalf("delete %d failed", k)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("tree not empty: %d leaves", tr.Len())
	}
	// Reuse after a full drain.
	for _, k := range []uint64{3, 1, 4, 1, 5} {
		tr.Put(0, k, k)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len after refill = %d", tr.Len())
	}
}

func TestBSTReclaimsNodes(t *testing.T) {
	tr, s := newWFETree(t)
	for i := 0; i < 2000; i++ {
		tr.Insert(0, 42, 1)
		tr.Delete(0, 42)
	}
	if inUse := s.Arena().Stats().InUse; inUse > 300 {
		t.Fatalf("BST churn leaked: %d blocks in use", inUse)
	}
}

func TestBSTValueRefresh(t *testing.T) {
	tr, _ := newWFETree(t)
	tr.Put(0, 9, 1)
	tr.Put(0, 9, 2)
	if v, ok := tr.Get(0, 9); !ok || v != 2 {
		t.Fatalf("Get = %d,%v after refresh", v, ok)
	}
}
