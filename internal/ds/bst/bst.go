// Package bst implements the Natarajan–Mittal lock-free external binary
// search tree (PPoPP 2014), the paper's most complex lock-free workload
// (Figures 8 and 11).
//
// Structure: internal nodes route (key < node.key goes left); every key
// lives in a leaf. Deletion is two-phase: the *injection* CAS flags the
// parent→leaf edge (the linearization point), then *cleanup* tags the
// parent's sibling edge — freezing the parent — and swings the grandparent
// edge from the parent to the sibling, unlinking parent and leaf.
//
// Reclamation discipline. The original algorithm lets traversals walk
// through frozen (flagged/tagged) edges; under bounded memory reclamation
// that is unsafe, because a frozen edge inside a retired node can lead to a
// block that was already unlinked — and therefore possibly freed — before
// the traversal protected it. This implementation instead never crosses a
// frozen edge: GetProtected returns the edge value read under protection,
// and a clean (unfrozen) value proves the child had not been unlinked at
// the read — so its retirement, if any, postdates the reservation and the
// block cannot be freed while protected. On meeting a frozen edge the
// traversal helps complete the pending deletion (cleanup) and restarts from
// the root. Consequently every cleanup unlinks exactly one internal node
// and one leaf, and the thread whose grandparent CAS succeeds retires both,
// exactly once. This trades the original's multi-node helping chains for
// restart-with-help; both are lock-free and the benchmark shapes are
// unaffected.
package bst

import (
	"wfe/internal/ds"
	"wfe/internal/mem"
	"wfe/internal/pack"
	"wfe/internal/reclaim"
)

const (
	leftWord   = 0 // child edge words: handle | flagBit | tagBit
	rightWord  = 1
	isLeafWord = 2 // 1 for leaves, 0 for internal nodes

	// flagBit marks an edge whose child leaf is being deleted; tagBit
	// freezes the sibling edge while the sibling moves up.
	flagBit = pack.MarkBit
	tagBit  = pack.FlagBit

	// Sentinel keys: every real key must be below KeyMax.
	inf2   = ^uint64(0)
	inf1   = ^uint64(1)
	KeyMax = inf1 - 1
)

func frozen(edge uint64) bool { return edge&(flagBit|tagBit) != 0 }

// Tree is a lock-free external BST of uint64 keys in [0, KeyMax].
type Tree struct {
	smr reclaim.Scheme
	// root ("R") and its left child ("S") are sentinels that are never
	// flagged, tagged or removed; all real keys live under S's left edge.
	root mem.Handle
	s    mem.Handle
}

// New creates an empty tree managed by the given scheme. The three blocks
// of the sentinel skeleton are allocated on behalf of thread 0.
func New(smr reclaim.Scheme) *Tree {
	a := smr.Arena()
	mk := func(key uint64, leaf bool) mem.Handle {
		h := smr.Alloc(0)
		a.SetKey(h, key)
		if leaf {
			a.StoreWord(h, isLeafWord, 1)
		} else {
			a.StoreWord(h, isLeafWord, 0)
		}
		a.StoreWord(h, leftWord, 0)
		a.StoreWord(h, rightWord, 0)
		return h
	}
	t := &Tree{smr: smr}
	t.root = mk(inf2, false)
	t.s = mk(inf1, false)
	a.StoreWord(t.s, leftWord, mk(inf1, true))
	a.StoreWord(t.s, rightWord, mk(inf2, true))
	a.StoreWord(t.root, leftWord, t.s)
	a.StoreWord(t.root, rightWord, mk(inf2, true))
	return t
}

func (t *Tree) isLeaf(h mem.Handle) bool {
	return t.smr.Arena().LoadWord(h, isLeafWord) == 1
}

// dir returns the child word to follow for key at an internal node.
func (t *Tree) dir(node mem.Handle, key uint64) int {
	if key < t.smr.Arena().Key(node) {
		return leftWord
	}
	return rightWord
}

// seekRecord is the traversal result: the leaf terminating the search path,
// its parent, the parent's parent (the cleanup ancestor), plus the clean
// edge value and direction from parent to leaf.
type seekRecord struct {
	anc, par, leaf mem.Handle
	leafEdge       uint64 // clean link value of the parent→leaf edge
	leafDir        int    // which child word of par holds the leaf
}

// seek walks from the root to the leaf on key's search path. It maintains
// protections for the (grandparent, parent, current) window across four
// rotating reservation indices and never crosses a frozen edge: on meeting
// one it helps the pending deletion and restarts.
func (t *Tree) seek(tid int, key uint64, sr *seekRecord) {
	a := t.smr.Arena()
retry:
	for {
		gp, par := t.root, t.s
		dir := t.dir(par, key)
		igp, ipar, icur, inext := 0, 1, 2, 3
		curVal := t.smr.GetProtected(tid, a.WordAddr(par, dir), icur, par)
		for {
			cur := pack.Handle(curVal)
			if t.isLeaf(cur) {
				sr.anc, sr.par, sr.leaf = gp, par, cur
				sr.leafEdge = curVal
				sr.leafDir = dir
				return
			}
			ndir := t.dir(cur, key)
			nextVal := t.smr.GetProtected(tid, a.WordAddr(cur, ndir), inext, cur)
			if frozen(nextVal) {
				// cur is a parent under deletion; finish that deletion and
				// restart so the path window stays on live nodes.
				t.cleanup(tid, par, cur)
				continue retry
			}
			gp, par = par, cur
			dir = ndir
			curVal = nextVal
			igp, ipar, icur, inext = ipar, icur, inext, igp
		}
	}
}

// cleanup completes a pending deletion at parent par whose grandparent is
// anc: it tags the sibling edge (freezing par), swings anc's edge from par
// to the sibling, and — on winning the swing CAS — retires par and the
// flagged leaf. It reports whether this call performed the unlink.
func (t *Tree) cleanup(tid int, anc, par mem.Handle) bool {
	a := t.smr.Arena()

	leftV := a.LoadWord(par, leftWord)
	rightV := a.LoadWord(par, rightWord)
	var victimDir, sibDir int
	switch {
	case leftV&flagBit != 0:
		victimDir, sibDir = leftWord, rightWord
	case rightV&flagBit != 0:
		victimDir, sibDir = rightWord, leftWord
	default:
		return false // nothing pending (already helped)
	}

	// Freeze the sibling edge. Bounded retries: the edge can change at most
	// until the tag lands; competitors set the same bit.
	sv := a.LoadWord(par, sibDir)
	for sv&tagBit == 0 {
		a.CASWord(par, sibDir, sv, sv|tagBit)
		sv = a.LoadWord(par, sibDir)
	}

	// Move the sibling up, preserving a pending flag on it but not the tag.
	newEdge := pack.Handle(sv) | sv&flagBit

	// Find which edge of anc holds par; it must be clean to swing.
	var ancDir int
	switch {
	case pack.Handle(a.LoadWord(anc, leftWord)) == par:
		ancDir = leftWord
	case pack.Handle(a.LoadWord(anc, rightWord)) == par:
		ancDir = rightWord
	default:
		return false // anc no longer points at par; someone else unlinked
	}
	if !a.CASWord(anc, ancDir, par, newEdge) {
		return false
	}
	// We unlinked {par, victim leaf}: retire both, exactly once.
	victim := pack.Handle(a.LoadWord(par, victimDir))
	t.smr.Retire(tid, victim)
	t.smr.Retire(tid, par)
	return true
}

// Insert adds key, reporting false if it is already present.
func (t *Tree) Insert(tid int, key, val uint64) bool {
	t.smr.Begin(tid)
	defer t.smr.Clear(tid)
	a := t.smr.Arena()
	var sr seekRecord
	var newLeaf, newInt mem.Handle
	for {
		t.seek(tid, key, &sr)
		leafKey := a.Key(sr.leaf)
		if leafKey == key {
			if newLeaf != 0 {
				a.Free(tid, newLeaf) // never published
				a.Free(tid, newInt)
			}
			return false
		}
		if newLeaf == 0 {
			newLeaf = t.smr.Alloc(tid)
			a.SetKey(newLeaf, key)
			a.SetVal(newLeaf, val)
			a.StoreWord(newLeaf, isLeafWord, 1)
			a.StoreWord(newLeaf, leftWord, 0)
			a.StoreWord(newLeaf, rightWord, 0)
			newInt = t.smr.Alloc(tid)
			a.StoreWord(newInt, isLeafWord, 0)
		}
		// The new internal node routes between the new leaf and the old one.
		if key < leafKey {
			a.SetKey(newInt, leafKey)
			a.StoreWord(newInt, leftWord, newLeaf)
			a.StoreWord(newInt, rightWord, sr.leaf)
		} else {
			a.SetKey(newInt, key)
			a.StoreWord(newInt, leftWord, sr.leaf)
			a.StoreWord(newInt, rightWord, newLeaf)
		}
		if a.CASWord(sr.par, sr.leafDir, sr.leafEdge, newInt) {
			return true
		}
		// Edge changed; if a deletion froze it, help before retrying.
		if frozen(a.LoadWord(sr.par, sr.leafDir)) {
			t.cleanup(tid, sr.anc, sr.par)
		}
	}
}

// Delete removes key, reporting whether it was present. The flag CAS on the
// parent→leaf edge is the linearization point; the unlink may be completed
// by any helper.
func (t *Tree) Delete(tid int, key uint64) bool {
	t.smr.Begin(tid)
	defer t.smr.Clear(tid)
	a := t.smr.Arena()
	var sr seekRecord
	// Injection phase.
	for {
		t.seek(tid, key, &sr)
		if a.Key(sr.leaf) != key {
			return false
		}
		if a.CASWord(sr.par, sr.leafDir, sr.leafEdge, sr.leafEdge|flagBit) {
			break
		}
		// Someone is deleting here (maybe the same leaf); help and retry.
		if frozen(a.LoadWord(sr.par, sr.leafDir)) {
			t.cleanup(tid, sr.anc, sr.par)
		}
	}
	// Cleanup phase. The flag CAS made the unlink every traversal's
	// obligation: seek never crosses a frozen edge, so if our own cleanup
	// loses, one completed re-seek — which helps every pending deletion on
	// the way, ours included — proves the flagged victim is off the tree.
	// Comparing the returned leaf against the victim's handle would be
	// wrong, not just redundant: the handle can be recycled into a fresh
	// leaf of the same key, and handle equality would then spin forever on
	// a quiescent tree.
	if !t.cleanup(tid, sr.anc, sr.par) {
		t.seek(tid, key, &sr)
	}
	return true
}

// Get returns the value stored under key.
func (t *Tree) Get(tid int, key uint64) (uint64, bool) {
	t.smr.Begin(tid)
	defer t.smr.Clear(tid)
	var sr seekRecord
	t.seek(tid, key, &sr)
	a := t.smr.Arena()
	if a.Key(sr.leaf) != key {
		return 0, false
	}
	return a.Val(sr.leaf), true
}

// Put inserts key, or replaces an existing key's leaf with a fresh one and
// retires the old leaf — the paper benchmark's put semantics, keeping
// read-mostly workloads on the reclamation path.
func (t *Tree) Put(tid int, key, val uint64) {
	for {
		done, found := t.tryReplace(tid, key, val)
		if done {
			return
		}
		if !found && t.Insert(tid, key, val) {
			return
		}
	}
}

// tryReplace swaps the key's leaf for a fresh one. found reports whether
// the key was on the search path at all (directing Put to the insert path);
// done reports whether the replacement landed.
func (t *Tree) tryReplace(tid int, key, val uint64) (done, found bool) {
	t.smr.Begin(tid)
	defer t.smr.Clear(tid)
	a := t.smr.Arena()
	var sr seekRecord
	t.seek(tid, key, &sr)
	if a.Key(sr.leaf) != key {
		return false, false
	}
	newLeaf := t.smr.Alloc(tid)
	a.SetKey(newLeaf, key)
	a.SetVal(newLeaf, val)
	a.StoreWord(newLeaf, isLeafWord, 1)
	a.StoreWord(newLeaf, leftWord, 0)
	a.StoreWord(newLeaf, rightWord, 0)
	if a.CASWord(sr.par, sr.leafDir, sr.leafEdge, newLeaf) {
		t.smr.Retire(tid, sr.leaf)
		return true, true
	}
	a.Free(tid, newLeaf) // never published
	if frozen(a.LoadWord(sr.par, sr.leafDir)) {
		t.cleanup(tid, sr.anc, sr.par)
	}
	return false, true
}

// Seed bulk-loads sorted deduplicated keys as a balanced subtree under S's
// left edge in O(n); it must run before any concurrent use. The rightmost
// leaf of the built subtree is the ∞1 sentinel, preserving the search
// invariant for keys above the seeded range.
func (t *Tree) Seed(tid int, keys []uint64) {
	a := t.smr.Arena()
	leaves := make([]mem.Handle, 0, len(keys)+1)
	for _, k := range keys {
		h := t.smr.Alloc(tid)
		a.SetKey(h, k)
		a.SetVal(h, k)
		a.StoreWord(h, isLeafWord, 1)
		a.StoreWord(h, leftWord, 0)
		a.StoreWord(h, rightWord, 0)
		leaves = append(leaves, h)
	}
	// Reuse the existing ∞1 sentinel leaf as the rightmost leaf.
	leaves = append(leaves, pack.Handle(a.LoadWord(t.s, leftWord)))
	a.StoreWord(t.s, leftWord, t.buildBalanced(tid, leaves))
}

// buildBalanced assembles sorted leaves into a balanced external subtree;
// each internal node's key is the smallest key of its right subtree.
func (t *Tree) buildBalanced(tid int, leaves []mem.Handle) mem.Handle {
	if len(leaves) == 1 {
		return leaves[0]
	}
	a := t.smr.Arena()
	mid := len(leaves) / 2
	n := t.smr.Alloc(tid)
	a.SetKey(n, a.Key(leaves[mid]))
	a.StoreWord(n, isLeafWord, 0)
	a.StoreWord(n, leftWord, t.buildBalanced(tid, leaves[:mid]))
	a.StoreWord(n, rightWord, t.buildBalanced(tid, leaves[mid:]))
	return n
}

// Len counts real-key leaves; meaningful only quiescently.
func (t *Tree) Len() int {
	return t.countLeaves(t.root)
}

func (t *Tree) countLeaves(h mem.Handle) int {
	a := t.smr.Arena()
	if t.isLeaf(h) {
		if a.Key(h) <= KeyMax {
			return 1
		}
		return 0
	}
	n := 0
	if l := pack.Handle(a.LoadWord(h, leftWord)); l != 0 {
		n += t.countLeaves(l)
	}
	if r := pack.Handle(a.LoadWord(h, rightWord)); r != 0 {
		n += t.countLeaves(r)
	}
	return n
}

// kv adapts Tree to ds.KV with keys as values.
type kv struct{ t *Tree }

// KV returns the benchmark adapter.
func (t *Tree) KV() ds.KV { return kv{t} }

func (k kv) Insert(tid int, key uint64) bool { return k.t.Insert(tid, key, key) }
func (k kv) Delete(tid int, key uint64) bool { return k.t.Delete(tid, key) }
func (k kv) Get(tid int, key uint64) bool    { _, ok := k.t.Get(tid, key); return ok }
func (k kv) Put(tid int, key uint64)         { k.t.Put(tid, key, key) }

func (k kv) Seed(tid int, keys []uint64) { k.t.Seed(tid, keys) }
