// Package ds defines the abstract key-value interface the paper's benchmark
// drives (insert / delete / get / put, §5) and hosts the concurrent data
// structures implementing it, each written once against reclaim.Scheme so
// every structure runs under every reclamation scheme.
package ds

// Seeder is implemented by structures that can bulk-load an initial
// population faster than repeated Inserts; the benchmark prefill uses it
// when available (a sequential 50K-element prefill of the sorted list would
// otherwise be quadratic). Seed must be called before any concurrent use,
// with deduplicated keys.
type Seeder interface {
	Seed(tid int, keys []uint64)
}

// KV is the benchmark-facing operation set. Keys double as values. For the
// queues, Insert enqueues the key and Delete dequeues (the key argument is
// ignored); Get and Put are unsupported, matching the paper's queue
// workloads being write-only.
type KV interface {
	// Insert adds key; reports whether the structure changed.
	Insert(tid int, key uint64) bool
	// Delete removes key (or the head element, for queues); reports whether
	// the structure changed.
	Delete(tid int, key uint64) bool
	// Get looks the key up.
	Get(tid int, key uint64) bool
	// Put inserts the key or refreshes its value.
	Put(tid int, key uint64)
}
