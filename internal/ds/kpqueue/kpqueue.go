// Package kpqueue implements the Kogan–Petrank wait-free queue (PPoPP 2011)
// over the reclamation interface. The paper highlights this structure: the
// original relies on a garbage collector, and WFE makes it, for the first
// time, fully wait-free including reclamation (Figure 5a/5b).
//
// The queue is Michael–Scott shaped with phase-based helping: every
// operation publishes an operation descriptor, computes a phase higher than
// every phase it can see, and then helps all pending operations with lower
// or equal phases before its own completes. Dequeues claim the current
// sentinel by CASing its deqTid field; the claimed sentinel's successor
// carries the returned value and becomes the new sentinel.
//
// The per-thread descriptor — the paper's {phase, pending, enqueue, node} —
// packs into one word with the node handle in the low bits, which doubles
// as the hazard target for the HP scheme.
package kpqueue

import (
	"sync/atomic"

	"wfe/internal/ds"
	"wfe/internal/mem"
	"wfe/internal/pack"
	"wfe/internal/reclaim"
)

const (
	nextWord    = 0 // successor link
	deqTidWord  = 1 // claiming dequeuer + 1; 0 = unclaimed
	enqTidWord  = 2 // enqueuer + 1 (set before publication)
	handoffWord = 3 // dequeued value, copied in from the successor

	// descriptor layout: | phase (36) | enqueue (1) | pending (1) | node (26) |
	descPendingBit = 1 << pack.PtrBits
	descEnqueueBit = 1 << (pack.PtrBits + 1)
	descPhaseShift = pack.PtrBits + 2
)

func makeDesc(phase uint64, pending, enqueue bool, node mem.Handle) uint64 {
	d := phase<<descPhaseShift | node&pack.PtrMask
	if pending {
		d |= descPendingBit
	}
	if enqueue {
		d |= descEnqueueBit
	}
	return d
}

func descPhase(d uint64) uint64    { return d >> descPhaseShift }
func descPending(d uint64) bool    { return d&descPendingBit != 0 }
func descEnqueue(d uint64) bool    { return d&descEnqueueBit != 0 }
func descNode(d uint64) mem.Handle { return d & pack.HandleMask }

// reservation indices
const (
	hpFirst = 0 // head snapshot
	hpLast  = 1 // tail snapshot
	hpNext  = 2 // successor of head/tail
)

type stateSlot struct {
	desc atomic.Uint64
	_    [56]byte
}

// Queue is a wait-free multi-producer multi-consumer FIFO queue.
type Queue struct {
	smr        reclaim.Scheme
	maxThreads int
	head       atomic.Uint64 // sentinel handle
	tail       atomic.Uint64
	state      []stateSlot
}

// New creates an empty queue for up to maxThreads registered threads; the
// initial sentinel is allocated on behalf of thread 0.
func New(smr reclaim.Scheme, maxThreads int) *Queue {
	return NewTid(smr, maxThreads, 0)
}

// NewTid is New with the sentinel allocated on behalf of tid — the export
// hook for the public façade, whose constructor runs under a leased guard
// holding an arbitrary tid while other tids may be allocating concurrently.
func NewTid(smr reclaim.Scheme, maxThreads, tid int) *Queue {
	q := &Queue{smr: smr, maxThreads: maxThreads, state: make([]stateSlot, maxThreads)}
	a := smr.Arena()
	s := smr.Alloc(tid)
	a.StoreWord(s, nextWord, 0)
	a.StoreWord(s, deqTidWord, 0)
	a.StoreWord(s, enqTidWord, 0)
	q.head.Store(s)
	q.tail.Store(s)
	for i := range q.state {
		q.state[i].desc.Store(makeDesc(0, false, true, 0))
	}
	return q
}

// maxPhase scans every descriptor for the highest announced phase.
func (q *Queue) maxPhase() uint64 {
	var max uint64
	for i := 0; i < q.maxThreads; i++ {
		if p := descPhase(q.state[i].desc.Load()); p > max {
			max = p
		}
	}
	return max
}

func (q *Queue) isStillPending(i int, phase uint64) bool {
	d := q.state[i].desc.Load()
	return descPending(d) && descPhase(d) <= phase
}

// Enqueue appends v to the queue.
func (q *Queue) Enqueue(tid int, v uint64) {
	q.smr.Begin(tid)
	defer q.smr.Clear(tid)
	a := q.smr.Arena()

	node := q.smr.Alloc(tid)
	a.SetVal(node, v)
	a.StoreWord(node, nextWord, 0)
	a.StoreWord(node, deqTidWord, 0)
	a.StoreWord(node, enqTidWord, uint64(tid)+1)

	phase := q.maxPhase() + 1
	q.state[tid].desc.Store(makeDesc(phase, true, true, node))
	q.help(tid, phase)
	q.helpFinishEnq(tid)
}

// Dequeue removes and returns the oldest value; ok is false when empty.
func (q *Queue) Dequeue(tid int) (v uint64, ok bool) {
	q.smr.Begin(tid)
	defer q.smr.Clear(tid)
	a := q.smr.Arena()

	phase := q.maxPhase() + 1
	q.state[tid].desc.Store(makeDesc(phase, true, false, 0))
	q.help(tid, phase)
	q.helpFinishDeq(tid)

	node := descNode(q.state[tid].desc.Load())
	if node == 0 {
		return 0, false // empty at linearization
	}
	// node is the sentinel we claimed. The value logically travels in its
	// successor, but by now the successor may already have been claimed,
	// retired and freed by a later dequeue — so helpDeq copied the value
	// into our node's handoff word before the claim CAS, while both nodes
	// were provably protected. We only ever read our own claimed node,
	// which cannot be freed before we retire it here.
	v = a.LoadWord(node, handoffWord)
	q.smr.Retire(tid, node)
	return v, true
}

// help completes every pending operation whose phase is at most phase
// (the Kogan–Petrank helping discipline that yields wait-freedom).
func (q *Queue) help(tid int, phase uint64) {
	for i := 0; i < q.maxThreads; i++ {
		d := q.state[i].desc.Load()
		if descPending(d) && descPhase(d) <= phase {
			if descEnqueue(d) {
				q.helpEnq(tid, i, descPhase(d))
			} else {
				q.helpDeq(tid, i, descPhase(d))
			}
		}
	}
}

func (q *Queue) helpEnq(tid, i int, phase uint64) {
	a := q.smr.Arena()
	for q.isStillPending(i, phase) {
		last := pack.Handle(q.smr.GetProtected(tid, &q.tail, hpLast, 0))
		next := pack.Handle(q.smr.GetProtected(tid, a.WordAddr(last, nextWord), hpNext, last))
		if last != q.tail.Load() {
			continue
		}
		if next == 0 {
			if q.isStillPending(i, phase) {
				node := descNode(q.state[i].desc.Load())
				if node != 0 && a.CASWord(last, nextWord, 0, node) {
					q.helpFinishEnq(tid)
					return
				}
			}
		} else {
			q.helpFinishEnq(tid) // tail is lagging; advance it first
		}
	}
}

func (q *Queue) helpFinishEnq(tid int) {
	a := q.smr.Arena()
	last := pack.Handle(q.smr.GetProtected(tid, &q.tail, hpLast, 0))
	next := pack.Handle(q.smr.GetProtected(tid, a.WordAddr(last, nextWord), hpNext, last))
	if last != q.tail.Load() || next == 0 {
		return
	}
	enqTid := int(a.LoadWord(next, enqTidWord)) - 1
	if enqTid < 0 {
		return
	}
	curDesc := q.state[enqTid].desc.Load()
	if last == q.tail.Load() && descNode(curDesc) == next {
		// Keep node == next in the completed descriptor so stragglers can
		// still advance the tail below.
		q.state[enqTid].desc.CompareAndSwap(curDesc,
			makeDesc(descPhase(curDesc), false, true, next))
		q.tail.CompareAndSwap(last, next)
	}
}

func (q *Queue) helpDeq(tid, i int, phase uint64) {
	a := q.smr.Arena()
	for q.isStillPending(i, phase) {
		first := pack.Handle(q.smr.GetProtected(tid, &q.head, hpFirst, 0))
		last := q.tail.Load()
		next := pack.Handle(q.smr.GetProtected(tid, a.WordAddr(first, nextWord), hpNext, first))
		if first != q.head.Load() {
			continue
		}
		if first == pack.Handle(last) {
			if next == 0 { // queue empty: complete with a nil node
				curDesc := q.state[i].desc.Load()
				if pack.Handle(last) == pack.Handle(q.tail.Load()) && q.isStillPending(i, phase) {
					q.state[i].desc.CompareAndSwap(curDesc,
						makeDesc(descPhase(curDesc), false, false, 0))
				}
			} else {
				q.helpFinishEnq(tid) // tail lagging behind a concurrent enqueue
			}
			continue
		}
		if next == 0 {
			continue // stale tail snapshot; re-read a consistent window
		}
		curDesc := q.state[i].desc.Load()
		node := descNode(curDesc)
		if !q.isStillPending(i, phase) {
			break
		}
		if first == pack.Handle(q.head.Load()) && node != first {
			// Record the sentinel this dequeue is about to claim.
			if !q.state[i].desc.CompareAndSwap(curDesc,
				makeDesc(descPhase(curDesc), true, false, first)) {
				continue
			}
		}
		// Hand the successor's value over to the sentinel before claiming:
		// `next` is reachable (head == first was validated after protecting
		// it), so it is not yet retired and our reservations keep it alive
		// for this copy; the successor's own value word is immutable, so
		// every helper writes the same value here.
		a.StoreWord(first, handoffWord, a.Val(next))
		a.CASWord(first, deqTidWord, 0, uint64(i)+1)
		q.helpFinishDeq(tid)
	}
}

func (q *Queue) helpFinishDeq(tid int) {
	a := q.smr.Arena()
	first := pack.Handle(q.smr.GetProtected(tid, &q.head, hpFirst, 0))
	next := pack.Handle(q.smr.GetProtected(tid, a.WordAddr(first, nextWord), hpNext, first))
	claim := a.LoadWord(first, deqTidWord)
	if claim == 0 {
		return
	}
	deqTid := int(claim) - 1
	curDesc := q.state[deqTid].desc.Load()
	if first == pack.Handle(q.head.Load()) && next != 0 {
		q.state[deqTid].desc.CompareAndSwap(curDesc,
			makeDesc(descPhase(curDesc), false, false, descNode(curDesc)))
		q.head.CompareAndSwap(first, next)
	}
}

// Len counts queued values; meaningful only quiescently.
func (q *Queue) Len() int {
	a := q.smr.Arena()
	n := 0
	h := pack.Handle(q.head.Load())
	for h != 0 {
		next := pack.Handle(a.LoadWord(h, nextWord))
		if next != 0 {
			n++ // every node except the sentinel holds a live value
		}
		h = next
	}
	return n
}

// kv adapts the queue to ds.KV: Insert enqueues the key, Delete dequeues.
type kv struct{ q *Queue }

// KV returns the benchmark adapter. Get and Put panic: the paper's queue
// workloads are insert/delete only.
func (q *Queue) KV() ds.KV { return kv{q} }

func (k kv) Insert(tid int, key uint64) bool { k.q.Enqueue(tid, key); return true }
func (k kv) Delete(tid int, key uint64) bool { _, ok := k.q.Dequeue(tid); return ok }
func (k kv) Get(tid int, key uint64) bool    { panic("kpqueue: Get unsupported on queues") }
func (k kv) Put(tid int, key uint64)         { panic("kpqueue: Put unsupported on queues") }

// Seed pre-populates the queue; queue enqueues are already O(1) amortised,
// so this simply enqueues in order.
func (q *Queue) Seed(tid int, keys []uint64) {
	for _, k := range keys {
		q.Enqueue(tid, k)
	}
}

func (k kv) Seed(tid int, keys []uint64) { k.q.Seed(tid, keys) }
