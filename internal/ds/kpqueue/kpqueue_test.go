package kpqueue_test

import (
	"testing"

	"wfe/internal/ds/kpqueue"
	"wfe/internal/ds/queuetest"
	"wfe/internal/mem"
	"wfe/internal/reclaim"
	"wfe/internal/schemes"
)

func TestKPQueueSuite(t *testing.T) {
	queuetest.RunQueueSuite(t, func(smr reclaim.Scheme, maxThreads int) queuetest.Queue {
		return kpqueue.New(smr, maxThreads)
	})
}

func TestKPQueueLen(t *testing.T) {
	a := mem.New(mem.Config{Capacity: 1 << 10, MaxThreads: 1, Debug: true})
	s, err := schemes.New("WFE", a, reclaim.Config{MaxThreads: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := kpqueue.New(s, 1)
	for i := uint64(0); i < 10; i++ {
		q.Enqueue(0, i)
	}
	if q.Len() != 10 {
		t.Fatalf("Len = %d", q.Len())
	}
	q.Dequeue(0)
	if q.Len() != 9 {
		t.Fatalf("Len after dequeue = %d", q.Len())
	}
}

func TestKPQueueKVPanics(t *testing.T) {
	a := mem.New(mem.Config{Capacity: 1 << 10, MaxThreads: 1, Debug: true})
	s, _ := schemes.New("WFE", a, reclaim.Config{MaxThreads: 1})
	kv := kpqueue.New(s, 1).KV()
	if !kv.Insert(0, 5) {
		t.Fatal("queue Insert (enqueue) reported false")
	}
	if !kv.Delete(0, 0) {
		t.Fatal("queue Delete (dequeue) reported false on non-empty queue")
	}
	for _, f := range []func(){
		func() { kv.Get(0, 1) },
		func() { kv.Put(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Get/Put on a queue did not panic")
				}
			}()
			f()
		}()
	}
}
