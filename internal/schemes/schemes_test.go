package schemes

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wfe/internal/mem"
	"wfe/internal/pack"
	"wfe/internal/reclaim"
)

func newArena(t *testing.T, capacity, threads int) *mem.Arena {
	t.Helper()
	return mem.New(mem.Config{Capacity: capacity, MaxThreads: threads, Debug: true})
}

func mustNew(t *testing.T, name string, a *mem.Arena, cfg reclaim.Config) reclaim.Scheme {
	t.Helper()
	s, err := New(name, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// reclaiming schemes actually free memory; Leak does not.
var reclaiming = []string{"WFE", "WFE-slow", "HE", "HP", "EBR", "2GEIBR", "WFE-IBR", "WFE-IBR-slow"}

func TestUnknownScheme(t *testing.T) {
	if _, err := New("nope", newArena(t, 8, 1), reclaim.Config{}); err == nil {
		t.Fatal("unknown scheme did not error")
	}
}

func TestNamesInstantiable(t *testing.T) {
	for _, name := range Names() {
		a := newArena(t, 8, 2)
		s := mustNew(t, name, a, reclaim.Config{MaxThreads: 2})
		if s.Name() == "" || s.Arena() != a {
			t.Errorf("%s: bad Name/Arena", name)
		}
	}
}

// TestLifecycle drives the full alloc → publish → protect → unlink →
// retire → reclaim path single-threaded and checks the block is eventually
// reused.
func TestLifecycle(t *testing.T) {
	for _, name := range reclaiming {
		t.Run(name, func(t *testing.T) {
			a := newArena(t, 64, 1)
			s := mustNew(t, name, a, reclaim.Config{MaxThreads: 1, CleanupFreq: 1, EraFreq: 1})
			var root atomic.Uint64

			s.Begin(0)
			h := s.Alloc(0)
			a.SetKey(h, 77)
			root.Store(h)

			got := s.GetProtected(0, &root, 0, 0)
			if got != h {
				t.Fatalf("GetProtected = %d, want %d", got, h)
			}
			if a.Key(got) != 77 {
				t.Fatalf("key = %d", a.Key(got))
			}
			root.Store(0) // unlink
			s.Retire(0, h)
			s.Clear(0)

			// Drive retirements until the block is freed. Allocate/retire
			// scratch blocks to trigger cleanups and epoch/era advances.
			for i := 0; i < 200 && a.Live(h); i++ {
				s.Begin(0)
				x := s.Alloc(0)
				s.Retire(0, x)
				s.Clear(0)
			}
			if a.Live(h) {
				t.Fatalf("block never reclaimed (unreclaimed=%d)", s.Unreclaimed())
			}
		})
	}
}

// TestProtectionBlocksReclamation pins a block with a reservation from one
// thread while another retires it and drives cleanup hard; the block must
// survive until the reservation clears.
func TestProtectionBlocksReclamation(t *testing.T) {
	for _, name := range reclaiming {
		t.Run(name, func(t *testing.T) {
			a := newArena(t, 4096, 2)
			s := mustNew(t, name, a, reclaim.Config{MaxThreads: 2, CleanupFreq: 1, EraFreq: 1})
			var root atomic.Uint64

			h := s.Alloc(1)
			a.SetKey(h, 123)
			root.Store(h)

			// Thread 0 protects h.
			s.Begin(0)
			got := s.GetProtected(0, &root, 0, 0)
			if got != h {
				t.Fatalf("protected %d, want %d", got, h)
			}

			// Thread 1 unlinks and retires it, then churns.
			root.Store(0)
			s.Retire(1, h)
			for i := 0; i < 300; i++ {
				s.Begin(1)
				x := s.Alloc(1)
				s.Retire(1, x)
				s.Clear(1)
				if !a.Live(h) {
					t.Fatalf("block freed while protected (iteration %d)", i)
				}
				if a.Key(h) != 123 {
					t.Fatalf("protected block corrupted")
				}
			}

			// Release and confirm reclamation.
			s.Clear(0)
			for i := 0; i < 300 && a.Live(h); i++ {
				s.Begin(1)
				x := s.Alloc(1)
				s.Retire(1, x)
				s.Clear(1)
			}
			if a.Live(h) {
				t.Fatal("block not reclaimed after protection cleared")
			}
		})
	}
}

// TestStepHistogramsAllSchemes pins the uniform bounded-steps telemetry
// the shared retire-side runtime provides: after a churn with constant
// era movement, every reclaiming scheme — the era and interval schemes
// (HE, WFE, 2GEIBR, WFE-IBR) whose protect loops iterate, and HP/EBR
// alike — must report a nonzero step histogram and cleanup-scan counters
// through its Retirer. (Before the runtime, WFE-IBR and 2GEIBR had no
// step tracking at all and their P99Steps read 0.)
func TestStepHistogramsAllSchemes(t *testing.T) {
	for _, name := range reclaiming {
		t.Run(name, func(t *testing.T) {
			a := newArena(t, 4096, 2)
			// EraFreq 1 advances the clock on every allocation, so the
			// era/interval protect loops must take re-publication steps.
			s := mustNew(t, name, a, reclaim.Config{MaxThreads: 2, CleanupFreq: 4, EraFreq: 1})
			var root atomic.Uint64
			root.Store(s.Alloc(1))
			for i := 0; i < 200; i++ {
				s.Begin(0)
				s.GetProtected(0, &root, 0, 0)
				s.Clear(0)
				s.Begin(1)
				old := root.Swap(s.Alloc(1))
				s.Retire(1, pack.Handle(old))
				s.Clear(1)
			}
			rt := s.Retirer()
			if rt.MaxSteps() == 0 {
				t.Fatal("MaxSteps reads 0 after churn")
			}
			if p99 := rt.StepQuantile(0.99); p99 == 0 {
				t.Fatal("P99Steps reads 0 after churn")
			} else if p99 > rt.MaxSteps() {
				t.Fatalf("p99 %d exceeds max %d", p99, rt.MaxSteps())
			}
			if st := rt.Stats(); st.Scans == 0 || st.Blocks == 0 {
				t.Fatalf("no cleanup-scan telemetry after churn: %+v", st)
			}
		})
	}
}

// TestLeakNeverFrees checks the baseline leaks by design.
func TestLeakNeverFrees(t *testing.T) {
	a := newArena(t, 256, 1)
	s := mustNew(t, "Leak", a, reclaim.Config{MaxThreads: 1})
	hs := make([]mem.Handle, 0, 100)
	for i := 0; i < 100; i++ {
		h := s.Alloc(0)
		hs = append(hs, h)
		s.Retire(0, h)
	}
	for _, h := range hs {
		if !a.Live(h) {
			t.Fatal("leak baseline freed a block")
		}
	}
	if s.Unreclaimed() != 100 {
		t.Fatalf("unreclaimed = %d, want 100", s.Unreclaimed())
	}
}

// TestConcurrentChurn is the cross-scheme safety stress: workers share a
// bank of published locations, replacing nodes and reading them under
// protection. The arena runs in debug mode, so any premature free surfaces
// as a use-after-free panic; additionally every slot's key is its own
// handle, so readers verify they never observe a recycled slot's identity
// drifting mid-read.
func TestConcurrentChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	for _, name := range reclaiming {
		t.Run(name, func(t *testing.T) {
			const (
				workers = 4
				bank    = 32
				iters   = 20000
			)
			a := newArena(t, 1<<16, workers)
			s := mustNew(t, name, a, reclaim.Config{MaxThreads: workers, EraFreq: 16, CleanupFreq: 8})

			var slots [bank]atomic.Uint64
			for i := range slots {
				h := s.Alloc(0)
				a.SetKey(h, h)
				slots[i].Store(h)
			}

			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					rng := uint64(tid)*2654435761 + 1
					for i := 0; i < iters; i++ {
						rng ^= rng << 13
						rng ^= rng >> 7
						rng ^= rng << 17
						idx := int(rng % bank)
						src := &slots[idx]
						s.Begin(tid)
						if rng&1 == 0 { // reader
							v := s.GetProtected(tid, src, 0, 0)
							if h := pack.Handle(v); h != 0 {
								if a.Key(h) != h {
									panic("observed corrupted node")
								}
							}
						} else { // replacer
							n := s.Alloc(tid)
							a.SetKey(n, n)
							old := src.Swap(n)
							if h := pack.Handle(old); h != 0 {
								s.Retire(tid, h)
							}
						}
						s.Clear(tid)
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

// TestEBRStallBlocksReclamation demonstrates EBR's blocking behaviour (the
// paper's core motivation): a thread stalled inside an operation pins the
// epoch and unreclaimed memory grows; bounded schemes free regardless.
func TestEBRStallBlocksReclamation(t *testing.T) {
	a := newArena(t, 1<<14, 2)
	s := mustNew(t, "EBR", a, reclaim.Config{MaxThreads: 2, CleanupFreq: 1, EraFreq: 1})

	s.Begin(0) // thread 0 stalls: active, never clears

	before := s.Unreclaimed()
	for i := 0; i < 500; i++ {
		s.Begin(1)
		x := s.Alloc(1)
		s.Retire(1, x)
		s.Clear(1)
	}
	if got := s.Unreclaimed(); got < before+400 {
		t.Fatalf("EBR reclaimed despite stalled thread: unreclaimed=%d", got)
	}

	s.Clear(0) // stall ends
	for i := 0; i < 50; i++ {
		s.Begin(1)
		x := s.Alloc(1)
		s.Retire(1, x)
		s.Clear(1)
	}
	if got := s.Unreclaimed(); got > 100 {
		t.Fatalf("EBR failed to catch up after stall: unreclaimed=%d", got)
	}
}

// TestBoundedSchemesTolerateStall is the counterpart: WFE, HE, HP and IBR
// keep memory bounded while a reader sits inside an operation, because its
// reservations only pin the blocks of *that* operation.
func TestBoundedSchemesTolerateStall(t *testing.T) {
	for _, name := range []string{"WFE", "HE", "HP", "2GEIBR", "WFE-IBR"} {
		t.Run(name, func(t *testing.T) {
			a := newArena(t, 1<<14, 2)
			s := mustNew(t, name, a, reclaim.Config{MaxThreads: 2, CleanupFreq: 1, EraFreq: 1})

			var root atomic.Uint64
			h := s.Alloc(1)
			root.Store(h)

			// Thread 0 stalls holding one protected block.
			s.Begin(0)
			s.GetProtected(0, &root, 0, 0)

			for i := 0; i < 500; i++ {
				s.Begin(1)
				x := s.Alloc(1)
				s.Retire(1, x)
				s.Clear(1)
			}
			if got := s.Unreclaimed(); got > 100 {
				t.Fatalf("%s: unreclaimed grew to %d despite stalled reader", name, got)
			}
			if !a.Live(h) {
				t.Fatal("stalled reader's block was freed")
			}
			s.Clear(0)
		})
	}
}

// TestWaitFreeProgressUnderEraStorm checks that WFE's GetProtected finishes
// promptly while another thread increments the era as fast as it can — the
// scenario where HE's loop can live-lock. A generous wall-clock deadline
// stands in for the step bound (measured precisely in the boundedsteps
// example).
func TestWaitFreeProgressUnderEraStorm(t *testing.T) {
	a := newArena(t, 1<<16, 2)
	s := mustNew(t, "WFE", a, reclaim.Config{MaxThreads: 2, EraFreq: 1, CleanupFreq: 1, MaxAttempts: 4})

	var root atomic.Uint64
	h := s.Alloc(1)
	a.SetKey(h, 99)
	root.Store(h)

	stop := make(chan struct{})
	var stormOps atomic.Uint64
	go func() { // era storm from tid 1: every alloc advances the era
		for {
			select {
			case <-stop:
				return
			default:
			}
			x := s.Alloc(1)
			s.Retire(1, x)
			stormOps.Add(1)
		}
	}()

	deadline := time.Now().Add(10 * time.Second)
	reads := 0
	for time.Now().Before(deadline) && reads < 50000 {
		got := s.GetProtected(0, &root, 0, 0)
		if got != h {
			t.Fatalf("GetProtected = %d, want %d", got, h)
		}
		if a.Key(got) != 99 {
			t.Fatal("protected block corrupted")
		}
		s.Clear(0)
		reads++
	}
	close(stop)
	if reads < 50000 {
		t.Fatalf("only %d reads under era storm (storm ops %d): progress not wait-free-ish",
			reads, stormOps.Load())
	}
}
