// Package schemes is the registry tying every reclamation scheme to its
// benchmark name, so the harness, tests, examples — and the Domain's live
// scheme switch, which rebuilds schemes at runtime — can instantiate any
// of them uniformly.
package schemes

import (
	"fmt"

	"wfe/internal/core"
	"wfe/internal/ebr"
	"wfe/internal/he"
	"wfe/internal/hp"
	"wfe/internal/ibr"
	"wfe/internal/leak"
	"wfe/internal/mem"
	"wfe/internal/reclaim"
	"wfe/internal/wfeibr"
)

// A Factory constructs one reclamation scheme over an arena. Factories are
// total: configuration errors are the constructors' to panic on, name
// resolution errors are Lookup's.
type Factory func(*mem.Arena, reclaim.Config) reclaim.Scheme

// registry maps every legend name — plus the -slow ablation variants,
// which pin ForceSlowPath before construction — to its factory.
var registry = map[string]Factory{
	"WFE": func(a *mem.Arena, cfg reclaim.Config) reclaim.Scheme { return core.New(a, cfg) },
	"WFE-slow": func(a *mem.Arena, cfg reclaim.Config) reclaim.Scheme {
		// ablation A2: every GetProtected takes the slow path
		cfg.ForceSlowPath = true
		return core.New(a, cfg)
	},
	"HE":     func(a *mem.Arena, cfg reclaim.Config) reclaim.Scheme { return he.New(a, cfg) },
	"HP":     func(a *mem.Arena, cfg reclaim.Config) reclaim.Scheme { return hp.New(a, cfg) },
	"EBR":    func(a *mem.Arena, cfg reclaim.Config) reclaim.Scheme { return ebr.New(a, cfg) },
	"2GEIBR": func(a *mem.Arena, cfg reclaim.Config) reclaim.Scheme { return ibr.New(a, cfg) },
	// extension: the paper's §2.4 remark — wait-free 2GEIBR
	"WFE-IBR": func(a *mem.Arena, cfg reclaim.Config) reclaim.Scheme { return wfeibr.New(a, cfg) },
	"WFE-IBR-slow": func(a *mem.Arena, cfg reclaim.Config) reclaim.Scheme {
		cfg.ForceSlowPath = true
		return wfeibr.New(a, cfg)
	},
	"Leak": func(a *mem.Arena, cfg reclaim.Config) reclaim.Scheme { return leak.New(a, cfg) },
}

// Names lists the schemes in the paper's legend order.
func Names() []string {
	return []string{"WFE", "HE", "HP", "EBR", "2GEIBR", "Leak"}
}

// Lookup resolves a scheme name to its factory without constructing
// anything — the validation half of New, for callers (the live scheme
// switch) that must fail fast before committing to a swap.
func Lookup(name string) (Factory, bool) {
	f, ok := registry[name]
	return f, ok
}

// New instantiates the named scheme over the given arena.
func New(name string, arena *mem.Arena, cfg reclaim.Config) (reclaim.Scheme, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("schemes: unknown scheme %q", name)
	}
	return f(arena, cfg), nil
}
