// Package schemes is the registry tying every reclamation scheme to its
// benchmark name, so the harness, tests and examples can instantiate any of
// them uniformly.
package schemes

import (
	"fmt"

	"wfe/internal/core"
	"wfe/internal/ebr"
	"wfe/internal/he"
	"wfe/internal/hp"
	"wfe/internal/ibr"
	"wfe/internal/leak"
	"wfe/internal/mem"
	"wfe/internal/reclaim"
	"wfe/internal/wfeibr"
)

// Names lists the schemes in the paper's legend order.
func Names() []string {
	return []string{"WFE", "HE", "HP", "EBR", "2GEIBR", "Leak"}
}

// New instantiates the named scheme over the given arena.
func New(name string, arena *mem.Arena, cfg reclaim.Config) (reclaim.Scheme, error) {
	switch name {
	case "WFE":
		return core.New(arena, cfg), nil
	case "WFE-slow": // ablation A2: every GetProtected takes the slow path
		cfg.ForceSlowPath = true
		return core.New(arena, cfg), nil
	case "HE":
		return he.New(arena, cfg), nil
	case "HP":
		return hp.New(arena, cfg), nil
	case "EBR":
		return ebr.New(arena, cfg), nil
	case "2GEIBR":
		return ibr.New(arena, cfg), nil
	case "WFE-IBR": // extension: the paper's §2.4 remark — wait-free 2GEIBR
		return wfeibr.New(arena, cfg), nil
	case "WFE-IBR-slow":
		cfg.ForceSlowPath = true
		return wfeibr.New(arena, cfg), nil
	case "Leak":
		return leak.New(arena, cfg), nil
	}
	return nil, fmt.Errorf("schemes: unknown scheme %q", name)
}
