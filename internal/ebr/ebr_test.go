package ebr

import (
	"testing"

	"wfe/internal/mem"
	"wfe/internal/reclaim"
)

func newEBR(t *testing.T, threads int) (*EBR, *mem.Arena) {
	t.Helper()
	a := mem.New(mem.Config{Capacity: 1 << 12, MaxThreads: threads, Debug: true})
	return New(a, reclaim.Config{MaxThreads: threads, CleanupFreq: 1, EraFreq: 1}), a
}

func TestEpochAdvanceRequiresAllActiveCurrent(t *testing.T) {
	e, _ := newEBR(t, 2)
	ep := e.Epoch()

	e.Begin(0) // announces current epoch
	e.tryAdvance(0)
	if e.Epoch() != ep+1 {
		t.Fatalf("epoch = %d, want %d (all active threads current)", e.Epoch(), ep+1)
	}

	// Thread 0 is now active on the *old* epoch: the clock must stick.
	e.tryAdvance(0)
	if e.Epoch() != ep+1 {
		t.Fatalf("epoch advanced past a lagging active thread")
	}

	e.Begin(0) // re-announce at the new epoch
	e.tryAdvance(0)
	if e.Epoch() != ep+2 {
		t.Fatalf("epoch = %d, want %d", e.Epoch(), ep+2)
	}

	e.Clear(0) // quiescent threads do not block the clock
	e.tryAdvance(0)
	if e.Epoch() != ep+3 {
		t.Fatalf("epoch = %d, want %d after thread went quiescent", e.Epoch(), ep+3)
	}
}

func TestTwoEpochGracePeriod(t *testing.T) {
	e, a := newEBR(t, 1)
	blk := e.Alloc(0)
	ep := e.Epoch()
	a.SetRetireEra(blk, ep)
	// Stage the retired block directly (no cadence hooks, no epoch
	// advance) and drive the scans by hand.
	e.rt.Add(0, blk)

	e.rt.Scan(0)
	if !a.Live(blk) {
		t.Fatal("block freed in its retirement epoch")
	}
	e.globalEpoch.Add(1)
	e.rt.Scan(0)
	if !a.Live(blk) {
		t.Fatal("block freed one epoch after retirement")
	}
	e.globalEpoch.Add(1)
	e.rt.Scan(0)
	if a.Live(blk) {
		t.Fatal("block not freed two epochs after retirement")
	}
}

func TestGetProtectedIsPlainLoad(t *testing.T) {
	e, _ := newEBR(t, 1)
	var root = e.Alloc(0)
	loc := e.Arena().WordAddr(root, 0)
	loc.Store(42)
	e.Begin(0)
	if got := e.GetProtected(0, loc, 0, 0); got != 42 {
		t.Fatalf("GetProtected = %d", got)
	}
	e.Clear(0)
}

func TestUnreclaimedGrowsWhileStalled(t *testing.T) {
	e, _ := newEBR(t, 2)
	e.Begin(0) // stalled
	for i := 0; i < 100; i++ {
		e.Begin(1)
		e.Retire(1, e.Alloc(1))
		e.Clear(1)
	}
	if got := e.Unreclaimed(); got < 90 {
		t.Fatalf("unreclaimed = %d; epoch advanced despite stall", got)
	}
}
