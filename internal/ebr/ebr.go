// Package ebr implements epoch-based reclamation (Fraser 2004): threads
// announce the global epoch on operation start; a retired block is freed two
// epochs after its retirement epoch, and the epoch only advances when every
// active thread has announced the current one. Reads are free of per-access
// overhead — the scheme the paper reports as fastest — but reclamation is
// blocking: one stalled active thread halts the epoch and memory grows
// without bound (the paper's motivation for bounded schemes; ablation A4
// reproduces this failure mode).
//
// Paper mapping: §2.2's discussion of EBR's blocking reclamation and the
// "EBR" series of the evaluation figures (§5). The paper's Table 1 places
// EBR at the opposite corner from WFE: cheapest reads, weakest memory
// bound.
package ebr

import (
	"sync/atomic"

	"wfe/internal/mem"
	"wfe/internal/reclaim"
)

// announcement encoding: epoch<<1 | active.
const activeBit = 1

type retiredBlock struct {
	h     mem.Handle
	epoch uint64
}

type threadState struct {
	allocCount  uint64
	retireCount uint64
	retired     []retiredBlock
	retiredLen  atomic.Int64
	_           [64]byte
}

// EBR is the epoch-based reclamation scheme.
type EBR struct {
	arena       *mem.Arena
	cfg         reclaim.Config
	globalEpoch atomic.Uint64
	announce    []atomic.Uint64 // one padded word per thread
	stride      int
	threads     []threadState
}

var _ reclaim.Scheme = (*EBR)(nil)

// New creates an EBR scheme over the given arena.
func New(arena *mem.Arena, cfg reclaim.Config) *EBR {
	cfg = cfg.Defaults()
	const stride = 8
	e := &EBR{
		arena:    arena,
		cfg:      cfg,
		announce: make([]atomic.Uint64, cfg.MaxThreads*stride),
		stride:   stride,
		threads:  make([]threadState, cfg.MaxThreads),
	}
	e.globalEpoch.Store(2)
	return e
}

// Name implements reclaim.Scheme.
func (e *EBR) Name() string { return "EBR" }

// Arena implements reclaim.Scheme.
func (e *EBR) Arena() *mem.Arena { return e.arena }

// Epoch returns the global epoch.
func (e *EBR) Epoch() uint64 { return e.globalEpoch.Load() }

func (e *EBR) ann(tid int) *atomic.Uint64 { return &e.announce[tid*e.stride] }

// Begin announces the current epoch and marks the thread active.
func (e *EBR) Begin(tid int) {
	e.ann(tid).Store(e.globalEpoch.Load()<<1 | activeBit)
}

// GetProtected under EBR is a plain load: the epoch announcement already
// protects everything reachable during the operation.
func (e *EBR) GetProtected(tid int, src *atomic.Uint64, index int, parent mem.Handle) uint64 {
	return src.Load()
}

// Clear marks the thread quiescent.
func (e *EBR) Clear(tid int) {
	e.ann(tid).Store(0)
}

// Alloc allocates a block; epochs need no allocation stamp, but the epoch
// advance attempt keeps the clock moving on allocation-heavy phases, in line
// with the benchmark's ν parameter.
func (e *EBR) Alloc(tid int) mem.Handle {
	t := &e.threads[tid]
	if t.allocCount%uint64(e.cfg.EraFreq) == 0 {
		e.tryAdvance()
	}
	t.allocCount++
	return e.arena.Alloc(tid)
}

// Retire tags the block with the current epoch and periodically scans.
func (e *EBR) Retire(tid int, blk mem.Handle) {
	ep := e.globalEpoch.Load()
	e.arena.SetRetireEra(blk, ep)
	t := &e.threads[tid]
	t.retired = append(t.retired, retiredBlock{blk, ep})
	t.retiredLen.Store(int64(len(t.retired)))
	if t.retireCount%uint64(e.cfg.CleanupFreq) == 0 {
		e.tryAdvance()
		e.cleanup(tid)
	}
	t.retireCount++
}

// tryAdvance bumps the global epoch iff every active thread has announced
// it. This is the blocking step: a stalled active announcement pins the
// epoch forever.
func (e *EBR) tryAdvance() {
	cur := e.globalEpoch.Load()
	for i := 0; i < e.cfg.MaxThreads; i++ {
		a := e.ann(i).Load()
		if a&activeBit != 0 && a>>1 != cur {
			return
		}
	}
	e.globalEpoch.CompareAndSwap(cur, cur+1)
}

// cleanup frees blocks retired at least two epochs ago: no thread active in
// the current or previous epoch can hold them.
func (e *EBR) cleanup(tid int) {
	cur := e.globalEpoch.Load()
	t := &e.threads[tid]
	keep := t.retired[:0]
	for _, rb := range t.retired {
		if rb.epoch+2 <= cur {
			e.arena.Free(tid, rb.h)
		} else {
			keep = append(keep, rb)
		}
	}
	t.retired = keep
	t.retiredLen.Store(int64(len(keep)))
}

// Unreclaimed implements reclaim.Scheme.
func (e *EBR) Unreclaimed() int {
	total := 0
	for i := range e.threads {
		total += int(e.threads[i].retiredLen.Load())
	}
	return total
}
