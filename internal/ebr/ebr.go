// Package ebr implements epoch-based reclamation (Fraser 2004): threads
// announce the global epoch on operation start; a retired block is freed two
// epochs after its retirement epoch, and the epoch only advances when every
// active thread has announced the current one. Reads are free of per-access
// overhead — the scheme the paper reports as fastest — but reclamation is
// blocking: one stalled active thread halts the epoch and memory grows
// without bound (the paper's motivation for bounded schemes; ablation A4
// reproduces this failure mode).
//
// Paper mapping: §2.2's discussion of EBR's blocking reclamation and the
// "EBR" series of the evaluation figures (§5). The paper's Table 1 places
// EBR at the opposite corner from WFE: cheapest reads, weakest memory
// bound.
//
// The retire side lives in the shared reclaim.Retirer; this package
// contributes the epoch clock and its threshold Judge (Gather the scan's
// epoch, CanFree whatever was retired at least two epochs before it).
package ebr

import (
	"sync/atomic"

	"wfe/internal/mem"
	"wfe/internal/reclaim"
	"wfe/internal/trace"
)

// announcement encoding: epoch<<1 | active.
const activeBit = 1

type threadState struct {
	allocCount uint64
	_          [64]byte
}

// EBR is the epoch-based reclamation scheme.
type EBR struct {
	arena       *mem.Arena
	cfg         reclaim.Config
	rt          *reclaim.Retirer
	globalEpoch atomic.Uint64
	announce    []atomic.Uint64 // one padded word per thread
	stride      int
	threads     []threadState
}

var _ reclaim.Scheme = (*EBR)(nil)
var _ reclaim.Judge = (*EBR)(nil)
var _ reclaim.PreScanner = (*EBR)(nil)

// New creates an EBR scheme over the given arena.
func New(arena *mem.Arena, cfg reclaim.Config) *EBR {
	cfg = cfg.Defaults()
	const stride = 8
	e := &EBR{
		arena:    arena,
		cfg:      cfg,
		announce: make([]atomic.Uint64, cfg.MaxThreads*stride),
		stride:   stride,
		threads:  make([]threadState, cfg.MaxThreads),
	}
	e.rt = reclaim.NewRetirer(arena, cfg, e)
	e.globalEpoch.Store(max(2, cfg.InitialEra))
	return e
}

// Name implements reclaim.Scheme.
func (e *EBR) Name() string { return "EBR" }

// Arena implements reclaim.Scheme.
func (e *EBR) Arena() *mem.Arena { return e.arena }

// Retirer implements reclaim.Scheme.
func (e *EBR) Retirer() *reclaim.Retirer { return e.rt }

// Epoch returns the global epoch.
func (e *EBR) Epoch() uint64 { return e.globalEpoch.Load() }

func (e *EBR) ann(tid int) *atomic.Uint64 { return &e.announce[tid*e.stride] }

// Begin announces the current epoch and marks the thread active.
func (e *EBR) Begin(tid int) {
	e.ann(tid).Store(e.globalEpoch.Load()<<1 | activeBit)
}

// GetProtected under EBR is a plain load: the epoch announcement already
// protects everything reachable during the operation. Every call is one
// step by construction; recording it keeps the bounded-steps histograms
// comparable across all schemes.
func (e *EBR) GetProtected(tid int, src *atomic.Uint64, index int, parent mem.Handle) uint64 {
	e.rt.RecordSteps(tid, 1)
	return src.Load()
}

// Clear marks the thread quiescent.
func (e *EBR) Clear(tid int) {
	e.ann(tid).Store(0)
}

// BeginBatch implements reclaim.Scheme: one epoch announcement covers a
// whole batch of operations (the announcement pins the epoch for as long
// as it stands, however many blocks the batch touches), so a single span
// suffices. Holding it across the batch delays the epoch advance exactly
// as one long operation would.
func (e *EBR) BeginBatch(tid int) bool {
	e.Begin(tid)
	return true
}

// EndBatch implements reclaim.Scheme: the batch-wide Clear.
func (e *EBR) EndBatch(tid int) { e.Clear(tid) }

// RetireBatch implements reclaim.Scheme: stamp every block with the epoch
// read once at submission — monotone, so ≥ the epoch at each unlink, a
// conservative lifespan — and hand the burst to the runtime's amortized
// retire path.
func (e *EBR) RetireBatch(tid int, blks []mem.Handle) {
	epoch := e.globalEpoch.Load()
	for _, blk := range blks {
		e.arena.SetRetireEra(blk, epoch)
	}
	e.rt.RetireBatch(tid, blks)
}

// Alloc allocates a block; epochs need no allocation stamp, but the epoch
// advance attempt keeps the clock moving on allocation-heavy phases, in line
// with the benchmark's ν parameter.
func (e *EBR) Alloc(tid int) mem.Handle {
	t := &e.threads[tid]
	if t.allocCount%uint64(e.cfg.EraFreq) == 0 {
		e.tryAdvance(tid)
	}
	t.allocCount++
	return e.arena.Alloc(tid)
}

// TryAlloc is Alloc with backpressure: the epoch cadence still ticks, but
// arena exhaustion reports (0, false) instead of panicking.
func (e *EBR) TryAlloc(tid int) (mem.Handle, bool) {
	t := &e.threads[tid]
	if t.allocCount%uint64(e.cfg.EraFreq) == 0 {
		e.tryAdvance(tid)
	}
	t.allocCount++
	return e.arena.TryAlloc(tid)
}

// AdvanceClock attempts the global epoch advance out of the allocation
// cadence (reclaim.ClockAdvancer) — the emergency-reclamation hook. Like
// every EBR advance it only succeeds when no active thread lags the
// current epoch.
func (e *EBR) AdvanceClock(tid int) { e.tryAdvance(tid) }

// Retire tags the block with the current epoch and hands it to the shared
// retire-side runtime, which scans every CleanupFreq retirements.
func (e *EBR) Retire(tid int, blk mem.Handle) {
	e.arena.SetRetireEra(blk, e.globalEpoch.Load())
	e.rt.Retire(tid, blk)
}

// tryAdvance bumps the global epoch iff every active thread has announced
// it. This is the blocking step: a stalled active announcement pins the
// epoch forever.
func (e *EBR) tryAdvance(tid int) {
	cur := e.globalEpoch.Load()
	for i := 0; i < e.cfg.MaxThreads; i++ {
		a := e.ann(i).Load()
		if a&activeBit != 0 && a>>1 != cur {
			return
		}
	}
	if e.globalEpoch.CompareAndSwap(cur, cur+1) {
		e.cfg.Tracer.Emit(tid, trace.KindEraAdvance, cur+1, 0)
	}
}

// PreScan implements reclaim.PreScanner: attempt an epoch advance right
// before each gated cleanup scan, so retire-heavy phases keep the clock
// moving.
func (e *EBR) PreScan(tid int, blk mem.Handle) { e.tryAdvance(tid) }

// Gather implements reclaim.Judge. EBR gathers no reservations — the
// grace-period test needs only the scan's epoch, stashed as a scalar.
func (e *EBR) Gather(tid int, s *reclaim.Snapshot) {
	s.SetAux(0, e.globalEpoch.Load())
}

// CanFree implements reclaim.Judge: a block retired at least two epochs
// before the scan's epoch is unreachable — no thread active in the current
// or previous epoch can hold it.
func (e *EBR) CanFree(tid int, s *reclaim.Snapshot, blk mem.Handle) bool {
	return e.arena.RetireEra(blk)+2 <= s.Aux(0)
}

// Unreclaimed implements reclaim.Scheme.
func (e *EBR) Unreclaimed() int { return e.rt.Unreclaimed() }
