package mem

import (
	"sync"
	"testing"
	"testing/quick"
)

func newTestArena(capacity, threads int) *Arena {
	return New(Config{Capacity: capacity, MaxThreads: threads, Debug: true})
}

func TestAllocFreeReuse(t *testing.T) {
	a := newTestArena(16, 1)
	h1 := a.Alloc(0)
	if h1 == 0 {
		t.Fatal("nil handle from Alloc")
	}
	a.SetKey(h1, 42)
	if a.Key(h1) != 42 {
		t.Fatal("key lost")
	}
	v1 := a.Version(h1)
	a.SetRetireEra(h1, 1)
	a.Free(0, h1)
	h2 := a.Alloc(0)
	if h2 != h1 {
		t.Fatalf("expected slot reuse, got %d then %d", h1, h2)
	}
	if a.Version(h2) == v1 {
		t.Fatal("version not bumped on free")
	}
}

func TestDoubleFreePanics(t *testing.T) {
	a := newTestArena(4, 1)
	h := a.Alloc(0)
	a.Free(0, h)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic in debug mode")
		}
	}()
	a.Free(0, h)
}

func TestUseAfterFreePanics(t *testing.T) {
	a := newTestArena(4, 1)
	h := a.Alloc(0)
	a.StoreWord(h, 0, 7)
	a.Free(0, h)
	defer func() {
		if recover() == nil {
			t.Fatal("use-after-free did not panic in debug mode")
		}
	}()
	a.LoadWord(h, 0)
}

func TestPoisonOnFree(t *testing.T) {
	a := newTestArena(4, 1)
	h := a.Alloc(0)
	a.StoreWord(h, 2, 12345)
	a.SetRetireEra(h, 1) // published: the retired→free path poisons
	a.Free(0, h)
	// Peek through the raw slot: the accessor would panic.
	if got := a.slot(h).words[2].Load(); got != poison {
		t.Fatalf("freed word = %#x, want poison", got)
	}
}

func TestFastFreeSkipsPoisonButDetectsDoubleFree(t *testing.T) {
	// A live→free block is the never-published constructor-undo path
	// (Guard.Dealloc): its payload was never visible to another goroutine,
	// so debug mode skips the NumWords poison stores — but the state
	// machine must still catch a double free of it.
	a := newTestArena(4, 1)
	h := a.Alloc(0)
	a.StoreWord(h, 1, 42)
	a.SetVal(h, 7)
	a.Free(0, h)
	if got := a.slot(h).words[1].Load(); got != 42 {
		t.Fatalf("never-published free poisoned word: %#x", got)
	}
	if got := a.slot(h).val.Load(); got != 7 {
		t.Fatalf("never-published free poisoned value: %#x", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double free after a fast free did not panic")
		}
	}()
	a.Free(0, h)
}

func TestExhaustionPanics(t *testing.T) {
	a := newTestArena(3, 1)
	for i := 0; i < 3; i++ {
		a.Alloc(0)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("exhausted arena did not panic")
		}
	}()
	a.Alloc(0)
}

func TestRetireStateMachine(t *testing.T) {
	a := newTestArena(4, 1)
	h := a.Alloc(0)
	a.SetAllocEra(h, 5)
	a.SetRetireEra(h, 9)
	if a.AllocEra(h) != 5 || a.RetireEra(h) != 9 {
		t.Fatalf("eras: alloc=%d retire=%d", a.AllocEra(h), a.RetireEra(h))
	}
	if !a.Live(h) {
		t.Fatal("retired slot reported not live")
	}
	a.Free(0, h)
	if a.Live(h) {
		t.Fatal("freed slot reported live")
	}
	// Re-allocating must reset the retire era.
	h2 := a.Alloc(0)
	if a.RetireEra(h2) != 0 {
		t.Fatal("retire era not reset on reuse")
	}
}

func TestStats(t *testing.T) {
	a := newTestArena(16, 2)
	h := a.Alloc(0)
	a.Alloc(1)
	a.SetRetireEra(h, 1)
	a.Free(1, h)
	st := a.Stats()
	if st.Allocs != 2 || st.Frees != 1 || st.InUse != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCASWordAndVal(t *testing.T) {
	a := newTestArena(4, 1)
	h := a.Alloc(0)
	a.StoreWord(h, 0, 10)
	if a.CASWord(h, 0, 11, 12) {
		t.Fatal("CAS with wrong expected succeeded")
	}
	if !a.CASWord(h, 0, 10, 12) {
		t.Fatal("CAS with right expected failed")
	}
	a.SetVal(h, 1)
	if !a.CASVal(h, 1, 2) || a.Val(h) != 2 {
		t.Fatal("CASVal failed")
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	const threads = 8
	const perThread = 5000
	a := New(Config{Capacity: threads * 64, MaxThreads: threads, Debug: true})
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			live := make([]Handle, 0, 16)
			for i := 0; i < perThread; i++ {
				if len(live) == 16 {
					for _, h := range live {
						a.SetRetireEra(h, 1)
						a.Free(tid, h)
					}
					live = live[:0]
				}
				h := a.Alloc(tid)
				a.SetKey(h, uint64(tid))
				live = append(live, h)
			}
			for _, h := range live {
				a.SetRetireEra(h, 1)
				a.Free(tid, h)
			}
		}(tid)
	}
	wg.Wait()
	st := a.Stats()
	if st.InUse != 0 {
		t.Fatalf("leak: %d slots in use after balanced alloc/free", st.InUse)
	}
	if st.Allocs != threads*perThread {
		t.Fatalf("allocs = %d, want %d", st.Allocs, threads*perThread)
	}
}

func TestGlobalSpillBatched(t *testing.T) {
	// Free past 2×SpillSize on one thread: the cache must splice its
	// oldest SpillSize slots onto the global list as one segment, which
	// another thread (empty cache, exhausted bump space) claims whole.
	const spill = 16
	capacity := 3 * spill
	a := New(Config{Capacity: capacity, MaxThreads: 2, Debug: true, SpillSize: spill})
	hs := make([]Handle, 0, capacity)
	for i := 0; i < capacity; i++ {
		hs = append(hs, a.Alloc(0))
	}
	for _, h := range hs {
		a.SetRetireEra(h, 1)
		a.Free(0, h)
	}
	st := a.Stats()
	if st.SegPushes != 1 || st.SegPops != 0 {
		t.Fatalf("segment transfers = %d pushes / %d pops, want 1/0", st.SegPushes, st.SegPops)
	}
	seen := make(map[Handle]bool)
	for i := 0; i < spill; i++ {
		h := a.Alloc(1)
		if seen[h] {
			t.Fatalf("slot %d handed out twice", h)
		}
		seen[h] = true
	}
	st = a.Stats()
	if st.SegPops != 1 {
		t.Fatalf("segment pops = %d after refill, want 1", st.SegPops)
	}
	if st.InUse != spill {
		t.Fatalf("in use = %d, want %d", st.InUse, spill)
	}
}

func TestCensusAccountsEverySlot(t *testing.T) {
	const spill = 8
	a := New(Config{Capacity: 64, MaxThreads: 2, Debug: true, SpillSize: spill})
	var live []Handle
	for i := 0; i < 40; i++ {
		live = append(live, a.Alloc(0))
	}
	for _, h := range live[8:] { // 32 frees: one spill segment + 24 cached
		a.SetRetireEra(h, 1)
		a.Free(0, h)
	}
	c := a.Census()
	if c.Cached != c.CachedLen {
		t.Fatalf("cache walk %d disagrees with length counters %d", c.Cached, c.CachedLen)
	}
	if c.Segments < 1 || c.Global != spill*c.Segments {
		t.Fatalf("global list = %d slots in %d segments, want %d per segment", c.Global, c.Segments, spill)
	}
	if c.Live != 8 {
		t.Fatalf("live = %d, want 8", c.Live)
	}
	if got := c.Cached + c.Global + c.Live + c.BumpFree; got != c.Capacity {
		t.Fatalf("census leak: %d cached + %d global + %d live + %d bump-free != capacity %d",
			c.Cached, c.Global, c.Live, c.BumpFree, c.Capacity)
	}
}

func TestCensusInvariantUnderChurn(t *testing.T) {
	// The arena accounting invariant under a cross-thread churn storm:
	// producers allocate and hand blocks to consumers over channels, so
	// frees land on foreign tids and drive the batched spill/refill paths
	// hard. Between rounds (quiescent barriers) every slot must be in
	// exactly one place.
	const (
		producers = 2
		consumers = 2
		rounds    = 4
		perRound  = 3000
	)
	a := New(Config{Capacity: 1 << 14, MaxThreads: producers + consumers, Debug: true, SpillSize: 32})
	for round := 0; round < rounds; round++ {
		ch := make(chan Handle, 256)
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				for i := 0; i < perRound; i++ {
					h := a.Alloc(tid)
					a.SetRetireEra(h, 1)
					ch <- h
				}
			}(p)
		}
		var closeOnce sync.WaitGroup
		closeOnce.Add(1)
		go func() { defer closeOnce.Done(); wg.Wait(); close(ch) }()
		var cg sync.WaitGroup
		for c := 0; c < consumers; c++ {
			cg.Add(1)
			go func(tid int) {
				defer cg.Done()
				for h := range ch {
					a.Free(tid, h)
				}
			}(producers + c)
		}
		closeOnce.Wait()
		cg.Wait()

		c := a.Census()
		if c.Cached != c.CachedLen {
			t.Fatalf("round %d: cache walk %d disagrees with length counters %d", round, c.Cached, c.CachedLen)
		}
		if got := c.Cached + c.Global + c.Live + c.BumpFree; got != c.Capacity {
			t.Fatalf("round %d: census leak: %d cached + %d global + %d live + %d bump-free = %d != capacity %d",
				round, c.Cached, c.Global, c.Live, c.BumpFree, got, c.Capacity)
		}
	}
	if st := a.Stats(); st.InUse != 0 || st.SegPushes == 0 {
		t.Fatalf("after churn: InUse=%d SegPushes=%d (want 0, >0)", st.InUse, st.SegPushes)
	}
}

func TestAllocFreeBalanceQuick(t *testing.T) {
	// Property: any interleaved sequence of allocs and frees keeps
	// InUse == Allocs - Frees and never hands out a live slot twice.
	f := func(ops []bool) bool {
		a := New(Config{Capacity: 1024, MaxThreads: 1, Debug: true})
		var live []Handle
		for _, alloc := range ops {
			if alloc || len(live) == 0 {
				if len(live) >= 1000 {
					continue
				}
				h := a.Alloc(0)
				for _, l := range live {
					if l == h {
						return false
					}
				}
				live = append(live, h)
			} else {
				h := live[len(live)-1]
				live = live[:len(live)-1]
				a.Free(0, h)
			}
			st := a.Stats()
			if st.InUse != uint64(len(live)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	for _, cfg := range []Config{
		{Capacity: 0, MaxThreads: 1},
		{Capacity: 1 << 25, MaxThreads: 1},
		{Capacity: 8, MaxThreads: 0},
	} {
		func() {
			defer func() { recover() }()
			New(cfg)
			t.Errorf("config %+v did not panic", cfg)
		}()
	}
}

func TestVersionMonotonicAcrossReuse(t *testing.T) {
	a := newTestArena(4, 1)
	h := a.Alloc(0)
	var last uint32
	for i := 0; i < 50; i++ {
		v := a.Version(h)
		if i > 0 && v <= last {
			t.Fatalf("version did not advance across reuse: %d then %d", last, v)
		}
		last = v
		a.SetRetireEra(h, 1)
		a.Free(0, h)
		h2 := a.Alloc(0)
		if h2 != h {
			t.Fatalf("expected slot reuse, got %d", h2)
		}
	}
}

func TestConcurrentGlobalSpillStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	// Producers free into the global list (via batched spills) while
	// consumers claim whole segments from it; the stamped head must
	// prevent ABA-induced double-allocation, which the debug state machine
	// would catch.
	const (
		threads = 6
		spill   = 64
		batch   = 2*spill + 32 // enough to cross the 2×SpillSize trigger
	)
	a := New(Config{Capacity: 2 * threads * batch, MaxThreads: threads, Debug: true, SpillSize: spill})
	var wg sync.WaitGroup
	for t0 := 0; t0 < threads; t0++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			local := make([]Handle, 0, batch)
			for round := 0; round < 8; round++ {
				for i := 0; i < batch; i++ {
					local = append(local, a.Alloc(tid))
				}
				for _, h := range local {
					a.Free(tid, h)
				}
				local = local[:0]
			}
		}(t0)
	}
	wg.Wait()
	if got := a.Stats().InUse; got != 0 {
		t.Fatalf("in use = %d after balanced stress", got)
	}
}
