package mem

import (
	"sync"
	"testing"
	"testing/quick"
)

func newTestArena(capacity, threads int) *Arena {
	return New(Config{Capacity: capacity, MaxThreads: threads, Debug: true})
}

func TestAllocFreeReuse(t *testing.T) {
	a := newTestArena(16, 1)
	h1 := a.Alloc(0)
	if h1 == 0 {
		t.Fatal("nil handle from Alloc")
	}
	a.SetKey(h1, 42)
	if a.Key(h1) != 42 {
		t.Fatal("key lost")
	}
	v1 := a.Version(h1)
	a.SetRetireEra(h1, 1)
	a.Free(0, h1)
	h2 := a.Alloc(0)
	if h2 != h1 {
		t.Fatalf("expected slot reuse, got %d then %d", h1, h2)
	}
	if a.Version(h2) == v1 {
		t.Fatal("version not bumped on free")
	}
}

func TestDoubleFreePanics(t *testing.T) {
	a := newTestArena(4, 1)
	h := a.Alloc(0)
	a.Free(0, h)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic in debug mode")
		}
	}()
	a.Free(0, h)
}

func TestUseAfterFreePanics(t *testing.T) {
	a := newTestArena(4, 1)
	h := a.Alloc(0)
	a.StoreWord(h, 0, 7)
	a.Free(0, h)
	defer func() {
		if recover() == nil {
			t.Fatal("use-after-free did not panic in debug mode")
		}
	}()
	a.LoadWord(h, 0)
}

func TestPoisonOnFree(t *testing.T) {
	a := newTestArena(4, 1)
	h := a.Alloc(0)
	a.StoreWord(h, 2, 12345)
	a.Free(0, h)
	// Peek through the raw slot: the accessor would panic.
	if got := a.slot(h).words[2].Load(); got != poison {
		t.Fatalf("freed word = %#x, want poison", got)
	}
}

func TestExhaustionPanics(t *testing.T) {
	a := newTestArena(3, 1)
	for i := 0; i < 3; i++ {
		a.Alloc(0)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("exhausted arena did not panic")
		}
	}()
	a.Alloc(0)
}

func TestRetireStateMachine(t *testing.T) {
	a := newTestArena(4, 1)
	h := a.Alloc(0)
	a.SetAllocEra(h, 5)
	a.SetRetireEra(h, 9)
	if a.AllocEra(h) != 5 || a.RetireEra(h) != 9 {
		t.Fatalf("eras: alloc=%d retire=%d", a.AllocEra(h), a.RetireEra(h))
	}
	if !a.Live(h) {
		t.Fatal("retired slot reported not live")
	}
	a.Free(0, h)
	if a.Live(h) {
		t.Fatal("freed slot reported live")
	}
	// Re-allocating must reset the retire era.
	h2 := a.Alloc(0)
	if a.RetireEra(h2) != 0 {
		t.Fatal("retire era not reset on reuse")
	}
}

func TestStats(t *testing.T) {
	a := newTestArena(16, 2)
	h := a.Alloc(0)
	a.Alloc(1)
	a.SetRetireEra(h, 1)
	a.Free(1, h)
	st := a.Stats()
	if st.Allocs != 2 || st.Frees != 1 || st.InUse != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCASWordAndVal(t *testing.T) {
	a := newTestArena(4, 1)
	h := a.Alloc(0)
	a.StoreWord(h, 0, 10)
	if a.CASWord(h, 0, 11, 12) {
		t.Fatal("CAS with wrong expected succeeded")
	}
	if !a.CASWord(h, 0, 10, 12) {
		t.Fatal("CAS with right expected failed")
	}
	a.SetVal(h, 1)
	if !a.CASVal(h, 1, 2) || a.Val(h) != 2 {
		t.Fatal("CASVal failed")
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	const threads = 8
	const perThread = 5000
	a := New(Config{Capacity: threads * 64, MaxThreads: threads, Debug: true})
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			live := make([]Handle, 0, 16)
			for i := 0; i < perThread; i++ {
				if len(live) == 16 {
					for _, h := range live {
						a.SetRetireEra(h, 1)
						a.Free(tid, h)
					}
					live = live[:0]
				}
				h := a.Alloc(tid)
				a.SetKey(h, uint64(tid))
				live = append(live, h)
			}
			for _, h := range live {
				a.SetRetireEra(h, 1)
				a.Free(tid, h)
			}
		}(tid)
	}
	wg.Wait()
	st := a.Stats()
	if st.InUse != 0 {
		t.Fatalf("leak: %d slots in use after balanced alloc/free", st.InUse)
	}
	if st.Allocs != threads*perThread {
		t.Fatalf("allocs = %d, want %d", st.Allocs, threads*perThread)
	}
}

func TestGlobalSpill(t *testing.T) {
	// Force frees beyond the spill threshold on one thread, then allocate
	// them all back from another thread via the global list.
	const spilled = 128
	capacity := spillThreshold + spilled
	a := New(Config{Capacity: capacity, MaxThreads: 2, Debug: true})
	hs := make([]Handle, 0, capacity)
	for i := 0; i < capacity; i++ {
		hs = append(hs, a.Alloc(0))
	}
	for _, h := range hs {
		a.SetRetireEra(h, 1)
		a.Free(0, h)
	}
	// Thread 0's local list holds spillThreshold slots; the rest spilled to
	// the global list, where thread 1 (empty local list, exhausted bump
	// space) can claim them.
	seen := make(map[Handle]bool)
	for i := 0; i < spilled; i++ {
		h := a.Alloc(1)
		if seen[h] {
			t.Fatalf("slot %d handed out twice", h)
		}
		seen[h] = true
	}
	if a.Stats().InUse != spilled {
		t.Fatalf("in use = %d, want %d", a.Stats().InUse, spilled)
	}
}

func TestAllocFreeBalanceQuick(t *testing.T) {
	// Property: any interleaved sequence of allocs and frees keeps
	// InUse == Allocs - Frees and never hands out a live slot twice.
	f := func(ops []bool) bool {
		a := New(Config{Capacity: 1024, MaxThreads: 1, Debug: true})
		var live []Handle
		for _, alloc := range ops {
			if alloc || len(live) == 0 {
				if len(live) >= 1000 {
					continue
				}
				h := a.Alloc(0)
				for _, l := range live {
					if l == h {
						return false
					}
				}
				live = append(live, h)
			} else {
				h := live[len(live)-1]
				live = live[:len(live)-1]
				a.Free(0, h)
			}
			st := a.Stats()
			if st.InUse != uint64(len(live)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	for _, cfg := range []Config{
		{Capacity: 0, MaxThreads: 1},
		{Capacity: 1 << 25, MaxThreads: 1},
		{Capacity: 8, MaxThreads: 0},
	} {
		func() {
			defer func() { recover() }()
			New(cfg)
			t.Errorf("config %+v did not panic", cfg)
		}()
	}
}

func TestVersionMonotonicAcrossReuse(t *testing.T) {
	a := newTestArena(4, 1)
	h := a.Alloc(0)
	var last uint32
	for i := 0; i < 50; i++ {
		v := a.Version(h)
		if i > 0 && v <= last {
			t.Fatalf("version did not advance across reuse: %d then %d", last, v)
		}
		last = v
		a.SetRetireEra(h, 1)
		a.Free(0, h)
		h2 := a.Alloc(0)
		if h2 != h {
			t.Fatalf("expected slot reuse, got %d", h2)
		}
	}
}

func TestConcurrentGlobalSpillStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	// Producers free into the global list (via spill) while consumers
	// allocate from it; the stamped head must prevent ABA-induced
	// double-allocation, which the debug state machine would catch.
	const threads = 6
	a := New(Config{Capacity: 2 * threads * spillThreshold, MaxThreads: threads, Debug: true})
	var wg sync.WaitGroup
	for t0 := 0; t0 < threads; t0++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			local := make([]Handle, 0, spillThreshold+64)
			for round := 0; round < 3; round++ {
				for i := 0; i < spillThreshold+32; i++ {
					local = append(local, a.Alloc(tid))
				}
				for _, h := range local {
					a.Free(tid, h)
				}
				local = local[:0]
			}
		}(t0)
	}
	wg.Wait()
	if got := a.Stats().InUse; got != 0 {
		t.Fatalf("in use = %d after balanced stress", got)
	}
}
