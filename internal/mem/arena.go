// Package mem is the manual-memory substrate the reclamation schemes manage.
//
// The paper's C++ implementation frees blocks back to jemalloc; a freed block
// may be re-allocated and rewritten while a stale reader still holds a
// pointer to it — exactly the hazard safe memory reclamation defends against.
// Go's garbage collector would silently keep such blocks alive and mask
// reclamation bugs, so this package simulates a manual allocator: a fixed
// arena of node slots addressed by small handles. Free returns a slot to a
// free list where it is immediately reusable; slots carry version counters
// and a state machine (free → live → retired → free) so use-after-free and
// double-free are *detectable* in debug mode, which is stronger validation
// than a native allocator offers.
//
// A Handle is a 24-bit slot reference; 0 is the nil handle. Handles embed in
// the 26-bit link values defined by the pack package.
//
// Paper mapping: the arena plays the role of the paper's allocator and
// per-block headers in one — alloc_era and retire_era (Figure 3's block
// fields, stamped by §3's alloc_block and retire) live in the slot, and
// Free is the free_block the cleanup routines of every scheme call once a
// retired block's lifespan overlaps no reservation.
package mem

import (
	"fmt"
	"sync/atomic"

	"wfe/internal/failpoint"
	"wfe/internal/pack"
	"wfe/internal/trace"
)

// Failpoint sites. Disarmed they cost one atomic load per evaluation;
// armed they let the chaos harness script allocation failure and refill
// starvation deterministically.
var (
	// fpAlloc fires inside TryAlloc: an injected error makes the
	// allocation report exhaustion even when slots remain.
	fpAlloc = failpoint.New("arena-alloc")
	// fpRefill fires at refill entry: an injected error makes the miss
	// path skip the global list, as if every segment were already claimed.
	fpRefill = failpoint.New("arena-refill")
)

// Handle references an arena slot. 0 is nil; values 1..Capacity are slots.
type Handle = uint64

// NumWords is the number of general-purpose atomic words per slot. Link
// fields, mark bits, descriptor words and per-node metadata of every data
// structure in this repository fit in these words.
const NumWords = 4

// Slot states.
const (
	slotFree uint32 = iota
	slotLive
	slotRetired
)

// poison is written over the payload of freed slots in debug mode so that
// stale readers observe obviously-wrong values instead of plausible ones.
const poison = uint64(0xDEADBEEFDEADBEEF)

type slot struct {
	allocEra  atomic.Uint64
	retireEra atomic.Uint64
	state     atomic.Uint32
	version   atomic.Uint32
	words     [NumWords]atomic.Uint64
	key       uint64        // immutable after publication
	val       atomic.Uint64 // mutable value payload
	// nextFree is the free-list link. It is written only by the slot's
	// current owner (the freeing thread building its cache, or the
	// spilling thread cutting a segment) and read only after ownership is
	// re-acquired through the global head CAS, so it needs no atomics.
	nextFree Handle
	// segMeta is set on a segment's head slot while the segment sits on
	// the global list: packed {length:40 | next-segment handle:24}. It is
	// atomic because refill must read it before winning the head CAS, when
	// a racing pop/recycle/re-push may rewrite it concurrently (the
	// stamped head CAS then fails and the stale read is discarded).
	segMeta atomic.Uint64
}

// threadMem is per-registered-thread allocator state, padded to a cache
// line multiple so neighbouring threads do not false-share.
type threadMem struct {
	freeHead Handle
	freeLen  int
	allocs   atomic.Uint64
	frees    atomic.Uint64
	_        [64]byte
}

// defaultSpillSize is the default batched-transfer segment size: a
// thread's free cache holds up to twice this many slots before spilling
// its oldest defaultSpillSize as one segment.
const defaultSpillSize = 2048

// Config configures an Arena.
type Config struct {
	// Capacity is the number of slots. The maximum is 2^24-2 (handle width).
	Capacity int
	// MaxThreads is the number of registered threads (tids 0..MaxThreads-1).
	MaxThreads int
	// SpillSize is the number of slots moved between a thread's free cache
	// and the global list in one batched segment transfer (default 2048).
	// A cache spills its oldest SpillSize slots once it exceeds
	// 2×SpillSize, and an allocation miss refills a whole segment, so the
	// contended global head is CASed once per SpillSize frees instead of
	// once per free on producer/consumer workloads.
	SpillSize int
	// Debug enables state checking and poisoning on every access.
	Debug bool
	// Tracer, when non-nil, receives segment spill/refill events. A nil
	// or disabled tracer costs one branch per segment transfer.
	Tracer *trace.Tracer
}

// Arena is a bounded slab of slots with per-thread free caches, a global
// list of batched spill segments, and a bump allocator for never-used
// slots.
type Arena struct {
	slots     []slot
	bump      atomic.Uint64 // next never-allocated slot index
	global    atomic.Uint64 // packed {stamp:40 | segment-head handle:24} Treiber head
	threads   []threadMem
	cap       uint64
	spillSize int
	debug     bool
	freeHook  func(h Handle)
	tracer    *trace.Tracer
	segPushes atomic.Uint64
	segPops   atomic.Uint64
	waiters   atomic.Int64 // allocations stalled on exhaustion (AddWaiter)
}

// New creates an arena. It panics on an invalid configuration: the arena is
// infrastructure whose sizing is a programming decision, not runtime input.
func New(cfg Config) *Arena {
	if cfg.Capacity <= 0 || uint64(cfg.Capacity) > pack.HandleMask-1 {
		panic(fmt.Sprintf("mem: capacity %d out of range [1, %d]", cfg.Capacity, pack.HandleMask-1))
	}
	if cfg.MaxThreads <= 0 {
		panic("mem: MaxThreads must be positive")
	}
	if cfg.SpillSize == 0 {
		cfg.SpillSize = defaultSpillSize
	}
	if cfg.SpillSize < 0 {
		panic(fmt.Sprintf("mem: SpillSize %d must be non-negative (0 selects the default)", cfg.SpillSize))
	}
	return &Arena{
		slots:     make([]slot, cfg.Capacity),
		threads:   make([]threadMem, cfg.MaxThreads),
		cap:       uint64(cfg.Capacity),
		spillSize: cfg.SpillSize,
		debug:     cfg.Debug,
		tracer:    cfg.Tracer,
	}
}

// SetFreeHook registers fn to run for every slot handed back by Free,
// before the slot joins a free list. Callers that keep per-slot payloads
// outside the arena (the public Domain's value slab) use it to drop those
// payloads when the block dies, so freed values do not linger as GC roots.
// Register once, before any concurrent use; fn runs on the freeing thread.
func (a *Arena) SetFreeHook(fn func(h Handle)) { a.freeHook = fn }

// Capacity returns the number of slots.
func (a *Arena) Capacity() int { return int(a.cap) }

// Debug reports whether debug checking is enabled.
func (a *Arena) Debug() bool { return a.debug }

func (a *Arena) slot(h Handle) *slot {
	return &a.slots[h-1]
}

// TryAlloc returns a fresh live slot for thread tid, reusing freed slots
// when available, or (0, false) when the arena is exhausted: tid's free
// cache is empty, the global segment list has nothing to refill from, and
// the bump region is spent. Exhaustion is a backpressure signal, not a
// verdict — retired-but-unscanned blocks may become free after the next
// reclamation scan, which is exactly what the Domain's emergency
// allocation pipeline arranges before giving up.
func (a *Arena) TryAlloc(tid int) (Handle, bool) {
	if err := fpAlloc.Eval(tid); err != nil {
		return 0, false
	}
	t := &a.threads[tid]
	if t.freeHead == 0 {
		a.refill(tid, t)
	}
	if h := t.freeHead; h != 0 {
		s := a.slot(h)
		t.freeHead = s.nextFree
		t.freeLen--
		a.makeLive(h, s)
		t.allocs.Add(1)
		return h, true
	}
	idx := a.bump.Add(1) - 1
	if idx >= a.cap {
		return 0, false
	}
	h := idx + 1
	a.makeLive(h, a.slot(h))
	t.allocs.Add(1)
	return h, true
}

// Alloc is TryAlloc for callers that pre-size: it panics when the arena
// is exhausted. Size the arena for the workload (leak-baseline runs in
// particular must cover every allocation), or use TryAlloc and handle
// the pressure.
func (a *Arena) Alloc(tid int) Handle {
	h, ok := a.TryAlloc(tid)
	if !ok {
		panic(fmt.Sprintf("mem: arena exhausted (capacity %d); size the arena for the workload", a.cap))
	}
	return h
}

func (a *Arena) makeLive(h Handle, s *slot) {
	if a.debug {
		if st := s.state.Load(); st != slotFree {
			panic(fmt.Sprintf("mem: alloc of non-free slot %d (state %d)", h, st))
		}
	}
	s.retireEra.Store(0)
	s.state.Store(slotLive)
}

// Free returns a retired (or live, for structures that never published the
// node) slot to the free lists. In debug mode double frees panic, and the
// payload of every published (retired) block is poisoned; a live→free
// block is Dealloc's never-published constructor block, whose payload no
// other goroutine ever saw, so it skips the poison stores — the version
// bump and state word below still arm double-free and use-after-free
// detection for it.
// AddWaiter registers (delta +1) or unregisters (-1) an allocation
// stalled on the exhausted arena. While any waiter is registered, Free
// spills past SpillSize instead of 2×SpillSize: under pressure a free
// block hiding in a private cache is a block the stalled thread cannot
// reach, so the caches keep only their working margin and everything
// else flows to the global list where any thread can claim it.
func (a *Arena) AddWaiter(delta int64) { a.waiters.Add(delta) }

// Pressured reports whether any allocation is currently stalled on the
// arena (registered via AddWaiter). Reclamation cadences consult it to
// scan out of cadence while someone is starving.
func (a *Arena) Pressured() bool { return a.waiters.Load() > 0 }

func (a *Arena) Free(tid int, h Handle) {
	s := a.slot(h)
	if a.debug {
		st := s.state.Load()
		if st == slotFree {
			panic(fmt.Sprintf("mem: double free of slot %d", h))
		}
		if st == slotRetired {
			for i := range s.words {
				s.words[i].Store(poison)
			}
			s.val.Store(poison)
		}
	}
	if a.freeHook != nil {
		a.freeHook(h)
	}
	s.version.Add(1)
	s.state.Store(slotFree)
	t := &a.threads[tid]
	if t.freeLen >= 2*a.spillSize || (t.freeLen > a.spillSize && a.waiters.Load() > 0) {
		a.spillSegment(tid, t)
	}
	s.nextFree = t.freeHead
	t.freeHead = h
	t.freeLen++
	t.frees.Add(1)
}

// FreeRetired frees every slot still in the retired state, crediting the
// frees to tid's cache, and returns how many it freed. It must only run on
// a quiescent arena with every reservation cleared — then a retired slot
// is by definition unreachable. The live scheme switch uses it to reclaim
// blocks the outgoing scheme retired but never tracked (the leak
// baseline's entire backlog); for tracking schemes whose retire rings were
// already drained it is a read-only sweep.
func (a *Arena) FreeRetired(tid int) int {
	n := 0
	// Slots past the bump highwater were never handed out, so they cannot
	// be retired; stopping there keeps the sweep proportional to the
	// arena's real footprint instead of its capacity.
	hi := a.bump.Load()
	if hi > uint64(len(a.slots)) {
		hi = uint64(len(a.slots))
	}
	for i := 0; i < int(hi); i++ {
		if a.slots[i].state.Load() == slotRetired {
			a.Free(tid, Handle(i+1))
			n++
		}
	}
	return n
}

// Global spill list: a Treiber stack of whole segments. The head word
// packs a 40-bit stamp with the 24-bit handle of the top segment's first
// slot; the stamp defeats ABA on concurrent transfers. Each segment is a
// nextFree-linked chain cut from a per-thread cache, its head slot
// carrying the segment length and next-segment link in segMeta, so both
// directions move SpillSize slots per CAS instead of one.

// spillSegment cuts the oldest spillSize slots off tid's free cache —
// everything past the spillSize most recently freed — and pushes them to
// the global list as one segment.
func (a *Arena) spillSegment(tid int, t *threadMem) {
	cut := a.slot(t.freeHead)
	for i := 1; i < a.spillSize; i++ {
		cut = a.slot(cut.nextFree)
	}
	head := cut.nextFree
	n := t.freeLen - a.spillSize
	cut.nextFree = 0
	t.freeLen = a.spillSize
	for {
		old := a.global.Load()
		a.slot(head).segMeta.Store(uint64(n)<<pack.HandleBits | old&pack.HandleMask)
		next := (old>>pack.HandleBits+1)<<pack.HandleBits | head
		if a.global.CompareAndSwap(old, next) {
			a.segPushes.Add(1)
			a.tracer.Emit(tid, trace.KindSegSpill, uint64(n), 0)
			return
		}
	}
}

// refill claims one whole segment off the global list in a single CAS and
// installs it as tid's free cache. The segMeta read may race a concurrent
// pop/recycle/re-push of the observed head slot, but any such cycle
// advances the head stamp, so the CAS only succeeds when the read was of
// the current cycle.
func (a *Arena) refill(tid int, t *threadMem) {
	if err := fpRefill.Eval(tid); err != nil {
		return
	}
	for {
		old := a.global.Load()
		h := old & pack.HandleMask
		if h == 0 {
			return
		}
		meta := a.slot(h).segMeta.Load()
		next := (old>>pack.HandleBits+1)<<pack.HandleBits | meta&pack.HandleMask
		if a.global.CompareAndSwap(old, next) {
			t.freeHead = h
			t.freeLen = int(meta >> pack.HandleBits)
			a.segPops.Add(1)
			a.tracer.Emit(tid, trace.KindSegRefill, uint64(t.freeLen), 0)
			return
		}
	}
}

func (a *Arena) check(h Handle, op string) {
	if a.debug {
		if h == 0 || h > a.cap {
			panic(fmt.Sprintf("mem: %s through invalid handle %d", op, h))
		}
		if a.slot(h).state.Load() == slotFree {
			panic(fmt.Sprintf("mem: use-after-free — %s of freed slot %d", op, h))
		}
	}
}

// CheckLive panics in debug mode when h is invalid or refers to a freed
// slot; it is a no-op otherwise. Callers that keep per-slot payloads
// outside the arena (the public Domain's value slab) use it to extend
// use-after-free detection to those payloads.
func (a *Arena) CheckLive(h Handle, op string) { a.check(h, op) }

// AllocEra returns the slot's allocation era (paper: alloc_era).
func (a *Arena) AllocEra(h Handle) uint64 {
	a.check(h, "AllocEra")
	return a.slot(h).allocEra.Load()
}

// SetAllocEra stamps the slot's allocation era at allocation time.
func (a *Arena) SetAllocEra(h Handle, era uint64) {
	a.check(h, "SetAllocEra")
	a.slot(h).allocEra.Store(era)
}

// RetireEra returns the slot's retirement era (paper: retire_era).
func (a *Arena) RetireEra(h Handle) uint64 {
	a.check(h, "RetireEra")
	return a.slot(h).retireEra.Load()
}

// SetRetireEra stamps the retirement era and moves the slot to the retired
// state. Only in-flight readers may touch the slot afterwards.
func (a *Arena) SetRetireEra(h Handle, era uint64) {
	a.check(h, "SetRetireEra")
	s := a.slot(h)
	if a.debug {
		if st := s.state.Load(); st != slotLive {
			panic(fmt.Sprintf("mem: retire of slot %d in state %d", h, st))
		}
	}
	s.retireEra.Store(era)
	s.state.Store(slotRetired)
}

// LoadWord atomically loads payload word i.
func (a *Arena) LoadWord(h Handle, i int) uint64 {
	a.check(h, "LoadWord")
	return a.slot(h).words[i].Load()
}

// StoreWord atomically stores payload word i.
func (a *Arena) StoreWord(h Handle, i int, v uint64) {
	a.check(h, "StoreWord")
	a.slot(h).words[i].Store(v)
}

// CASWord compare-and-swaps payload word i.
func (a *Arena) CASWord(h Handle, i int, old, new uint64) bool {
	a.check(h, "CASWord")
	return a.slot(h).words[i].CompareAndSwap(old, new)
}

// WordAddr exposes the address of payload word i so it can serve as the
// hazardous-location argument of Scheme.GetProtected. The address stays
// valid for the life of the arena even if the slot is freed; reading a
// freed slot's word through it is the caller's (scheme's) responsibility.
func (a *Arena) WordAddr(h Handle, i int) *atomic.Uint64 {
	a.check(h, "WordAddr")
	return &a.slot(h).words[i]
}

// Key returns the slot's immutable key.
func (a *Arena) Key(h Handle) uint64 {
	a.check(h, "Key")
	return a.slot(h).key
}

// SetKey initialises the key. It must happen before the node is published.
func (a *Arena) SetKey(h Handle, k uint64) {
	a.check(h, "SetKey")
	a.slot(h).key = k
}

// Val returns the slot's value payload.
func (a *Arena) Val(h Handle) uint64 {
	a.check(h, "Val")
	return a.slot(h).val.Load()
}

// SetVal stores the value payload.
func (a *Arena) SetVal(h Handle, v uint64) {
	a.check(h, "SetVal")
	a.slot(h).val.Store(v)
}

// CASVal compare-and-swaps the value payload.
func (a *Arena) CASVal(h Handle, old, new uint64) bool {
	a.check(h, "CASVal")
	return a.slot(h).val.CompareAndSwap(old, new)
}

// Version returns the slot's reuse version; tests use it to detect that a
// handle observed earlier now refers to a recycled slot.
func (a *Arena) Version(h Handle) uint32 {
	return a.slot(h).version.Load()
}

// Live reports whether the slot is currently allocated (live or retired).
func (a *Arena) Live(h Handle) bool {
	return a.slot(h).state.Load() != slotFree
}

// Stats is a point-in-time allocation census.
type Stats struct {
	Allocs    uint64 // total allocations
	Frees     uint64 // total frees
	InUse     uint64 // Allocs - Frees
	Bumped    uint64 // bump-allocator highwater: slots ever handed out
	SegPushes uint64 // batched segments spilled to the global free list
	SegPops   uint64 // segments claimed back by allocation misses
}

// Stats sums the per-thread counters. The snapshot is approximate under
// concurrency, which is fine for its monitoring purpose.
func (a *Arena) Stats() Stats {
	var st Stats
	for i := range a.threads {
		st.Allocs += a.threads[i].allocs.Load()
		st.Frees += a.threads[i].frees.Load()
	}
	st.InUse = st.Allocs - st.Frees
	b := a.bump.Load()
	if b > a.cap {
		b = a.cap
	}
	st.Bumped = b
	st.SegPushes = a.segPushes.Load()
	st.SegPops = a.segPops.Load()
	return st
}

// Census is a quiescent-only accounting snapshot of where every slot
// sits. Every slot is in exactly one of the four places, so
// Cached+Global+Live+BumpFree == Capacity whenever no allocation or free
// is in flight; the arena invariant tests and quiesce.Check assert this.
type Census struct {
	Cached    int // slots walked in per-thread free caches
	CachedLen int // sum of the caches' length counters (must equal Cached)
	Global    int // slots walked in global spill segments
	Segments  int // segments on the global list
	Live      int // allocated slots (live or retired)
	BumpFree  int // slots the bump allocator has never handed out
	Capacity  int
}

// Census walks the free caches, the global segment list and the slot
// states. It must only be called on a quiescent arena: the walks take no
// locks and tolerate no concurrent Alloc/Free.
func (a *Arena) Census() Census {
	c := Census{Capacity: int(a.cap)}
	for i := range a.threads {
		t := &a.threads[i]
		c.CachedLen += t.freeLen
		for h := t.freeHead; h != 0; h = a.slot(h).nextFree {
			c.Cached++
		}
	}
	for h := a.global.Load() & pack.HandleMask; h != 0; {
		c.Segments++
		for s := h; s != 0; s = a.slot(s).nextFree {
			c.Global++
		}
		h = a.slot(h).segMeta.Load() & pack.HandleMask
	}
	b := a.bump.Load()
	if b > a.cap {
		b = a.cap
	}
	c.BumpFree = int(a.cap - b)
	// Slots past the bump highwater were never handed out and slotFree is
	// the zero state, so the Live walk stops at the highwater — on a large
	// mostly-untouched arena this also avoids faulting in gigabytes of
	// never-used slot memory just to read zeros.
	for i := 0; i < int(b); i++ {
		if a.slots[i].state.Load() != slotFree {
			c.Live++
		}
	}
	return c
}
