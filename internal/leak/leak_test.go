package leak

import (
	"sync/atomic"
	"testing"

	"wfe/internal/mem"
	"wfe/internal/reclaim"
)

func TestLeakBaseline(t *testing.T) {
	a := mem.New(mem.Config{Capacity: 64, MaxThreads: 2, Debug: true})
	l := New(a, reclaim.Config{MaxThreads: 2})

	if l.Name() != "Leak" || l.Arena() != a {
		t.Fatal("identity accessors broken")
	}

	var root atomic.Uint64
	h := l.Alloc(0)
	root.Store(h)
	l.Begin(0)
	if got := l.GetProtected(0, &root, 0, 0); got != h {
		t.Fatalf("GetProtected = %d, want %d", got, h)
	}
	l.Clear(0)

	l.Retire(0, h)
	l.Retire(1, l.Alloc(1))
	if !a.Live(h) {
		t.Fatal("leak baseline freed a block")
	}
	if l.Unreclaimed() != 2 {
		t.Fatalf("unreclaimed = %d, want 2", l.Unreclaimed())
	}
	if a.Stats().Frees != 0 {
		t.Fatal("leak baseline performed frees")
	}
}
