// Package leak is the paper's "Leak Memory" baseline: Retire drops blocks on
// the floor. It bounds the cost every real scheme pays, and its arena usage
// grows with the number of retirements — size the arena accordingly.
//
// The baseline still retires through the shared reclaim.Retirer — in its
// judge-less mode, which counts retirements without storing blocks or
// running scans — so the Unreclaimed metric reads through the same path as
// every real scheme's.
package leak

import (
	"sync/atomic"

	"wfe/internal/mem"
	"wfe/internal/reclaim"
)

// Leak is the no-reclamation baseline.
type Leak struct {
	arena *mem.Arena
	rt    *reclaim.Retirer
}

var _ reclaim.Scheme = (*Leak)(nil)

// New creates the leaking baseline over the given arena.
func New(arena *mem.Arena, cfg reclaim.Config) *Leak {
	return &Leak{arena: arena, rt: reclaim.NewRetirer(arena, cfg, nil)}
}

// Name implements reclaim.Scheme.
func (l *Leak) Name() string { return "Leak" }

// Begin implements reclaim.Scheme.
func (l *Leak) Begin(tid int) {}

// Arena implements reclaim.Scheme.
func (l *Leak) Arena() *mem.Arena { return l.arena }

// Retirer implements reclaim.Scheme.
func (l *Leak) Retirer() *reclaim.Retirer { return l.rt }

// GetProtected is a plain load: leaked blocks are never reused, so any
// handle ever observed stays valid.
func (l *Leak) GetProtected(tid int, src *atomic.Uint64, index int, parent mem.Handle) uint64 {
	return src.Load()
}

// Retire leaks the block.
func (l *Leak) Retire(tid int, blk mem.Handle) {
	l.arena.SetRetireEra(blk, 0)
	l.rt.Retire(tid, blk)
}

// Clear implements reclaim.Scheme.
func (l *Leak) Clear(tid int) {}

// BeginBatch implements reclaim.Scheme: leaked blocks are never reused, so
// a batch needs no re-protection between items — a single (empty) span
// suffices.
func (l *Leak) BeginBatch(tid int) bool { return true }

// EndBatch implements reclaim.Scheme.
func (l *Leak) EndBatch(tid int) {}

// RetireBatch leaks the whole burst through the runtime's judge-less
// counting path — one cadence step, nothing stored.
func (l *Leak) RetireBatch(tid int, blks []mem.Handle) {
	for _, blk := range blks {
		l.arena.SetRetireEra(blk, 0)
	}
	l.rt.RetireBatch(tid, blks)
}

// Alloc implements reclaim.Scheme.
func (l *Leak) Alloc(tid int) mem.Handle {
	return l.arena.Alloc(tid)
}

// TryAlloc is Alloc with backpressure: arena exhaustion reports
// (0, false) instead of panicking. For the leak baseline exhaustion is
// terminal — nothing is ever freed — so callers should not retry.
func (l *Leak) TryAlloc(tid int) (mem.Handle, bool) {
	return l.arena.TryAlloc(tid)
}

// Unreclaimed reports the total number of leaked blocks. The paper excludes
// the leak baseline from unreclaimed-object plots; the harness does too.
func (l *Leak) Unreclaimed() int { return l.rt.Unreclaimed() }
