// Package leak is the paper's "Leak Memory" baseline: Retire drops blocks on
// the floor. It bounds the cost every real scheme pays, and its arena usage
// grows with the number of retirements — size the arena accordingly.
package leak

import (
	"sync/atomic"

	"wfe/internal/mem"
	"wfe/internal/reclaim"
)

// Leak is the no-reclamation baseline.
type Leak struct {
	arena   *mem.Arena
	leaked  atomic.Int64
	retires []retireCounter
}

type retireCounter struct {
	n uint64
	_ [56]byte
}

var _ reclaim.Scheme = (*Leak)(nil)

// New creates the leaking baseline over the given arena.
func New(arena *mem.Arena, cfg reclaim.Config) *Leak {
	cfg = cfg.Defaults()
	return &Leak{arena: arena, retires: make([]retireCounter, cfg.MaxThreads)}
}

// Name implements reclaim.Scheme.
func (l *Leak) Name() string { return "Leak" }

// Begin implements reclaim.Scheme.
func (l *Leak) Begin(tid int) {}

// Arena implements reclaim.Scheme.
func (l *Leak) Arena() *mem.Arena { return l.arena }

// GetProtected is a plain load: leaked blocks are never reused, so any
// handle ever observed stays valid.
func (l *Leak) GetProtected(tid int, src *atomic.Uint64, index int, parent mem.Handle) uint64 {
	return src.Load()
}

// Retire leaks the block.
func (l *Leak) Retire(tid int, blk mem.Handle) {
	l.arena.SetRetireEra(blk, 0)
	l.retires[tid].n++
	l.leaked.Add(1)
}

// Clear implements reclaim.Scheme.
func (l *Leak) Clear(tid int) {}

// Alloc implements reclaim.Scheme.
func (l *Leak) Alloc(tid int) mem.Handle {
	return l.arena.Alloc(tid)
}

// Unreclaimed reports the total number of leaked blocks. The paper excludes
// the leak baseline from unreclaimed-object plots; the harness does too.
func (l *Leak) Unreclaimed() int {
	return int(l.leaked.Load())
}
