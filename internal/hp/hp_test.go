package hp

import (
	"sync/atomic"
	"testing"

	"wfe/internal/mem"
	"wfe/internal/pack"
	"wfe/internal/reclaim"
)

func newHP(t *testing.T, threads int) (*HP, *mem.Arena) {
	t.Helper()
	a := mem.New(mem.Config{Capacity: 1 << 12, MaxThreads: threads, Debug: true})
	return New(a, reclaim.Config{MaxThreads: threads, CleanupFreq: 1}), a
}

func TestProtectPublishesHandle(t *testing.T) {
	h, _ := newHP(t, 1)
	var root atomic.Uint64
	blk := h.Alloc(0)
	root.Store(blk)
	got := h.GetProtected(0, &root, 3, 0)
	if got != blk {
		t.Fatalf("GetProtected = %d, want %d", got, blk)
	}
	if hz := h.hazard(0, 3).Load(); hz != blk {
		t.Fatalf("hazard = %d, want %d", hz, blk)
	}
	h.Clear(0)
	if hz := h.hazard(0, 3).Load(); hz != 0 {
		t.Fatal("Clear left the hazard set")
	}
}

func TestProtectStripsMarkBits(t *testing.T) {
	// A marked link must publish the block's handle, not the marked value,
	// or the scan would fail to match it against retire-list entries.
	h, _ := newHP(t, 1)
	var root atomic.Uint64
	blk := h.Alloc(0)
	root.Store(blk | pack.MarkBit)
	got := h.GetProtected(0, &root, 0, 0)
	if got != blk|pack.MarkBit {
		t.Fatalf("GetProtected must return the raw link value, got %#x", got)
	}
	if hz := h.hazard(0, 0).Load(); hz != blk {
		t.Fatalf("hazard = %#x, want the clean handle %#x", hz, blk)
	}
}

func TestProtectFollowsConcurrentChange(t *testing.T) {
	// If the source changes between the read and the validation, the loop
	// must converge on the latest value, never returning a stale one.
	h, _ := newHP(t, 1)
	var root atomic.Uint64
	first := h.Alloc(0)
	second := h.Alloc(0)
	root.Store(first)
	// Simulate the change by swapping before the call (single-threaded
	// determinism; the concurrent interleaving is covered by the scheme
	// stress suite).
	root.Store(second)
	if got := h.GetProtected(0, &root, 0, 0); got != second {
		t.Fatalf("GetProtected = %d, want %d", got, second)
	}
}

func TestScanFreesOnlyUnprotected(t *testing.T) {
	h, a := newHP(t, 2)
	var root atomic.Uint64
	protected := h.Alloc(0)
	root.Store(protected)
	h.GetProtected(1, &root, 0, 0) // thread 1 pins it

	loose := h.Alloc(0)
	h.Retire(0, protected) // first retire triggers a scan
	h.Retire(0, loose)
	h.Retire(0, h.Alloc(0)) // scan again
	h.rt.Scan(0)

	if !a.Live(protected) {
		t.Fatal("protected block freed")
	}
	if a.Live(loose) {
		t.Fatal("unprotected block survived the scan")
	}

	h.Clear(1)
	h.rt.Scan(0)
	if a.Live(protected) {
		t.Fatal("block survived after hazard cleared")
	}
}

func TestUnreclaimedCountsRetireLists(t *testing.T) {
	a := mem.New(mem.Config{Capacity: 1 << 12, MaxThreads: 1, Debug: true})
	h := New(a, reclaim.Config{MaxThreads: 1, CleanupFreq: 1 << 30})
	h.Retire(0, h.Alloc(0)) // first retire scans (and frees)
	for i := 0; i < 5; i++ {
		h.Retire(0, h.Alloc(0))
	}
	if got := h.Unreclaimed(); got != 5 {
		t.Fatalf("unreclaimed = %d, want 5", got)
	}
}
