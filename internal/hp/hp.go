// Package hp implements classical Hazard Pointers (Michael, TPDS 2004): a
// thread publishes the handle it is about to dereference and re-validates
// that the source location still holds it. Reclamation scans gather all
// published handles and free retired blocks not among them.
//
// Paper mapping: hazard pointers are the baseline API the paper
// standardises on (§2.1) and the "HP" series of every evaluation figure
// (§5). Like Hazard Eras, the protect loop is only lock-free — the
// re-validation retries for as long as writers keep swinging the source
// location — which is the progress gap WFE closes.
//
// Reservations here hold link values with mark bits stripped: protection is
// per block, independent of the logical-deletion bits a link may carry.
package hp

import (
	"sort"
	"sync/atomic"

	"wfe/internal/mem"
	"wfe/internal/pack"
	"wfe/internal/reclaim"
)

type threadState struct {
	retireCount uint64
	// dirty is one past the highest hazard index used since the last Clear.
	dirty   int
	retired reclaim.RetireList
	scratch []mem.Handle // reusable scan buffer
	_       [64]byte
}

// HP is the Hazard Pointers scheme.
type HP struct {
	arena *mem.Arena
	cfg   reclaim.Config

	hazards   []atomic.Uint64 // row-major [MaxThreads][MaxHEs] handles; 0 = none
	rowStride int
	threads   []threadState
}

var _ reclaim.Scheme = (*HP)(nil)

// New creates a Hazard Pointers scheme over the given arena.
func New(arena *mem.Arena, cfg reclaim.Config) *HP {
	cfg = cfg.Defaults()
	stride := (cfg.MaxHEs + 7) &^ 7
	return &HP{
		arena:     arena,
		cfg:       cfg,
		hazards:   make([]atomic.Uint64, cfg.MaxThreads*stride),
		rowStride: stride,
		threads:   make([]threadState, cfg.MaxThreads),
	}
}

// Name implements reclaim.Scheme.
func (h *HP) Name() string { return "HP" }

// Begin implements reclaim.Scheme; Hazard Pointers needs no prologue.
func (h *HP) Begin(tid int) {}

// Arena implements reclaim.Scheme.
func (h *HP) Arena() *mem.Arena { return h.arena }

func (h *HP) hazard(tid, j int) *atomic.Uint64 {
	return &h.hazards[tid*h.rowStride+j]
}

// GetProtected publishes the handle read from src and re-reads src to
// validate the publication (the classical protect loop; lock-free).
func (h *HP) GetProtected(tid int, src *atomic.Uint64, index int, parent mem.Handle) uint64 {
	if t := &h.threads[tid]; index >= t.dirty {
		t.dirty = index + 1
	}
	hz := h.hazard(tid, index)
	v := src.Load()
	for {
		hz.Store(pack.Handle(v))
		again := src.Load()
		if again == v {
			return v
		}
		v = again
	}
}

// Alloc stamps no era: Hazard Pointers tracks identities, not lifespans.
func (h *HP) Alloc(tid int) mem.Handle {
	return h.arena.Alloc(tid)
}

// Retire adds the block to the thread's retire list and periodically scans.
func (h *HP) Retire(tid int, blk mem.Handle) {
	h.arena.SetRetireEra(blk, 0)
	t := &h.threads[tid]
	t.retired.Append(blk)
	if t.retireCount%uint64(h.cfg.CleanupFreq) == 0 {
		h.cleanup(tid)
	}
	t.retireCount++
}

// Clear resets the hazard slots used since the previous Clear.
func (h *HP) Clear(tid int) {
	t := &h.threads[tid]
	for j := 0; j < t.dirty; j++ {
		hz := h.hazard(tid, j)
		if hz.Load() != 0 {
			hz.Store(0)
		}
	}
	t.dirty = 0
}

// cleanup is Michael's scan: snapshot all hazards into a sorted slice, then
// free every retired block not present in it.
func (h *HP) cleanup(tid int) {
	t := &h.threads[tid]
	protected := t.scratch[:0]
	for i := 0; i < h.cfg.MaxThreads; i++ {
		for j := 0; j < h.cfg.MaxHEs; j++ {
			if v := h.hazard(i, j).Load(); v != 0 {
				protected = append(protected, v)
			}
		}
	}
	t.scratch = protected
	sort.Slice(protected, func(a, b int) bool { return protected[a] < protected[b] })

	blocks := t.retired.Blocks
	keep := blocks[:0]
	for _, blk := range blocks {
		i := sort.Search(len(protected), func(k int) bool { return protected[k] >= blk })
		if i < len(protected) && protected[i] == blk {
			keep = append(keep, blk)
		} else {
			h.arena.Free(tid, blk)
		}
	}
	t.retired.SetBlocks(keep)
}

// Unreclaimed implements reclaim.Scheme.
func (h *HP) Unreclaimed() int {
	total := 0
	for i := range h.threads {
		total += h.threads[i].retired.Len()
	}
	return total
}
