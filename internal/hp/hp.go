// Package hp implements classical Hazard Pointers (Michael, TPDS 2004): a
// thread publishes the handle it is about to dereference and re-validates
// that the source location still holds it. Reclamation scans gather all
// published handles and free retired blocks not among them.
//
// Paper mapping: hazard pointers are the baseline API the paper
// standardises on (§2.1) and the "HP" series of every evaluation figure
// (§5). Like Hazard Eras, the protect loop is only lock-free — the
// re-validation retries for as long as writers keep swinging the source
// location — which is the progress gap WFE closes.
//
// Reservations here hold link values with mark bits stripped: protection is
// per block, independent of the logical-deletion bits a link may carry.
//
// The retire side — the per-thread retire list, scan cadence and telemetry
// — lives in the shared reclaim.Retirer; this package contributes only the
// hazard matrix and its identity Judge (Gather the published handles,
// CanFree whatever is not among them — Michael's scan).
package hp

import (
	"sync/atomic"

	"wfe/internal/mem"
	"wfe/internal/pack"
	"wfe/internal/reclaim"
)

type threadState struct {
	// dirty is one past the highest hazard index used since the last Clear.
	dirty int
	_     [64]byte
}

// HP is the Hazard Pointers scheme.
type HP struct {
	arena *mem.Arena
	cfg   reclaim.Config
	rt    *reclaim.Retirer

	hazards   []atomic.Uint64 // row-major [MaxThreads][MaxHEs] handles; 0 = none
	rowStride int
	threads   []threadState
}

var _ reclaim.Scheme = (*HP)(nil)
var _ reclaim.Judge = (*HP)(nil)

// New creates a Hazard Pointers scheme over the given arena.
func New(arena *mem.Arena, cfg reclaim.Config) *HP {
	cfg = cfg.Defaults()
	stride := (cfg.MaxHEs + 7) &^ 7
	h := &HP{
		arena:     arena,
		cfg:       cfg,
		hazards:   make([]atomic.Uint64, cfg.MaxThreads*stride),
		rowStride: stride,
		threads:   make([]threadState, cfg.MaxThreads),
	}
	h.rt = reclaim.NewRetirer(arena, cfg, h)
	return h
}

// Name implements reclaim.Scheme.
func (h *HP) Name() string { return "HP" }

// Begin implements reclaim.Scheme; Hazard Pointers needs no prologue.
func (h *HP) Begin(tid int) {}

// Arena implements reclaim.Scheme.
func (h *HP) Arena() *mem.Arena { return h.arena }

// Retirer implements reclaim.Scheme.
func (h *HP) Retirer() *reclaim.Retirer { return h.rt }

func (h *HP) hazard(tid, j int) *atomic.Uint64 {
	return &h.hazards[tid*h.rowStride+j]
}

// GetProtected publishes the handle read from src and re-reads src to
// validate the publication (the classical protect loop; lock-free).
func (h *HP) GetProtected(tid int, src *atomic.Uint64, index int, parent mem.Handle) uint64 {
	if t := &h.threads[tid]; index >= t.dirty {
		t.dirty = index + 1
	}
	hz := h.hazard(tid, index)
	v := src.Load()
	for steps := uint64(1); ; steps++ {
		hz.Store(pack.Handle(v))
		again := src.Load()
		if again == v {
			h.rt.RecordSteps(tid, steps)
			return v
		}
		v = again
	}
}

// Alloc stamps no era: Hazard Pointers tracks identities, not lifespans.
func (h *HP) Alloc(tid int) mem.Handle {
	return h.arena.Alloc(tid)
}

// TryAlloc is Alloc with backpressure: arena exhaustion reports
// (0, false) instead of panicking. HP has no era clock to tick.
func (h *HP) TryAlloc(tid int) (mem.Handle, bool) {
	return h.arena.TryAlloc(tid)
}

// Retire hands the block to the shared retire-side runtime, which scans
// every CleanupFreq retirements through this package's Judge.
func (h *HP) Retire(tid int, blk mem.Handle) {
	h.arena.SetRetireEra(blk, 0)
	h.rt.Retire(tid, blk)
}

// BeginBatch implements reclaim.Scheme and reports false: a hazard slot
// protects exactly one node identity, so no single span can cover a batch
// — the runner must Clear between items and let each operation's
// GetProtected calls rotate hazard slots per node, exactly as in the
// per-op path. Batching under HP amortizes the lease and the retire
// cadence, never the protection itself.
func (h *HP) BeginBatch(tid int) bool { return false }

// EndBatch implements reclaim.Scheme: the trailing Clear.
func (h *HP) EndBatch(tid int) { h.Clear(tid) }

// RetireBatch implements reclaim.Scheme: HP tracks identities, not
// lifespans, so the blocks carry a zero stamp straight into the runtime's
// amortized retire path.
func (h *HP) RetireBatch(tid int, blks []mem.Handle) {
	for _, blk := range blks {
		h.arena.SetRetireEra(blk, 0)
	}
	h.rt.RetireBatch(tid, blks)
}

// Clear resets the hazard slots used since the previous Clear.
func (h *HP) Clear(tid int) {
	t := &h.threads[tid]
	for j := 0; j < t.dirty; j++ {
		hz := h.hazard(tid, j)
		if hz.Load() != 0 {
			hz.Store(0)
		}
	}
	t.dirty = 0
}

// Gather implements reclaim.Judge: snapshot every published hazard —
// the first half of Michael's scan.
func (h *HP) Gather(tid int, s *reclaim.Snapshot) {
	for i := 0; i < h.cfg.MaxThreads; i++ {
		for j := 0; j < h.cfg.MaxHEs; j++ {
			if v := h.hazard(i, j).Load(); v != 0 {
				s.AddEra(v)
			}
		}
	}
}

// CanFree implements reclaim.Judge: a retired block is free exactly when
// its handle is not among the gathered hazards (identity membership, not a
// lifespan test — HP tracks what is pointed at, not when).
func (h *HP) CanFree(tid int, s *reclaim.Snapshot, blk mem.Handle) bool {
	return !s.HandleReserved(blk)
}

// Unreclaimed implements reclaim.Scheme.
func (h *HP) Unreclaimed() int { return h.rt.Unreclaimed() }
