// Package quiesce settles a quiescent Domain so its reclamation census is
// meaningful: retired blocks sit in per-tid retire lists that are only
// scanned when that tid retires again, so "drained" structures can still
// show a large Unreclaimed backlog until every tid runs one more cleanup
// scan. The conformance/stress harnesses and cmd/wfestress share this
// recipe rather than each hand-rolling it.
package quiesce

import (
	"fmt"

	"wfe"
)

// settleOps is how many retire-triggering operations each tid runs: enough
// push/pop pairs to cross the cleanup-scan threshold (CleanupFreq, ≤ 30
// everywhere in this repository) and, for the epoch- and interval-based
// schemes, to advance the era clock past the retired blocks' lifespans.
const settleOps = 64

// Settle flushes every tid's retire list on an otherwise-quiescent Domain:
// it claims every guard, runs a little scratch churn on each so the next
// cleanup scan fires with no protection outstanding, and releases them.
// The scratch stack lives on the same Domain and ends empty. Call it with
// no concurrent operations in flight, before asserting on Unreclaimed.
func Settle[T any](d *wfe.Domain[T]) {
	scratch := wfe.NewStack[T](d)
	var zero T
	d.FlushGuardCache()
	var gs []*wfe.Guard[T]
	for {
		g, ok := d.TryGuard()
		if !ok {
			break
		}
		gs = append(gs, g)
	}
	for _, g := range gs {
		for i := 0; i < settleOps; i++ {
			// Exhaustion-tolerant: on an arena the workload filled (the
			// leak baseline after an undersized run) there is nothing the
			// churn could settle anyway.
			if err := scratch.TryPushGuarded(g, zero); err != nil {
				break
			}
			scratch.PopGuarded(g)
		}
	}
	for _, g := range gs {
		g.Release()
	}
	// The churn above only drives the cadence-triggered scans; a Domain
	// running a lazy CleanupFreq would keep its residue until each tid
	// retires CleanupFreq more blocks. The quiescent scavenge pass scans
	// every ring unconditionally.
	d.Scavenge()
}

// backlogFloor and backlogPerTid bound the retired-block backlog tolerated
// after a drain + Settle. Each tid's retire list keeps a last-window
// residue no later scan revisits (blocks retired within the final
// CleanupFreq/EraFreq window — roughly a dozen per tid at the harnesses'
// aggressive settings), so the tolerance scales with MaxGuards above a
// small-domain floor; anything beyond it means some tid's retire list
// never got its settling scan.
const (
	backlogFloor  = 256
	backlogPerTid = 16
)

// Check asserts the quiescent census after Settle: the lease cache must
// flush clean, every guard tid must be back on the freelist, the arena's
// freelist census must account for every block (the segmented spill list
// can neither lose nor duplicate slots), and — when assertBacklog is set
// (every scheme but the leak baseline) — the retired backlog must have
// collapsed to the per-tid baseline. It returns the first violation as an
// error so test and CLI harnesses share one recipe.
func Check[T any](d *wfe.Domain[T], assertBacklog bool) error {
	if stranded := d.FlushGuardCache(); stranded != 0 {
		return fmt.Errorf("quiesce: %d guards stranded in the lease cache after flush", stranded)
	}
	tel := d.Telemetry()
	if tel.GuardsFree != tel.MaxGuards {
		return fmt.Errorf("quiesce: guard leak: %d/%d tids back on the freelist", tel.GuardsFree, tel.MaxGuards)
	}
	if c := d.ArenaCensus(); c.Cached+c.Global+c.Live+c.BumpFree != c.Capacity {
		return fmt.Errorf("quiesce: arena census leak: %d cached + %d global + %d live + %d bump-free != capacity %d",
			c.Cached, c.Global, c.Live, c.BumpFree, c.Capacity)
	}
	if !assertBacklog {
		return nil
	}
	baseline := backlogFloor
	if scaled := backlogPerTid * tel.MaxGuards; scaled > baseline {
		baseline = scaled
	}
	if backlog := d.Unreclaimed(); backlog > baseline {
		return fmt.Errorf("quiesce: retired backlog %d did not collapse after drain+settle (baseline %d for %d guards)",
			backlog, baseline, tel.MaxGuards)
	}
	return nil
}
