package trace

import (
	"encoding/json"
	"io"
)

// Schema versions the Chrome trace artifact so downstream tooling can
// reject files it does not understand.
const Schema = "wfe-trace/v1"

// chromeEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// ts is in microseconds; scan spans use ph "B"/"E", everything else is a
// thread-scoped instant ("i").
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]uint64 `json:"args,omitempty"`
}

type chromeTrace struct {
	Schema          string        `json:"schema"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// WriteChrome renders records (as returned by Snapshot, sorted by TS)
// as Chrome trace-event JSON with the wfe-trace/v1 schema marker.
func WriteChrome(w io.Writer, recs []Record) error {
	out := chromeTrace{
		Schema:          Schema,
		DisplayTimeUnit: "ns",
		TraceEvents:     make([]chromeEvent, 0, len(recs)),
	}
	for _, r := range recs {
		ev := chromeEvent{
			Name: r.Kind.String(),
			Ph:   "i",
			TS:   float64(r.TS) / 1e3,
			Pid:  0,
			Tid:  r.Tid,
			S:    "t",
		}
		switch r.Kind {
		case KindGuardAcquire:
			ev.Args = map[string]uint64{"source": r.A}
		case KindRetire:
			ev.Args = map[string]uint64{"handle": r.A}
		case KindScanBegin:
			ev.Name, ev.Ph, ev.S = "scan", "B", ""
			ev.Args = map[string]uint64{"backlog": r.A}
		case KindScanEnd:
			ev.Name, ev.Ph, ev.S = "scan", "E", ""
			ev.Args = map[string]uint64{"examined": r.A, "freed": r.B}
		case KindEraAdvance:
			ev.Args = map[string]uint64{"era": r.A}
		case KindSegSpill, KindSegRefill:
			ev.Args = map[string]uint64{"blocks": r.A}
		case KindBatchBegin:
			ev.Name, ev.Ph, ev.S = "batch", "B", ""
			ev.Args = map[string]uint64{"intended": r.A}
		case KindBatchEnd:
			ev.Name, ev.Ph, ev.S = "batch", "E", ""
			ev.Args = map[string]uint64{"items": r.A, "retires": r.B}
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
