// Package trace is the event layer of the observability runtime: per-tid
// single-writer lock-free ring buffers recording reclamation lifecycle
// events with nanosecond timestamps.
//
// Writers publish fixed-size records with a per-slot sequence lock, so a
// snapshot never stops a writer and a writer never waits for anything:
// when the ring wraps, the oldest records are overwritten. A disabled
// tracer costs one nil check plus one atomic load per event site, so the
// hooks in reclaim.Retirer, guardpool and internal/mem stay compiled in
// at all times.
//
// Snapshots export to Chrome trace-event JSON (schema "wfe-trace/v1");
// load the file at chrome://tracing or https://ui.perfetto.dev.
package trace

import (
	"sort"
	"sync/atomic"
	"time"
)

// Kind enumerates the reclamation lifecycle events the tracer records.
type Kind uint8

const (
	// KindInvalid marks an unwritten or torn slot; never exported.
	KindInvalid Kind = iota
	// KindGuardAcquire: a pool guard was acquired. A is the source
	// (AcquireFreelist, AcquireHandoff); B is 1 when the acquisition
	// served a batch entry point (one lease per burst), else 0.
	KindGuardAcquire
	// KindGuardPark: an Acquire exhausted the freelist and parked on the
	// handoff channel. Emitted on the shared ring (no tid held yet).
	KindGuardPark
	// KindGuardCancel: a parked Acquire gave up because its context was
	// cancelled. Emitted on the shared ring.
	KindGuardCancel
	// KindRetire: one block entered the retire ring. A is the block
	// handle.
	KindRetire
	// KindScanBegin: a cleanup scan started. A is the retire-ring
	// backlog entering the scan.
	KindScanBegin
	// KindScanEnd: the scan finished. A is the blocks examined, B the
	// blocks freed.
	KindScanEnd
	// KindEraAdvance: the global era/epoch clock advanced. A is the new
	// value.
	KindEraAdvance
	// KindSegSpill: a full local free segment was pushed to the global
	// list. A is the segment length.
	KindSegSpill
	// KindSegRefill: an empty local cache pulled a segment from the
	// global list. A is the segment length.
	KindSegRefill
	// KindSchemeSwitch: the Domain swapped reclamation schemes. A is the
	// outgoing SchemeKind, B the incoming one. Emitted on the shared ring
	// (the switch runs with every guard released).
	KindSchemeSwitch
	// KindAllocStall: an allocation found the arena exhausted and entered
	// the Domain's emergency-reclamation pipeline. A is the arena's
	// allocated-block count at the stall, B its capacity.
	KindAllocStall
	// KindBatchBegin: a batched operation (MultiGet, PushAll, ...) opened
	// its batch context. A is the number of items the batch intends to
	// run (0 when open-ended, e.g. PopN draining early).
	KindBatchBegin
	// KindBatchEnd: the batch context closed. A is the items the batch
	// actually ran, B the retires it submitted as one burst.
	KindBatchEnd

	kindCount
)

// Guard-acquire sources (the A payload of KindGuardAcquire).
const (
	AcquireFreelist uint64 = iota // popped from the lock-free freelist
	AcquireHandoff                // handed off directly by a releaser
)

var kindNames = [kindCount]string{
	KindInvalid:      "invalid",
	KindGuardAcquire: "guard-acquire",
	KindGuardPark:    "guard-park",
	KindGuardCancel:  "guard-cancel",
	KindRetire:       "retire",
	KindScanBegin:    "scan-begin",
	KindScanEnd:      "scan-end",
	KindEraAdvance:   "era-advance",
	KindSegSpill:     "seg-spill",
	KindSegRefill:    "seg-refill",
	KindSchemeSwitch: "scheme-switch",
	KindAllocStall:   "alloc-stall",
	KindBatchBegin:   "batch-begin",
	KindBatchEnd:     "batch-end",
}

func (k Kind) String() string {
	if k >= kindCount {
		return "unknown"
	}
	return kindNames[k]
}

// SharedTid labels events emitted before the caller holds a tid (guard
// parks and cancels); they land on one shared multi-writer ring.
const SharedTid = -1

// DefaultDepth is the per-ring record capacity when the caller does not
// choose one. 1024 records x 5 words is 40 KiB per tid.
const DefaultDepth = 1024

// Record is one decoded trace event. TS is nanoseconds since the
// tracer's creation (monotonic).
type Record struct {
	TS   int64
	Tid  int
	Kind Kind
	A, B uint64
}

// slot is one ring entry: a per-slot sequence lock around four payload
// words. The writer stores seq=0, then the payload, then seq=index+1;
// a reader accepts the payload only if it observes seq==index+1 both
// before and after reading it.
type slot struct {
	seq  atomic.Uint64
	ts   atomic.Uint64
	meta atomic.Uint64 // kind<<32 | uint32(int32(tid))
	a    atomic.Uint64
	b    atomic.Uint64
}

// ring is one event ring. Per-tid rings are single-writer: only the
// owning tid stores head. The shared ring (SharedTid events) reserves
// slots with a fetch-add instead; colliding writers there would need a
// full ring of in-flight emits, which we accept as unreachable in
// practice — a torn shared-ring record is at worst one bogus park event
// in a diagnostic trace.
type ring struct {
	head  atomic.Uint64
	slots []slot
	_     [32]byte // keep adjacent ring heads off one cache line
}

// Tracer owns one ring per tid plus the shared ring. The zero-cost
// contract: Emit on a nil or disabled tracer is one predictable branch
// and at most one atomic load.
type Tracer struct {
	enabled atomic.Bool
	base    time.Time
	rings   []ring // rings[0..tids-1] per tid, rings[tids] shared
}

// New builds a tracer for tids writer threads with the given per-ring
// depth (rounded up to a power of two; <=0 means DefaultDepth). The
// tracer starts disabled.
func New(tids, depth int) *Tracer {
	if tids < 1 {
		tids = 1
	}
	if depth <= 0 {
		depth = DefaultDepth
	}
	d := 1
	for d < depth {
		d <<= 1
	}
	t := &Tracer{base: time.Now(), rings: make([]ring, tids+1)}
	for i := range t.rings {
		t.rings[i].slots = make([]slot, d)
	}
	return t
}

// SetEnabled turns event recording on or off. Safe to call at any time
// from any goroutine; in-flight emits that already passed the check
// complete normally.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// Enabled reports whether the tracer is recording.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// Emit records one event. On a nil or disabled tracer this is the
// near-zero-cost path: one branch, one atomic load, no call into emit.
func (t *Tracer) Emit(tid int, k Kind, a, b uint64) {
	if t == nil || !t.enabled.Load() {
		return
	}
	t.emit(tid, k, a, b)
}

func (t *Tracer) emit(tid int, k Kind, a, b uint64) {
	shared := tid < 0 || tid >= len(t.rings)-1
	var r *ring
	var h uint64
	if shared {
		r = &t.rings[len(t.rings)-1]
		h = r.head.Add(1) - 1
	} else {
		r = &t.rings[tid]
		h = r.head.Load()
	}
	s := &r.slots[h&uint64(len(r.slots)-1)]
	s.seq.Store(0)
	s.ts.Store(uint64(time.Since(t.base)))
	s.meta.Store(uint64(k)<<32 | uint64(uint32(int32(tid))))
	s.a.Store(a)
	s.b.Store(b)
	s.seq.Store(h + 1)
	if !shared {
		r.head.Store(h + 1)
	}
}

// Snapshot decodes every currently readable record without stopping
// writers, merged across rings and sorted by timestamp. Records being
// overwritten mid-read fail the sequence check and are dropped — the
// snapshot is a consistent sample, not an exact cut.
func (t *Tracer) Snapshot() []Record {
	if t == nil {
		return nil
	}
	var out []Record
	for ri := range t.rings {
		r := &t.rings[ri]
		depth := uint64(len(r.slots))
		h := r.head.Load()
		start := uint64(0)
		if h > depth {
			start = h - depth
		}
		for i := start; i < h; i++ {
			s := &r.slots[i&(depth-1)]
			if s.seq.Load() != i+1 {
				continue
			}
			ts := s.ts.Load()
			meta := s.meta.Load()
			a := s.a.Load()
			b := s.b.Load()
			if s.seq.Load() != i+1 {
				continue
			}
			k := Kind(meta >> 32)
			if k == KindInvalid || k >= kindCount {
				continue
			}
			out = append(out, Record{
				TS:   int64(ts),
				Tid:  int(int32(uint32(meta))),
				Kind: k,
				A:    a,
				B:    b,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}
