package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestNilAndDisabledEmitAreNoOps(t *testing.T) {
	var nilT *Tracer
	nilT.Emit(0, KindRetire, 1, 2) // must not panic
	if nilT.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if got := nilT.Snapshot(); got != nil {
		t.Fatalf("nil tracer snapshot = %v, want nil", got)
	}

	tr := New(2, 8)
	tr.Emit(0, KindRetire, 1, 2) // disabled: dropped
	if got := len(tr.Snapshot()); got != 0 {
		t.Fatalf("disabled tracer recorded %d events, want 0", got)
	}
	tr.SetEnabled(true)
	tr.Emit(0, KindRetire, 1, 2)
	if got := len(tr.Snapshot()); got != 1 {
		t.Fatalf("enabled tracer recorded %d events, want 1", got)
	}
	tr.SetEnabled(false)
	tr.Emit(0, KindRetire, 3, 4)
	if got := len(tr.Snapshot()); got != 1 {
		t.Fatalf("re-disabled tracer recorded %d events, want 1", got)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	tr := New(1, 4) // depth rounds to 4
	tr.SetEnabled(true)
	for i := uint64(0); i < 10; i++ {
		tr.Emit(0, KindRetire, i, 0)
	}
	recs := tr.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("snapshot holds %d records, want 4 (ring depth)", len(recs))
	}
	// Oldest six were overwritten; the survivors are 6..9 in order.
	for i, r := range recs {
		if want := uint64(6 + i); r.A != want {
			t.Fatalf("record %d payload = %d, want %d", i, r.A, want)
		}
		if r.Tid != 0 || r.Kind != KindRetire {
			t.Fatalf("record %d = %+v, want tid 0 kind retire", i, r)
		}
	}
}

func TestSharedRingTakesUnownedTids(t *testing.T) {
	tr := New(2, 8)
	tr.SetEnabled(true)
	tr.Emit(SharedTid, KindGuardPark, 0, 0)
	tr.Emit(99, KindGuardCancel, 0, 0) // out of range -> shared ring too
	recs := tr.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	for _, r := range recs {
		if r.Tid != SharedTid && r.Tid != 99 {
			t.Fatalf("unexpected tid %d", r.Tid)
		}
	}
}

func TestTimestampsMonotonePerTid(t *testing.T) {
	tr := New(1, 64)
	tr.SetEnabled(true)
	for i := 0; i < 32; i++ {
		tr.Emit(0, KindRetire, uint64(i), 0)
	}
	recs := tr.Snapshot()
	for i := 1; i < len(recs); i++ {
		if recs[i].TS < recs[i-1].TS {
			t.Fatalf("timestamps not sorted: %d before %d", recs[i-1].TS, recs[i].TS)
		}
	}
}

// TestSnapshotDuringConcurrentWriters hammers every ring (including the
// shared one) from concurrent writers while snapshotting continuously.
// Under -race this is the proof that readers never touch a slot
// non-atomically; the assertions check that every decoded record is
// well-formed, never torn into an invalid kind or foreign payload.
func TestSnapshotDuringConcurrentWriters(t *testing.T) {
	const (
		writers = 4
		events  = 20000
	)
	tr := New(writers, 64) // tiny rings: constant wrap pressure
	tr.SetEnabled(true)
	var writersWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(tid int) {
			defer writersWG.Done()
			for i := 0; i < events; i++ {
				tr.Emit(tid, KindRetire, uint64(tid), uint64(i))
				tr.Emit(SharedTid, KindGuardPark, uint64(tid), 0)
			}
		}(w)
	}
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, r := range tr.Snapshot() {
				if r.Kind == KindInvalid || r.Kind >= kindCount {
					t.Errorf("torn record: kind %d", r.Kind)
					return
				}
				if r.Kind == KindRetire && r.Tid >= 0 && r.A != uint64(r.Tid) {
					t.Errorf("foreign payload on tid %d: %+v", r.Tid, r)
					return
				}
			}
		}
	}()
	writersWG.Wait()
	close(stop)
	readerWG.Wait()
}

func TestWriteChrome(t *testing.T) {
	tr := New(1, 16)
	tr.SetEnabled(true)
	tr.Emit(0, KindScanBegin, 12, 0)
	tr.Emit(0, KindRetire, 7, 0)
	tr.Emit(0, KindScanEnd, 12, 5)
	tr.Emit(SharedTid, KindGuardPark, 0, 0)

	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Schema string `json:"schema"`
		Events []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			Tid  int               `json:"tid"`
			Args map[string]uint64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if decoded.Schema != Schema {
		t.Fatalf("schema = %q, want %q", decoded.Schema, Schema)
	}
	if len(decoded.Events) != 4 {
		t.Fatalf("got %d events, want 4", len(decoded.Events))
	}
	var sawB, sawE bool
	for _, ev := range decoded.Events {
		switch {
		case ev.Name == "scan" && ev.Ph == "B":
			sawB = true
			if ev.Args["backlog"] != 12 {
				t.Fatalf("scan B args = %v", ev.Args)
			}
		case ev.Name == "scan" && ev.Ph == "E":
			sawE = true
			if ev.Args["freed"] != 5 {
				t.Fatalf("scan E args = %v", ev.Args)
			}
		}
	}
	if !sawB || !sawE {
		t.Fatalf("missing scan span: B=%v E=%v", sawB, sawE)
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindInvalid; k < kindCount; k++ {
		if k.String() == "" || k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Fatal("out-of-range kind must stringify as unknown")
	}
}
