package chaos

import "wfe"

// A Canned scenario bundles a Scenario with the assertions the robustness
// matrix makes about it: the per-scheme backlog ceiling it must respect
// (0 = expected unbounded — the scheme is allowed, indeed expected, to
// blow past every bounded scheme's ceiling), and the scheme the advisor
// must recommend when shown the scenario's EBR trajectory (the incumbent
// cheap scheme an operator would be running when deciding whether to
// escalate). WantAdvice "" pins nothing.
type Canned struct {
	Scenario
	Ceiling    func(kind wfe.SchemeKind) int
	WantAdvice string
	// UnboundedFloor is the backlog every scheme the Ceiling table exempts
	// (Leak always; EBR under a stalled reader) must EXCEED — the matrix
	// asserts the distinction from both sides, so a scenario too gentle to
	// expose EBR's unboundedness fails the test rather than silently
	// proving nothing.
	UnboundedFloor int
	// WantPressure marks an exhaustion scenario: the matrix additionally
	// asserts that every judged scheme entered the emergency-reclamation
	// pipeline (Summary.EmergencyScans > 0) and resolved every stall
	// without surfacing an error (Summary.AllocFailures == 0), while the
	// judge-less Leak baseline — which the pipeline cannot help — recorded
	// failures instead of panicking.
	WantPressure bool
}

// Backlog ceilings, from the schemes' bounds rather than measurement:
//
//   - HP protects at most MaxGuards×MaxSlots individual handles, so its
//     backlog is scan lag plus a handful of pinned blocks: ceilingHP.
//   - The era/interval schemes pin the blocks live when the stall began —
//     at most KeyRange map nodes plus the hot cell — plus scan lag:
//     ceilingEra.
//   - EBR under a stalled reader accumulates every retire for the whole
//     stall window; the canned stall windows retire several times
//     ceilingEra, so "exceeds ceilingEra" is a robust unbounded signature.
//
// Scan lag at the canned cadence (CleanupFreq 4, rings per tid) is tens
// of blocks; the ceilings leave it an order of magnitude of headroom
// without approaching EBR's stall accumulation.
const (
	ceilingHP  = 256
	ceilingEra = 768
)

// boundedCeiling is the ceiling table for schedules where every real
// scheme is bounded (cooperative, preempted writer, bursty-with-drain,
// oversubscription): Leak is exempt, everything else must stay under the
// era ceiling (HP under its tighter one).
func boundedCeiling(kind wfe.SchemeKind) int {
	switch kind {
	case wfe.Leak:
		return 0
	case wfe.HP:
		return ceilingHP
	default:
		return ceilingEra
	}
}

// stalledReaderCeiling additionally exempts EBR: one stalled reservation
// stops its reclamation entirely, the distinction the paper's Table 1
// draws and the matrix test asserts from both sides.
func stalledReaderCeiling(kind wfe.SchemeKind) int {
	if kind == wfe.EBR {
		return 0
	}
	return boundedCeiling(kind)
}

// Cooperative is the control: no stalls, every scheme bounded, the
// advisor keeps EBR.
func Cooperative() Canned {
	return Canned{
		Scenario: Scenario{
			Name:  "cooperative",
			Seed:  1,
			Debug: true,
		},
		Ceiling:        boundedCeiling,
		WantAdvice:     "EBR",
		UnboundedFloor: ceilingEra,
	}
}

// StalledReader parks worker 0 for a 30-tick window while it holds a
// guard protecting the hot node: the scenario the schemes disagree on.
// The stall lifts at tick 50 with ten cooperative ticks left, so the
// trajectory also shows EBR's backlog draining once the reservation
// clears (and the post-run settle asserts it collapses).
func StalledReader() Canned {
	return Canned{
		Scenario: Scenario{
			Name:   "stalled-reader",
			Seed:   2,
			Stalls: []StallSpec{{Worker: 0, From: 20, To: 50, Kind: StallReader}},
			Debug:  true,
		},
		Ceiling:        stalledReaderCeiling,
		WantAdvice:     "WFE",
		UnboundedFloor: ceilingEra,
	}
}

// PreemptedWriter parks worker 0 for the same window but between
// operations, retire ring undrained and no reservation held: bounded for
// every scheme, the other side of the robustness distinction.
func PreemptedWriter() Canned {
	return Canned{
		Scenario: Scenario{
			Name:   "preempted-writer",
			Seed:   3,
			Stalls: []StallSpec{{Worker: 0, From: 20, To: 50, Kind: StallWriter}},
			Debug:  true,
		},
		Ceiling: boundedCeiling,
		// No advice pinned: a stranded ring barely moves EBR's backlog,
		// so the trajectory legitimately reads as cooperative.
		WantAdvice:     "",
		UnboundedFloor: ceilingEra,
	}
}

// BurstyChurn injects four short reader-stall spikes with calm stretches
// between: each spike's backlog excursion drains when the stall lifts, so
// memory stays bounded but the schedule is plainly not stall-free — the
// advisor's HE case.
func BurstyChurn() Canned {
	return Canned{
		Scenario: Scenario{
			Name:  "bursty-churn",
			Seed:  4,
			Ticks: 64,
			Stalls: []StallSpec{
				{Worker: 0, From: 8, To: 13, Kind: StallReader},
				{Worker: 1, From: 21, To: 26, Kind: StallReader},
				{Worker: 0, From: 34, To: 39, Kind: StallReader},
				{Worker: 2, From: 47, To: 52, Kind: StallReader},
			},
			Debug: true,
		},
		Ceiling:        boundedCeiling,
		WantAdvice:     "HE",
		UnboundedFloor: ceilingEra,
	}
}

// Oversubscription storms the map with goroutines ≫ guards so guardless
// acquisitions park; the concurrent engine runs it. Bounded memory for
// every scheme, park pressure on every trajectory.
func Oversubscription() Canned {
	return Canned{
		Scenario: Scenario{
			Name:       "oversubscription",
			Seed:       5,
			Goroutines: 16,
			MaxGuards:  2,
			Debug:      true,
		},
		Ceiling:        boundedCeiling,
		WantAdvice:     "HE",
		UnboundedFloor: ceilingEra,
	}
}

// ExhaustionStorm runs the put-heavy churn on an arena deliberately too
// small for the workload's allocation rate, with the scan cadence turned
// off (CleanupFreq far above the retire volume): the Domain's emergency
// allocation pipeline is the only reclamation in the run. Four writer
// stalls strand a retire ring each — writer stalls, not reader stalls,
// because a pinned reservation would make the pressure unresolvable for
// EBR and the point is that every judged scheme resolves it. The live set
// (~7/8 of KeyRange) occupies most of the arena, so allocation lives
// against the ceiling, pressure holds above the advisor's threshold once
// the map fills, and every put rides an emergency scan.
func ExhaustionStorm() Canned {
	return Canned{
		Scenario: Scenario{
			Name:     "exhaustion-storm",
			Seed:     6,
			KeyRange: 600,
			Capacity: 640,
			PutHeavy: true,
			// No cadence scans: 1<<20 exceeds the run's total retires.
			CleanupFreq: 1 << 20,
			// Fast era clock, so the freshly-retired window a worker's own
			// reservation pins stays a handful of blocks and its emergency
			// scan can always free the rest of its ring.
			EraFreq:   2,
			SpillSize: 64,
			Stalls: []StallSpec{
				{Worker: 0, From: 10, To: 15, Kind: StallWriter},
				{Worker: 1, From: 22, To: 27, Kind: StallWriter},
				{Worker: 2, From: 34, To: 39, Kind: StallWriter},
				{Worker: 0, From: 46, To: 51, Kind: StallWriter},
			},
			Debug: true,
		},
		// Every judged scheme's backlog is capped by the circulating pool
		// (capacity minus the live set) plus stranded rings; Leak's grows
		// to nearly the whole arena as deletes drain the exhausted map.
		Ceiling: func(kind wfe.SchemeKind) int {
			if kind == wfe.Leak {
				return 0
			}
			return 384
		},
		WantAdvice:     "HP",
		UnboundedFloor: 384,
		WantPressure:   true,
	}
}

// Catalog is the canned scenario matrix, in the order the docs and the
// -chaos stress mode present it.
func Catalog() []Canned {
	return []Canned{
		Cooperative(),
		StalledReader(),
		PreemptedWriter(),
		BurstyChurn(),
		Oversubscription(),
		ExhaustionStorm(),
	}
}
