// Package chaos is the schedule-injection harness: it drives the public
// structures across the reclamation schemes under the hostile schedules
// the paper's robustness argument is about — a reader stalled while
// holding a guard, a writer preempted with its retire ring undrained, an
// oversubscription storm with goroutines ≫ GOMAXPROCS ≫ guards, and
// bursty churn punctuated by stall spikes — and records the per-tick
// telemetry trajectory each scheme produces under them.
//
// The engine's job is to make the paper's Table 1 distinction observable
// and assertable: under a stalled reader, epoch-based reclamation's
// backlog grows without bound for as long as the stall lasts, while the
// hazard-pointer- and era-class schemes cap it (HP at the protected
// handles, the era/interval schemes at the live set when the stall
// began). A preempted writer, by contrast, strands only its own ring in
// every scheme. The root chaos tests assert exactly that matrix from the
// trajectories this package records.
//
// Determinism: the stall scenarios run on a single goroutine that
// round-robins the workers tick by tick, each worker owning an explicit
// Guard and a seeded xorshift stream. Hostility comes from reservation
// state (a pinned epoch or era), not from real parallelism, so the same
// seed reproduces the identical trajectory byte for byte — the property
// that makes the robustness matrix a unit test instead of a flaky stress.
// The oversubscription scenario is the exception: guard parking only
// happens under real contention, so it runs concurrently and its
// trajectory is marked non-deterministic (tests assert park pressure, not
// exact values).
//
// Trajectories serialize as "wfe-chaos/v1" JSON (cmd/wfestress -chaos
// writes them; cmd/wfeadvise reads them) and convert losslessly to the
// advisor package's sample stream.
package chaos

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"wfe"
	"wfe/advisor"
	"wfe/internal/quiesce"
)

// Schema identifies the trajectory JSON layout.
const Schema = "wfe-chaos/v1"

// StallKind says what a stalled worker was doing when the scheduler
// stopped running it.
type StallKind int

const (
	// StallReader parks the worker while it holds a live reservation: its
	// guard has begun an operation and protects the hot cell's node. This
	// is the schedule that separates the schemes — the reservation pins
	// EBR's epoch (unbounded backlog) but only a bounded set of blocks
	// for the HP/era/interval schemes.
	StallReader StallKind = iota
	// StallWriter parks the worker between operations, with retired
	// blocks stranded in its undrained retire ring but no reservation
	// held. Every scheme stays bounded under it: the ring holds at most
	// its occupancy at the stall, and nobody else's reclamation waits on
	// the stalled thread.
	StallWriter
)

func (k StallKind) String() string {
	switch k {
	case StallReader:
		return "reader"
	case StallWriter:
		return "writer"
	}
	return fmt.Sprintf("StallKind(%d)", int(k))
}

// A StallSpec stalls one worker for the tick window [From, To).
type StallSpec struct {
	Worker int       `json:"worker"`
	From   int       `json:"from"`
	To     int       `json:"to"`
	Kind   StallKind `json:"kind"`
}

// A Scenario is one schedule the harness can inject, over any scheme.
type Scenario struct {
	Name       string      `json:"name"`
	Seed       uint64      `json:"seed"`
	Ticks      int         `json:"ticks"`
	Workers    int         `json:"workers"`
	OpsPerTick int         `json:"ops_per_tick"` // structure ops per worker per tick
	KeyRange   uint64      `json:"key_range"`    // hashmap key universe (bounds the live set)
	Stalls     []StallSpec `json:"stalls,omitempty"`

	// Goroutines > 0 selects the concurrent oversubscription engine:
	// that many goroutines hammer the structure guardlessly over a
	// deliberately tiny guard pool, so acquisitions park. Stalls are
	// ignored in this mode and the trajectory is not deterministic.
	Goroutines int `json:"goroutines,omitempty"`

	// PutHeavy selects the exhaustion-storm op mix: workers churn the map
	// through the error-returning TryPutGuarded (put-dominated, no
	// reader stalls) and surfaced ErrArenaExhausted results are counted
	// in Summary.AllocFailures instead of panicking the run. Pair it with
	// an undersized Capacity and a lazy CleanupFreq so allocation outruns
	// the scan cadence and the Domain's emergency-reclamation pipeline is
	// the only thing keeping the workload alive.
	PutHeavy bool `json:"put_heavy,omitempty"`

	// Domain tuning. Zero values take the chaos defaults below (not the
	// Domain defaults: chaos wants aggressive scan/era cadence so a
	// short scenario exercises many reclamation cycles).
	MaxGuards   int  `json:"max_guards,omitempty"`
	CleanupFreq int  `json:"cleanup_freq,omitempty"`
	EraFreq     int  `json:"era_freq,omitempty"`
	Capacity    int  `json:"capacity,omitempty"`
	SpillSize   int  `json:"spill_size,omitempty"`
	Debug       bool `json:"debug,omitempty"`
}

// Chaos defaults: scan and era cadence aggressive enough that a ~60-tick
// scenario spans dozens of cleanup scans, an arena comfortably above the
// worst accumulation the canned scenarios produce, and the Debug arena on
// so a reclamation bug fails the run loudly instead of corrupting it.
const (
	defaultTicks       = 60
	defaultWorkers     = 3
	defaultOpsPerTick  = 120
	defaultKeyRange    = 256
	defaultCleanupFreq = 4
	defaultEraFreq     = 8
	defaultCapacity    = 1 << 16
)

func (s Scenario) withDefaults() Scenario {
	if s.Ticks == 0 {
		s.Ticks = defaultTicks
	}
	if s.Workers == 0 {
		s.Workers = defaultWorkers
	}
	if s.OpsPerTick == 0 {
		s.OpsPerTick = defaultOpsPerTick
	}
	if s.KeyRange == 0 {
		s.KeyRange = defaultKeyRange
	}
	if s.MaxGuards == 0 {
		if s.Goroutines > 0 {
			s.MaxGuards = 2
		} else {
			s.MaxGuards = s.Workers
		}
	}
	if s.CleanupFreq == 0 {
		s.CleanupFreq = defaultCleanupFreq
	}
	if s.EraFreq == 0 {
		s.EraFreq = defaultEraFreq
	}
	if s.Capacity == 0 {
		s.Capacity = defaultCapacity
	}
	return s
}

// A TickSample is the Domain's cumulative telemetry at the end of one
// tick, plus whether any injected stall was active during it.
type TickSample struct {
	Tick    int  `json:"tick"`
	Stalled bool `json:"stalled"`
	wfe.TelemetrySample
}

// A Summary is the trajectory's headline numbers, precomputed so matrix
// assertions and the CLI don't re-derive them.
type Summary struct {
	UnreclaimedMax     int    `json:"unreclaimed_max"`
	UnreclaimedMaxTick int    `json:"unreclaimed_max_tick"`
	UnreclaimedFinal   int    `json:"unreclaimed_final"` // after stalls lifted and the domain settled
	Scans              uint64 `json:"scans"`
	ScanBlocks         uint64 `json:"scan_blocks"`
	Parks              uint64 `json:"parks"`
	Deterministic      bool   `json:"deterministic"`
	// Backpressure numbers (omitted from JSON when zero, so trajectories
	// recorded before the emergency pipeline existed stay byte-identical):
	// allocations that entered the Domain's emergency pipeline, the
	// out-of-cadence scans it ran, and the operations that still surfaced
	// ErrArenaExhausted after it (only the Leak baseline, which has no
	// judge to scan with, should ever count failures).
	AllocStalls    uint64 `json:"alloc_stalls,omitempty"`
	EmergencyScans uint64 `json:"emergency_scans,omitempty"`
	AllocFailures  uint64 `json:"alloc_failures,omitempty"`
	// Quiesce is the post-run quiesce.Check verdict: "" if the drained
	// domain settled clean (guards all home, arena census exact, backlog
	// collapsed — not asserted for Leak), else the violation.
	Quiesce string `json:"quiesce,omitempty"`
}

// A Trajectory is one (scenario, scheme) run's recorded telemetry.
type Trajectory struct {
	Schema   string       `json:"schema"`
	Scenario string       `json:"scenario"`
	Scheme   string       `json:"scheme"`
	Seed     uint64       `json:"seed"`
	Ticks    []TickSample `json:"ticks"`
	Summary  Summary      `json:"summary"`
}

// Samples converts the trajectory to the advisor's sample stream.
func (t *Trajectory) Samples() []advisor.Sample {
	out := make([]advisor.Sample, len(t.Ticks))
	for i, ts := range t.Ticks {
		pressure := 0.0
		if ts.Capacity > 0 {
			pressure = float64(ts.InUse) / float64(ts.Capacity)
		}
		out[i] = advisor.Sample{
			Tick:           ts.Tick,
			Unreclaimed:    ts.Unreclaimed,
			ScanScans:      ts.ScanScans,
			ScanBlocks:     ts.ScanBlocks,
			P99Steps:       ts.P99Steps,
			GuardParks:     ts.GuardParks,
			Pressure:       pressure,
			EmergencyScans: ts.EmergencyScans,
		}
	}
	return out
}

// xorshift64 is the harness's deterministic per-worker stream.
type xorshift64 uint64

func (x *xorshift64) next() uint64 {
	v := *x
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = v
	return uint64(v)
}

// Run executes the scenario over the given scheme and returns the
// recorded trajectory. The Domain is created, driven, drained, settled
// and census-checked inside the call.
func Run(kind wfe.SchemeKind, s Scenario) (*Trajectory, error) {
	s = s.withDefaults()
	d, err := wfe.NewDomain[uint64](wfe.Options{
		Scheme:      kind,
		Capacity:    s.Capacity,
		MaxGuards:   s.MaxGuards,
		CleanupFreq: s.CleanupFreq,
		EraFreq:     s.EraFreq,
		SpillSize:   s.SpillSize,
		Debug:       s.Debug,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos %q/%s: %w", s.Name, kind, err)
	}
	traj := &Trajectory{
		Schema:   Schema,
		Scenario: s.Name,
		Scheme:   kind.String(),
		Seed:     s.Seed,
	}
	if s.Goroutines > 0 {
		runOversubscribed(d, s, traj)
	} else {
		runSequential(d, s, traj)
	}
	summarize(d, kind, traj)
	return traj, nil
}

// worker is one deterministic actor: an explicit guard, a seeded stream,
// and its stall state.
type worker struct {
	g       *wfe.Guard[uint64]
	rng     xorshift64
	stalled bool
	kind    StallKind
}

// hotSlot is the guard protection slot the engine uses for the shared hot
// cell; the built-in structures use slots 0..3, so the stalled reader's
// held protection survives any op the worker runs after the stall lifts.
const hotSlot = 7

// runSequential is the deterministic engine: one goroutine round-robins
// the workers, each running OpsPerTick hashmap operations per tick plus a
// hot-cell replacement, with stalls applied at their tick edges.
func runSequential(d *wfe.Domain[uint64], s Scenario, traj *Trajectory) {
	m := wfe.NewHashMap[uint64](d, 64)
	var hot wfe.Atomic[uint64] // the shared cell stalled readers protect

	workers := make([]*worker, s.Workers)
	for i := range workers {
		rng := xorshift64(s.Seed ^ (uint64(i+1) * 0x9e3779b97f4a7c15))
		if rng == 0 {
			rng = 1
		}
		workers[i] = &worker{g: d.Guard(), rng: rng}
	}

	stallsActive := 0
	for tick := 0; tick < s.Ticks; tick++ {
		// Apply the tick's stall edges before anyone runs.
		for _, sp := range s.Stalls {
			if sp.Worker < 0 || sp.Worker >= len(workers) {
				continue
			}
			w := workers[sp.Worker]
			if sp.From == tick && !w.stalled {
				w.stalled, w.kind = true, sp.Kind
				stallsActive++
				if sp.Kind == StallReader {
					// The stall catches the reader mid-operation: its
					// reservation is live and it protects the hot node.
					w.g.Begin()
					w.g.Protect(&hot, hotSlot)
				}
			}
			if sp.To == tick && w.stalled && w.kind == sp.Kind {
				if sp.Kind == StallReader {
					w.g.End()
				}
				w.stalled = false
				stallsActive--
			}
		}
		for wi, w := range workers {
			if w.stalled {
				continue
			}
			// Hot-cell churn: replace the shared node so a stalled
			// reader's protection pins a block other workers retire. The
			// put-heavy storm skips it — it has no reader stalls, and the
			// unconditional Alloc would panic on its undersized arena.
			if !s.PutHeavy && tick%len(workers) == wi {
				old := w.g.Protect(&hot, hotSlot)
				repl := w.g.Alloc(w.rng.next())
				if hot.CompareAndSwap(old, repl) {
					if !old.IsNil() {
						w.g.Retire(old)
					}
				} else {
					w.g.Dealloc(repl)
				}
			}
			for i := 0; i < s.OpsPerTick; i++ {
				key := w.rng.next() % s.KeyRange
				if s.PutHeavy {
					// Put-dominated churn through the backpressure API:
					// every put on a present key allocates a replacement
					// and retires the old node, so allocation pressure
					// tracks the op rate, not the live set.
					switch w.rng.next() % 10 {
					case 0, 1, 2, 3, 4, 5, 6:
						if err := m.TryPutGuarded(w.g, key, w.rng.next()); err != nil {
							traj.Summary.AllocFailures++
						}
					case 7:
						m.DeleteGuarded(w.g, key)
					default:
						m.GetGuarded(w.g, key)
					}
					continue
				}
				switch w.rng.next() % 10 {
				case 0, 1, 2, 3:
					m.InsertGuarded(w.g, key, key)
				case 4, 5, 6, 7:
					m.DeleteGuarded(w.g, key)
				default:
					m.GetGuarded(w.g, key)
				}
			}
		}
		sample := d.Sample()
		traj.Ticks = append(traj.Ticks, TickSample{
			Tick:            tick,
			Stalled:         stallsActive > 0,
			TelemetrySample: sample,
		})
	}
	// Lift any stall still open at the end, then drain the structure and
	// the hot cell so the post-run settle can collapse the backlog.
	for _, w := range workers {
		if w.stalled && w.kind == StallReader {
			w.g.End()
		}
		w.stalled = false
	}
	g := workers[0].g
	for key := uint64(0); key < s.KeyRange; key++ {
		m.DeleteGuarded(g, key)
	}
	if old := g.Protect(&hot, hotSlot); !old.IsNil() && hot.CompareAndSwap(old, wfe.Ref[uint64]{}) {
		g.Retire(old)
	}
	for _, w := range workers {
		w.g.Release()
	}
	traj.Summary.Deterministic = true
}

// runOversubscribed is the storm engine: Goroutines workers hammer the
// map guardlessly over a MaxGuards-sized pool while a hostage goroutine
// periodically pins the whole pool and sits on it — the schedule an
// oversubscribed machine produces when the kernel deschedules guard
// holders — so acquisitions park. The trajectory is sampled at equal
// completed-op thresholds; only its coarse shape (and Parks > 0) is
// reproducible, so it is marked non-deterministic.
func runOversubscribed(d *wfe.Domain[uint64], s Scenario, traj *Trajectory) {
	m := wfe.NewHashMap[uint64](d, 64)
	opsPerG := s.Ticks * s.OpsPerTick / 4
	if opsPerG == 0 {
		opsPerG = 1
	}
	total := uint64(s.Goroutines) * uint64(opsPerG)
	var done atomic.Uint64
	var wg sync.WaitGroup
	for gi := 0; gi < s.Goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			rng := xorshift64(s.Seed ^ (uint64(gi+1) * 0x9e3779b97f4a7c15))
			if rng == 0 {
				rng = 1
			}
			for i := 0; i < opsPerG; i++ {
				key := rng.next() % s.KeyRange
				switch rng.next() % 10 {
				case 0, 1, 2, 3:
					m.Insert(key, key)
				case 4, 5, 6, 7:
					m.Delete(key)
				default:
					m.Get(key)
				}
				done.Add(1)
				// Yield regularly so the storm interleaves even when
				// GOMAXPROCS is small — a worker that ran its whole batch
				// in one scheduler quantum would never contend for guards.
				if i%32 == 0 {
					runtime.Gosched()
				}
			}
		}(gi)
	}
	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	// The hostage loop models descheduled guard holders: pin every guard,
	// hold them across a scheduler quantum, release. Workers that hit the
	// empty pool park (the pool counts each park), exactly the pressure
	// the advisor's oversubscription signal keys on.
	const hostageBursts = 8
	var hostage sync.WaitGroup
	hostage.Add(1)
	go func() {
		defer hostage.Done()
		for k := 1; k <= hostageBursts; k++ {
			threshold := total * uint64(k) / (hostageBursts + 1)
			for done.Load() < threshold {
				select {
				case <-finished:
					return
				default:
					runtime.Gosched()
				}
			}
			gs := make([]*wfe.Guard[uint64], 0, s.MaxGuards)
			for i := 0; i < s.MaxGuards; i++ {
				gs = append(gs, d.Pin())
			}
			// Sit on the whole pool until the storm visibly parks on it
			// (or a yield budget runs out — parked workers must not be
			// able to deadlock the run by never advancing done).
			base := d.Sample().GuardParks
			want := base + uint64(s.Goroutines)/4 + 1
			for spin := 0; spin < 1<<14 && d.Sample().GuardParks < want; spin++ {
				runtime.Gosched()
			}
			for _, g := range gs {
				d.Unpin(g)
			}
		}
	}()
	step := total / uint64(s.Ticks)
	if step == 0 {
		step = 1
	}
	tick := 0
	for running := true; running && tick < s.Ticks; {
		select {
		case <-finished:
			running = false
		case <-time.After(200 * time.Microsecond):
		}
		for tick < s.Ticks && (done.Load() >= uint64(tick+1)*step || !running) {
			traj.Ticks = append(traj.Ticks, TickSample{
				Tick:            tick,
				TelemetrySample: d.Sample(),
			})
			tick++
		}
	}
	<-finished
	hostage.Wait()
	// Drain so the settle can collapse the backlog.
	for key := uint64(0); key < s.KeyRange; key++ {
		m.Delete(key)
	}
	traj.Summary.Deterministic = false
}

// summarize settles the drained domain, runs the shared quiesce census
// check, and folds the trajectory's headline numbers into the summary.
func summarize(d *wfe.Domain[uint64], kind wfe.SchemeKind, traj *Trajectory) {
	quiesce.Settle(d)
	if err := quiesce.Check(d, kind != wfe.Leak); err != nil {
		traj.Summary.Quiesce = err.Error()
	}
	traj.Summary.UnreclaimedFinal = d.Unreclaimed()
	for _, ts := range traj.Ticks {
		if ts.Unreclaimed > traj.Summary.UnreclaimedMax {
			traj.Summary.UnreclaimedMax = ts.Unreclaimed
			traj.Summary.UnreclaimedMaxTick = ts.Tick
		}
	}
	if n := len(traj.Ticks); n > 0 {
		last := traj.Ticks[n-1]
		traj.Summary.Scans = last.ScanScans
		traj.Summary.ScanBlocks = last.ScanBlocks
		traj.Summary.Parks = last.GuardParks
	}
	pr := d.Pressure()
	traj.Summary.AllocStalls = pr.AllocStalls
	traj.Summary.EmergencyScans = pr.EmergencyScans
}
