package chaos

import (
	"encoding/json"
	"reflect"
	"testing"

	"wfe"
)

// short is a fast stalled-reader scenario for the engine's unit tests;
// the full canned matrix lives in the root package's chaos tests.
func short() Scenario {
	return Scenario{
		Name:       "unit",
		Seed:       42,
		Ticks:      24,
		Workers:    3,
		OpsPerTick: 60,
		Stalls:     []StallSpec{{Worker: 1, From: 6, To: 18, Kind: StallReader}},
		Debug:      true,
	}
}

// TestDeterministicTrajectory is the engine's core promise: the same
// (scenario, scheme, seed) reproduces the identical trajectory — every
// tick sample byte for byte — so the robustness matrix is a unit test,
// not a flaky stress.
func TestDeterministicTrajectory(t *testing.T) {
	for _, kind := range []wfe.SchemeKind{wfe.WFE, wfe.EBR, wfe.HP} {
		a, err := Run(kind, short())
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		b, err := Run(kind, short())
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if !reflect.DeepEqual(a.Ticks, b.Ticks) {
			t.Fatalf("%s: same seed produced different trajectories", kind)
		}
		if !a.Summary.Deterministic {
			t.Errorf("%s: sequential trajectory not marked deterministic", kind)
		}
	}
}

func TestSeedChangesTrajectory(t *testing.T) {
	a, err := Run(wfe.WFE, short())
	if err != nil {
		t.Fatal(err)
	}
	s := short()
	s.Seed = 43
	b, err := Run(wfe.WFE, s)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Ticks, b.Ticks) {
		t.Fatal("different seeds produced identical trajectories")
	}
}

func TestStallWindowMarked(t *testing.T) {
	tr, err := Run(wfe.WFE, short())
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Ticks) != 24 {
		t.Fatalf("recorded %d ticks, want 24", len(tr.Ticks))
	}
	for _, ts := range tr.Ticks {
		want := ts.Tick >= 6 && ts.Tick < 18
		if ts.Stalled != want {
			t.Errorf("tick %d: Stalled = %v, want %v", ts.Tick, ts.Stalled, want)
		}
	}
}

func TestQuiesceCleanAfterStall(t *testing.T) {
	for _, kind := range wfe.AllSchemes() {
		tr, err := Run(kind, short())
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if tr.Summary.Quiesce != "" {
			t.Errorf("%s: post-run quiesce failed: %s", kind, tr.Summary.Quiesce)
		}
	}
}

func TestTrajectoryJSONRoundTrip(t *testing.T) {
	a, err := Run(wfe.HE, short())
	if err != nil {
		t.Fatal(err)
	}
	if a.Schema != Schema {
		t.Fatalf("Schema = %q, want %q", a.Schema, Schema)
	}
	blob, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var b Trajectory
	if err := json.Unmarshal(blob, &b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*a, b) {
		t.Fatal("trajectory did not survive a JSON round trip")
	}
}

func TestSamplesConversion(t *testing.T) {
	tr, err := Run(wfe.WFE, short())
	if err != nil {
		t.Fatal(err)
	}
	samples := tr.Samples()
	if len(samples) != len(tr.Ticks) {
		t.Fatalf("Samples() returned %d entries for %d ticks", len(samples), len(tr.Ticks))
	}
	for i, s := range samples {
		ts := tr.Ticks[i]
		if s.Tick != ts.Tick || s.Unreclaimed != ts.Unreclaimed ||
			s.ScanScans != ts.ScanScans || s.ScanBlocks != ts.ScanBlocks ||
			s.P99Steps != ts.P99Steps || s.GuardParks != ts.GuardParks {
			t.Fatalf("sample %d diverges from tick: %+v vs %+v", i, s, ts)
		}
	}
}

// TestOversubscriptionParks pins the storm engine's one guarantee: the
// pool visibly parks. Exact values are scheduler-dependent, so only the
// pressure signal is asserted.
func TestOversubscriptionParks(t *testing.T) {
	s := Oversubscription().Scenario
	s.Ticks = 20
	tr, err := Run(wfe.EBR, s)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Summary.Deterministic {
		t.Error("concurrent trajectory marked deterministic")
	}
	if tr.Summary.Parks == 0 {
		t.Error("oversubscription storm recorded zero guard parks")
	}
	if tr.Summary.Quiesce != "" {
		t.Errorf("post-storm quiesce failed: %s", tr.Summary.Quiesce)
	}
}

func TestCatalogShape(t *testing.T) {
	names := map[string]bool{}
	for _, c := range Catalog() {
		if c.Name == "" || names[c.Name] {
			t.Fatalf("catalog scenario with empty or duplicate name: %+v", c.Scenario)
		}
		names[c.Name] = true
		if c.Ceiling == nil {
			t.Fatalf("%s: no ceiling table", c.Name)
		}
		if c.Ceiling(wfe.Leak) != 0 {
			t.Errorf("%s: Leak must be ceiling-exempt", c.Name)
		}
		if c.UnboundedFloor <= 0 {
			t.Errorf("%s: no unbounded floor pinned", c.Name)
		}
	}
	for _, want := range []string{"cooperative", "stalled-reader", "preempted-writer", "bursty-churn", "oversubscription"} {
		if !names[want] {
			t.Errorf("catalog missing %q", want)
		}
	}
}
