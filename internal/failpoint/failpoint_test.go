package failpoint

import (
	"errors"
	"sync"
	"testing"
	"time"
)

var errBoom = errors.New("boom")

func TestDisarmedReturnsNil(t *testing.T) {
	s := New("test-disarmed")
	for i := 0; i < 1000; i++ {
		if err := s.Eval(0); err != nil {
			t.Fatalf("disarmed Eval returned %v", err)
		}
	}
	if s.Fires() != 0 {
		t.Fatalf("disarmed site counted %d fires", s.Fires())
	}
}

func TestEveryNth(t *testing.T) {
	s := New("test-every-nth")
	defer s.Disarm()
	s.Arm(Trigger{EveryNth: 3, Err: errBoom})
	var fired []int
	for i := 1; i <= 12; i++ {
		if err := s.Eval(0); err != nil {
			fired = append(fired, i)
		}
	}
	want := []int{3, 6, 9, 12}
	if len(fired) != len(want) {
		t.Fatalf("fired on %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired on %v, want %v", fired, want)
		}
	}
}

func TestAfterNSkipsPrefix(t *testing.T) {
	s := New("test-after-n")
	defer s.Disarm()
	s.Arm(Trigger{AfterN: 5, Err: errBoom})
	for i := 1; i <= 5; i++ {
		if err := s.Eval(0); err != nil {
			t.Fatalf("eval %d fired inside the AfterN prefix", i)
		}
	}
	if err := s.Eval(0); !errors.Is(err, errBoom) {
		t.Fatalf("eval 6 = %v, want errBoom", err)
	}
}

func TestOneShotDisarmsItself(t *testing.T) {
	s := New("test-one-shot")
	defer s.Disarm()
	s.Arm(Trigger{OneShot: true, Err: errBoom})
	if err := s.Eval(0); !errors.Is(err, errBoom) {
		t.Fatalf("first eval = %v, want errBoom", err)
	}
	for i := 0; i < 100; i++ {
		if err := s.Eval(0); err != nil {
			t.Fatalf("one-shot fired twice: %v", err)
		}
	}
}

func TestProbabilityIsDeterministic(t *testing.T) {
	run := func() []int {
		s := New("test-prob")
		defer s.Disarm()
		s.Arm(Trigger{Prob: 0.3, Seed: 42, Err: errBoom})
		var fired []int
		for i := 1; i <= 200; i++ {
			if err := s.Eval(0); err != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("two identical runs fired %d vs %d times", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at firing %d: %d vs %d", i, a[i], b[i])
		}
	}
	// 0.3 over 200 draws: expect roughly 60, and certainly not a
	// degenerate all-or-nothing stream.
	if len(a) < 30 || len(a) > 100 {
		t.Errorf("p=0.3 over 200 evals fired %d times; selector looks broken", len(a))
	}
}

func TestSleepDelaysCaller(t *testing.T) {
	s := New("test-sleep")
	defer s.Disarm()
	s.Arm(Trigger{OneShot: true, Sleep: 20 * time.Millisecond})
	start := time.Now()
	if err := s.Eval(0); err != nil {
		t.Fatalf("sleep-only trigger returned %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Errorf("firing slept only %v, want ~20ms", d)
	}
}

func TestRegistryLookupAndDisarmAll(t *testing.T) {
	s := New("test-registry")
	if again := New("test-registry"); again != s {
		t.Fatal("re-registering a name returned a different Site")
	}
	got, ok := Lookup("test-registry")
	if !ok || got != s {
		t.Fatal("Lookup did not find the registered site")
	}
	s.Arm(Trigger{Err: errBoom})
	DisarmAll()
	if err := s.Eval(0); err != nil {
		t.Fatalf("site still armed after DisarmAll: %v", err)
	}
	names := Names()
	found := false
	for _, n := range names {
		if n == "test-registry" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Names() = %v missing test-registry", names)
	}
}

func TestOneShotUnderContention(t *testing.T) {
	s := New("test-one-shot-race")
	defer s.Disarm()
	s.Arm(Trigger{OneShot: true, Err: errBoom})
	var fired int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if err := s.Eval(0); err != nil {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fired != 1 {
		t.Fatalf("one-shot fired %d times under contention, want exactly 1", fired)
	}
}
