// Package failpoint is a deterministic fault-injection registry for the
// wfe runtime. A Site is a named hook compiled permanently into a hot
// path; when disarmed (the steady state) evaluating it costs one atomic
// pointer load and a predictable branch — the same discipline as
// internal/trace — so sites can live at arena allocation, retire-scan
// entry and guard handoff without a measurable tax. Arming a Site
// installs a Trigger that decides, deterministically, which evaluations
// fire and what the firing does: return an injected error, sleep to
// widen a race window, or both.
//
// Determinism is the point. The chaos harness replays hostile schedules
// (allocation failure during a scheme switch, a stalled scan under
// memory pressure) that cannot be provoked reliably from outside; a
// Trigger's every-Nth / after-N counters and seeded-PRNG probability
// make the injected faults a pure function of the evaluation sequence,
// so a failing schedule is a reproducible regression input rather than
// a flake.
//
// The package depends only on the standard library and may be imported
// from any layer, including internal/mem.
package failpoint

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Trigger describes when an armed Site fires and what the firing
// injects. The zero Trigger fires on every evaluation and injects
// nothing observable (Err nil, no sleep) — useful only for counting.
//
// Selection composes as: skip the first AfterN evaluations, then fire
// when the every-Nth counter or the seeded probability says so (if
// neither selector is set, every post-AfterN evaluation fires).
type Trigger struct {
	// EveryNth fires on every Nth post-AfterN evaluation (1 = every
	// evaluation). 0 disables the counter selector.
	EveryNth uint64
	// AfterN skips the first N evaluations entirely.
	AfterN uint64
	// Prob fires each post-AfterN evaluation with this probability,
	// decided by a splitmix64 stream over Seed — deterministic in the
	// evaluation index, not in wall time or goroutine identity.
	Prob float64
	// Seed seeds the probability stream. Two sites armed with the same
	// Seed and Prob fire on the same evaluation indices.
	Seed uint64
	// OneShot disarms the Site after its first firing.
	OneShot bool
	// Err is returned from Eval when the Site fires. A nil Err makes
	// the firing sleep-only (or a pure counter).
	Err error
	// Sleep delays the calling goroutine when the Site fires, before
	// Eval returns. Use it to hold a racing thread inside a window the
	// scheduler rarely exposes.
	Sleep time.Duration
}

// armed is the installed state behind an atomic pointer: the Trigger
// plus the evaluation counter the selectors consume.
type armed struct {
	t     Trigger
	evals atomic.Uint64
}

// Site is one named injection point. Construct with New at package init
// of the host; the zero Site is not valid.
type Site struct {
	name  string
	state atomic.Pointer[armed]
	fires atomic.Uint64
}

var registry struct {
	mu    sync.Mutex
	sites map[string]*Site
}

// New registers a Site under name and returns it. Registering the same
// name twice returns the original Site, so tests and hosts can both
// call New without coordinating init order.
func New(name string) *Site {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.sites == nil {
		registry.sites = make(map[string]*Site)
	}
	if s, ok := registry.sites[name]; ok {
		return s
	}
	s := &Site{name: name}
	registry.sites[name] = s
	return s
}

// Lookup returns the Site registered under name, if any.
func Lookup(name string) (*Site, bool) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	s, ok := registry.sites[name]
	return s, ok
}

// Names returns every registered site name, sorted.
func Names() []string {
	registry.mu.Lock()
	out := make([]string, 0, len(registry.sites))
	for n := range registry.sites {
		out = append(out, n)
	}
	registry.mu.Unlock()
	sort.Strings(out)
	return out
}

// DisarmAll disarms every registered Site. Tests call it in cleanup so
// an armed trigger cannot leak into the next test's hot path.
func DisarmAll() {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, s := range registry.sites {
		s.state.Store(nil)
	}
}

// Name returns the Site's registered name.
func (s *Site) Name() string { return s.name }

// Arm installs t, replacing any previous trigger and resetting the
// evaluation counter.
func (s *Site) Arm(t Trigger) {
	a := &armed{t: t}
	s.state.Store(a)
}

// Disarm removes the current trigger. Evaluations return to the
// one-atomic-load fast path.
func (s *Site) Disarm() { s.state.Store(nil) }

// Fires reports how many evaluations have fired since the Site was
// created (across arm/disarm cycles).
func (s *Site) Fires() uint64 { return s.fires.Load() }

// Eval is the hook the host hot path calls. Disarmed — the permanent
// steady state — it is one atomic pointer load returning nil. Armed, it
// advances the deterministic selectors and, when the Trigger fires,
// sleeps Trigger.Sleep and returns Trigger.Err.
//
// The tid parameter is accepted for call-site symmetry with the rest of
// the runtime and reserved for per-thread selectors; current triggers
// select purely on the evaluation index.
func (s *Site) Eval(tid int) error {
	a := s.state.Load()
	if a == nil {
		return nil
	}
	return s.evalSlow(a)
}

func (s *Site) evalSlow(a *armed) error {
	n := a.evals.Add(1)
	if n <= a.t.AfterN {
		return nil
	}
	idx := n - a.t.AfterN
	fire := false
	switch {
	case a.t.EveryNth > 0:
		fire = idx%a.t.EveryNth == 0
	case a.t.Prob > 0:
		// splitmix64 over Seed+index: a deterministic per-index coin.
		fire = float64(splitmix64(a.t.Seed+n)>>11)/(1<<53) < a.t.Prob
	default:
		fire = true
	}
	if !fire {
		return nil
	}
	if a.t.OneShot {
		// Only the winning evaluation disarms; a lost CAS means another
		// evaluation already fired and disarmed, so this one stands down.
		if !s.state.CompareAndSwap(a, nil) {
			return nil
		}
	}
	s.fires.Add(1)
	if a.t.Sleep > 0 {
		time.Sleep(a.t.Sleep)
	}
	return a.t.Err
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
