package wfeibr

import (
	"math/rand"
	"slices"
	"sync"
	"sync/atomic"
	"testing"

	"wfe/internal/mem"
	"wfe/internal/pack"
	"wfe/internal/reclaim"
)

func newWFEIBR(t *testing.T, threads int, cfg reclaim.Config) (*WFEIBR, *mem.Arena) {
	t.Helper()
	cfg.MaxThreads = threads
	a := mem.New(mem.Config{Capacity: 1 << 14, MaxThreads: threads, Debug: true})
	return New(a, cfg), a
}

func TestSortedScanMatchesLinearOracle(t *testing.T) {
	// Property: on randomized special+normal interval sets, the
	// sorted-endpoint counting test reaches exactly the free/keep decision
	// of the pre-overhaul paired linear sweep (the retained oracle).
	rng := rand.New(rand.NewSource(20260729))
	for iter := 0; iter < 500; iter++ {
		n := rng.Intn(48)
		los := make([]uint64, n)
		his := make([]uint64, n)
		for i := range los {
			los[i] = uint64(rng.Intn(120)) + 1
			his[i] = los[i] + uint64(rng.Intn(20))
		}
		sortedLos := slices.Clone(los)
		sortedHis := slices.Clone(his)
		slices.Sort(sortedLos)
		slices.Sort(sortedHis)
		for b := 0; b < 32; b++ {
			birth := uint64(rng.Intn(120)) + 1
			retire := birth + uint64(rng.Intn(16))
			want := intervalReservedLinear(los, his, birth, retire)
			if got := reclaim.IntervalsOverlap(sortedLos, sortedHis, birth, retire); got != want {
				t.Fatalf("lifespan [%d,%d] vs intervals (%v,%v): sorted=%v linear=%v",
					birth, retire, los, his, got, want)
			}
		}
	}
}

func TestSlowPathSelfCompletion(t *testing.T) {
	w, _ := newWFEIBR(t, 1, reclaim.Config{ForceSlowPath: true})
	var root atomic.Uint64
	h := w.Alloc(0)
	root.Store(h)

	w.Begin(0)
	if got := w.GetProtected(0, &root, 0, 0); got != h {
		t.Fatalf("GetProtected = %d, want %d", got, h)
	}
	if w.SlowPaths() != 1 {
		t.Fatalf("slow paths = %d", w.SlowPaths())
	}
	if cs, ce := w.counterStart.Load(), w.counterEnd.Load(); cs != 1 || ce != 1 {
		t.Fatalf("counters %d/%d", cs, ce)
	}
	// The interval must cover the read.
	iv := &w.intervals[0]
	if iv.upper.Load() == pack.Inf || iv.lower.Load() == pack.Inf {
		t.Fatal("interval closed right after a protected read")
	}
	w.Clear(0)
}

func TestHelperProducesResultAndRaisesUpper(t *testing.T) {
	w, _ := newWFEIBR(t, 2, reclaim.Config{})
	var root atomic.Uint64
	h := w.Alloc(1)
	root.Store(h)

	// Post a request as the slow path would.
	w.Begin(0)
	lower := w.intervals[0].lower.Load()
	w.counterStart.Add(1)
	st := &w.state[0]
	st.pointer.Store(&root)
	st.birth.Store(pack.Inf)
	st.result.Store(uint64(pack.MakeRes(pack.InvPtr, 7)))

	w.helpThread(0, 1)

	res := pack.ResPair(st.result.Load())
	if res.Pending() {
		t.Fatal("helper did not produce a result")
	}
	if res.Ptr() != h {
		t.Fatalf("helper produced %d, want %d", res.Ptr(), h)
	}
	// Hand-over: requester's upper must cover the read era.
	if up := w.intervals[0].upper.Load(); up < res.Val() {
		t.Fatalf("upper %d below result era %d", up, res.Val())
	}
	if lo := w.intervals[0].lower.Load(); lo != lower {
		t.Fatal("helper moved the lower bound")
	}
	// The special interval must be released.
	if w.specials[1].lower.Load() != pack.Inf {
		t.Fatal("special interval leaked")
	}
	w.counterEnd.Add(1)
}

func TestIncrementEraHelps(t *testing.T) {
	w, _ := newWFEIBR(t, 2, reclaim.Config{})
	var root atomic.Uint64
	root.Store(w.Alloc(1))

	w.Begin(0)
	w.counterStart.Add(1)
	st := &w.state[0]
	st.pointer.Store(&root)
	st.birth.Store(pack.Inf)
	st.result.Store(uint64(pack.MakeRes(pack.InvPtr, 3)))

	before := w.Era()
	w.incrementEra(1)
	if w.Era() != before+1 {
		t.Fatal("era did not advance")
	}
	if pack.ResPair(st.result.Load()).Pending() {
		t.Fatal("pending request not helped before the era advance")
	}
	w.counterEnd.Add(1)
}

func TestRaiseUpperSkipsClosedIntervals(t *testing.T) {
	w, _ := newWFEIBR(t, 1, reclaim.Config{})
	iv := &w.intervals[0]
	raiseUpper(iv, 55) // closed: must stay closed
	if iv.upper.Load() != pack.Inf {
		t.Fatal("raise resurrected a closed interval")
	}
	w.Begin(0)
	cur := iv.upper.Load()
	raiseUpper(iv, cur-0) // no-op raise
	raiseUpper(iv, cur+9)
	if iv.upper.Load() != cur+9 {
		t.Fatalf("upper = %d, want %d", iv.upper.Load(), cur+9)
	}
	raiseUpper(iv, cur+2) // lower than current: keep the max
	if iv.upper.Load() != cur+9 {
		t.Fatal("raise lowered the bound")
	}
}

func TestForcedSlowConcurrentChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const workers = 4
	w, a := newWFEIBR(t, workers, reclaim.Config{
		ForceSlowPath: true, EraFreq: 1, CleanupFreq: 1,
	})
	var root atomic.Uint64
	h0 := w.Alloc(0)
	a.SetKey(h0, h0)
	root.Store(h0)

	var wg sync.WaitGroup
	for tid := 0; tid < workers; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				w.Begin(tid)
				if tid%2 == 0 {
					v := w.GetProtected(tid, &root, 0, 0)
					if h := pack.Handle(v); h != 0 && a.Key(h) != h {
						panic("corrupted read on slow path")
					}
				} else {
					n := w.Alloc(tid)
					a.SetKey(n, n)
					old := root.Swap(n)
					if h := pack.Handle(old); h != 0 {
						w.Retire(tid, h)
					}
				}
				w.Clear(tid)
			}
		}(tid)
	}
	wg.Wait()
	if cs, ce := w.counterStart.Load(), w.counterEnd.Load(); cs != ce {
		t.Fatalf("counters unbalanced: %d/%d", cs, ce)
	}
}
