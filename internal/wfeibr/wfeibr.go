// Package wfeibr implements the extension the paper sketches in §2.4 and
// §6: applying the Wait-Free Eras construction to 2GEIBR, the
// interval-based reclamation variant whose only non-wait-free operation is
// the same era-stabilisation loop as Hazard Eras'. ("Our approach is
// applicable to the 2GEIBR version where only hazardous reference accesses
// need to be made wait-free.")
//
// The scheme keeps 2GEIBR's per-thread reservation interval [lower, upper]
// and adds WFE's machinery around it:
//
//   - GetProtected runs the 2GEIBR loop for MaxAttempts rounds (fast path),
//     then publishes a helping request — one slot per thread, since an
//     interval scheme has a single in-flight protected read per thread.
//   - Threads about to advance the era from Alloc or Retire first help
//     every pending request (increment_era), bounding the slow path by the
//     number of in-flight increments, exactly as in WFE's Lemma 1.
//   - A helper protects itself with a dedicated special interval, raises
//     the requester's upper bound to the read era *before* publishing the
//     result, and only then releases the special interval. Reclamation
//     scans therefore gather special intervals first and normal intervals
//     second: a hand-over between the two reads is caught by the second
//     (the analogue of the paper's Lemma 5 scan order).
//
// The hand-over is simpler than WFE's: raising an interval's upper bound is
// only ever conservative, so the reservation needs no tag — the per-cycle
// tag lives solely in the result word, where it makes request identities
// unique.
//
// The retire side lives in the shared reclaim.Retirer; this package
// contributes the helping machinery and its interval Judge. The Judge's
// Gather preserves the scan order the hand-over proof needs: special
// intervals first, normal intervals second.
package wfeibr

import (
	"sync/atomic"

	"wfe/internal/mem"
	"wfe/internal/pack"
	"wfe/internal/reclaim"
	"wfe/internal/trace"
)

// interval is a padded [lower, upper] reservation.
type interval struct {
	lower atomic.Uint64
	upper atomic.Uint64
	_     [48]byte
}

// slowSlot is one helping request; one per thread suffices because a thread
// has at most one GetProtected in flight.
type slowSlot struct {
	result  atomic.Uint64 // ResPair: {InvPtr, tag} pending, {link, era} produced
	birth   atomic.Uint64 // parent block's birth era (Inf for roots)
	pointer atomic.Pointer[atomic.Uint64]
	_       [40]byte
}

type threadState struct {
	allocCount uint64
	tag        uint64 // slow-path cycle counter (owner-local)
	_          [64]byte
}

// WFEIBR is wait-free 2GEIBR.
type WFEIBR struct {
	arena        *mem.Arena
	cfg          reclaim.Config
	rt           *reclaim.Retirer
	globalEra    atomic.Uint64
	counterStart atomic.Uint64
	counterEnd   atomic.Uint64

	intervals []interval // normal per-thread reservations
	specials  []interval // helper-side reservations
	state     []slowSlot
	threads   []threadState
	slowPaths atomic.Uint64
}

var _ reclaim.Scheme = (*WFEIBR)(nil)
var _ reclaim.Judge = (*WFEIBR)(nil)
var _ reclaim.RetireObserver = (*WFEIBR)(nil)
var _ reclaim.Kinder = (*WFEIBR)(nil)

// JudgeKind implements reclaim.Kinder: WFE-IBR inherits 2GEIBR's interval
// membership test (two binary searches per retired block), so its
// auto-calibrated SortCutoff uses the interval crossover.
func (w *WFEIBR) JudgeKind() reclaim.JudgeKind { return reclaim.IntervalJudge }

// New creates a wait-free 2GEIBR scheme over the given arena.
func New(arena *mem.Arena, cfg reclaim.Config) *WFEIBR {
	cfg = cfg.Defaults()
	n := cfg.MaxThreads
	w := &WFEIBR{
		arena:     arena,
		cfg:       cfg,
		intervals: make([]interval, n),
		specials:  make([]interval, n),
		state:     make([]slowSlot, n),
		threads:   make([]threadState, n),
	}
	w.rt = reclaim.NewRetirer(arena, cfg, w)
	w.globalEra.Store(max(1, cfg.InitialEra))
	for i := 0; i < n; i++ {
		w.intervals[i].lower.Store(pack.Inf)
		w.intervals[i].upper.Store(pack.Inf)
		w.specials[i].lower.Store(pack.Inf)
		w.specials[i].upper.Store(pack.Inf)
		w.state[i].result.Store(uint64(pack.MakeRes(0, pack.Inf)))
	}
	return w
}

// Name implements reclaim.Scheme.
func (w *WFEIBR) Name() string { return "WFE-IBR" }

// Arena implements reclaim.Scheme.
func (w *WFEIBR) Arena() *mem.Arena { return w.arena }

// Retirer implements reclaim.Scheme.
func (w *WFEIBR) Retirer() *reclaim.Retirer { return w.rt }

// Era returns the global era clock.
func (w *WFEIBR) Era() uint64 { return w.globalEra.Load() }

// SlowPaths returns how many GetProtected calls entered the slow path.
func (w *WFEIBR) SlowPaths() uint64 { return w.slowPaths.Load() }

// Begin opens the operation's reservation interval at the current era.
func (w *WFEIBR) Begin(tid int) {
	e := w.globalEra.Load()
	iv := &w.intervals[tid]
	iv.upper.Store(e)
	iv.lower.Store(e)
}

// Clear closes the interval.
func (w *WFEIBR) Clear(tid int) {
	iv := &w.intervals[tid]
	iv.lower.Store(pack.Inf)
	iv.upper.Store(pack.Inf)
}

// BeginBatch implements reclaim.Scheme: one reservation interval spans the
// whole batch, exactly as in 2GEIBR — GetProtected (fast or slow path)
// keeps raising the upper bound, so the open interval covers every block
// the batch touches. Helpers interact with the interval only by raising
// its upper bound, which batching does not change.
func (w *WFEIBR) BeginBatch(tid int) bool {
	w.Begin(tid)
	return true
}

// EndBatch implements reclaim.Scheme: close the batch's interval.
func (w *WFEIBR) EndBatch(tid int) { w.Clear(tid) }

// RetireBatch implements reclaim.Scheme: stamp every block with the era
// read once at submission (monotone, so ≥ each unlink's era — a
// conservative lifespan) and hand the burst to the runtime's amortized
// retire path; the retire-driven era advance ticks once per burst through
// OnRetire, via the helping path.
func (w *WFEIBR) RetireBatch(tid int, blks []mem.Handle) {
	era := w.globalEra.Load()
	for _, blk := range blks {
		w.arena.SetRetireEra(blk, era)
	}
	w.rt.RetireBatch(tid, blks)
}

// raiseUpper monotonically lifts an interval's upper bound to at least e.
// Raising is always conservative, so competing raises need no tags.
func raiseUpper(iv *interval, e uint64) {
	for {
		cur := iv.upper.Load()
		if cur >= e && cur != pack.Inf {
			return
		}
		if cur == pack.Inf {
			// Closed interval: nothing to protect (stale raise after Clear
			// would resurrect a dead reservation — skip it).
			return
		}
		if iv.upper.CompareAndSwap(cur, e) {
			return
		}
	}
}

// GetProtected is the 2GEIBR loop with WFE's fast-path bound and helping.
// Each call's combined fast+slow iteration count feeds the shared step
// histogram — the bounded-steps distribution WFE's construction delivers.
func (w *WFEIBR) GetProtected(tid int, src *atomic.Uint64, index int, parent mem.Handle) uint64 {
	iv := &w.intervals[tid]
	prev := iv.upper.Load()
	if !w.cfg.ForceSlowPath {
		for a := 0; a < w.cfg.MaxAttempts; a++ {
			ret := src.Load()
			cur := w.globalEra.Load()
			if prev == cur {
				w.rt.RecordSteps(tid, uint64(a)+1)
				return ret
			}
			iv.upper.Store(cur)
			prev = cur
		}
	}
	return w.getProtectedSlow(tid, src, parent, prev)
}

func (w *WFEIBR) getProtectedSlow(tid int, src *atomic.Uint64, parent mem.Handle, prev uint64) uint64 {
	w.slowPaths.Add(1)
	steps := uint64(w.cfg.MaxAttempts)
	defer func() { w.rt.RecordSteps(tid, steps) }()
	birth := uint64(pack.Inf)
	if parent != 0 {
		birth = w.arena.AllocEra(parent)
	}

	t := &w.threads[tid]
	t.tag++
	tag := t.tag & (1<<pack.EraBits - 1) // fit the ResPair val field
	if tag == pack.Inf {
		t.tag++
		tag = t.tag & (1<<pack.EraBits - 1)
	}

	w.counterStart.Add(1)
	st := &w.state[tid]
	st.pointer.Store(src)
	st.birth.Store(birth)
	pending := uint64(pack.MakeRes(pack.InvPtr, tag))
	st.result.Store(pending)

	iv := &w.intervals[tid]
	for { // bounded by in-flight era increments (WFE Lemma 1)
		steps++
		ret := src.Load()
		cur := w.globalEra.Load()
		if prev == cur &&
			st.result.CompareAndSwap(pending, uint64(pack.MakeRes(0, pack.Inf))) {
			w.counterEnd.Add(1)
			return ret
		}
		raiseUpper(iv, cur)
		prev = cur

		res := pack.ResPair(st.result.Load())
		if !res.Pending() {
			// A helper produced the output and already raised our upper
			// bound to res.Val() before publishing; raise again for the
			// self-raced case where our CAS lost.
			raiseUpper(iv, res.Val())
			w.counterEnd.Add(1)
			return res.Ptr()
		}
	}
}

// incrementEra helps all pending requests, then advances the clock.
func (w *WFEIBR) incrementEra(tid int) {
	ce := w.counterEnd.Load()
	cs := w.counterStart.Load()
	if cs != ce {
		for i := 0; i < w.cfg.MaxThreads; i++ {
			if pack.ResPair(w.state[i].result.Load()).Pending() {
				w.helpThread(i, tid)
			}
		}
	}
	era := w.globalEra.Add(1)
	if era >= pack.MaxEra {
		panic("wfeibr: era clock exhausted (2^38 increments); see pack's width accounting")
	}
	w.cfg.Tracer.Emit(tid, trace.KindEraAdvance, era, 0)
}

// helpThread completes thread i's pending protected read.
func (w *WFEIBR) helpThread(i, tid int) {
	st := &w.state[i]
	res := pack.ResPair(st.result.Load())
	if !res.Pending() {
		return
	}
	birth := st.birth.Load()
	sp := &w.specials[tid]

	// Cover the parent block (and everything we may read) with the special
	// interval before re-validating the request; the re-read proves the
	// request was still pending — and the requester's own interval still
	// open — at a moment the special interval already protected us.
	start := w.globalEra.Load()
	lo := birth
	if lo == pack.Inf {
		lo = start
	}
	sp.upper.Store(start)
	sp.lower.Store(lo)

	if pack.ResPair(st.result.Load()) != res {
		sp.lower.Store(pack.Inf)
		sp.upper.Store(pack.Inf)
		return
	}
	ptr := st.pointer.Load()
	prev := start
	for ptr != nil { // bounded by in-flight era increments (WFE Lemma 2)
		ret := ptr.Load() & pack.PtrMask
		cur := w.globalEra.Load()
		if prev == cur {
			// Hand the reservation over before publishing the result
			// (scan order: specials first, normals second — the raise
			// lands before the special interval is released below).
			raiseUpper(&w.intervals[i], cur)
			st.result.CompareAndSwap(uint64(res), uint64(pack.MakeRes(ret, cur)))
			break
		}
		sp.upper.Store(cur)
		prev = cur
		if pack.ResPair(st.result.Load()) != res {
			break
		}
	}
	sp.lower.Store(pack.Inf)
	sp.upper.Store(pack.Inf)
}

// Alloc stamps the birth era, helping before each periodic era advance.
func (w *WFEIBR) Alloc(tid int) mem.Handle {
	t := &w.threads[tid]
	if t.allocCount%uint64(w.cfg.EraFreq) == 0 {
		w.incrementEra(tid)
	}
	t.allocCount++
	blk := w.arena.Alloc(tid)
	w.arena.SetAllocEra(blk, w.globalEra.Load())
	return blk
}

// TryAlloc is Alloc with backpressure: the era cadence still ticks, but
// arena exhaustion reports (0, false) instead of panicking.
func (w *WFEIBR) TryAlloc(tid int) (mem.Handle, bool) {
	t := &w.threads[tid]
	if t.allocCount%uint64(w.cfg.EraFreq) == 0 {
		w.incrementEra(tid)
	}
	t.allocCount++
	blk, ok := w.arena.TryAlloc(tid)
	if !ok {
		return 0, false
	}
	w.arena.SetAllocEra(blk, w.globalEra.Load())
	return blk, true
}

// AdvanceClock ticks the global era out of the allocation cadence
// (reclaim.ClockAdvancer) — the emergency-reclamation hook, routed
// through the wait-free helping path like every other advance.
func (w *WFEIBR) AdvanceClock(tid int) { w.incrementEra(tid) }

// Retire stamps the retire era and hands the block to the shared
// retire-side runtime; the era advances on retirement too (see the ibr
// package), via the helping path, through the OnRetire hook.
func (w *WFEIBR) Retire(tid int, blk mem.Handle) {
	w.arena.SetRetireEra(blk, w.globalEra.Load())
	w.rt.Retire(tid, blk)
}

// OnRetire implements reclaim.RetireObserver: the periodic retire-driven
// era advance, routed through incrementEra so pending requests get helped
// first.
func (w *WFEIBR) OnRetire(tid int, n uint64, blk mem.Handle) {
	if n%uint64(w.cfg.EraFreq) == 0 {
		w.incrementEra(tid)
	}
}

// Gather implements reclaim.Judge: special intervals first and normal
// intervals second (the Lemma 5 scan order for the upper-bound hand-over).
// The membership test is a union over both classes, so the runtime may
// sort the gathered endpoints once — after the gather, which keeps the
// scan order — without touching the proof.
func (w *WFEIBR) Gather(tid int, s *reclaim.Snapshot) {
	for _, set := range [][]interval{w.specials, w.intervals} {
		for i := range set {
			lower := set[i].lower.Load()
			if lower == pack.Inf {
				continue
			}
			s.AddInterval(lower, set[i].upper.Load())
		}
	}
}

// CanFree implements reclaim.Judge via canDelete, which retains the
// pre-overhaul paired linear sweep as the property-tested reference
// oracle.
func (w *WFEIBR) CanFree(tid int, s *reclaim.Snapshot, blk mem.Handle) bool {
	los, his := s.Intervals()
	return w.canDelete(blk, los, his, s.Linear())
}

// canDelete reports whether the block's [birth, retire] lifespan overlaps
// none of the gathered reservation intervals; linear selects the paired
// reference sweep (the endpoint slices are sorted independently
// otherwise).
func (w *WFEIBR) canDelete(blk mem.Handle, los, his []uint64, linear bool) bool {
	birth := w.arena.AllocEra(blk)
	retire := w.arena.RetireEra(blk)
	if linear {
		return !intervalReservedLinear(los, his, birth, retire)
	}
	return !reclaim.IntervalsOverlap(los, his, birth, retire)
}

// intervalReservedLinear is the pre-overhaul O(G) per-block overlap sweep
// over paired endpoints, kept as the reference oracle for the sorted
// scan's property test and the -ablation scan comparison.
func intervalReservedLinear(los, his []uint64, birth, retire uint64) bool {
	for i := range los {
		if birth <= his[i] && retire >= los[i] {
			return true
		}
	}
	return false
}

// Unreclaimed implements reclaim.Scheme.
func (w *WFEIBR) Unreclaimed() int { return w.rt.Unreclaimed() }
