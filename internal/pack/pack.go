package pack

// Field widths. See doc.go for the accounting that justifies them.
const (
	PtrBits = 26 // link value: 24-bit handle + 2 mark/flag bits
	EraBits = 38
	TagBits = 26

	HandleBits = 24

	// MarkBit and FlagBit are the two spare bits of a link value above the
	// 24-bit handle. Lock-free structures use them for logical deletion
	// (Harris–Michael mark) and for the Natarajan–Mittal flag/tag pair.
	MarkBit = 1 << HandleBits
	FlagBit = 1 << (HandleBits + 1)

	// HandleMask extracts the handle from a link value.
	HandleMask = 1<<HandleBits - 1
	// PtrMask extracts a full link value (handle + mark bits).
	PtrMask = 1<<PtrBits - 1

	// Inf is the paper's ∞ era: a reservation holding Inf protects nothing.
	Inf = 1<<EraBits - 1
	// MaxEra is the largest era the clock may reach before wrapping into Inf.
	MaxEra = Inf - 1

	// InvPtr is the paper's invptr: a link value that no data structure may
	// ever store. Its presence in a ResPair means "result not yet produced".
	InvPtr = PtrMask

	tagMask = 1<<TagBits - 1
	valMask = 1<<EraBits - 1
)

// EraTag packs a per-reservation {era, tag} pair (paper Figure 3, the
// reservations array) into one word: era in the high 38 bits, tag in the
// low 26 bits.
type EraTag uint64

// MakeEraTag builds an EraTag. era must be < 2^38 (Inf allowed); tag is
// taken modulo 2^26, matching the tag's wrap-around semantics.
func MakeEraTag(era, tag uint64) EraTag {
	return EraTag(era<<TagBits | tag&tagMask)
}

// Era returns the era field.
func (et EraTag) Era() uint64 { return uint64(et) >> TagBits }

// Tag returns the tag field.
func (et EraTag) Tag() uint64 { return uint64(et) & tagMask }

// WithEra returns et with the era field replaced and the tag preserved.
func (et EraTag) WithEra(era uint64) EraTag {
	return MakeEraTag(era, et.Tag())
}

// ResPair packs a slow-path {pointer, value} result pair (paper Figure 3,
// state.result) into one word: link value in the high 26 bits, era-or-tag
// in the low 38 bits.
//
// Input convention (request posted): ptr == InvPtr and val == the slow-path
// cycle tag. Output convention (result produced): ptr == the dereferenced
// link value and val == the era under which it was read.
type ResPair uint64

// MakeRes builds a ResPair from a link value and an era or tag.
func MakeRes(ptr, val uint64) ResPair {
	return ResPair((ptr&PtrMask)<<EraBits | val&valMask)
}

// Ptr returns the link-value field.
func (rp ResPair) Ptr() uint64 { return uint64(rp) >> EraBits }

// Val returns the era-or-tag field.
func (rp ResPair) Val() uint64 { return uint64(rp) & valMask }

// Pending reports whether the pair still carries a helping request
// (pointer field is InvPtr).
func (rp ResPair) Pending() bool { return rp.Ptr() == InvPtr }

// Handle extracts the arena handle from a link value, dropping mark bits.
func Handle(link uint64) uint64 { return link & HandleMask }

// Marked reports whether a link value carries the Harris–Michael mark bit.
func Marked(link uint64) bool { return link&MarkBit != 0 }

// Flagged reports whether a link value carries the flag bit.
func Flagged(link uint64) bool { return link&FlagBit != 0 }
