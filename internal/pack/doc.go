// Package pack emulates the paper's wide CAS (WCAS) by packing the two
// adjacent 64-bit words the WFE algorithm updates atomically into a single
// 64-bit word operated on with sync/atomic.
//
// The paper (Nikolaev & Ravindran, "Universal Wait-Free Memory Reclamation",
// PPoPP 2020) assumes x86-64 CMPXCHG16B to atomically update two adjacent
// words: the per-reservation {era, tag} pair and the per-slow-path-slot
// {pointer, era} result pair. Go exposes no 128-bit CAS, so both pairs are
// packed into one uint64:
//
//	EraTag:  | era (38 bits) | tag (26 bits) |
//	ResPair: | ptr (26 bits) | val (38 bits) |
//
// where ptr is a link value (a 24-bit arena handle plus two mark/flag bits
// used by the lock-free data structures) and val holds either an era (on
// output) or a slow-path cycle tag (on input; tags are 26 bits and therefore
// always fit in the 38-bit field).
//
// Width accounting, versus the paper's 64-bit fields:
//
//   - Era, 38 bits: the era clock advances once per eraFreq (default 150)
//     allocations per thread and once per cleanupFreq retirements. At an
//     aggressive 10^5 increments/second the clock wraps after ~31 days of
//     continuous execution; the benchmark sweep observes increment rates two
//     orders of magnitude lower. Era 2^38-1 is reserved as Inf (the paper's
//     ∞ reservation value).
//
//   - Tag, 26 bits: the tag counts slow-path cycles per reservation slot
//     and protects helpers against acting on a stale cycle. It may wrap
//     after 2^26 ≈ 67M slow-path cycles on one slot; a wrap is only harmful
//     if a helper sleeps across an exact multiple of 2^26 cycles of the same
//     slot, which the test suite cannot come close to producing. The paper's
//     64-bit tag has the same wrap argument with a larger constant.
//
//   - Ptr, 26 bits: 24-bit arena handle (16.7M live blocks) plus bit 24
//     (mark/flag) and bit 25 (tag/second flag) used by Harris–Michael lists
//     and the Natarajan–Mittal BST. The all-ones 26-bit value is InvPtr,
//     the paper's invptr sentinel, which no data structure may store.
package pack
