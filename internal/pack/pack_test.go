package pack

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEraTagRoundTrip(t *testing.T) {
	cases := []struct{ era, tag uint64 }{
		{0, 0},
		{1, 0},
		{0, 1},
		{Inf, 0},
		{Inf, 1<<TagBits - 1},
		{MaxEra, 12345},
		{42, 7},
	}
	for _, c := range cases {
		et := MakeEraTag(c.era, c.tag)
		if et.Era() != c.era {
			t.Errorf("MakeEraTag(%d,%d).Era() = %d", c.era, c.tag, et.Era())
		}
		if et.Tag() != c.tag {
			t.Errorf("MakeEraTag(%d,%d).Tag() = %d", c.era, c.tag, et.Tag())
		}
	}
}

func TestEraTagRoundTripQuick(t *testing.T) {
	f := func(era, tag uint64) bool {
		era &= valMask
		tag &= tagMask
		et := MakeEraTag(era, tag)
		return et.Era() == era && et.Tag() == tag
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEraTagWithEra(t *testing.T) {
	et := MakeEraTag(100, 37)
	et2 := et.WithEra(Inf)
	if et2.Era() != Inf || et2.Tag() != 37 {
		t.Fatalf("WithEra: got era=%d tag=%d", et2.Era(), et2.Tag())
	}
}

func TestResPairRoundTripQuick(t *testing.T) {
	f := func(ptr, val uint64) bool {
		ptr &= PtrMask
		val &= valMask
		rp := MakeRes(ptr, val)
		return rp.Ptr() == ptr && rp.Val() == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResPairPending(t *testing.T) {
	if !MakeRes(InvPtr, 5).Pending() {
		t.Error("InvPtr pair should be pending")
	}
	if MakeRes(0, Inf).Pending() {
		t.Error("nil pair should not be pending")
	}
	if MakeRes(123, 456).Pending() {
		t.Error("produced pair should not be pending")
	}
}

func TestTagFitsInValField(t *testing.T) {
	// The slow path stores the 26-bit tag in the 38-bit val field; it must
	// round-trip exactly so that helpers can compare it against the
	// reservation's tag.
	for i := 0; i < 1000; i++ {
		tag := rand.Uint64() & tagMask
		rp := MakeRes(InvPtr, tag)
		if rp.Val() != tag {
			t.Fatalf("tag %d did not round-trip through ResPair.Val: %d", tag, rp.Val())
		}
	}
}

func TestMarkFlagBits(t *testing.T) {
	h := uint64(0xABCDEF) // 24-bit handle
	link := h | MarkBit
	if Handle(link) != h {
		t.Errorf("Handle(marked) = %x, want %x", Handle(link), h)
	}
	if !Marked(link) {
		t.Error("Marked(marked) = false")
	}
	if Flagged(link) {
		t.Error("Flagged(marked only) = true")
	}
	link |= FlagBit
	if !Flagged(link) {
		t.Error("Flagged(flagged) = false")
	}
	if Handle(link) != h {
		t.Errorf("Handle(marked|flagged) = %x, want %x", Handle(link), h)
	}
	if link&PtrMask != link {
		t.Error("marked+flagged link exceeds the 26-bit ptr field")
	}
}

func TestInvPtrDisjointFromHandles(t *testing.T) {
	// InvPtr must not collide with any valid handle, even a marked and
	// flagged one, as long as handles stay below HandleMask.
	maxValid := uint64(HandleMask-1) | MarkBit | FlagBit
	if maxValid == InvPtr {
		t.Fatal("largest valid link value collides with InvPtr")
	}
	if InvPtr != PtrMask {
		t.Fatal("InvPtr must be the all-ones 26-bit value")
	}
}

func TestEraOrdering(t *testing.T) {
	// The reclamation scan compares eras numerically; Inf must dominate
	// every real era so an Inf reservation never blocks reclamation... it
	// is excluded explicitly, but MaxEra < Inf keeps comparisons sane.
	if MaxEra >= Inf {
		t.Fatal("MaxEra must be below Inf")
	}
	if MakeEraTag(Inf, 0).Era() != Inf {
		t.Fatal("Inf does not survive packing")
	}
}
