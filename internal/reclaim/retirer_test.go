package reclaim

import (
	"sync"
	"sync/atomic"
	"testing"

	"wfe/internal/mem"
)

// fakeJudge is a configurable Judge for driving the runtime without a real
// scheme: gather/canFree default to "gather nothing, free everything".
type fakeJudge struct {
	gather  func(tid int, s *Snapshot)
	canFree func(tid int, s *Snapshot, blk mem.Handle) bool
	gathers atomic.Int64
}

func (j *fakeJudge) Gather(tid int, s *Snapshot) {
	j.gathers.Add(1)
	if j.gather != nil {
		j.gather(tid, s)
	}
}

func (j *fakeJudge) CanFree(tid int, s *Snapshot, blk mem.Handle) bool {
	if j.canFree != nil {
		return j.canFree(tid, s, blk)
	}
	return true
}

func testArena(t *testing.T, capacity, threads int) *mem.Arena {
	t.Helper()
	return mem.New(mem.Config{Capacity: capacity, MaxThreads: threads, Debug: true})
}

func TestRetirerGatingCadence(t *testing.T) {
	a := testArena(t, 1<<10, 1)
	j := &fakeJudge{canFree: func(int, *Snapshot, mem.Handle) bool { return false }}
	r := NewRetirer(a, Config{MaxThreads: 1, CleanupFreq: 10}, j)

	for i := 0; i < 25; i++ {
		r.Retire(0, a.Alloc(0))
	}
	// Scans fire at retirement ordinals 0, 10 and 20 — the paper's
	// counter-is-a-multiple cadence, first retirement included.
	if got := j.gathers.Load(); got != 3 {
		t.Fatalf("gathers = %d over 25 retirements at CleanupFreq 10, want 3", got)
	}
	st := r.Stats()
	if st.Scans != 3 {
		t.Fatalf("Stats().Scans = %d, want 3", st.Scans)
	}
	// Scan 1 examined 1 block, scan 2 examined 11, scan 3 examined 21
	// (nothing freed, so the ring only grows).
	if st.Blocks != 1+11+21 {
		t.Fatalf("Stats().Blocks = %d, want %d", st.Blocks, 1+11+21)
	}
	if r.Unreclaimed() != 25 {
		t.Fatalf("Unreclaimed = %d, want 25", r.Unreclaimed())
	}
}

func TestRetirerScanFreesAndRequeues(t *testing.T) {
	a := testArena(t, 1<<10, 1)
	// Free the blocks whose retire era is at or below the moving gate.
	gate := uint64(1)
	j := &fakeJudge{canFree: func(_ int, _ *Snapshot, blk mem.Handle) bool {
		return a.RetireEra(blk) <= gate
	}}
	r := NewRetirer(a, Config{MaxThreads: 1, CleanupFreq: 1 << 30}, j)

	var freeable, pinned []mem.Handle
	for i := 0; i < 8; i++ {
		f, p := a.Alloc(0), a.Alloc(0)
		a.SetRetireEra(f, 1)
		a.SetRetireEra(p, 2)
		r.Add(0, f)
		r.Add(0, p)
		freeable, pinned = append(freeable, f), append(pinned, p)
	}
	r.Scan(0)
	for _, blk := range freeable {
		if a.Live(blk) {
			t.Fatalf("freeable block %d survived the scan", blk)
		}
	}
	for _, blk := range pinned {
		if !a.Live(blk) {
			t.Fatalf("pinned block %d was freed", blk)
		}
	}
	if r.Unreclaimed() != len(pinned) {
		t.Fatalf("Unreclaimed = %d, want %d", r.Unreclaimed(), len(pinned))
	}
	// The survivors were re-queued and a later scan (with the gate moved
	// past their retire era) frees them.
	gate = 2
	r.Scan(0)
	if r.Unreclaimed() != 0 {
		t.Fatalf("Unreclaimed = %d after settling scan, want 0", r.Unreclaimed())
	}
}

func TestRingGrowthReuseAndOrder(t *testing.T) {
	var q ring
	// Fill past two growth steps with wrap-around in between.
	for i := 1; i <= 80; i++ {
		q.push(mem.Handle(i))
	}
	for i := 1; i <= 50; i++ {
		if got := q.pop(); got != mem.Handle(i) {
			t.Fatalf("pop #%d = %d", i, got)
		}
	}
	for i := 81; i <= 180; i++ { // wraps, then grows with head != 0
		q.push(mem.Handle(i))
	}
	if q.len() != 130 {
		t.Fatalf("len = %d, want 130", q.len())
	}
	capBefore := len(q.buf)
	for i := 51; i <= 180; i++ {
		if got := q.pop(); got != mem.Handle(i) {
			t.Fatalf("pop #%d = %d (FIFO order lost across grow/wrap)", i, got)
		}
	}
	// Steady-state churn within the settled capacity must not reallocate.
	for round := 0; round < 5; round++ {
		for i := 0; i < capBefore; i++ {
			q.push(mem.Handle(i + 1))
		}
		for i := 0; i < capBefore; i++ {
			q.pop()
		}
	}
	if len(q.buf) != capBefore {
		t.Fatalf("ring reallocated during steady-state churn: cap %d -> %d", capBefore, len(q.buf))
	}
}

// twoPhaseJudge marks phase-one verdicts provisional and frees only
// odd-era blocks in phase two, mimicking WFE's shape.
type twoPhaseJudge struct {
	fakeJudge
	arena   *mem.Arena
	seconds atomic.Int64
}

func (j *twoPhaseJudge) Gather(tid int, s *Snapshot)          { j.fakeJudge.Gather(tid, s) }
func (j *twoPhaseJudge) NeedSecond(tid int, s *Snapshot) bool { return true }
func (j *twoPhaseJudge) GatherSecond(tid int, s *Snapshot) {
	j.seconds.Add(1)
	s.SetAux(1, 1) // phase marker
}

func (j *twoPhaseJudge) CanFree(tid int, s *Snapshot, blk mem.Handle) bool {
	if s.Aux(1) == 0 {
		return true // phase one clears everything — provisionally
	}
	return j.arena.RetireEra(blk)%2 == 1
}

func TestRetirerTwoPhase(t *testing.T) {
	a := testArena(t, 1<<10, 1)
	j := &twoPhaseJudge{arena: a}
	r := NewRetirer(a, Config{MaxThreads: 1, CleanupFreq: 1 << 30}, j)

	var odd, even []mem.Handle
	for i := 0; i < 6; i++ {
		blk := a.Alloc(0)
		a.SetRetireEra(blk, uint64(i))
		r.Add(0, blk)
		if i%2 == 1 {
			odd = append(odd, blk)
		} else {
			even = append(even, blk)
		}
	}
	r.Scan(0)
	if j.seconds.Load() != 1 {
		t.Fatalf("second gathers = %d, want 1", j.seconds.Load())
	}
	for _, blk := range odd {
		if a.Live(blk) {
			t.Fatal("phase-two-approved block survived")
		}
	}
	for _, blk := range even {
		if !a.Live(blk) {
			t.Fatal("phase-two-rejected block was freed")
		}
	}
	if r.Unreclaimed() != len(even) {
		t.Fatalf("Unreclaimed = %d, want %d", r.Unreclaimed(), len(even))
	}
}

func TestRetirerNilJudgeCountsOnly(t *testing.T) {
	a := testArena(t, 1<<8, 1)
	r := NewRetirer(a, Config{MaxThreads: 1, CleanupFreq: 1}, nil)
	for i := 0; i < 10; i++ {
		r.Retire(0, a.Alloc(0))
	}
	if r.Unreclaimed() != 10 {
		t.Fatalf("Unreclaimed = %d, want 10 (leak mode counts)", r.Unreclaimed())
	}
	if st := r.Stats(); st.Scans != 0 || st.Blocks != 0 {
		t.Fatalf("leak mode ran scans: %+v", st)
	}
	r.Scan(0) // must be a no-op, not a panic
}

func TestRetirerStepTelemetry(t *testing.T) {
	a := testArena(t, 1<<8, 2)
	r := NewRetirer(a, Config{MaxThreads: 2}, &fakeJudge{})
	if r.MaxSteps() != 0 || r.StepQuantile(0.99) != 0 {
		t.Fatal("fresh retirer reports steps")
	}
	for i := 0; i < 99; i++ {
		r.RecordSteps(0, 1)
	}
	r.RecordSteps(1, 200) // beyond the bucket range; max stays exact
	if got := r.MaxSteps(); got != 200 {
		t.Fatalf("MaxSteps = %d, want 200", got)
	}
	if got := r.StepQuantile(0.5); got != 1 {
		t.Fatalf("p50 = %d, want 1", got)
	}
	if got := r.StepQuantile(1.0); got != StepHistBuckets-1 {
		t.Fatalf("p100 bucket = %d, want %d", got, StepHistBuckets-1)
	}
}

// intervalFakeJudge is a fakeJudge that declares the interval judge kind,
// like 2GEIBR and WFE-IBR do.
type intervalFakeJudge struct{ fakeJudge }

func (j *intervalFakeJudge) JudgeKind() JudgeKind { return IntervalJudge }

func TestRetirerCutoffResolution(t *testing.T) {
	a := testArena(t, 1<<8, 1)
	// The deterministic Config.SortCutoff override wins for both judge
	// kinds — calibration is only the zero-value default.
	r := NewRetirer(a, Config{MaxThreads: 1, SortCutoff: 7}, &fakeJudge{})
	if r.Cutoff() != 7 {
		t.Fatalf("era-judge Cutoff = %d, want the configured 7", r.Cutoff())
	}
	ri := NewRetirer(a, Config{MaxThreads: 1, SortCutoff: 9}, &intervalFakeJudge{})
	if ri.Cutoff() != 9 {
		t.Fatalf("interval-judge Cutoff = %d, want the configured 9", ri.Cutoff())
	}
	// Auto mode resolves the crossover for the judge's declared kind.
	auto := NewRetirer(a, Config{MaxThreads: 1}, &fakeJudge{})
	if auto.Cutoff() != CalibrateKind(EraJudge) {
		t.Fatalf("Cutoff = %d, want the era-calibrated %d", auto.Cutoff(), CalibrateKind(EraJudge))
	}
	autoI := NewRetirer(a, Config{MaxThreads: 1}, &intervalFakeJudge{})
	if autoI.Cutoff() != CalibrateKind(IntervalJudge) {
		t.Fatalf("Cutoff = %d, want the interval-calibrated %d", autoI.Cutoff(), CalibrateKind(IntervalJudge))
	}
}

func TestCalibrateIsCachedAndSane(t *testing.T) {
	for _, kind := range []JudgeKind{EraJudge, IntervalJudge} {
		c1, c2 := CalibrateKind(kind), CalibrateKind(kind)
		if c1 != c2 {
			t.Fatalf("CalibrateKind(%v) not cached: %d then %d", kind, c1, c2)
		}
		if c1 < 2 || c1 > calibrateSizes[len(calibrateSizes)-1]*2 {
			t.Fatalf("CalibrateKind(%v) = %d, outside the probe range", kind, c1)
		}
	}
	if Calibrate() != CalibrateKind(EraJudge) {
		t.Fatal("Calibrate() diverged from CalibrateKind(EraJudge)")
	}
}

// TestRetireRingShrinkOnSettle drives a churn spike (growing the retire
// ring to its highwater), then settles with a trickle of pinned retires:
// after shrinkAfter consecutive under-quarter scans the ring must halve,
// keep halving per settled window down to minRingCap, and never drop an
// entry across any shrink.
func TestRetireRingShrinkOnSettle(t *testing.T) {
	const spike = 2000
	a := testArena(t, 1<<13, 1)
	free := false
	j := &fakeJudge{canFree: func(int, *Snapshot, mem.Handle) bool { return free }}
	r := NewRetirer(a, Config{MaxThreads: 1, CleanupFreq: 1 << 30}, j)

	for i := 0; i < spike; i++ {
		r.Add(0, a.Alloc(0))
	}
	r.Scan(0) // judges all, frees none: the ring is at its churn highwater
	q := &r.threads[0].ring
	spikeCap := len(q.buf)
	if spikeCap < spike {
		t.Fatalf("ring capacity %d after a %d-block spike", spikeCap, spike)
	}

	free = true
	r.Scan(0) // the spike drains
	if r.Unreclaimed() != 0 {
		t.Fatalf("backlog %d after draining scan", r.Unreclaimed())
	}
	if len(q.buf) != spikeCap {
		t.Fatalf("ring shrank after one settled scan (cap %d -> %d); want %d consecutive",
			spikeCap, len(q.buf), shrinkAfter)
	}

	// Settle: one pinned retire per scan keeps occupancy far under a
	// quarter of capacity. Capacity must halve every shrinkAfter scans
	// while every pinned entry stays queued.
	free = false
	var pinned []mem.Handle
	for len(q.buf) > minRingCap {
		capBefore := len(q.buf)
		for i := 0; i < shrinkAfter; i++ {
			blk := a.Alloc(0)
			pinned = append(pinned, blk)
			r.Add(0, blk)
			r.Scan(0)
		}
		if len(q.buf) != capBefore/2 {
			t.Fatalf("ring cap %d after %d settled scans, want %d", len(q.buf), shrinkAfter, capBefore/2)
		}
		if r.Unreclaimed() != len(pinned) {
			t.Fatalf("shrink dropped entries: backlog %d, want %d", r.Unreclaimed(), len(pinned))
		}
	}
	if len(q.buf) != minRingCap {
		t.Fatalf("ring cap %d after full settle, want the %d floor", len(q.buf), minRingCap)
	}

	// Every pinned entry survived the halvings: a final permissive scan
	// frees exactly them.
	free = true
	r.Scan(0)
	if r.Unreclaimed() != 0 {
		t.Fatalf("backlog %d after final scan", r.Unreclaimed())
	}
	for _, blk := range pinned {
		if a.Live(blk) {
			t.Fatalf("block %d lost across a shrink (never freed)", blk)
		}
	}

	// A re-spike must still be absorbed: the shrunk ring grows again.
	free = false
	for i := 0; i < spike; i++ {
		r.Add(0, a.Alloc(0))
	}
	if q.len() != spike {
		t.Fatalf("re-spike lost entries: len %d, want %d", q.len(), spike)
	}
}

// TestRetirerProbe: the tick-sampling hook must agree with the individual
// telemetry reads it aggregates.
func TestRetirerProbe(t *testing.T) {
	a := testArena(t, 1<<10, 2)
	j := &fakeJudge{canFree: func(int, *Snapshot, mem.Handle) bool { return false }}
	r := NewRetirer(a, Config{MaxThreads: 2, CleanupFreq: 4}, j)
	for tid := 0; tid < 2; tid++ {
		for i := 0; i < 10; i++ {
			r.RecordSteps(tid, uint64(i%3)+1)
			r.Retire(tid, a.Alloc(tid))
		}
	}
	p := r.Probe()
	if p.Unreclaimed != r.Unreclaimed() {
		t.Fatalf("Probe.Unreclaimed = %d, Unreclaimed() = %d", p.Unreclaimed, r.Unreclaimed())
	}
	if p.Scans != r.Stats() {
		t.Fatalf("Probe.Scans = %+v, Stats() = %+v", p.Scans, r.Stats())
	}
	if p.MaxSteps != r.MaxSteps() || p.P99Steps != r.StepQuantile(0.99) {
		t.Fatalf("Probe steps (%d, %d) disagree with (%d, %d)",
			p.MaxSteps, p.P99Steps, r.MaxSteps(), r.StepQuantile(0.99))
	}
}

// TestRetirerConcurrentChurn storms the runtime under -race: every tid
// churns alloc/retire with step recording while other goroutines sample
// the cross-thread counters, then the merged histograms and stats must be
// consistent.
func TestRetirerConcurrentChurn(t *testing.T) {
	const (
		threads = 4
		rounds  = 2000
	)
	a := testArena(t, 1<<14, threads)
	var gate atomic.Uint64 // blocks with RetireEra <= gate may be freed
	j := &fakeJudge{
		gather: func(tid int, s *Snapshot) { s.SetAux(0, gate.Load()) },
		canFree: func(_ int, s *Snapshot, blk mem.Handle) bool {
			return a.RetireEra(blk) <= s.Aux(0)
		},
	}
	r := NewRetirer(a, Config{MaxThreads: threads, CleanupFreq: 8}, j)

	stop := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() { // concurrent telemetry reader
		defer close(samplerDone)
		for {
			select {
			case <-stop:
				return
			default:
				if r.Unreclaimed() < 0 {
					panic("negative backlog")
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				blk := a.Alloc(tid)
				a.SetRetireEra(blk, uint64(i))
				gate.Store(uint64(i))
				r.RecordSteps(tid, uint64(i%5)+1)
				r.Retire(tid, blk)
			}
		}(tid)
	}
	wg.Wait()
	close(stop)
	<-samplerDone

	// Quiescent: drain every ring.
	for tid := 0; tid < threads; tid++ {
		gate.Store(1 << 40)
		r.Scan(tid)
	}
	if got := r.Unreclaimed(); got != 0 {
		t.Fatalf("backlog %d after settling scans", got)
	}
	if r.MaxSteps() != 5 {
		t.Fatalf("MaxSteps = %d, want 5", r.MaxSteps())
	}
	if st := r.Stats(); st.Scans == 0 || st.Blocks == 0 {
		t.Fatalf("no scan telemetry after churn: %+v", st)
	}
	if q := r.StepQuantile(0.99); q == 0 || q > 5 {
		t.Fatalf("p99 steps = %d, want in [1,5]", q)
	}
}
