// The shared retire-side runtime. The paper's schemes differ only in how
// they decide a retired block is safe to free — eras, intervals, hazard
// identities, epoch distance — while the plumbing around that decision is
// scheme-independent: a per-thread retire list, a CleanupFreq-gated scan
// cadence, scan telemetry, and the protect-loop step histograms behind the
// bounded-steps comparison. Retirer owns all of that once; each scheme
// package shrinks to its era/pointer/epoch logic plus a Judge.

package reclaim

import (
	"slices"
	"sync/atomic"
	"time"

	"wfe/internal/failpoint"
	"wfe/internal/mem"
	"wfe/internal/trace"
)

// fpScan fires at Scan entry: an injected error skips the scan (the
// chaos harness's "reclamation stalled" schedule), an injected sleep
// holds the scanning thread inside the scan window.
var fpScan = failpoint.New("retirer-scan")

// A Judge is the scheme-specific half of a cleanup scan. The runtime calls
// Gather exactly once per scan phase to snapshot whatever reservation state
// could protect retired blocks, then CanFree once per retired block against
// that snapshot. Both run on the retiring thread; Gather must tolerate
// concurrent reservation movement (snapshots may only over-approximate —
// every scheme's conservativeness argument relies on gathered state being
// honoured even if it was cleared mid-scan).
type Judge interface {
	// Gather snapshots the reservations into s (s arrives reset; append
	// with AddEra/AddInterval or stash per-scan scalars with SetAux).
	Gather(tid int, s *Snapshot)
	// CanFree reports whether blk, already unlinked and retired, is
	// unprotected by the gathered snapshot and may be recycled.
	CanFree(tid int, s *Snapshot, blk mem.Handle) bool
}

// A PreScanner is a Judge with era bookkeeping tied to the scan cadence:
// PreScan runs immediately before each gated cleanup scan with the block
// whose retirement triggered it. HE and WFE apply the paper's retire-race
// era advance here; EBR attempts its epoch advance.
type PreScanner interface {
	PreScan(tid int, blk mem.Handle)
}

// A RetireObserver is a Judge whose era clock ticks on retirement: OnRetire
// runs on every retirement after blk joins the retire list and before any
// gated scan, with n the thread's 0-based retirement ordinal. The interval
// schemes gate their retire-driven era advance on n here, so retire-only
// phases still make reclamation progress.
type RetireObserver interface {
	OnRetire(tid int, n uint64, blk mem.Handle)
}

// A TwoPhase is a Judge whose first-phase verdicts are only provisional
// while helping is in flight (WFE, paper Figure 4 lines 57-67): blocks the
// first snapshot clears are re-judged against a second snapshot before
// being freed. NeedSecond is consulted once per scan, after Gather;
// GatherSecond snapshots the second phase's reservation classes.
type TwoPhase interface {
	Judge
	NeedSecond(tid int, s *Snapshot) bool
	GatherSecond(tid int, s *Snapshot)
}

// ScanStats is the cleanup-scan telemetry a Retirer accumulates per thread:
// how many scans ran, how many retired blocks they examined, and the
// nanoseconds they spent. Sample quiescently (the counters are
// owner-written).
type ScanStats struct {
	Scans  uint64
	Blocks uint64
	Nanos  uint64
}

// retireThread is one thread's retire-side state. Only the owning tid
// mutates it; the ring's published length and nothing else is read
// cross-thread.
type retireThread struct {
	ring  ring
	count uint64 // retirements; gates the scan cadence
	hist  StepHist
	stats ScanStats
	// Reusable scan scratch: the two phase snapshots and the candidate
	// list blocks cleared by phase one await phase two on.
	snap      Snapshot
	snap2     Snapshot
	survivors []mem.Handle
	_         [64]byte
}

// Retirer is the shared retire-side runtime: per-thread retire rings with
// batched drain scans, the CleanupFreq gating, scan timing and step
// histograms — parameterized by a per-scheme Judge. One Retirer serves all
// of a scheme's threads; every per-tid method follows the package's
// one-goroutine-per-tid contract.
type Retirer struct {
	arena *mem.Arena
	judge Judge
	two   TwoPhase       // judge, if it re-checks survivors (WFE)
	pre   PreScanner     // judge, if it hooks the scan cadence
	obs   RetireObserver // judge, if its clock ticks on retirement

	cleanupFreq uint64
	linearScan  bool
	cutoff      int
	tracer      *trace.Tracer

	threads []retireThread

	// carry is telemetry inherited from a predecessor Retirer via
	// CarryFrom: a live scheme switch builds a fresh runtime, but the
	// Domain's cumulative counters (scan totals, step histograms) must
	// stay monotone across the swap or every trajectory consumer — the
	// Sampler's EWMAs, the advisor's deltas, OpenMetrics counters — would
	// see them jump backwards. Written once before the Retirer is shared;
	// read-only thereafter.
	carry struct {
		stats ScanStats
		hist  StepHist
	}
}

// NewRetirer creates the runtime over arena for cfg.MaxThreads threads.
// A nil judge selects the no-reclamation mode (the leak baseline): Retire
// only counts, no blocks are stored and no scans run.
func NewRetirer(arena *mem.Arena, cfg Config, judge Judge) *Retirer {
	cfg = cfg.Defaults()
	r := &Retirer{
		arena:       arena,
		judge:       judge,
		cleanupFreq: uint64(cfg.CleanupFreq),
		linearScan:  cfg.LinearScan,
		cutoff:      cfg.SortCutoff,
		tracer:      cfg.Tracer,
		threads:     make([]retireThread, cfg.MaxThreads),
	}
	if judge != nil {
		r.two, _ = judge.(TwoPhase)
		r.pre, _ = judge.(PreScanner)
		r.obs, _ = judge.(RetireObserver)
	}
	if r.cutoff == 0 {
		// No deterministic override: use the host crossover for this
		// judge's membership-test shape (interval judges binary-search
		// twice per block, so their crossover sits elsewhere than the era
		// judges' on the same hardware).
		kind := EraJudge
		if k, ok := judge.(Kinder); ok {
			kind = k.JudgeKind()
		}
		r.cutoff = CalibrateKind(kind)
	}
	return r
}

// Cutoff returns the gathered-reservation count below which this Retirer's
// scans keep the linear sweep: Config.SortCutoff if set, the calibrated
// host crossover otherwise.
func (r *Retirer) Cutoff() int { return r.cutoff }

// Judged reports whether this Retirer has a Judge at all. The judge-less
// leak baseline retires by counting alone — scanning it can never free a
// block, so emergency-reclamation paths consult Judged before spending
// scans on a backlog that cannot drain.
func (r *Retirer) Judged() bool { return r.judge != nil }

// Retire appends blk to tid's retire ring and runs the scheme's cadence
// hooks: OnRetire on every retirement, then — every CleanupFreq
// retirements — PreScan followed by a cleanup scan. The very first
// retirement of a tid is on the cadence (count 0), matching the paper's
// retire() which scans when the counter is a CleanupFreq multiple.
func (r *Retirer) Retire(tid int, blk mem.Handle) {
	t := &r.threads[tid]
	r.tracer.Emit(tid, trace.KindRetire, blk, 0)
	if r.judge == nil {
		t.count++
		t.ring.published.Add(1) // leaked, by design; nothing is stored
		return
	}
	t.ring.push(blk)
	t.ring.publish()
	n := t.count
	if r.obs != nil {
		r.obs.OnRetire(tid, n, blk)
	}
	// While an allocation is stalled on the exhausted arena, every retire
	// scans out of cadence: rings are single-writer, so the stalled thread
	// cannot reach this ring's blocks itself — its rescue depends on the
	// ring's owner draining it. The eager-spill mode AddWaiter switched on
	// then moves the frees to the global list where the waiter can claim
	// them. Between stalls this is one relaxed load per retire.
	if n%r.cleanupFreq == 0 || r.arena.Pressured() {
		if r.pre != nil {
			r.pre.PreScan(tid, blk)
		}
		r.Scan(tid)
	}
	t.count++
}

// RetireBatch appends every block in blks to tid's retire ring as one
// burst: the blocks are pushed and published together, the cadence hooks
// (OnRetire, PreScan, the gated Scan) run at most once, and the
// scan-gating retirement counter advances by one for the whole batch.
// This is the retire-side half of the batched-operations amortization:
// a burst of B retires costs one cadence step instead of B, so cleanup
// keeps firing once per CleanupFreq bursts rather than mid-burst.
func (r *Retirer) RetireBatch(tid int, blks []mem.Handle) {
	if len(blks) == 0 {
		return
	}
	t := &r.threads[tid]
	if r.judge == nil {
		for _, blk := range blks {
			r.tracer.Emit(tid, trace.KindRetire, blk, 0)
		}
		t.count++
		t.ring.published.Add(int64(len(blks))) // leaked, by design
		return
	}
	for _, blk := range blks {
		r.tracer.Emit(tid, trace.KindRetire, blk, 0)
		t.ring.push(blk)
	}
	t.ring.publish()
	n := t.count
	last := blks[len(blks)-1]
	if r.obs != nil {
		r.obs.OnRetire(tid, n, last)
	}
	if n%r.cleanupFreq == 0 || r.arena.Pressured() {
		if r.pre != nil {
			r.pre.PreScan(tid, last)
		}
		r.Scan(tid)
	}
	t.count++
}

// Add appends blk to tid's retire ring without the cadence bookkeeping: no
// hooks run, no scan is gated, and the retirement count is untouched. It
// exists for harnesses that stage a retire list and drive Scan explicitly;
// the production path is Retire.
func (r *Retirer) Add(tid int, blk mem.Handle) {
	t := &r.threads[tid]
	t.ring.push(blk)
	t.ring.publish()
}

// Scan drains tid's retire ring through the Judge once: the snapshot is
// gathered, sealed (sorted above the cutoff, unless Config.LinearScan pins
// the reference oracle), and every retired block judged against it —
// freed if clear, re-queued on the ring otherwise. A TwoPhase judge's
// cleared blocks instead await a second gather/judge pass. Outside the
// retire cadence it is the settling primitive: call it on a quiescent tid
// to collapse the backlog.
func (r *Retirer) Scan(tid int) {
	if r.judge == nil {
		return
	}
	if err := fpScan.Eval(tid); err != nil {
		return
	}
	t := &r.threads[tid]
	n := t.ring.len()
	if n == 0 {
		// Nothing to judge, but an empty ring is still a settled one: let
		// the settle streak advance so post-drain quiescent scans shed a
		// spike-grown buffer too.
		t.ring.maybeShrink()
		return
	}
	start := time.Now()
	r.tracer.Emit(tid, trace.KindScanBegin, uint64(n), 0)
	freed := uint64(0)

	s := &t.snap
	s.reset()
	r.judge.Gather(tid, s)
	s.seal(r.linearScan, r.cutoff)
	second := r.two != nil && r.two.NeedSecond(tid, s)

	survivors := t.survivors[:0]
	for i := 0; i < n; i++ {
		blk := t.ring.pop()
		switch {
		case !r.judge.CanFree(tid, s, blk):
			t.ring.push(blk)
		case second:
			survivors = append(survivors, blk)
		default:
			r.arena.Free(tid, blk)
			freed++
		}
	}
	if second {
		s2 := &t.snap2
		s2.reset()
		r.two.GatherSecond(tid, s2)
		s2.seal(r.linearScan, r.cutoff)
		for _, blk := range survivors {
			if r.two.CanFree(tid, s2, blk) {
				r.arena.Free(tid, blk)
				freed++
			} else {
				t.ring.push(blk)
			}
		}
	}
	t.survivors = survivors[:0]
	t.ring.publish()
	t.ring.maybeShrink()
	// Published atomically (single writer) so concurrent trajectory
	// samplers (Probe, Stats) read race-free approximations.
	atomic.AddUint64(&t.stats.Scans, 1)
	atomic.AddUint64(&t.stats.Blocks, uint64(n))
	atomic.AddUint64(&t.stats.Nanos, uint64(time.Since(start)))
	r.tracer.Emit(tid, trace.KindScanEnd, uint64(n), freed)
}

// DrainAll frees every block on tid's retire ring unconditionally, without
// consulting the Judge, and returns how many it freed. It is the live
// scheme switch's drain primitive and is only sound at quiescence: with
// every guard released, every reservation is cleared, so no retired block
// can still be protected. For the judge-less leak mode it resets the
// published count (the leaked blocks themselves are reclaimed separately,
// via the arena's retired-slot sweep).
func (r *Retirer) DrainAll(tid int) int {
	t := &r.threads[tid]
	n := t.ring.len()
	for i := 0; i < n; i++ {
		r.arena.Free(tid, t.ring.pop())
	}
	t.ring.publish()
	t.ring.maybeShrink()
	return n
}

// CarryFrom inherits prev's cumulative telemetry — scan totals and step
// histograms, its own carry included — so counters read through this
// Retirer continue prev's rather than restarting from zero. Call it once,
// on a Retirer not yet shared with other goroutines, while prev is
// quiescent (the live scheme switch does both by construction).
func (r *Retirer) CarryFrom(prev *Retirer) {
	r.carry.stats = prev.Stats()
	prev.mergeHists(&r.carry.hist)
}

// mergeHists accumulates every thread's step histogram plus the carry into
// sum.
func (r *Retirer) mergeHists(sum *StepHist) {
	for i := range r.threads {
		sum.Merge(&r.threads[i].hist)
	}
	sum.Merge(&r.carry.hist)
}

// Unreclaimed reports the retired-but-not-yet-freed block count across all
// threads, the paper's reclamation-speed metric. Approximate under
// concurrency (each ring's length is published, not fenced).
func (r *Retirer) Unreclaimed() int {
	total := int64(0)
	for i := range r.threads {
		total += r.threads[i].ring.published.Load()
	}
	return int(total)
}

// RecordSteps counts one GetProtected call by tid that took steps loop
// iterations — the per-scheme protect loops feed the bounded-steps
// histograms through here. Owner-thread only.
func (r *Retirer) RecordSteps(tid int, steps uint64) {
	r.threads[tid].hist.Record(steps)
}

// MaxSteps reports the worst protect-loop iteration count any single
// GetProtected call needed, across all threads. Sample quiescently.
func (r *Retirer) MaxSteps() uint64 {
	max := r.carry.hist.Max()
	for i := range r.threads {
		if m := r.threads[i].hist.Max(); m > max {
			max = m
		}
	}
	return max
}

// StepQuantile returns the q-quantile of per-call GetProtected step counts
// across all threads (StepQuantile(0.99) is the BENCH artifact's p99).
// Sample quiescently: the histograms are owner-written.
func (r *Retirer) StepQuantile(q float64) uint64 {
	var sum StepHist
	r.mergeHists(&sum)
	return sum.Quantile(q)
}

// Stats sums the per-thread cleanup-scan telemetry. Approximate under
// concurrency; exact quiescently.
func (r *Retirer) Stats() ScanStats {
	s := r.carry.stats
	for i := range r.threads {
		t := &r.threads[i]
		s.Scans += atomic.LoadUint64(&t.stats.Scans)
		s.Blocks += atomic.LoadUint64(&t.stats.Blocks)
		s.Nanos += atomic.LoadUint64(&t.stats.Nanos)
	}
	return s
}

// A Probe is one consistent retire-side telemetry sample: the backlog, the
// cumulative scan counters and the step-histogram quantiles, gathered in a
// single pass over the per-thread state. It is the tick-sampling hook for
// trajectory recorders (internal/chaos, the bench samplers): one call per
// tick instead of four, so a sampler reads each thread's counters once.
// Like every retire-side read it is exact only quiescently; concurrent
// samples are monotonic-counter approximations, fine for trajectories.
type Probe struct {
	Unreclaimed int
	Scans       ScanStats
	MaxSteps    uint64
	P99Steps    uint64
}

// Probe gathers one telemetry sample across all threads.
func (r *Retirer) Probe() Probe {
	var p Probe
	p.Scans = r.carry.stats
	var backlog int64
	var hist StepHist
	hist.Merge(&r.carry.hist)
	for i := range r.threads {
		t := &r.threads[i]
		backlog += t.ring.published.Load()
		p.Scans.Scans += atomic.LoadUint64(&t.stats.Scans)
		p.Scans.Blocks += atomic.LoadUint64(&t.stats.Blocks)
		p.Scans.Nanos += atomic.LoadUint64(&t.stats.Nanos)
		hist.Merge(&t.hist)
	}
	p.Unreclaimed = int(backlog)
	p.MaxSteps = hist.Max()
	p.P99Steps = hist.Quantile(0.99)
	return p
}

// ring is a single-writer circular retire list: the owning tid pushes
// retired handles at the tail and the scan drains from the head, re-pushing
// survivors — steady-state churn reuses one power-of-two buffer with no
// per-scan compaction or reallocation. Only the published length is read
// cross-thread.
type ring struct {
	buf       []mem.Handle
	head      uint64 // next pop position (monotonic; masked on access)
	tail      uint64 // next push position
	settled   int    // consecutive scans ending under a quarter of capacity
	published atomic.Int64
}

const (
	minRingCap = 64
	// shrinkAfter is the number of consecutive post-scan occupancy checks
	// under a quarter of capacity before the ring halves. A churn spike
	// grows a ring to its highwater; without shrinking it would hold that
	// buffer for the rest of the domain's life, so once the spike clearly
	// settles (not one lucky scan — several in a row) the capacity follows
	// the backlog back down, one halving per settled window.
	shrinkAfter = 4
)

func (q *ring) len() int { return int(q.tail - q.head) }

func (q *ring) push(h mem.Handle) {
	if int(q.tail-q.head) == len(q.buf) {
		q.grow()
	}
	q.buf[q.tail&uint64(len(q.buf)-1)] = h
	q.tail++
}

func (q *ring) pop() mem.Handle {
	h := q.buf[q.head&uint64(len(q.buf)-1)]
	q.head++
	return h
}

// publish stores the current length for cross-thread readers (Unreclaimed).
func (q *ring) publish() { q.published.Store(int64(q.tail - q.head)) }

// grow doubles the buffer (from minRingCap), linearizing head to index 0 so
// the power-of-two masking stays valid. Growing resets the settle streak: a
// ring that just grew is at its churn highwater, not settling.
func (q *ring) grow() {
	q.resize(max(len(q.buf)*2, minRingCap))
	q.settled = 0
}

// maybeShrink halves the buffer once occupancy has stayed under a quarter
// of capacity for shrinkAfter consecutive scans — the shrink-on-settle
// counterpart of grow, called at the end of each cleanup scan. The quarter
// threshold keeps the halved ring at most half full, so a shrink can never
// force the very next push to grow; minRingCap floors the descent.
func (q *ring) maybeShrink() {
	if len(q.buf) <= minRingCap || q.len() >= len(q.buf)/4 {
		q.settled = 0
		return
	}
	if q.settled++; q.settled < shrinkAfter {
		return
	}
	q.resize(len(q.buf) / 2)
	q.settled = 0
}

// resize moves the live entries into a buffer of capacity n (a power of
// two ≥ len), linearizing head to index 0 so the masking stays valid.
func (q *ring) resize(n int) {
	nb := make([]mem.Handle, n)
	cnt := int(q.tail - q.head)
	for i := 0; i < cnt; i++ {
		nb[i] = q.buf[(q.head+uint64(i))&uint64(len(q.buf)-1)]
	}
	q.buf, q.head, q.tail = nb, 0, uint64(cnt)
}

// Snapshot is the reservation snapshot one cleanup scan gathers and judges
// against. The Retirer owns and reuses the buffers; a Judge appends eras or
// intervals during Gather and queries membership during CanFree. After the
// gather the runtime seals the snapshot: above the sort cutoff the
// endpoint slices are sorted once (after the gather, preserving any
// lemma-mandated read order) and membership binary-searches them; below it
// — or whenever Config.LinearScan pins the reference oracle — membership
// keeps the linear sweep.
type Snapshot struct {
	los, his []uint64
	aux      [2]uint64
	paired   bool
	linear   bool
}

func (s *Snapshot) reset() {
	s.los = s.los[:0]
	s.his = s.his[:0]
	s.aux = [2]uint64{}
	s.paired = false
	s.linear = false
}

// seal fixes the scan mode and sorts the gathered endpoints if binary
// search will be used.
func (s *Snapshot) seal(forceLinear bool, cutoff int) {
	s.linear = forceLinear || len(s.los) < cutoff
	if !s.linear {
		slices.Sort(s.los)
		if s.paired {
			slices.Sort(s.his)
		}
	}
}

// AddEra appends a point reservation (an era, an epoch, or a raw handle
// for identity schemes).
func (s *Snapshot) AddEra(e uint64) { s.los = append(s.los, e) }

// AddInterval appends an interval reservation [lo, hi]. The pairing by
// index survives until seal sorts the endpoint slices independently (the
// counting membership test never needs it back).
func (s *Snapshot) AddInterval(lo, hi uint64) {
	s.los = append(s.los, lo)
	s.his = append(s.his, hi)
	s.paired = true
}

// SetAux stashes a per-scan scalar (i in 0..1): EBR keeps the scan's epoch
// here, WFE its helping-in-flight flag.
func (s *Snapshot) SetAux(i int, v uint64) { s.aux[i] = v }

// Aux reads a per-scan scalar stored by SetAux.
func (s *Snapshot) Aux(i int) uint64 { return s.aux[i] }

// Linear reports whether this scan judges by the linear reference sweep
// (below the cutoff, or pinned by Config.LinearScan).
func (s *Snapshot) Linear() bool { return s.linear }

// Eras returns the gathered point reservations — sorted iff !Linear().
func (s *Snapshot) Eras() []uint64 { return s.los }

// Intervals returns the gathered interval endpoints — each slice sorted
// independently iff !Linear().
func (s *Snapshot) Intervals() (los, his []uint64) { return s.los, s.his }

// EraReserved reports whether any gathered point reservation lands in the
// closed lifespan [lo, hi], by whichever test seal selected.
func (s *Snapshot) EraReserved(lo, hi uint64) bool {
	if s.linear {
		for _, e := range s.los {
			if lo <= e && hi >= e {
				return true
			}
		}
		return false
	}
	return ReservedInRange(s.los, lo, hi)
}

// HandleReserved reports whether the exact value h was gathered — the
// identity membership of Hazard Pointers (a degenerate [h, h] lifespan).
// The interval schemes have no analogous helper by design: their
// membership tests live in the scheme packages' canDelete, whose linear
// arm doubles as the property-tested reference oracle.
func (s *Snapshot) HandleReserved(h uint64) bool { return s.EraReserved(h, h) }
