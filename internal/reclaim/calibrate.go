package reclaim

import (
	"slices"
	"sync"
	"time"
)

// DefaultSortCutoff is the linear/sorted crossover fallback: the
// gathered-reservation count below which the per-block linear sweep beat
// sort-once-plus-binary-search on the original development host (measured
// by cmd/wfebench -ablation scan). Calibrate measures the actual crossover
// per host; this constant sits mid-range among its probe sizes and is the
// answer when the measurement is degenerate (a clock too coarse to
// separate the two arms).
const DefaultSortCutoff = 32

// JudgeKind classifies a Judge by the shape of its membership test, which
// is what the linear/sorted crossover depends on: an era judge runs one
// binary search per retired block (ReservedInRange), an interval judge two
// (IntervalsOverlap counts endpoints on both sides). The two kinds
// therefore have different crossover constants on the same host, so
// Calibrate measures them separately.
type JudgeKind int

const (
	// EraJudge gathers point reservations (eras, epochs, hazard handles):
	// HP, EBR, HE, WFE.
	EraJudge JudgeKind = iota
	// IntervalJudge gathers [lower, upper] reservation intervals:
	// 2GEIBR, WFE-IBR.
	IntervalJudge

	numJudgeKinds
)

// String returns the kind's calibration-table name.
func (k JudgeKind) String() string {
	if k == IntervalJudge {
		return "interval"
	}
	return "era"
}

// A Kinder is a Judge that declares its kind. Judges that do not implement
// it are treated as era judges (the majority, and the cheaper probe).
type Kinder interface {
	JudgeKind() JudgeKind
}

var (
	calibrateOnces  [numJudgeKinds]sync.Once
	calibratedValue [numJudgeKinds]int

	// calibrateSink absorbs the probe loops' results so their work is
	// externally observable and cannot be optimized away.
	calibrateSink uint64
)

// Calibrate measures this host's era-judge linear/sorted cleanup crossover
// once per process — shorthand for CalibrateKind(EraJudge), kept as the
// stable name the rest of the repository grew up calling.
func Calibrate() int { return CalibrateKind(EraJudge) }

// CalibrateKind measures this host's linear/sorted cleanup crossover for
// one judge kind, once per process per kind, and returns the
// gathered-reservation count at which a scan of that kind should start
// sorting its snapshot. NewRetirer consults it whenever Config.SortCutoff
// is zero, keyed by the judge's declared kind, so every Domain picks the
// cutoff for the hardware and membership test it actually runs instead of
// inheriting one constant for both: interval judges pay two binary
// searches per retired block where era judges pay one, so their sorted arm
// amortises later.
//
// The measurement is a coarse one-shot estimate (a few hundred
// microseconds per kind): for growing snapshot sizes G it times judging a
// fixed retired batch by the kind's linear sweep against
// sort-once-plus-binary-search, and reports the first G where sorting
// wins. The two tests are property-tested equivalent
// (TestSortedScanMatchesLinearOracle), so whatever value noise produces is
// purely a cost choice, never a correctness one. Override it
// deterministically via Config.SortCutoff, which wins for both kinds.
func CalibrateKind(kind JudgeKind) int {
	if kind < 0 || kind >= numJudgeKinds {
		kind = EraJudge
	}
	calibrateOnces[kind].Do(func() { calibratedValue[kind] = calibrate(kind) })
	return calibratedValue[kind]
}

// calibrateSizes are the probed snapshot sizes, bracketing
// DefaultSortCutoff on both sides.
var calibrateSizes = [...]int{8, 16, 24, 32, 48, 64, 96, 128}

func calibrate(kind JudgeKind) int {
	const (
		blocks = 64 // retired blocks judged per scan (a CleanupFreq-scale backlog)
		reps   = 16 // scans per timed arm, to rise above timer granularity
	)
	// Deterministic pseudo-random eras and lifespans (xorshift64) so both
	// arms judge identical data; publishing the sink on every exit path
	// keeps the timed loops' work observable (dead-code elimination would
	// zero both arms and collapse the cutoff to the first probe size).
	rng := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	var sink uint64
	defer func() { calibrateSink += sink }()

	maxG := calibrateSizes[len(calibrateSizes)-1]
	los := make([]uint64, 0, maxG) // gathered reservations (interval lowers, or the era points)
	his := make([]uint64, 0, maxG) // gathered interval uppers (interval kind only)
	sortedLos := make([]uint64, 0, maxG)
	sortedHis := make([]uint64, 0, maxG)
	blkLo := make([]uint64, blocks) // judged lifespans [blkLo, blkHi]
	blkHi := make([]uint64, blocks)

	for _, g := range calibrateSizes {
		los, his = los[:0], his[:0]
		for i := 0; i < g; i++ {
			lo := next() % 1024
			los = append(los, lo)
			his = append(his, lo+next()%16)
		}
		for i := range blkLo {
			blkLo[i] = next() % 1024
			blkHi[i] = blkLo[i] + next()%16
		}

		linStart := time.Now()
		for rep := 0; rep < reps; rep++ {
			for b := 0; b < blocks; b++ {
				if kind == IntervalJudge {
					// The paired reference sweep of the interval schemes'
					// canDelete: overlap against each [los[i], his[i]].
					for i := range los {
						if blkLo[b] <= his[i] && blkHi[b] >= los[i] {
							sink++
							break
						}
					}
				} else {
					for _, e := range los {
						if blkLo[b] <= e && blkHi[b] >= e {
							sink++
							break
						}
					}
				}
			}
		}
		lin := time.Since(linStart)

		srtStart := time.Now()
		for rep := 0; rep < reps; rep++ {
			// Each real scan re-gathers and re-sorts its snapshot, so the
			// sort is inside the timed region — both endpoint slices for
			// the interval kind, mirroring Snapshot.seal.
			sortedLos = append(sortedLos[:0], los...)
			slices.Sort(sortedLos)
			if kind == IntervalJudge {
				sortedHis = append(sortedHis[:0], his...)
				slices.Sort(sortedHis)
				for b := 0; b < blocks; b++ {
					if IntervalsOverlap(sortedLos, sortedHis, blkLo[b], blkHi[b]) {
						sink++
					}
				}
			} else {
				for b := 0; b < blocks; b++ {
					if ReservedInRange(sortedLos, blkLo[b], blkHi[b]) {
						sink++
					}
				}
			}
		}
		srt := time.Since(srtStart)

		if lin == 0 || srt == 0 {
			// The clock cannot separate the arms at all on this host;
			// measuring more would only amplify noise.
			return DefaultSortCutoff
		}
		if srt <= lin {
			return max(g, 2) // a cutoff of g keeps linear strictly below g
		}
	}
	// Linear won at every probed size: place the cutoff just past the
	// probe range rather than extrapolating further.
	return calibrateSizes[len(calibrateSizes)-1] * 2
}
