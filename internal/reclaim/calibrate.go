package reclaim

import (
	"slices"
	"sync"
	"time"
)

// DefaultSortCutoff is the linear/sorted crossover fallback: the
// gathered-reservation count below which the per-block linear sweep beat
// sort-once-plus-binary-search on the original development host (measured
// by cmd/wfebench -ablation scan). Calibrate measures the actual crossover
// per host; this constant sits mid-range among its probe sizes and is the
// answer when the measurement is degenerate (a clock too coarse to
// separate the two arms).
const DefaultSortCutoff = 32

var (
	calibrateOnce   sync.Once
	calibratedValue int

	// calibrateSink absorbs the probe loops' results so their work is
	// externally observable and cannot be optimized away.
	calibrateSink uint64
)

// Calibrate measures this host's linear/sorted cleanup crossover once per
// process and returns the gathered-reservation count at which a scan
// should start sorting its snapshot. NewRetirer consults it whenever
// Config.SortCutoff is zero, so every Domain picks the cutoff for the
// hardware it actually runs on instead of inheriting the constant of the
// machine the ablation was first run on.
//
// The measurement is a coarse one-shot estimate (a few hundred
// microseconds): for growing snapshot sizes G it times judging a fixed
// retired batch by the linear sweep against sort-once-plus-binary-search,
// and reports the first G where sorting wins. The two tests are
// property-tested equivalent (TestSortedScanMatchesLinearOracle), so
// whatever value noise produces is purely a cost choice, never a
// correctness one. Override it deterministically via Config.SortCutoff.
func Calibrate() int {
	calibrateOnce.Do(func() { calibratedValue = calibrate() })
	return calibratedValue
}

// calibrateSizes are the probed snapshot sizes, bracketing
// DefaultSortCutoff on both sides.
var calibrateSizes = [...]int{8, 16, 24, 32, 48, 64, 96, 128}

func calibrate() int {
	const (
		blocks = 64 // retired blocks judged per scan (a CleanupFreq-scale backlog)
		reps   = 16 // scans per timed arm, to rise above timer granularity
	)
	// Deterministic pseudo-random eras and lifespans (xorshift64) so both
	// arms judge identical data; publishing the sink on every exit path
	// keeps the timed loops' work observable (dead-code elimination would
	// zero both arms and collapse the cutoff to the first probe size).
	rng := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	var sink uint64
	defer func() { calibrateSink += sink }()

	eras := make([]uint64, 0, calibrateSizes[len(calibrateSizes)-1])
	sorted := make([]uint64, 0, cap(eras))
	los := make([]uint64, blocks)
	his := make([]uint64, blocks)

	for _, g := range calibrateSizes {
		eras = eras[:0]
		for i := 0; i < g; i++ {
			eras = append(eras, next()%1024)
		}
		for i := range los {
			los[i] = next() % 1024
			his[i] = los[i] + next()%16
		}

		linStart := time.Now()
		for rep := 0; rep < reps; rep++ {
			for b := 0; b < blocks; b++ {
				for _, e := range eras {
					if los[b] <= e && his[b] >= e {
						sink++
						break
					}
				}
			}
		}
		lin := time.Since(linStart)

		srtStart := time.Now()
		for rep := 0; rep < reps; rep++ {
			// Each real scan re-gathers and re-sorts its snapshot, so the
			// sort is inside the timed region.
			sorted = append(sorted[:0], eras...)
			slices.Sort(sorted)
			for b := 0; b < blocks; b++ {
				if ReservedInRange(sorted, los[b], his[b]) {
					sink++
				}
			}
		}
		srt := time.Since(srtStart)

		if lin == 0 || srt == 0 {
			// The clock cannot separate the arms at all on this host;
			// measuring more would only amplify noise.
			return DefaultSortCutoff
		}
		if srt <= lin {
			return max(g, 2) // a cutoff of g keeps linear strictly below g
		}
	}
	// Linear won at every probed size: place the cutoff just past the
	// probe range rather than extrapolating further.
	return calibrateSizes[len(calibrateSizes)-1] * 2
}
