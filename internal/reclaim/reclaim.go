// Package reclaim defines the common safe-memory-reclamation (SMR) interface
// every scheme in this repository implements and every data structure is
// written against, mirroring the Hazard-Pointers-compatible API the paper
// standardises on (get_protected / retire / clear / alloc_block) plus the
// per-operation Begin hook that epoch- and interval-based schemes need.
//
// Threads are identified by small dense ids (tid in 0..MaxThreads-1)
// assigned by the caller; every per-thread method must be called with a
// stable tid, from one goroutine at a time per tid.
package reclaim

import (
	"math"
	"sync/atomic"

	"wfe/internal/mem"
	"wfe/internal/trace"
)

// Scheme is a universal memory reclamation scheme.
type Scheme interface {
	// Name identifies the scheme in benchmark output ("WFE", "HE", ...).
	Name() string

	// Begin marks the start of a data-structure operation. Epoch-based
	// schemes announce activity here; pointer- and era-based schemes no-op.
	Begin(tid int)

	// GetProtected safely reads the link value stored at src and protects
	// the block it refers to until Clear (or until the reservation at the
	// same index is overwritten by a later GetProtected).
	//
	// index selects one of the thread's MaxHEs reservation slots. parent is
	// the block containing src (0 when src is a structure root); only WFE
	// uses it, to keep the parent alive for helpers (paper §3.4).
	GetProtected(tid int, src *atomic.Uint64, index int, parent mem.Handle) uint64

	// Retire marks a block, already unlinked from the structure, for
	// deletion once no in-flight reader can hold it.
	Retire(tid int, h mem.Handle)

	// Clear resets all reservations made by the thread (paper: clear()).
	// Data structures call it at the end of every operation.
	Clear(tid int)

	// BeginBatch opens one protection span intended to cover a whole burst
	// of operations, and reports whether that single span suffices.
	// Era-, epoch- and interval-clocked schemes (EBR, HE, WFE, 2GEIBR,
	// WFE-IBR) return true: one announced epoch or reservation interval
	// covers every block protected inside the span, so the batch runner may
	// keep it open across items. Identity schemes (HP) return false — a
	// hazard slot protects exactly one node, so the runner must still Clear
	// between items to rotate hazard slots per node, exactly as in the
	// per-op path. Encoding the distinction here keeps call sites free of
	// per-scheme special cases.
	BeginBatch(tid int) bool

	// EndBatch closes the span opened by BeginBatch, resetting every
	// reservation the batch made (the batch-wide Clear).
	EndBatch(tid int)

	// RetireBatch retires every block of an operation burst at once: each
	// block is era-stamped and queued like Retire would, but the
	// scan-gating retirement counter advances once for the whole batch, so
	// the cleanup cadence stays amortized across the burst instead of
	// firing mid-batch. Stamping every block with the clock value read at
	// submission is safe: the clock is monotone, so that value is ≥ the
	// clock at each block's unlink and the stamp only over-approximates
	// the block's lifespan.
	RetireBatch(tid int, blks []mem.Handle)

	// Alloc allocates a block and stamps its allocation era
	// (paper: alloc_block()). It panics when the arena is exhausted;
	// callers that can degrade gracefully use TryAlloc.
	Alloc(tid int) mem.Handle

	// TryAlloc is Alloc with backpressure: it returns (0, false) instead
	// of panicking when the arena is exhausted, after running the same
	// era-clock bookkeeping Alloc would. The Domain's emergency
	// reclamation pipeline sits on top of it.
	TryAlloc(tid int) (mem.Handle, bool)

	// Unreclaimed reports the number of retired-but-not-yet-freed blocks,
	// the paper's reclamation-speed metric. The snapshot may be approximate
	// under concurrency.
	Unreclaimed() int

	// Arena exposes the underlying block arena.
	Arena() *mem.Arena

	// Retirer exposes the scheme's shared retire-side runtime — the one
	// path through which the Domain and harness layers read the uniform
	// retire/cleanup/step telemetry every scheme now reports.
	Retirer() *Retirer
}

// ClockAdvancer is implemented by the era/epoch-clocked schemes (WFE, HE,
// EBR, 2GEIBR, WFE-IBR): AdvanceClock ticks the global clock out of its
// allocation cadence. Emergency reclamation uses it so a scan triggered by
// arena exhaustion judges retired blocks against a fresher clock than the
// one the stalled allocation path last advanced; the pointer-identity
// schemes (HP) and the leak baseline have no clock and do not implement it.
type ClockAdvancer interface {
	AdvanceClock(tid int)
}

// Config carries the tuning parameters shared by the schemes, with the
// paper's evaluation defaults (§5).
type Config struct {
	// MaxThreads bounds the number of participating threads.
	MaxThreads int
	// MaxHEs is the number of reservations per thread (paper: max_hes).
	MaxHEs int
	// EraFreq is ν: the global era/epoch is incremented once per EraFreq
	// allocations per thread.
	EraFreq int
	// CleanupFreq is how many retirements pass between retire-list scans.
	CleanupFreq int
	// MaxAttempts bounds WFE's fast path before it requests helping.
	MaxAttempts int
	// ForceSlowPath makes WFE take the slow path on every GetProtected,
	// the stress configuration the paper validates with (§5).
	ForceSlowPath bool
	// LinearScan forces every cleanup scan back to the pre-overhaul
	// O(R×G) per-block linear reservation sweep instead of the
	// sorted-snapshot binary search (R retired blocks against G gathered
	// reservations). It exists for the scan ablation (cmd/wfebench
	// -ablation scan) and as the oracle configuration of the sorted-scan
	// property tests; production configurations leave it false.
	LinearScan bool
	// SortCutoff is the gathered-reservation count below which a cleanup
	// scan keeps the linear sweep even in sorted-scan mode (sorting a tiny
	// snapshot costs more than sweeping it). Zero selects the host
	// crossover Calibrate measures once per process; the two tests are
	// property-tested equivalent, so the value is purely a cost choice.
	SortCutoff int
	// InitialEra, when above a scheme's natural starting value, seeds the
	// global era/epoch clock. Live scheme switching depends on it: blocks
	// that survive a switch keep allocation-era stamps from the previous
	// scheme's clock, and a fresh clock restarting below them would judge
	// an inverted [alloc, retire] lifespan as empty — and free a block a
	// current reader still protects. Seeding the clock at (or above) the
	// old clock's final value keeps every stale stamp ≤ every new era, so
	// stale lifespans only over-approximate. Zero means the scheme default.
	InitialEra uint64
	// Tracer, when non-nil, receives reclamation lifecycle events
	// (retire, scan begin/end, era advances). A nil or disabled tracer
	// costs one branch per event site.
	Tracer *trace.Tracer
}

// Defaults fills unset fields with the paper's evaluation parameters.
//
// Invariant: the zero-value defaults below are the §5 methodology values —
// max_hes = 8 reservations, ν = 150 allocations per era increment, a
// retire-list scan every 30 retirements, and 16 fast-path attempts before
// WFE requests helping. Benchmarks that reproduce paper figures rely on
// these exact numbers; change them only together with the harness and the
// README's figure documentation.
func (c Config) Defaults() Config {
	if c.MaxThreads == 0 {
		c.MaxThreads = 8
	}
	if c.MaxHEs == 0 {
		c.MaxHEs = 8
	}
	if c.EraFreq == 0 {
		c.EraFreq = 150
	}
	if c.CleanupFreq == 0 {
		c.CleanupFreq = 30
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 16
	}
	return c
}

// ReservedInRange reports whether any era in the sorted snapshot lands in
// the closed lifespan [lo, hi] — the sorted-scan membership kernel of the
// era-based schemes (HE, WFE). Sorting the gathered reservation snapshot
// once and binary-searching it per retired block turns cleanup from
// O(R×G) into O((R+G)·log G); sorting changes nothing about the
// snapshot's contents, so the schemes' conservativeness arguments carry
// over unchanged.
func ReservedInRange(sorted []uint64, lo, hi uint64) bool {
	i := searchGE(sorted, lo)
	return i < len(sorted) && sorted[i] <= hi
}

// searchGE returns the index of the first element ≥ v in the sorted
// slice (len(sorted) if none). It is sort.Search specialised to a flat
// uint64 compare: cleanup runs one or two of these per retired block, so
// the generic version's closure-call per probe is worth removing.
func searchGE(sorted []uint64, v uint64) int {
	i, j := 0, len(sorted)
	for i < j {
		m := int(uint(i+j) >> 1)
		if sorted[m] < v {
			i = m + 1
		} else {
			j = m
		}
	}
	return i
}

// searchGT returns the index of the first element > v in the sorted
// slice (len(sorted) if none).
func searchGT(sorted []uint64, v uint64) int {
	i, j := 0, len(sorted)
	for i < j {
		m := int(uint(i+j) >> 1)
		if sorted[m] <= v {
			i = m + 1
		} else {
			j = m
		}
	}
	return i
}

// IntervalsOverlap reports whether any of the gathered reservation
// intervals overlaps the closed lifespan [birth, retire] — the
// sorted-scan kernel of the interval-based schemes (2GEIBR, WFE-IBR). It
// takes the intervals' lower and upper endpoints sorted independently;
// the sorting loses the lower/upper pairing, which the counting argument
// never needs: a well-formed interval (lower ≤ upper) is disjoint from
// [birth, retire] iff it ends before birth or starts after retire, those
// two sets cannot intersect, and every other interval overlaps. So
// overlap ⇔ #(upper < birth) + #(lower > retire) < n, two binary
// searches per retired block.
func IntervalsOverlap(los, his []uint64, birth, retire uint64) bool {
	before := searchGE(his, birth)
	after := len(los) - searchGT(los, retire)
	return before+after < len(los)
}

// StepHistBuckets is the step-count histogram width: one bucket per
// GetProtected iteration count, the last bucket collecting every longer
// call.
const StepHistBuckets = 64

// StepHist is a single-writer histogram of per-call GetProtected step
// counts, the distribution behind the paper's bounded-steps claim (the
// Max worst case is its tail, the BENCH_*.json p99 its body). Each thread
// records into its own padded copy; counts are published with atomic
// stores so trajectory samplers (Retirer.Probe, Domain.Sample) can Merge
// a live histogram concurrently and read an approximate-but-race-free
// snapshot. Exact totals still require quiescence.
type StepHist struct {
	buckets [StepHistBuckets]uint64
	// max is the exact worst step count recorded, which the clamped top
	// bucket cannot preserve.
	max uint64
}

// Record counts one GetProtected call that took steps iterations.
// Owner-thread only.
func (h *StepHist) Record(steps uint64) {
	if steps > atomic.LoadUint64(&h.max) {
		atomic.StoreUint64(&h.max, steps)
	}
	if steps >= StepHistBuckets {
		steps = StepHistBuckets - 1
	}
	atomic.StoreUint64(&h.buckets[steps], atomic.LoadUint64(&h.buckets[steps])+1)
}

// Max returns the worst step count recorded (0 when nothing was).
func (h *StepHist) Max() uint64 { return atomic.LoadUint64(&h.max) }

// Merge accumulates other's counts into h. other may be a live
// owner-written histogram; h must be private to the caller.
func (h *StepHist) Merge(other *StepHist) {
	for i := range other.buckets {
		h.buckets[i] += atomic.LoadUint64(&other.buckets[i])
	}
	if m := atomic.LoadUint64(&other.max); m > h.max {
		h.max = m
	}
}

// Quantile returns the smallest step count s such that at least a q
// fraction of the recorded calls took ≤ s steps (Quantile(0.99) is the
// p99 step count). It returns 0 when nothing was recorded; the top
// bucket reads as "StepHistBuckets-1 or more".
func (h *StepHist) Quantile(q float64) uint64 {
	var total uint64
	for _, v := range h.buckets {
		total += v
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, v := range h.buckets {
		cum += v
		if cum >= rank {
			return uint64(i)
		}
	}
	return StepHistBuckets - 1
}
