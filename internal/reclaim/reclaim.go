// Package reclaim defines the common safe-memory-reclamation (SMR) interface
// every scheme in this repository implements and every data structure is
// written against, mirroring the Hazard-Pointers-compatible API the paper
// standardises on (get_protected / retire / clear / alloc_block) plus the
// per-operation Begin hook that epoch- and interval-based schemes need.
//
// Threads are identified by small dense ids (tid in 0..MaxThreads-1)
// assigned by the caller; every per-thread method must be called with a
// stable tid, from one goroutine at a time per tid.
package reclaim

import (
	"sync/atomic"

	"wfe/internal/mem"
)

// Scheme is a universal memory reclamation scheme.
type Scheme interface {
	// Name identifies the scheme in benchmark output ("WFE", "HE", ...).
	Name() string

	// Begin marks the start of a data-structure operation. Epoch-based
	// schemes announce activity here; pointer- and era-based schemes no-op.
	Begin(tid int)

	// GetProtected safely reads the link value stored at src and protects
	// the block it refers to until Clear (or until the reservation at the
	// same index is overwritten by a later GetProtected).
	//
	// index selects one of the thread's MaxHEs reservation slots. parent is
	// the block containing src (0 when src is a structure root); only WFE
	// uses it, to keep the parent alive for helpers (paper §3.4).
	GetProtected(tid int, src *atomic.Uint64, index int, parent mem.Handle) uint64

	// Retire marks a block, already unlinked from the structure, for
	// deletion once no in-flight reader can hold it.
	Retire(tid int, h mem.Handle)

	// Clear resets all reservations made by the thread (paper: clear()).
	// Data structures call it at the end of every operation.
	Clear(tid int)

	// Alloc allocates a block and stamps its allocation era
	// (paper: alloc_block()).
	Alloc(tid int) mem.Handle

	// Unreclaimed reports the number of retired-but-not-yet-freed blocks,
	// the paper's reclamation-speed metric. The snapshot may be approximate
	// under concurrency.
	Unreclaimed() int

	// Arena exposes the underlying block arena.
	Arena() *mem.Arena
}

// Config carries the tuning parameters shared by the schemes, with the
// paper's evaluation defaults (§5).
type Config struct {
	// MaxThreads bounds the number of participating threads.
	MaxThreads int
	// MaxHEs is the number of reservations per thread (paper: max_hes).
	MaxHEs int
	// EraFreq is ν: the global era/epoch is incremented once per EraFreq
	// allocations per thread.
	EraFreq int
	// CleanupFreq is how many retirements pass between retire-list scans.
	CleanupFreq int
	// MaxAttempts bounds WFE's fast path before it requests helping.
	MaxAttempts int
	// ForceSlowPath makes WFE take the slow path on every GetProtected,
	// the stress configuration the paper validates with (§5).
	ForceSlowPath bool
}

// Defaults fills unset fields with the paper's evaluation parameters.
//
// Invariant: the zero-value defaults below are the §5 methodology values —
// max_hes = 8 reservations, ν = 150 allocations per era increment, a
// retire-list scan every 30 retirements, and 16 fast-path attempts before
// WFE requests helping. Benchmarks that reproduce paper figures rely on
// these exact numbers; change them only together with the harness and the
// README's figure documentation.
func (c Config) Defaults() Config {
	if c.MaxThreads == 0 {
		c.MaxThreads = 8
	}
	if c.MaxHEs == 0 {
		c.MaxHEs = 8
	}
	if c.EraFreq == 0 {
		c.EraFreq = 150
	}
	if c.CleanupFreq == 0 {
		c.CleanupFreq = 30
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 16
	}
	return c
}

// RetireList is the per-thread list of retired blocks shared by the
// scheme implementations. Only the owning thread mutates it; the published
// length feeds the Unreclaimed metric.
type RetireList struct {
	Blocks []mem.Handle
	length atomic.Int64
}

// Append adds a retired block. Single-writer contract: only the goroutine
// owning the list's tid may call it — Blocks is mutated without
// synchronisation, and only the length is published for cross-thread
// readers (Len).
func (r *RetireList) Append(h mem.Handle) {
	r.Blocks = append(r.Blocks, h)
	r.length.Store(int64(len(r.Blocks)))
}

// SetBlocks replaces the block list after a cleanup scan. Like Append it is
// single-writer: only the owning thread may call it, concurrently with any
// number of Len calls but never with another Append/SetBlocks.
func (r *RetireList) SetBlocks(b []mem.Handle) {
	r.Blocks = b
	r.length.Store(int64(len(b)))
}

// Len returns the published length; safe to call from any thread.
func (r *RetireList) Len() int { return int(r.length.Load()) }
