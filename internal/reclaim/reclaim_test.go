package reclaim

import "testing"

func TestDefaults(t *testing.T) {
	d := Config{}.Defaults()
	if d.MaxThreads != 8 || d.MaxHEs != 8 || d.EraFreq != 150 ||
		d.CleanupFreq != 30 || d.MaxAttempts != 16 {
		t.Fatalf("unexpected defaults: %+v", d)
	}
	if d.ForceSlowPath {
		t.Fatal("ForceSlowPath must default to false")
	}
	// Explicit values survive.
	c := Config{MaxThreads: 3, MaxHEs: 4, EraFreq: 5, CleanupFreq: 6, MaxAttempts: 7}.Defaults()
	if c.MaxThreads != 3 || c.MaxHEs != 4 || c.EraFreq != 5 || c.CleanupFreq != 6 || c.MaxAttempts != 7 {
		t.Fatalf("Defaults clobbered explicit values: %+v", c)
	}
}

func TestRetireList(t *testing.T) {
	var rl RetireList
	if rl.Len() != 0 {
		t.Fatal("fresh list not empty")
	}
	rl.Append(1)
	rl.Append(2)
	rl.Append(3)
	if rl.Len() != 3 || len(rl.Blocks) != 3 {
		t.Fatalf("Len = %d", rl.Len())
	}
	rl.SetBlocks(rl.Blocks[:1])
	if rl.Len() != 1 {
		t.Fatalf("Len after SetBlocks = %d", rl.Len())
	}
}
