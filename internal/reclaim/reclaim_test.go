package reclaim

import (
	"math/rand"
	"slices"
	"sort"
	"testing"
)

func TestDefaults(t *testing.T) {
	d := Config{}.Defaults()
	if d.MaxThreads != 8 || d.MaxHEs != 8 || d.EraFreq != 150 ||
		d.CleanupFreq != 30 || d.MaxAttempts != 16 {
		t.Fatalf("unexpected defaults: %+v", d)
	}
	if d.ForceSlowPath {
		t.Fatal("ForceSlowPath must default to false")
	}
	// Explicit values survive.
	c := Config{MaxThreads: 3, MaxHEs: 4, EraFreq: 5, CleanupFreq: 6, MaxAttempts: 7}.Defaults()
	if c.MaxThreads != 3 || c.MaxHEs != 4 || c.EraFreq != 5 || c.CleanupFreq != 6 || c.MaxAttempts != 7 {
		t.Fatalf("Defaults clobbered explicit values: %+v", c)
	}
}

func TestSearchHelpersMatchSortSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 200; iter++ {
		s := make([]uint64, rng.Intn(40))
		for i := range s {
			s[i] = uint64(rng.Intn(50))
		}
		slices.Sort(s)
		for v := uint64(0); v < 52; v++ {
			wantGE := sort.Search(len(s), func(k int) bool { return s[k] >= v })
			wantGT := sort.Search(len(s), func(k int) bool { return s[k] > v })
			if got := searchGE(s, v); got != wantGE {
				t.Fatalf("searchGE(%v, %d) = %d, want %d", s, v, got, wantGE)
			}
			if got := searchGT(s, v); got != wantGT {
				t.Fatalf("searchGT(%v, %d) = %d, want %d", s, v, got, wantGT)
			}
		}
	}
}

func TestStepHistQuantile(t *testing.T) {
	var h StepHist
	if h.Quantile(0.99) != 0 {
		t.Fatal("empty histogram must report 0")
	}
	// 99 one-step calls and one ten-step call: p50 = 1, p99 = 1, p100 = 10.
	for i := 0; i < 99; i++ {
		h.Record(1)
	}
	h.Record(10)
	if got := h.Quantile(0.5); got != 1 {
		t.Fatalf("p50 = %d, want 1", got)
	}
	if got := h.Quantile(0.99); got != 1 {
		t.Fatalf("p99 = %d, want 1", got)
	}
	if got := h.Quantile(1.0); got != 10 {
		t.Fatalf("p100 = %d, want 10", got)
	}
	// The tail bucket collects everything past the histogram width.
	h.Record(1 << 40)
	if got := h.Quantile(1.0); got != StepHistBuckets-1 {
		t.Fatalf("overflow bucket = %d, want %d", got, StepHistBuckets-1)
	}
	// Merge accumulates.
	var m StepHist
	m.Merge(&h)
	m.Merge(&h)
	if got, want := m.Quantile(0.5), h.Quantile(0.5); got != want {
		t.Fatalf("merged p50 = %d, want %d", got, want)
	}
}

func TestStepHistMax(t *testing.T) {
	var h StepHist
	if h.Max() != 0 {
		t.Fatal("empty histogram must report Max 0")
	}
	h.Record(3)
	h.Record(1 << 40) // far past the bucket width: Max stays exact
	if h.Max() != 1<<40 {
		t.Fatalf("Max = %d, want %d", h.Max(), uint64(1)<<40)
	}
	var m StepHist
	m.Record(7)
	m.Merge(&h)
	if m.Max() != 1<<40 {
		t.Fatalf("merged Max = %d, want %d", m.Max(), uint64(1)<<40)
	}
}
