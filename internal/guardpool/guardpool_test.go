package guardpool

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPopOrderAndExhaustion(t *testing.T) {
	p := New(4)
	if p.Cap() != 4 || p.Free() != 4 {
		t.Fatalf("Cap=%d Free=%d, want 4,4", p.Cap(), p.Free())
	}
	for want := 0; want < 4; want++ {
		tid, ok := p.TryAcquire()
		if !ok || tid != want {
			t.Fatalf("TryAcquire = %d,%v, want %d,true", tid, ok, want)
		}
	}
	if _, ok := p.TryAcquire(); ok {
		t.Fatal("TryAcquire succeeded on an empty pool")
	}
	if p.Free() != 0 {
		t.Fatalf("Free = %d, want 0", p.Free())
	}
	p.Release(2)
	if tid, ok := p.TryAcquire(); !ok || tid != 2 {
		t.Fatalf("TryAcquire after Release(2) = %d,%v", tid, ok)
	}
}

func TestZeroAndOneSized(t *testing.T) {
	p := New(0)
	if _, ok := p.TryAcquire(); ok {
		t.Fatal("TryAcquire on empty pool succeeded")
	}
	p = New(1)
	if tid, ok := p.TryAcquire(); !ok || tid != 0 {
		t.Fatalf("TryAcquire = %d,%v", tid, ok)
	}
	p.Release(0)
	if p.Free() != 1 {
		t.Fatalf("Free = %d, want 1", p.Free())
	}
}

// TestNoDuplicateHandout hammers TryAcquire/Release from many goroutines
// and asserts an id is never held by two goroutines at once — the ABA
// counter's whole job. Run with -race.
func TestNoDuplicateHandout(t *testing.T) {
	const ids, workers, iters = 4, 16, 20000
	p := New(ids)
	var held [ids]atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tid, ok := p.TryAcquire()
				if !ok {
					continue
				}
				if held[tid].Swap(true) {
					t.Errorf("id %d handed out twice", tid)
					return
				}
				held[tid].Store(false)
				p.Release(tid)
			}
		}()
	}
	wg.Wait()
	if free := p.Free(); free != ids {
		t.Fatalf("pool drained: Free = %d, want %d", free, ids)
	}
}

func TestAcquireParksAndWakes(t *testing.T) {
	p := New(1)
	tid, ok := p.TryAcquire()
	if !ok {
		t.Fatal("TryAcquire failed on a fresh pool")
	}
	got := make(chan int)
	go func() {
		id, err := p.Acquire(context.Background(), nil)
		if err != nil {
			t.Errorf("Acquire: %v", err)
		}
		got <- id
	}()
	// Give the waiter time to park, then hand off.
	time.Sleep(10 * time.Millisecond)
	p.Release(tid)
	select {
	case id := <-got:
		if id != tid {
			t.Fatalf("handed off id %d, want %d", id, tid)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked Acquire never woke after Release")
	}
	if st := p.Stats(); st.Parks == 0 {
		t.Fatalf("Stats.Parks = 0 after a parked acquire (stats %+v)", st)
	}
}

// TestHandoffBeatsBarging: once a waiter is parked, a released id is
// reserved for it — a concurrent TryAcquire (the barging pattern that
// would otherwise starve the waiter forever on a busy system) must fail.
func TestHandoffBeatsBarging(t *testing.T) {
	p := New(1)
	tid, _ := p.TryAcquire()
	got := make(chan int)
	go func() {
		id, err := p.Acquire(context.Background(), nil)
		if err != nil {
			t.Errorf("Acquire: %v", err)
		}
		got <- id
	}()
	for p.Waiters() == 0 { // wait for registration
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond) // let it reach the park
	p.Release(tid)
	if id, ok := p.TryAcquire(); ok {
		t.Fatalf("barging TryAcquire stole id %d reserved for the parked waiter", id)
	}
	select {
	case id := <-got:
		if id != tid {
			t.Fatalf("handed off id %d, want %d", id, tid)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked waiter never received the handed-off id")
	}
}

// TestStrandedHandoffRecovered: an id handed to a waiter that left
// (context cancel) must become acquirable again once no one is parked.
func TestStrandedHandoffRecovered(t *testing.T) {
	p := New(1)
	tid, _ := p.TryAcquire()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error)
	go func() {
		_, err := p.Acquire(ctx, nil)
		errc <- err
	}()
	for p.Waiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel() // the waiter leaves; a concurrent release may still hand to it
	if err := <-errc; err != context.Canceled {
		t.Fatalf("Acquire = %v, want Canceled", err)
	}
	p.Release(tid) // waiters may still read >0 transiently; either path is fine
	deadline := time.Now().Add(2 * time.Second)
	for {
		if id, ok := p.TryAcquire(); ok {
			if id != tid {
				t.Fatalf("recovered id %d, want %d", id, tid)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("released id never became acquirable after the waiter left")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAcquireContextCancel(t *testing.T) {
	p := New(1)
	p.TryAcquire() // drain
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := p.Acquire(ctx, nil); err != context.DeadlineExceeded {
		t.Fatalf("Acquire = %v, want DeadlineExceeded", err)
	}
}

// TestAcquireSpare: a parked waiter must accept an id offered through the
// spare callback (the Domain's idle-guard cache) instead of sleeping on a
// pool that will never refill.
func TestAcquireSpare(t *testing.T) {
	p := New(1)
	p.TryAcquire() // the id now lives "outside" the pool, as a cached guard would
	var polled atomic.Int32
	id, err := p.Acquire(context.Background(), func() (int, bool) {
		if polled.Add(1) >= 2 {
			return 0, true // cache hands the id over on the second poll
		}
		return 0, false
	})
	if err != nil || id != 0 {
		t.Fatalf("Acquire = %d,%v", id, err)
	}
}

// TestConcurrentAcquireRelease drives blocking Acquire from 8x more
// goroutines than ids; every acquire must eventually succeed and the pool
// must end full.
func TestConcurrentAcquireRelease(t *testing.T) {
	const ids, workers, iters = 3, 24, 500
	p := New(ids)
	var wg sync.WaitGroup
	var held [ids]atomic.Bool
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tid, err := p.Acquire(context.Background(), nil)
				if err != nil {
					t.Errorf("Acquire: %v", err)
					return
				}
				if held[tid].Swap(true) {
					t.Errorf("id %d handed out twice", tid)
					return
				}
				held[tid].Store(false)
				p.Release(tid)
			}
		}()
	}
	wg.Wait()
	if free := p.Free(); free != ids {
		t.Fatalf("pool leaked: Free = %d, want %d", free, ids)
	}
	if st := p.Stats(); st.Acquires == 0 {
		t.Fatal("Stats.Acquires = 0")
	}
}
