package guardpool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPopOrderAndExhaustion(t *testing.T) {
	p := New(4)
	if p.Cap() != 4 || p.Free() != 4 {
		t.Fatalf("Cap=%d Free=%d, want 4,4", p.Cap(), p.Free())
	}
	for want := 0; want < 4; want++ {
		tid, ok := p.TryAcquire()
		if !ok || tid != want {
			t.Fatalf("TryAcquire = %d,%v, want %d,true", tid, ok, want)
		}
	}
	if _, ok := p.TryAcquire(); ok {
		t.Fatal("TryAcquire succeeded on an empty pool")
	}
	if p.Free() != 0 {
		t.Fatalf("Free = %d, want 0", p.Free())
	}
	p.Release(2)
	if tid, ok := p.TryAcquire(); !ok || tid != 2 {
		t.Fatalf("TryAcquire after Release(2) = %d,%v", tid, ok)
	}
}

func TestZeroAndOneSized(t *testing.T) {
	p := New(0)
	if _, ok := p.TryAcquire(); ok {
		t.Fatal("TryAcquire on empty pool succeeded")
	}
	p = New(1)
	if tid, ok := p.TryAcquire(); !ok || tid != 0 {
		t.Fatalf("TryAcquire = %d,%v", tid, ok)
	}
	p.Release(0)
	if p.Free() != 1 {
		t.Fatalf("Free = %d, want 1", p.Free())
	}
}

// TestNoDuplicateHandout hammers TryAcquire/Release from many goroutines
// and asserts an id is never held by two goroutines at once — the ABA
// counter's whole job. Run with -race.
func TestNoDuplicateHandout(t *testing.T) {
	const ids, workers, iters = 4, 16, 20000
	p := New(ids)
	var held [ids]atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tid, ok := p.TryAcquire()
				if !ok {
					continue
				}
				if held[tid].Swap(true) {
					t.Errorf("id %d handed out twice", tid)
					return
				}
				held[tid].Store(false)
				p.Release(tid)
			}
		}()
	}
	wg.Wait()
	if free := p.Free(); free != ids {
		t.Fatalf("pool drained: Free = %d, want %d", free, ids)
	}
}

func TestAcquireParksAndWakes(t *testing.T) {
	p := New(1)
	tid, ok := p.TryAcquire()
	if !ok {
		t.Fatal("TryAcquire failed on a fresh pool")
	}
	got := make(chan int)
	go func() {
		id, err := p.Acquire(context.Background(), nil)
		if err != nil {
			t.Errorf("Acquire: %v", err)
		}
		got <- id
	}()
	// Give the waiter time to park, then hand off.
	time.Sleep(10 * time.Millisecond)
	p.Release(tid)
	select {
	case id := <-got:
		if id != tid {
			t.Fatalf("handed off id %d, want %d", id, tid)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked Acquire never woke after Release")
	}
	if st := p.Stats(); st.Parks == 0 {
		t.Fatalf("Stats.Parks = 0 after a parked acquire (stats %+v)", st)
	}
}

// TestHandoffBeatsBarging: once a waiter is parked, a released id is
// reserved for it — a concurrent TryAcquire (the barging pattern that
// would otherwise starve the waiter forever on a busy system) must fail.
func TestHandoffBeatsBarging(t *testing.T) {
	p := New(1)
	tid, _ := p.TryAcquire()
	got := make(chan int)
	go func() {
		id, err := p.Acquire(context.Background(), nil)
		if err != nil {
			t.Errorf("Acquire: %v", err)
		}
		got <- id
	}()
	for p.Waiters() == 0 { // wait for registration
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond) // let it reach the park
	p.Release(tid)
	if id, ok := p.TryAcquire(); ok {
		t.Fatalf("barging TryAcquire stole id %d reserved for the parked waiter", id)
	}
	select {
	case id := <-got:
		if id != tid {
			t.Fatalf("handed off id %d, want %d", id, tid)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked waiter never received the handed-off id")
	}
}

// TestStrandedHandoffRecovered: an id handed to a waiter that left
// (context cancel) must become acquirable again once no one is parked.
func TestStrandedHandoffRecovered(t *testing.T) {
	p := New(1)
	tid, _ := p.TryAcquire()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error)
	go func() {
		_, err := p.Acquire(ctx, nil)
		errc <- err
	}()
	for p.Waiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel() // the waiter leaves; a concurrent release may still hand to it
	if err := <-errc; err != context.Canceled {
		t.Fatalf("Acquire = %v, want Canceled", err)
	}
	p.Release(tid) // waiters may still read >0 transiently; either path is fine
	deadline := time.Now().Add(2 * time.Second)
	for {
		if id, ok := p.TryAcquire(); ok {
			if id != tid {
				t.Fatalf("recovered id %d, want %d", id, tid)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("released id never became acquirable after the waiter left")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAcquireContextCancel(t *testing.T) {
	p := New(1)
	p.TryAcquire() // drain
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := p.Acquire(ctx, nil); err != context.DeadlineExceeded {
		t.Fatalf("Acquire = %v, want DeadlineExceeded", err)
	}
}

// TestAcquireSpare: a parked waiter must accept an id offered through the
// spare callback (the Domain's idle-guard cache) instead of sleeping on a
// pool that will never refill.
func TestAcquireSpare(t *testing.T) {
	p := New(1)
	p.TryAcquire() // the id now lives "outside" the pool, as a cached guard would
	var polled atomic.Int32
	id, err := p.Acquire(context.Background(), func() (int, bool) {
		if polled.Add(1) >= 2 {
			return 0, true // cache hands the id over on the second poll
		}
		return 0, false
	})
	if err != nil || id != 0 {
		t.Fatalf("Acquire = %d,%v", id, err)
	}
}

// TestHeldCounting pins the exact checked-out count Switch's quiescence
// wait relies on: up on acquire, down on release, zero on a quiescent
// pool, untouched by gated attempts.
func TestHeldCounting(t *testing.T) {
	p := New(2)
	if p.Held() != 0 {
		t.Fatalf("Held = %d on a fresh pool, want 0", p.Held())
	}
	a, _ := p.TryAcquire()
	b, _ := p.TryAcquire()
	if p.Held() != 2 {
		t.Fatalf("Held = %d with both ids out, want 2", p.Held())
	}
	p.Release(a)
	if p.Held() != 1 {
		t.Fatalf("Held = %d after one release, want 1", p.Held())
	}
	p.Pause()
	if _, ok := p.TryAcquire(); ok {
		t.Fatal("TryAcquire succeeded during a pause")
	}
	if p.Held() != 1 {
		t.Fatalf("Held = %d after a gated TryAcquire, want 1 (gated attempts must not leak)", p.Held())
	}
	p.Release(b)
	if p.Held() != 0 {
		t.Fatalf("Held = %d after releasing during the pause, want 0", p.Held())
	}
	p.Resume()
	if p.Free() != 2 {
		t.Fatalf("Free = %d after resume, want 2", p.Free())
	}
}

// TestPausedReleaseGoesToFreelist: with a waiter parked, a Release during
// a pause must feed the freelist — not the handoff channel, which would
// chain a new acquisition through the gate and break the pauser's
// Held()==0 quiescence.
func TestPausedReleaseGoesToFreelist(t *testing.T) {
	p := New(1)
	tid, _ := p.TryAcquire()
	got := make(chan int)
	go func() {
		id, err := p.Acquire(context.Background(), nil)
		if err != nil {
			t.Errorf("Acquire: %v", err)
		}
		got <- id
	}()
	for p.Waiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond) // let the waiter reach its park
	p.Pause()
	p.Release(tid)
	// Quiescent now: the id must be home and stay home while paused, the
	// parked waiter notwithstanding (its backoff re-poll is gated).
	deadline := time.Now().Add(2 * time.Second)
	for p.Held() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("Held = %d after a paused release, want 0", p.Held())
		}
		time.Sleep(time.Millisecond)
	}
	if free := p.Free(); free != 1 {
		t.Fatalf("Free = %d with the pool paused and quiescent, want 1", free)
	}
	select {
	case id := <-got:
		t.Fatalf("waiter acquired id %d through the pause gate", id)
	case <-time.After(120 * time.Millisecond): // beyond parkBackoffMax
	}
	p.Resume()
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never acquired after Resume")
	}
}

// TestPauseQuiescenceExact hammers the pool with acquire/release churn
// while a pauser repeatedly gates it and waits for Held()==0. At that
// point the pool is provably quiescent, so the freelist walk must account
// for every id — the exactness Switch's drain depends on. Run with -race:
// the pre-held-counter version of this protocol could report quiescence
// while a racing pop still had an id out.
func TestPauseQuiescenceExact(t *testing.T) {
	const ids, workers, pauses = 3, 8, 60
	p := New(ids)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !stop.Load() {
				if w%2 == 0 {
					tid, ok := p.TryAcquire()
					if !ok {
						continue
					}
					p.Release(tid)
				} else {
					ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
					tid, err := p.Acquire(ctx, nil)
					cancel()
					if err != nil {
						continue
					}
					p.Release(tid)
				}
			}
		}(w)
	}
	for i := 0; i < pauses; i++ {
		p.Pause()
		deadline := time.Now().Add(5 * time.Second)
		for p.Held() != 0 {
			if time.Now().After(deadline) {
				p.Resume()
				stop.Store(true)
				wg.Wait()
				t.Fatalf("pause %d: Held = %d never drained", i, p.Held())
			}
			runtime.Gosched()
		}
		// Held()==0 guarantees no acquirer can keep an id, but one may be
		// in the instant between a successful pop and its gate re-check —
		// it is pushed straight back, so with the gate still up the
		// freelist must converge to full. An id that never comes home
		// means the gate leaked a real acquisition mid-pause.
		for p.Free() != ids {
			if time.Now().After(deadline) {
				free := p.Free()
				p.Resume()
				stop.Store(true)
				wg.Wait()
				t.Fatalf("pause %d: quiescent but Free stuck at %d, want %d — an id slipped the gate", i, free, ids)
			}
			runtime.Gosched()
		}
		p.Resume()
		time.Sleep(time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	if p.Held() != 0 || p.Free() != ids {
		t.Fatalf("after storm: Held = %d Free = %d, want 0,%d", p.Held(), p.Free(), ids)
	}
}

// TestConcurrentAcquireRelease drives blocking Acquire from 8x more
// goroutines than ids; every acquire must eventually succeed and the pool
// must end full.
func TestConcurrentAcquireRelease(t *testing.T) {
	const ids, workers, iters = 3, 24, 500
	p := New(ids)
	var wg sync.WaitGroup
	var held [ids]atomic.Bool
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tid, err := p.Acquire(context.Background(), nil)
				if err != nil {
					t.Errorf("Acquire: %v", err)
					return
				}
				if held[tid].Swap(true) {
					t.Errorf("id %d handed out twice", tid)
					return
				}
				held[tid].Store(false)
				p.Release(tid)
			}
		}()
	}
	wg.Wait()
	if free := p.Free(); free != ids {
		t.Fatalf("pool leaked: Free = %d, want %d", free, ids)
	}
	if st := p.Stats(); st.Acquires == 0 {
		t.Fatal("Stats.Acquires = 0")
	}
}
