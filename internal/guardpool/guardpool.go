// Package guardpool is the guard runtime's tid allocator: a lock-free
// freelist handing out the dense thread ids (0..n-1) that every reclamation
// scheme's per-thread state is indexed by, plus a parking layer for callers
// that would rather block than fail when all ids are held.
//
// The freelist is a Treiber stack of slot indices threaded through a
// cache-line-padded next array. The head packs {ABA counter, top index}
// into one uint64 so a single CAS both pops the top and invalidates stale
// heads — the classic versioned-head construction, the same trick the
// paper's wide-CAS emulation (internal/pack) uses for {era,tag} pairs.
// Acquire and Release are therefore lock-free: no mutex, no syscall, and
// under contention someone always makes progress.
//
// Parking (Acquire) is built on top of the lock-free core with DIRECT
// handoff: when waiters are registered, Release sends the freed id into a
// channel reserved for them instead of pushing it back on the freelist,
// and TryAcquire refuses to poach from that channel while anyone waits.
// Without the reservation a parked waiter can starve forever — the
// releasing goroutine's own next acquire (or any barger's) wins the
// freelist CAS long before the scheduler runs the woken waiter, which on
// a busy system happens every single time. Because the pool cannot know
// about ids its caller is holding elsewhere (the Domain layer caches idle
// guards in a sync.Pool), a parked waiter also wakes on an escalating
// backoff timer and re-polls through the caller-supplied spare function —
// the safety net that bounds the cache-vs-waiter sleep race to
// milliseconds instead of forever.
package guardpool

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"wfe/internal/failpoint"
	"wfe/internal/trace"
)

// fpHandoff fires on Release's direct-handoff path, before the freed id
// is offered to a parked waiter. A sleep trigger holds the releaser
// inside the handoff window — the schedule where gate re-checks and
// waiter wakeups race — for the chaos harness; injected errors are
// ignored (a release must always complete).
var fpHandoff = failpoint.New("guardpool-handoff")

// emptyIdx is the freelist terminator: no next slot / empty pool.
const emptyIdx = ^uint32(0)

// slot is one freelist cell. Only the next index lives here; the padding
// keeps neighbouring tids' push/pop traffic off each other's cache lines,
// matching the per-thread state layout of internal/mem and internal/core.
type slot struct {
	next atomic.Uint32
	_    [60]byte
}

// Pool is a lock-free pool of the dense ids 0..Cap()-1. The zero value is
// not usable; construct with New.
type Pool struct {
	// head packs {ABA counter : 32, top slot index : 32}. Every successful
	// CAS bumps the counter, so a pop that read a stale head-next pair can
	// never install it over a recycled top slot.
	head atomic.Uint64
	_    [56]byte

	slots []slot

	// waiters counts Acquire callers that are registered to park. While it
	// is non-zero, Release hands freed ids into hand — reserved for parked
	// waiters, off-limits to TryAcquire — instead of the freelist; the
	// uncontended release path stays one load past the CAS.
	waiters atomic.Int32
	hand    chan int

	acquires atomic.Uint64
	parks    atomic.Uint64

	// held counts ids checked out of the pool — not on the freelist and
	// not parked in the handoff channel. Unlike Free's freelist walk it is
	// exact at the one moment exactness matters: every successful pop or
	// handoff receive increments it BEFORE the acquirer's post-acquire gate
	// re-check, and Release decrements it only AFTER the id is visibly back,
	// so once a pauser (gate stored) reads held == 0, no acquirer can be
	// holding an id it will use — any later gate re-check sees the gate and
	// backs out. Transient over-counts (an acquirer about to back out) only
	// make the pauser wait longer, never proceed early.
	held atomic.Int64

	// gate, when non-nil, is the pause epoch: new acquisitions wait on the
	// channel it points to until Resume closes it. pauseMu serializes
	// pausers (held from Pause to Resume) so overlapping pause epochs
	// cannot interleave their gate swaps. pauseSeq increments on every
	// Pause (to odd) and every Resume (to even): an acquirer that reads it
	// equal and even around a failed acquisition knows no pause epoch
	// overlapped the attempt — the failure was genuine exhaustion, not the
	// gate.
	gate     atomic.Pointer[chan struct{}]
	pauseMu  sync.Mutex
	pauseSeq atomic.Uint64

	// tracer, when set before use, receives guard lifecycle events
	// (acquire, park, cancel). Nil costs one branch per event site.
	tracer *trace.Tracer
}

// SetTracer installs the lifecycle event tracer. Call before the pool is
// shared between goroutines (the field is written once, read racily
// thereafter by design: the tracer pointer never changes after setup).
func (p *Pool) SetTracer(t *trace.Tracer) { p.tracer = t }

// New creates a pool holding the ids 0..n-1, popping in ascending order
// from a full pool.
func New(n int) *Pool {
	if n < 0 {
		n = 0
	}
	p := &Pool{
		slots: make([]slot, n),
		hand:  make(chan int, n+1), // never blocks: at most n ids exist
	}
	for i := 0; i < n-1; i++ {
		p.slots[i].next.Store(uint32(i + 1))
	}
	if n > 0 {
		p.slots[n-1].next.Store(emptyIdx)
		p.head.Store(pack(0, 0))
	} else {
		p.head.Store(pack(0, emptyIdx))
	}
	return p
}

func pack(aba uint64, idx uint32) uint64 { return aba<<32 | uint64(idx) }

// Cap returns the number of ids the pool manages.
func (p *Pool) Cap() int { return len(p.slots) }

// pop is the freelist fast path: one versioned-head CAS, no mutex.
func (p *Pool) pop() (int, bool) {
	for {
		h := p.head.Load()
		idx := uint32(h)
		if idx == emptyIdx {
			return 0, false
		}
		next := p.slots[idx].next.Load()
		if p.head.CompareAndSwap(h, pack(h>>32+1, next)) {
			return int(idx), true
		}
	}
}

// Pause gates new acquisitions: until Resume, TryAcquire reports no free
// ids and Acquire parks on the pause epoch instead of the freelist. Ids
// already held stay held — Pause does not revoke anything; the pauser
// waits for them to drain back (Held reaching 0) itself. Releases during
// a pause always go to the freelist, never to a parked waiter — a handoff
// that slips across the pause boundary is backed out by the receiver's
// gate re-check — so the freed set only grows while paused. Concurrent
// pausers serialize: the second Pause blocks until the first Resume.
func (p *Pool) Pause() {
	p.pauseMu.Lock()
	// The sequence increment precedes the gate store: any acquirer whose
	// failed attempt raced this gate sees the sequence change and knows a
	// pause overlapped it (see Pool.pauseSeq).
	p.pauseSeq.Add(1)
	ch := make(chan struct{})
	p.gate.Store(&ch)
}

// Resume releases the pause epoch, waking every gated acquirer.
func (p *Pool) Resume() {
	ch := p.gate.Swap(nil)
	close(*ch)
	p.pauseSeq.Add(1)
	p.pauseMu.Unlock()
}

// Paused reports whether a pause epoch is in effect.
func (p *Pool) Paused() bool { return p.gate.Load() != nil }

// PauseSeq returns the pause sequence number: odd while a pause epoch is
// in effect, even otherwise, incremented on every Pause and Resume. A
// caller that reads it even-and-unchanged around a failed TryAcquire has
// proof no pause overlapped the attempt — the pool was genuinely
// exhausted, not gated.
func (p *Pool) PauseSeq() uint64 { return p.pauseSeq.Load() }

// AwaitResume parks the caller until the current pause epoch (if any)
// ends. It acquires nothing; callers loop back to their acquisition path
// after it returns.
func (p *Pool) AwaitResume() {
	if g := p.gate.Load(); g != nil {
		<-*g
	}
}

// Held reports how many ids are checked out of the pool. Unlike Free it
// is exact for quiescence detection under a pause epoch: once a pauser
// reads 0 after storing the gate, no acquirer holds an id it will keep —
// at most one is in the instant between a pop and its gate re-check, and
// that re-check either sees the gate (the id goes straight back to the
// freelist, untouched) or post-dates Resume. Nothing acquired before the
// read can still be live, and nothing acquired after it can act before
// the pause ends.
func (p *Pool) Held() int { return int(p.held.Load()) }

// obtained runs the post-acquire commit protocol on an id just popped or
// received: count it held, then re-check the gate. The increment-then-
// recheck order is what makes a pauser's Held()==0 read exact — if the
// re-check saw no gate, the increment is ordered before the pauser's
// read; if it saw one, the id goes straight back to the freelist (during
// a pause the freelist is the only legal destination) and the caller
// treats the attempt as gated.
func (p *Pool) obtained(tid int) bool {
	p.held.Add(1)
	if p.Paused() {
		p.pushFree(tid)
		p.held.Add(-1)
		return false
	}
	return true
}

// TryAcquire pops a free id, reporting false when none is free. Ids that
// Release handed to parked waiters are reserved: TryAcquire only drains
// the handoff channel when nobody is registered to park (a waiter that
// left without its id — context cancelled, or satisfied from the caller's
// spare supply — strands it there until someone claims it). During a
// pause epoch it always reports false, even when the pop raced the gate
// going up — the id is returned and the attempt reported gated.
func (p *Pool) TryAcquire() (int, bool) { return p.tryAcquire(0) }

// TryAcquireBatch is TryAcquire on behalf of a batch entry point
// (MultiGet, PushAll, ...): identical semantics, but the acquire
// lifecycle event carries the batch marker in its B payload, so a trace
// can attribute pool traffic to batch leases — with one lease per burst,
// batch-marked acquires should stay rare next to the per-op kind.
func (p *Pool) TryAcquireBatch() (int, bool) { return p.tryAcquire(1) }

func (p *Pool) tryAcquire(batch uint64) (int, bool) {
	if p.Paused() {
		return 0, false
	}
	if tid, ok := p.pop(); ok {
		if !p.obtained(tid) {
			return 0, false
		}
		p.acquires.Add(1)
		p.tracer.Emit(tid, trace.KindGuardAcquire, trace.AcquireFreelist, batch)
		return tid, true
	}
	if p.waiters.Load() == 0 {
		select {
		case tid := <-p.hand:
			if !p.obtained(tid) {
				return 0, false
			}
			p.acquires.Add(1)
			p.tracer.Emit(tid, trace.KindGuardAcquire, trace.AcquireHandoff, batch)
			return tid, true
		default:
		}
	}
	return 0, false
}

// Release returns an id to the pool. With waiters registered the id is
// handed directly to one of them — never the freelist, where the next
// barging TryAcquire (often the releasing goroutine's own next operation,
// already running while the waiter sits in the scheduler queue) would
// beat the waiter to it every time. The id must have come from
// TryAcquire/Acquire and must not be released twice — the freelist trusts
// its caller the same way the schemes trust their tids.
func (p *Pool) Release(tid int) {
	// During a pause the freelist is the only destination: a handoff would
	// let a cycling waiter chain acquisitions through the gate. The check
	// can race the gate going up — a send that slips through mid-pause is
	// backed out by the receiving waiter's own gate re-check (it pushes
	// the id to the freelist and parks), so the invariant holds either
	// way. The held decrement comes after the id is visibly back, so a
	// pauser never reads Held()==0 while a release is still in flight.
	if !p.Paused() && p.waiters.Load() > 0 {
		_ = fpHandoff.Eval(tid) // sleep-only site; a release never fails
		select {
		case p.hand <- tid:
			p.held.Add(-1)
			return
		default: // buffer can only fill if callers over-release; fall through
		}
	}
	p.pushFree(tid)
	p.held.Add(-1)
}

// pushFree pushes an id onto the freelist: the versioned-head CAS loop
// shared by Release and the gated-acquisition back-out paths.
func (p *Pool) pushFree(tid int) {
	for {
		h := p.head.Load()
		p.slots[tid].next.Store(uint32(h))
		if p.head.CompareAndSwap(h, pack(h>>32+1, uint32(tid))) {
			return
		}
	}
}

// parkBackoff bounds how long a parked waiter sleeps between re-polls.
// Handoff via the wake channel is the normal wake path; the timer only
// covers ids that bypass the pool (a caller-side cache) racing a waiter's
// registration.
const (
	parkBackoffMin = time.Millisecond
	parkBackoffMax = 50 * time.Millisecond
)

// Acquire pops a free id, parking until one is released or ctx is done.
// spare, if non-nil, is polled before each park: it lets the caller offer
// ids it is holding outside the pool (e.g. an idle-guard cache) so a
// waiter never sleeps while the caller could satisfy it. spare must return
// an id the caller owns, which Acquire then hands to its own caller.
func (p *Pool) Acquire(ctx context.Context, spare func() (int, bool)) (int, error) {
	if tid, ok := p.TryAcquire(); ok {
		return tid, nil
	}
	backoff := parkBackoffMin
	// One reusable timer for the whole parked stretch: the contended path
	// parks hundreds of thousands of times a second, and a time.After per
	// park would churn that many dead timers through the GC. Reset is safe
	// without a drain here because the only path that loops back to it is
	// the timer case itself, which consumed the tick.
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		// A pause epoch parks everyone here, before the spare poll and the
		// waiter registration: a gated acquirer holds nothing and touches
		// nothing until Resume closes the epoch channel. In-flight
		// acquirers past this check at Pause time can still slip one pop
		// through; they come back around to the gate, so the pauser's
		// drain-to-quiescence wait stays bounded by the in-flight set.
		if g := p.gate.Load(); g != nil {
			select {
			case <-*g:
			case <-ctx.Done():
				p.tracer.Emit(trace.SharedTid, trace.KindGuardCancel, 0, 0)
				return 0, ctx.Err()
			}
		}
		if spare != nil {
			if tid, ok := spare(); ok {
				// A spare id was already checked out of the pool when the
				// caller cached it, so held is untouched: from the pool's
				// view it stays held, just under a new owner.
				p.acquires.Add(1)
				p.tracer.Emit(tid, trace.KindGuardAcquire, trace.AcquireFreelist, 0)
				return tid, nil
			}
		}
		// Register, then re-poll the freelist: a Release that pushed there
		// before seeing our registration is caught by the poll; one that
		// ran after sees waiters > 0 and feeds the handoff channel we are
		// about to park on. Either way no id is lost.
		p.waiters.Add(1)
		if tid, ok := p.pop(); ok {
			p.waiters.Add(-1)
			if !p.obtained(tid) {
				continue // gated mid-pop; back to the pause epoch check
			}
			p.acquires.Add(1)
			p.tracer.Emit(tid, trace.KindGuardAcquire, trace.AcquireFreelist, 0)
			return tid, nil
		}
		p.parks.Add(1)
		p.tracer.Emit(trace.SharedTid, trace.KindGuardPark, 0, 0)
		if timer == nil {
			timer = time.NewTimer(backoff)
		} else {
			timer.Reset(backoff)
		}
		select {
		case tid := <-p.hand:
			p.waiters.Add(-1)
			if !p.obtained(tid) {
				// The handoff crossed a pause boundary (Release's gate check
				// raced the gate store): the id went back to the freelist,
				// and this waiter parks on the pause epoch like everyone
				// else. It re-registers after Resume.
				continue
			}
			p.acquires.Add(1)
			p.tracer.Emit(tid, trace.KindGuardAcquire, trace.AcquireHandoff, 0)
			return tid, nil
		case <-timer.C:
			if backoff *= 2; backoff > parkBackoffMax {
				backoff = parkBackoffMax
			}
		case <-ctx.Done():
			p.waiters.Add(-1)
			p.tracer.Emit(trace.SharedTid, trace.KindGuardCancel, 0, 0)
			return 0, ctx.Err()
		}
		p.waiters.Add(-1)
		if tid, ok := p.TryAcquire(); ok {
			return tid, nil
		}
	}
}

// Waiters reports how many Acquire callers are currently registered to
// park. Callers holding ids outside the pool use it to prefer handing an
// id back over caching it while someone sleeps.
func (p *Pool) Waiters() int { return int(p.waiters.Load()) }

// Free counts the ids currently available: the freelist walked plus any
// ids parked in the handoff channel (handed to a waiter that left without
// them). The walk is bounded and every read is in-range, so it is always
// safe to call, but the count is only meaningful when the pool is
// quiescent — concurrent pops and pushes can make a racing walk over- or
// under-count (a racing pop can even leave a popped id's next pointer
// visible to the walk, over-counting a held id as free). It is a stats
// view; quiescence detection must use Held, which is exact under a pause
// epoch.
func (p *Pool) Free() int {
	n := len(p.hand)
	idx := uint32(p.head.Load())
	for idx != emptyIdx && n < len(p.slots) {
		n++
		idx = p.slots[idx].next.Load()
	}
	return n
}

// Stats is a monotonic census of pool traffic.
type Stats struct {
	// Acquires counts every id handed to a caller by TryAcquire or
	// Acquire, whether it came off the freelist, the handoff channel, or
	// the caller's spare supply.
	Acquires uint64
	// Parks counts the times an Acquire caller blocked waiting.
	Parks uint64
}

// Stats samples the counters; approximate under concurrency.
func (p *Pool) Stats() Stats {
	return Stats{Acquires: p.acquires.Load(), Parks: p.parks.Load()}
}
