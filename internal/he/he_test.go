package he

import (
	"math/rand"
	"slices"
	"sync/atomic"
	"testing"

	"wfe/internal/mem"
	"wfe/internal/pack"
	"wfe/internal/reclaim"
)

func newHE(t *testing.T, cfg reclaim.Config) (*HE, *mem.Arena) {
	t.Helper()
	if cfg.MaxThreads == 0 {
		cfg.MaxThreads = 2
	}
	a := mem.New(mem.Config{Capacity: 1 << 12, MaxThreads: cfg.MaxThreads, Debug: true})
	return New(a, cfg), a
}

func TestEraAdvancesOnAllocFrequency(t *testing.T) {
	h, _ := newHE(t, reclaim.Config{MaxThreads: 1, EraFreq: 10})
	e0 := h.Era()
	// The first alloc (count 0) advances; the next nine must not.
	h.Alloc(0)
	if h.Era() != e0+1 {
		t.Fatalf("era = %d after first alloc, want %d", h.Era(), e0+1)
	}
	for i := 0; i < 9; i++ {
		h.Alloc(0)
	}
	if h.Era() != e0+1 {
		t.Fatalf("era = %d after 10 allocs, want %d", h.Era(), e0+1)
	}
	h.Alloc(0) // 11th: crosses the frequency boundary
	if h.Era() != e0+2 {
		t.Fatalf("era = %d after 11 allocs, want %d", h.Era(), e0+2)
	}
}

func TestRetireAdvancesEraOnlyWhenCurrent(t *testing.T) {
	// The paper's race fix: retire() advances the era only if the block's
	// retire era still equals the global era at the check.
	h, _ := newHE(t, reclaim.Config{MaxThreads: 1, EraFreq: 1 << 30, CleanupFreq: 1})
	blk := h.Alloc(0)
	e0 := h.Era()
	h.Retire(0, blk)
	if h.Era() != e0+1 {
		t.Fatalf("era = %d, want %d (retire of current-era block must advance)", h.Era(), e0+1)
	}
}

func TestCanDeleteBoundaries(t *testing.T) {
	h, a := newHE(t, reclaim.Config{MaxThreads: 1})
	blk := h.Alloc(0)
	a.SetAllocEra(blk, 10)
	a.SetRetireEra(blk, 20)
	cases := []struct {
		era  uint64
		want bool // canDelete
	}{
		{9, true},   // before lifespan
		{10, false}, // at alloc era
		{15, false}, // inside
		{20, false}, // at retire era
		{21, true},  // after lifespan
	}
	for _, c := range cases {
		for _, linear := range []bool{true, false} {
			if got := h.canDelete(blk, []uint64{c.era}, linear); got != c.want {
				t.Errorf("canDelete(linear=%v) with reservation era %d = %v, want %v", linear, c.era, got, c.want)
			}
		}
	}
	if !h.canDelete(blk, nil, false) {
		t.Error("canDelete with no reservations = false")
	}
}

func TestSortedScanMatchesLinearOracle(t *testing.T) {
	// Property: on randomized reservation/era sets, the sorted-snapshot
	// membership test reaches exactly the free/keep decision of the
	// pre-overhaul linear sweep (the retained oracle).
	rng := rand.New(rand.NewSource(20260729))
	for iter := 0; iter < 500; iter++ {
		eras := make([]uint64, rng.Intn(65))
		for i := range eras {
			eras[i] = uint64(rng.Intn(120)) + 1
		}
		sorted := slices.Clone(eras)
		slices.Sort(sorted)
		for b := 0; b < 32; b++ {
			lo := uint64(rng.Intn(120)) + 1
			hi := lo + uint64(rng.Intn(16))
			want := eraReservedLinear(eras, lo, hi)
			if got := reclaim.ReservedInRange(sorted, lo, hi); got != want {
				t.Fatalf("lifespan [%d,%d] vs eras %v: sorted=%v linear=%v",
					lo, hi, eras, got, want)
			}
		}
	}
}

func TestGetProtectedPublishesEra(t *testing.T) {
	h, _ := newHE(t, reclaim.Config{MaxThreads: 1})
	var root atomic.Uint64
	blk := h.Alloc(0)
	root.Store(blk)
	h.globalEra.Add(3) // force a reservation refresh
	got := h.GetProtected(0, &root, 2, 0)
	if got != blk {
		t.Fatalf("GetProtected = %d, want %d", got, blk)
	}
	if e := h.resv(0, 2).Load(); e != h.Era() {
		t.Fatalf("reservation era %d, want %d", e, h.Era())
	}
	h.Clear(0)
	if e := h.resv(0, 2).Load(); e != pack.Inf {
		t.Fatal("Clear left the reservation set")
	}
}

func TestMaxStepsGrowsUnderEraMovement(t *testing.T) {
	h, _ := newHE(t, reclaim.Config{MaxThreads: 1})
	var root atomic.Uint64
	root.Store(h.Alloc(0))
	h.GetProtected(0, &root, 0, 0)
	if h.MaxSteps() < 1 {
		t.Fatal("MaxSteps not recorded")
	}
}
