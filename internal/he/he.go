// Package he implements Hazard Eras (Ramalhete & Correia, SPAA 2017), the
// lock-free scheme WFE extends, exactly as reproduced in the paper's
// Figure 1 — including the retire() race fix the paper mentions applying
// (re-reading the global era before deciding to advance it).
//
// Paper mapping: Figure 1 (§2.3) line for line — get_protected's
// stabilisation loop, retire's era stamping, and cleanup's reservation
// scan. The unbounded get_protected loop here is the paper's motivating
// problem; its per-thread worst case is observable through MaxSteps, and
// examples/boundedsteps turns the difference into a latency table.
package he

import (
	"slices"
	"sync/atomic"
	"time"

	"wfe/internal/mem"
	"wfe/internal/pack"
	"wfe/internal/reclaim"
)

type threadState struct {
	allocCount  uint64
	retireCount uint64
	// dirty is one past the highest reservation index used since the last
	// Clear.
	dirty   int
	retired reclaim.RetireList
	scratch []uint64 // reusable gathered-era buffer
	// maxSteps is the largest number of protect-loop iterations any single
	// GetProtected call by this thread has needed — the unboundedness the
	// paper's contribution removes, observable.
	maxSteps uint64
	// stepHist is the full step-count distribution behind maxSteps;
	// BENCH_*.json reports its p99.
	stepHist reclaim.StepHist
	// Cleanup-scan telemetry (owner-written; read quiescently).
	scanScans  uint64
	scanBlocks uint64
	scanNanos  uint64
	_          [64]byte
}

// HE is the Hazard Eras scheme.
type HE struct {
	arena     *mem.Arena
	cfg       reclaim.Config
	globalEra atomic.Uint64

	reservations []atomic.Uint64 // row-major [MaxThreads][MaxHEs] eras
	rowStride    int
	threads      []threadState
}

var _ reclaim.Scheme = (*HE)(nil)

// New creates a Hazard Eras scheme over the given arena.
func New(arena *mem.Arena, cfg reclaim.Config) *HE {
	cfg = cfg.Defaults()
	stride := (cfg.MaxHEs + 7) &^ 7
	h := &HE{
		arena:        arena,
		cfg:          cfg,
		reservations: make([]atomic.Uint64, cfg.MaxThreads*stride),
		rowStride:    stride,
		threads:      make([]threadState, cfg.MaxThreads),
	}
	h.globalEra.Store(1)
	for i := range h.reservations {
		h.reservations[i].Store(pack.Inf)
	}
	return h
}

// Name implements reclaim.Scheme.
func (h *HE) Name() string { return "HE" }

// Begin implements reclaim.Scheme; Hazard Eras needs no prologue.
func (h *HE) Begin(tid int) {}

// Arena implements reclaim.Scheme.
func (h *HE) Arena() *mem.Arena { return h.arena }

// Era returns the current global era clock value.
func (h *HE) Era() uint64 { return h.globalEra.Load() }

func (h *HE) resv(tid, j int) *atomic.Uint64 {
	return &h.reservations[tid*h.rowStride+j]
}

// GetProtected is the paper's Figure 1 loop: publish the era observed while
// reading until the global era stops moving. Lock-free, not wait-free —
// this is precisely the loop WFE bounds.
func (h *HE) GetProtected(tid int, src *atomic.Uint64, index int, parent mem.Handle) uint64 {
	t := &h.threads[tid]
	if index >= t.dirty {
		t.dirty = index + 1
	}
	r := h.resv(tid, index)
	prevEra := r.Load()
	for steps := uint64(1); ; steps++ {
		ret := src.Load()
		newEra := h.globalEra.Load()
		if prevEra == newEra {
			if steps > t.maxSteps {
				t.maxSteps = steps
			}
			t.stepHist.Record(steps)
			return ret
		}
		r.Store(newEra)
		prevEra = newEra
	}
}

// MaxSteps reports the worst protect-loop iteration count observed by any
// thread for a single GetProtected call.
func (h *HE) MaxSteps() uint64 {
	var max uint64
	for i := range h.threads {
		if n := h.threads[i].maxSteps; n > max {
			max = n
		}
	}
	return max
}

// StepQuantile returns the q-quantile of per-call GetProtected step
// counts across all threads. Call quiescently: the histograms are
// owner-written without synchronisation.
func (h *HE) StepQuantile(q float64) uint64 {
	var sum reclaim.StepHist
	for i := range h.threads {
		sum.Merge(&h.threads[i].stepHist)
	}
	return sum.Quantile(q)
}

// CleanupStats reports how many cleanup scans ran, how many retired
// blocks they examined, and the nanoseconds they spent — the scan
// ablation's cleanup-cost metric. Call quiescently.
func (h *HE) CleanupStats() (scans, blocks, nanos uint64) {
	for i := range h.threads {
		t := &h.threads[i]
		scans += t.scanScans
		blocks += t.scanBlocks
		nanos += t.scanNanos
	}
	return
}

// Alloc implements the paper's alloc_block.
func (h *HE) Alloc(tid int) mem.Handle {
	t := &h.threads[tid]
	if t.allocCount%uint64(h.cfg.EraFreq) == 0 {
		h.advanceEra()
	}
	t.allocCount++
	blk := h.arena.Alloc(tid)
	h.arena.SetAllocEra(blk, h.globalEra.Load())
	return blk
}

// Retire implements the paper's retire, with the race fix: the era is only
// advanced if the block's retire era still equals the global era.
func (h *HE) Retire(tid int, blk mem.Handle) {
	h.arena.SetRetireEra(blk, h.globalEra.Load())
	t := &h.threads[tid]
	t.retired.Append(blk)
	if t.retireCount%uint64(h.cfg.CleanupFreq) == 0 {
		if h.arena.RetireEra(blk) == h.globalEra.Load() {
			h.advanceEra()
		}
		h.cleanup(tid)
	}
	t.retireCount++
}

// advanceEra bumps the clock, guarding the 38-bit packing bound.
func (h *HE) advanceEra() {
	if h.globalEra.Add(1) >= pack.MaxEra {
		panic("he: era clock exhausted (2^38 increments); see pack's width accounting")
	}
}

// Clear implements the paper's clear; only indices used since the previous
// Clear need resetting.
func (h *HE) Clear(tid int) {
	t := &h.threads[tid]
	for j := 0; j < t.dirty; j++ {
		r := h.resv(tid, j)
		if r.Load() != pack.Inf {
			r.Store(pack.Inf)
		}
	}
	t.dirty = 0
}

// cleanup gathers the published eras once and frees every retired block
// whose lifespan none of them covers. The snapshot can only keep more
// blocks than Figure 1's per-block re-scan (a reservation cleared mid-scan
// is still honoured); a reservation published after the snapshot cannot
// protect an already-retired block, by the same argument that makes the
// per-block scan sound. The snapshot is sorted once and binary-searched
// per block — O((R+G)·log G) instead of the per-block linear sweep's
// O(R×G) — unless LinearScan pins the reference oracle.
func (h *HE) cleanup(tid int) {
	t := &h.threads[tid]
	blocks := t.retired.Blocks
	if len(blocks) == 0 {
		return
	}
	start := time.Now()
	eras := t.scratch[:0]
	for i := 0; i < h.cfg.MaxThreads; i++ {
		for j := 0; j < h.cfg.MaxHEs; j++ {
			if era := h.resv(i, j).Load(); era != pack.Inf {
				eras = append(eras, era)
			}
		}
	}
	t.scratch = eras
	// Below the cutoff the linear sweep beats sort+search; the two tests
	// decide identically (property-tested), so this is purely a cost call.
	linear := h.cfg.LinearScan || len(eras) < reclaim.SortCutoff
	if !linear {
		slices.Sort(eras)
	}

	keep := blocks[:0]
	for _, blk := range blocks {
		if h.canDelete(blk, eras, linear) {
			h.arena.Free(tid, blk)
		} else {
			keep = append(keep, blk)
		}
	}
	t.retired.SetBlocks(keep)
	t.scanScans++
	t.scanBlocks += uint64(len(blocks))
	t.scanNanos += uint64(time.Since(start))
}

// canDelete reports whether no gathered era lands in the block's
// [alloc, retire] lifespan; linear selects the reference sweep (the eras
// snapshot is sorted otherwise).
func (h *HE) canDelete(blk mem.Handle, eras []uint64, linear bool) bool {
	allocEra := h.arena.AllocEra(blk)
	retireEra := h.arena.RetireEra(blk)
	if linear {
		return !eraReservedLinear(eras, allocEra, retireEra)
	}
	return !reclaim.ReservedInRange(eras, allocEra, retireEra)
}

// eraReservedLinear is the pre-overhaul O(G) membership sweep, kept as
// the reference oracle for the sorted scan's property test and the
// -ablation scan comparison.
func eraReservedLinear(eras []uint64, lo, hi uint64) bool {
	for _, era := range eras {
		if lo <= era && hi >= era {
			return true
		}
	}
	return false
}

// Unreclaimed implements reclaim.Scheme.
func (h *HE) Unreclaimed() int {
	total := 0
	for i := range h.threads {
		total += h.threads[i].retired.Len()
	}
	return total
}
