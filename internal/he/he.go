// Package he implements Hazard Eras (Ramalhete & Correia, SPAA 2017), the
// lock-free scheme WFE extends, exactly as reproduced in the paper's
// Figure 1 — including the retire() race fix the paper mentions applying
// (re-reading the global era before deciding to advance it).
//
// Paper mapping: Figure 1 (§2.3) line for line — get_protected's
// stabilisation loop, retire's era stamping, and cleanup's reservation
// scan. The unbounded get_protected loop here is the paper's motivating
// problem; its per-thread worst case is observable through MaxSteps, and
// examples/boundedsteps turns the difference into a latency table.
//
// The retire side — retire lists, scan cadence, telemetry — lives in the
// shared reclaim.Retirer; this package contributes the era clock, the
// reservation matrix, and its era Judge (Gather the published eras,
// CanFree every block whose [alloc, retire] lifespan none covers).
package he

import (
	"sync/atomic"

	"wfe/internal/mem"
	"wfe/internal/pack"
	"wfe/internal/reclaim"
	"wfe/internal/trace"
)

type threadState struct {
	allocCount uint64
	// dirty is one past the highest reservation index used since the last
	// Clear.
	dirty int
	_     [64]byte
}

// HE is the Hazard Eras scheme.
type HE struct {
	arena     *mem.Arena
	cfg       reclaim.Config
	rt        *reclaim.Retirer
	globalEra atomic.Uint64

	reservations []atomic.Uint64 // row-major [MaxThreads][MaxHEs] eras
	rowStride    int
	threads      []threadState
}

var _ reclaim.Scheme = (*HE)(nil)
var _ reclaim.Judge = (*HE)(nil)
var _ reclaim.PreScanner = (*HE)(nil)

// New creates a Hazard Eras scheme over the given arena.
func New(arena *mem.Arena, cfg reclaim.Config) *HE {
	cfg = cfg.Defaults()
	stride := (cfg.MaxHEs + 7) &^ 7
	h := &HE{
		arena:        arena,
		cfg:          cfg,
		reservations: make([]atomic.Uint64, cfg.MaxThreads*stride),
		rowStride:    stride,
		threads:      make([]threadState, cfg.MaxThreads),
	}
	h.rt = reclaim.NewRetirer(arena, cfg, h)
	h.globalEra.Store(max(1, cfg.InitialEra))
	for i := range h.reservations {
		h.reservations[i].Store(pack.Inf)
	}
	return h
}

// Name implements reclaim.Scheme.
func (h *HE) Name() string { return "HE" }

// Begin implements reclaim.Scheme; Hazard Eras needs no prologue.
func (h *HE) Begin(tid int) {}

// Arena implements reclaim.Scheme.
func (h *HE) Arena() *mem.Arena { return h.arena }

// Retirer implements reclaim.Scheme.
func (h *HE) Retirer() *reclaim.Retirer { return h.rt }

// Era returns the current global era clock value.
func (h *HE) Era() uint64 { return h.globalEra.Load() }

func (h *HE) resv(tid, j int) *atomic.Uint64 {
	return &h.reservations[tid*h.rowStride+j]
}

// GetProtected is the paper's Figure 1 loop: publish the era observed while
// reading until the global era stops moving. Lock-free, not wait-free —
// this is precisely the loop WFE bounds. Each call's iteration count feeds
// the shared step histogram (the unboundedness, observable).
func (h *HE) GetProtected(tid int, src *atomic.Uint64, index int, parent mem.Handle) uint64 {
	t := &h.threads[tid]
	if index >= t.dirty {
		t.dirty = index + 1
	}
	r := h.resv(tid, index)
	prevEra := r.Load()
	for steps := uint64(1); ; steps++ {
		ret := src.Load()
		newEra := h.globalEra.Load()
		if prevEra == newEra {
			h.rt.RecordSteps(tid, steps)
			return ret
		}
		r.Store(newEra)
		prevEra = newEra
	}
}

// MaxSteps reports the worst protect-loop iteration count observed by any
// thread for a single GetProtected call.
func (h *HE) MaxSteps() uint64 { return h.rt.MaxSteps() }

// Alloc implements the paper's alloc_block.
func (h *HE) Alloc(tid int) mem.Handle {
	t := &h.threads[tid]
	if t.allocCount%uint64(h.cfg.EraFreq) == 0 {
		h.advanceEra(tid)
	}
	t.allocCount++
	blk := h.arena.Alloc(tid)
	h.arena.SetAllocEra(blk, h.globalEra.Load())
	return blk
}

// TryAlloc is Alloc with backpressure: the era cadence still ticks, but
// arena exhaustion reports (0, false) instead of panicking.
func (h *HE) TryAlloc(tid int) (mem.Handle, bool) {
	t := &h.threads[tid]
	if t.allocCount%uint64(h.cfg.EraFreq) == 0 {
		h.advanceEra(tid)
	}
	t.allocCount++
	blk, ok := h.arena.TryAlloc(tid)
	if !ok {
		return 0, false
	}
	h.arena.SetAllocEra(blk, h.globalEra.Load())
	return blk, true
}

// AdvanceClock ticks the global era out of the allocation cadence
// (reclaim.ClockAdvancer) — the emergency-reclamation hook.
func (h *HE) AdvanceClock(tid int) { h.advanceEra(tid) }

// Retire implements the paper's retire: stamp the retire era and hand the
// block to the shared retire-side runtime (PreScan applies the race fix
// right before each gated scan).
func (h *HE) Retire(tid int, blk mem.Handle) {
	h.arena.SetRetireEra(blk, h.globalEra.Load())
	h.rt.Retire(tid, blk)
}

// PreScan implements reclaim.PreScanner — the paper's retire() race fix:
// the era is only advanced if the triggering block's retire era still
// equals the global era.
func (h *HE) PreScan(tid int, blk mem.Handle) {
	if h.arena.RetireEra(blk) == h.globalEra.Load() {
		h.advanceEra(tid)
	}
}

// advanceEra bumps the clock, guarding the 38-bit packing bound.
func (h *HE) advanceEra(tid int) {
	era := h.globalEra.Add(1)
	if era >= pack.MaxEra {
		panic("he: era clock exhausted (2^38 increments); see pack's width accounting")
	}
	h.cfg.Tracer.Emit(tid, trace.KindEraAdvance, era, 0)
}

// BeginBatch implements reclaim.Scheme: Hazard Eras reservations are era
// values that stay published until Clear, so the slots a batch's
// GetProtected calls fill remain valid across items — one span per batch,
// no prologue needed. Holding the reservations across the batch is the
// same conservatism as one long operation.
func (h *HE) BeginBatch(tid int) bool { return true }

// EndBatch implements reclaim.Scheme: the batch-wide Clear.
func (h *HE) EndBatch(tid int) { h.Clear(tid) }

// RetireBatch implements reclaim.Scheme: stamp every block with the era
// read once at submission (monotone, so ≥ each unlink's era — the stamped
// lifespan only over-approximates) and hand the burst to the runtime's
// amortized retire path.
func (h *HE) RetireBatch(tid int, blks []mem.Handle) {
	era := h.globalEra.Load()
	for _, blk := range blks {
		h.arena.SetRetireEra(blk, era)
	}
	h.rt.RetireBatch(tid, blks)
}

// Clear implements the paper's clear; only indices used since the previous
// Clear need resetting.
func (h *HE) Clear(tid int) {
	t := &h.threads[tid]
	for j := 0; j < t.dirty; j++ {
		r := h.resv(tid, j)
		if r.Load() != pack.Inf {
			r.Store(pack.Inf)
		}
	}
	t.dirty = 0
}

// Gather implements reclaim.Judge: snapshot the published eras once per
// scan. The snapshot can only keep more blocks than Figure 1's per-block
// re-scan (a reservation cleared mid-scan is still honoured); a
// reservation published after the snapshot cannot protect an
// already-retired block, by the same argument that makes the per-block
// scan sound.
func (h *HE) Gather(tid int, s *reclaim.Snapshot) {
	for i := 0; i < h.cfg.MaxThreads; i++ {
		for j := 0; j < h.cfg.MaxHEs; j++ {
			if era := h.resv(i, j).Load(); era != pack.Inf {
				s.AddEra(era)
			}
		}
	}
}

// CanFree implements reclaim.Judge via canDelete, which retains the
// pre-overhaul linear sweep as the property-tested reference oracle.
func (h *HE) CanFree(tid int, s *reclaim.Snapshot, blk mem.Handle) bool {
	return h.canDelete(blk, s.Eras(), s.Linear())
}

// canDelete reports whether no gathered era lands in the block's
// [alloc, retire] lifespan; linear selects the reference sweep (the eras
// snapshot is sorted otherwise).
func (h *HE) canDelete(blk mem.Handle, eras []uint64, linear bool) bool {
	allocEra := h.arena.AllocEra(blk)
	retireEra := h.arena.RetireEra(blk)
	if linear {
		return !eraReservedLinear(eras, allocEra, retireEra)
	}
	return !reclaim.ReservedInRange(eras, allocEra, retireEra)
}

// eraReservedLinear is the pre-overhaul O(G) membership sweep, kept as
// the reference oracle for the sorted scan's property test and the
// -ablation scan comparison.
func eraReservedLinear(eras []uint64, lo, hi uint64) bool {
	for _, era := range eras {
		if lo <= era && hi >= era {
			return true
		}
	}
	return false
}

// Unreclaimed implements reclaim.Scheme.
func (h *HE) Unreclaimed() int { return h.rt.Unreclaimed() }
