// Domain-level tests of the public API: guard accounting, telemetry,
// option validation and the generic value slab. The per-structure
// conformance matrix lives in conformance_test.go.
package wfe_test

import (
	"testing"

	"wfe"
)

// testDomain builds a Debug-mode domain; the forceSlow variants are the
// paper's §5 stress configuration for the wait-free schemes.
func testDomain(t testing.TB, kind wfe.SchemeKind, guards, capacity int, forceSlow bool) *wfe.Domain[uint64] {
	t.Helper()
	d, err := wfe.NewDomain[uint64](wfe.Options{
		Scheme:        kind,
		Capacity:      capacity,
		MaxGuards:     guards,
		EraFreq:       32,
		CleanupFreq:   8,
		ForceSlowPath: forceSlow,
		Debug:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// forEachScheme runs f once per SchemeKind, plus the forced-slow-path
// configurations of the two wait-free schemes.
func forEachScheme(t *testing.T, f func(t *testing.T, kind wfe.SchemeKind, forceSlow bool)) {
	for _, kind := range wfe.AllSchemes() {
		t.Run(kind.String(), func(t *testing.T) { f(t, kind, false) })
	}
	for _, kind := range []wfe.SchemeKind{wfe.WFE, wfe.WFEIBR} {
		t.Run(kind.String()+"-slow", func(t *testing.T) { f(t, kind, true) })
	}
}

// TestValueTypes checks that the value slab really is generic: a pointer-
// and string-bearing struct survives a push/pop round trip untouched.
func TestValueTypes(t *testing.T) {
	type payload struct {
		name string
		data []byte
	}
	d, err := wfe.NewDomain[payload](wfe.Options{Capacity: 256, MaxGuards: 1, Debug: true})
	if err != nil {
		t.Fatal(err)
	}
	g := d.Guard()
	defer g.Release()
	s := wfe.NewStack[payload](d)
	s.PushGuarded(g, payload{name: "x", data: []byte{1, 2, 3}})
	got, ok := s.PopGuarded(g)
	if !ok || got.name != "x" || len(got.data) != 3 {
		t.Fatalf("Pop = %+v,%v", got, ok)
	}
}

func TestGuardAccounting(t *testing.T) {
	d, err := wfe.NewDomain[int](wfe.Options{Capacity: 64, MaxGuards: 2})
	if err != nil {
		t.Fatal(err)
	}
	g1 := d.Guard()
	g2 := d.Guard()
	if _, ok := d.TryGuard(); ok {
		t.Fatal("TryGuard succeeded with all guards held")
	}
	g1.Release()
	g3, ok := d.TryGuard()
	if !ok {
		t.Fatal("TryGuard failed after Release")
	}
	g3.Release()
	g2.Release()

	defer func() {
		if recover() == nil {
			t.Fatal("Guard did not panic with all guards held")
		}
	}()
	d.Guard()
	d.Guard()
	d.Guard()
}

// TestReleaseDropsProtections: a guard abandoned mid-operation (Begin
// without End) must not block reclamation once Released — Release is an
// implicit End. Run under EBR, where a leaked active-epoch announcement
// would otherwise halt the epoch clock and make the backlog grow without
// bound.
func TestReleaseDropsProtections(t *testing.T) {
	d := testDomain(t, wfe.EBR, 2, 1<<16, false)
	s := wfe.NewStack[uint64](d)

	leaker := d.Guard()
	g := d.Guard() // hold the other tid so the leaker's is not just reused
	defer g.Release()
	leaker.Begin() // abandoned operation: no matching End
	leaker.Release()
	const churn = 5000
	for i := uint64(0); i < churn; i++ {
		s.PushGuarded(g, i)
		s.PopGuarded(g)
	}
	if backlog := d.Unreclaimed(); backlog > churn/2 {
		t.Fatalf("backlog %d after %d retires: released guard still blocks the epoch", backlog, churn)
	}
}

func TestNewDomainValidation(t *testing.T) {
	if _, err := wfe.NewDomain[int](wfe.Options{Scheme: wfe.SchemeKind(99)}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := wfe.NewDomain[int](wfe.Options{Capacity: -1}); err == nil {
		t.Fatal("negative capacity accepted")
	}
	if _, err := wfe.NewDomain[int](wfe.Options{Capacity: 1 << 30}); err == nil {
		t.Fatal("capacity beyond handle width accepted")
	}
	for name, o := range map[string]wfe.Options{
		"MaxSlots":    {MaxSlots: -1},
		"EraFreq":     {EraFreq: -1},
		"CleanupFreq": {CleanupFreq: -8},
		"MaxAttempts": {MaxAttempts: -1},
		"SpillSize":   {SpillSize: -2048},
	} {
		if _, err := wfe.NewDomain[int](o); err == nil {
			t.Errorf("negative %s accepted", name)
		}
	}
	// The explicit paper defaults must still be accepted unchanged.
	if _, err := wfe.NewDomain[int](wfe.Options{
		Capacity: 1 << 10, EraFreq: 150, CleanupFreq: 30, MaxAttempts: 16, SpillSize: 64,
	}); err != nil {
		t.Fatalf("explicit defaults rejected: %v", err)
	}
}

// TestSpillTelemetryAndCensus drives a producer/consumer imbalance (one
// guard allocates what another frees) through a tiny SpillSize so blocks
// must round-trip the global segment list, then asserts the batched
// transfers surface in Telemetry and the quiescent census accounts for
// every block.
func TestSpillTelemetryAndCensus(t *testing.T) {
	d, err := wfe.NewDomain[uint64](wfe.Options{
		Capacity:    1 << 12,
		MaxGuards:   2,
		EraFreq:     4,
		CleanupFreq: 4,
		SpillSize:   16,
		Debug:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := wfe.NewStack[uint64](d)
	producer := d.Guard()
	consumer := d.Guard()
	for round := 0; round < 24; round++ {
		for i := uint64(0); i < 256; i++ {
			s.PushGuarded(producer, i)
		}
		for {
			if _, ok := s.PopGuarded(consumer); !ok {
				break
			}
		}
	}
	producer.Release()
	consumer.Release()

	tel := d.Telemetry()
	if tel.ArenaSegPushes == 0 || tel.ArenaSegPops == 0 {
		t.Fatalf("no segment traffic despite cross-guard churn: pushes=%d pops=%d",
			tel.ArenaSegPushes, tel.ArenaSegPops)
	}
	if tel.ArenaBumpHighwater == 0 || tel.ArenaBumpHighwater > uint64(tel.Capacity) {
		t.Fatalf("bump highwater %d out of range (capacity %d)", tel.ArenaBumpHighwater, tel.Capacity)
	}
	c := d.ArenaCensus()
	if got := c.Cached + c.Global + c.Live + c.BumpFree; got != c.Capacity {
		t.Fatalf("census leak: %d cached + %d global + %d live + %d bump-free = %d != capacity %d",
			c.Cached, c.Global, c.Live, c.BumpFree, got, c.Capacity)
	}
}

// TestTelemetry checks the WFE-specific counters surface through the
// scheme-agnostic Telemetry snapshot.
func TestTelemetry(t *testing.T) {
	d := testDomain(t, wfe.WFE, 1, 1<<12, true) // forced slow path
	g := d.Guard()
	defer g.Release()
	s := wfe.NewStack[uint64](d)
	for i := uint64(0); i < 200; i++ {
		s.PushGuarded(g, i)
		s.PopGuarded(g)
	}
	tel := d.Telemetry()
	if tel.Scheme != "WFE" {
		t.Fatalf("Scheme = %q", tel.Scheme)
	}
	if tel.Era == 0 {
		t.Fatal("era clock never advanced")
	}
	if tel.SlowPaths == 0 {
		t.Fatal("forced slow path produced no slow paths")
	}
	if tel.Allocs == 0 || tel.Allocs-tel.Frees != tel.InUse {
		t.Fatalf("inconsistent census: %+v", tel)
	}
	if tel.Capacity != 1<<12 {
		t.Fatalf("Capacity = %d", tel.Capacity)
	}
}
