// Conformance suite for the public Domain API: every built-in structure is
// run through every SchemeKind, sequentially against a model and
// concurrently under invariant checks, with the arena's use-after-free
// detection armed — the dstest discipline, lifted to the typed façade.
// CI runs this file under -race.
package wfe_test

import (
	"math/rand"
	"sync"
	"testing"

	"wfe"
)

// testDomain builds a Debug-mode domain; the forceSlow variants are the
// paper's §5 stress configuration for the wait-free schemes.
func testDomain(t testing.TB, kind wfe.SchemeKind, guards, capacity int, forceSlow bool) *wfe.Domain[uint64] {
	t.Helper()
	d, err := wfe.NewDomain[uint64](wfe.Options{
		Scheme:        kind,
		Capacity:      capacity,
		MaxGuards:     guards,
		EraFreq:       32,
		CleanupFreq:   8,
		ForceSlowPath: forceSlow,
		Debug:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// forEachScheme runs f once per SchemeKind, plus the forced-slow-path
// configurations of the two wait-free schemes.
func forEachScheme(t *testing.T, f func(t *testing.T, kind wfe.SchemeKind, forceSlow bool)) {
	for _, kind := range wfe.AllSchemes() {
		t.Run(kind.String(), func(t *testing.T) { f(t, kind, false) })
	}
	for _, kind := range []wfe.SchemeKind{wfe.WFE, wfe.WFEIBR} {
		t.Run(kind.String()+"-slow", func(t *testing.T) { f(t, kind, true) })
	}
}

func TestStackConformance(t *testing.T) {
	forEachScheme(t, func(t *testing.T, kind wfe.SchemeKind, forceSlow bool) {
		d := testDomain(t, kind, 4, 1<<16, forceSlow)
		s := wfe.NewStack[uint64](d)
		g := d.Guard()

		// Sequential LIFO semantics.
		if _, ok := s.PopGuarded(g); ok {
			t.Fatal("pop from empty stack succeeded")
		}
		for v := uint64(1); v <= 100; v++ {
			s.PushGuarded(g, v)
		}
		if n := s.LenGuarded(g); n != 100 {
			t.Fatalf("Len = %d, want 100", n)
		}
		for v := uint64(100); v >= 1; v-- {
			got, ok := s.PopGuarded(g)
			if !ok || got != v {
				t.Fatalf("Pop = %d,%v, want %d,true", got, ok, v)
			}
		}
		g.Release()

		// Concurrent churn: every value pushed is popped exactly once.
		const workers, perWorker = 4, 2000
		sums := make([]uint64, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				g := d.Guard()
				defer g.Release()
				for i := 0; i < perWorker; i++ {
					s.PushGuarded(g, uint64(w*perWorker+i+1))
					if v, ok := s.PopGuarded(g); ok {
						sums[w] += v
					}
				}
			}(w)
		}
		wg.Wait()
		g = d.Guard()
		defer g.Release()
		var total uint64
		for _, s := range sums {
			total += s
		}
		for {
			v, ok := s.PopGuarded(g)
			if !ok {
				break
			}
			total += v
		}
		const n = workers * perWorker
		if want := uint64(n * (n + 1) / 2); total != want {
			t.Fatalf("stack lost or duplicated values: sum %d, want %d", total, want)
		}
	})
}

func TestQueueConformance(t *testing.T) {
	forEachScheme(t, func(t *testing.T, kind wfe.SchemeKind, forceSlow bool) {
		d := testDomain(t, kind, 4, 1<<16, forceSlow)
		q := wfe.NewQueue[uint64](d)
		g := d.Guard()

		// Sequential FIFO semantics.
		if _, ok := q.DequeueGuarded(g); ok {
			t.Fatal("dequeue from empty queue succeeded")
		}
		for v := uint64(1); v <= 100; v++ {
			q.EnqueueGuarded(g, v)
		}
		if n := q.LenGuarded(g); n != 100 {
			t.Fatalf("Len = %d, want 100", n)
		}
		for v := uint64(1); v <= 100; v++ {
			got, ok := q.DequeueGuarded(g)
			if !ok || got != v {
				t.Fatalf("Dequeue = %d,%v, want %d,true", got, ok, v)
			}
		}
		g.Release()

		// Concurrent producers/consumers: exactly-once delivery, checked by
		// commutative checksum.
		const producers, consumers, perProd = 2, 2, 3000
		var produced, consumed, delivered [producers + consumers]uint64
		var wg, cwg sync.WaitGroup
		done := make(chan struct{})
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				g := d.Guard()
				defer g.Release()
				for i := 0; i < perProd; i++ {
					v := uint64(p)<<32 | uint64(i+1)
					q.EnqueueGuarded(g, v)
					produced[p] += v
				}
			}(p)
		}
		for c := 0; c < consumers; c++ {
			cwg.Add(1)
			go func(c int) {
				defer cwg.Done()
				g := d.Guard()
				defer g.Release()
				for {
					v, ok := q.DequeueGuarded(g)
					if !ok {
						select {
						case <-done:
							if v, ok := q.DequeueGuarded(g); ok { // drain after the flag
								consumed[producers+c] += v
								delivered[producers+c]++
								continue
							}
							return
						default:
							continue
						}
					}
					consumed[producers+c] += v
					delivered[producers+c]++
				}
			}(c)
		}
		wg.Wait()
		close(done)
		cwg.Wait()

		var prodSum, consSum, nDelivered uint64
		for i := range produced {
			prodSum += produced[i]
			consSum += consumed[i]
			nDelivered += delivered[i]
		}
		if nDelivered != producers*perProd || prodSum != consSum {
			t.Fatalf("queue lost or duplicated values: delivered %d/%d, checksums %d vs %d",
				nDelivered, producers*perProd, consSum, prodSum)
		}
	})
}

func TestMapConformance(t *testing.T) {
	forEachScheme(t, func(t *testing.T, kind wfe.SchemeKind, forceSlow bool) {
		capacity := 1 << 17
		if kind == wfe.Leak {
			capacity = 1 << 19 // Leak never recycles Put/Delete churn
		}
		d := testDomain(t, kind, 4, capacity, forceSlow)
		m := wfe.NewMap[uint64](d, 64)
		g := d.Guard()

		// Model equivalence on a random op sequence.
		model := make(map[uint64]uint64)
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 4000; i++ {
			key := uint64(rng.Intn(48))
			switch rng.Intn(4) {
			case 0:
				_, dup := model[key]
				if got := m.InsertGuarded(g, key, key*10); got == dup {
					t.Fatalf("op %d: Insert(%d) = %v, model has key: %v", i, key, got, dup)
				}
				if !dup {
					model[key] = key * 10
				}
			case 1:
				_, want := model[key]
				if got := m.DeleteGuarded(g, key); got != want {
					t.Fatalf("op %d: Delete(%d) = %v, model says %v", i, key, got, want)
				}
				delete(model, key)
			case 2:
				wantV, want := model[key]
				gotV, got := m.GetGuarded(g, key)
				if got != want || (got && gotV != wantV) {
					t.Fatalf("op %d: Get(%d) = %d,%v, model says %d,%v", i, key, gotV, got, wantV, want)
				}
			case 3:
				m.PutGuarded(g, key, uint64(i))
				model[key] = uint64(i)
			}
		}
		if n := m.LenGuarded(g); n != len(model) {
			t.Fatalf("Len = %d, model has %d keys", n, len(model))
		}
		for key := range model { // drain: the stress phase assumes an empty map
			if !m.DeleteGuarded(g, key) {
				t.Fatalf("drain: Delete(%d) failed", key)
			}
		}
		g.Release()

		// Concurrent stress: per-key inserts and deletes strictly alternate,
		// so netInserts-netDeletes ∈ {0,1} equals the final membership.
		const workers, keyRange, iters = 4, 48, 4000
		type counters struct{ ins, del [keyRange]uint64 }
		perWorker := make([]counters, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				g := d.Guard()
				defer g.Release()
				rng := rand.New(rand.NewSource(int64(w) + 42))
				c := &perWorker[w]
				for i := 0; i < iters; i++ {
					key := uint64(rng.Intn(keyRange))
					switch rng.Intn(3) {
					case 0:
						if m.InsertGuarded(g, key, key) {
							c.ins[key]++
						}
					case 1:
						if m.DeleteGuarded(g, key) {
							c.del[key]++
						}
					case 2:
						m.GetGuarded(g, key)
					}
				}
			}(w)
		}
		wg.Wait()

		g = d.Guard()
		defer g.Release()
		for key := uint64(0); key < keyRange; key++ {
			var ins, del uint64
			for w := range perWorker {
				ins += perWorker[w].ins[key]
				del += perWorker[w].del[key]
			}
			net := int64(ins) - int64(del)
			if net != 0 && net != 1 {
				t.Fatalf("key %d net count %d (ins=%d del=%d)", key, net, ins, del)
			}
			if _, got := m.GetGuarded(g, key); got != (net == 1) {
				t.Fatalf("key %d present=%v but net=%d", key, got, net)
			}
		}
	})
}

// TestValueTypes checks that the value slab really is generic: a pointer-
// and string-bearing struct survives a push/pop round trip untouched.
func TestValueTypes(t *testing.T) {
	type payload struct {
		name string
		data []byte
	}
	d, err := wfe.NewDomain[payload](wfe.Options{Capacity: 256, MaxGuards: 1, Debug: true})
	if err != nil {
		t.Fatal(err)
	}
	g := d.Guard()
	defer g.Release()
	s := wfe.NewStack[payload](d)
	s.PushGuarded(g, payload{name: "x", data: []byte{1, 2, 3}})
	got, ok := s.PopGuarded(g)
	if !ok || got.name != "x" || len(got.data) != 3 {
		t.Fatalf("Pop = %+v,%v", got, ok)
	}
}

func TestGuardAccounting(t *testing.T) {
	d, err := wfe.NewDomain[int](wfe.Options{Capacity: 64, MaxGuards: 2})
	if err != nil {
		t.Fatal(err)
	}
	g1 := d.Guard()
	g2 := d.Guard()
	if _, ok := d.TryGuard(); ok {
		t.Fatal("TryGuard succeeded with all guards held")
	}
	g1.Release()
	g3, ok := d.TryGuard()
	if !ok {
		t.Fatal("TryGuard failed after Release")
	}
	g3.Release()
	g2.Release()

	defer func() {
		if recover() == nil {
			t.Fatal("Guard did not panic with all guards held")
		}
	}()
	d.Guard()
	d.Guard()
	d.Guard()
}

// TestReleaseDropsProtections: a guard abandoned mid-operation (Begin
// without End) must not block reclamation once Released — Release is an
// implicit End. Run under EBR, where a leaked active-epoch announcement
// would otherwise halt the epoch clock and make the backlog grow without
// bound.
func TestReleaseDropsProtections(t *testing.T) {
	d := testDomain(t, wfe.EBR, 2, 1<<16, false)
	s := wfe.NewStack[uint64](d)

	leaker := d.Guard()
	g := d.Guard() // hold the other tid so the leaker's is not just reused
	defer g.Release()
	leaker.Begin() // abandoned operation: no matching End
	leaker.Release()
	const churn = 5000
	for i := uint64(0); i < churn; i++ {
		s.PushGuarded(g, i)
		s.PopGuarded(g)
	}
	if backlog := d.Unreclaimed(); backlog > churn/2 {
		t.Fatalf("backlog %d after %d retires: released guard still blocks the epoch", backlog, churn)
	}
}

func TestNewDomainValidation(t *testing.T) {
	if _, err := wfe.NewDomain[int](wfe.Options{Scheme: wfe.SchemeKind(99)}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := wfe.NewDomain[int](wfe.Options{Capacity: -1}); err == nil {
		t.Fatal("negative capacity accepted")
	}
	if _, err := wfe.NewDomain[int](wfe.Options{Capacity: 1 << 30}); err == nil {
		t.Fatal("capacity beyond handle width accepted")
	}
}

// TestTelemetry checks the WFE-specific counters surface through the
// scheme-agnostic Telemetry snapshot.
func TestTelemetry(t *testing.T) {
	d := testDomain(t, wfe.WFE, 1, 1<<12, true) // forced slow path
	g := d.Guard()
	defer g.Release()
	s := wfe.NewStack[uint64](d)
	for i := uint64(0); i < 200; i++ {
		s.PushGuarded(g, i)
		s.PopGuarded(g)
	}
	tel := d.Telemetry()
	if tel.Scheme != "WFE" {
		t.Fatalf("Scheme = %q", tel.Scheme)
	}
	if tel.Era == 0 {
		t.Fatal("era clock never advanced")
	}
	if tel.SlowPaths == 0 {
		t.Fatal("forced slow path produced no slow paths")
	}
	if tel.Allocs == 0 || tel.Allocs-tel.Frees != tel.InUse {
		t.Fatalf("inconsistent census: %+v", tel)
	}
	if tel.Capacity != 1<<12 {
		t.Fatalf("Capacity = %d", tel.Capacity)
	}
}
