package wfe

import (
	"errors"

	"wfe/internal/ds/crturn"
)

// TurnQueue is the CRTurn wait-free MPMC FIFO queue of T (Ramalhete &
// Correia), the second wait-free structure of the paper's evaluation
// (Figures 5c/5d). Enqueuers announce nodes that helpers link in "turn"
// order; dequeuers announce requests that helpers satisfy by handing over
// the head's successor — so every operation completes within one full turn
// regardless of scheduling. It needs 2 protection slots per guard.
//
// Like WFQueue, the generic payload travels in a private value box rather
// than the queue node: the hand-off protocol moves a fixed-width word
// between threads, and the box's handle is that word. The receiving
// dequeuer — the only goroutine that ever gets the handle — unboxes the T
// and returns the block to the arena.
//
// The plain methods (Enqueue, Dequeue, Len) are guardless: each leases a
// guard from the Domain's guard runtime for the duration of the operation,
// so any number of goroutines may call them. The Guarded variants take an
// explicit or pinned Guard and skip the lease — use them in hot loops.
type TurnQueue[T any] struct {
	d *Domain[T]
	q *crturn.Queue
}

// NewTurnQueue creates an empty CRTurn queue on the Domain. It leases a
// guard to allocate the sentinel node, parking briefly if all guards are
// busy. The turn protocol's claim word holds at most 254 thread ids, so
// the Domain must be configured with MaxGuards < 255 — set it explicitly
// rather than inheriting the GOMAXPROCS default, which exceeds the limit
// on very large machines; larger configurations panic here, at
// construction.
func NewTurnQueue[T any](d *Domain[T]) *TurnQueue[T] {
	g := d.Pin()
	defer d.Unpin(g)
	return &TurnQueue[T]{d: d, q: crturn.NewTid(liveScheme[T]{d}, d.guards.Cap(), g.tid)}
}

// Enqueue appends v.
func (q *TurnQueue[T]) Enqueue(v T) {
	g := q.d.Pin()
	defer q.d.unpin(g)
	q.EnqueueGuarded(g, v)
}

// Dequeue removes and returns the oldest value; ok is false when empty.
func (q *TurnQueue[T]) Dequeue() (v T, ok bool) {
	g := q.d.Pin()
	defer q.d.unpin(g)
	return q.DequeueGuarded(g)
}

// Len counts queued values; meaningful only quiescently.
func (q *TurnQueue[T]) Len() int {
	g := q.d.Pin()
	defer q.d.unpin(g)
	return q.LenGuarded(g)
}

// TryEnqueue is Enqueue with backpressure: when the arena stays
// exhausted after the Domain's emergency-reclamation pipeline it returns
// ErrArenaExhausted instead of panicking.
func (q *TurnQueue[T]) TryEnqueue(v T) error {
	g := q.d.Pin()
	defer q.d.unpin(g)
	return q.TryEnqueueGuarded(g, v)
}

// EnqueueGuarded is Enqueue on a caller-held guard.
func (q *TurnQueue[T]) EnqueueGuarded(g *Guard[T], v T) {
	box := g.Alloc(v)
	q.q.Enqueue(g.tid, box.handle())
}

// TryEnqueueGuarded is TryEnqueue on a caller-held guard. The turn
// protocol allocates queue nodes internally; an exhaustion hit inside
// that machinery is caught here, the value box is reclaimed, and the
// queue is left unchanged.
func (q *TurnQueue[T]) TryEnqueueGuarded(g *Guard[T], v T) (err error) {
	box, err := g.TryAlloc(v)
	if err != nil {
		return err
	}
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok && errors.Is(e, ErrArenaExhausted) {
				g.Dealloc(box)
				err = ErrArenaExhausted
				return
			}
			panic(r)
		}
	}()
	q.q.Enqueue(g.tid, box.handle())
	return nil
}

// DequeueGuarded is Dequeue on a caller-held guard.
func (q *TurnQueue[T]) DequeueGuarded(g *Guard[T]) (v T, ok bool) {
	h, ok := q.q.Dequeue(g.tid)
	if !ok {
		return v, false
	}
	// h is the value box's handle, handed to exactly one request; unbox
	// and free it directly (see WFQueue.DequeueGuarded).
	box := Ref[T]{h}
	v = g.Value(box)
	g.Dealloc(box)
	return v, true
}

// EnqueueAll appends every value in slice order under one guard lease.
// The turn protocol manages protection per operation internally, so this
// batch amortizes the lease (see WFQueue.EnqueueAll); it panics when the
// arena stays exhausted after the emergency-reclamation pipeline, with
// values already enqueued staying enqueued (use TryEnqueueAll to observe
// partial progress).
func (q *TurnQueue[T]) EnqueueAll(vs []T) {
	g := q.d.pinBatch()
	defer q.d.unpin(g)
	q.EnqueueAllGuarded(g, vs)
}

// EnqueueAllGuarded is EnqueueAll on a caller-held guard.
func (q *TurnQueue[T]) EnqueueAllGuarded(g *Guard[T], vs []T) {
	if _, err := q.TryEnqueueAllGuarded(g, vs); err != nil {
		panic(exhaustedPanic(q.d.arena.Capacity()))
	}
}

// TryEnqueueAll is EnqueueAll with backpressure: on exhaustion mid-run
// it stops, reporting the enqueued prefix length alongside
// ErrArenaExhausted — callers resume from vs[enqueued:].
func (q *TurnQueue[T]) TryEnqueueAll(vs []T) (enqueued int, err error) {
	g := q.d.pinBatch()
	defer q.d.unpin(g)
	return q.TryEnqueueAllGuarded(g, vs)
}

// TryEnqueueAllGuarded is TryEnqueueAll on a caller-held guard.
func (q *TurnQueue[T]) TryEnqueueAllGuarded(g *Guard[T], vs []T) (enqueued int, err error) {
	enqueued = g.runLeaseBatch(len(vs), func(i int) bool {
		err = q.TryEnqueueGuarded(g, vs[i])
		return err == nil
	})
	return enqueued, err
}

// DequeueN removes up to n values under one guard lease, stopping early
// when the queue empties. Values come back in FIFO order.
func (q *TurnQueue[T]) DequeueN(n int) []T {
	g := q.d.pinBatch()
	defer q.d.unpin(g)
	return q.DequeueNGuarded(g, n)
}

// DequeueNGuarded is DequeueN on a caller-held guard.
func (q *TurnQueue[T]) DequeueNGuarded(g *Guard[T], n int) []T {
	out := make([]T, 0, n)
	g.runLeaseBatch(n, func(int) bool {
		v, ok := q.DequeueGuarded(g)
		if ok {
			out = append(out, v)
		}
		return ok
	})
	return out
}

// LenGuarded is Len on a caller-held guard.
func (q *TurnQueue[T]) LenGuarded(g *Guard[T]) int { return q.q.Len() }
