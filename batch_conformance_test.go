// Batched-operation conformance: the batch entry points (MultiGet,
// MultiPut, MultiDelete, MultiInsert, PushAll, PopN, EnqueueAll,
// DequeueN and their Try* twins) run through the same structure × scheme
// × acquisition-path matrix as the per-op conformance harness, under the
// same invariants — exactly-once delivery for the sequences, membership
// against an exact oracle for the kv structures — plus the batch-only
// contracts: positional results, partial progress on arena exhaustion,
// batch telemetry and the trace bracket. CI runs this file under -race.
package wfe_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"wfe"
	"wfe/internal/quiesce"
)

// batchAPI adapts one structure's batch entry points to the matrix. A nil
// guard selects the plain guardless batch methods; a non-nil one the
// Guarded variants. Sequences implement insertAll/removeN; kv structures
// putAll/deleteAll (and getAll where the structure has a batch read).
type batchAPI interface {
	kind() conformKind
	// insertAll pushes/enqueues vs in slice order (sequences only).
	insertAll(g *wfe.Guard[uint64], vs []uint64)
	// removeN pops/dequeues up to n values (sequences only).
	removeN(g *wfe.Guard[uint64], n int) []uint64
	// putAll upserts ks[i]→vs[i]; for the Tree (no unconditional batch
	// write) it is MultiInsert, so repeated keys keep their first value.
	putAll(g *wfe.Guard[uint64], ks, vs []uint64)
	// deleteAll removes every key, reporting per-key presence.
	deleteAll(g *wfe.Guard[uint64], ks []uint64) []bool
	// getOne reads one key through the per-op path (every kv structure
	// has it; the HashMap additionally gets getAll coverage).
	getOne(g *wfe.Guard[uint64], k uint64) (uint64, bool)
	length(g *wfe.Guard[uint64]) int
}

type stackBatchAPI struct{ s *wfe.Stack[uint64] }

func (a stackBatchAPI) kind() conformKind { return lifoKind }
func (a stackBatchAPI) insertAll(g *wfe.Guard[uint64], vs []uint64) {
	if g == nil {
		a.s.PushAll(vs)
	} else {
		a.s.PushAllGuarded(g, vs)
	}
}
func (a stackBatchAPI) removeN(g *wfe.Guard[uint64], n int) []uint64 {
	if g == nil {
		return a.s.PopN(n)
	}
	return a.s.PopNGuarded(g, n)
}
func (a stackBatchAPI) putAll(*wfe.Guard[uint64], []uint64, []uint64) { panic("stack: no putAll") }
func (a stackBatchAPI) deleteAll(*wfe.Guard[uint64], []uint64) []bool { panic("stack: no deleteAll") }
func (a stackBatchAPI) getOne(*wfe.Guard[uint64], uint64) (uint64, bool) {
	panic("stack: no getOne")
}
func (a stackBatchAPI) length(g *wfe.Guard[uint64]) int {
	if g == nil {
		return a.s.Len()
	}
	return a.s.LenGuarded(g)
}

// batchFifo is the shared batch method set of the three FIFO queues.
type batchFifo interface {
	EnqueueAll(vs []uint64)
	EnqueueAllGuarded(g *wfe.Guard[uint64], vs []uint64)
	DequeueN(n int) []uint64
	DequeueNGuarded(g *wfe.Guard[uint64], n int) []uint64
	Len() int
	LenGuarded(g *wfe.Guard[uint64]) int
}

type fifoBatchAPI struct{ q batchFifo }

func (a fifoBatchAPI) kind() conformKind { return fifoKind }
func (a fifoBatchAPI) insertAll(g *wfe.Guard[uint64], vs []uint64) {
	if g == nil {
		a.q.EnqueueAll(vs)
	} else {
		a.q.EnqueueAllGuarded(g, vs)
	}
}
func (a fifoBatchAPI) removeN(g *wfe.Guard[uint64], n int) []uint64 {
	if g == nil {
		return a.q.DequeueN(n)
	}
	return a.q.DequeueNGuarded(g, n)
}
func (a fifoBatchAPI) putAll(*wfe.Guard[uint64], []uint64, []uint64) { panic("fifo: no putAll") }
func (a fifoBatchAPI) deleteAll(*wfe.Guard[uint64], []uint64) []bool { panic("fifo: no deleteAll") }
func (a fifoBatchAPI) getOne(*wfe.Guard[uint64], uint64) (uint64, bool) {
	panic("fifo: no getOne")
}
func (a fifoBatchAPI) length(g *wfe.Guard[uint64]) int {
	if g == nil {
		return a.q.Len()
	}
	return a.q.LenGuarded(g)
}

type hashMapBatchAPI struct{ m *wfe.HashMap[uint64] }

func (a hashMapBatchAPI) kind() conformKind                      { return kvKind }
func (a hashMapBatchAPI) insertAll(*wfe.Guard[uint64], []uint64) { panic("map: no insertAll") }
func (a hashMapBatchAPI) removeN(*wfe.Guard[uint64], int) []uint64 {
	panic("map: no removeN")
}
func (a hashMapBatchAPI) putAll(g *wfe.Guard[uint64], ks, vs []uint64) {
	if g == nil {
		a.m.MultiPut(ks, vs)
	} else {
		a.m.MultiPutGuarded(g, ks, vs)
	}
}
func (a hashMapBatchAPI) deleteAll(g *wfe.Guard[uint64], ks []uint64) []bool {
	if g == nil {
		return a.m.MultiDelete(ks)
	}
	return a.m.MultiDeleteGuarded(g, ks)
}
func (a hashMapBatchAPI) getOne(g *wfe.Guard[uint64], k uint64) (uint64, bool) {
	var vals []uint64
	var oks []bool
	if g == nil {
		vals, oks = a.m.MultiGet([]uint64{k})
	} else {
		vals, oks = a.m.MultiGetGuarded(g, []uint64{k})
	}
	return vals[0], oks[0]
}
func (a hashMapBatchAPI) length(g *wfe.Guard[uint64]) int {
	if g == nil {
		return a.m.Len()
	}
	return a.m.LenGuarded(g)
}

type treeBatchAPI struct{ t *wfe.Tree[uint64] }

func (a treeBatchAPI) kind() conformKind                      { return kvKind }
func (a treeBatchAPI) insertAll(*wfe.Guard[uint64], []uint64) { panic("tree: no insertAll") }
func (a treeBatchAPI) removeN(*wfe.Guard[uint64], int) []uint64 {
	panic("tree: no removeN")
}
func (a treeBatchAPI) putAll(g *wfe.Guard[uint64], ks, vs []uint64) {
	if g == nil {
		a.t.MultiInsert(ks, vs)
	} else {
		a.t.MultiInsertGuarded(g, ks, vs)
	}
}
func (a treeBatchAPI) deleteAll(g *wfe.Guard[uint64], ks []uint64) []bool {
	if g == nil {
		return a.t.MultiDelete(ks)
	}
	return a.t.MultiDeleteGuarded(g, ks)
}
func (a treeBatchAPI) getOne(g *wfe.Guard[uint64], k uint64) (uint64, bool) {
	if g == nil {
		return a.t.Get(k)
	}
	return a.t.GetGuarded(g, k)
}
func (a treeBatchAPI) length(g *wfe.Guard[uint64]) int {
	if g == nil {
		return a.t.Len()
	}
	return a.t.LenGuarded(g)
}

var batchStructures = []struct {
	name  string
	build func(d *wfe.Domain[uint64]) batchAPI
}{
	{"Stack", func(d *wfe.Domain[uint64]) batchAPI { return stackBatchAPI{wfe.NewStack[uint64](d)} }},
	{"Queue", func(d *wfe.Domain[uint64]) batchAPI { return fifoBatchAPI{wfe.NewQueue[uint64](d)} }},
	{"WFQueue", func(d *wfe.Domain[uint64]) batchAPI { return fifoBatchAPI{wfe.NewWFQueue[uint64](d)} }},
	{"TurnQueue", func(d *wfe.Domain[uint64]) batchAPI { return fifoBatchAPI{wfe.NewTurnQueue[uint64](d)} }},
	{"HashMap", func(d *wfe.Domain[uint64]) batchAPI { return hashMapBatchAPI{wfe.NewHashMap[uint64](d, 64)} }},
	{"Tree", func(d *wfe.Domain[uint64]) batchAPI { return treeBatchAPI{wfe.NewTree[uint64](d)} }},
}

// batchPaths mirrors acquisitionPaths for burst-granular work: how a
// worker holds its guard across a run of bursts.
var batchPaths = []struct {
	name string
	run  func(d *wfe.Domain[uint64], bursts int, body func(b int, g *wfe.Guard[uint64]))
}{
	{"guardless", func(d *wfe.Domain[uint64], bursts int, body func(int, *wfe.Guard[uint64])) {
		for b := 0; b < bursts; b++ {
			body(b, nil)
		}
	}},
	{"pinned", func(d *wfe.Domain[uint64], bursts int, body func(int, *wfe.Guard[uint64])) {
		g := d.Pin()
		defer d.Unpin(g)
		for b := 0; b < bursts; b++ {
			body(b, g)
		}
	}},
	{"acquire-per-op", func(d *wfe.Domain[uint64], bursts int, body func(int, *wfe.Guard[uint64])) {
		for b := 0; b < bursts; b++ {
			g, err := d.AcquireGuard(context.Background())
			if err != nil {
				panic(err)
			}
			body(b, g)
			g.Release()
		}
	}},
}

// TestBatchConformance runs the batch APIs through the full structure ×
// scheme × acquisition-path matrix.
func TestBatchConformance(t *testing.T) {
	for _, st := range batchStructures {
		t.Run(st.name, func(t *testing.T) {
			forEachScheme(t, func(t *testing.T, kind wfe.SchemeKind, forceSlow bool) {
				if testing.Short() && forceSlow {
					t.Skip("forced-slow variants are full-mode only")
				}
				capacity := 1 << 16
				if kind == wfe.Leak {
					capacity = 1 << 19 // Leak never recycles churn
				}
				d := testDomain(t, kind, conformGuards, capacity, forceSlow)
				api := st.build(d)

				batchModelPhase(t, d, api)
				for _, path := range batchPaths {
					if testing.Short() && path.name != "guardless" {
						continue
					}
					t.Run(path.name, func(t *testing.T) {
						switch api.kind() {
						case lifoKind, fifoKind:
							batchSequencePhase(t, d, api, path.run)
						case kvKind:
							batchKVPhase(t, d, api, path.run)
						}
					})
				}
				batchDrainPhase(t, d, api, kind)
			})
		})
	}
}

// batchModelPhase pins the sequential batch semantics: slice-order
// insertion, positional results, early stop on empty, width-0 and
// width-1 edge cases.
func batchModelPhase(t *testing.T, d *wfe.Domain[uint64], api batchAPI) {
	t.Helper()
	g := d.Guard()
	defer g.Release()

	switch api.kind() {
	case lifoKind, fifoKind:
		if got := api.removeN(g, 4); len(got) != 0 {
			t.Fatalf("removeN on empty = %v, want []", got)
		}
		vs := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
		api.insertAll(g, vs)
		api.insertAll(g, nil) // empty batch: a no-op, not a panic
		if n := api.length(g); n != 10 {
			t.Fatalf("Len after insertAll = %d, want 10", n)
		}
		got := api.removeN(g, 4)
		want := []uint64{1, 2, 3, 4} // FIFO
		if api.kind() == lifoKind {
			want = []uint64{10, 9, 8, 7} // LIFO: top first
		}
		if len(got) != 4 {
			t.Fatalf("removeN(4) = %v", got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("removeN(4) = %v, want %v", got, want)
			}
		}
		rest := api.removeN(g, 100) // over-ask drains and stops early
		if len(rest) != 6 {
			t.Fatalf("removeN(100) returned %d values, want the remaining 6", len(rest))
		}
		if n := api.length(g); n != 0 {
			t.Fatalf("Len after drain = %d, want 0", n)
		}
	case kvKind:
		ks := []uint64{3, 1, 4, 1, 5} // key 1 repeats within the batch
		vs := []uint64{30, 10, 40, 11, 50}
		api.putAll(g, ks, vs)
		for _, k := range []uint64{3, 4, 5} {
			if _, ok := api.getOne(g, k); !ok {
				t.Fatalf("key %d missing after putAll", k)
			}
		}
		if v, ok := api.getOne(g, 1); !ok || (v != 10 && v != 11) {
			t.Fatalf("repeated key 1 = %d,%v after putAll", v, ok)
		}
		oks := api.deleteAll(g, []uint64{3, 99, 1, 1})
		wantOks := []bool{true, false, true, false} // second delete of 1 misses
		for i := range wantOks {
			if oks[i] != wantOks[i] {
				t.Fatalf("deleteAll oks = %v, want %v", oks, wantOks)
			}
		}
		api.deleteAll(g, []uint64{4, 5})
		if n := api.length(g); n != 0 {
			t.Fatalf("Len after deletes = %d, want 0", n)
		}
	}
}

// batchSequencePhase checks exactly-once delivery under concurrent
// PushAll/PopN (EnqueueAll/DequeueN) bursts: every value inserted by any
// burst is removed exactly once across all bursts plus the final drain.
func batchSequencePhase(t *testing.T, d *wfe.Domain[uint64], api batchAPI,
	run func(d *wfe.Domain[uint64], bursts int, body func(int, *wfe.Guard[uint64]))) {
	t.Helper()
	const workers, bursts, width = 4, 50, 8
	var produced, consumed [workers]uint64
	var inserted, removed [workers]uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vs := make([]uint64, width)
			run(d, bursts, func(b int, g *wfe.Guard[uint64]) {
				for j := range vs {
					v := uint64(w*bursts*width+b*width+j) + 1
					vs[j] = v
					produced[w] += v
				}
				api.insertAll(g, vs)
				inserted[w] += width
				for _, v := range api.removeN(g, width/2) {
					consumed[w] += v
					removed[w]++
				}
			})
		}(w)
	}
	wg.Wait()

	g := d.Guard()
	defer g.Release()
	var prodSum, consSum, nIns, nRem uint64
	for w := 0; w < workers; w++ {
		prodSum += produced[w]
		consSum += consumed[w]
		nIns += inserted[w]
		nRem += removed[w]
	}
	for {
		got := api.removeN(g, 64)
		if len(got) == 0 {
			break
		}
		for _, v := range got {
			consSum += v
			nRem++
		}
	}
	if nRem != nIns || prodSum != consSum {
		t.Fatalf("lost or duplicated values: removed %d/%d, checksums %d vs %d",
			nRem, nIns, consSum, prodSum)
	}
}

// batchKVPhase checks batch writes against an exact per-worker oracle:
// workers own disjoint key stripes, so each worker's model map predicts
// its own reads precisely while the domain-level machinery (spans,
// deferred retires, scan cadence) is shared and contended.
func batchKVPhase(t *testing.T, d *wfe.Domain[uint64], api batchAPI,
	run func(d *wfe.Domain[uint64], bursts int, body func(int, *wfe.Guard[uint64]))) {
	t.Helper()
	const workers, bursts, width, stripe = 4, 50, 8, 16
	var wg sync.WaitGroup
	werrs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 7))
			model := make(map[uint64]uint64)
			base := uint64(w * stripe)
			ks := make([]uint64, width)
			vs := make([]uint64, width)
			run(d, bursts, func(b int, g *wfe.Guard[uint64]) {
				if werrs[w] != nil {
					return // the model is unreliable after a divergence
				}
				for j := range ks {
					ks[j] = base + uint64(rng.Intn(stripe))
					vs[j] = uint64(b*width+j) + 1
				}
				if rng.Intn(2) == 0 {
					api.putAll(g, ks, vs)
					// The HashMap upserts, the Tree keeps the first value;
					// track membership only, which both guarantee.
					for j := range ks {
						if _, dup := model[ks[j]]; !dup {
							model[ks[j]] = vs[j]
						}
					}
				} else {
					oks := api.deleteAll(g, ks)
					for j := range ks {
						_, want := model[ks[j]]
						// A key repeated in one delete batch is present
						// only for its first occurrence.
						for jj := 0; jj < j; jj++ {
							if ks[jj] == ks[j] {
								want = false
							}
						}
						if oks[j] != want {
							werrs[w] = fmt.Errorf("worker %d burst %d: delete(%d) = %v, model says %v",
								w, b, ks[j], oks[j], want)
							return
						}
						delete(model, ks[j])
					}
				}
				// Spot-check membership after every burst.
				k := base + uint64(rng.Intn(stripe))
				_, want := model[k]
				if _, got := api.getOne(g, k); got != want {
					werrs[w] = fmt.Errorf("worker %d burst %d: get(%d) = %v, model says %v",
						w, b, k, got, want)
				}
			})
			// Drain the stripe so the shared drain phase sees empty.
			for k := range model {
				api.deleteAll(nil, []uint64{k})
			}
		}(w)
	}
	wg.Wait()
	for _, err := range werrs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// batchDrainPhase asserts quiescent cleanliness plus the batch
// telemetry: the bursts were accounted (BatchOps, BatchedItems) and the
// guardless entry points went through the batch lease path.
func batchDrainPhase(t *testing.T, d *wfe.Domain[uint64], api batchAPI, kind wfe.SchemeKind) {
	t.Helper()
	g := d.Guard()
	if api.kind() != kvKind {
		for len(api.removeN(g, 64)) > 0 {
		}
	}
	if n := api.length(g); n != 0 {
		g.Release()
		t.Fatalf("structure not empty after drain: Len = %d", n)
	}
	g.Release()

	quiesce.Settle(d)
	if err := quiesce.Check(d, kind != wfe.Leak); err != nil {
		t.Fatal(err)
	}
	tel := d.Telemetry()
	if tel.BatchOps == 0 {
		t.Fatal("no BatchOps accounted after batch churn")
	}
	if tel.BatchedItems < tel.BatchOps {
		t.Fatalf("BatchedItems %d < BatchOps %d", tel.BatchedItems, tel.BatchOps)
	}
	if tel.BatchGuardCacheHits+tel.BatchGuardCacheMisses == 0 {
		t.Fatal("guardless batch entry points recorded no batch lease-cache traffic")
	}
	if tel.GuardCacheHits+tel.GuardCacheMisses < tel.BatchGuardCacheHits+tel.BatchGuardCacheMisses {
		t.Fatal("batch lease traffic not folded into the overall cache totals")
	}
}

// TestBatchPartialProgress pins the Try* exhaustion contract on every
// allocating batch API: under the Leak scheme (which never recycles, so
// exhaustion is deterministic) a too-large batch applies a prefix,
// reports its length, and returns ErrArenaExhausted — and the structure
// holds exactly that prefix.
func TestBatchPartialProgress(t *testing.T) {
	const capacity = 128
	build := func(t *testing.T) *wfe.Domain[uint64] {
		d, err := wfe.NewDomain[uint64](wfe.Options{
			Scheme:    wfe.Leak,
			Capacity:  capacity,
			MaxGuards: 2,
			Debug:     true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	vals := make([]uint64, capacity+64)
	keys := make([]uint64, capacity+64)
	for i := range vals {
		vals[i] = uint64(i) + 1
		keys[i] = uint64(i) + 1
	}

	t.Run("Stack", func(t *testing.T) {
		d := build(t)
		s := wfe.NewStack[uint64](d)
		pushed, err := s.TryPushAll(vals)
		if !errors.Is(err, wfe.ErrArenaExhausted) {
			t.Fatalf("TryPushAll err = %v, want ErrArenaExhausted", err)
		}
		if pushed == 0 || pushed >= len(vals) {
			t.Fatalf("TryPushAll pushed = %d, want a proper prefix of %d", pushed, len(vals))
		}
		if n := s.Len(); n != pushed {
			t.Fatalf("Len = %d, pushed = %d", n, pushed)
		}
		// The prefix landed in slice order: the top is vals[pushed-1].
		if got := s.PopN(1); len(got) != 1 || got[0] != vals[pushed-1] {
			t.Fatalf("top = %v, want %d", got, vals[pushed-1])
		}
	})

	t.Run("Queue", func(t *testing.T) {
		d := build(t)
		q := wfe.NewQueue[uint64](d)
		enq, err := q.TryEnqueueAll(vals)
		if !errors.Is(err, wfe.ErrArenaExhausted) {
			t.Fatalf("TryEnqueueAll err = %v, want ErrArenaExhausted", err)
		}
		if enq == 0 || enq >= len(vals) {
			t.Fatalf("TryEnqueueAll enqueued = %d, want a proper prefix", enq)
		}
		got := q.DequeueN(enq)
		if len(got) != enq || got[0] != vals[0] || got[enq-1] != vals[enq-1] {
			t.Fatalf("prefix mismatch: got %d values, first %d last %d", len(got), got[0], got[len(got)-1])
		}
	})

	t.Run("HashMap", func(t *testing.T) {
		d := build(t)
		m := wfe.NewHashMap[uint64](d, 8)
		applied, err := m.TryMultiPut(keys, vals)
		if !errors.Is(err, wfe.ErrArenaExhausted) {
			t.Fatalf("TryMultiPut err = %v, want ErrArenaExhausted", err)
		}
		if applied == 0 || applied >= len(keys) {
			t.Fatalf("TryMultiPut applied = %d, want a proper prefix", applied)
		}
		vs, oks := m.MultiGet(keys)
		for i := range keys {
			if oks[i] != (i < applied) {
				t.Fatalf("key %d present=%v, applied prefix is %d", keys[i], oks[i], applied)
			}
			if oks[i] && vs[i] != vals[i] {
				t.Fatalf("key %d = %d, want %d", keys[i], vs[i], vals[i])
			}
		}
	})

	t.Run("Tree", func(t *testing.T) {
		d := build(t)
		tr := wfe.NewTree[uint64](d)
		inserted, attempted, err := tr.TryMultiInsert(keys, vals)
		if !errors.Is(err, wfe.ErrArenaExhausted) {
			t.Fatalf("TryMultiInsert err = %v, want ErrArenaExhausted", err)
		}
		if attempted == 0 || attempted >= len(keys) {
			t.Fatalf("TryMultiInsert attempted = %d, want a proper prefix", attempted)
		}
		for i := range keys {
			_, ok := tr.Get(keys[i])
			if ok != (i < attempted) {
				t.Fatalf("key %d present=%v, attempted prefix is %d", keys[i], ok, attempted)
			}
			if ok != inserted[i] {
				t.Fatalf("key %d: inserted[%d]=%v but Get says %v", keys[i], i, inserted[i], ok)
			}
		}
	})

	t.Run("WFQueue", func(t *testing.T) {
		d := build(t)
		q := wfe.NewWFQueue[uint64](d)
		enq, err := q.TryEnqueueAll(vals)
		if !errors.Is(err, wfe.ErrArenaExhausted) {
			t.Fatalf("TryEnqueueAll err = %v, want ErrArenaExhausted", err)
		}
		if enq == 0 || enq >= len(vals) {
			t.Fatalf("TryEnqueueAll enqueued = %d, want a proper prefix", enq)
		}
		got := q.DequeueN(enq + 8)
		if len(got) != enq || got[0] != vals[0] {
			t.Fatalf("prefix mismatch: %d values dequeued, enqueued %d", len(got), enq)
		}
	})
}

// TestBatchTraceBracket pins the trace contract: a width-n batch (n > 1)
// emits one batch-begin/batch-end pair around its items, with the item
// and retire counts in the end record's payloads.
func TestBatchTraceBracket(t *testing.T) {
	d, err := wfe.NewDomain[uint64](wfe.Options{
		Scheme:    wfe.WFE,
		Capacity:  1 << 10,
		MaxGuards: 2,
		Trace:     true,
		Debug:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := wfe.NewHashMap[uint64](d, 8)
	keys := []uint64{1, 2, 3, 4}
	vals := []uint64{10, 20, 30, 40}
	m.MultiPut(keys, vals)
	m.MultiDelete(keys)

	var begins, ends int
	var lastEnd wfe.TraceEvent
	for _, ev := range d.TraceEvents() {
		switch ev.Kind {
		case "batch-begin":
			begins++
		case "batch-end":
			ends++
			lastEnd = ev
		}
	}
	if begins != 2 || ends != 2 {
		t.Fatalf("trace brackets: %d begins, %d ends, want 2 and 2", begins, ends)
	}
	// The delete batch ran last: 4 items, 4 deferred retires.
	if lastEnd.A != 4 || lastEnd.B != 4 {
		t.Fatalf("batch-end payload = items %d retires %d, want 4 and 4", lastEnd.A, lastEnd.B)
	}
}
