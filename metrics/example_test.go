package metrics_test

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"wfe"
	"wfe/metrics"
)

// ExampleRegistry shows the three-line path from a Domain to a scrapeable
// OpenMetrics endpoint: register the Domain's Telemetry method, attach
// its background sampler if one runs, and serve the handler.
func ExampleRegistry() {
	d, _ := wfe.NewDomain[int](wfe.Options{Capacity: 1 << 16})
	s := d.StartSampler(wfe.SamplerConfig{Interval: 5 * time.Millisecond})
	defer s.Stop()

	reg := metrics.NewRegistry()
	reg.Register("app", d.Telemetry)
	reg.RegisterSampler("app", s)

	// In production: addr, _ := metrics.Serve("127.0.0.1:9100", reg)
	// and point a Prometheus scraper at http://<addr>/metrics.
	var _ http.Handler = reg.Handler()

	var buf strings.Builder
	_ = reg.WriteOpenMetrics(&buf)
	fmt.Println(metrics.Validate(strings.NewReader(buf.String())) == nil)
	// Output: true
}
