package metrics

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wfe"
)

// churn gives the domain's counters something to show.
func churn(t *testing.T, d *wfe.Domain[int]) {
	t.Helper()
	s := wfe.NewStack[int](d)
	for i := 0; i < 2000; i++ {
		s.Push(i)
	}
	for i := 0; i < 2000; i++ {
		if _, ok := s.Pop(); !ok {
			t.Fatal("stack drained early")
		}
	}
}

func newDomain(t *testing.T) *wfe.Domain[int] {
	t.Helper()
	d, err := wfe.NewDomain[int](wfe.Options{Capacity: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestWriteOpenMetricsValidates(t *testing.T) {
	d := newDomain(t)
	churn(t, d)
	reg := NewRegistry()
	reg.Register("test", d.Telemetry)

	var buf bytes.Buffer
	if err := reg.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if err := Validate(strings.NewReader(text)); err != nil {
		t.Fatalf("exposition does not validate: %v\n%s", err, text)
	}
	for _, want := range []string{
		`wfe_allocs_total{domain="test",scheme="WFE"}`,
		`wfe_unreclaimed_blocks{domain="test",scheme="WFE"}`,
		"# TYPE wfe_allocs counter",
		"# EOF",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if strings.Contains(text, "wfe_sampler_ticks") {
		t.Error("sampler gauges exported without a registered sampler")
	}
}

func TestSamplerMetricsAndRecommendation(t *testing.T) {
	d := newDomain(t)
	s := d.StartSampler(wfe.SamplerConfig{Interval: time.Millisecond})
	defer s.Stop()
	churn(t, d)
	deadline := time.Now().Add(2 * time.Second)
	for s.Ticks() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.Ticks() < 3 {
		t.Fatal("sampler never ticked")
	}

	reg := NewRegistry()
	reg.Register("test", d.Telemetry)
	reg.RegisterSampler("test", s)

	var buf bytes.Buffer
	if err := reg.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if err := Validate(strings.NewReader(text)); err != nil {
		t.Fatalf("exposition does not validate: %v\n%s", err, text)
	}
	for _, want := range []string{
		"wfe_sampler_ticks", "wfe_allocs_per_second", "wfe_advisor_recommendation",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestHandlerEndpoints(t *testing.T) {
	d := newDomain(t)
	churn(t, d)
	reg := NewRegistry()
	reg.Register("test", d.Telemetry)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Errorf("Content-Type %q, want %q", ct, ContentType)
	}
	if err := Validate(resp.Body); err != nil {
		t.Errorf("/metrics does not validate: %v", err)
	}

	vresp, err := http.Get(srv.URL + "/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer vresp.Body.Close()
	var vars []Vars
	if err := json.NewDecoder(vresp.Body).Decode(&vars); err != nil {
		t.Fatalf("/vars is not JSON: %v", err)
	}
	if len(vars) != 1 || vars[0].Domain != "test" || vars[0].Telemetry.Allocs == 0 {
		t.Errorf("unexpected /vars payload: %+v", vars)
	}

	presp, err := http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, presp.Body)
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", presp.StatusCode)
	}
}

func TestUnregister(t *testing.T) {
	d := newDomain(t)
	reg := NewRegistry()
	reg.Register("gone", d.Telemetry)
	reg.Unregister("gone")
	var buf bytes.Buffer
	if err := reg.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "gone") {
		t.Error("unregistered domain still exported")
	}
	if err := Validate(&buf); err != nil {
		t.Errorf("empty exposition does not validate: %v", err)
	}
}

func TestServe(t *testing.T) {
	d := newDomain(t)
	reg := NewRegistry()
	reg.Register("test", d.Telemetry)
	addr, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := Validate(resp.Body); err != nil {
		t.Errorf("served exposition does not validate: %v", err)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"missing EOF":         "# TYPE x gauge\n# HELP x y\nx 1\n",
		"sample without TYPE": "orphan 1\n# EOF\n",
		"counter sans _total": "# TYPE c counter\n# HELP c h\nc 1\n# EOF\n",
		"content after EOF":   "# EOF\n# TYPE x gauge\n",
		"duplicate TYPE":      "# TYPE x gauge\n# TYPE x gauge\n# EOF\n",
		"HELP before TYPE":    "# HELP x y\n# TYPE x gauge\n# EOF\n",
		"unknown comment":     "# FOO bar\n# EOF\n",
		"unknown metric type": "# TYPE x widget\n# EOF\n",
	}
	for name, text := range cases {
		if err := Validate(strings.NewReader(text)); err == nil {
			t.Errorf("%s: Validate accepted malformed exposition", name)
		}
	}
	good := "# TYPE x gauge\n# HELP x y\nx{l=\"v\"} 1\n# TYPE c counter\n# HELP c h\nc_total 2\n# EOF\n"
	if err := Validate(strings.NewReader(good)); err != nil {
		t.Errorf("Validate rejected well-formed exposition: %v", err)
	}
}

// TestValidateRejectsIllegalEscapes pins the escape rule: OpenMetrics
// label values know exactly three escapes (\\, \", \n); Go's %q emits
// \x, \u and \r forms the format forbids, and Validate must catch them.
func TestValidateRejectsIllegalEscapes(t *testing.T) {
	header := "# TYPE x gauge\n# HELP x y\n"
	bad := map[string]string{
		"hex escape":     header + "x{l=\"a\\x01b\"} 1\n# EOF\n",
		"unicode escape": header + "x{l=\"caf\\u00e9\"} 1\n# EOF\n",
		"cr escape":      header + "x{l=\"a\\rb\"} 1\n# EOF\n",
		"tab escape":     header + "x{l=\"a\\tb\"} 1\n# EOF\n",
		"dangling slash": header + "x{l=\"a\\\"} 1\n# EOF\n",
	}
	for name, text := range bad {
		if err := Validate(strings.NewReader(text)); err == nil {
			t.Errorf("%s: Validate accepted an illegal label escape", name)
		}
	}
	legal := map[string]string{
		"backslash":      header + "x{l=\"a\\\\b\"} 1\n# EOF\n",
		"quote":          header + "x{l=\"a\\\"b\"} 1\n# EOF\n",
		"newline":        header + "x{l=\"a\\nb\"} 1\n# EOF\n",
		"raw utf8":       header + "x{l=\"café ü\"} 1\n# EOF\n",
		"raw control":    header + "x{l=\"a\x01b\"} 1\n# EOF\n",
		"brace in value": header + "x{l=\"a}b\"} 1\n# EOF\n",
	}
	for name, text := range legal {
		if err := Validate(strings.NewReader(text)); err != nil {
			t.Errorf("%s: Validate rejected a legal exposition: %v", name, err)
		}
	}
}

// TestOpenMetricsEscapesHostileDomainName is the writer-side regression
// for the %q bug: a domain registered under a name containing a control
// character, a non-ASCII rune, quotes and backslashes must export as an
// exposition that both our Validate and the spec's escaping rules
// accept — raw UTF-8 for the exotic runes, backslash escapes for the
// three defined ones.
func TestOpenMetricsEscapesHostileDomainName(t *testing.T) {
	d := newDomain(t)
	churn(t, d)
	reg := NewRegistry()
	hostile := "café \x01 \"quoted\\path\"\nline2"
	reg.Register(hostile, d.Telemetry)

	var buf bytes.Buffer
	if err := reg.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if err := Validate(strings.NewReader(text)); err != nil {
		t.Fatalf("hostile domain name produced an invalid exposition: %v\n%s", err, text)
	}
	want := `domain="caf` + "é \x01" + ` \"quoted\\path\"\nline2"`
	if !strings.Contains(text, want) {
		t.Errorf("exposition does not contain the spec-escaped label %q", want)
	}
	for _, illegal := range []string{`\x`, `\u`} {
		if strings.Contains(text, illegal) {
			t.Errorf("exposition contains the forbidden %q escape:\n%s", illegal, text)
		}
	}
}
