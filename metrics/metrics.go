// Package metrics is the export tier of wfe's observability runtime: an
// HTTP handler that renders registered Domains' telemetry as OpenMetrics
// text (the Prometheus exposition format) and as a JSON variables dump,
// with net/http/pprof mounted alongside. It deliberately depends only on
// the standard library and the root wfe package — register a Domain's
// Telemetry method and point a scraper at /metrics:
//
//	reg := metrics.NewRegistry()
//	reg.Register("app", d.Telemetry)
//	reg.RegisterSampler("app", d.Sampler())
//	go http.ListenAndServe("127.0.0.1:9100", reg.Handler())
//
// The registry pulls: nothing is collected until a scrape arrives, so an
// idle endpoint costs nothing and the numbers are as fresh as the scrape.
package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"

	"wfe"
)

// ContentType is the OpenMetrics exposition content type served by the
// /metrics endpoint.
const ContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// A Registry holds named telemetry sources and serves them over HTTP.
// Register sources at setup; the handler snapshots them per scrape.
// All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	sources  map[string]func() wfe.Telemetry
	samplers map[string]*wfe.Sampler
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		sources:  map[string]func() wfe.Telemetry{},
		samplers: map[string]*wfe.Sampler{},
	}
}

// Register adds (or replaces) a telemetry source under the given name,
// which becomes the metrics' `domain` label. A Domain's Telemetry method
// value fits directly: reg.Register("app", d.Telemetry).
func (r *Registry) Register(name string, source func() wfe.Telemetry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sources[name] = source
}

// RegisterSampler attaches a Domain's background Sampler under the same
// name, adding its derived-rate gauges to the exposition. A nil sampler
// (Domain built without one) is ignored.
func (r *Registry) RegisterSampler(name string, s *wfe.Sampler) {
	if s == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.samplers[name] = s
}

// Unregister removes a source and its sampler.
func (r *Registry) Unregister(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.sources, name)
	delete(r.samplers, name)
}

// snapshot collects every registered source once, in name order.
type row struct {
	name  string
	tel   wfe.Telemetry
	rates *wfe.SamplerRates
	rec   string
}

func (r *Registry) snapshot() []row {
	r.mu.Lock()
	names := make([]string, 0, len(r.sources))
	for n := range r.sources {
		names = append(names, n)
	}
	sources := make(map[string]func() wfe.Telemetry, len(r.sources))
	samplers := make(map[string]*wfe.Sampler, len(r.samplers))
	for n, s := range r.sources {
		sources[n] = s
	}
	for n, s := range r.samplers {
		samplers[n] = s
	}
	r.mu.Unlock()

	sort.Strings(names)
	rows := make([]row, 0, len(names))
	for _, n := range names {
		rw := row{name: n, tel: sources[n]()}
		if s := samplers[n]; s != nil {
			rates := s.Rates()
			rw.rates = &rates
			if rec, ok := s.Recommendation(); ok {
				rw.rec = rec.Scheme
			}
		}
		rows = append(rows, rw)
	}
	return rows
}

// metric is one exposition family: OpenMetrics type, help text, and a
// value extractor per registered domain.
type metric struct {
	name string
	typ  string // "counter" | "gauge"
	help string
	val  func(row) (float64, bool)
}

func counter(name, help string, f func(wfe.Telemetry) uint64) metric {
	return metric{name, "counter", help, func(r row) (float64, bool) { return float64(f(r.tel)), true }}
}

func gauge(name, help string, f func(row) (float64, bool)) metric {
	return metric{name, "gauge", help, f}
}

func telGauge(name, help string, f func(wfe.Telemetry) float64) metric {
	return gauge(name, help, func(r row) (float64, bool) { return f(r.tel), true })
}

func rateGauge(name, help string, f func(wfe.SamplerRates) float64) metric {
	return gauge(name, help, func(r row) (float64, bool) {
		if r.rates == nil {
			return 0, false
		}
		return f(*r.rates), true
	})
}

// families is the fixed exposition schema: every Telemetry counter plus
// the sampler's derived rates. OpenMetrics counters carry the `_total`
// suffix; point-in-time readings are gauges.
var families = []metric{
	telGauge("wfe_unreclaimed_blocks", "Retired blocks not yet recycled.",
		func(t wfe.Telemetry) float64 { return float64(t.Unreclaimed) }),
	telGauge("wfe_in_use_blocks", "Allocated blocks (live or retired).",
		func(t wfe.Telemetry) float64 { return float64(t.InUse) }),
	telGauge("wfe_capacity_blocks", "Arena size in blocks.",
		func(t wfe.Telemetry) float64 { return float64(t.Capacity) }),
	telGauge("wfe_era", "Global era/epoch clock (0 for clock-less schemes).",
		func(t wfe.Telemetry) float64 { return float64(t.Era) }),
	telGauge("wfe_guards_free", "Guard tids currently available to the pool.",
		func(t wfe.Telemetry) float64 { return float64(t.GuardsFree) }),
	telGauge("wfe_max_guards", "Configured guard count.",
		func(t wfe.Telemetry) float64 { return float64(t.MaxGuards) }),
	telGauge("wfe_protect_steps_p99", "p99 protect-loop iteration count.",
		func(t wfe.Telemetry) float64 { return float64(t.P99Steps) }),
	telGauge("wfe_protect_steps_max", "Worst protect-loop iteration count seen.",
		func(t wfe.Telemetry) float64 { return float64(t.MaxSteps) }),
	counter("wfe_allocs", "Total block allocations.", func(t wfe.Telemetry) uint64 { return t.Allocs }),
	counter("wfe_frees", "Total blocks recycled.", func(t wfe.Telemetry) uint64 { return t.Frees }),
	counter("wfe_slow_paths", "Protected reads that requested helping (WFE/WFEIBR).",
		func(t wfe.Telemetry) uint64 { return t.SlowPaths }),
	counter("wfe_scan_runs", "Cleanup scans over the retire lists.",
		func(t wfe.Telemetry) uint64 { return t.ScanScans }),
	counter("wfe_scan_blocks", "Retired blocks examined by cleanup scans.",
		func(t wfe.Telemetry) uint64 { return t.ScanBlocks }),
	counter("wfe_scan_nanoseconds", "Nanoseconds spent in cleanup scans.",
		func(t wfe.Telemetry) uint64 { return t.ScanNanos }),
	counter("wfe_arena_seg_pushes", "Whole-segment spills onto the global free list.",
		func(t wfe.Telemetry) uint64 { return t.ArenaSegPushes }),
	counter("wfe_arena_seg_pops", "Whole-segment refills off the global free list.",
		func(t wfe.Telemetry) uint64 { return t.ArenaSegPops }),
	counter("wfe_arena_bump_highwater_blocks", "Distinct blocks ever handed out by the bump allocator.",
		func(t wfe.Telemetry) uint64 { return t.ArenaBumpHighwater }),
	counter("wfe_guard_acquires", "Guards handed out by the pool.",
		func(t wfe.Telemetry) uint64 { return t.GuardAcquires }),
	counter("wfe_guard_parks", "Guard acquisitions that parked waiting.",
		func(t wfe.Telemetry) uint64 { return t.GuardParks }),
	counter("wfe_guard_cache_hits", "Guards claimed out of the lease cache.",
		func(t wfe.Telemetry) uint64 { return t.GuardCacheHits }),
	counter("wfe_guard_cache_misses", "Pin/guardless operations that missed the lease cache.",
		func(t wfe.Telemetry) uint64 { return t.GuardCacheMisses }),
	counter("wfe_scheme_switches", "Live scheme swaps completed by Domain.Switch.",
		func(t wfe.Telemetry) uint64 { return t.SchemeSwitches }),
	counter("wfe_batch_ops", "Batched operations (MultiGet, PushAll, ...) completed.",
		func(t wfe.Telemetry) uint64 { return t.BatchOps }),
	counter("wfe_batch_items", "Items run inside batched operations.",
		func(t wfe.Telemetry) uint64 { return t.BatchedItems }),
	counter("wfe_batch_guard_cache_hits", "Batch entry points that claimed a guard from the lease cache.",
		func(t wfe.Telemetry) uint64 { return t.BatchGuardCacheHits }),
	counter("wfe_batch_guard_cache_misses", "Batch entry points that missed the lease cache.",
		func(t wfe.Telemetry) uint64 { return t.BatchGuardCacheMisses }),
	telGauge("wfe_arena_pressure", "Arena occupancy fraction (in-use blocks over capacity).",
		func(t wfe.Telemetry) float64 {
			if t.Capacity == 0 {
				return 0
			}
			return float64(t.InUse) / float64(t.Capacity)
		}),
	counter("wfe_alloc_stalls", "Allocations that found the arena exhausted and entered the emergency-reclamation pipeline.",
		func(t wfe.Telemetry) uint64 { return t.AllocStalls }),
	counter("wfe_emergency_scans", "Out-of-cadence cleanup scans forced by allocation stalls.",
		func(t wfe.Telemetry) uint64 { return t.EmergencyScans }),
	rateGauge("wfe_allocs_per_second", "EWMA block allocation rate (sampler).",
		func(r wfe.SamplerRates) float64 { return r.AllocsPerSec }),
	rateGauge("wfe_frees_per_second", "EWMA block recycle rate (sampler).",
		func(r wfe.SamplerRates) float64 { return r.FreesPerSec }),
	rateGauge("wfe_retires_per_second", "EWMA retire rate (sampler).",
		func(r wfe.SamplerRates) float64 { return r.RetiresPerSec }),
	rateGauge("wfe_scans_per_second", "EWMA cleanup-scan rate (sampler).",
		func(r wfe.SamplerRates) float64 { return r.ScansPerSec }),
	rateGauge("wfe_backlog_slope_blocks_per_second", "EWMA signed backlog growth rate (sampler).",
		func(r wfe.SamplerRates) float64 { return r.BacklogSlope }),
	rateGauge("wfe_guard_parks_per_tick", "EWMA guard parks per sampler tick.",
		func(r wfe.SamplerRates) float64 { return r.ParksPerTick }),
	gauge("wfe_sampler_ticks", "Samples collected by the background sampler.",
		func(r row) (float64, bool) {
			if r.rates == nil {
				return 0, false
			}
			return float64(r.rates.Ticks), true
		}),
}

// escapeLabel renders a label value per the OpenMetrics ABNF, in which
// exactly three escape sequences exist: `\\` for backslash, `\"` for
// double-quote and `\n` for line feed. Every other byte — control
// characters and non-ASCII UTF-8 included — is emitted raw. Go's %q is
// not a substitute: it emits \x, \u and \r escapes for exotic runes,
// which the format forbids and strict scrapers reject.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// WriteOpenMetrics renders every registered source in the OpenMetrics
// text exposition format, terminated by the mandatory `# EOF` line. Each
// sample carries a `domain` label (the Register name) and a `scheme`
// label (the Domain's reclamation scheme); the live advisor
// recommendation, when a sampler is attached, exports as the info-style
// gauge wfe_advisor_recommendation{recommended="..."} 1.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	rows := r.snapshot()
	bw := bufio.NewWriter(w)
	for _, m := range families {
		vals := make([]string, 0, len(rows))
		for _, rw := range rows {
			v, ok := m.val(rw)
			if !ok {
				continue
			}
			// OpenMetrics counters expose the `_total`-suffixed sample of
			// the family name.
			sample := m.name
			if m.typ == "counter" {
				sample += "_total"
			}
			vals = append(vals, fmt.Sprintf("%s{domain=\"%s\",scheme=\"%s\"} %g",
				sample, escapeLabel(rw.name), escapeLabel(rw.tel.Scheme), v))
		}
		if len(vals) == 0 {
			continue
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, m.typ)
		fmt.Fprintf(bw, "# HELP %s %s\n", m.name, m.help)
		for _, v := range vals {
			fmt.Fprintln(bw, v)
		}
	}
	recs := false
	for _, rw := range rows {
		if rw.rec != "" {
			recs = true
			break
		}
	}
	if recs {
		fmt.Fprintln(bw, "# TYPE wfe_advisor_recommendation gauge")
		fmt.Fprintln(bw, "# HELP wfe_advisor_recommendation Live advisor scheme recommendation (1 = currently recommended).")
		for _, rw := range rows {
			if rw.rec != "" {
				fmt.Fprintf(bw, "wfe_advisor_recommendation{domain=\"%s\",scheme=\"%s\",recommended=\"%s\"} 1\n",
					escapeLabel(rw.name), escapeLabel(rw.tel.Scheme), escapeLabel(rw.rec))
			}
		}
	}
	fmt.Fprintln(bw, "# EOF")
	return bw.Flush()
}

// Vars is the JSON shape of the /vars endpoint: per-domain telemetry plus
// the sampler's rates and recommendation when attached.
type Vars struct {
	Domain         string            `json:"domain"`
	Telemetry      wfe.Telemetry     `json:"telemetry"`
	Rates          *wfe.SamplerRates `json:"rates,omitempty"`
	Recommendation string            `json:"recommendation,omitempty"`
}

// WriteVars renders every registered source as a JSON array — the
// machine-readable sibling of /metrics, for tools (cmd/wfemon) that want
// typed values without parsing the exposition format.
func (r *Registry) WriteVars(w io.Writer) error {
	rows := r.snapshot()
	out := make([]Vars, len(rows))
	for i, rw := range rows {
		out[i] = Vars{Domain: rw.name, Telemetry: rw.tel, Rates: rw.rates, Recommendation: rw.rec}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Handler returns the registry's HTTP mux:
//
//	/metrics        OpenMetrics exposition
//	/vars           JSON telemetry dump
//	/debug/pprof/…  net/http/pprof (profiles label bench workers by
//	                scheme/structure/phase when they set pprof labels)
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		if err := r.WriteOpenMetrics(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/vars", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := r.WriteVars(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Validate reads an OpenMetrics text exposition and checks its structural
// invariants: every sample belongs to a declared family, counter samples
// carry the _total suffix, TYPE lines precede their samples, and the
// stream ends with `# EOF`. It is what the CI observability job runs
// against a live scrape; a nil error means the exposition is well-formed.
func Validate(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	types := map[string]string{} // family -> type
	sawEOF := false
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if sawEOF && text != "" {
			return fmt.Errorf("line %d: content after # EOF", line)
		}
		switch {
		case text == "":
			continue
		case text == "# EOF":
			sawEOF = true
		case strings.HasPrefix(text, "# TYPE "):
			fields := strings.Fields(text)
			if len(fields) != 4 {
				return fmt.Errorf("line %d: malformed TYPE line %q", line, text)
			}
			name, typ := fields[2], fields[3]
			if typ != "counter" && typ != "gauge" && typ != "info" && typ != "histogram" && typ != "summary" {
				return fmt.Errorf("line %d: unknown metric type %q", line, typ)
			}
			if _, dup := types[name]; dup {
				return fmt.Errorf("line %d: duplicate TYPE for family %q", line, name)
			}
			types[name] = typ
		case strings.HasPrefix(text, "# HELP "):
			fields := strings.Fields(text)
			if len(fields) < 3 {
				return fmt.Errorf("line %d: malformed HELP line %q", line, text)
			}
			if _, ok := types[fields[2]]; !ok {
				return fmt.Errorf("line %d: HELP for undeclared family %q", line, fields[2])
			}
		case strings.HasPrefix(text, "#"):
			return fmt.Errorf("line %d: unknown comment line %q", line, text)
		default:
			name := text
			if i := strings.IndexAny(name, "{ "); i >= 0 {
				name = name[:i]
			}
			family, ok := types[name]
			if !ok && strings.HasSuffix(name, "_total") {
				family, ok = types[strings.TrimSuffix(name, "_total")]
				if ok && family != "counter" {
					return fmt.Errorf("line %d: _total sample %q on non-counter family", line, name)
				}
			}
			if !ok {
				return fmt.Errorf("line %d: sample %q has no preceding TYPE declaration", line, name)
			}
			if family == "counter" && !strings.HasSuffix(name, "_total") {
				return fmt.Errorf("line %d: counter sample %q missing _total suffix", line, name)
			}
			rest := text[len(name):]
			if !strings.HasPrefix(rest, "{") && !strings.HasPrefix(rest, " ") {
				return fmt.Errorf("line %d: malformed sample %q", line, text)
			}
			if err := checkLabelEscapes(rest); err != nil {
				return fmt.Errorf("line %d: %v", line, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !sawEOF {
		return fmt.Errorf("exposition does not end with # EOF")
	}
	return nil
}

// checkLabelEscapes walks a sample line's label section and rejects any
// escape sequence outside the three the OpenMetrics ABNF defines (`\\`,
// `\"`, `\n`). This is the guard against writers that quote label values
// with Go's %q, whose \x/\u/\r escapes strict scrapers refuse to parse.
func checkLabelEscapes(rest string) error {
	if !strings.HasPrefix(rest, "{") {
		return nil
	}
	inQuote := false
	for i := 0; i < len(rest); i++ {
		c := rest[i]
		switch {
		case inQuote && c == '\\':
			i++
			if i == len(rest) {
				return fmt.Errorf("label section ends mid-escape: %q", rest)
			}
			if e := rest[i]; e != '\\' && e != '"' && e != 'n' {
				return fmt.Errorf(`illegal escape \%c in label value (OpenMetrics defines only \\, \" and \n)`, e)
			}
		case c == '"':
			inQuote = !inQuote
		case !inQuote && c == '}':
			return nil
		}
	}
	return fmt.Errorf("unterminated label section %q", rest)
}

// Serve binds addr, serves the registry's handler on it in a background
// goroutine, and returns the bound address (useful with a ":0" port) —
// the one-liner the command-line tools' -metrics flag uses. The listener
// stays open for the life of the process; tools expose it until exit.
func Serve(addr string, reg *Registry) (string, error) {
	srv := &http.Server{Handler: reg.Handler()}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
