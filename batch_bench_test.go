// Batched-operation benchmarks and the CI guard asserting the
// acceptance bar: at batch width 32 the MultiPut/MultiDelete path must
// reach at least 1.3x the per-op guardless throughput on the hash-map
// churn mix for the era schemes, while width 1 — the batch machinery
// with nothing to amortize — must stay within 1.1x of per-op cost. The
// benchmarks run in any `go test -bench` sweep; the guard test is
// env-gated (WFE_OVERHEAD_GUARD=1) because it needs a quiet machine to
// be a fair judge, and CI runs it on a dedicated step.
package wfe_test

import (
	"fmt"
	"os"
	"testing"

	"wfe"
)

// batchChurn drives the 50% put / 50% delete mix over 512 keys through
// the guardless HashMap API: per operation at width 0, or as
// MultiPut/MultiDelete bursts of the given width. b.N counts items
// either way, so ns/op compares directly across widths.
func batchChurn(b *testing.B, kind wfe.SchemeKind, width int) {
	b.Helper()
	d, err := wfe.NewDomain[uint64](wfe.Options{
		Scheme:   kind,
		Capacity: 1 << 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	m := wfe.NewHashMap[uint64](d, 64)
	const mask = 511
	if width == 0 {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := uint64(i) & mask
			if i&1 == 0 {
				m.Put(k, uint64(i))
			} else {
				m.Delete(k)
			}
		}
		return
	}
	keys := make([]uint64, width)
	vals := make([]uint64, width)
	insert := true
	b.ResetTimer()
	for i := 0; i < b.N; i += width {
		for j := range keys {
			keys[j] = uint64(i+j) & mask
			vals[j] = uint64(i + j)
		}
		if insert {
			m.MultiPut(keys, vals)
		} else {
			m.MultiDelete(keys)
		}
		insert = !insert
	}
}

func BenchmarkBatchPerOp(b *testing.B) { batchChurn(b, wfe.WFE, 0) }
func BenchmarkBatch1(b *testing.B)     { batchChurn(b, wfe.WFE, 1) }
func BenchmarkBatch8(b *testing.B)     { batchChurn(b, wfe.WFE, 8) }
func BenchmarkBatch32(b *testing.B)    { batchChurn(b, wfe.WFE, 32) }
func BenchmarkBatch128(b *testing.B)   { batchChurn(b, wfe.WFE, 128) }

// TestBatchSpeedupGuard is the CI-asserted bar for the batch APIs, per
// era scheme (WFE and HE): width 32 at >= 1.3x per-op throughput, width
// 1 within 1.1x of per-op cost. Timing ratios on shared runners are
// noisy, so the guard takes the best (lowest ns/item) of several
// attempts per side — a genuine regression slows every attempt; noise
// does not speed one up.
func TestBatchSpeedupGuard(t *testing.T) {
	if os.Getenv("WFE_OVERHEAD_GUARD") != "1" {
		t.Skip("set WFE_OVERHEAD_GUARD=1 to run the batch speedup guard")
	}
	const attempts = 4
	best := func(kind wfe.SchemeKind, width int) float64 {
		bestNs := 0.0
		for i := 0; i < attempts; i++ {
			r := testing.Benchmark(func(b *testing.B) { batchChurn(b, kind, width) })
			ns := float64(r.NsPerOp())
			if bestNs == 0 || ns < bestNs {
				bestNs = ns
			}
		}
		return bestNs
	}
	for _, kind := range []wfe.SchemeKind{wfe.WFE, wfe.HE} {
		t.Run(fmt.Sprint(kind), func(t *testing.T) {
			perOp := best(kind, 0)
			b1 := best(kind, 1)
			b32 := best(kind, 32)
			speedup := perOp / b32
			overhead := b1 / perOp
			t.Logf("%s: per-op %.1f ns/item, batch1 %.1f ns/item (%.3fx), batch32 %.1f ns/item (%.2fx speedup)",
				kind, perOp, b1, overhead, b32, speedup)
			if speedup < 1.3 {
				t.Errorf("%s: batch=32 speedup %.2fx below the 1.3x bar (per-op %.1f ns/item, batch32 %.1f ns/item)",
					kind, speedup, perOp, b32)
			}
			if overhead > 1.1 {
				t.Errorf("%s: batch=1 costs %.2fx per-op, above the 1.1x bar (per-op %.1f ns/item, batch1 %.1f ns/item)",
					kind, overhead, perOp, b1)
			}
		})
	}
}
