// Public-API conformance harness: one table-driven matrix runs every
// built-in structure (Stack, Queue, and the paper's four promoted
// evaluation workloads — WFQueue, TurnQueue, HashMap, Tree) against every
// SchemeKind (plus the forced-slow-path variants of the wait-free schemes)
// across all three guard acquisition paths (guardless, pinned,
// acquire-per-op), with the arena's use-after-free detection armed.
//
// Each structure × scheme cell runs a sequential model phase against an
// oracle through an explicit Guard, a concurrent phase per acquisition
// path under exactly-once / net-membership invariants, and finally a
// quiescent drain asserting the retired-block backlog collapses and every
// guard returns to the pool. CI runs this file under -race.
package wfe_test

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"wfe"
	"wfe/internal/quiesce"
)

// conformKind classifies a structure's semantics for the oracle phases.
type conformKind int

const (
	lifoKind conformKind = iota // Stack
	fifoKind                    // Queue, WFQueue, TurnQueue
	kvKind                      // HashMap, Tree
)

// conformAPI adapts one public structure to the matrix. A nil guard selects
// the plain guardless methods; a non-nil one the Guarded variants.
type conformAPI interface {
	kind() conformKind
	// insert pushes/enqueues k (sequences, always true) or Inserts k→k (kv).
	insert(g *wfe.Guard[uint64], k uint64) bool
	// remove pops/dequeues (k ignored; returns the value) or Deletes k.
	remove(g *wfe.Guard[uint64], k uint64) (uint64, bool)
	// get and put are kv-only; sequences never see them.
	get(g *wfe.Guard[uint64], k uint64) (uint64, bool)
	put(g *wfe.Guard[uint64], k, v uint64)
	length(g *wfe.Guard[uint64]) int
}

type stackAPI struct{ s *wfe.Stack[uint64] }

func (a stackAPI) kind() conformKind { return lifoKind }
func (a stackAPI) insert(g *wfe.Guard[uint64], k uint64) bool {
	if g == nil {
		a.s.Push(k)
	} else {
		a.s.PushGuarded(g, k)
	}
	return true
}
func (a stackAPI) remove(g *wfe.Guard[uint64], _ uint64) (uint64, bool) {
	if g == nil {
		return a.s.Pop()
	}
	return a.s.PopGuarded(g)
}
func (a stackAPI) get(*wfe.Guard[uint64], uint64) (uint64, bool) { panic("stack: no get") }
func (a stackAPI) put(*wfe.Guard[uint64], uint64, uint64)        { panic("stack: no put") }
func (a stackAPI) length(g *wfe.Guard[uint64]) int {
	if g == nil {
		return a.s.Len()
	}
	return a.s.LenGuarded(g)
}

// fifoQueue is the shared method set of the three public FIFO queues
// (Queue, WFQueue, TurnQueue); one adapter covers them all.
type fifoQueue interface {
	Enqueue(v uint64)
	EnqueueGuarded(g *wfe.Guard[uint64], v uint64)
	Dequeue() (uint64, bool)
	DequeueGuarded(g *wfe.Guard[uint64]) (uint64, bool)
	Len() int
	LenGuarded(g *wfe.Guard[uint64]) int
}

type fifoAPI struct{ q fifoQueue }

func (a fifoAPI) kind() conformKind { return fifoKind }
func (a fifoAPI) insert(g *wfe.Guard[uint64], k uint64) bool {
	if g == nil {
		a.q.Enqueue(k)
	} else {
		a.q.EnqueueGuarded(g, k)
	}
	return true
}
func (a fifoAPI) remove(g *wfe.Guard[uint64], _ uint64) (uint64, bool) {
	if g == nil {
		return a.q.Dequeue()
	}
	return a.q.DequeueGuarded(g)
}
func (a fifoAPI) get(*wfe.Guard[uint64], uint64) (uint64, bool) { panic("queue: no get") }
func (a fifoAPI) put(*wfe.Guard[uint64], uint64, uint64)        { panic("queue: no put") }
func (a fifoAPI) length(g *wfe.Guard[uint64]) int {
	if g == nil {
		return a.q.Len()
	}
	return a.q.LenGuarded(g)
}

type hashMapAPI struct{ m *wfe.HashMap[uint64] }

func (a hashMapAPI) kind() conformKind { return kvKind }
func (a hashMapAPI) insert(g *wfe.Guard[uint64], k uint64) bool {
	if g == nil {
		return a.m.Insert(k, k*10)
	}
	return a.m.InsertGuarded(g, k, k*10)
}
func (a hashMapAPI) remove(g *wfe.Guard[uint64], k uint64) (uint64, bool) {
	if g == nil {
		return 0, a.m.Delete(k)
	}
	return 0, a.m.DeleteGuarded(g, k)
}
func (a hashMapAPI) get(g *wfe.Guard[uint64], k uint64) (uint64, bool) {
	if g == nil {
		return a.m.Get(k)
	}
	return a.m.GetGuarded(g, k)
}
func (a hashMapAPI) put(g *wfe.Guard[uint64], k, v uint64) {
	if g == nil {
		a.m.Put(k, v)
	} else {
		a.m.PutGuarded(g, k, v)
	}
}
func (a hashMapAPI) length(g *wfe.Guard[uint64]) int {
	if g == nil {
		return a.m.Len()
	}
	return a.m.LenGuarded(g)
}

type treeAPI struct{ t *wfe.Tree[uint64] }

func (a treeAPI) kind() conformKind { return kvKind }
func (a treeAPI) insert(g *wfe.Guard[uint64], k uint64) bool {
	if g == nil {
		return a.t.Insert(k, k*10)
	}
	return a.t.InsertGuarded(g, k, k*10)
}
func (a treeAPI) remove(g *wfe.Guard[uint64], k uint64) (uint64, bool) {
	if g == nil {
		return 0, a.t.Delete(k)
	}
	return 0, a.t.DeleteGuarded(g, k)
}
func (a treeAPI) get(g *wfe.Guard[uint64], k uint64) (uint64, bool) {
	if g == nil {
		return a.t.Get(k)
	}
	return a.t.GetGuarded(g, k)
}
func (a treeAPI) put(g *wfe.Guard[uint64], k, v uint64) {
	if g == nil {
		a.t.Put(k, v)
	} else {
		a.t.PutGuarded(g, k, v)
	}
}
func (a treeAPI) length(g *wfe.Guard[uint64]) int {
	if g == nil {
		return a.t.Len()
	}
	return a.t.LenGuarded(g)
}

// conformStructures is the structure axis of the matrix. Map is an alias
// of HashMap (see TestMapIsHashMap) and needs no row of its own.
var conformStructures = []struct {
	name  string
	build func(d *wfe.Domain[uint64]) conformAPI
}{
	{"Stack", func(d *wfe.Domain[uint64]) conformAPI { return stackAPI{wfe.NewStack[uint64](d)} }},
	{"Queue", func(d *wfe.Domain[uint64]) conformAPI { return fifoAPI{wfe.NewQueue[uint64](d)} }},
	{"WFQueue", func(d *wfe.Domain[uint64]) conformAPI { return fifoAPI{wfe.NewWFQueue[uint64](d)} }},
	{"TurnQueue", func(d *wfe.Domain[uint64]) conformAPI { return fifoAPI{wfe.NewTurnQueue[uint64](d)} }},
	{"HashMap", func(d *wfe.Domain[uint64]) conformAPI { return hashMapAPI{wfe.NewHashMap[uint64](d, 64)} }},
	{"Tree", func(d *wfe.Domain[uint64]) conformAPI { return treeAPI{wfe.NewTree[uint64](d)} }},
}

// acquisitionPaths is the third matrix axis: how each concurrent worker
// obtains its guard. body receives nil for the guardless path.
var acquisitionPaths = []struct {
	name string
	run  func(d *wfe.Domain[uint64], iters int, body func(i int, g *wfe.Guard[uint64]))
}{
	{"guardless", func(d *wfe.Domain[uint64], iters int, body func(int, *wfe.Guard[uint64])) {
		for i := 0; i < iters; i++ {
			body(i, nil)
		}
	}},
	{"pinned", func(d *wfe.Domain[uint64], iters int, body func(int, *wfe.Guard[uint64])) {
		g := d.Pin()
		defer d.Unpin(g)
		for i := 0; i < iters; i++ {
			body(i, g)
		}
	}},
	{"acquire-per-op", func(d *wfe.Domain[uint64], iters int, body func(int, *wfe.Guard[uint64])) {
		for i := 0; i < iters; i++ {
			g, err := d.AcquireGuard(context.Background())
			if err != nil {
				panic(err)
			}
			body(i, g)
			g.Release()
		}
	}},
}

const (
	conformGuards   = 4
	conformKeyRange = 32
)

// TestConformance is the full structure × scheme × acquisition-path matrix.
func TestConformance(t *testing.T) {
	for _, st := range conformStructures {
		t.Run(st.name, func(t *testing.T) {
			forEachScheme(t, func(t *testing.T, kind wfe.SchemeKind, forceSlow bool) {
				if testing.Short() && forceSlow {
					t.Skip("forced-slow variants are full-mode only")
				}
				capacity := 1 << 16
				if kind == wfe.Leak {
					capacity = 1 << 19 // Leak never recycles churn
				}
				d := testDomain(t, kind, conformGuards, capacity, forceSlow)
				api := st.build(d)

				conformModelPhase(t, d, api)
				for _, path := range acquisitionPaths {
					if testing.Short() && path.name != "guardless" {
						continue
					}
					t.Run(path.name, func(t *testing.T) {
						switch api.kind() {
						case lifoKind, fifoKind:
							conformSequencePhase(t, d, api, path.run)
						case kvKind:
							conformKVPhase(t, d, api, path.run)
						}
					})
				}
				conformDrainPhase(t, d, api, kind)
			})
		})
	}
}

// conformModelPhase checks sequential semantics against an oracle through
// an explicit Guard (the third acquisition style, covered here once).
func conformModelPhase(t *testing.T, d *wfe.Domain[uint64], api conformAPI) {
	t.Helper()
	g := d.Guard()
	defer g.Release()

	switch api.kind() {
	case lifoKind, fifoKind:
		if _, ok := api.remove(g, 0); ok {
			t.Fatal("remove from empty structure succeeded")
		}
		for v := uint64(1); v <= 100; v++ {
			api.insert(g, v)
		}
		if n := api.length(g); n != 100 {
			t.Fatalf("Len = %d, want 100", n)
		}
		for i := 0; i < 100; i++ {
			want := uint64(i + 1) // FIFO order
			if api.kind() == lifoKind {
				want = uint64(100 - i)
			}
			got, ok := api.remove(g, 0)
			if !ok || got != want {
				t.Fatalf("remove #%d = %d,%v, want %d,true", i, got, ok, want)
			}
		}
		if _, ok := api.remove(g, 0); ok {
			t.Fatal("remove from drained structure succeeded")
		}
	case kvKind:
		model := make(map[uint64]uint64)
		rng := rand.New(rand.NewSource(1))
		ops := 4000
		if testing.Short() {
			ops = 1000
		}
		for i := 0; i < ops; i++ {
			key := uint64(rng.Intn(conformKeyRange + 16))
			oracleStep(t, api, g, model, i, rng.Intn(4), key)
		}
		if n := api.length(g); n != len(model) {
			t.Fatalf("Len = %d, model has %d keys", n, len(model))
		}
		for key := range model { // leave the structure empty for what follows
			if _, ok := api.remove(g, key); !ok {
				t.Fatalf("drain: delete(%d) failed", key)
			}
		}
	}
}

// oracleStep applies one kv operation (op 0..3: insert/delete/get/put) to
// both the structure and a plain Go-map oracle, failing on any divergence.
// The conformance model phase and the fuzz targets share it so both check
// the same contract: Insert stores key*10 and reports first-insertion,
// Put stores op-index+1 unconditionally.
func oracleStep(t *testing.T, api conformAPI, g *wfe.Guard[uint64],
	model map[uint64]uint64, i, op int, key uint64) {
	t.Helper()
	switch op {
	case 0: // insert
		_, dup := model[key]
		if got := api.insert(g, key); got == dup {
			t.Fatalf("op %d: insert(%d) = %v, model has key: %v", i, key, got, dup)
		}
		if !dup {
			model[key] = key * 10
		}
	case 1: // delete
		_, want := model[key]
		if _, got := api.remove(g, key); got != want {
			t.Fatalf("op %d: delete(%d) = %v, model says %v", i, key, got, want)
		}
		delete(model, key)
	case 2: // get
		wantV, want := model[key]
		gotV, got := api.get(g, key)
		if got != want || (got && gotV != wantV) {
			t.Fatalf("op %d: get(%d) = %d,%v, model says %d,%v", i, key, gotV, got, wantV, want)
		}
	case 3: // put
		api.put(g, key, uint64(i)+1)
		model[key] = uint64(i) + 1
	}
}

// conformSequencePhase checks exactly-once delivery under concurrency for
// stacks and queues: every inserted value is removed exactly once, verified
// by a commutative checksum over producers, consumers and the final drain.
func conformSequencePhase(t *testing.T, d *wfe.Domain[uint64], api conformAPI,
	run func(d *wfe.Domain[uint64], iters int, body func(int, *wfe.Guard[uint64]))) {
	t.Helper()
	const workers, perWorker = 4, 1000
	var produced, consumed [workers]uint64
	var removed [workers]uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			run(d, perWorker, func(i int, g *wfe.Guard[uint64]) {
				v := uint64(w*perWorker+i) + 1
				api.insert(g, v)
				produced[w] += v
				if v, ok := api.remove(g, 0); ok {
					consumed[w] += v
					removed[w]++
				}
			})
		}(w)
	}
	wg.Wait()

	g := d.Guard()
	defer g.Release()
	var prodSum, consSum, nRemoved uint64
	for w := 0; w < workers; w++ {
		prodSum += produced[w]
		consSum += consumed[w]
		nRemoved += removed[w]
	}
	for {
		v, ok := api.remove(g, 0)
		if !ok {
			break
		}
		consSum += v
		nRemoved++
	}
	if nRemoved != workers*perWorker || prodSum != consSum {
		t.Fatalf("lost or duplicated values: removed %d/%d, checksums %d vs %d",
			nRemoved, workers*perWorker, consSum, prodSum)
	}
}

// conformKVPhase checks membership consistency under concurrency for maps
// and trees: per key, successful inserts and deletes can differ by at most
// one, and the difference equals the final membership.
func conformKVPhase(t *testing.T, d *wfe.Domain[uint64], api conformAPI,
	run func(d *wfe.Domain[uint64], iters int, body func(int, *wfe.Guard[uint64]))) {
	t.Helper()
	const workers, iters = 4, 1000
	type counters struct{ ins, del [conformKeyRange]uint64 }
	perWorker := make([]counters, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 42))
			c := &perWorker[w]
			run(d, iters, func(i int, g *wfe.Guard[uint64]) {
				key := uint64(rng.Intn(conformKeyRange))
				switch rng.Intn(3) {
				case 0:
					if api.insert(g, key) {
						c.ins[key]++
					}
				case 1:
					if _, ok := api.remove(g, key); ok {
						c.del[key]++
					}
				case 2:
					api.get(g, key)
				}
			})
		}(w)
	}
	wg.Wait()

	g := d.Guard()
	defer g.Release()
	for key := uint64(0); key < conformKeyRange; key++ {
		var ins, del uint64
		for w := range perWorker {
			ins += perWorker[w].ins[key]
			del += perWorker[w].del[key]
		}
		net := int64(ins) - int64(del)
		if net != 0 && net != 1 {
			t.Fatalf("key %d net count %d (ins=%d del=%d)", key, net, ins, del)
		}
		if _, got := api.get(g, key); got != (net == 1) {
			t.Fatalf("key %d present=%v but net=%d", key, got, net)
		}
		if net == 1 { // leave the structure empty for the drain phase
			if _, ok := api.remove(g, key); !ok {
				t.Fatalf("drain: delete(%d) failed", key)
			}
		}
	}
}

// conformDrainPhase asserts quiescent cleanliness after the churn: the
// structure is empty, every guard is back in the pool, (for reclaiming
// schemes) the retired-block backlog collapses once each tid's retire list
// gets a settling scan, and the shared retire-side runtime reported the
// churn uniformly — cleanup scans examined blocks and the protect loops
// recorded step histograms for every scheme, HP and EBR included.
func conformDrainPhase(t *testing.T, d *wfe.Domain[uint64], api conformAPI, kind wfe.SchemeKind) {
	t.Helper()
	g := d.Guard()
	if api.kind() != kvKind {
		for {
			if _, ok := api.remove(g, 0); !ok {
				break
			}
		}
	}
	if n := api.length(g); n != 0 {
		g.Release()
		t.Fatalf("structure not empty after drain: Len = %d", n)
	}
	g.Release()

	quiesce.Settle(d)
	if err := quiesce.Check(d, kind != wfe.Leak); err != nil {
		t.Fatal(err) // the leak baseline never reclaims by design, so it skips the backlog check
	}
	if kind != wfe.Leak { // Leak neither scans nor loops in GetProtected
		tel := d.Telemetry()
		if tel.ScanScans == 0 || tel.ScanBlocks == 0 {
			t.Fatalf("%s: no cleanup-scan telemetry after churn: scans=%d blocks=%d",
				kind, tel.ScanScans, tel.ScanBlocks)
		}
		if tel.P99Steps == 0 || tel.MaxSteps == 0 {
			t.Fatalf("%s: no protect-loop step telemetry after churn: p99=%d max=%d",
				kind, tel.P99Steps, tel.MaxSteps)
		}
		if tel.P99Steps > tel.MaxSteps {
			t.Fatalf("%s: step quantiles inconsistent: p99=%d > max=%d",
				kind, tel.P99Steps, tel.MaxSteps)
		}
	}
}

// TestTreeKeyRange pins the sentinel-key guard: keys above TreeKeyMax
// collide with the ∞1/∞2 skeleton — a Delete there would unlink the S
// sentinel itself — so every entry point must reject them loudly.
func TestTreeKeyRange(t *testing.T) {
	d := testDomain(t, wfe.WFE, 2, 1<<10, false)
	tr := wfe.NewTree[uint64](d)
	if !tr.Insert(wfe.TreeKeyMax, 1) {
		t.Fatal("TreeKeyMax itself must be insertable")
	}
	for name, op := range map[string]func(){
		"Insert": func() { tr.Insert(wfe.TreeKeyMax+1, 0) },
		"Delete": func() { tr.Delete(^uint64(0)) },
		"Get":    func() { tr.Get(^uint64(0)) },
		"Put":    func() { tr.Put(wfe.TreeKeyMax+1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s of a sentinel-range key did not panic", name)
				}
			}()
			op()
		}()
	}
	if n := tr.Len(); n != 1 {
		t.Fatalf("Len = %d after rejected sentinel-range ops, want 1", n)
	}
}

// TestMapIsHashMap pins the Map = HashMap alias: the original name and the
// canonical paper name are one type, not two implementations.
func TestMapIsHashMap(t *testing.T) {
	d := testDomain(t, wfe.WFE, 2, 1<<10, false)
	var m *wfe.Map[uint64] = wfe.NewHashMap[uint64](d, 8) // assignability is the alias proof
	var h *wfe.HashMap[uint64] = m
	h.Put(1, 10)
	if v, ok := m.Get(1); !ok || v != 10 {
		t.Fatalf("alias round trip: Get = %d,%v", v, ok)
	}
}
