package wfe_test

// Failpoint integration: the deterministic injection sites compiled into
// the runtime's hot paths must let tests provoke the schedules the
// scheduler rarely exposes — an aborted switch drain, an allocation
// stall racing a scheme switch, a Domain closed while under memory
// pressure — and the runtime must come through each clean.

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wfe"
	"wfe/internal/failpoint"
)

// TestFailpointSwitchDrainAborts injects a one-shot fault into the
// switch drain loop: Switch must surface ErrSwitchBusy, leave the
// incumbent scheme in place with the pause gate lifted, and succeed on
// the next attempt once the trigger is spent.
func TestFailpointSwitchDrainAborts(t *testing.T) {
	t.Cleanup(failpoint.DisarmAll)
	site, ok := failpoint.Lookup("switch-drain")
	if !ok {
		t.Fatal("switch-drain site not registered")
	}
	d, err := wfe.NewDomain[uint64](wfe.Options{Scheme: wfe.WFE, Capacity: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	site.Arm(failpoint.Trigger{OneShot: true, Err: errors.New("injected drain fault")})
	if err := d.Switch(wfe.EBR); !errors.Is(err, wfe.ErrSwitchBusy) {
		t.Fatalf("Switch under an injected drain fault = %v, want ErrSwitchBusy", err)
	}
	if got := d.Scheme(); got != wfe.WFE {
		t.Fatalf("aborted switch left scheme %v, want the incumbent WFE", got)
	}
	// The pause gate must be lifted: guardless operations proceed.
	s := wfe.NewStack[uint64](d)
	s.Push(7)
	if v, ok := s.Pop(); !ok || v != 7 {
		t.Fatalf("structure broken after aborted switch: got (%d, %v)", v, ok)
	}
	// OneShot spent itself: the retry goes through.
	if err := d.Switch(wfe.EBR); err != nil {
		t.Fatalf("Switch after the trigger fired: %v", err)
	}
	if got := d.Scheme(); got != wfe.EBR {
		t.Fatalf("scheme after successful switch = %v, want EBR", got)
	}
}

// TestFailpointAllocStallDuringSwitchDrain is the satellite acceptance
// bar: widen every allocation with an injected sleep while guardless
// writers churn, then run scheme switches through the drain gate. A
// stalled allocator holds its guard longer than the scheduler would
// ever arrange, but the drain must still terminate — completing or
// aborting with ErrSwitchBusy at its deadline, never deadlocking.
func TestFailpointAllocStallDuringSwitchDrain(t *testing.T) {
	t.Cleanup(failpoint.DisarmAll)
	site, ok := failpoint.Lookup("arena-alloc")
	if !ok {
		t.Fatal("arena-alloc site not registered")
	}
	d, err := wfe.NewDomain[uint64](wfe.Options{Scheme: wfe.WFE, Capacity: 1 << 12, MaxGuards: 8})
	if err != nil {
		t.Fatal(err)
	}
	m := wfe.NewHashMap[uint64](d, 32)
	site.Arm(failpoint.Trigger{Prob: 0.05, Seed: 42, Sleep: time.Millisecond})

	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g uint64) {
			defer wg.Done()
			for i := uint64(0); !stop.Load(); i++ {
				if err := m.TryPut((i+g*37)%128, i); err != nil {
					t.Errorf("TryPut under sleep-only injection surfaced %v", err)
					return
				}
			}
		}(uint64(g))
	}

	done := make(chan error, 1)
	go func() {
		var last error
		for i, kind := 0, wfe.EBR; i < 6; i++ {
			last = d.SwitchWithin(kind, 100*time.Millisecond)
			if kind == wfe.EBR {
				kind = wfe.WFE
			} else {
				kind = wfe.EBR
			}
		}
		done <- last
	}()
	select {
	case last := <-done:
		if last != nil && !errors.Is(last, wfe.ErrSwitchBusy) {
			t.Fatalf("switch storm surfaced %v, want nil or ErrSwitchBusy", last)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("switch drain deadlocked under the injected alloc stall")
	}

	stop.Store(true)
	wg.Wait()
	failpoint.DisarmAll()
	// Uninjected, the drain completes outright.
	if err := d.Switch(wfe.HP); err != nil {
		t.Fatalf("Switch after disarm: %v", err)
	}
	if _, err := m.TryInsert(999, 1); err != nil {
		t.Fatalf("map broken after switch storm: %v", err)
	}
}

// TestFailpointCloseUnderPressureReapsSampler closes a Domain whose
// arena is exhausted and whose emergency pipeline has been running: the
// background sampler must still be reaped, Close must stay idempotent,
// and the pressure gauge must stay readable afterwards.
func TestFailpointCloseUnderPressureReapsSampler(t *testing.T) {
	t.Cleanup(failpoint.DisarmAll)
	d, err := wfe.NewDomain[uint64](wfe.Options{
		Scheme:       wfe.WFE,
		Capacity:     96,
		MaxGuards:    4,
		SampleEvery:  time.Millisecond,
		AllocRetries: 2,
		AllocBackoff: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := d.Sampler()
	if s == nil || !s.Running() {
		t.Fatal("SampleEvery did not auto-start a running sampler")
	}
	// Exhaust the arena with live nodes so the pipeline runs and fails
	// honestly — the Domain is now under sustained pressure.
	st := wfe.NewStack[uint64](d)
	for {
		if err := st.TryPush(1); err != nil {
			break
		}
	}
	if pr := d.Pressure(); pr.AllocStalls == 0 {
		t.Fatal("fill never stalled: arena not undersized")
	}
	// Let the sampler observe the pressured domain.
	deadline := time.Now().Add(2 * time.Second)
	for s.Ticks() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close under pressure: %v", err)
	}
	if s.Running() {
		t.Fatal("sampler still running after Close under pressure")
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if pr := d.Pressure(); pr.AllocStalls == 0 {
		t.Error("pressure gauge unreadable after Close")
	}
}

// TestFailpointRefillMissEntersPipeline pins the arena-refill site: an
// injected refill failure makes a cache miss look exhausted, which must
// route the allocation through the emergency pipeline rather than
// panicking — and the pipeline resolves it as soon as the trigger stops
// firing.
func TestFailpointRefillMissEntersPipeline(t *testing.T) {
	t.Cleanup(failpoint.DisarmAll)
	site, ok := failpoint.Lookup("arena-refill")
	if !ok {
		t.Fatal("arena-refill site not registered")
	}
	d, err := wfe.NewDomain[uint64](wfe.Options{Scheme: wfe.WFE, Capacity: 1 << 10, SpillSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	s := wfe.NewStack[uint64](d)
	// Burn the bump region (push to exhaustion), then pop everything so
	// the whole arena cycles through retire scans into the caches and the
	// global spill list: from here on, a cache miss can only be served by
	// refill, the path the site fails.
	for {
		if err := s.TryPush(1); err != nil {
			break
		}
	}
	for {
		if _, ok := s.Pop(); !ok {
			break
		}
	}
	base := d.Pressure().AllocStalls
	site.Arm(failpoint.Trigger{EveryNth: 1, OneShot: true, Err: errors.New("injected refill miss")})
	for i := 0; i < 2048; i++ {
		if err := s.TryPush(uint64(i)); err != nil {
			t.Fatalf("TryPush with an injected refill miss surfaced %v", err)
		}
		if d.Pressure().AllocStalls > base {
			return // the miss routed through the pipeline and resolved
		}
	}
	t.Fatal("injected refill miss never entered the emergency pipeline")
}
