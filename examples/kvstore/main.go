// A concurrent key-value store on the public lock-free Map, with the
// reclamation scheme chosen at the command line — the "universal" in
// universal memory reclamation: the same data structure code runs under
// WFE, Hazard Eras, Hazard Pointers, EBR, 2GEIBR or the leaky baseline,
// selected by a wfe.SchemeKind.
//
// The store is driven through the guardless API from several times more
// goroutines than the Domain has guards (MaxGuards defaults to
// GOMAXPROCS): every operation leases a reclamation slot from the guard
// runtime, which is how a server with thousands of request goroutines
// would use the library. A reporter goroutine samples the reclamation
// backlog live (try -scheme EBR -stall to watch an epoch scheme stop
// reclaiming while a stalled reader holds its guard mid-operation).
//
// Run with:
//
//	go run ./examples/kvstore -scheme WFE
//	go run ./examples/kvstore -scheme EBR -stall
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"wfe"
)

func main() {
	var (
		schemeName = flag.String("scheme", "WFE", "reclamation scheme (WFE, HE, HP, EBR, 2GEIBR, Leak, WFE-IBR)")
		workers    = flag.Int("workers", 4*runtime.GOMAXPROCS(0), "worker goroutines (guards stay at GOMAXPROCS)")
		duration   = flag.Duration("duration", 3*time.Second, "run time")
		keyRange   = flag.Uint64("keyrange", 100000, "key range")
		stall      = flag.Bool("stall", false, "stall one reader mid-operation (EBR stops reclaiming)")
	)
	flag.Parse()

	kind, err := wfe.ParseScheme(*schemeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	capacity := 1 << 20
	if kind == wfe.Leak {
		capacity = 1 << 23
	}
	// MaxGuards stays at the GOMAXPROCS default — the worker goroutines
	// share the guards through the guard runtime — except under -stall,
	// where one extra guard absorbs the reader that parks mid-operation
	// for the whole run (otherwise, on GOMAXPROCS=1, the staller would own
	// the only guard and stop the workload instead of the reclamation).
	maxGuards := runtime.GOMAXPROCS(0)
	if *stall {
		maxGuards++
	}
	d, err := wfe.NewDomain[uint64](wfe.Options{
		Scheme:    kind,
		Capacity:  capacity,
		MaxGuards: maxGuards,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer d.Close()
	store := wfe.NewMap[uint64](d, int(*keyRange))

	var (
		stop sync.WaitGroup
		quit atomic.Bool
		ops  atomic.Uint64
	)
	for w := 0; w < *workers; w++ {
		stop.Add(1)
		go func(w int) {
			defer stop.Done()
			if *stall && w == 0 {
				// A reader that never finishes its operation: it parks an
				// explicit guard mid-operation for the whole run.
				g, err := d.AcquireGuard(context.Background())
				if err != nil {
					return
				}
				defer g.Release()
				g.Begin()
				for !quit.Load() {
					time.Sleep(time.Millisecond)
				}
				g.End()
				return
			}
			rng := rand.New(rand.NewSource(int64(w) + 99))
			for !quit.Load() {
				key := uint64(rng.Int63n(int64(*keyRange)))
				switch rng.Intn(10) {
				case 0, 1, 2:
					store.Put(key, key*2)
				case 3:
					store.Delete(key)
				default:
					store.Get(key)
				}
				ops.Add(1)
			}
		}(w)
	}

	ticker := time.NewTicker(500 * time.Millisecond)
	deadline := time.After(*duration)
	fmt.Printf("%d goroutines over %d guards\n", *workers, d.Telemetry().MaxGuards)
	fmt.Printf("%-8s %12s %14s %12s\n", "t", "ops", "unreclaimed", "live blocks")
	start := time.Now()
loop:
	for {
		select {
		case <-ticker.C:
			t := d.Telemetry()
			fmt.Printf("%-8s %12d %14d %12d\n",
				time.Since(start).Round(100*time.Millisecond),
				ops.Load(), t.Unreclaimed, t.InUse)
		case <-deadline:
			break loop
		}
	}
	quit.Store(true)
	stop.Wait()
	ticker.Stop()

	t := d.Telemetry()
	fmt.Printf("\n%s: %.2f Mops/s, final backlog %d, arena in use %d/%d\n",
		t.Scheme, float64(ops.Load())/time.Since(start).Seconds()/1e6,
		t.Unreclaimed, t.InUse, t.Capacity)
	fmt.Printf("guard pool: %d acquisitions, %d cache hits (%.1f%% hit rate), %d parks\n",
		t.GuardAcquires, t.GuardCacheHits,
		100*float64(t.GuardCacheHits)/float64(t.GuardCacheHits+t.GuardCacheMisses+1),
		t.GuardParks)
}
