// A concurrent key-value store on the lock-free hash map, with the
// reclamation scheme chosen at the command line — the "universal" in
// universal memory reclamation: the same data structure code runs under
// WFE, Hazard Eras, Hazard Pointers, EBR, 2GEIBR or the leaky baseline.
//
// The program runs a mixed workload while a reporter goroutine samples the
// reclamation backlog, making the schemes' memory behaviour visible live
// (try -scheme EBR -stall to watch an epoch scheme stop reclaiming).
//
// Run with:
//
//	go run ./examples/kvstore -scheme WFE
//	go run ./examples/kvstore -scheme EBR -stall
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"wfe/internal/ds/hashmap"
	"wfe/internal/mem"
	"wfe/internal/reclaim"
	"wfe/internal/schemes"
)

func main() {
	var (
		schemeName = flag.String("scheme", "WFE", "reclamation scheme (WFE, HE, HP, EBR, 2GEIBR, Leak)")
		workers    = flag.Int("workers", 6, "worker goroutines")
		duration   = flag.Duration("duration", 3*time.Second, "run time")
		keyRange   = flag.Uint64("keyrange", 100000, "key range")
		stall      = flag.Bool("stall", false, "stall one reader mid-operation (EBR stops reclaiming)")
	)
	flag.Parse()

	capacity := 1 << 20
	if *schemeName == "Leak" {
		capacity = 1 << 23
	}
	arena := mem.New(mem.Config{Capacity: capacity, MaxThreads: *workers, Debug: false})
	smr, err := schemes.New(*schemeName, arena, reclaim.Config{MaxThreads: *workers})
	if err != nil {
		fmt.Println(err)
		return
	}
	store := hashmap.New(smr, int(*keyRange))

	var (
		stop sync.WaitGroup
		quit atomic.Bool
		ops  atomic.Uint64
	)
	for w := 0; w < *workers; w++ {
		stop.Add(1)
		go func(tid int) {
			defer stop.Done()
			if *stall && tid == 0 {
				// A reader that never finishes its operation.
				smr.Begin(tid)
				for !quit.Load() {
					time.Sleep(time.Millisecond)
				}
				smr.Clear(tid)
				return
			}
			rng := rand.New(rand.NewSource(int64(tid) + 99))
			for !quit.Load() {
				key := uint64(rng.Int63n(int64(*keyRange)))
				switch rng.Intn(10) {
				case 0, 1, 2:
					store.Put(tid, key, key*2)
				case 3:
					store.Delete(tid, key)
				default:
					store.Get(tid, key)
				}
				ops.Add(1)
			}
		}(w)
	}

	ticker := time.NewTicker(500 * time.Millisecond)
	deadline := time.After(*duration)
	fmt.Printf("%-8s %12s %14s %12s\n", "t", "ops", "unreclaimed", "live blocks")
	start := time.Now()
loop:
	for {
		select {
		case <-ticker.C:
			st := arena.Stats()
			fmt.Printf("%-8s %12d %14d %12d\n",
				time.Since(start).Round(100*time.Millisecond),
				ops.Load(), smr.Unreclaimed(), st.InUse)
		case <-deadline:
			break loop
		}
	}
	quit.Store(true)
	stop.Wait()
	ticker.Stop()

	st := arena.Stats()
	fmt.Printf("\n%s: %.2f Mops/s, final backlog %d, arena in use %d/%d\n",
		smr.Name(), float64(ops.Load())/time.Since(start).Seconds()/1e6,
		smr.Unreclaimed(), st.InUse, arena.Capacity())
}
