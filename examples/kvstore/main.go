// A concurrent key-value store on the public lock-free Map, with the
// reclamation scheme chosen at the command line — the "universal" in
// universal memory reclamation: the same data structure code runs under
// WFE, Hazard Eras, Hazard Pointers, EBR, 2GEIBR or the leaky baseline,
// selected by a wfe.SchemeKind.
//
// The program runs a mixed workload while a reporter goroutine samples the
// reclamation backlog, making the schemes' memory behaviour visible live
// (try -scheme EBR -stall to watch an epoch scheme stop reclaiming).
//
// Run with:
//
//	go run ./examples/kvstore -scheme WFE
//	go run ./examples/kvstore -scheme EBR -stall
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"wfe"
)

func main() {
	var (
		schemeName = flag.String("scheme", "WFE", "reclamation scheme (WFE, HE, HP, EBR, 2GEIBR, Leak, WFE-IBR)")
		workers    = flag.Int("workers", 6, "worker goroutines")
		duration   = flag.Duration("duration", 3*time.Second, "run time")
		keyRange   = flag.Uint64("keyrange", 100000, "key range")
		stall      = flag.Bool("stall", false, "stall one reader mid-operation (EBR stops reclaiming)")
	)
	flag.Parse()

	kind, err := wfe.ParseScheme(*schemeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	capacity := 1 << 20
	if kind == wfe.Leak {
		capacity = 1 << 23
	}
	d, err := wfe.NewDomain[uint64](wfe.Options{
		Scheme:    kind,
		Capacity:  capacity,
		MaxGuards: *workers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	store := wfe.NewMap[uint64](d, int(*keyRange))

	var (
		stop sync.WaitGroup
		quit atomic.Bool
		ops  atomic.Uint64
	)
	for w := 0; w < *workers; w++ {
		stop.Add(1)
		go func(w int) {
			defer stop.Done()
			g := d.Guard()
			defer g.Release()
			if *stall && w == 0 {
				// A reader that never finishes its operation.
				g.Begin()
				for !quit.Load() {
					time.Sleep(time.Millisecond)
				}
				g.End()
				return
			}
			rng := rand.New(rand.NewSource(int64(w) + 99))
			for !quit.Load() {
				key := uint64(rng.Int63n(int64(*keyRange)))
				switch rng.Intn(10) {
				case 0, 1, 2:
					store.Put(g, key, key*2)
				case 3:
					store.Delete(g, key)
				default:
					store.Get(g, key)
				}
				ops.Add(1)
			}
		}(w)
	}

	ticker := time.NewTicker(500 * time.Millisecond)
	deadline := time.After(*duration)
	fmt.Printf("%-8s %12s %14s %12s\n", "t", "ops", "unreclaimed", "live blocks")
	start := time.Now()
loop:
	for {
		select {
		case <-ticker.C:
			t := d.Telemetry()
			fmt.Printf("%-8s %12d %14d %12d\n",
				time.Since(start).Round(100*time.Millisecond),
				ops.Load(), t.Unreclaimed, t.InUse)
		case <-deadline:
			break loop
		}
	}
	quit.Store(true)
	stop.Wait()
	ticker.Stop()

	t := d.Telemetry()
	fmt.Printf("\n%s: %.2f Mops/s, final backlog %d, arena in use %d/%d\n",
		t.Scheme, float64(ops.Load())/time.Since(start).Seconds()/1e6,
		t.Unreclaimed, t.InUse, t.Capacity)
}
