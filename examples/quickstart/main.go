// Quickstart: the paper's usage example (Figure 2) — Treiber's lock-free
// stack managed by Wait-Free Eras, on the public Domain API.
//
// It shows the whole public surface in one sitting:
//
//   - build a Domain (typed arena + reclamation scheme in one object),
//   - acquire one Guard per goroutine — the per-thread handle every
//     allocation, protected read and retirement goes through,
//   - Push allocates blocks via the Guard (stamping their alloc era),
//     Pop protects the top block before dereferencing and retires it
//     after unlinking,
//   - freed blocks are recycled: the arena census stays flat no matter how
//     many operations run.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	"wfe"
)

func main() {
	const workers = 4

	// The arena bounds memory: 4096 node slots serve millions of operations
	// because WFE recycles retired nodes promptly. Debug mode turns any
	// use-after-free into a panic.
	d, err := wfe.NewDomain[uint64](wfe.Options{
		Scheme:    wfe.WFE,
		Capacity:  4096,
		MaxGuards: workers,
		Debug:     true,
	})
	if err != nil {
		panic(err)
	}
	s := wfe.NewStack[uint64](d)

	// Single-threaded taste: LIFO order.
	g := d.Guard()
	s.Push(g, 1)
	s.Push(g, 2)
	s.Push(g, 3)
	for {
		v, ok := s.Pop(g)
		if !ok {
			break
		}
		fmt.Printf("popped %d\n", v)
	}
	g.Release()

	// Concurrent churn: every worker pushes and pops 100k times. The debug
	// arena would panic on any use-after-free; the slot census proves
	// reclamation keeps memory bounded.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := d.Guard()
			defer g.Release()
			for i := 0; i < 100_000; i++ {
				s.Push(g, uint64(w)<<32|uint64(i))
				s.Pop(g)
			}
		}(w)
	}
	wg.Wait()

	t := d.Telemetry()
	fmt.Printf("\nafter %d ops: allocs=%d frees=%d live=%d (arena capacity %d)\n",
		2*workers*100_000, t.Allocs, t.Frees, t.InUse, t.Capacity)
	fmt.Printf("global era advanced to %d; slow paths taken: %d\n", t.Era, t.SlowPaths)
}
