// Quickstart: the paper's usage example (Figure 2) — Treiber's lock-free
// stack managed by Wait-Free Eras, on the public Domain API.
//
// It shows the guard runtime's three acquisition paths in one sitting:
//
//   - guardless: s.Push(v) / s.Pop() lease a reclamation slot per
//     operation from the Domain's lock-free guard pool — no Guard in
//     sight, and goroutines may vastly outnumber MaxGuards,
//   - pinned: d.Pin()/d.Unpin(g) hoist that lease out of a hot loop and
//     run the Guarded method variants on it,
//   - explicit: d.Guard()/g.Release() for a fixed worker set sized at
//     configuration time.
//
// Freed blocks are recycled: the arena census stays flat no matter how
// many operations run, and Debug mode turns any use-after-free into a
// panic.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	"wfe"
)

func main() {
	const workers = 4

	// The arena bounds memory: 4096 node slots serve millions of operations
	// because WFE recycles retired nodes promptly. MaxGuards defaults to
	// GOMAXPROCS; the guard runtime shares those slots among any number of
	// goroutines.
	d, err := wfe.NewDomain[uint64](wfe.Options{
		Scheme:   wfe.WFE,
		Capacity: 4096,
		Debug:    true,
	})
	if err != nil {
		panic(err)
	}
	defer d.Close()
	s := wfe.NewStack[uint64](d)

	// Guardless taste: LIFO order, no Guard anywhere.
	s.Push(1)
	s.Push(2)
	s.Push(3)
	for {
		v, ok := s.Pop()
		if !ok {
			break
		}
		fmt.Printf("popped %d\n", v)
	}

	// Concurrent churn on the pinned path: every worker pins one guard and
	// pushes/pops 100k times through the Guarded variants — the guardless
	// path's flexibility without its per-operation lease.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := d.Pin()
			defer d.Unpin(g)
			for i := 0; i < 100_000; i++ {
				s.PushGuarded(g, uint64(w)<<32|uint64(i))
				s.PopGuarded(g)
			}
		}(w)
	}
	wg.Wait()

	t := d.Telemetry()
	fmt.Printf("\nafter %d ops: allocs=%d frees=%d live=%d (arena capacity %d)\n",
		2*workers*100_000, t.Allocs, t.Frees, t.InUse, t.Capacity)
	fmt.Printf("global era advanced to %d; slow paths taken: %d\n", t.Era, t.SlowPaths)
	fmt.Printf("guard pool: %d acquisitions, %d cache hits, %d misses, %d parks\n",
		t.GuardAcquires, t.GuardCacheHits, t.GuardCacheMisses, t.GuardParks)
}
