// Quickstart: the paper's usage example (Figure 2) — Treiber's lock-free
// stack managed by Wait-Free Eras.
//
// It shows the whole reclamation API surface in one sitting:
//
//   - build an arena (the manual-memory substrate) and a WFE scheme on it,
//   - Push allocates blocks via the scheme (stamping their alloc era),
//   - Pop protects the top block with GetProtected before dereferencing,
//     retires it after unlinking, and Clear drops the reservations,
//   - freed blocks are recycled: the arena census stays flat no matter how
//     many operations run.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	"wfe/internal/core"
	"wfe/internal/ds/stack"
	"wfe/internal/mem"
	"wfe/internal/reclaim"
)

func main() {
	const workers = 4

	// The arena bounds memory: 4096 node slots serve millions of operations
	// because WFE recycles retired nodes promptly.
	arena := mem.New(mem.Config{Capacity: 4096, MaxThreads: workers, Debug: true})
	wfe := core.New(arena, reclaim.Config{MaxThreads: workers})
	s := stack.New(wfe)

	// Single-threaded taste: LIFO order.
	s.Push(0, 1)
	s.Push(0, 2)
	s.Push(0, 3)
	for {
		v, ok := s.Pop(0)
		if !ok {
			break
		}
		fmt.Printf("popped %d\n", v)
	}

	// Concurrent churn: every worker pushes and pops 100k times. The debug
	// arena would panic on any use-after-free; the slot census proves
	// reclamation keeps memory bounded.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 100_000; i++ {
				s.Push(tid, uint64(tid)<<32|uint64(i))
				if v, ok := s.Pop(tid); !ok || v == 0 && tid != 0 {
					_ = v // values are checked by the stack tests; this is a demo
				}
			}
		}(w)
	}
	wg.Wait()

	st := arena.Stats()
	fmt.Printf("\nafter %d ops: allocs=%d frees=%d live=%d (arena capacity %d)\n",
		2*workers*100_000, st.Allocs, st.Frees, st.InUse, arena.Capacity())
	fmt.Printf("global era advanced to %d; slow paths taken: %d\n", wfe.Era(), wfe.SlowPaths())
}
