// Wait-freedom, made visible: this program measures the latency of a
// protected read (Guard.Protect) under an adversarial "era storm" — guards
// that advance the global era clock as fast as they can by allocating and
// retiring.
//
// Hazard Eras' protect loop only terminates when it observes the same era
// twice in a row, so the storm inflates its tail latency without bound
// (lock-free: someone makes progress, not necessarily you). WFE gives up
// after MaxAttempts fast-path rounds and publishes a helping request, which
// the era-advancing thread must complete before it may increment the clock
// again — bounding every read (paper Theorem 1). Compare the p99.99 and max
// columns: that difference is the paper's contribution.
//
// The workers here are a fixed set sized at configuration time, so the
// program uses the guard runtime's explicit path (Domain.Guard/Release)
// rather than the guardless one: a latency microbenchmark wants zero
// per-operation lease traffic in the measured loop.
//
// Run with:
//
//	go run ./examples/boundedsteps
package main

import (
	"fmt"
	"sort"
	"time"

	"wfe"
)

const (
	reads       = 300_000
	stormers    = 12 // era-advancing adversaries
	maxAttempts = 4  // small fast-path budget makes the slow path visible
)

func main() {
	fmt.Printf("%-8s %10s %10s %10s %10s %12s %12s\n",
		"scheme", "median", "p99", "p99.99", "max", "max steps", "slow paths")
	for _, kind := range []wfe.SchemeKind{wfe.WFE, wfe.HE} {
		med, p99, p9999, max, tel := measure(kind)
		fmt.Printf("%-8s %10s %10s %10s %10s %12d %12d\n",
			kind, med, p99, p9999, max, tel.MaxSteps, tel.SlowPaths)
	}
	fmt.Println("\n\"max steps\" is the worst protect-loop iteration count for one read.")
	fmt.Println("HE retries for as long as the era keeps moving (unbounded, lock-free);")
	fmt.Println("WFE caps the fast path at", maxAttempts, "attempts and the slow-path loop at the")
	fmt.Println("number of in-flight era increments (paper Lemma 1) — wait-free.")
	fmt.Println("(Wall-clock percentiles include OS scheduling noise; the step counts don't.)")
}

func measure(kind wfe.SchemeKind) (med, p99, p9999, max time.Duration, tel wfe.Telemetry) {
	d, err := wfe.NewDomain[int](wfe.Options{
		Scheme:      kind,
		Capacity:    1 << 22,
		MaxGuards:   stormers + 1,
		EraFreq:     1, // every allocation advances the era: the storm
		CleanupFreq: 64,
		MaxAttempts: maxAttempts,
	})
	if err != nil {
		panic(err)
	}
	defer d.Close()

	reader := d.Guard()
	var root wfe.Atomic[int]
	root.Store(reader.Alloc(0))

	stop := make(chan struct{})
	for st := 0; st < stormers; st++ {
		go func() { // the era storm
			g := d.Guard()
			defer g.Release()
			for {
				select {
				case <-stop:
					return
				default:
				}
				g.Retire(g.Alloc(0))
			}
		}()
	}

	lat := make([]time.Duration, reads)
	for i := range lat {
		t0 := time.Now()
		reader.Protect(&root, 0)
		lat[i] = time.Since(t0)
		reader.End()
	}
	close(stop)
	reader.Release()

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat[len(lat)/2], lat[len(lat)*99/100], lat[len(lat)*9999/10000],
		lat[len(lat)-1], d.Telemetry()
}
