// Wait-freedom, made visible: this program measures the latency of
// GetProtected under an adversarial "era storm" — a thread that advances
// the global era clock as fast as it can by allocating and retiring.
//
// Hazard Eras' protect loop only terminates when it observes the same era
// twice in a row, so the storm inflates its tail latency without bound
// (lock-free: someone makes progress, not necessarily you). WFE gives up
// after MaxAttempts fast-path rounds and publishes a helping request, which
// the era-advancing thread must complete before it may increment the clock
// again — bounding every read (paper Theorem 1). Compare the p99.99 and max
// columns: that difference is the paper's contribution.
//
// Run with:
//
//	go run ./examples/boundedsteps
package main

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"wfe/internal/mem"
	"wfe/internal/reclaim"
	"wfe/internal/schemes"
)

const (
	reads       = 300_000
	stormers    = 12 // era-advancing adversaries
	maxAttempts = 4  // small fast-path budget makes the slow path visible
)

func main() {
	fmt.Printf("%-8s %10s %10s %10s %10s %12s %12s\n",
		"scheme", "median", "p99", "p99.99", "max", "max steps", "slow paths")
	for _, name := range []string{"WFE", "HE"} {
		med, p99, p9999, max, steps, slow := measure(name)
		fmt.Printf("%-8s %10s %10s %10s %10s %12d %12d\n",
			name, med, p99, p9999, max, steps, slow)
	}
	fmt.Println("\n\"max steps\" is the worst protect-loop iteration count for one read.")
	fmt.Println("HE retries for as long as the era keeps moving (unbounded, lock-free);")
	fmt.Println("WFE caps the fast path at", maxAttempts, "attempts and the slow-path loop at the")
	fmt.Println("number of in-flight era increments (paper Lemma 1) — wait-free.")
	fmt.Println("(Wall-clock percentiles include OS scheduling noise; the step counts don't.)")
}

func measure(name string) (med, p99, p9999, max time.Duration, steps, slow uint64) {
	arena := mem.New(mem.Config{Capacity: 1 << 22, MaxThreads: stormers + 1, Debug: false})
	smr, err := schemes.New(name, arena, reclaim.Config{
		MaxThreads:  stormers + 1,
		EraFreq:     1, // every allocation advances the era: the storm
		CleanupFreq: 64,
		MaxAttempts: maxAttempts,
	})
	if err != nil {
		panic(err)
	}

	var root atomic.Uint64
	root.Store(smr.Alloc(1))

	stop := make(chan struct{})
	for st := 1; st <= stormers; st++ {
		go func(tid int) { // the era storm
			for {
				select {
				case <-stop:
					return
				default:
				}
				blk := smr.Alloc(tid)
				smr.Retire(tid, blk)
			}
		}(st)
	}

	lat := make([]time.Duration, reads)
	for i := range lat {
		t0 := time.Now()
		smr.GetProtected(0, &root, 0, 0)
		lat[i] = time.Since(t0)
		smr.Clear(0)
	}
	close(stop)

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	med = lat[len(lat)/2]
	p99 = lat[len(lat)*99/100]
	p9999 = lat[len(lat)*9999/10000]
	max = lat[len(lat)-1]
	if w, ok := smr.(interface{ SlowPaths() uint64 }); ok {
		slow = w.SlowPaths()
	}
	if w, ok := smr.(interface{ MaxSteps() uint64 }); ok {
		steps = w.MaxSteps()
	}
	return med, p99, p9999, max, steps, slow
}
