// Wait-free memory reclamation under an MPMC queue: a Michael–Scott queue
// from the public API, running as a multi-producer multi-consumer pipeline
// with WFE managing every node.
//
// Bolting lock-free reclamation (Hazard Eras, epochs) onto a queue gives
// reads unbounded retry loops and lets one stalled consumer hold back every
// retired node. With WFE each reclamation operation is bounded (paper
// Theorem 1) and a stalled guard delays at most a bounded set of blocks.
// This program verifies exactly-once delivery while printing the
// reclamation census. Producers and consumers pin a guard for their whole
// run (the hot-loop path of the guard runtime) and drive the queue through
// the Guarded method variants; the paper's fully wait-free Kogan–Petrank
// and CRTurn queues are public too (wfe.WFQueue, wfe.TurnQueue) — see
// examples/waitfreeworkloads for all four promoted evaluation structures
// on one Domain.
//
// Run with:
//
//	go run ./examples/waitfreequeue
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"wfe"
)

func main() {
	const (
		producers = 3
		consumers = 3
		perProd   = 200_000
	)

	d, err := wfe.NewDomain[uint64](wfe.Options{
		Scheme:    wfe.WFE,
		Capacity:  1 << 20,
		MaxGuards: producers + consumers,
		Debug:     true,
	})
	if err != nil {
		panic(err)
	}
	defer d.Close()
	q := wfe.NewQueue[uint64](d)

	var (
		wg        sync.WaitGroup
		delivered atomic.Uint64
		checksum  atomic.Uint64 // sum of everything dequeued
		produced  atomic.Uint64 // sum of everything enqueued
		done      atomic.Bool
	)

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			g := d.Pin()
			defer d.Unpin(g)
			for i := uint64(0); i < perProd; i++ {
				v := uint64(p)<<32 | i
				q.EnqueueGuarded(g, v)
				produced.Add(v) // commutative sum as a cheap checksum
			}
		}(p)
	}

	var consumerWG sync.WaitGroup
	for c := 0; c < consumers; c++ {
		consumerWG.Add(1)
		go func() {
			defer consumerWG.Done()
			g := d.Pin()
			defer d.Unpin(g)
			for {
				v, ok := q.DequeueGuarded(g)
				if !ok {
					if done.Load() {
						// Confirm emptiness once more after the flag.
						if v, ok := q.DequeueGuarded(g); ok {
							checksum.Add(v)
							delivered.Add(1)
							continue
						}
						return
					}
					continue
				}
				checksum.Add(v)
				delivered.Add(1)
			}
		}()
	}

	wg.Wait()
	done.Store(true)
	consumerWG.Wait()

	fmt.Printf("delivered %d/%d values\n", delivered.Load(), producers*perProd)
	if delivered.Load() != producers*perProd || checksum.Load() != produced.Load() {
		panic("delivery mismatch: queue lost or duplicated values")
	}

	t := d.Telemetry()
	fmt.Printf("arena: allocs=%d frees=%d live=%d — every dequeued node was reclaimed wait-free\n",
		t.Allocs, t.Frees, t.InUse)
	fmt.Printf("unreclaimed backlog now: %d blocks; WFE slow paths: %d; era: %d\n",
		t.Unreclaimed, t.SlowPaths, t.Era)
	fmt.Printf("guard runtime: %d pool acquisitions for %d workers (cache hits %d)\n",
		t.GuardAcquires, producers+consumers, t.GuardCacheHits)
}
