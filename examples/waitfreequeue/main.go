// The paper's headline application: the Kogan–Petrank wait-free queue with
// fully wait-free memory reclamation.
//
// The original KP queue (PPoPP 2011) assumed a garbage collector; bolting
// lock-free reclamation (Hazard Pointers, epochs) onto it forfeits the
// queue's wait-freedom. With WFE every reclamation operation is bounded, so
// the queue is wait-free end to end — this program runs it as a
// multi-producer multi-consumer pipeline and verifies exactly-once delivery
// while printing the reclamation census.
//
// Run with:
//
//	go run ./examples/waitfreequeue
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"wfe/internal/core"
	"wfe/internal/ds/kpqueue"
	"wfe/internal/mem"
	"wfe/internal/reclaim"
)

func main() {
	const (
		producers = 3
		consumers = 3
		perProd   = 200_000
	)
	threads := producers + consumers

	arena := mem.New(mem.Config{Capacity: 1 << 20, MaxThreads: threads, Debug: true})
	wfe := core.New(arena, reclaim.Config{MaxThreads: threads})
	q := kpqueue.New(wfe, threads)

	var (
		wg        sync.WaitGroup
		delivered atomic.Uint64
		checksum  atomic.Uint64 // xor of everything dequeued
		produced  atomic.Uint64 // xor of everything enqueued
		done      atomic.Bool
	)

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := uint64(0); i < perProd; i++ {
				v := uint64(tid)<<32 | i
				q.Enqueue(tid, v)
				produced.Add(v) // commutative sum as a cheap checksum
			}
		}(p)
	}

	var consumerWG sync.WaitGroup
	for c := 0; c < consumers; c++ {
		consumerWG.Add(1)
		go func(tid int) {
			defer consumerWG.Done()
			for {
				v, ok := q.Dequeue(tid)
				if !ok {
					if done.Load() {
						// Confirm emptiness once more after the flag.
						if v, ok := q.Dequeue(tid); ok {
							checksum.Add(v)
							delivered.Add(1)
							continue
						}
						return
					}
					continue
				}
				checksum.Add(v)
				delivered.Add(1)
			}
		}(producers + c)
	}

	wg.Wait()
	done.Store(true)
	consumerWG.Wait()

	fmt.Printf("delivered %d/%d values\n", delivered.Load(), producers*perProd)
	if delivered.Load() != producers*perProd || checksum.Load() != produced.Load() {
		panic("delivery mismatch: queue lost or duplicated values")
	}

	st := arena.Stats()
	fmt.Printf("arena: allocs=%d frees=%d live=%d — every dequeued node was reclaimed wait-free\n",
		st.Allocs, st.Frees, st.InUse)
	fmt.Printf("unreclaimed backlog now: %d blocks; WFE slow paths: %d; era: %d\n",
		wfe.Unreclaimed(), wfe.SlowPaths(), wfe.Era())
}
