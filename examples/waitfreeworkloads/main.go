// The paper's wait-free workloads on the public API: the Kogan–Petrank
// queue (WFQueue), the CRTurn queue (TurnQueue), Michael's hash map
// (HashMap) and the Natarajan–Mittal BST (Tree) — the four structures of
// the paper's evaluation (Figures 5, 8 and 11) that PR 3 promotes out of
// the internal benchmark substrate — all sharing one WFE Domain.
//
// The headline property: combined with WFE, the two queues are wait-free
// end to end, reclamation included — every operation, every protected
// read and every retire completes in a bounded number of steps. The
// program storms each structure through the guardless API from far more
// goroutines than the Domain has guards (the lease/parking path), checks
// exactly-once delivery on the queues and membership on the maps, and
// prints the reclamation census.
//
// Run with:
//
//	go run ./examples/waitfreeworkloads
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"wfe"
)

const (
	guards     = 4
	goroutines = 16 // 4x oversubscribed: operations lease and park
	perWorker  = 50_000
	keyRange   = 1 << 10
)

func main() {
	d, err := wfe.NewDomain[uint64](wfe.Options{
		Scheme:    wfe.WFE,
		Capacity:  1 << 20,
		MaxGuards: guards,
		Debug:     true, // any use-after-free panics instead of corrupting
	})
	if err != nil {
		panic(err)
	}
	defer d.Close()

	wf := wfe.NewWFQueue[uint64](d)
	turn := wfe.NewTurnQueue[uint64](d)
	queues := []struct {
		name string
		enq  func(uint64)
		deq  func() (uint64, bool)
	}{
		{"WFQueue (Kogan–Petrank)", wf.Enqueue, wf.Dequeue},
		{"TurnQueue (CRTurn)", turn.Enqueue, turn.Dequeue},
	}
	for _, q := range queues {
		var produced, consumed, delivered atomic.Uint64
		var wg sync.WaitGroup
		for w := 0; w < goroutines; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					v := uint64(w)<<32 | uint64(i+1)
					q.enq(v)
					produced.Add(v)
					if v, ok := q.deq(); ok {
						consumed.Add(v)
						delivered.Add(1)
					}
				}
			}(w)
		}
		wg.Wait()
		for { // drain the stragglers
			v, ok := q.deq()
			if !ok {
				break
			}
			consumed.Add(v)
			delivered.Add(1)
		}
		if delivered.Load() != goroutines*perWorker || produced.Load() != consumed.Load() {
			panic(q.name + ": lost or duplicated values")
		}
		fmt.Printf("%-26s delivered %d values exactly once\n", q.name, delivered.Load())
	}

	m := wfe.NewHashMap[uint64](d, keyRange)
	tr := wfe.NewTree[uint64](d)
	maps := []struct {
		name   string
		insert func(uint64) bool
		del    func(uint64) bool
		get    func(uint64) (uint64, bool)
	}{
		{"HashMap (Michael)", func(k uint64) bool { return m.Insert(k, k) }, m.Delete, m.Get},
		{"Tree (Natarajan–Mittal)", func(k uint64) bool { return tr.Insert(k, k) }, tr.Delete, tr.Get},
	}
	for _, s := range maps {
		var inserted atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < goroutines; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := uint64(w)*2654435761 + 1
				for i := 0; i < perWorker; i++ {
					rng = rng*6364136223846793005 + 1442695040888963407
					key := rng >> 33 & (keyRange - 1)
					switch rng % 3 {
					case 0:
						if s.insert(key) {
							inserted.Add(1)
						}
					case 1:
						if s.del(key) {
							inserted.Add(-1)
						}
					default:
						s.get(key)
					}
				}
			}(w)
		}
		wg.Wait()
		live := 0
		for k := uint64(0); k < keyRange; k++ {
			if _, ok := s.get(k); ok {
				live++
			}
		}
		if int64(live) != inserted.Load() {
			panic(fmt.Sprintf("%s: %d live keys but net insert count %d", s.name, live, inserted.Load()))
		}
		fmt.Printf("%-26s net %d keys live after %d mixed ops\n", s.name, live, goroutines*perWorker)
	}

	t := d.Telemetry()
	fmt.Printf("\none %s domain served all four structures:\n", t.Scheme)
	fmt.Printf("  arena: allocs=%d frees=%d live=%d, unreclaimed backlog %d\n",
		t.Allocs, t.Frees, t.InUse, t.Unreclaimed)
	fmt.Printf("  guard runtime: %d goroutines over %d guards — %d acquires, %d cache hits, %d parks\n",
		goroutines, guards, t.GuardAcquires, t.GuardCacheHits, t.GuardParks)
	fmt.Printf("  wait-free machinery: era %d, slow paths %d, max protect steps %d\n",
		t.Era, t.SlowPaths, t.MaxSteps)
}
