module wfe

go 1.24
