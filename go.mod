module wfe

go 1.22
