package wfe

// Map is the original name of the package's lock-free hash map; HashMap is
// the canonical, paper-named type. The alias keeps the two spellings fully
// interchangeable — every *Map[T] is a *HashMap[T] and vice versa — so
// code written against either name compiles against both.
type Map[T any] = HashMap[T]

// NewMap creates a map with at least minBuckets buckets (rounded up to a
// power of two) on the Domain. It is NewHashMap under the original name.
func NewMap[T any](d *Domain[T], minBuckets int) *Map[T] {
	return NewHashMap[T](d, minBuckets)
}
