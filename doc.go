// Package wfe is a Go reproduction of "Universal Wait-Free Memory
// Reclamation" (Nikolaev & Ravindran, PPoPP 2020): the Wait-Free Eras (WFE)
// scheme, the baselines it is evaluated against (Hazard Eras, Hazard
// Pointers, epoch-based reclamation, 2GEIBR interval-based reclamation and
// a leaky baseline), the six concurrent data structures of the paper's
// evaluation, and the benchmark harness that regenerates every figure.
//
// Layout:
//
//	internal/core     WFE, the paper's contribution (Figure 4)
//	internal/he       Hazard Eras (Figure 1)
//	internal/hp       Hazard Pointers
//	internal/ebr      epoch-based reclamation
//	internal/ibr      2GEIBR interval-based reclamation
//	internal/leak     leaky baseline
//	internal/mem      manual-memory arena substrate
//	internal/pack     64-bit packing emulating the paper's wide CAS
//	internal/reclaim  the shared SMR interface and configuration
//	internal/ds/...   Treiber stack, Harris–Michael list, Michael hash map,
//	                  Natarajan–Mittal BST, Kogan–Petrank and CRTurn queues
//	internal/bench    workload generator and per-figure experiment runner
//	cmd/wfebench      regenerates Figures 5–11 and the ablations
//	cmd/wfestress     correctness stress tool (forced slow path, stalls)
//	examples/...      runnable API walkthroughs
//
// The benchmarks in bench_test.go measure one configuration per paper
// figure; cmd/wfebench performs the full thread sweeps.
package wfe
