// Package wfe is a Go reproduction of "Universal Wait-Free Memory
// Reclamation" (Nikolaev & Ravindran, PPoPP 2020): the Wait-Free Eras (WFE)
// scheme, the baselines it is evaluated against (Hazard Eras, Hazard
// Pointers, epoch-based reclamation, 2GEIBR interval-based reclamation and
// a leaky baseline), the six concurrent data structures of the paper's
// evaluation, and the benchmark harness that regenerates every figure.
//
// # Public API
//
// The package's public face is the generic Domain layer:
//
//   - Domain[T] — a typed arena of T-valued blocks plus the reclamation
//     scheme (chosen by SchemeKind) that decides when retired blocks may be
//     recycled. NewDomain is the entry point for every scheme.
//   - Guard — one goroutine's handle on a Domain, owning one of the
//     scheme's thread slots (the paper's tid): all allocation (Alloc),
//     protected reads
//     (Protect/ProtectWord), retirement (Retire) and operation brackets
//     (Begin/End) go through it.
//   - Ref[T] and Atomic[T] — typed block references (with mark- and
//     flag-bit support for logical deletion and the Natarajan–Mittal
//     tag) and atomic root links, replacing the raw uint64 handle
//     plumbing of the internal layer.
//   - Stack[T] and Queue[T] — Treiber stack and Michael–Scott queue,
//     pre-built on the Domain primitives.
//   - WFQueue[T] and TurnQueue[T] — the paper's two wait-free queues
//     (Kogan–Petrank and CRTurn, Figure 5): combined with the WFE scheme
//     they are wait-free end to end, reclamation included.
//   - HashMap[T] (alias Map[T]) and Tree[T] — Michael's hash map and the
//     Natarajan–Mittal external BST, the paper's search-structure
//     workloads (Figures 7, 8, 10, 11).
//
// The guard runtime decouples goroutines from the paper's fixed thread
// slots: the structures' plain methods are guardless (each operation
// leases a slot from a lock-free pool, parking when all are held),
// Domain.Pin/Unpin amortize that lease over a batch, and
// Domain.Guard/TryGuard/AcquireGuard hand out explicit Guards for fixed
// worker sets. See the Guard type's documentation for the full picture.
//
// See ExampleDomain for the quickstart and ExampleGuard for building a
// custom structure on the primitives.
//
// # Layout
//
//	domain.go           Domain[T], Guard, Ref[T], Atomic[T], SchemeKind
//	stack.go            public Treiber stack
//	queue.go            public Michael–Scott queue
//	wfqueue.go          public Kogan–Petrank wait-free queue
//	turnqueue.go        public CRTurn wait-free queue
//	hashmap.go          public lock-free hash map (HashMap)
//	map.go              Map, the hash map's original alias
//	tree.go             public Natarajan–Mittal BST
//	internal/core       WFE, the paper's contribution (Figure 4)
//	internal/he         Hazard Eras (Figure 1)
//	internal/hp         Hazard Pointers
//	internal/ebr        epoch-based reclamation
//	internal/ibr        2GEIBR interval-based reclamation
//	internal/leak       leaky baseline
//	internal/mem        manual-memory arena substrate
//	internal/pack       64-bit packing emulating the paper's wide CAS
//	internal/reclaim    the shared SMR interface and configuration
//	internal/guardpool  lock-free tid freelist + parking (the guard runtime)
//	internal/ds/...     Treiber stack, Harris–Michael list, Michael hash map,
//	                    Natarajan–Mittal BST, Kogan–Petrank and CRTurn queues
//	internal/bench      workload generator and per-figure experiment runner
//	cmd/wfebench        regenerates Figures 5–11 and the ablations
//	cmd/wfestress       correctness stress tool (forced slow path, stalls)
//	cmd/wfelat          per-operation latency comparison of the queues
//	examples/...        runnable walkthroughs of the public API
//
// The internal/ds structures speak the internal reclaim.Scheme interface
// directly and remain the benchmark substrate; every structure of the
// paper's evaluation now also has a public Domain-API counterpart —
// conformance_test.go runs all of them through every scheme × acquisition
// path. The benchmarks in bench_test.go measure one configuration per
// paper figure; cmd/wfebench performs the full thread sweeps, including
// the public-API workloads experiment (-ablation workloads).
package wfe
