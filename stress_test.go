// Concurrent stress for the four promoted evaluation workloads (WFQueue,
// TurnQueue, HashMap, Tree): mixed readers/writers from far more
// goroutines than the Domain has guards, with the debug arena's
// use-after-free and double-free detection armed throughout. After the
// storm every run drains to quiescence and asserts the reclamation
// machinery's census: the retired backlog collapses for every reclaiming
// scheme, the leak baseline's backlog provably never shrinks, and every
// guard tid is back in the pool. CI runs this file under -race.
package wfe_test

import (
	"math/rand"
	"sync"
	"testing"

	"wfe"
	"wfe/internal/quiesce"
)

// stressStructures is the four-structure axis: the workloads this PR
// promotes to the public API (Stack/Queue churn is covered by
// cmd/wfestress -churn and the conformance matrix).
var stressStructures = []struct {
	name  string
	build func(d *wfe.Domain[uint64]) conformAPI
}{
	{"WFQueue", func(d *wfe.Domain[uint64]) conformAPI { return fifoAPI{wfe.NewWFQueue[uint64](d)} }},
	{"TurnQueue", func(d *wfe.Domain[uint64]) conformAPI { return fifoAPI{wfe.NewTurnQueue[uint64](d)} }},
	{"HashMap", func(d *wfe.Domain[uint64]) conformAPI { return hashMapAPI{wfe.NewHashMap[uint64](d, 32)} }},
	{"Tree", func(d *wfe.Domain[uint64]) conformAPI { return treeAPI{wfe.NewTree[uint64](d)} }},
}

func TestStressWorkloads(t *testing.T) {
	for _, st := range stressStructures {
		t.Run(st.name, func(t *testing.T) {
			forEachScheme(t, func(t *testing.T, kind wfe.SchemeKind, forceSlow bool) {
				if testing.Short() && forceSlow {
					t.Skip("forced-slow variants are full-mode only")
				}
				stressOne(t, st.name, st.build, kind, forceSlow)
			})
		})
	}
}

func stressOne(t *testing.T, name string, build func(*wfe.Domain[uint64]) conformAPI,
	kind wfe.SchemeKind, forceSlow bool) {
	t.Helper()
	const guards = 4
	goroutines, iters := 8*guards, 300
	if testing.Short() {
		goroutines, iters = 4*guards, 120
	}
	capacity := 1 << 17
	if kind == wfe.Leak {
		capacity = 1 << 19
	}
	d := testDomain(t, kind, guards, capacity, forceSlow)
	api := build(d)
	isQueue := api.kind() == fifoKind

	// Storm: every operation leases a guard through the guardless public
	// API (goroutines ≫ MaxGuards exercises parking and the lease cache),
	// with an occasional pinned batch mixed in.
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*7717 + 11))
			for i := 0; i < iters; i++ {
				key := uint64(rng.Intn(64))
				switch {
				case isQueue:
					if rng.Intn(2) == 0 {
						api.insert(nil, key)
					} else {
						api.remove(nil, 0)
					}
				default:
					switch rng.Intn(8) {
					case 0, 1:
						api.insert(nil, key)
					case 2, 3:
						api.remove(nil, key)
					case 4, 5:
						api.get(nil, key)
					case 6:
						api.put(nil, key, uint64(i))
					default: // a short pinned batch mixed into the churn
						g := d.Pin()
						api.insert(g, key)
						api.get(g, key)
						api.remove(g, key)
						d.Unpin(g)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	beforeDrain := d.Unreclaimed()

	// Quiescent drain back to empty.
	g := d.Guard()
	if isQueue {
		for {
			if _, ok := api.remove(g, 0); !ok {
				break
			}
		}
	} else {
		for key := uint64(0); key < 64; key++ {
			api.remove(g, key)
		}
	}
	if n := api.length(g); n != 0 {
		g.Release()
		t.Fatalf("%s not empty after drain: Len = %d", name, n)
	}
	g.Release()

	quiesce.Settle(d)
	if err := quiesce.Check(d, kind != wfe.Leak); err != nil {
		t.Fatalf("%v (backlog before drain was %d)", err, beforeDrain)
	}
	if kind == wfe.Leak {
		// The leak baseline must never reclaim: the settling churn only
		// grows its backlog.
		if after := d.Unreclaimed(); after < beforeDrain {
			t.Fatalf("leak baseline reclaimed: backlog %d -> %d", beforeDrain, after)
		}
	}
}
