package wfe_test

// Live scheme switching under churn: every ordered scheme pair must
// survive a mid-storm Domain.Switch with the workload still running, and
// the Domain must settle to a clean quiescent census afterwards — the
// acceptance bar for the drain-and-swap design. Run with -race: the
// interesting failures here are ordering bugs between the guard gate, the
// backlog drain and the scheme swap, exactly what the race detector sees.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wfe"
	"wfe/internal/quiesce"
)

// switchChurn runs a guardless stack storm over a Domain born on `from`,
// switches it to `to` mid-storm, keeps churning on the new scheme, then
// settles and audits the arena. Workers use only guardless operations:
// they never hold a guard across the switch, so the gate's drain always
// completes.
func switchChurn(t *testing.T, from, to wfe.SchemeKind) {
	t.Helper()
	d, err := wfe.NewDomain[int](wfe.Options{
		Scheme: from,
		// Generous for the Leak endpoints: a Leak origin never recycles a
		// block, so the arena must hold every pre-switch allocation. The
		// aggressive EraFreq/CleanupFreq match the rest of the test suite:
		// Settle's fixed scratch churn must be enough to advance the clock
		// past the storm's last retire window.
		Capacity:    1 << 16,
		MaxGuards:   4,
		EraFreq:     32,
		CleanupFreq: 8,
		Debug:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := wfe.NewStack[int](d)

	const opsPerWorker = 6000
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ops := 0; !stop.Load() && ops < opsPerWorker; ops++ {
				s.Push(ops)
				if ops%2 == 1 {
					s.Pop()
				}
			}
		}()
	}

	time.Sleep(500 * time.Microsecond) // let the storm develop on `from`
	if err := d.Switch(to); err != nil {
		t.Fatalf("Switch(%v -> %v): %v", from, to, err)
	}
	if got := d.Scheme(); got != to {
		t.Fatalf("Scheme() = %v after Switch, want %v", got, to)
	}
	time.Sleep(500 * time.Microsecond) // and churn on `to` for a while
	stop.Store(true)
	wg.Wait()

	for {
		if _, ok := s.Pop(); !ok {
			break
		}
	}
	quiesce.Settle(d)
	if err := quiesce.Check(d, to != wfe.Leak); err != nil {
		t.Errorf("post-switch census (%v -> %v): %v", from, to, err)
	}
	if n := d.Telemetry().SchemeSwitches; n != 1 {
		t.Errorf("SchemeSwitches = %d, want 1", n)
	}
}

// TestSwitchMatrixUnderChurn covers all 7x6 ordered pairs. Short mode
// keeps only the pairs touching WFE and EBR — the wait-free contribution
// and the scheme whose reservations (epoch announcements) differ most
// from everyone else's.
func TestSwitchMatrixUnderChurn(t *testing.T) {
	for _, from := range wfe.AllSchemes() {
		for _, to := range wfe.AllSchemes() {
			if from == to {
				continue
			}
			if testing.Short() && from != wfe.WFE && to != wfe.WFE && from != wfe.EBR && to != wfe.EBR {
				continue
			}
			from, to := from, to
			t.Run(from.String()+"_to_"+to.String(), func(t *testing.T) {
				switchChurn(t, from, to)
			})
		}
	}
}

// TestSwitchToSameKindIsNoop pins the fast path: switching to the current
// scheme must not pause, drain, rebuild or count anything.
func TestSwitchToSameKindIsNoop(t *testing.T) {
	d, err := wfe.NewDomain[int](wfe.Options{Capacity: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Switch(wfe.WFE); err != nil {
		t.Fatal(err)
	}
	if n := d.Telemetry().SchemeSwitches; n != 0 {
		t.Errorf("no-op switch counted: SchemeSwitches = %d, want 0", n)
	}
}

// TestSwitchChainEraFloor walks a chain of switches through every scheme
// (era-clocked and clock-less interleaved) with live blocks surviving
// each hop, then frees them all. The era-floor seeding is what keeps the
// stale allocation stamps on those survivors below each new clock; a
// regression here shows up as a premature free under Debug's
// use-after-free tripwire or a stuck backlog at the end.
func TestSwitchChainEraFloor(t *testing.T) {
	d, err := wfe.NewDomain[int](wfe.Options{
		Scheme: wfe.WFE, Capacity: 1 << 14, MaxGuards: 4,
		EraFreq: 32, CleanupFreq: 8, Debug: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := wfe.NewStack[int](d)
	chain := []wfe.SchemeKind{wfe.EBR, wfe.HP, wfe.HE, wfe.Leak, wfe.TwoGEIBR, wfe.WFEIBR, wfe.WFE}
	for hop, kind := range chain {
		// Survivors allocated under the previous scheme stay live across
		// the swap; churn retires a few under the new one right after.
		for i := 0; i < 64; i++ {
			s.Push(hop*1000 + i)
		}
		if err := d.Switch(kind); err != nil {
			t.Fatalf("hop %d -> %v: %v", hop, kind, err)
		}
		for i := 0; i < 32; i++ {
			s.Pop()
		}
	}
	for {
		if _, ok := s.Pop(); !ok {
			break
		}
	}
	quiesce.Settle(d)
	if err := quiesce.Check(d, true); err != nil {
		t.Errorf("census after the switch chain: %v", err)
	}
	if n := d.Telemetry().SchemeSwitches; n != uint64(len(chain)) {
		t.Errorf("SchemeSwitches = %d, want %d", n, len(chain))
	}
}

// TestSwitchUnknownKindFailsFast pins the validation order: an unknown
// kind must error before the Domain pauses anything.
func TestSwitchUnknownKindFailsFast(t *testing.T) {
	d, err := wfe.NewDomain[int](wfe.Options{Capacity: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Switch(wfe.SchemeKind(99)); err == nil {
		t.Fatal("Switch(99) succeeded, want error")
	}
	// The Domain must still be fully usable (nothing gated).
	g, ok := d.TryGuard()
	if !ok {
		t.Fatal("guards unavailable after a rejected Switch")
	}
	g.Release()
}

// TestSwitchBlocksGuardAcquisition asserts the gate semantics callers
// see: during a switch, Guard() parks instead of panicking and completes
// once the swap finishes.
func TestSwitchBlocksGuardAcquisition(t *testing.T) {
	d, err := wfe.NewDomain[int](wfe.Options{Capacity: 1 << 12, MaxGuards: 2})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			g, err := d.AcquireGuard(context.Background())
			if err != nil {
				t.Errorf("AcquireGuard during switches: %v", err)
				return
			}
			g.Release()
		}
	}()
	for i := 0; i < 10; i++ {
		target := wfe.EBR
		if i%2 == 1 {
			target = wfe.WFE
		}
		if err := d.Switch(target); err != nil {
			t.Fatal(err)
		}
	}
	<-done
}

// TestSwitchWithinAbortsOnHeldGuard pins the bounded-drain contract
// AutoSwitch relies on: a guard held across the drain wait makes
// SwitchWithin abort with ErrSwitchBusy, the gate lifted and the Domain —
// scheme, counters, guard acquisition — untouched, instead of wedging
// every acquirer behind a switch that cannot complete.
func TestSwitchWithinAbortsOnHeldGuard(t *testing.T) {
	d, err := wfe.NewDomain[int](wfe.Options{Capacity: 1 << 12, MaxGuards: 2})
	if err != nil {
		t.Fatal(err)
	}
	g := d.Guard() // a long-lived explicit guard, the fixed-worker pattern
	if err := d.SwitchWithin(wfe.EBR, 10*time.Millisecond); !errors.Is(err, wfe.ErrSwitchBusy) {
		t.Fatalf("SwitchWithin with a held guard = %v, want ErrSwitchBusy", err)
	}
	if got := d.Scheme(); got != wfe.WFE {
		t.Fatalf("Scheme = %v after an aborted switch, want WFE", got)
	}
	if n := d.Telemetry().SchemeSwitches; n != 0 {
		t.Fatalf("aborted switch counted: SchemeSwitches = %d, want 0", n)
	}
	// The gate must be lifted: acquisition works immediately.
	g2, ok := d.TryGuard()
	if !ok {
		t.Fatal("guards still gated after an aborted SwitchWithin")
	}
	g2.Release()
	g.Release()
	// With the guard home, the same bounded switch completes.
	if err := d.SwitchWithin(wfe.EBR, time.Second); err != nil {
		t.Fatalf("SwitchWithin after releasing the guard: %v", err)
	}
	if got := d.Scheme(); got != wfe.EBR {
		t.Fatalf("Scheme = %v, want EBR", got)
	}
}

// TestGuardNoSpuriousPanicUnderSwitchStorm drives Guard()/Release churn
// from exactly MaxGuards workers — a demand the pool can always satisfy,
// so any "all guards in use" panic is spurious — while the main goroutine
// switches schemes as fast as it can. A Guard that mistakes the switch
// gate for exhaustion panics and crashes the test.
func TestGuardNoSpuriousPanicUnderSwitchStorm(t *testing.T) {
	const workers = 4
	d, err := wfe.NewDomain[int](wfe.Options{Capacity: 1 << 12, MaxGuards: workers})
	if err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				g := d.Guard() // must park across switches, never panic
				g.Release()
			}
		}()
	}
	for i := 0; i < 100; i++ {
		target := wfe.EBR
		if i%2 == 1 {
			target = wfe.WFE
		}
		if err := d.Switch(target); err != nil {
			stop.Store(true)
			wg.Wait()
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestTelemetryMonotoneAcrossSwitch pins the carry: cumulative scan
// counters must never step backwards over a swap, or every Sampler
// trajectory recorded across one turns to garbage.
func TestTelemetryMonotoneAcrossSwitch(t *testing.T) {
	d, err := wfe.NewDomain[int](wfe.Options{Scheme: wfe.HE, Capacity: 1 << 14, MaxGuards: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := wfe.NewStack[int](d)
	for i := 0; i < 4000; i++ {
		s.Push(i)
		s.Pop()
	}
	before := d.Telemetry()
	if before.ScanScans == 0 {
		t.Fatal("churn produced no cleanup scans; the carry assertion below would be vacuous")
	}
	if err := d.Switch(wfe.TwoGEIBR); err != nil {
		t.Fatal(err)
	}
	after := d.Telemetry()
	if after.ScanScans < before.ScanScans {
		t.Errorf("ScanScans went backwards across the switch: %d -> %d", before.ScanScans, after.ScanScans)
	}
	if after.ScanBlocks < before.ScanBlocks {
		t.Errorf("ScanBlocks went backwards across the switch: %d -> %d", before.ScanBlocks, after.ScanBlocks)
	}
	if after.MaxSteps < before.MaxSteps {
		t.Errorf("MaxSteps went backwards across the switch: %d -> %d", before.MaxSteps, after.MaxSteps)
	}
}
