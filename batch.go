package wfe

import "wfe/internal/trace"

// Batch context: the machinery behind the Multi*/PushAll/PopN/EnqueueAll/
// DequeueN entry points on the public structures.
//
// A per-op Guarded call pays four amortizable costs every time: a lease
// claim (guardless paths), a protection span (Begin/End), retire-ring
// publication, and a tick of the scan-gating counter. A batch pays each
// once per burst instead:
//
//   - one lease: the guardless batch wrappers pin once via pinBatch and
//     run every item under that guard;
//   - one protection span where the scheme allows it: BeginBatch reports
//     whether a single reservation covers the whole burst (era, epoch and
//     interval schemes — one span is indistinguishable from one long
//     operation) or whether protection must still rotate per item (hazard
//     pointers protect one identity per slot, so batchStep re-arms them
//     between items);
//   - one retire submission: Guard.Retire diverts into batchRetires while
//     the context is open, and endBatch hands the whole run to
//     Scheme.RetireBatch, which bumps the scan-gating counter once — the
//     cleanup cadence counts bursts, not items, so a 128-item burst
//     cannot trigger 4 mid-burst scans under the default CleanupFreq.
//
// The context lives on the Guard and is strictly owner-goroutine state,
// like the protection slots themselves: a Guard is single-threaded by
// contract, so none of these fields are atomic.

// beginBatch opens the batch context on g. intended is the item count the
// caller plans to run (0 when open-ended, e.g. PopN draining early); it
// only labels the trace span. Callers must pair it with endBatch, usually
// via defer, so a panicking item cannot strand the guard with batching
// set and retires undelivered. While the context is open, Guard.Begin and
// Guard.End degrade to batch-aware forms, so the per-op Guarded method
// bodies run unchanged inside a batch.
func (g *Guard[T]) beginBatch(intended int) {
	if g.batching {
		panic("wfe: nested batch operation on one guard")
	}
	g.batching = true
	g.batchSpan = g.d.scheme().s.BeginBatch(g.tid)
	g.d.tracer.Emit(g.tid, trace.KindBatchBegin, uint64(intended), 0)
}

// batchStep is what Guard.End does between consecutive items of a batch.
// Under a batch-wide span it is free: the reservation taken at
// beginBatch keeps covering the next item. When the scheme declined a
// span (hazard pointers), it clears the guard's slots exactly as End
// would, so each item re-protects from scratch and the per-item HP
// safety argument is untouched — batching then amortizes only the lease
// and the retire cadence, never protection.
func (g *Guard[T]) batchStep() {
	if !g.batchSpan {
		g.d.scheme().s.Clear(g.tid)
	}
}

// endBatch closes the batch context: submit the deferred retires as one
// burst, drop the batch-wide reservation, and account the batch. Retires
// go in before the span closes, mirroring the per-op order (Retire, then
// End); the deferred stamps read the scheme clock at submission, which is
// >= its value at each unlink — strictly more conservative, so every
// per-scheme safety argument carries over. items is the number of
// operations the batch actually ran.
func (g *Guard[T]) endBatch(items int) {
	sch := g.d.scheme().s
	retired := len(g.batchRetires)
	if retired == 1 {
		// A single deferred retire gains nothing from the batch
		// submission; the per-op path is a few ns cheaper.
		sch.Retire(g.tid, g.batchRetires[0])
		g.batchRetires = g.batchRetires[:0]
	} else if retired > 1 {
		sch.RetireBatch(g.tid, g.batchRetires)
		// Keep the backing array: a pinned guard running bursts in a hot
		// loop reuses it without reallocating.
		g.batchRetires = g.batchRetires[:0]
	}
	sch.EndBatch(g.tid)
	g.batching = false
	g.batchSpan = false
	g.noteBatch(items)
	g.d.tracer.Emit(g.tid, trace.KindBatchEnd, uint64(items), uint64(retired))
}

// runBatch runs fn(i) for each i in [0, n) inside one batch context and
// returns how many items completed. fn is expected to call a per-op
// Guarded method, whose batch-aware Begin/End handle protection rotation
// per item. fn reports whether its item did any work; the first false
// stops the batch early without counting it (PopN on an emptied stack,
// DequeueN on a drained queue). It is the shared skeleton for the batch
// APIs whose per-item work cannot fail on allocation.
func (g *Guard[T]) runBatch(n int, fn func(i int) bool) int {
	if n == 1 {
		// A batch of one has nothing to amortize: the span, the deferred
		// retire and the trace bracket would be pure overhead on top of
		// per-op cost. Run the item as the equivalent per-op call — with
		// batching unset, its Begin/End/Retire take the normal per-op
		// paths — and keep only the batch accounting.
		done := 0
		if fn(0) {
			done = 1
		}
		g.noteBatch(done)
		return done
	}
	g.beginBatch(n)
	done := 0
	defer func() { g.endBatch(done) }()
	for i := 0; i < n; i++ {
		if !fn(i) {
			break
		}
		done++
	}
	return done
}

// runLeaseBatch is runBatch without the scheme-level batch context: one
// lease, per-op protection. The wait-free queues need it — their helping
// protocols drive the scheme's Begin/Clear per operation from inside
// internal/ds, so opening a batch-wide span around them would be cleared
// mid-batch by the first internal operation. Batching there amortizes
// the lease and the telemetry, and the trace span still brackets the
// burst.
func (g *Guard[T]) runLeaseBatch(n int, fn func(i int) bool) int {
	g.d.tracer.Emit(g.tid, trace.KindBatchBegin, uint64(n), 0)
	done := 0
	defer func() {
		g.noteBatch(done)
		g.d.tracer.Emit(g.tid, trace.KindBatchEnd, uint64(done), 0)
	}()
	for i := 0; i < n; i++ {
		if !fn(i) {
			break
		}
		done++
	}
	return done
}
