package wfe

import (
	"sync"
	"time"

	"wfe/advisor"
)

// SamplerConfig configures a Domain's background Sampler. The zero value
// is usable: a 10ms tick with a 600-tick history window.
type SamplerConfig struct {
	// Interval is the sampling tick (default 10ms, minimum 1ms).
	Interval time.Duration
	// History bounds the ring of retained TelemetrySamples and the
	// advisor window (default 600 ticks — six seconds at the default
	// tick).
	History int
	// OnRecommendation, when non-nil, runs on the sampler goroutine
	// every time the live recommendation's signature changes (including
	// the first tick). Keep it fast; it blocks the next tick.
	OnRecommendation func(advisor.Recommendation)
}

// SamplerRates is the derived-rate view over the sampler's recent ticks:
// exponentially weighted moving averages of the per-second counter deltas
// plus the current backlog. An EWMA with alpha 0.2 weighs roughly the
// last ten ticks — fast enough to catch a regime change, smooth enough
// not to flap on one noisy tick.
type SamplerRates struct {
	Ticks         int           `json:"ticks"`           // samples collected so far
	Interval      time.Duration `json:"interval_ns"`     // configured tick
	AllocsPerSec  float64       `json:"allocs_per_sec"`  // block allocation rate
	FreesPerSec   float64       `json:"frees_per_sec"`   // block recycle rate
	RetiresPerSec float64       `json:"retires_per_sec"` // retire rate (frees + backlog slope)
	ScansPerSec   float64       `json:"scans_per_sec"`   // cleanup-scan rate
	BacklogSlope  float64       `json:"backlog_slope"`   // unreclaimed blocks/sec, signed
	ParksPerTick  float64       `json:"parks_per_tick"`  // guard parks per tick
	Backlog       int           `json:"backlog"`         // last sampled unreclaimed count
}

// ewmaAlpha is the smoothing factor of every sampler rate.
const ewmaAlpha = 0.2

// A Sampler is the streaming half of the observability runtime: a
// background goroutine collecting Domain.Sample rows at a fixed tick into
// a bounded ring history, deriving per-second rates, and feeding an
// advisor.Monitor so the live scheme recommendation is always one method
// call away. Start one with Domain.StartSampler or Options.SampleEvery;
// stop it with Stop (idempotent — so is starting, while one runs).
type Sampler struct {
	sample   func() TelemetrySample
	interval time.Duration
	history  int
	onRec    func(advisor.Recommendation)

	mu     sync.Mutex
	hist   []TelemetrySample // ring, hist[(n-len)..n) in tick order
	n      int               // total ticks collected
	rates  SamplerRates
	mon    *advisor.Monitor
	rec    advisor.Recommendation
	hasRec bool

	prev     TelemetrySample
	prevTime time.Time

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

func newSampler(sample func() TelemetrySample, cfg SamplerConfig) *Sampler {
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Millisecond
	}
	if cfg.Interval < time.Millisecond {
		cfg.Interval = time.Millisecond
	}
	if cfg.History <= 0 {
		cfg.History = 600
	}
	return &Sampler{
		sample:   sample,
		interval: cfg.Interval,
		history:  cfg.History,
		onRec:    cfg.OnRecommendation,
		mon:      advisor.NewMonitor(cfg.History),
		rates:    SamplerRates{Interval: cfg.Interval},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

func (s *Sampler) run() {
	go func() {
		defer close(s.done)
		ticker := time.NewTicker(s.interval)
		defer ticker.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-ticker.C:
				s.tick()
			}
		}
	}()
}

// tick collects one sample and updates history, rates and the monitor.
func (s *Sampler) tick() {
	row := s.sample()
	now := time.Now()

	s.mu.Lock()
	first := s.n == 0
	if len(s.hist) < s.history {
		s.hist = append(s.hist, row)
	} else {
		copy(s.hist, s.hist[1:])
		s.hist[len(s.hist)-1] = row
	}
	tickIdx := s.n
	s.n++

	if !first {
		dt := now.Sub(s.prevTime).Seconds()
		if dt > 0 {
			p := s.prev
			blend := func(cur *float64, inst float64) {
				*cur = (1-ewmaAlpha)*(*cur) + ewmaAlpha*inst
			}
			blend(&s.rates.AllocsPerSec, float64(row.Allocs-p.Allocs)/dt)
			blend(&s.rates.FreesPerSec, float64(row.Frees-p.Frees)/dt)
			blend(&s.rates.ScansPerSec, float64(row.ScanScans-p.ScanScans)/dt)
			slope := float64(row.Unreclaimed-p.Unreclaimed) / dt
			blend(&s.rates.BacklogSlope, slope)
			// Retires = frees + backlog growth: every retired block either
			// got recycled or is still in the backlog.
			retires := float64(row.Frees-p.Frees) + float64(row.Unreclaimed-p.Unreclaimed)
			blend(&s.rates.RetiresPerSec, retires/dt)
			blend(&s.rates.ParksPerTick, float64(row.GuardParks-p.GuardParks))
		}
	}
	s.rates.Ticks = s.n
	s.rates.Backlog = row.Unreclaimed
	s.prev, s.prevTime = row, now

	rec, changed := s.mon.Push(advisor.Sample{
		Tick:        tickIdx,
		Unreclaimed: row.Unreclaimed,
		ScanScans:   row.ScanScans,
		ScanBlocks:  row.ScanBlocks,
		P99Steps:    row.P99Steps,
		GuardParks:  row.GuardParks,
	})
	s.rec, s.hasRec = rec, true
	cb := s.onRec
	s.mu.Unlock()

	if changed && cb != nil {
		cb(rec)
	}
}

// Interval returns the configured sampling tick.
func (s *Sampler) Interval() time.Duration { return s.interval }

// Ticks returns how many samples have been collected so far.
func (s *Sampler) Ticks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// History returns a copy of the retained samples, oldest first.
func (s *Sampler) History() []TelemetrySample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TelemetrySample, len(s.hist))
	copy(out, s.hist)
	return out
}

// Rates returns the current derived-rate view.
func (s *Sampler) Rates() SamplerRates {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rates
}

// Recommendation returns the live advisor recommendation over the
// sampler's window, false before the first tick.
func (s *Sampler) Recommendation() (advisor.Recommendation, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec, s.hasRec
}

// Running reports whether the sampling goroutine is still alive.
func (s *Sampler) Running() bool {
	select {
	case <-s.done:
		return false
	default:
		return true
	}
}

// Stop halts the sampling goroutine and waits for it to exit. Idempotent
// and safe from any goroutine; the collected history, rates and
// recommendation remain readable after Stop.
func (s *Sampler) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}
