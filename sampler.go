package wfe

import (
	"sync"
	"time"

	"wfe/advisor"
)

// SamplerConfig configures a Domain's background Sampler. The zero value
// is usable: a 10ms tick with a 600-tick history window.
type SamplerConfig struct {
	// Interval is the sampling tick (default 10ms, minimum 1ms).
	Interval time.Duration
	// History bounds the ring of retained TelemetrySamples and the
	// advisor window (default 600 ticks — six seconds at the default
	// tick).
	History int
	// OnRecommendation, when non-nil, runs on the sampler goroutine
	// every time the live recommendation's signature changes (including
	// the first tick). Keep it fast; it blocks the next tick.
	OnRecommendation func(advisor.Recommendation)
	// AutoSwitch arms the sampler's hysteresis trigger: once the live
	// recommendation has named the same non-current scheme for
	// AutoSwitchAfter consecutive ticks, the sampler calls the Domain's
	// SwitchWithin (on the sampler goroutine) with a bounded drain wait,
	// so guards held across ticks abort the switch (retried on the next
	// streak) rather than gating the Domain indefinitely. Set by
	// Options.AutoSwitch; it has no effect on a Sampler the Domain did
	// not wire a switch hook into.
	AutoSwitch bool
	// AutoSwitchAfter is the hysteresis depth (default 3 when AutoSwitch
	// is set). A streak resets whenever the recommendation returns to the
	// current scheme or names a different candidate, so a flapping advisor
	// never triggers.
	AutoSwitchAfter int
}

// SamplerRates is the derived-rate view over the sampler's recent ticks:
// exponentially weighted moving averages of the per-second counter deltas
// plus the current backlog. An EWMA with alpha 0.2 weighs roughly the
// last ten ticks — fast enough to catch a regime change, smooth enough
// not to flap on one noisy tick.
type SamplerRates struct {
	Ticks         int           `json:"ticks"`           // samples collected so far
	Interval      time.Duration `json:"interval_ns"`     // configured tick
	AllocsPerSec  float64       `json:"allocs_per_sec"`  // block allocation rate
	FreesPerSec   float64       `json:"frees_per_sec"`   // block recycle rate
	RetiresPerSec float64       `json:"retires_per_sec"` // retire rate (frees + backlog slope)
	ScansPerSec   float64       `json:"scans_per_sec"`   // cleanup-scan rate
	BacklogSlope  float64       `json:"backlog_slope"`   // unreclaimed blocks/sec, signed
	ParksPerTick  float64       `json:"parks_per_tick"`  // guard parks per tick
	Backlog       int           `json:"backlog"`         // last sampled unreclaimed count

	// Batch-path rates (see batch.go): bursts and batched items per
	// second. ItemsPerSec/OpsPerSec approximates the mean batch width the
	// workload is actually running.
	BatchOpsPerSec   float64 `json:"batch_ops_per_sec"`
	BatchItemsPerSec float64 `json:"batch_items_per_sec"`
}

// ewmaAlpha is the smoothing factor of every sampler rate.
const ewmaAlpha = 0.2

// autoSwitchDrainBound caps how long a sampler-triggered switch waits for
// held guards to drain before aborting with ErrSwitchBusy. Guardless and
// pinned operations release in microseconds, so any drain this long means
// the program holds explicit guards across ticks — a pattern AutoSwitch
// must tolerate, not deadlock on.
const autoSwitchDrainBound = 50 * time.Millisecond

// A Sampler is the streaming half of the observability runtime: a
// background goroutine collecting Domain.Sample rows at a fixed tick into
// a bounded ring history, deriving per-second rates, and feeding an
// advisor.Monitor so the live scheme recommendation is always one method
// call away. Start one with Domain.StartSampler or Options.SampleEvery;
// stop it with Stop (idempotent — so is starting, while one runs).
type Sampler struct {
	sample   func() TelemetrySample
	interval time.Duration
	history  int
	onRec    func(advisor.Recommendation)

	// Auto-switch wiring, installed by Domain.StartSampler before run.
	// switchTo asks the Domain to switch to the named scheme; current
	// reports the live scheme's legend name. Both nil when AutoSwitch is
	// off. streak/candidate are the hysteresis state: candidate is the
	// recommended non-current scheme being counted, streak how many
	// consecutive ticks have named it.
	switchTo  func(name string) error
	current   func() string
	autoAfter int
	candidate string
	streak    int

	mu sync.Mutex
	// hist is a true circular buffer: it grows by append until it reaches
	// the history bound, then head marks the oldest entry and each tick
	// overwrites in place — O(1) per tick where a slide would memmove the
	// whole window.
	hist   []TelemetrySample
	head   int
	n      int // total ticks collected
	rates  SamplerRates
	seeded bool // EWMAs hold a measured rate (not the zero value)
	mon    *advisor.Monitor
	rec    advisor.Recommendation
	hasRec bool

	prev     TelemetrySample
	prevTime time.Time

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

func newSampler(sample func() TelemetrySample, cfg SamplerConfig) *Sampler {
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Millisecond
	}
	if cfg.Interval < time.Millisecond {
		cfg.Interval = time.Millisecond
	}
	if cfg.History <= 0 {
		cfg.History = 600
	}
	autoAfter := 0
	if cfg.AutoSwitch {
		autoAfter = cfg.AutoSwitchAfter
		if autoAfter <= 0 {
			autoAfter = 3
		}
	}
	return &Sampler{
		sample:    sample,
		interval:  cfg.Interval,
		history:   cfg.History,
		onRec:     cfg.OnRecommendation,
		autoAfter: autoAfter,
		mon:       advisor.NewMonitor(cfg.History),
		rates:     SamplerRates{Interval: cfg.Interval},
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
}

func (s *Sampler) run() {
	go func() {
		defer close(s.done)
		ticker := time.NewTicker(s.interval)
		defer ticker.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-ticker.C:
				s.tick(time.Now())
			}
		}
	}()
}

// tick collects one sample at the given wall time and updates history,
// rates, the monitor and (when armed) the auto-switch trigger. The clock
// is a parameter so tests drive deterministic tick spacing.
func (s *Sampler) tick(now time.Time) {
	row := s.sample()

	s.mu.Lock()
	first := s.n == 0
	if len(s.hist) < s.history {
		s.hist = append(s.hist, row)
	} else {
		s.hist[s.head] = row
		if s.head++; s.head == len(s.hist) {
			s.head = 0
		}
	}
	tickIdx := s.n
	s.n++

	if !first {
		dt := now.Sub(s.prevTime).Seconds()
		if dt > 0 {
			p := s.prev
			// The first measured rate seeds each EWMA outright: blending
			// it against the zero initial value would report every rate a
			// factor of alpha low until enough ticks wash the zero out.
			blend := func(cur *float64, inst float64) {
				if !s.seeded {
					*cur = inst
					return
				}
				*cur = (1-ewmaAlpha)*(*cur) + ewmaAlpha*inst
			}
			blend(&s.rates.AllocsPerSec, float64(row.Allocs-p.Allocs)/dt)
			blend(&s.rates.FreesPerSec, float64(row.Frees-p.Frees)/dt)
			blend(&s.rates.ScansPerSec, float64(row.ScanScans-p.ScanScans)/dt)
			slope := float64(row.Unreclaimed-p.Unreclaimed) / dt
			blend(&s.rates.BacklogSlope, slope)
			// Retires = frees + backlog growth: every retired block either
			// got recycled or is still in the backlog.
			retires := float64(row.Frees-p.Frees) + float64(row.Unreclaimed-p.Unreclaimed)
			blend(&s.rates.RetiresPerSec, retires/dt)
			blend(&s.rates.ParksPerTick, float64(row.GuardParks-p.GuardParks))
			blend(&s.rates.BatchOpsPerSec, float64(row.BatchOps-p.BatchOps)/dt)
			blend(&s.rates.BatchItemsPerSec, float64(row.BatchedItems-p.BatchedItems)/dt)
			s.seeded = true
		}
	}
	s.rates.Ticks = s.n
	s.rates.Backlog = row.Unreclaimed
	s.prev, s.prevTime = row, now

	pressure := 0.0
	if row.Capacity > 0 {
		pressure = float64(row.InUse) / float64(row.Capacity)
	}
	rec, changed := s.mon.Push(advisor.Sample{
		Tick:           tickIdx,
		Unreclaimed:    row.Unreclaimed,
		ScanScans:      row.ScanScans,
		ScanBlocks:     row.ScanBlocks,
		P99Steps:       row.P99Steps,
		GuardParks:     row.GuardParks,
		Pressure:       pressure,
		EmergencyScans: row.EmergencyScans,
	})
	s.rec, s.hasRec = rec, true
	cb := s.onRec
	s.mu.Unlock()

	if changed && cb != nil {
		cb(rec)
	}
	s.maybeSwitch(rec)
}

// maybeSwitch advances the auto-switch hysteresis with this tick's
// recommendation and fires the Domain switch once a candidate has held
// for autoAfter consecutive ticks. Runs outside the sampler mutex — the
// switch gates guard acquisition and must not hold sampler state hostage
// while it drains. The hysteresis fields are sampler-goroutine-private.
func (s *Sampler) maybeSwitch(rec advisor.Recommendation) {
	if s.autoAfter == 0 || s.switchTo == nil || s.current == nil {
		return
	}
	want := rec.Scheme
	if want == "" || want == s.current() {
		s.candidate, s.streak = "", 0
		return
	}
	if want != s.candidate {
		s.candidate, s.streak = want, 1
	} else {
		s.streak++
	}
	if s.streak >= s.autoAfter {
		s.candidate, s.streak = "", 0
		// An error here is either an unknown scheme name (nothing the
		// sampler can do beyond not crashing) or ErrSwitchBusy — guards
		// held across ticks kept the bounded drain from completing. The
		// streak reset stops it retrying every tick either way; if the
		// recommendation persists, a fresh streak accrues and the switch
		// is retried once the guards come home.
		_ = s.switchTo(want)
	}
}

// Interval returns the configured sampling tick.
func (s *Sampler) Interval() time.Duration { return s.interval }

// Ticks returns how many samples have been collected so far.
func (s *Sampler) Ticks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// History returns a copy of the retained samples, oldest first. The
// internal buffer is circular; the copy unrolls it, so callers never see
// the wrap point.
func (s *Sampler) History() []TelemetrySample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TelemetrySample, len(s.hist))
	n := copy(out, s.hist[s.head:])
	copy(out[n:], s.hist[:s.head])
	return out
}

// Rates returns the current derived-rate view.
func (s *Sampler) Rates() SamplerRates {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rates
}

// Recommendation returns the live advisor recommendation over the
// sampler's window, false before the first tick.
func (s *Sampler) Recommendation() (advisor.Recommendation, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec, s.hasRec
}

// Running reports whether the sampling goroutine is still alive.
func (s *Sampler) Running() bool {
	select {
	case <-s.done:
		return false
	default:
		return true
	}
}

// Stop halts the sampling goroutine and waits for it to exit. Idempotent
// and safe from any goroutine; the collected history, rates and
// recommendation remain readable after Stop.
func (s *Sampler) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}
