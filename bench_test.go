// Benchmarks regenerating the paper's figures as testing.B measurements:
// one benchmark group per figure, with one sub-benchmark per reclamation
// scheme at GOMAXPROCS workers. ns/op is the per-operation latency of the
// figure's workload; the derived Mops/s metric is reported alongside.
//
// These are the quick, b.N-driven counterparts of cmd/wfebench, which runs
// the full thread sweeps with the paper's timing methodology.
package wfe_test

import (
	"math/rand"
	"runtime"
	"sort"
	"sync/atomic"
	"testing"

	"wfe/internal/bench"
	"wfe/internal/ds"
	"wfe/internal/ds/bst"
	"wfe/internal/ds/crturn"
	"wfe/internal/ds/hashmap"
	"wfe/internal/ds/kpqueue"
	"wfe/internal/ds/list"
	"wfe/internal/ds/stack"
	"wfe/internal/mem"
	"wfe/internal/reclaim"
	"wfe/internal/schemes"
)

const (
	benchPrefill  = 50000
	benchKeyRange = 100000
)

var benchSchemes = []string{"WFE", "HE", "HP", "EBR", "2GEIBR", "Leak"}

func newBenchScheme(b *testing.B, name string, threads, capacity int) reclaim.Scheme {
	b.Helper()
	a := mem.New(mem.Config{Capacity: capacity, MaxThreads: threads, Debug: false})
	s, err := schemes.New(name, a, reclaim.Config{MaxThreads: threads})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// benchKV runs the workload for b.N total operations across GOMAXPROCS
// workers over the named structure and scheme.
func benchKV(b *testing.B, dsName, schemeName string, w bench.Workload) {
	threads := runtime.GOMAXPROCS(0)
	capacity := 8*benchPrefill + threads*4096
	if schemeName == "Leak" {
		capacity = 8*benchPrefill + b.N + threads*4096
		if capacity > 1<<23 {
			capacity = 1 << 23
		}
	}
	smr := newBenchScheme(b, schemeName, threads, capacity)

	kv := buildKV(b, dsName, smr, threads)
	seedKV(kv, dsName)

	var tids atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		tid := int(tids.Add(1)-1) % threads
		rng := rand.New(rand.NewSource(int64(tid)*99991 + 7))
		for pb.Next() {
			key := uint64(rng.Int63n(benchKeyRange))
			pick := rng.Intn(100)
			switch {
			case pick < w.Insert:
				kv.Insert(tid, key)
			case pick < w.Insert+w.Delete:
				kv.Delete(tid, key)
			case pick < w.Insert+w.Delete+w.GetPct:
				kv.Get(tid, key)
			default:
				kv.Put(tid, key)
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mops/s")
	b.ReportMetric(float64(smr.Unreclaimed()), "unreclaimed")
}

func buildKV(b *testing.B, name string, smr reclaim.Scheme, threads int) ds.KV {
	switch name {
	case "list":
		return list.New(smr).KV()
	case "hashmap":
		return hashmap.New(smr, benchKeyRange).KV()
	case "bst":
		return bst.New(smr).KV()
	case "kpqueue":
		return kpqueue.New(smr, threads).KV()
	case "crturn":
		return crturn.New(smr, threads).KV()
	}
	b.Fatalf("unknown structure %s", name)
	return nil
}

func seedKV(kv ds.KV, name string) {
	rng := rand.New(rand.NewSource(1))
	seeder := kv.(ds.Seeder)
	if bench.IsQueue(name) {
		keys := make([]uint64, benchPrefill)
		for i := range keys {
			keys[i] = uint64(rng.Int63n(benchKeyRange))
		}
		seeder.Seed(0, keys)
		return
	}
	seen := map[uint64]bool{}
	var keys []uint64
	for len(keys) < benchPrefill {
		k := uint64(rng.Int63n(benchKeyRange))
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	seeder.Seed(0, keys)
}

func benchFigure(b *testing.B, dsName string, w bench.Workload) {
	for _, scheme := range benchSchemes {
		b.Run(scheme, func(b *testing.B) { benchKV(b, dsName, scheme, w) })
	}
}

// Figure 5a/5b: Kogan–Petrank wait-free queue, 50% insert / 50% delete.
func BenchmarkFig5aKPQueue(b *testing.B) { benchFigure(b, "kpqueue", bench.WriteHeavy) }

// Figure 5c/5d: CRTurn wait-free queue, 50% insert / 50% delete.
func BenchmarkFig5cCRTurnQueue(b *testing.B) { benchFigure(b, "crturn", bench.WriteHeavy) }

// Figure 6: sorted linked list, 50% insert / 50% delete.
func BenchmarkFig6List(b *testing.B) { benchFigure(b, "list", bench.WriteHeavy) }

// Figure 7: hash map, 50% insert / 50% delete.
func BenchmarkFig7HashMap(b *testing.B) { benchFigure(b, "hashmap", bench.WriteHeavy) }

// Figure 8: Natarajan–Mittal BST, 50% insert / 50% delete.
func BenchmarkFig8BST(b *testing.B) { benchFigure(b, "bst", bench.WriteHeavy) }

// Figure 9: sorted linked list, 90% get / 10% put.
func BenchmarkFig9ListReadMostly(b *testing.B) { benchFigure(b, "list", bench.ReadMostly) }

// Figure 10: hash map, 90% get / 10% put.
func BenchmarkFig10HashMapReadMostly(b *testing.B) { benchFigure(b, "hashmap", bench.ReadMostly) }

// Figure 11: Natarajan–Mittal BST, 90% get / 10% put.
func BenchmarkFig11BSTReadMostly(b *testing.B) { benchFigure(b, "bst", bench.ReadMostly) }

// Ablation A1/A2 micro-benchmarks: the raw cost of one protected read on
// the fast path versus the forced slow path (paper §5's stress mode).
func BenchmarkGetProtectedFastPath(b *testing.B) { benchGetProtected(b, "WFE") }
func BenchmarkGetProtectedSlowPath(b *testing.B) { benchGetProtected(b, "WFE-slow") }
func BenchmarkGetProtectedHE(b *testing.B)       { benchGetProtected(b, "HE") }
func BenchmarkGetProtectedHP(b *testing.B)       { benchGetProtected(b, "HP") }

func benchGetProtected(b *testing.B, scheme string) {
	threads := runtime.GOMAXPROCS(0)
	smr := newBenchScheme(b, scheme, threads, 1024)
	var root atomic.Uint64
	root.Store(smr.Alloc(0))

	var tids atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		tid := int(tids.Add(1)-1) % threads
		for pb.Next() {
			smr.GetProtected(tid, &root, 0, 0)
			smr.Clear(tid)
		}
	})
}

// Treiber stack sanity benchmark (the paper's usage example, Figure 2).
func BenchmarkStackPushPop(b *testing.B) {
	for _, scheme := range benchSchemes {
		b.Run(scheme, func(b *testing.B) {
			threads := runtime.GOMAXPROCS(0)
			capacity := 1 << 20
			if scheme == "Leak" && b.N+1024 > capacity {
				capacity = b.N + 1<<16
			}
			smr := newBenchScheme(b, scheme, threads, capacity)
			st := stack.New(smr)
			var tids atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				tid := int(tids.Add(1)-1) % threads
				for pb.Next() {
					st.Push(tid, 1)
					st.Pop(tid)
				}
			})
		})
	}
}
